// The in-memory half of the Transport seam: one side of a PublicChannel
// presented as a wire::Transport. The tier-1 distillation and KMS paths
// run over two of these (side A and side B of the same channel), moving
// the SAME encoded frames the TCP transport would — so impairments
// installed on the channel (Eve's hooks, ClassicalConditions) attack real
// framed bytes, and wire accounting measures real frame sizes.
#pragma once

#include "src/net/channel.hpp"
#include "src/wire/transport.hpp"

namespace qkd::net {

class ChannelTransport final : public wire::Transport {
 public:
  enum class Side { kA, kB };

  ChannelTransport(PublicChannel& channel, Side side)
      : channel_(channel), side_(side) {}

  bool send_frame(const Bytes& frame) override {
    if (side_ == Side::kA) {
      channel_.send_from_a(frame);
    } else {
      channel_.send_from_b(frame);
    }
    return true;
  }

  /// Next queued frame at this side; nullopt when the queue is drained
  /// (last_error stays kNone — a drained in-memory channel is not an
  /// error, it is the lockstep dialogue's cue to retransmit).
  std::optional<Bytes> recv_frame() override {
    return side_ == Side::kA ? channel_.recv_at_a() : channel_.recv_at_b();
  }

  PublicChannel& channel() { return channel_; }

 private:
  PublicChannel& channel_;
  Side side_;
};

}  // namespace qkd::net
