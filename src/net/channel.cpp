#include "src/net/channel.hpp"

namespace qkd::net {

void PublicChannel::send(const Bytes& message, bool to_b) {
  Bytes to_deliver = message;
  if (impairment_) {
    const auto impaired = impairment_(message, to_b);
    if (!impaired.has_value()) {
      ++stats_.dropped;
      return;
    }
    if (*impaired != message) ++stats_.modified;
    to_deliver = *impaired;
  }
  if (to_b) {
    ++stats_.messages_ab;
    stats_.bytes_ab += to_deliver.size();
    b_.inbox.push_back(std::move(to_deliver));
  } else {
    ++stats_.messages_ba;
    stats_.bytes_ba += to_deliver.size();
    a_.inbox.push_back(std::move(to_deliver));
  }
}

std::optional<Bytes> PublicChannel::recv_at_a() {
  if (a_.inbox.empty()) return std::nullopt;
  Bytes msg = std::move(a_.inbox.front());
  a_.inbox.pop_front();
  return msg;
}

std::optional<Bytes> PublicChannel::recv_at_b() {
  if (b_.inbox.empty()) return std::nullopt;
  Bytes msg = std::move(b_.inbox.front());
  b_.inbox.pop_front();
  return msg;
}

Impairment make_drop_impairment(double drop_prob, std::uint64_t seed) {
  auto rng = std::make_shared<qkd::Rng>(seed);
  return [rng, drop_prob](const Bytes& message,
                          bool) -> std::optional<Bytes> {
    if (rng->next_bool(drop_prob)) return std::nullopt;
    return message;
  };
}

Impairment make_corrupt_impairment(double flip_prob, std::uint64_t seed) {
  auto rng = std::make_shared<qkd::Rng>(seed);
  return [rng, flip_prob](const Bytes& message,
                          bool) -> std::optional<Bytes> {
    if (message.empty() || !rng->next_bool(flip_prob)) return message;
    Bytes corrupted = message;
    corrupted[rng->next_below(corrupted.size())] ^= 0xA5;
    return corrupted;
  };
}

}  // namespace qkd::net
