#include "src/net/channel.hpp"

#include <utility>

namespace qkd::net {

void PublicChannel::bind_metrics(obs::MetricsRegistry& registry,
                                 std::string prefix) {
  registry.add_collector([this, prefix = std::move(prefix)](
                             obs::MetricsRegistry::Collect& out) {
    out.counter(prefix + "_messages_ab", stats_.messages_ab);
    out.counter(prefix + "_messages_ba", stats_.messages_ba);
    out.counter(prefix + "_bytes_ab", stats_.bytes_ab);
    out.counter(prefix + "_bytes_ba", stats_.bytes_ba);
    out.counter(prefix + "_dropped", stats_.dropped);
    out.counter(prefix + "_modified", stats_.modified);
    out.counter(prefix + "_lost", stats_.lost);
    out.counter(prefix + "_reordered", stats_.reordered);
  });
}

void PublicChannel::set_conditions(const ClassicalConditions& conditions,
                                   std::uint64_t seed) {
  conditions_ = conditions;
  if (conditions.loss_prob > 0.0 || conditions.reorder_prob > 0.0) {
    conditions_rng_ = std::make_shared<qkd::Rng>(seed);
  } else {
    conditions_rng_.reset();
  }
}

void PublicChannel::send(const Bytes& message, bool to_b) {
  Bytes to_deliver = message;
  if (impairment_) {
    const auto impaired = impairment_(message, to_b);
    if (!impaired.has_value()) {
      ++stats_.dropped;
      return;
    }
    if (*impaired != message) ++stats_.modified;
    to_deliver = *impaired;
  }
  if (conditions_rng_ && conditions_.loss_prob > 0.0 &&
      conditions_rng_->next_bool(conditions_.loss_prob)) {
    ++stats_.lost;
    return;
  }
  Endpoint& dest = to_b ? b_ : a_;
  if (to_b) {
    ++stats_.messages_ab;
    stats_.bytes_ab += to_deliver.size();
  } else {
    ++stats_.messages_ba;
    stats_.bytes_ba += to_deliver.size();
  }
  dest.inbox.push_back(std::move(to_deliver));
  // Reordering swaps the arrival with its queued predecessor — adjacent
  // swaps only, so a lockstep dialogue is perturbed but never starved.
  if (conditions_rng_ && conditions_.reorder_prob > 0.0 &&
      dest.inbox.size() >= 2 &&
      conditions_rng_->next_bool(conditions_.reorder_prob)) {
    std::swap(dest.inbox[dest.inbox.size() - 1],
              dest.inbox[dest.inbox.size() - 2]);
    ++stats_.reordered;
  }
}

std::optional<Bytes> PublicChannel::recv_at_a() {
  if (a_.inbox.empty()) return std::nullopt;
  Bytes msg = std::move(a_.inbox.front());
  a_.inbox.pop_front();
  return msg;
}

std::optional<Bytes> PublicChannel::recv_at_b() {
  if (b_.inbox.empty()) return std::nullopt;
  Bytes msg = std::move(b_.inbox.front());
  b_.inbox.pop_front();
  return msg;
}

Impairment make_drop_impairment(double drop_prob, std::uint64_t seed) {
  auto rng = std::make_shared<qkd::Rng>(seed);
  return [rng, drop_prob](const Bytes& message,
                          bool) -> std::optional<Bytes> {
    if (rng->next_bool(drop_prob)) return std::nullopt;
    return message;
  };
}

Impairment make_corrupt_impairment(double flip_prob, std::uint64_t seed) {
  auto rng = std::make_shared<qkd::Rng>(seed);
  return [rng, flip_prob](const Bytes& message,
                          bool) -> std::optional<Bytes> {
    if (message.empty() || !rng->next_bool(flip_prob)) return message;
    Bytes corrupted = message;
    corrupted[rng->next_below(corrupted.size())] ^= 0xA5;
    return corrupted;
  };
}

}  // namespace qkd::net
