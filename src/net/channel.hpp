// The public channel (Fig. 1): "The other, public channel carries all
// message traffic, including the cryptographic protocols, encrypted user
// traffic, etc."
//
// PublicChannel is an in-memory, message-oriented duplex pipe with an
// impairment hook modelling the paper's Eve axioms for classical traffic:
// she can eavesdrop undetectably (taps), forge messages (inject), and block
// them (drop). IKE and the QKD protocol engine run over this channel; tests
// and benches use the impairments to reproduce the Section 7 DoS and
// man-in-the-middle discussions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "src/common/bytes.hpp"
#include "src/common/rng.hpp"
#include "src/common/sim_clock.hpp"
#include "src/obs/metrics.hpp"

namespace qkd::net {

/// One direction of a message pipe.
struct Endpoint {
  std::deque<Bytes> inbox;
};

/// Eve's grip on the classical channel. Return std::nullopt to block the
/// message; return (possibly modified) bytes to deliver them. The default
/// passes everything through untouched. `to_b` tells the handler the
/// direction (true: A->B).
using Impairment =
    std::function<std::optional<Bytes>(const Bytes& message, bool to_b)>;

/// Counters for channel-level experiments. Byte counters record what was
/// DELIVERED (post-impairment sizes): a dropped message adds nothing, a
/// modified one adds its modified size — so the counters equal the bytes a
/// wiretap on the receiving side would see.
struct ChannelStats {
  std::uint64_t messages_ab = 0;
  std::uint64_t messages_ba = 0;
  std::uint64_t bytes_ab = 0;
  std::uint64_t bytes_ba = 0;
  std::uint64_t dropped = 0;   // blocked by the impairment hook
  std::uint64_t modified = 0;
  std::uint64_t lost = 0;      // dropped by ClassicalConditions loss
  std::uint64_t reordered = 0; // adjacent swaps applied on arrival
};

/// Classical-channel conditions the scenario engine can impose on the
/// framed byte stream: per-message one-way latency, independent message
/// loss, and adjacent reordering at the receive queue. Loss and reorder
/// act here; latency is advisory for the synchronous dialogue (the QKD
/// session converts `latency * messages` into wall-clock stall so a
/// latency spike slows distillation without deadlocking the lockstep
/// exchange).
struct ClassicalConditions {
  SimTime latency = 0;
  double loss_prob = 0.0;
  double reorder_prob = 0.0;
};

class PublicChannel {
 public:
  PublicChannel() = default;

  /// Installs (or clears) Eve's impairment hook.
  void set_impairment(Impairment impairment) {
    impairment_ = std::move(impairment);
  }

  /// Imposes (or, with a default-constructed value, lifts) classical
  /// network conditions. `seed` makes loss/reorder draws deterministic.
  void set_conditions(const ClassicalConditions& conditions,
                      std::uint64_t seed = 0x57A11ED);
  const ClassicalConditions& conditions() const { return conditions_; }

  /// Sends from the A side (delivered to B's inbox unless impaired).
  void send_from_a(const Bytes& message) { send(message, /*to_b=*/true); }
  void send_from_b(const Bytes& message) { send(message, /*to_b=*/false); }

  /// Receives the next queued message at each side; nullopt when empty.
  std::optional<Bytes> recv_at_a();
  std::optional<Bytes> recv_at_b();

  bool a_has_message() const { return !a_.inbox.empty(); }
  bool b_has_message() const { return !b_.inbox.empty(); }

  const ChannelStats& stats() const { return stats_; }

  /// Registers a collector exposing the delivered-traffic counters under
  /// `prefix` (e.g. "<prefix>_bytes_ab"). The channel keeps ChannelStats as
  /// its storage — stats() is unchanged — and must outlive the registry's
  /// snapshots.
  void bind_metrics(obs::MetricsRegistry& registry, std::string prefix);

 private:
  void send(const Bytes& message, bool to_b);

  Endpoint a_;
  Endpoint b_;
  Impairment impairment_;
  ClassicalConditions conditions_;
  std::shared_ptr<qkd::Rng> conditions_rng_;
  ChannelStats stats_;
};

/// A ready-made lossy impairment: drops each message with probability
/// `drop_prob` (seeded, deterministic) — the "Eve blocks IKE messages during
/// a relatively short time" DoS of Section 7.
Impairment make_drop_impairment(double drop_prob, std::uint64_t seed);

/// Corrupts each message with probability `flip_prob` by flipping one byte —
/// exercising the authenticated-rejection paths.
Impairment make_corrupt_impairment(double flip_prob, std::uint64_t seed);

}  // namespace qkd::net
