#include "src/common/worker_pool.hpp"

#include <algorithm>

namespace qkd::common {
namespace {

// parallel_for is not reentrant; a nested call from inside a task runs its
// indices inline on the calling lane (see header).
thread_local bool t_inside_task = false;

}  // namespace

WorkerPool::WorkerPool(std::size_t lanes) {
  const std::size_t workers = lanes > 1 ? lanes - 1 : 0;
  lane_tasks_ = std::vector<LaneCounter>(workers + 1);
  threads_.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t)
    threads_.emplace_back([this, t] { worker_main(t + 1); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::size_t WorkerPool::default_lanes() {
  return std::max<std::size_t>(
      1, std::min<std::size_t>(std::thread::hardware_concurrency(), 8));
}

std::uint64_t WorkerPool::total_tasks() const {
  std::uint64_t total = 0;
  for (const LaneCounter& lane : lane_tasks_)
    total += lane.v.load(std::memory_order_relaxed);
  return total;
}

void WorkerPool::run_slice(const std::function<void(std::size_t)>& task,
                           std::size_t count, std::size_t lane) {
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ >= count) return;
      index = next_++;
    }
    lane_tasks_[lane].v.fetch_add(1, std::memory_order_relaxed);
    try {
      t_inside_task = true;
      task(index);
      t_inside_task = false;
    } catch (...) {
      t_inside_task = false;
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_main(std::size_t lane) {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const auto* task = task_;
    const std::size_t count = count_;
    lock.unlock();
    run_slice(*task, count, lane);
    lock.lock();
    if (--working_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  jobs_.fetch_add(1, std::memory_order_relaxed);
  // Single lane, a single index, or a nested call from inside a task: run
  // inline, in ascending index order (the deterministic sequential path).
  if (threads_.empty() || count == 1 || t_inside_task) {
    lane_tasks_[0].v.fetch_add(count, std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    next_ = 0;
    error_ = nullptr;
    working_ = threads_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_slice(task, count, 0);  // the caller is a lane too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return working_ == 0; });
  task_ = nullptr;
  if (error_) {
    auto error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace qkd::common
