#include "src/common/logging.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace qkd {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", log_level_name(level), message.c_str());
  };
  // Environment override for the initial threshold; tests and examples
  // still call set_level() freely afterwards.
  if (const char* env = std::getenv("QKD_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) level_.store(*level);
  }
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::set_clock(const SimClock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  // The sink is invoked under the mutex: a concurrent set_sink can never
  // destroy the std::function mid-call, and interleaved messages arrive at
  // the sink whole (the sinks in tree — stderr, capture vectors — are not
  // themselves synchronized).
  std::lock_guard<std::mutex> lock(mu_);
  if (!sink_) return;
  if (clock_ != nullptr) {
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "[t=%.6fs] ", clock_->seconds());
    sink_(level, stamp + message);
  } else {
    sink_(level, message);
  }
}

}  // namespace qkd
