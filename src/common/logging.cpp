#include "src/common/logging.hpp"

#include <cstdio>

namespace qkd {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "%s: %s\n", log_level_name(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::log(LogLevel level, const std::string& message) {
  if (enabled(level) && sink_) sink_(level, message);
}

}  // namespace qkd
