// Minimal leveled logger producing racoon-style transcript lines.
//
// The IKE example reproduces the Fig. 12 transcript of the paper; the logger
// therefore supports a "syslog" formatting mode:
//   Dec  5 12:53:32 bob-gw racoon: INFO: isakmp.c:1046:...: message
// Logging is process-global, cheap when disabled, and capturable in tests.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace qkd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* log_level_name(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replaces the output sink (default writes to stderr). Tests install a
  /// capturing sink; examples install a syslog-style stdout sink.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const { return level >= level_; }
  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarning;
  Sink sink_;
};

/// Stream-style log statement:
///   QKD_LOG(kInfo) << "sifted " << n << " bits";
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::instance().log(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace qkd

#define QKD_LOG(level)                                             \
  if (!::qkd::Logger::instance().enabled(::qkd::LogLevel::level)) \
    ;                                                              \
  else                                                             \
    ::qkd::LogStatement(::qkd::LogLevel::level)
