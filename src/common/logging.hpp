// Minimal leveled logger producing racoon-style transcript lines.
//
// The IKE example reproduces the Fig. 12 transcript of the paper; the logger
// therefore supports a "syslog" formatting mode:
//   Dec  5 12:53:32 bob-gw racoon: INFO: isakmp.c:1046:...: message
// Logging is process-global, cheap when disabled, and capturable in tests.
//
// Thread safety: the stack logs from shard lanes and worker threads, so the
// level gate is an atomic (the QKD_LOG fast path stays one relaxed load) and
// the sink/clock are swapped and invoked under a mutex — a set_sink racing a
// concurrent log() can no longer tear the std::function. Messages are
// stamped with simulation time when a SimClock is registered, so transcript
// lines line up with the event timeline instead of wall time.
//
// The initial threshold comes from the QKD_LOG_LEVEL environment variable
// (trace/debug/info/warn/error, case-insensitive; unset or unparseable
// keeps the kWarning default) — so the alert engine's debug transitions,
// or anything else chatty, can be switched on per run without touching
// code or flooding tier-1 test output.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>

#include "src/common/sim_clock.hpp"

namespace qkd {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4
};

const char* log_level_name(LogLevel level);
/// Parses "trace" / "debug" / "info" / "warn"(/"warning") / "error"
/// (case-insensitive); nullopt for anything else.
std::optional<LogLevel> parse_log_level(const std::string& name);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replaces the output sink (default writes to stderr). Tests install a
  /// capturing sink; examples install a syslog-style stdout sink.
  /// Thread-safe against concurrent log() calls.
  void set_sink(Sink sink);

  /// Registers (or, with nullptr, clears) the simulation clock whose time
  /// stamps every message as a "[t=...s]" prefix. The clock must outlive
  /// its registration; the logger only reads now() under its own mutex, so
  /// register a clock that is not concurrently advanced mid-log (the global
  /// scheduler's clock between runs, in practice).
  void set_clock(const SimClock* clock);

  bool enabled(LogLevel level) const { return level >= this->level(); }
  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarning};
  std::mutex mu_;  // guards sink_ and clock_ (swap and invocation)
  Sink sink_;
  const SimClock* clock_ = nullptr;
};

/// Stream-style log statement:
///   QKD_LOG(kInfo) << "sifted " << n << " bits";
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::instance().log(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace qkd

#define QKD_LOG(level)                                             \
  if (!::qkd::Logger::instance().enabled(::qkd::LogLevel::level)) \
    ;                                                              \
  else                                                             \
    ::qkd::LogStatement(::qkd::LogLevel::level)
