// Virtual time for the simulator.
//
// All link, protocol and IKE timing (pulse trains at 1 MHz, SA lifetimes in
// seconds, IKE negotiation timeouts) runs against a SimClock rather than wall
// time, so experiments are deterministic and can simulate hours in
// milliseconds. Time is kept in integer nanoseconds to avoid floating-point
// drift over long runs.
#pragma once

#include <cstdint>

namespace qkd {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;

class SimClock {
 public:
  SimTime now() const { return now_; }

  void advance(SimTime delta) { now_ += delta; }
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  double seconds() const { return static_cast<double>(now_) / kSecond; }

 private:
  SimTime now_ = 0;
};

}  // namespace qkd
