// Virtual time for the simulator.
//
// All link, protocol and IKE timing (pulse trains at 1 MHz, SA lifetimes in
// seconds, IKE negotiation timeouts) runs against a SimClock rather than wall
// time, so experiments are deterministic and can simulate hours in
// milliseconds. Time is kept in integer nanoseconds to avoid floating-point
// drift over long runs.
//
// Time never runs backwards: advance() rejects negative deltas and
// advance_to() rejects targets before now. Every layer above (the event
// scheduler in src/sim most of all) leans on that invariant — a silently
// ignored backwards jump used to leave callers believing time had moved.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qkd {

/// Nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

/// Converts a duration in seconds to SimTime ticks (truncating toward zero).
/// Throws std::invalid_argument on negative durations — the one-stop check
/// for every `double seconds` API boundary.
inline SimTime seconds_to_sim(double seconds) {
  if (seconds < 0.0)
    throw std::invalid_argument("seconds_to_sim: negative duration " +
                                std::to_string(seconds));
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

inline double sim_to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Ceiling conversion for deadlines: the earliest tick at which a
/// seconds-domain predicate (`elapsed_seconds >= seconds`) is true. The
/// truncating seconds_to_sim would place a deadline one tick early, where
/// the predicate still reads false and a scheduled wakeup is a no-op.
inline SimTime seconds_to_sim_ceil(double seconds) {
  const SimTime floor = seconds_to_sim(seconds);
  return sim_to_seconds(floor) < seconds ? floor + 1 : floor;
}

class SimClock {
 public:
  SimTime now() const { return now_; }

  void advance(SimTime delta) {
    if (delta < 0)
      throw std::invalid_argument("SimClock::advance: negative delta " +
                                  std::to_string(delta) + " ns");
    now_ += delta;
  }

  void advance_to(SimTime t) {
    if (t < now_)
      throw std::invalid_argument("SimClock::advance_to: target " +
                                  std::to_string(t) + " ns is before now " +
                                  std::to_string(now_) + " ns");
    now_ = t;
  }

  double seconds() const { return sim_to_seconds(now_); }

 private:
  SimTime now_ = 0;
};

/// Advances `clock` by `seconds`, in slices of at most `max_step`, invoking
/// `on_step(dt_seconds)` after each slice with the slice width in seconds.
/// This is THE seconds->SimTime stepping loop; the VPN harness and the mesh
/// step paths share it instead of hand-rolling the conversion (where each
/// copy had its own truncation behavior).
template <typename Fn>
void advance_clock_stepped(SimClock& clock, double seconds, SimTime max_step,
                           Fn&& on_step) {
  if (max_step <= 0)
    throw std::invalid_argument("advance_clock_stepped: max_step must be > 0");
  SimTime remaining = seconds_to_sim(seconds);
  while (remaining > 0) {
    const SimTime delta = remaining < max_step ? remaining : max_step;
    clock.advance(delta);
    remaining -= delta;
    on_step(sim_to_seconds(delta));
  }
}

}  // namespace qkd
