#include "src/common/rng.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace qkd {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound == 0");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

unsigned Rng::next_poisson(double mu) {
  if (mu < 0.0) throw std::invalid_argument("Rng::next_poisson: mu < 0");
  if (mu == 0.0) return 0;
  if (mu < 30.0) {
    // Knuth inversion: multiply uniforms until the product drops below e^-mu.
    const double limit = std::exp(-mu);
    unsigned k = 0;
    double prod = next_double();
    while (prod > limit) {
      ++k;
      prod *= next_double();
    }
    return k;
  }
  // Normal approximation with continuity correction: adequate for large means,
  // which only occur in bright-pulse (framing) simulation where exact Poisson
  // tails are irrelevant.
  const double u1 = next_double(), u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(1.0 - u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  const double v = mu + std::sqrt(mu) * z + 0.5;
  return v < 0.0 ? 0u : static_cast<unsigned>(v);
}

BitVector Rng::next_bits(std::size_t n) {
  BitVector v(n);
  auto words = v.words();
  for (auto& w : words) w = next_u64();
  v.normalize_tail();
  return v;
}

}  // namespace qkd
