#include "src/common/bytes.hpp"

#include <stdexcept>

namespace qkd {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: invalid hex digit");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string s;
  s.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    s.push_back(kHexDigits[b >> 4]);
    s.push_back(kHexDigits[b & 0xf]);
  }
  return s;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>(hex_value(hex[i]) << 4 |
                                            hex_value(hex[i + 1])));
  }
  return out;
}

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_bytes(Bytes& out, std::span<const std::uint8_t> data) {
  out.insert(out.end(), data.begin(), data.end());
}

std::uint8_t ByteReader::u8() {
  if (remaining() < 1) throw std::out_of_range("ByteReader::u8");
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (remaining() < 2) throw std::out_of_range("ByteReader::u16");
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  if (remaining() < 4) throw std::out_of_range("ByteReader::u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (remaining() < 8) throw std::out_of_range("ByteReader::u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | data_[pos_ + i];
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw std::out_of_range("ByteReader::varint: overlong");
    const std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

Bytes ByteReader::bytes(std::size_t n) {
  if (remaining() < n) throw std::out_of_range("ByteReader::bytes");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace qkd
