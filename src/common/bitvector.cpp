#include "src/common/bitvector.hpp"

#include <bit>
#include <stdexcept>

namespace qkd {

BitVector::BitVector(std::initializer_list<int> bits) {
  words_.reserve(word_count(bits.size()));
  for (int b : bits) push_back(b != 0);
}

BitVector BitVector::from_string(std::string_view bits) {
  BitVector v;
  v.words_.reserve(word_count(bits.size()));
  for (char c : bits) {
    if (c != '0' && c != '1')
      throw std::invalid_argument("BitVector::from_string: invalid character");
    v.push_back(c == '1');
  }
  return v;
}

BitVector BitVector::from_uint64(std::uint64_t value, std::size_t n) {
  if (n > 64) throw std::invalid_argument("BitVector::from_uint64: n > 64");
  BitVector v(n);
  if (n > 0) {
    v.words_[0] = (n == 64) ? value : (value & ((std::uint64_t{1} << n) - 1));
  }
  return v;
}

BitVector BitVector::from_bytes(std::span<const std::uint8_t> bytes) {
  BitVector v(bytes.size() * 8);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    v.words_[i / 8] |= std::uint64_t{bytes[i]} << (8 * (i % 8));
  }
  return v;
}

bool BitVector::get(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVector::get");
  return (words_[i >> 6] >> (i & 63)) & 1;
}

void BitVector::set(std::size_t i, bool v) {
  if (i >= size_) throw std::out_of_range("BitVector::set");
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  if (v)
    words_[i >> 6] |= mask;
  else
    words_[i >> 6] &= ~mask;
}

void BitVector::flip(std::size_t i) {
  if (i >= size_) throw std::out_of_range("BitVector::flip");
  words_[i >> 6] ^= std::uint64_t{1} << (i & 63);
}

void BitVector::push_back(bool v) {
  if (words_.size() * 64 == size_) words_.push_back(0);
  if (v) words_[size_ >> 6] |= std::uint64_t{1} << (size_ & 63);
  ++size_;
}

void BitVector::clear() {
  size_ = 0;
  words_.clear();
}

void BitVector::resize(std::size_t n) {
  words_.resize(word_count(n), 0);
  size_ = n;
  normalize_tail();
}

void BitVector::append(const BitVector& other) {
  // Fast path: word-aligned append.
  if ((size_ & 63) == 0) {
    words_.resize(word_count(size_ + other.size_), 0);
    const std::size_t base = size_ >> 6;
    for (std::size_t w = 0; w < other.words_.size(); ++w)
      words_[base + w] = other.words_[w];
    size_ += other.size_;
    normalize_tail();
    return;
  }
  for (std::size_t i = 0; i < other.size_; ++i) push_back(other.get(i));
}

BitVector BitVector::slice(std::size_t begin, std::size_t len) const {
  if (begin + len > size_) throw std::out_of_range("BitVector::slice");
  BitVector out(len);
  const std::size_t shift = begin & 63;
  const std::size_t base = begin >> 6;
  if (shift == 0) {
    for (std::size_t w = 0; w < out.words_.size(); ++w)
      out.words_[w] = words_[base + w];
  } else {
    for (std::size_t w = 0; w < out.words_.size(); ++w) {
      std::uint64_t lo = words_[base + w] >> shift;
      std::uint64_t hi = (base + w + 1 < words_.size())
                             ? (words_[base + w + 1] << (64 - shift))
                             : 0;
      out.words_[w] = lo | hi;
    }
  }
  out.normalize_tail();
  return out;
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVector::parity() const {
  std::uint64_t acc = 0;
  for (std::uint64_t w : words_) acc ^= w;
  return std::popcount(acc) & 1;
}

bool BitVector::masked_parity(const BitVector& mask) const {
  if (mask.size_ != size_)
    throw std::invalid_argument("BitVector::masked_parity: size mismatch");
  std::uint64_t acc = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) acc ^= words_[w] & mask.words_[w];
  return std::popcount(acc) & 1;
}

bool BitVector::masked_range_parity(const BitVector& mask, std::size_t begin,
                                    std::size_t end) const {
  if (mask.size_ != size_)
    throw std::invalid_argument("BitVector::masked_range_parity: size mismatch");
  if (begin > end || end > size_)
    throw std::out_of_range("BitVector::masked_range_parity: bad range");
  if (begin == end) return false;
  const std::size_t wb = begin >> 6, we = (end - 1) >> 6;
  std::uint64_t acc = 0;
  for (std::size_t w = wb; w <= we; ++w) {
    std::uint64_t bits = words_[w] & mask.words_[w];
    if (w == wb) {
      const std::size_t off = begin & 63;
      bits &= ~std::uint64_t{0} << off;
    }
    if (w == we) {
      const std::size_t off = end - (w << 6);  // 1..64 bits valid in last word
      if (off < 64) bits &= (std::uint64_t{1} << off) - 1;
    }
    acc ^= bits;
  }
  return std::popcount(acc) & 1;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  if (other.size_ != size_)
    throw std::invalid_argument("BitVector::operator^=: size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  if (other.size_ != size_)
    throw std::invalid_argument("BitVector::hamming_distance: size mismatch");
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_.size(); ++w)
    n += static_cast<std::size_t>(std::popcount(words_[w] ^ other.words_[w]));
  return n;
}

std::uint64_t BitVector::to_uint64() const {
  if (words_.empty()) return 0;
  if (size_ >= 64) return words_[0];
  return words_[0] & ((std::uint64_t{1} << size_) - 1);
}

std::vector<std::uint8_t> BitVector::to_bytes() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::uint8_t>(words_[i / 8] >> (8 * (i % 8)));
  return out;
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

void BitVector::normalize_tail() {
  const std::size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << rem) - 1;
}

}  // namespace qkd
