// BitVector: a packed, growable vector of bits.
//
// This is the workhorse container of the QKD protocol stack: raw key symbols,
// sifted bits, Cascade subset masks, privacy-amplification inputs and distilled
// key material are all BitVectors. Bits are stored LSB-first inside 64-bit
// words; bit i lives in word i/64 at position i%64.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace qkd {

class BitVector {
 public:
  BitVector() = default;

  /// Constructs a vector of `n` bits, all zero.
  explicit BitVector(std::size_t n) : size_(n), words_(word_count(n), 0) {}

  /// Constructs from a literal, e.g. BitVector{1,0,1,1}.
  BitVector(std::initializer_list<int> bits);

  /// Parses a string of '0'/'1' characters; throws std::invalid_argument otherwise.
  static BitVector from_string(std::string_view bits);

  /// Packs the low `n` bits of `value`, LSB first.
  static BitVector from_uint64(std::uint64_t value, std::size_t n);

  /// Interprets each byte of `bytes` as 8 bits, LSB first within each byte.
  static BitVector from_bytes(std::span<const std::uint8_t> bytes);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v);
  void flip(std::size_t i);

  void push_back(bool v);
  void clear();
  void resize(std::size_t n);

  /// Appends all bits of `other`.
  void append(const BitVector& other);

  /// Returns bits [begin, begin+len).
  BitVector slice(std::size_t begin, std::size_t len) const;

  /// Number of set bits.
  std::size_t popcount() const;

  /// Parity (XOR) of all bits.
  bool parity() const;

  /// Parity of the bits selected by `mask` (mask.size() must equal size()).
  bool masked_parity(const BitVector& mask) const;

  /// Parity of bits in [begin, end) intersected with `mask`.
  bool masked_range_parity(const BitVector& mask, std::size_t begin,
                           std::size_t end) const;

  /// In-place XOR with another vector of the same size.
  BitVector& operator^=(const BitVector& other);
  friend BitVector operator^(BitVector a, const BitVector& b) { return a ^= b; }

  bool operator==(const BitVector& other) const;

  /// Number of positions where this and `other` differ (sizes must match).
  std::size_t hamming_distance(const BitVector& other) const;

  /// First 64 bits (or fewer) as an integer, LSB first.
  std::uint64_t to_uint64() const;

  /// Packs bits into bytes, LSB first within each byte; final partial byte zero-padded.
  std::vector<std::uint8_t> to_bytes() const;

  /// '0'/'1' rendering, bit 0 first.
  std::string to_string() const;

  /// Direct word access for bulk algorithms (e.g. GF(2^n) multiplication).
  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> words() { return words_; }

  /// Zeroes any bits beyond size() in the last word (bulk writers must call this).
  void normalize_tail();

  static std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace qkd
