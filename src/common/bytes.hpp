// Byte-buffer helpers: hex codec, big-endian integer packing and a simple
// serialization cursor used by the protocol message codecs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace qkd {

using Bytes = std::vector<std::uint8_t>;

std::string to_hex(std::span<const std::uint8_t> data);
Bytes from_hex(std::string_view hex);  // throws std::invalid_argument

/// Appends `v` to `out` in big-endian byte order.
void put_u8(Bytes& out, std::uint8_t v);
void put_u16(Bytes& out, std::uint16_t v);
void put_u32(Bytes& out, std::uint32_t v);
void put_u64(Bytes& out, std::uint64_t v);
/// LEB128-style unsigned varint (used by the sifting run-length codec).
void put_varint(Bytes& out, std::uint64_t v);
void put_bytes(Bytes& out, std::span<const std::uint8_t> data);

/// Sequential reader over a byte span; all reads throw std::out_of_range on
/// underrun, which message decoders translate into protocol errors.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  Bytes bytes(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace qkd
