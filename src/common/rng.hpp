// Deterministic random number generation for the simulator.
//
// Every stochastic component (photon sources, detectors, Eve, protocol nonce
// generation) draws from its own Rng instance, seeded from a master seed via
// SplitMix64, so that simulations are exactly reproducible and components can
// be re-seeded independently in tests.
//
// The core generator is xoshiro256** (Blackman & Vigna), small, fast and of
// far higher quality than std::minstd; we avoid std::mt19937 for speed in the
// per-pulse Monte-Carlo loops (millions of draws per simulated second).
#pragma once

#include <cstdint>
#include <limits>

#include "src/common/bitvector.hpp"

namespace qkd {

/// SplitMix64 step; used for seeding and cheap hashing of seed material.
std::uint64_t splitmix64(std::uint64_t& state);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child generator (for per-component seeding).
  Rng fork();

  std::uint64_t next_u64();
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Poisson-distributed count with mean `mu` (exact inversion for small mu,
  /// PTRS rejection for large mu). QKD sources use mu ~ 0.1.
  unsigned next_poisson(double mu);

  /// Vector of n independent uniform bits.
  BitVector next_bits(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace qkd
