// A persistent worker pool with one blocking primitive: parallel_for.
//
// The pool owns `lanes - 1` threads; the caller is the remaining lane, so
// WorkerPool(1) spawns nothing and parallel_for degenerates to a plain loop
// that visits indices 0..count-1 IN ORDER — the contract the deterministic
// single-thread paths (tier-1 tests, LinkKeyService threads=1) rely on.
// With more lanes, workers claim indices from a shared atomic counter, so
// each index runs exactly once on exactly one lane and parallel_for returns
// only after every index has finished (the join is the synchronization
// barrier callers use to publish results).
//
// One pool is meant to be SHARED by every parallel layer of the stack
// (LinkKeyService distillation, ShardedScheduler shard streams, the KMS
// barrier fan-out) instead of each layer spawning its own threads per
// batch. parallel_for is not reentrant from inside a task; a nested call
// from a worker lane runs inline on that lane instead of deadlocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qkd::common {

class WorkerPool {
 public:
  /// `lanes` counts the caller too: lanes <= 1 means no threads at all.
  explicit WorkerPool(std::size_t lanes);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Concurrent lanes (worker threads + the calling thread); always >= 1.
  std::size_t lanes() const { return threads_.size() + 1; }

  /// min(hardware_concurrency, 8), at least 1 — the historical default of
  /// LinkKeyService's own per-batch thread spawning.
  static std::size_t default_lanes();

  /// Runs task(0) .. task(count-1), each exactly once, across all lanes,
  /// and returns when every index has completed. With one lane the indices
  /// run inline in ascending order. If any task throws, the first captured
  /// exception is rethrown on the caller after the barrier (the remaining
  /// indices still run).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& task);

  // ---- Utilization accounting ----------------------------------------------
  // Per-lane task tallies (relaxed atomics, one cache line each) so a
  // metrics snapshot can see how evenly work spreads across lanes without
  // adding any synchronization to the claim loop. Lane 0 is the caller.
  /// parallel_for jobs dispatched (inline fast-path runs included).
  std::uint64_t jobs_dispatched() const {
    return jobs_.load(std::memory_order_relaxed);
  }
  /// Task indices this lane has executed.
  std::uint64_t lane_tasks(std::size_t lane) const {
    return lane < lane_tasks_.size()
               ? lane_tasks_[lane].v.load(std::memory_order_relaxed)
               : 0;
  }
  /// Task indices executed across all lanes.
  std::uint64_t total_tasks() const;

 private:
  void worker_main(std::size_t lane);
  /// Claims and runs indices of the current job until they run out.
  void run_slice(const std::function<void(std::size_t)>& task,
                 std::size_t count, std::size_t lane);

  struct LaneCounter {
    alignas(64) std::atomic<std::uint64_t> v{0};
  };

  std::vector<std::thread> threads_;
  std::vector<LaneCounter> lane_tasks_;  // sized lanes(); index 0 = caller
  std::atomic<std::uint64_t> jobs_{0};

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current job, valid while generation_ is ahead of a worker's last-seen
  // value. next_ is the shared index claim counter.
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t working_ = 0;  // workers still inside the current job
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace qkd::common
