// Path computation over the QKD mesh.
//
// "When a given point-to-point QKD link within the relay mesh fails — e.g.
// by fiber cut or too much eavesdropping or noise — that link is abandoned
// and another used instead." Routing treats non-usable links as absent and
// minimizes a cost that prefers short, key-rich paths.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "src/network/topology.hpp"

namespace qkd::network {

struct Route {
  std::vector<NodeId> nodes;  // src ... dst
  std::vector<LinkId> links;  // nodes.size() - 1 entries
  double cost = 0.0;

  std::size_t hop_count() const { return links.size(); }
};

/// Per-link routing cost; defaults to hop count when the callback is empty.
using LinkCostFn = std::function<double(const Link&)>;

/// Dijkstra over usable links; nullopt when disconnected. `via_kinds`
/// restricts which node kinds may appear as interior nodes (endpoints can
/// always be route termini but never transit).
std::optional<Route> shortest_route(const Topology& topology, NodeId src,
                                    NodeId dst,
                                    const LinkCostFn& cost = {});

/// Number of edge-disjoint usable paths between two nodes (max-flow with
/// unit capacities) — the redundancy measure of the E12 resilience bench.
std::size_t disjoint_path_count(const Topology& topology, NodeId src,
                                NodeId dst);

}  // namespace qkd::network
