#include "src/network/key_transport.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/qkd/entropy.hpp"

namespace qkd::network {
namespace {

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/// Expected QBER of a link including any intercept-resend fraction.
double link_qber(const Link& link, double intercept_fraction) {
  const qkd::optics::LinkModel model(link.optics);
  const double base = model.expected_qber();
  return base + 0.25 * intercept_fraction * (1.0 - base);
}

}  // namespace

double estimated_distill_fraction(const qkd::optics::LinkModel& model) {
  const double q = model.expected_qber();
  if (q >= 0.11) return 0.0;  // QBER alarm: link abandoned
  const double ec_cost = 1.2 * binary_entropy(q);       // classic Cascade
  const double bennett = 2.0 * std::sqrt(2.0) * q;      // defense function
  const double multi =
      qkd::proto::conditional_multi_photon_probability(
          model.params().mean_photon_number);
  return std::max(0.0, 1.0 - ec_cost - bennett - multi);
}

double link_distill_rate_bps(const Link& link) {
  if (!link.usable()) return 0.0;
  const qkd::optics::LinkModel model(link.optics);
  return model.sifted_rate_bps() * estimated_distill_fraction(model);
}

MeshSimulation::MeshSimulation(Topology topology, std::uint64_t seed)
    : topology_(std::move(topology)),
      rng_(seed),
      pools_(topology_.link_count(), 0.0),
      eavesdrop_fraction_(topology_.link_count(), 0.0),
      compromised_(topology_.node_count(), 0) {}

MeshSimulation::MeshSimulation(Topology topology, std::uint64_t seed,
                               LinkKeyService::Config engine)
    : topology_(std::move(topology)),
      rng_(seed),
      rate_model_(RateModel::kEngine),
      pools_(topology_.link_count(), 0.0),
      eavesdrop_fraction_(topology_.link_count(), 0.0),
      compromised_(topology_.node_count(), 0) {
  engine.seed = seed;
  service_ = std::make_unique<LinkKeyService>(topology_, engine);
}

void MeshSimulation::sync_engine_link_states() {
  for (const Link& link : topology_.links())
    service_->set_link_enabled(link.id, link.usable());
}

void MeshSimulation::purge_pool(LinkId link) {
  pools_[link] = 0.0;
  // Engine mode: the accumulated key lives in the link's supply; a cut or
  // abandoned link's material is discarded with it.
  if (service_) service_->supply(link).take_all("MeshSimulation::purge_pool");
}

double MeshSimulation::link_pool_bits(LinkId link) const {
  if (rate_model_ == RateModel::kEngine)
    return static_cast<double>(service_->supply(link).available_bits());
  return pools_.at(link);
}

void MeshSimulation::step(double dt_seconds) {
  if (rate_model_ == RateModel::kEngine) {
    // Real distillation: the engines charge for sub-alarm eavesdropping on
    // their own (the entropy estimate sees the induced errors), and an
    // abandoned/cut link simply runs no batches. Accepted batches land in
    // each link's KeySupply; transport_key() withdraws from there.
    sync_engine_link_states();
    service_->advance(dt_seconds);
    return;
  }
  for (const Link& link : topology_.links()) {
    if (!link.usable()) continue;
    // Eavesdropping below the alarm threshold still costs key: the entropy
    // estimate charges for the induced errors.
    const double q = link_qber(link, eavesdrop_fraction_[link.id]);
    if (q >= 0.11) continue;
    qkd::optics::LinkModel model(link.optics);
    const double fraction =
        std::max(0.0, 1.0 - 1.2 * binary_entropy(q) -
                          2.0 * std::sqrt(2.0) * q -
                          qkd::proto::conditional_multi_photon_probability(
                              link.optics.mean_photon_number));
    pools_[link.id] += model.sifted_rate_bps() * fraction * dt_seconds;
  }
}

void MeshSimulation::run_on_clock(qkd::SimClock& clock, double seconds,
                                  double tick_seconds) {
  qkd::advance_clock_stepped(clock, seconds, qkd::seconds_to_sim(tick_seconds),
                             [this](double dt_seconds) { step(dt_seconds); });
}

MeshSimulation::TransportResult MeshSimulation::transport_key(
    NodeId src, NodeId dst, std::size_t bits) {
  return transport_key_batch(src, dst, {bits});
}

MeshSimulation::TransportResult MeshSimulation::transport_key_batch(
    NodeId src, NodeId dst, const std::vector<std::size_t>& request_bits,
    obs::TraceContext trace) {
  if (request_bits.empty())
    throw std::invalid_argument("MeshSimulation: empty transport batch");
  std::size_t payload_bits = 0;
  for (std::size_t bits : request_bits) {
    if (bits == 0)
      throw std::invalid_argument(
          "MeshSimulation: zero-bit request in transport batch");
    payload_bits += bits;
  }
  // Uncached plan: routes every frame against the global last-route memo
  // (the legacy reroute accounting) and finalizes on the mesh's own rng —
  // the draw order (key, then analytic pads hop by hop) is unchanged.
  return finalize_frame(
      plan_key_batch(src, dst, payload_bits, nullptr, trace), rng_);
}

MeshSimulation::FramePlan MeshSimulation::plan_key_batch(NodeId src,
                                                         NodeId dst,
                                                         std::size_t payload_bits,
                                                         RouteCache* cache,
                                                         obs::TraceContext trace) {
  if (payload_bits == 0)
    throw std::invalid_argument("MeshSimulation: zero-bit transport plan");
  // One frame per hop: the concatenated payloads plus the header+tag
  // overhead, all of it OTP-encrypted under the hop's pairwise pad.
  const std::size_t frame_bits = payload_bits + kFrameOverheadBits;

  // recording() gates the attr formatting so a disabled tracer costs the
  // span constructor's single branch, not std::to_string allocations.
  obs::ScopedSpan plan_span(tracer_, "mesh.plan", trace);
  if (plan_span.recording()) {
    plan_span.attr("src", std::to_string(src));
    plan_span.attr("dst", std::to_string(dst));
    plan_span.attr("payload_bits", std::to_string(payload_bits));
  }

  FramePlan plan;
  plan.payload_bits = payload_bits;
  ++stats_.transports_attempted;

  const double need = static_cast<double>(frame_bits);
  const auto affordable = [this, need](const Route& route) {
    for (LinkId link_id : route.links)
      if (link_pool_bits(link_id) < need) return false;
    return true;
  };

  std::optional<Route> route;
  if (cache != nullptr && cache->route.has_value() &&
      cache->version == topology_version_ && affordable(*cache->route)) {
    route = cache->route;  // hot path: no Dijkstra, no reroute
  } else {
    // Prefer key-rich links that skirt compromised relays: cost = 1 plus a
    // shortage penalty plus a trust penalty (either makes the link a last
    // resort, never absent — a starved or owned path still beats no path).
    const auto cost = [this, need](const Link& link) {
      const double pool = link_pool_bits(link.id);
      double c = pool >= need ? 1.0 : 1000.0;
      if (node_compromised(link.a) || node_compromised(link.b)) c += 1000.0;
      return c;
    };
    route = shortest_route(topology_, src, dst, cost);
    if (!route.has_value()) {
      if (cache != nullptr) cache->route.reset();
      ++stats_.transports_no_route;
      plan_span.attr("result", "no-route");
      return plan;
    }
    if (cache != nullptr) {
      // Per-caller reroute accounting: this pair's route changed.
      if (cache->route.has_value() && cache->route->links != route->links)
        ++stats_.reroutes;
      cache->route = route;
      cache->version = topology_version_;
    }
  }
  if (cache == nullptr) {
    if (last_route_.has_value() && last_route_->links != route->links)
      ++stats_.reroutes;
    last_route_ = route;
  }
  plan.route = *route;

  // Check every hop can afford the frame before consuming anything.
  if (!affordable(*route)) {
    ++stats_.transports_starved;
    plan_span.attr("result", "starved");
    return plan;
  }

  // Consume the hop pads now, sequentially: engine mode withdraws the
  // actual distilled bits from each link's KeySupply (both link ends hold
  // the same stream); analytic mode only debits the rate-model pool — the
  // simulated pad bits are drawn later, inside finalize_frame.
  for (std::size_t hop = 0; hop < route->links.size(); ++hop) {
    const LinkId link_id = route->links[hop];
    obs::ScopedSpan hop_span(tracer_, "mesh.hop", plan_span.context());
    if (rate_model_ == RateModel::kEngine) {
      plan.hop_pads.push_back(
          service_->supply(link_id)
              .request_bits(frame_bits, "MeshSimulation::transport_key")
              ->bits);
    } else {
      pools_[link_id] -= need;
    }
    plan.pool_bits_consumed += frame_bits;
    // The far end of the hop decrypts; if it is a relay, the key will sit
    // in its memory in the clear.
    const NodeId holder = route->nodes[hop + 1];
    if (topology_.node(holder).kind == NodeKind::kTrustedRelay)
      plan.exposed_to.push_back(holder);
    if (hop_span.recording()) {
      hop_span.attr("link", std::to_string(link_id));
      hop_span.attr("to_node", std::to_string(holder));
      hop_span.attr("pad_bits", std::to_string(frame_bits));
    }
  }

  for (NodeId relay : plan.exposed_to)
    if (node_compromised(relay)) plan.compromised = true;
  if (plan.compromised) ++stats_.transports_compromised;

  plan.success = true;
  ++stats_.transports_succeeded;
  if (plan_span.recording()) {
    plan_span.attr("hops", std::to_string(route->links.size()));
    plan_span.attr("exposed_relays", std::to_string(plan.exposed_to.size()));
    if (plan.compromised) plan_span.attr("compromised", "true");
  }
  return plan;
}

MeshSimulation::TransportResult MeshSimulation::finalize_frame(
    const FramePlan& plan, qkd::Rng& rng) {
  TransportResult result;
  result.route = plan.route;
  result.exposed_to = plan.exposed_to;
  result.compromised = plan.compromised;
  result.pool_bits_consumed = plan.pool_bits_consumed;
  if (!plan.success) return result;

  const std::size_t frame_bits = plan.payload_bits + kFrameOverheadBits;
  // Hop-by-hop one-time-pad relay. The key leaves the source encrypted,
  // is decrypted and re-encrypted inside every relay, and arrives intact.
  result.key = rng.next_bits(plan.payload_bits);
  qkd::BitVector in_flight = result.key;
  for (std::size_t hop = 0; hop < plan.route.links.size(); ++hop) {
    const qkd::BitVector pad = plan.hop_pads.empty()
                                   ? rng.next_bits(frame_bits)
                                   : plan.hop_pads[hop];
    const qkd::BitVector payload_pad = pad.slice(0, plan.payload_bits);
    qkd::BitVector ciphertext = in_flight;
    ciphertext ^= payload_pad;  // encrypted on the wire (tag under the rest)
    in_flight = ciphertext;
    in_flight ^= payload_pad;
  }
  if (!(in_flight == result.key))
    throw std::logic_error("MeshSimulation: relay chain corrupted the key");

  result.success = true;
  return result;
}

void MeshSimulation::bind_metrics(obs::MetricsRegistry& registry,
                                  std::string prefix) {
  registry.add_collector([this, prefix = std::move(prefix)](
                             obs::MetricsRegistry::Collect& out) {
    out.counter(prefix + "_transports_attempted", stats_.transports_attempted);
    out.counter(prefix + "_transports_succeeded", stats_.transports_succeeded);
    out.counter(prefix + "_transports_no_route", stats_.transports_no_route);
    out.counter(prefix + "_transports_starved", stats_.transports_starved);
    out.counter(prefix + "_reroutes", stats_.reroutes);
    out.counter(prefix + "_transports_compromised",
                stats_.transports_compromised);
    double pool_bits = 0.0;
    std::size_t unusable = 0;
    for (const Link& link : topology_.links()) {
      pool_bits += link_pool_bits(link.id);
      if (!link.usable()) ++unusable;
      // Per-link health gauges, the signals the paper's alarms watch:
      // QBER in percent (intercept-resend drives it toward ~25%; the
      // protocol abandons the link at 11%) and the pooled bits behind it.
      const std::string id = std::to_string(link.id);
      out.gauge(prefix + "_link" + id + "_qber_percent",
                100.0 * link_qber(link, eavesdrop_fraction_[link.id]));
      out.gauge(prefix + "_link" + id + "_pool_bits", link_pool_bits(link.id));
    }
    out.gauge(prefix + "_pool_bits_total", pool_bits);
    out.gauge(prefix + "_links_unusable", static_cast<double>(unusable));
  });
}

void MeshSimulation::cut_link(LinkId link) {
  topology_.link(link).state = LinkState::kCut;
  purge_pool(link);
  if (service_) service_->set_link_enabled(link, false);
  ++topology_version_;
}

bool MeshSimulation::set_classical_conditions(
    LinkId link, const qkd::net::ClassicalConditions& conditions) {
  if (!service_) return false;  // analytic mode has no classical channel
  // Seed per link so two impaired links drop/reorder independently.
  service_->session(link).channel().set_conditions(conditions,
                                                   0x57A11EDULL ^ link);
  return true;
}

double MeshSimulation::eavesdrop_link(LinkId link, double intercept_fraction) {
  eavesdrop_fraction_[link] = intercept_fraction;
  if (service_) {
    // The engine meets Eve on the quantum channel itself; her key cost (or
    // the QBER alarm) then comes out of the pipeline, not a formula.
    service_->set_attack(
        link, intercept_fraction > 0.0
                  ? std::make_unique<qkd::optics::InterceptResendAttack>(
                        intercept_fraction)
                  : nullptr);
  }
  const double q = link_qber(topology_.link(link), intercept_fraction);
  if (q >= 0.11) {
    // "too much eavesdropping or noise — that link is abandoned".
    topology_.link(link).state = LinkState::kEavesdropped;
    purge_pool(link);
  }
  ++topology_version_;
  return q;
}

void MeshSimulation::compromise_node(NodeId node) {
  compromised_.at(node) = 1;
  ++topology_version_;  // routing costs changed: cached routes go stale
}

void MeshSimulation::restore_node(NodeId node) {
  compromised_.at(node) = 0;
  ++topology_version_;
}

bool MeshSimulation::node_compromised(NodeId node) const {
  return node < compromised_.size() && compromised_[node] != 0;
}

void MeshSimulation::restore_link(LinkId link) {
  topology_.link(link).state = LinkState::kUp;
  eavesdrop_fraction_[link] = 0.0;
  if (service_) {
    service_->set_attack(link, nullptr);
    service_->set_link_enabled(link, true);
  }
  ++topology_version_;
}

}  // namespace qkd::network
