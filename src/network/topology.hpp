// Topology model for the DARPA Quantum Network's mesh (Section 8).
//
// Nodes are QKD endpoints, trusted relays, or untrusted photonic switches;
// links are point-to-point QKD channels characterized by their optics
// (length, loss) via the analytic LinkModel. Mesh experiments (E12-E14) run
// on this graph: link failures and eavesdropping flip link state, routing
// finds alternate paths, and the topology-cost analysis (N*(N-1)/2 vs. N
// links) enumerates construction costs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/optics/link_model.hpp"

namespace qkd::network {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

enum class NodeKind : std::uint8_t {
  kEndpoint,        // holds user keys, terminates QKD
  kTrustedRelay,    // terminates QKD per hop; sees transported keys
  kUntrustedSwitch  // all-optical; never sees photons' values
};

struct Node {
  NodeId id = 0;
  std::string name;
  NodeKind kind = NodeKind::kEndpoint;
};

enum class LinkState : std::uint8_t {
  kUp,
  kCut,           // fiber cut (DoS)
  kEavesdropped,  // QBER alarm raised; abandoned per Sec. 8
};

struct Link {
  LinkId id = 0;
  NodeId a = 0;
  NodeId b = 0;
  qkd::optics::LinkParams optics;
  LinkState state = LinkState::kUp;

  NodeId other(NodeId node) const { return node == a ? b : a; }
  bool connects(NodeId node) const { return node == a || node == b; }
  bool usable() const { return state == LinkState::kUp; }
};

class Topology {
 public:
  NodeId add_node(std::string name, NodeKind kind);
  LinkId add_link(NodeId a, NodeId b, qkd::optics::LinkParams optics = {});

  const Node& node(NodeId id) const { return nodes_.at(id); }
  Node& node(NodeId id) { return nodes_.at(id); }
  const Link& link(LinkId id) const { return links_.at(id); }
  Link& link(LinkId id) { return links_.at(id); }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// Links touching `node`.
  std::vector<LinkId> links_of(NodeId node) const;

  /// Looks up the (first) link between two nodes, if any.
  std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  // --- Canned topologies for the benches ---------------------------------

  /// Complete graph over `n` endpoints: the N*(N-1)/2 point-to-point cost
  /// baseline of Section 8.
  static Topology full_mesh(std::size_t n, double link_km = 10.0);

  /// Star: one central relay, N spokes — "as few as N links".
  static Topology star(std::size_t n, double link_km = 10.0);

  /// Ring of relays with endpoints attached, at least 2 disjoint paths.
  static Topology relay_ring(std::size_t n, double link_km = 10.0);

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
};

}  // namespace qkd::network
