// The untrusted photonic-switch network of Section 8.
//
// "Untrusted QKD switches do not participate in QKD protocols at all.
// Instead they set up all-optical paths through the network mesh ... a
// photon from its source QKD endpoint proceeds, without measurement, from
// switch to switch ... until it reaches the destination endpoint." The
// price: "each switch adds at least a fractional dB insertion loss along
// the photonic path", so switches reduce reach instead of extending it —
// quantified by bench E14.
#pragma once

#include <optional>

#include "src/network/routing.hpp"
#include "src/network/topology.hpp"

namespace qkd::network {

struct SwitchPathBudget {
  double total_fiber_km = 0.0;
  double switch_count = 0.0;       // interior switches traversed
  double total_insertion_db = 0.0; // fixed losses incl. switch insertion
  qkd::optics::LinkParams end_to_end;  // composite optics
  double expected_qber = 0.0;
  double sifted_rate_bps = 0.0;
  double distilled_rate_bps = 0.0;
  bool in_range = false;           // QBER below the 11 % alarm
};

/// Computes the optical budget of an all-optical path: every interior node
/// must be an untrusted switch (throws std::invalid_argument otherwise).
/// The composite channel concatenates fiber spans and adds
/// `per_switch_insertion_db` per interior switch; the endpoints' QKD
/// hardware parameters are taken from the first link.
SwitchPathBudget switch_path_budget(const Topology& topology,
                                    const Route& route,
                                    double per_switch_insertion_db = 1.0);

/// Finds the best all-optical route between two endpoints (interior nodes
/// restricted to untrusted switches) and returns its budget; nullopt when no
/// such route exists.
std::optional<SwitchPathBudget> best_switch_path(
    const Topology& topology, NodeId src, NodeId dst,
    double per_switch_insertion_db = 1.0);

}  // namespace qkd::network
