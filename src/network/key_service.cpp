#include "src/network/key_service.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/common/rng.hpp"

namespace qkd::network {
namespace {

/// Spreads link ids into independent session seeds so neighboring links
/// never share streams (and the derivation is stable regardless of how
/// many links or threads exist).
std::uint64_t link_seed(std::uint64_t master, LinkId id) {
  std::uint64_t state = master + 0x9E3779B97F4A7C15ULL * id;
  return qkd::splitmix64(state);
}

}  // namespace

LinkKeyService::LinkKeyService(const Topology& topology, Config config)
    : threads_(config.threads != 0
                   ? config.threads
                   : std::max<std::size_t>(
                         1, std::min<std::size_t>(
                                std::thread::hardware_concurrency(), 8))) {
  links_.reserve(topology.link_count());
  for (const Link& link : topology.links()) {
    qkd::proto::QkdLinkConfig proto = config.proto;
    proto.link = link.optics;
    LinkState state;
    state.session = std::make_unique<qkd::proto::QkdLinkSession>(
        proto, link_seed(config.seed, link.id));
    state.enabled = link.usable();
    links_.push_back(std::move(state));
  }
}

LinkKeyService::~LinkKeyService() = default;

qkd::proto::QkdLinkSession& LinkKeyService::session(LinkId id) {
  return *links_.at(id).session;
}

const qkd::proto::QkdLinkSession& LinkKeyService::session(LinkId id) const {
  return *links_.at(id).session;
}

void LinkKeyService::set_attack(LinkId id,
                                std::unique_ptr<qkd::optics::Attack> attack) {
  links_.at(id).attack = std::move(attack);
}

void LinkKeyService::set_link_enabled(LinkId id, bool enabled) {
  links_.at(id).enabled = enabled;
}

bool LinkKeyService::link_enabled(LinkId id) const {
  return links_.at(id).enabled;
}

void LinkKeyService::execute(const std::vector<std::size_t>& plan) {
  // Fan links out across workers: each worker claims whole links, so one
  // link's batches always run sequentially against its own session state.
  std::atomic<std::size_t> next{0};
  const auto worker = [this, &plan, &next] {
    for (std::size_t i = next.fetch_add(1); i < links_.size();
         i = next.fetch_add(1)) {
      LinkState& link = links_[i];
      for (std::size_t b = 0; b < plan[i]; ++b) {
        const qkd::proto::BatchResult batch =
            link.session->run_batch(link.attack.get());
        if (batch.accepted) link.pool.append(batch.key);
      }
    }
  };
  const std::size_t n_workers =
      std::min(threads_, std::max<std::size_t>(1, links_.size()));
  if (n_workers <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n_workers);
  for (std::size_t t = 0; t < n_workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
}

void LinkKeyService::run_batches(std::size_t batches_per_link) {
  std::vector<std::size_t> plan(links_.size(), 0);
  for (std::size_t i = 0; i < links_.size(); ++i)
    if (links_[i].enabled) plan[i] = batches_per_link;
  execute(plan);
}

void LinkKeyService::advance(double dt_seconds) {
  if (dt_seconds <= 0.0) return;
  std::vector<std::size_t> plan(links_.size(), 0);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkState& link = links_[i];
    if (!link.enabled) continue;
    const double frame_s = link.session->link().frame_duration_s(
        link.session->config().frame_slots);
    link.frame_debt_s += dt_seconds;
    const auto batches = static_cast<std::size_t>(link.frame_debt_s / frame_s);
    link.frame_debt_s -= static_cast<double>(batches) * frame_s;
    plan[i] = batches;
  }
  execute(plan);
}

std::size_t LinkKeyService::pool_bits(LinkId id) const {
  return links_.at(id).pool.size();
}

std::optional<qkd::BitVector> LinkKeyService::withdraw(LinkId id,
                                                       std::size_t bits) {
  LinkState& link = links_.at(id);
  if (link.pool.size() < bits) return std::nullopt;
  qkd::BitVector out = link.pool.slice(0, bits);
  link.pool = link.pool.slice(bits, link.pool.size() - bits);
  return out;
}

qkd::BitVector LinkKeyService::drain(LinkId id) {
  LinkState& link = links_.at(id);
  return std::exchange(link.pool, qkd::BitVector());
}

}  // namespace qkd::network
