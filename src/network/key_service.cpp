#include "src/network/key_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/common/rng.hpp"

namespace qkd::network {
namespace {

/// Spreads link ids into independent session seeds so neighboring links
/// never share streams (and the derivation is stable regardless of how
/// many links or threads exist).
std::uint64_t link_seed(std::uint64_t master, LinkId id) {
  std::uint64_t state = master + 0x9E3779B97F4A7C15ULL * id;
  return qkd::splitmix64(state);
}

}  // namespace

LinkKeyService::LinkKeyService(const Topology& topology, Config config) {
  links_.reserve(topology.link_count());
  for (const Link& link : topology.links()) {
    qkd::proto::QkdLinkConfig proto = config.proto;
    proto.link = link.optics;
    LinkState state;
    state.session = std::make_unique<qkd::proto::QkdLinkSession>(
        proto, link_seed(config.seed, link.id));
    state.session->supply_pool().set_label("link-" + std::to_string(link.id));
    state.enabled = link.usable();
    links_.push_back(std::move(state));
  }
  if (config.pool) {
    pool_ = config.pool;  // shared with the rest of the stack; not resized
  } else {
    // Clamp ONCE here — more lanes than links never helped, and the old
    // per-batch std::min recomputation is gone with the per-batch spawning.
    const std::size_t requested = config.threads != 0
                                      ? config.threads
                                      : qkd::common::WorkerPool::default_lanes();
    const std::size_t lanes = std::max<std::size_t>(
        1, std::min(requested, std::max<std::size_t>(1, links_.size())));
    pool_ = std::make_shared<qkd::common::WorkerPool>(lanes);
  }
}

LinkKeyService::~LinkKeyService() = default;

qkd::proto::QkdLinkSession& LinkKeyService::session(LinkId id) {
  return *links_.at(id).session;
}

const qkd::proto::QkdLinkSession& LinkKeyService::session(LinkId id) const {
  return *links_.at(id).session;
}

void LinkKeyService::set_attack(LinkId id,
                                std::unique_ptr<qkd::optics::Attack> attack) {
  links_.at(id).session->set_attack(std::move(attack));
}

void LinkKeyService::set_link_enabled(LinkId id, bool enabled) {
  links_.at(id).enabled = enabled;
}

bool LinkKeyService::link_enabled(LinkId id) const {
  return links_.at(id).enabled;
}

qkd::keystore::KeySupply& LinkKeyService::supply(std::size_t id) {
  return links_.at(id).session->supply();
}

const qkd::keystore::KeySupply& LinkKeyService::supply(std::size_t id) const {
  return links_.at(id).session->supply();
}

void LinkKeyService::attach_sink(std::size_t id,
                                 qkd::keystore::KeySupply& sink) {
  links_.at(id).session->attach_sink(0, sink);
}

template <typename Fn>
void LinkKeyService::for_each_enabled_link(const Fn& work) {
  // Each parallel_for index is one whole link, so a link's batches always
  // run sequentially against its own session state (and its sinks are only
  // ever touched from the lane that claimed it). A single-lane pool visits
  // the links inline in ascending id order.
  pool_->parallel_for(links_.size(), [this, &work](std::size_t i) {
    if (links_[i].enabled) work(links_[i]);
  });
}

void LinkKeyService::run_batches(std::size_t batches_per_link) {
  for_each_enabled_link([batches_per_link](LinkState& link) {
    link.session->produce_batches(batches_per_link);
  });
}

void LinkKeyService::run_link_batch(LinkId id) {
  LinkState& link = links_.at(id);
  if (!link.enabled) return;
  link.session->produce_batches(1);
}

double LinkKeyService::link_frame_duration_s(LinkId id) const {
  const qkd::proto::QkdLinkSession& session = *links_.at(id).session;
  return session.link().frame_duration_s(session.config().frame_slots);
}

void LinkKeyService::advance(double dt_seconds) {
  if (dt_seconds <= 0.0) return;
  for_each_enabled_link(
      [dt_seconds](LinkState& link) { link.session->advance(dt_seconds); });
}

}  // namespace qkd::network
