// The trusted-relay "key transport network" of Section 8.
//
// Every usable link continuously distills pairwise key material into a link
// pool. To agree on an end-to-end key, the source generates fresh key bits
// and forwards them hop by hop: across each link the bits travel one-time-pad
// encrypted under that link's pairwise key; inside each relay they exist in
// the clear ("the end-to-end key will appear in the clear within the relays'
// memories proper, but will always be encrypted when passing across a
// link"). The result accounts both the key-material cost (every hop consumes
// pool bits equal to the transported key) and the trust cost (the set of
// relays that saw the key).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "src/common/rng.hpp"
#include "src/common/sim_clock.hpp"
#include "src/network/key_service.hpp"
#include "src/network/routing.hpp"
#include "src/network/topology.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/wire/frame.hpp"

namespace qkd::network {

/// Analytic estimate of the distilled-key fraction of sifted bits at a
/// link's operating point (error-correction disclosure at 1.2x Shannon plus
/// the Bennett charge and the conditional multi-photon charge), clamped to
/// zero. Cross-validated against the full protocol engine in tests.
double estimated_distill_fraction(const qkd::optics::LinkModel& model);

/// Distilled bits/second a link produces at its operating point; zero when
/// the link is cut, eavesdropped past the QBER alarm, or out of range.
double link_distill_rate_bps(const Link& link);

/// How MeshSimulation::step() accrues pairwise key into link pools.
enum class RateModel {
  /// Closed-form estimated_distill_fraction: instant, used for fast
  /// parameter sweeps and the topology benches.
  kAnalytic,
  /// A LinkKeyService runs the real protocol engine on every link; pools
  /// grow by actually distilled bits. Eavesdropping installed with
  /// eavesdrop_link() is applied to the quantum channel, so its cost
  /// emerges from the pipeline instead of a formula.
  kEngine,
};

class MeshSimulation {
 public:
  /// Per-frame relay overhead, paid once per hop per transport frame: the
  /// relayed message carries a key-id/route header plus a Wegman-Carter
  /// authentication tag, and the hop pad must cover them too. Batching
  /// same-destination requests into one frame amortizes this cost — the
  /// lever the KMS layer pulls (Gilbert & Hamrick's computational-load
  /// bound made visible in pool bits).
  static constexpr std::size_t kFrameOverheadBits =
      qkd::wire::relay_frame_overhead_bits();

  struct TransportResult {
    bool success = false;
    Route route;
    /// Delivered end-to-end key: for a batch frame, the requests'
    /// payloads concatenated in request order (slice per request).
    qkd::BitVector key;
    std::vector<NodeId> exposed_to;     // relays that held the key in clear
    std::size_t pool_bits_consumed = 0; // summed across hops, incl. overhead
    /// Some relay in exposed_to is compromised: Eve read this key in the
    /// clear inside that relay's memory.
    bool compromised = false;
  };

  struct Stats {
    std::uint64_t transports_attempted = 0;
    std::uint64_t transports_succeeded = 0;
    std::uint64_t transports_no_route = 0;
    std::uint64_t transports_starved = 0;  // route found but pools too dry
    std::uint64_t reroutes = 0;            // route differed from previous
    std::uint64_t transports_compromised = 0;  // delivered via an owned relay
  };

  /// Per-caller route memo for plan_key_batch: skips the Dijkstra run while
  /// the topology state it was computed against is unchanged (see
  /// topology_version()) and the cached route can still afford the frame.
  /// Owned by the caller (the KMS keeps one per endpoint pair), so the mesh
  /// holds no per-pair mutable state.
  struct RouteCache {
    std::optional<Route> route;
    std::uint64_t version = 0;
  };

  /// Everything transport decides SEQUENTIALLY about one relay frame:
  /// route, exposure, compromise flag, pool accounting (and, in engine
  /// mode, the actual withdrawn hop pads). Materializing the frame — key
  /// generation and the hop-by-hop OTP walk — is deferred to
  /// finalize_frame, which touches no mesh state and therefore runs on any
  /// thread: the split that lets KMS shards finalize frames in parallel
  /// while the shared mesh is only ever touched between barriers.
  struct FramePlan {
    bool success = false;
    Route route;
    std::vector<NodeId> exposed_to;
    bool compromised = false;
    std::size_t payload_bits = 0;
    std::size_t pool_bits_consumed = 0;
    /// Engine mode: the per-hop pads withdrawn from each link's KeySupply
    /// (frame_bits each, in hop order). Analytic mode leaves this empty and
    /// finalize_frame draws simulated pads from the caller's rng.
    std::vector<qkd::BitVector> hop_pads;
  };

  /// Analytic-rate mesh (the fast estimator).
  MeshSimulation(Topology topology, std::uint64_t seed);

  /// Engine-backed mesh: one QkdLinkSession per link via LinkKeyService.
  /// `engine.proto.link` is overridden per link from the topology optics.
  MeshSimulation(Topology topology, std::uint64_t seed,
                 LinkKeyService::Config engine);

  RateModel rate_model() const { return rate_model_; }

  /// The engine service, or nullptr in analytic mode.
  LinkKeyService* key_service() { return service_.get(); }

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  /// Advances simulated time: every usable link distills key into its pool —
  /// at its analytic rate, or by running real engine batches (kEngine, in
  /// which case the key lands in the service's per-link KeySupply).
  void step(double dt_seconds);

  /// The clocked form of step(): advances `clock` by `seconds` in
  /// `tick_seconds` slices, stepping the mesh each slice (the shared
  /// advance_clock_stepped helper — no hand-rolled seconds->SimTime loops).
  void run_on_clock(qkd::SimClock& clock, double seconds, double tick_seconds);

  /// Current pairwise pool of a link, in bits (engine mode reads the
  /// link's KeySupply).
  double link_pool_bits(LinkId link) const;

  /// Moves `bits` of fresh end-to-end key from src to dst hop by hop.
  /// Consumes `bits + kFrameOverheadBits` from every link pool along the
  /// route — in engine mode through each link's KeySupply, whose withdrawn
  /// bits are the actual hop pads. Routes prefer key-rich paths. Fails
  /// (without consuming) when no usable route exists or some pool on the
  /// best route cannot cover the request. Equivalent to a one-request
  /// batch frame.
  TransportResult transport_key(NodeId src, NodeId dst, std::size_t bits);

  /// Moves several same-destination key requests in ONE relay frame: the
  /// payloads travel concatenated under a single per-hop header+tag, so the
  /// frame consumes `sum(request_bits) + kFrameOverheadBits` per hop —
  /// strictly fewer pool bits than one frame per request. All requests
  /// share the frame's route, and every relay in `exposed_to` saw every
  /// request's key (the trust cost is per frame, not per request).
  /// `result.key` holds the payloads in request order. Throws
  /// std::invalid_argument on an empty batch or a zero-bit request.
  TransportResult transport_key_batch(NodeId src, NodeId dst,
                                      const std::vector<std::size_t>& request_bits,
                                      obs::TraceContext trace = {});

  /// The sequential half of a batch transport: routes, checks
  /// affordability, consumes pool bits (withdrawing the real hop pads in
  /// engine mode) and computes exposure/compromise — everything that
  /// touches shared mesh state — without generating the key. With `cache`,
  /// an unchanged-topology route is reused without rerunning Dijkstra
  /// (recomputed when the topology version moved or the cached route can
  /// no longer afford the frame), and Stats::reroutes counts per-caller
  /// route changes instead of the global last-route flip. Failure planned
  /// == failure: nothing was consumed and finalize must not run.
  /// With a tracer installed and a valid `trace`, the plan records one
  /// "mesh.plan" span plus a "mesh.hop" span per consumed hop under it —
  /// the relay legs of a traced KMS grant.
  FramePlan plan_key_batch(NodeId src, NodeId dst, std::size_t payload_bits,
                           RouteCache* cache, obs::TraceContext trace = {});

  /// The pure half: generates the end-to-end key from `rng` and walks the
  /// hop-by-hop OTP relay using the plan's pads (or simulated pads drawn
  /// from `rng` in analytic mode). Touches NO mesh state — safe to call
  /// concurrently for plans of disjoint rng streams. transport_key_batch
  /// is exactly plan + finalize on the mesh's own rng.
  static TransportResult finalize_frame(const FramePlan& plan, qkd::Rng& rng);

  /// Bumped by every topology-affecting mutation (cut/restore/eavesdrop/
  /// compromise/restore-node); RouteCache entries from older versions are
  /// recomputed on next use. Pool-level drift does NOT bump it: a cached
  /// route stays legal, merely possibly suboptimal, until it starves.
  std::uint64_t topology_version() const { return topology_version_; }

  /// Failure injection.
  void cut_link(LinkId link);
  /// Applies an intercept-resend fraction to a link; past the QBER alarm
  /// the link is marked eavesdropped and abandoned. Returns the resulting
  /// expected QBER.
  double eavesdrop_link(LinkId link, double intercept_fraction);
  void restore_link(LinkId link);

  /// Installs classical-channel conditions (one-way latency, loss,
  /// reordering) on one link's PUBLIC channel — the framed byte stream the
  /// distillation dialogue crosses, not the quantum channel. Engine mode
  /// only; returns false on an analytic mesh (no classical channel is
  /// simulated there).
  bool set_classical_conditions(LinkId link,
                                const qkd::net::ClassicalConditions& conditions);

  /// Eve owns this relay: its QKD links keep working (she plays both
  /// protocols honestly), but every end-to-end key it relays is hers.
  /// Routing avoids compromised relays when an alternative exists;
  /// transports that do traverse one are counted in
  /// Stats::transports_compromised and flagged on the result.
  void compromise_node(NodeId node);
  void restore_node(NodeId node);
  bool node_compromised(NodeId node) const;

  const Stats& stats() const { return stats_; }

  /// Installs (or, with nullptr, removes) the tracer the planning path
  /// records spans into. Planning is sequential (the barrier thread or the
  /// single scheduler stream), so spans land in cell 0.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Registers a collector exposing transport Stats plus the summed link
  /// pool depth under `prefix`. Snapshot with the mesh quiesced (between
  /// barriers / runs) — the same discipline every mesh read requires.
  void bind_metrics(obs::MetricsRegistry& registry, std::string prefix);

 private:
  void sync_engine_link_states();
  /// Discards a link's accumulated key (cut / abandoned link).
  void purge_pool(LinkId link);

  Topology topology_;
  qkd::Rng rng_;
  RateModel rate_model_ = RateModel::kAnalytic;
  std::unique_ptr<LinkKeyService> service_;  // kEngine only
  std::vector<double> pools_;  // bits, indexed by LinkId; kAnalytic only
  std::vector<double> eavesdrop_fraction_;
  std::vector<char> compromised_;  // indexed by NodeId
  std::optional<Route> last_route_;
  std::uint64_t topology_version_ = 1;
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace qkd::network
