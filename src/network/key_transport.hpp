// The trusted-relay "key transport network" of Section 8.
//
// Every usable link continuously distills pairwise key material into a link
// pool. To agree on an end-to-end key, the source generates fresh key bits
// and forwards them hop by hop: across each link the bits travel one-time-pad
// encrypted under that link's pairwise key; inside each relay they exist in
// the clear ("the end-to-end key will appear in the clear within the relays'
// memories proper, but will always be encrypted when passing across a
// link"). The result accounts both the key-material cost (every hop consumes
// pool bits equal to the transported key) and the trust cost (the set of
// relays that saw the key).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "src/common/rng.hpp"
#include "src/common/sim_clock.hpp"
#include "src/network/key_service.hpp"
#include "src/network/routing.hpp"
#include "src/network/topology.hpp"

namespace qkd::network {

/// Analytic estimate of the distilled-key fraction of sifted bits at a
/// link's operating point (error-correction disclosure at 1.2x Shannon plus
/// the Bennett charge and the conditional multi-photon charge), clamped to
/// zero. Cross-validated against the full protocol engine in tests.
double estimated_distill_fraction(const qkd::optics::LinkModel& model);

/// Distilled bits/second a link produces at its operating point; zero when
/// the link is cut, eavesdropped past the QBER alarm, or out of range.
double link_distill_rate_bps(const Link& link);

/// How MeshSimulation::step() accrues pairwise key into link pools.
enum class RateModel {
  /// Closed-form estimated_distill_fraction: instant, used for fast
  /// parameter sweeps and the topology benches.
  kAnalytic,
  /// A LinkKeyService runs the real protocol engine on every link; pools
  /// grow by actually distilled bits. Eavesdropping installed with
  /// eavesdrop_link() is applied to the quantum channel, so its cost
  /// emerges from the pipeline instead of a formula.
  kEngine,
};

class MeshSimulation {
 public:
  /// Per-frame relay overhead, paid once per hop per transport frame: the
  /// relayed message carries a key-id/route header plus a Wegman-Carter
  /// authentication tag, and the hop pad must cover them too. Batching
  /// same-destination requests into one frame amortizes this cost — the
  /// lever the KMS layer pulls (Gilbert & Hamrick's computational-load
  /// bound made visible in pool bits).
  static constexpr std::size_t kFrameOverheadBits = 96;

  struct TransportResult {
    bool success = false;
    Route route;
    /// Delivered end-to-end key: for a batch frame, the requests'
    /// payloads concatenated in request order (slice per request).
    qkd::BitVector key;
    std::vector<NodeId> exposed_to;     // relays that held the key in clear
    std::size_t pool_bits_consumed = 0; // summed across hops, incl. overhead
    /// Some relay in exposed_to is compromised: Eve read this key in the
    /// clear inside that relay's memory.
    bool compromised = false;
  };

  struct Stats {
    std::uint64_t transports_attempted = 0;
    std::uint64_t transports_succeeded = 0;
    std::uint64_t transports_no_route = 0;
    std::uint64_t transports_starved = 0;  // route found but pools too dry
    std::uint64_t reroutes = 0;            // route differed from previous
    std::uint64_t transports_compromised = 0;  // delivered via an owned relay
  };

  /// Analytic-rate mesh (the fast estimator).
  MeshSimulation(Topology topology, std::uint64_t seed);

  /// Engine-backed mesh: one QkdLinkSession per link via LinkKeyService.
  /// `engine.proto.link` is overridden per link from the topology optics.
  MeshSimulation(Topology topology, std::uint64_t seed,
                 LinkKeyService::Config engine);

  RateModel rate_model() const { return rate_model_; }

  /// The engine service, or nullptr in analytic mode.
  LinkKeyService* key_service() { return service_.get(); }

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

  /// Advances simulated time: every usable link distills key into its pool —
  /// at its analytic rate, or by running real engine batches (kEngine, in
  /// which case the key lands in the service's per-link KeySupply).
  void step(double dt_seconds);

  /// The clocked form of step(): advances `clock` by `seconds` in
  /// `tick_seconds` slices, stepping the mesh each slice (the shared
  /// advance_clock_stepped helper — no hand-rolled seconds->SimTime loops).
  void run_on_clock(qkd::SimClock& clock, double seconds, double tick_seconds);

  /// Current pairwise pool of a link, in bits (engine mode reads the
  /// link's KeySupply).
  double link_pool_bits(LinkId link) const;

  /// Moves `bits` of fresh end-to-end key from src to dst hop by hop.
  /// Consumes `bits + kFrameOverheadBits` from every link pool along the
  /// route — in engine mode through each link's KeySupply, whose withdrawn
  /// bits are the actual hop pads. Routes prefer key-rich paths. Fails
  /// (without consuming) when no usable route exists or some pool on the
  /// best route cannot cover the request. Equivalent to a one-request
  /// batch frame.
  TransportResult transport_key(NodeId src, NodeId dst, std::size_t bits);

  /// Moves several same-destination key requests in ONE relay frame: the
  /// payloads travel concatenated under a single per-hop header+tag, so the
  /// frame consumes `sum(request_bits) + kFrameOverheadBits` per hop —
  /// strictly fewer pool bits than one frame per request. All requests
  /// share the frame's route, and every relay in `exposed_to` saw every
  /// request's key (the trust cost is per frame, not per request).
  /// `result.key` holds the payloads in request order. Throws
  /// std::invalid_argument on an empty batch or a zero-bit request.
  TransportResult transport_key_batch(NodeId src, NodeId dst,
                                      const std::vector<std::size_t>& request_bits);

  /// Failure injection.
  void cut_link(LinkId link);
  /// Applies an intercept-resend fraction to a link; past the QBER alarm
  /// the link is marked eavesdropped and abandoned. Returns the resulting
  /// expected QBER.
  double eavesdrop_link(LinkId link, double intercept_fraction);
  void restore_link(LinkId link);

  /// Eve owns this relay: its QKD links keep working (she plays both
  /// protocols honestly), but every end-to-end key it relays is hers.
  /// Routing avoids compromised relays when an alternative exists;
  /// transports that do traverse one are counted in
  /// Stats::transports_compromised and flagged on the result.
  void compromise_node(NodeId node);
  void restore_node(NodeId node);
  bool node_compromised(NodeId node) const;

  const Stats& stats() const { return stats_; }

 private:
  void sync_engine_link_states();
  /// Discards a link's accumulated key (cut / abandoned link).
  void purge_pool(LinkId link);

  Topology topology_;
  qkd::Rng rng_;
  RateModel rate_model_ = RateModel::kAnalytic;
  std::unique_ptr<LinkKeyService> service_;  // kEngine only
  std::vector<double> pools_;  // bits, indexed by LinkId; kAnalytic only
  std::vector<double> eavesdrop_fraction_;
  std::vector<char> compromised_;  // indexed by NodeId
  std::optional<Route> last_route_;
  Stats stats_;
};

}  // namespace qkd::network
