// Engine-backed mesh key service: the continuously-running layer between
// the per-link QKD engines and the consumers of pairwise key (the trusted
// relay network of Sec. 8, and the IKE/IPsec stack of Sec. 7).
//
// A LinkKeyService owns one real QkdLinkSession per topology link and
// distills into that link's pairwise pool by actually running the protocol
// pipeline — sifting, error correction, privacy amplification,
// authentication — rather than the analytic rate shortcut
// (estimated_distill_fraction), which remains available as a fast estimator
// and is cross-validated against this service in tests.
//
// Independent links are independent machines, so their batches execute in
// parallel on a small thread pool. Each link's session and attack state is
// touched by exactly one worker at a time and seeds are derived per link,
// so every link's key stream is bit-identical regardless of thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/network/topology.hpp"
#include "src/qkd/engine.hpp"

namespace qkd::network {

class LinkKeyService {
 public:
  struct Config {
    /// Protocol operating point applied to every link; the physical-layer
    /// block (`proto.link`) is overridden per link from the topology's
    /// per-link optics.
    qkd::proto::QkdLinkConfig proto;

    /// Master seed; each link derives an independent stream from it.
    std::uint64_t seed = 1;

    /// Worker threads for parallel link distillation. 0 picks
    /// min(hardware_concurrency, 8); batches for one link always run
    /// sequentially on one worker.
    std::size_t threads = 0;
  };

  LinkKeyService(const Topology& topology, Config config);
  ~LinkKeyService();

  std::size_t link_count() const { return links_.size(); }

  /// The engine behind one link (totals, auth state, config inspection).
  qkd::proto::QkdLinkSession& session(LinkId id);
  const qkd::proto::QkdLinkSession& session(LinkId id) const;

  /// Installs (or clears, with nullptr) an eavesdropper on one link's
  /// quantum channel; applied to every subsequent batch of that link.
  void set_attack(LinkId id, std::unique_ptr<qkd::optics::Attack> attack);

  /// Disabled links run no batches (fiber cut, link abandoned).
  void set_link_enabled(LinkId id, bool enabled);
  bool link_enabled(LinkId id) const;

  /// Runs `batches_per_link` batches on every enabled link, independent
  /// links in parallel; accepted batches append to the link's pool.
  void run_batches(std::size_t batches_per_link);

  /// Advances simulated time: runs however many whole Qframes fit into
  /// `dt_seconds` of each enabled link's time (fractional frame time is
  /// carried to the next call).
  void advance(double dt_seconds);

  /// Distilled bits accumulated in a link's pairwise pool and not yet
  /// withdrawn.
  std::size_t pool_bits(LinkId id) const;

  /// FIFO withdrawal; nullopt (without consuming) if the pool is short.
  std::optional<qkd::BitVector> withdraw(LinkId id, std::size_t bits);

  /// Withdraws everything pending — the feed the VPN layer mirrors into
  /// both gateways' KeyPools (both ends hold identical streams because the
  /// engine's verify stage guarantees equal keys).
  qkd::BitVector drain(LinkId id);

 private:
  struct LinkState {
    std::unique_ptr<qkd::proto::QkdLinkSession> session;
    std::unique_ptr<qkd::optics::Attack> attack;
    bool enabled = true;
    double frame_debt_s = 0.0;  // simulated time owed to advance()
    qkd::BitVector pool;        // distilled, unconsumed bits
  };

  /// Runs `plan[i]` batches on link i, fanning links out across workers.
  void execute(const std::vector<std::size_t>& plan);

  std::vector<LinkState> links_;
  std::size_t threads_;
};

}  // namespace qkd::network
