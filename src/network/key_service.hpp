// Engine-backed mesh key service: the continuously-running layer between
// the per-link QKD engines and the consumers of pairwise key (the trusted
// relay network of Sec. 8, and the IKE/IPsec stack of Sec. 7).
//
// A LinkKeyService owns one real QkdLinkSession per topology link and is a
// keystore::KeyProducer with one key stream per link: accepted batches are
// distilled by actually running the protocol pipeline — sifting, error
// correction, privacy amplification, authentication — rather than the
// analytic rate shortcut (estimated_distill_fraction), which remains
// available as a fast estimator and is cross-validated against this
// service in tests. Consumers obtain key through supply(link) — the
// link's KeySupply — or attach their own sinks (both VPN gateways attach
// their pools to the same stream and hold mirror-image reservoirs).
//
// Independent links are independent machines, so their batches execute in
// parallel on a common::WorkerPool — either the service's own (sized once
// at construction: min(threads, link count) lanes, never recomputed per
// batch) or a pool SHARED with the rest of the stack via Config::pool
// (the ShardedScheduler's lanes, so distillation and KMS shard service
// ride the same threads). Each link's session, sinks and attack state are
// touched by exactly one lane at a time and seeds are derived per link, so
// every link's key stream is bit-identical regardless of lane count; with
// threads = 1 the links run inline in ascending id order — the exact
// sequential order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/worker_pool.hpp"
#include "src/keystore/key_producer.hpp"
#include "src/network/topology.hpp"
#include "src/qkd/engine.hpp"

namespace qkd::network {

class LinkKeyService : public qkd::keystore::KeyProducer {
 public:
  struct Config {
    /// Protocol operating point applied to every link; the physical-layer
    /// block (`proto.link`) is overridden per link from the topology's
    /// per-link optics.
    qkd::proto::QkdLinkConfig proto;

    /// Master seed; each link derives an independent stream from it.
    std::uint64_t seed = 1;

    /// Worker lanes for parallel link distillation. 0 picks
    /// min(hardware_concurrency, 8); the count is clamped ONCE at
    /// construction to min(threads, link count) and 1 forces the exact
    /// sequential order (links in ascending id). Ignored when `pool` is
    /// set. Batches for one link always run sequentially on one lane.
    std::size_t threads = 0;

    /// Optional shared worker pool (not owned; must outlive the service).
    /// The stack's parallel layers are meant to share ONE pool — pass the
    /// ShardedScheduler's — instead of spawning per-layer threads.
    std::shared_ptr<qkd::common::WorkerPool> pool;
  };

  LinkKeyService(const Topology& topology, Config config);
  ~LinkKeyService() override;

  std::size_t link_count() const { return links_.size(); }

  /// Concurrent lanes the per-link fan-out actually uses (post-clamp).
  std::size_t worker_lanes() const { return pool_->lanes(); }

  /// The engine behind one link (totals, auth state, config inspection).
  qkd::proto::QkdLinkSession& session(LinkId id);
  const qkd::proto::QkdLinkSession& session(LinkId id) const;

  /// Installs (or clears, with nullptr) an eavesdropper on one link's
  /// quantum channel; applied to every subsequent batch of that link.
  void set_attack(LinkId id, std::unique_ptr<qkd::optics::Attack> attack);

  /// Disabled links run no batches (fiber cut, link abandoned).
  void set_link_enabled(LinkId id, bool enabled);
  bool link_enabled(LinkId id) const;

  /// Runs `batches_per_link` batches on every enabled link, independent
  /// links in parallel; accepted batches are delivered to the link's
  /// supply (or its attached sinks).
  void run_batches(std::size_t batches_per_link);

  /// Runs a single batch on one link (no-op while the link is disabled) —
  /// the unit the discrete-event scheduler dispatches: each link's next
  /// batch completion is an event at now + link_frame_duration_s().
  void run_link_batch(LinkId id);

  /// Wall-clock duration of one Qframe on this link at its trigger rate:
  /// the natural batch-completion period.
  double link_frame_duration_s(LinkId id) const;

  /// Distilled bits pending in a link's supply (convenience for
  /// supply(id).available_bits()).
  std::size_t pool_bits(LinkId id) const { return supply(id).available_bits(); }

  // ---- keystore::KeyProducer ----------------------------------------------
  std::size_t supply_count() const override { return links_.size(); }
  /// The pairwise KeySupply of one topology link.
  qkd::keystore::KeySupply& supply(std::size_t id) override;
  const qkd::keystore::KeySupply& supply(std::size_t id) const override;
  /// Mirrors link `id`'s stream into `sink` (the link's own supply stops
  /// accumulating) — the feed the VPN layer routes into both gateways.
  void attach_sink(std::size_t id, qkd::keystore::KeySupply& sink) override;
  /// Advances simulated time: runs however many whole Qframes fit into
  /// `dt_seconds` of each enabled link's time (fractional frame time is
  /// carried per link).
  void advance(double dt_seconds) override;

 private:
  struct LinkState {
    std::unique_ptr<qkd::proto::QkdLinkSession> session;
    bool enabled = true;
  };

  /// Runs `work(link)` for every enabled link, fanning links out across
  /// the pool's lanes.
  template <typename Fn>
  void for_each_enabled_link(const Fn& work);

  std::vector<LinkState> links_;
  std::shared_ptr<qkd::common::WorkerPool> pool_;
};

}  // namespace qkd::network
