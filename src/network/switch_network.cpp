#include "src/network/switch_network.hpp"

#include <stdexcept>

#include "src/network/key_transport.hpp"

namespace qkd::network {

SwitchPathBudget switch_path_budget(const Topology& topology,
                                    const Route& route,
                                    double per_switch_insertion_db) {
  if (route.nodes.size() < 2)
    throw std::invalid_argument("switch_path_budget: degenerate route");
  SwitchPathBudget budget;
  budget.end_to_end = topology.link(route.links.front()).optics;
  budget.end_to_end.fiber_km = 0.0;
  budget.end_to_end.insertion_loss_db = 0.0;

  for (std::size_t i = 0; i < route.links.size(); ++i) {
    const Link& link = topology.link(route.links[i]);
    budget.total_fiber_km += link.optics.fiber_km;
    budget.total_insertion_db += link.optics.insertion_loss_db;
  }
  for (std::size_t i = 1; i + 1 < route.nodes.size(); ++i) {
    const Node& node = topology.node(route.nodes[i]);
    if (node.kind != NodeKind::kUntrustedSwitch)
      throw std::invalid_argument(
          "switch_path_budget: interior node is not an untrusted switch");
    budget.switch_count += 1.0;
    budget.total_insertion_db += per_switch_insertion_db;
  }

  budget.end_to_end.fiber_km = budget.total_fiber_km;
  budget.end_to_end.insertion_loss_db = budget.total_insertion_db;
  const qkd::optics::LinkModel model(budget.end_to_end);
  budget.expected_qber = model.expected_qber();
  budget.sifted_rate_bps = model.sifted_rate_bps();
  budget.in_range = budget.expected_qber < 0.11;
  budget.distilled_rate_bps =
      budget.in_range
          ? budget.sifted_rate_bps * estimated_distill_fraction(model)
          : 0.0;
  return budget;
}

std::optional<SwitchPathBudget> best_switch_path(
    const Topology& topology, NodeId src, NodeId dst,
    double per_switch_insertion_db) {
  // Restrict transit to untrusted switches by pricing other interior nodes
  // out: clone the topology and cut links touching relays (endpoints are
  // already excluded from transit by the router).
  Topology optical = topology;
  for (LinkId id = 0; id < optical.link_count(); ++id) {
    Link& link = optical.link(id);
    const auto blocks = [&](NodeId node) {
      return optical.node(node).kind == NodeKind::kTrustedRelay &&
             node != src && node != dst;
    };
    if (blocks(link.a) || blocks(link.b)) link.state = LinkState::kCut;
  }
  // Minimize total optical loss (dB), the quantity that decides reach.
  const auto loss_cost = [&](const Link& link) {
    return link.optics.fiber_km * link.optics.attenuation_db_per_km +
           link.optics.insertion_loss_db + per_switch_insertion_db;
  };
  const auto route = shortest_route(optical, src, dst, loss_cost);
  if (!route.has_value()) return std::nullopt;
  return switch_path_budget(topology, *route, per_switch_insertion_db);
}

}  // namespace qkd::network
