#include "src/network/topology.hpp"

#include <stdexcept>

namespace qkd::network {

NodeId Topology::add_node(std::string name, NodeKind kind) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, std::move(name), kind});
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, qkd::optics::LinkParams optics) {
  if (a >= nodes_.size() || b >= nodes_.size())
    throw std::out_of_range("Topology::add_link: unknown node");
  if (a == b) throw std::invalid_argument("Topology::add_link: self-link");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b, optics, LinkState::kUp});
  return id;
}

std::vector<LinkId> Topology::links_of(NodeId node) const {
  std::vector<LinkId> out;
  for (const Link& link : links_) {
    if (link.connects(node)) out.push_back(link.id);
  }
  return out;
}

std::optional<LinkId> Topology::link_between(NodeId a, NodeId b) const {
  for (const Link& link : links_) {
    if ((link.a == a && link.b == b) || (link.a == b && link.b == a))
      return link.id;
  }
  return std::nullopt;
}

Topology Topology::full_mesh(std::size_t n, double link_km) {
  Topology topo;
  for (std::size_t i = 0; i < n; ++i)
    topo.add_node("endpoint-" + std::to_string(i), NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = link_km;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      topo.add_link(static_cast<NodeId>(i), static_cast<NodeId>(j), optics);
  return topo;
}

Topology Topology::star(std::size_t n, double link_km) {
  Topology topo;
  const NodeId hub = topo.add_node("relay-hub", NodeKind::kTrustedRelay);
  qkd::optics::LinkParams optics;
  optics.fiber_km = link_km;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId spoke =
        topo.add_node("endpoint-" + std::to_string(i), NodeKind::kEndpoint);
    topo.add_link(hub, spoke, optics);
  }
  return topo;
}

Topology Topology::relay_ring(std::size_t n, double link_km) {
  if (n < 3) throw std::invalid_argument("relay_ring: need >= 3 relays");
  Topology topo;
  qkd::optics::LinkParams optics;
  optics.fiber_km = link_km;
  std::vector<NodeId> relays;
  for (std::size_t i = 0; i < n; ++i)
    relays.push_back(
        topo.add_node("relay-" + std::to_string(i), NodeKind::kTrustedRelay));
  for (std::size_t i = 0; i < n; ++i)
    topo.add_link(relays[i], relays[(i + 1) % n], optics);
  // Two endpoints on opposite sides of the ring.
  const NodeId alice = topo.add_node("alice", NodeKind::kEndpoint);
  const NodeId bob = topo.add_node("bob", NodeKind::kEndpoint);
  topo.add_link(alice, relays[0], optics);
  topo.add_link(bob, relays[n / 2], optics);
  return topo;
}

}  // namespace qkd::network
