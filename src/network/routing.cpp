#include "src/network/routing.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>

namespace qkd::network {

std::optional<Route> shortest_route(const Topology& topology, NodeId src,
                                    NodeId dst, const LinkCostFn& cost) {
  const std::size_t n = topology.node_count();
  if (src >= n || dst >= n) return std::nullopt;
  if (src == dst) return Route{{src}, {}, 0.0};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<std::optional<LinkId>> via(n);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  dist[src] = 0.0;
  frontier.emplace(0.0, src);

  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    // Endpoints never transit traffic for others.
    if (u != src && topology.node(u).kind == NodeKind::kEndpoint) continue;
    for (LinkId link_id : topology.links_of(u)) {
      const Link& link = topology.link(link_id);
      if (!link.usable()) continue;
      const double w = cost ? cost(link) : 1.0;
      const NodeId v = link.other(u);
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        via[v] = link_id;
        frontier.emplace(dist[v], v);
      }
    }
  }
  if (dist[dst] == kInf) return std::nullopt;

  Route route;
  route.cost = dist[dst];
  NodeId at = dst;
  while (at != src) {
    const Link& link = topology.link(*via[at]);
    route.links.push_back(link.id);
    route.nodes.push_back(at);
    at = link.other(at);
  }
  route.nodes.push_back(src);
  std::reverse(route.nodes.begin(), route.nodes.end());
  std::reverse(route.links.begin(), route.links.end());
  return route;
}

std::size_t disjoint_path_count(const Topology& topology, NodeId src,
                                NodeId dst) {
  // Repeatedly find a route and remove its links (greedy unit-capacity
  // max-flow approximation — exact for the small meshes we measure, and a
  // lower bound in general).
  Topology working = topology;
  std::size_t count = 0;
  for (;;) {
    const auto route = shortest_route(working, src, dst);
    if (!route.has_value()) break;
    ++count;
    for (LinkId link_id : route->links)
      working.link(link_id).state = LinkState::kCut;
  }
  return count;
}

}  // namespace qkd::network
