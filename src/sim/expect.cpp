#include "src/sim/expect.hpp"

#include <algorithm>
#include <cstdio>

namespace qkd::sim {

namespace {

std::string time_str(SimTime t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1fs", sim_to_seconds(t));
  return buffer;
}

}  // namespace

const ScenarioRunner::KeyRequestOutcome* TimelineExpect::request(
    std::size_t index, const char* check) {
  const auto& outcomes = runner_.key_requests();
  if (index >= outcomes.size()) {
    fail(std::string(check) + ": request #" + std::to_string(index) +
         " does not exist (only " + std::to_string(outcomes.size()) +
         " KeyRequest outcomes recorded)");
    return nullptr;
  }
  return &outcomes[index];
}

const ClassSample* TimelineExpect::class_in(const TimelinePoint& point,
                                            const std::string& label) {
  for (const ClassSample& cls : point.service)
    if (cls.label == label) return &cls;
  return nullptr;
}

TimelineExpect& TimelineExpect::link_down_by(network::LinkId link,
                                             SimTime deadline) {
  for (const TimelinePoint& point : points()) {
    if (point.t > deadline) break;
    if (link < point.links.size() && !point.links[link].usable) return *this;
  }
  fail("link_down_by: link " + std::to_string(link) +
       " never sampled unusable by " + time_str(deadline));
  return *this;
}

TimelineExpect& TimelineExpect::link_up_by(network::LinkId link, SimTime after,
                                           SimTime deadline) {
  for (const TimelinePoint& point : points()) {
    if (point.t <= after) continue;
    if (point.t > deadline) break;
    if (link < point.links.size() && point.links[link].usable) return *this;
  }
  fail("link_up_by: link " + std::to_string(link) +
       " never sampled usable in (" + time_str(after) + ", " +
       time_str(deadline) + "]");
  return *this;
}

TimelineExpect& TimelineExpect::pool_at_least_by(network::LinkId link,
                                                 double bits,
                                                 SimTime deadline) {
  double best = 0.0;
  for (const TimelinePoint& point : points()) {
    if (point.t > deadline) break;
    if (link < point.links.size())
      best = std::max(best, point.links[link].pool_bits);
    if (best >= bits) return *this;
  }
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "pool_at_least_by: link %u peaked at %.0f bits by %s, wanted "
                ">= %.0f",
                link, best, time_str(deadline).c_str(), bits);
  fail(buffer);
  return *this;
}

TimelineExpect& TimelineExpect::request_served(std::size_t index) {
  if (const auto* outcome = request(index, "request_served");
      outcome != nullptr && !outcome->result.success)
    fail("request_served: request #" + std::to_string(index) + " (t=" +
         time_str(outcome->at) + ") failed");
  return *this;
}

TimelineExpect& TimelineExpect::request_failed(std::size_t index) {
  if (const auto* outcome = request(index, "request_failed");
      outcome != nullptr && outcome->result.success)
    fail("request_failed: request #" + std::to_string(index) + " (t=" +
         time_str(outcome->at) + ") was unexpectedly delivered");
  return *this;
}

TimelineExpect& TimelineExpect::request_avoids_link(std::size_t index,
                                                    network::LinkId link) {
  const auto* outcome = request(index, "request_avoids_link");
  if (outcome == nullptr) return *this;
  const auto& links = outcome->result.route.links;
  if (std::find(links.begin(), links.end(), link) != links.end())
    fail("request_avoids_link: request #" + std::to_string(index) +
         " was routed over link " + std::to_string(link));
  return *this;
}

TimelineExpect& TimelineExpect::request_avoids_node(std::size_t index,
                                                    network::NodeId node) {
  const auto* outcome = request(index, "request_avoids_node");
  if (outcome == nullptr) return *this;
  const auto& exposed = outcome->result.exposed_to;
  if (std::find(exposed.begin(), exposed.end(), node) != exposed.end())
    fail("request_avoids_node: request #" + std::to_string(index) +
         " exposed its key to node " + std::to_string(node));
  return *this;
}

TimelineExpect& TimelineExpect::requests_rerouted(std::size_t first,
                                                  std::size_t second) {
  const auto* a = request(first, "requests_rerouted");
  const auto* b = request(second, "requests_rerouted");
  if (a == nullptr || b == nullptr) return *this;
  if (a->result.route.links == b->result.route.links)
    fail("requests_rerouted: requests #" + std::to_string(first) + " and #" +
         std::to_string(second) + " took the same route");
  return *this;
}

TimelineExpect& TimelineExpect::request_clean(std::size_t index) {
  if (const auto* outcome = request(index, "request_clean");
      outcome != nullptr && outcome->result.compromised)
    fail("request_clean: request #" + std::to_string(index) +
         " traversed a compromised relay");
  return *this;
}

TimelineExpect& TimelineExpect::request_flagged_compromised(
    std::size_t index) {
  if (const auto* outcome = request(index, "request_flagged_compromised");
      outcome != nullptr && !outcome->result.compromised)
    fail("request_flagged_compromised: request #" + std::to_string(index) +
         " was not flagged compromised");
  return *this;
}

SimTime TimelineExpect::first_shed_time(const std::string& label) const {
  for (const TimelinePoint& point : points())
    if (const ClassSample* cls = class_in(point, label);
        cls != nullptr && cls->shed > 0)
      return point.t;
  return -1;
}

TimelineExpect& TimelineExpect::class_never_shed(const std::string& label) {
  if (const SimTime t = first_shed_time(label); t >= 0)
    fail("class_never_shed: class \"" + label + "\" was shed by " +
         time_str(t));
  return *this;
}

TimelineExpect& TimelineExpect::class_shed_by(const std::string& label,
                                              SimTime deadline) {
  const SimTime t = first_shed_time(label);
  if (t < 0 || t > deadline)
    fail("class_shed_by: class \"" + label + "\" not shed by " +
         time_str(deadline) +
         (t < 0 ? " (never shed)" : " (first shed at " + time_str(t) + ")"));
  return *this;
}

TimelineExpect& TimelineExpect::shed_order(const std::string& first,
                                           const std::string& second) {
  const SimTime t_first = first_shed_time(first);
  const SimTime t_second = first_shed_time(second);
  if (t_second >= 0 && (t_first < 0 || t_first > t_second))
    fail("shed_order: class \"" + second + "\" was shed at " +
         time_str(t_second) + " before class \"" + first + "\" (" +
         (t_first < 0 ? std::string("never shed") : time_str(t_first)) + ")");
  return *this;
}

TimelineExpect& TimelineExpect::class_queue_at_most_by(
    const std::string& label, std::size_t depth, SimTime deadline) {
  const ClassSample* last = nullptr;
  SimTime last_t = -1;
  for (const TimelinePoint& point : points()) {
    if (point.t < deadline) continue;
    if (const ClassSample* cls = class_in(point, label); cls != nullptr) {
      last = cls;
      last_t = point.t;
    }
  }
  if (last == nullptr) {
    fail("class_queue_at_most_by: no \"" + label + "\" sample at or after " +
         time_str(deadline));
  } else if (last->queue_depth > depth) {
    fail("class_queue_at_most_by: class \"" + label + "\" still queued " +
         std::to_string(last->queue_depth) + " at " + time_str(last_t) +
         ", wanted <= " + std::to_string(depth));
  }
  return *this;
}

double TimelineExpect::grant_rate(const std::string& label,
                                  SimTime window_start,
                                  SimTime window_end) const {
  const TimelinePoint* first = nullptr;
  const TimelinePoint* last = nullptr;
  for (const TimelinePoint& point : points()) {
    if (point.t <= window_start || point.t > window_end) continue;
    if (class_in(point, label) == nullptr) continue;
    if (first == nullptr) first = &point;
    last = &point;
  }
  if (first == nullptr || last == nullptr || first == last) return -1.0;
  const auto granted =
      class_in(*last, label)->granted - class_in(*first, label)->granted;
  const double seconds = sim_to_seconds(last->t - first->t);
  return static_cast<double>(granted) / seconds;
}

TimelineExpect& TimelineExpect::grant_rate_recovers(const std::string& label,
                                                    SimTime baseline_end,
                                                    SimTime recovery_start,
                                                    double factor) {
  const SimTime end = points().empty() ? recovery_start : points().back().t;
  const double before = grant_rate(label, 0, baseline_end);
  const double after = grant_rate(label, recovery_start, end);
  char buffer[200];
  if (before < 0.0 || after < 0.0) {
    std::snprintf(buffer, sizeof(buffer),
                  "grant_rate_recovers: class \"%s\" lacks two samples in the "
                  "%s window",
                  label.c_str(), before < 0.0 ? "baseline" : "recovery");
    fail(buffer);
  } else if (after < factor * before) {
    std::snprintf(buffer, sizeof(buffer),
                  "grant_rate_recovers: class \"%s\" recovered to %.2f "
                  "grants/s after %s, wanted >= %.2f (%.0f%% of the %.2f "
                  "baseline)",
                  label.c_str(), after, time_str(recovery_start).c_str(),
                  factor * before, factor * 100.0, before);
    fail(buffer);
  }
  return *this;
}

TimelineExpect& TimelineExpect::noted(const std::string& substring) {
  for (const TimelineNote& note : runner_.recorder().notes())
    if (note.text.find(substring) != std::string::npos) return *this;
  fail("noted: no timeline note contains \"" + substring + "\"");
  return *this;
}

std::string TimelineExpect::report() const {
  if (failures_.empty()) return "timeline ok";
  std::string out = "timeline expectations violated:";
  for (const std::string& failure : failures_) out += "\n  - " + failure;
  return out;
}

}  // namespace qkd::sim
