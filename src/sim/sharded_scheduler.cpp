#include "src/sim/sharded_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace qkd::sim {

ShardedScheduler::ShardedScheduler(EventScheduler& global, std::size_t shards,
                                   std::shared_ptr<common::WorkerPool> pool,
                                   Config config)
    : global_(global), pool_(std::move(pool)), config_(config) {
  if (shards == 0)
    throw std::invalid_argument("ShardedScheduler: shards == 0");
  if (config_.sync_quantum <= 0)
    throw std::invalid_argument("ShardedScheduler: sync_quantum <= 0");
  if (!pool_) pool_ = std::make_shared<common::WorkerPool>(1);
  streams_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto stream = std::make_unique<Stream>();
    // Shard streams are born at the global clock's current instant so a
    // scheduler constructed mid-run never schedules into the past.
    stream->clock.advance_to(global_.now());
    stream->scheduler = std::make_unique<EventScheduler>(stream->clock);
    streams_.push_back(std::move(stream));
  }
}

ShardedScheduler::ShardedScheduler(EventScheduler& global, std::size_t shards,
                                   std::shared_ptr<common::WorkerPool> pool)
    : ShardedScheduler(global, shards, std::move(pool), Config()) {}

EventScheduler& ShardedScheduler::shard_stream(std::size_t shard) {
  return *streams_.at(shard)->scheduler;
}

void ShardedScheduler::add_barrier_task(std::function<void(SimTime)> task) {
  barrier_tasks_.push_back(std::move(task));
}

std::size_t ShardedScheduler::run_until(SimTime horizon) {
  if (horizon < global_.now())
    throw std::invalid_argument(
        "ShardedScheduler::run_until: horizon precedes now");
  std::size_t dispatched = 0;
  for (;;) {
    const SimTime t = global_.now();
    SimTime window_end = std::min(horizon, t + config_.sync_quantum);
    if (const auto next_global = global_.next_time())
      window_end = std::min(window_end, *next_global);

    pool_->parallel_for(streams_.size(), [&](std::size_t s) {
      streams_[s]->dispatched +=
          streams_[s]->scheduler->run_until(window_end);
    });
    for (const auto& task : barrier_tasks_) task(window_end);
    dispatched += global_.run_until(window_end);
    if (window_end >= horizon) break;
  }
  for (const auto& stream : streams_) {
    dispatched += stream->dispatched;
    stream->dispatched = 0;
  }
  return dispatched;
}

}  // namespace qkd::sim
