// Declarative scenarios on the discrete-event timeline.
//
// A Scenario is an ordered script of typed events — fiber cuts, restores,
// eavesdroppers arriving and leaving, traffic bursts, end-to-end key
// requests, relay compromises — each pinned to a SimTime. A ScenarioRunner
// binds the script to the live stack (a MeshSimulation and/or a
// VpnLinkSimulation), schedules every action on one EventScheduler, and
// ports the formerly step-driven layers onto the same timeline:
//
//  * QKD producers advance as scheduled batch-completion events: each
//    engine-backed link (mesh links, the VPN's engine feed) gets a periodic
//    event with the link's Qframe duration as its period; an analytic mesh
//    accrues on a fixed distillation tick instead.
//  * MeshSimulation serves KeyRequest events (recording every
//    TransportResult) and reroutes around CutLink/StartEavesdrop damage on
//    the next request.
//  * The VPN gateways' rekey timers, IKE retransmits and supply-replenished
//    wakeups run as events scheduled at VpnGateway::next_deadline() — no
//    fixed-dt polling anywhere in the run.
//
// So one script runs "Eve appears on link B-C at t=100 s, the mesh
// reroutes, IKE survives on the reserve pool, fiber restored at t=300 s"
// end to end, with a TimelineRecorder sampling the whole stack as it goes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/ipsec/vpn_sim.hpp"
#include "src/network/key_transport.hpp"
#include "src/obs/health/alert.hpp"
#include "src/sim/event_scheduler.hpp"
#include "src/sim/timeline.hpp"

namespace qkd::sim {

class ShardedScheduler;

// ---- Event vocabulary -----------------------------------------------------

/// Fiber cut: the link stops distilling and routing abandons it.
struct CutLink {
  network::LinkId link = 0;
};

/// Fiber repaired: distillation resumes, the link rejoins routing.
struct RestoreLink {
  network::LinkId link = 0;
};

/// Eve taps a link's quantum channel with an intercept-resend attack on
/// `intercept_fraction` of the pulses. Past the QBER alarm the link is
/// abandoned; below it, her presence is paid for in distilled-key yield.
struct StartEavesdrop {
  network::LinkId link = 0;
  double intercept_fraction = 1.0;
};

/// Eve leaves; the link is trusted and used again.
struct StopEavesdrop {
  network::LinkId link = 0;
};

/// `packets_per_s` plaintext packets per second for `duration_s`, submitted
/// to the VPN tunnel's A-side gateway (tunnel 0 is the attached
/// VpnLinkSimulation).
struct TrafficBurst {
  std::size_t tunnel = 0;
  double packets_per_s = 10.0;
  double duration_s = 1.0;
};

/// End-to-end key agreement: transport `bits` of fresh key src -> dst over
/// the trusted-relay mesh.
struct KeyRequest {
  network::NodeId src = 0;
  network::NodeId dst = 0;
  std::size_t bits = 256;
};

/// Eve owns a relay from this instant: keys relayed through it are hers.
struct CompromiseNode {
  network::NodeId node = 0;
};

/// The relay is swept and re-trusted: frames relayed through it are clean
/// again (the recovery half of a relay-compromise campaign).
struct RestoreNode {
  network::NodeId node = 0;
};

/// `count` key-consuming client applications come online on the (src, dst)
/// endpoint pair: each registers with the attached client driver (the KMS
/// fleet) in QoS class `qos` and issues `bits`-bit key requests at
/// `request_rate_hz` until it departs. Scripted days ramp thousands of
/// clients up with a handful of these.
struct ClientArrival {
  network::NodeId src = 0;
  network::NodeId dst = 0;
  unsigned qos = 1;              // QoS class index (0 = highest priority)
  std::size_t count = 1;         // clients arriving together
  double request_rate_hz = 1.0;  // per-client get_key cadence
  std::size_t bits = 256;        // bits per request
};

/// `count` clients of that same (src, dst, qos) shape go offline (most
/// recently arrived first); their periodic requests stop and queued
/// requests are drained as departed.
struct ClientDeparture {
  network::NodeId src = 0;
  network::NodeId dst = 0;
  unsigned qos = 1;
  std::size_t count = 1;
};

/// Degrades one link's CLASSICAL channel — the framed byte stream the
/// distillation dialogue crosses, not the quantum fiber. Every control
/// frame pays `latency` one way (a lockstep dialogue stalls by
/// latency x messages, lowering the distilled rate without deadlock), is
/// lost with `loss_prob` (retransmission inflates the measured control
/// traffic) and reordered with `reorder_prob`. All-zero fields restore a
/// clean channel. Engine-backed links only; an analytic mesh simulates no
/// classical channel, so there the action is a recorded no-op.
struct ClassicalImpairment {
  network::LinkId link = 0;
  SimTime latency = 0;
  double loss_prob = 0.0;
  double reorder_prob = 0.0;
};

using ScenarioAction =
    std::variant<CutLink, RestoreLink, StartEavesdrop, StopEavesdrop,
                 TrafficBurst, KeyRequest, CompromiseNode, RestoreNode,
                 ClientArrival, ClientDeparture, ClassicalImpairment>;

/// Human-readable action tag for timeline annotations.
const char* action_name(const ScenarioAction& action);
/// One-line description (tag plus operands).
std::string describe(const ScenarioAction& action);

struct ScenarioEvent {
  SimTime at = 0;
  ScenarioAction action;
};

/// The script: an append-only list of timed actions. Order of same-instant
/// actions is the append order (the scheduler's FIFO tie-break preserves
/// it).
class Scenario {
 public:
  Scenario& at(SimTime when, ScenarioAction action);
  const std::vector<ScenarioEvent>& events() const { return events_; }

 private:
  std::vector<ScenarioEvent> events_;
};

// ---- Runner ---------------------------------------------------------------

/// Receives ClientArrival/ClientDeparture actions. The key-management
/// service lives ABOVE src/sim (src/kms links qkd_sim), so the runner
/// stays KMS-agnostic and the fleet plugs in through this seam
/// (kms::KmsClientFleet is the production implementation).
class ClientWorkloadDriver {
 public:
  virtual ~ClientWorkloadDriver() = default;
  virtual void client_arrival(SimTime now, const ClientArrival& arrival) = 0;
  virtual void client_departure(SimTime now,
                                const ClientDeparture& departure) = 0;
};

class ScenarioRunner {
 public:
  struct Config {
    /// TimelineRecorder sampling period.
    SimTime sample_interval = kSecond;
    /// Distillation-accrual tick for an analytic-rate mesh (engine-backed
    /// links schedule real per-frame batch events instead).
    double mesh_tick_s = 1.0;
    /// Retry delay when a gateway stays starved after a wakeup (its
    /// deadline reads "now" again); bounds the event rate of a starvation
    /// episode instead of livelocking at one instant.
    SimTime stalled_retry = 100 * kMillisecond;
  };

  struct KeyRequestOutcome {
    SimTime at = 0;
    KeyRequest request;
    network::MeshSimulation::TransportResult result;
  };

  explicit ScenarioRunner(Scenario scenario);
  ScenarioRunner(Scenario scenario, Config config);
  ~ScenarioRunner();

  /// Attach the stack under test; attached objects must outlive run().
  void attach_mesh(network::MeshSimulation& mesh);
  /// Attaching a VPN adopts ITS SimClock as the scenario timeline, so the
  /// gateways' SA lifetimes and IKE deadlines share the scheduler's time.
  /// Attach before scheduling anything through scheduler().
  void attach_vpn(ipsec::VpnLinkSimulation& vpn);

  /// Packet factory for TrafficBurst events (sequence number -> plaintext
  /// packet). Required if the scenario contains TrafficBurst actions.
  void set_traffic_source(std::function<ipsec::IpPacket(std::uint64_t)> make);

  /// Receiver for ClientArrival/ClientDeparture actions (required if the
  /// scenario contains them); must outlive run().
  void attach_client_driver(ClientWorkloadDriver& driver);

  /// Schedules a periodic `engine.evaluate(now)` every `interval` during
  /// run() — the scheduler bridge the pull-based alert engine is designed
  /// for — plus one closing evaluation at the horizon, and installs a
  /// transition observer that annotates the recorder ("alert <rule>:
  /// pending -> firing"), so alert lifecycle changes interleave with the
  /// scripted actions on the timeline. The engine must outlive run();
  /// attaching replaces any observer previously set on it.
  void attach_alerts(obs::health::AlertEngine& engine,
                     SimTime interval = kSecond);

  /// Invariant-probe seam: invoked right after every scripted action has
  /// been applied, with the action's effects already visible in the
  /// attached stack. The scenario fuzzer asserts its global invariants
  /// here, after every event, instead of only at the horizon.
  void set_action_observer(
      std::function<void(SimTime, const ScenarioAction&)> observer);

  /// Runs the script: schedules every scenario action plus the stack
  /// drivers (producer batch completions, gateway deadlines, recorder
  /// sampling) and dispatches events until `horizon`, then takes a final
  /// sample. Returns the number of events dispatched.
  std::size_t run(SimTime horizon);

  /// As run(horizon), but the timeline advances through `sharded`'s
  /// windowed execution: everything the runner schedules stays on the
  /// global stream (total order preserved) while services that registered
  /// work on shard streams (a sharded KMS) advance in parallel between
  /// barriers. `sharded` must wrap this runner's scheduler().
  std::size_t run(ShardedScheduler& sharded, SimTime horizon);

  TimelineRecorder& recorder() { return recorder_; }
  const TimelineRecorder& recorder() const { return recorder_; }
  EventScheduler& scheduler() { return *scheduler_; }
  SimClock& clock() { return *clock_; }
  const std::vector<KeyRequestOutcome>& key_requests() const {
    return key_requests_;
  }

 private:
  /// Shared body of the run() overloads: `drive(horizon)` dispatches the
  /// scheduled timeline and returns the events-dispatched count.
  std::size_t run_with(SimTime horizon,
                       const std::function<std::size_t(SimTime)>& drive);
  void apply(SimTime now, const ScenarioAction& action);
  /// Accrues an analytic mesh's distillation exactly up to `now`, so
  /// actions and samples at any instant observe pools as of that instant
  /// (the periodic tick only sets the accrual cadence between
  /// observations). Engine-backed meshes accrue by batch events instead.
  void catch_up_mesh(SimTime now);
  void start_traffic(SimTime now, const TrafficBurst& burst);
  /// Schedules (or reschedules) the tunnel wakeup at the gateways' earliest
  /// deadline; called after every event that may have moved a deadline.
  void arm_vpn_deadline(SimTime now);
  void pump_vpn(SimTime now);

  Scenario scenario_;
  Config config_;
  SimClock own_clock_;
  SimClock* clock_ = &own_clock_;  // the VPN's clock once attached
  std::unique_ptr<EventScheduler> scheduler_;  // rebound by attach_vpn
  TimelineRecorder recorder_;

  network::MeshSimulation* mesh_ = nullptr;
  SimTime mesh_accrued_to_ = 0;  // analytic mesh: accrual high-water mark
  ipsec::VpnLinkSimulation* vpn_ = nullptr;
  ClientWorkloadDriver* client_driver_ = nullptr;
  obs::health::AlertEngine* alerts_ = nullptr;
  SimTime alert_interval_ = kSecond;
  std::function<void(SimTime, const ScenarioAction&)> action_observer_;
  std::function<ipsec::IpPacket(std::uint64_t)> traffic_source_;
  std::uint64_t traffic_seq_ = 0;
  std::vector<KeyRequestOutcome> key_requests_;
  EventScheduler::Handle vpn_wakeup_;
  std::vector<std::uint64_t> supply_subscriptions_;  // [gateway] -> token
  bool running_ = false;
};

}  // namespace qkd::sim
