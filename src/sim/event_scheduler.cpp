#include "src/sim/event_scheduler.hpp"

#include <stdexcept>
#include <string>

namespace qkd::sim {

EventScheduler::Handle EventScheduler::schedule(SimTime when, SimTime period,
                                                Callback callback) {
  if (when < clock_.now())
    throw std::invalid_argument(
        "EventScheduler: scheduling at " + std::to_string(when) +
        " ns, before now (" + std::to_string(clock_.now()) + " ns)");
  if (!callback)
    throw std::invalid_argument("EventScheduler: empty callback");
  const std::uint64_t id = next_id_++;
  events_.emplace(id, Event{std::move(callback), period});
  heap_.push(HeapEntry{when, next_seq_++, id});
  return Handle(id);
}

EventScheduler::Handle EventScheduler::at(SimTime when, Callback callback) {
  return schedule(when, 0, std::move(callback));
}

EventScheduler::Handle EventScheduler::after(SimTime delay,
                                             Callback callback) {
  if (delay < 0)
    throw std::invalid_argument("EventScheduler::after: negative delay " +
                                std::to_string(delay) + " ns");
  return schedule(clock_.now() + delay, 0, std::move(callback));
}

EventScheduler::Handle EventScheduler::every(SimTime first_after,
                                             SimTime period,
                                             Callback callback) {
  if (first_after < 0)
    throw std::invalid_argument(
        "EventScheduler::every: negative first_after " +
        std::to_string(first_after) + " ns");
  if (period <= 0)
    throw std::invalid_argument("EventScheduler::every: period must be > 0");
  return schedule(clock_.now() + first_after, period, std::move(callback));
}

bool EventScheduler::cancel(Handle handle) {
  if (!handle.valid()) return false;
  // An event whose callback is on the stack (at any nesting depth) must not
  // have its Event erased mid-call: mark the frame and let dispatch() erase
  // on unwind.
  for (DispatchFrame& frame : dispatch_stack_) {
    if (frame.id == handle.id_) {
      const bool was_live = !frame.cancelled;
      frame.cancelled = true;
      return was_live;
    }
  }
  return events_.erase(handle.id_) > 0;
}

void EventScheduler::prune_cancelled_top() const {
  while (!heap_.empty() && events_.count(heap_.top().id) == 0) heap_.pop();
}

std::optional<SimTime> EventScheduler::next_time() const {
  prune_cancelled_top();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::optional<EventScheduler::HeapEntry> EventScheduler::pop_live() {
  prune_cancelled_top();
  if (heap_.empty()) return std::nullopt;
  const HeapEntry top = heap_.top();
  heap_.pop();
  return top;
}

void EventScheduler::dispatch(const HeapEntry& entry) {
  clock_.advance_to(entry.time);
  auto it = events_.find(entry.id);  // guaranteed live by pop_live()
  dispatch_stack_.push_back(DispatchFrame{entry.id, false});
  try {
    it->second.callback(clock_.now());
  } catch (...) {
    dispatch_stack_.pop_back();
    events_.erase(entry.id);  // a throwing event does not re-arm
    throw;
  }
  const bool cancelled = dispatch_stack_.back().cancelled;
  dispatch_stack_.pop_back();
  ++dispatched_;
  // The callback may have scheduled or dispatched around us, but this
  // event's map entry survives (cancellation of an executing event is
  // deferred above), so the iterator is still valid (std::map: only
  // erasure invalidates).
  if (cancelled || it->second.period == 0) {
    events_.erase(it);
    return;
  }
  heap_.push(HeapEntry{entry.time + it->second.period, next_seq_++, entry.id});
}

std::size_t EventScheduler::run_until(SimTime until) {
  if (until < clock_.now())
    throw std::invalid_argument(
        "EventScheduler::run_until: target precedes now");
  std::size_t count = 0;
  for (;;) {
    prune_cancelled_top();
    if (heap_.empty() || heap_.top().time > until) break;
    const HeapEntry entry = heap_.top();
    heap_.pop();
    dispatch(entry);
    ++count;
  }
  // A nested run_one()/run_until() inside a callback may already have
  // carried the clock past this horizon; landing on it is then a no-op.
  if (until > clock_.now()) clock_.advance_to(until);
  return count;
}

bool EventScheduler::run_one() {
  const auto entry = pop_live();
  if (!entry.has_value()) return false;
  dispatch(*entry);
  return true;
}

}  // namespace qkd::sim
