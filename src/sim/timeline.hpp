// Time-series recording for scenario runs.
//
// A TimelineRecorder periodically samples the observable state of the
// attached stack — per-link pool depth and usability from a MeshSimulation,
// mesh transport Stats, and per-gateway tunnel state (installed SAs,
// rollovers, IKE phase-2 progress, key-supply level and starvation
// counters) — into an in-memory series that tests assert on and benches and
// examples print. Scenario actions are recorded alongside as annotations,
// so a dumped timeline reads as the run's story: what was scheduled, when,
// and what the stack did about it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ipsec/gateway.hpp"
#include "src/network/key_transport.hpp"
#include "src/sim/event_scheduler.hpp"

namespace qkd::sim {

/// One link's state at a sample instant.
struct LinkSample {
  double pool_bits = 0.0;
  bool usable = true;
};

/// One gateway's tunnel state at a sample instant.
struct TunnelSample {
  std::size_t sas_installed = 0;       // live entries in the SAD
  std::uint64_t sa_rollovers = 0;
  std::uint64_t phase2_completed = 0;
  std::uint64_t phase2_timeouts = 0;
  std::size_t supply_bits = 0;         // key reservoir depth
  std::uint64_t supply_low_water = 0;  // starvation events seen so far
  std::uint64_t esp_sent = 0;
  std::uint64_t delivered = 0;
};

struct TimelinePoint {
  SimTime t = 0;
  std::vector<LinkSample> links;                // mesh links, by LinkId
  network::MeshSimulation::Stats mesh;          // copy at sample time
  std::vector<TunnelSample> tunnels;            // attached gateways, in order
};

/// A scenario action (or any other notable instant) on the timeline.
struct TimelineNote {
  SimTime t = 0;
  std::string text;
};

class TimelineRecorder {
 public:
  /// Sources are optional and may be attached in any combination; they must
  /// outlive the recorder's sampling.
  void attach_mesh(network::MeshSimulation& mesh) { mesh_ = &mesh; }
  void attach_gateway(ipsec::VpnGateway& gateway) {
    gateways_.push_back(&gateway);
  }

  /// Arms periodic sampling on `scheduler` (first sample after one
  /// interval). Call at most once per run.
  void start(EventScheduler& scheduler, SimTime interval);
  void stop();

  /// Takes one sample immediately (also what the periodic event calls).
  void sample(SimTime now);

  void note(SimTime t, std::string text);

  const std::vector<TimelinePoint>& points() const { return points_; }
  const std::vector<TimelineNote>& notes() const { return notes_; }

  // ---- Series queries (tests and benches) ---------------------------------
  /// Pool-depth series of one mesh link, one value per sample.
  std::vector<double> link_pool_series(network::LinkId link) const;
  /// First sample time at which `pred(point)` held, or nullopt.
  template <typename Pred>
  std::optional<SimTime> first_time(const Pred& pred) const {
    for (const TimelinePoint& p : points_)
      if (pred(p)) return p.t;
    return std::nullopt;
  }

  /// Renders the annotated series as an ASCII table (examples, bench logs).
  std::string render() const;

 private:
  network::MeshSimulation* mesh_ = nullptr;
  std::vector<ipsec::VpnGateway*> gateways_;
  std::vector<TimelinePoint> points_;
  std::vector<TimelineNote> notes_;
  EventScheduler* scheduler_ = nullptr;
  EventScheduler::Handle sampling_;
};

}  // namespace qkd::sim
