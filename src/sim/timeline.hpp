// Time-series recording for scenario runs.
//
// A TimelineRecorder periodically samples the observable state of the
// attached stack — per-link pool depth and usability from a MeshSimulation,
// mesh transport Stats, and per-gateway tunnel state (installed SAs,
// rollovers, IKE phase-2 progress, key-supply level and starvation
// counters) — into an in-memory series that tests assert on and benches and
// examples print. Scenario actions are recorded alongside as annotations,
// so a dumped timeline reads as the run's story: what was scheduled, when,
// and what the stack did about it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/ipsec/gateway.hpp"
#include "src/network/key_transport.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/event_scheduler.hpp"

namespace qkd::sim {

/// One link's state at a sample instant.
struct LinkSample {
  double pool_bits = 0.0;
  bool usable = true;
};

/// One gateway's tunnel state at a sample instant.
struct TunnelSample {
  std::size_t sas_installed = 0;       // live entries in the SAD
  std::uint64_t sa_rollovers = 0;
  std::uint64_t phase2_completed = 0;
  std::uint64_t phase2_timeouts = 0;
  std::size_t supply_bits = 0;         // key reservoir depth
  std::uint64_t supply_low_water = 0;  // starvation events seen so far
  std::uint64_t esp_sent = 0;
  std::uint64_t delivered = 0;
};

/// One service class (e.g. a KMS QoS class) at a sample instant.
struct ClassSample {
  std::string label;                  // class name ("realtime", ...)
  std::size_t queue_depth = 0;        // requests waiting right now
  std::uint64_t granted = 0;          // cumulative grants
  std::uint64_t rejected = 0;         // cumulative admission rejections + sheds
  std::uint64_t shed = 0;             // cumulative load-shedding drops alone
  double p99_grant_latency_s = 0.0;   // request -> grant, 99th percentile
};

/// A service layer (the KMS lives above src/sim, so it plugs in through
/// this seam) that can report per-class state for the timeline.
class ServiceSampler {
 public:
  virtual ~ServiceSampler() = default;
  virtual std::vector<ClassSample> sample_service(SimTime now) = 0;
};

struct TimelinePoint {
  SimTime t = 0;
  std::vector<LinkSample> links;                // mesh links, by LinkId
  network::MeshSimulation::Stats mesh;          // copy at sample time
  std::vector<TunnelSample> tunnels;            // attached gateways, in order
  std::vector<ClassSample> service;             // attached service's classes
};

/// A scenario action (or any other notable instant) on the timeline.
struct TimelineNote {
  SimTime t = 0;
  std::string text;
};

class TimelineRecorder {
 public:
  /// Sources are optional and may be attached in any combination; they must
  /// outlive the recorder's sampling.
  void attach_mesh(network::MeshSimulation& mesh) { mesh_ = &mesh; }
  void attach_gateway(ipsec::VpnGateway& gateway) {
    gateways_.push_back(&gateway);
  }
  /// At most one service layer (the KMS) per recorder.
  void attach_service(ServiceSampler& service) { service_ = &service; }

  /// Arms periodic sampling on `scheduler` (first sample after one
  /// interval). Call at most once per run.
  void start(EventScheduler& scheduler, SimTime interval);
  void stop();

  /// Takes one sample immediately (also what the periodic event calls).
  void sample(SimTime now);

  void note(SimTime t, std::string text);

  /// Bridges recorded trace spans onto the timeline: each span becomes a
  /// note at its sim start ("span <name> (<dur> us)"), interleaved in time
  /// order with the scenario annotations — so one render() tells the
  /// scripted story and what the traced requests did inside it.
  void annotate_spans(const std::vector<obs::Span>& spans);

  const std::vector<TimelinePoint>& points() const { return points_; }
  const std::vector<TimelineNote>& notes() const { return notes_; }

  // ---- Series queries (tests and benches) ---------------------------------
  /// Pool-depth series of one mesh link, one value per sample.
  std::vector<double> link_pool_series(network::LinkId link) const;
  /// First sample time at which `pred(point)` held, or nullopt.
  template <typename Pred>
  std::optional<SimTime> first_time(const Pred& pred) const {
    for (const TimelinePoint& p : points_)
      if (pred(p)) return p.t;
    return std::nullopt;
  }

  /// Renders the annotated series as an ASCII table (examples, bench logs).
  std::string render() const;

  /// The series as CSV (one row per sample; header from the first point's
  /// shape), so long load-test timelines can be plotted outside the
  /// process. Annotations are not included — they live in notes().
  std::string to_csv() const;

 private:
  network::MeshSimulation* mesh_ = nullptr;
  std::vector<ipsec::VpnGateway*> gateways_;
  ServiceSampler* service_ = nullptr;
  std::vector<TimelinePoint> points_;
  std::vector<TimelineNote> notes_;
  EventScheduler* scheduler_ = nullptr;
  EventScheduler::Handle sampling_;
};

}  // namespace qkd::sim
