// Discrete-event simulation core.
//
// An EventScheduler owns the ordering of everything that happens on one
// virtual timeline: callbacks are scheduled at absolute times (at), relative
// delays (after) or fixed periods (every), kept in a binary heap keyed by
// {SimTime, sequence number}, and dispatched in strict time order — ties
// break FIFO by schedule order, so two events armed for the same instant
// always fire in the order they were armed, regardless of heap internals.
// Dispatch advances the shared SimClock to each event's timestamp, so a
// callback always observes now() == its own due time.
//
// Handles returned by the schedule calls cancel events (including periodic
// timers, including from inside their own callback). Cancellation is lazy:
// the heap entry stays behind and is skipped when popped, so cancel() is
// O(log n) map work rather than a heap rebuild.
//
// This is the substrate the scenario layer (src/sim/scenario.hpp) scripts
// against, and what the formerly step-driven layers (LinkKeyService batch
// completions, gateway rekey/retransmit deadlines) now schedule onto.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <vector>

#include "src/common/sim_clock.hpp"

namespace qkd::sim {

class EventScheduler {
 public:
  /// Invoked with the simulation time the event was due (== clock.now()).
  using Callback = std::function<void(SimTime)>;

  /// Cancellation token. Default-constructed handles are inert.
  class Handle {
   public:
    Handle() = default;
    bool valid() const { return id_ != 0; }

   private:
    friend class EventScheduler;
    explicit Handle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
  };

  /// The scheduler advances `clock` as it dispatches; the clock must outlive
  /// the scheduler and must not be advanced behind its back past a pending
  /// event (the strict SimClock would then refuse the dispatch).
  explicit EventScheduler(SimClock& clock) : clock_(clock) {}

  // ---- Scheduling ---------------------------------------------------------
  /// One-shot at absolute time `when`; `when` may equal now() (the event
  /// fires on the next dispatch) but may not precede it.
  Handle at(SimTime when, Callback callback);

  /// One-shot `delay` after now(); delay must be >= 0.
  Handle after(SimTime delay, Callback callback);

  /// Periodic: first fires at now() + first_after, then every `period`
  /// (period > 0) until cancelled.
  Handle every(SimTime first_after, SimTime period, Callback callback);

  /// Cancels a pending event or live periodic timer; safe from inside the
  /// event's own callback. Returns false if the handle was invalid, already
  /// fired (one-shots), or already cancelled.
  bool cancel(Handle handle);

  // ---- Dispatch -----------------------------------------------------------
  /// Dispatches every event due at or before `until` in timestamp order,
  /// then advances the clock to exactly `until`. Events scheduled during
  /// dispatch participate (a callback arming an event inside the window gets
  /// it dispatched in this same call). Returns the number dispatched.
  std::size_t run_until(SimTime until);

  /// run_until(now() + duration).
  std::size_t run_for(SimTime duration) {
    return run_until(clock_.now() + duration);
  }

  /// Dispatches the single next pending event (advancing the clock to it);
  /// false when nothing is pending.
  bool run_one();

  // ---- Introspection ------------------------------------------------------
  SimTime now() const { return clock_.now(); }
  SimClock& clock() { return clock_; }
  std::size_t pending() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// Due time of the next live event, if any.
  std::optional<SimTime> next_time() const;
  /// Total events dispatched over the scheduler's lifetime (bench counter).
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct HeapEntry {
    SimTime time = 0;
    std::uint64_t seq = 0;  // schedule order: the FIFO tiebreak
    std::uint64_t id = 0;
    bool operator>(const HeapEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Event {
    Callback callback;
    SimTime period = 0;  // 0: one-shot
  };

  Handle schedule(SimTime when, SimTime period, Callback callback);
  /// Drops lazily-cancelled entries off the heap top (they are dead weight;
  /// removing them never changes observable order). Safe from const
  /// introspection, hence the mutable heap.
  void prune_cancelled_top() const;
  /// Pops heap entries until one refers to a live event; nullopt when the
  /// heap drains. Keeps `events_` and the heap consistent.
  std::optional<HeapEntry> pop_live();
  void dispatch(const HeapEntry& entry);

  SimClock& clock_;
  mutable std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                              std::greater<>>
      heap_;
  std::map<std::uint64_t, Event> events_;  // live (non-cancelled) events
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  // Dispatch-reentrancy state: one frame per callback on the stack (nested
  // run_one()/run_until() from inside a callback pushes another). cancel()
  // of any event currently executing marks its frame instead of erasing the
  // Event — erasing would destroy the std::function mid-call.
  struct DispatchFrame {
    std::uint64_t id = 0;
    bool cancelled = false;
  };
  std::vector<DispatchFrame> dispatch_stack_;
};

}  // namespace qkd::sim
