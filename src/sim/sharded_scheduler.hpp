// The sharded-execution seam of the discrete-event core.
//
// A ShardedScheduler lets N independent event streams (one per shard of a
// partitioned service, e.g. the KMS's per-endpoint-pair shards) advance the
// SAME virtual timeline in parallel, while one global stream keeps
// everything that must stay totally ordered (scenario actions, mesh
// distillation ticks, recorder sampling).
//
// Execution is windowed:
//
//   window_end = min(horizon, global.now() + sync_quantum,
//                    global stream's next due event)
//
//   1. every shard stream run_until(window_end)   — in parallel, on the
//      shared WorkerPool (a single-lane pool runs them inline, in shard
//      order — the deterministic path)
//   2. barrier tasks fire (all shard lanes parked) — this is where the KMS
//      plans its sequential mesh transports and fans the finalize work back
//      out across shards
//   3. global.run_until(window_end)               — scenario actions etc.
//
// The window boundaries depend only on the global stream and the quantum —
// never on shard contents — so the sequence of barriers, and therefore
// every cross-stream interleaving, is IDENTICAL for any shard count and
// any lane count. That is what makes "same seed => same per-client grant
// sequence for 1 and 4 shards" a theorem rather than a hope.
//
// Events a barrier task or a global event arms on a shard stream at the
// current instant run in the NEXT window (EventScheduler::at allows
// when == now()); events a shard arms on its own stream inside a window
// participate in that same window, exactly as in the single-stream core.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/common/worker_pool.hpp"
#include "src/sim/event_scheduler.hpp"

namespace qkd::sim {

class ShardedScheduler {
 public:
  struct Config {
    /// Upper bound on a window when the global stream is idle; defaults to
    /// the KMS batch window so shard service rounds never lag a barrier by
    /// more than one batching decision.
    SimTime sync_quantum = 10 * kMillisecond;
  };

  /// `global` is the scenario's ordinary scheduler (its clock is the
  /// authoritative timeline); `pool` may be null for a fresh single-lane
  /// pool. Both `global` and the pool must outlive this object.
  ShardedScheduler(EventScheduler& global, std::size_t shards,
                   std::shared_ptr<common::WorkerPool> pool, Config config);
  ShardedScheduler(EventScheduler& global, std::size_t shards,
                   std::shared_ptr<common::WorkerPool> pool);

  std::size_t shard_count() const { return streams_.size(); }
  EventScheduler& global() { return global_; }
  /// The event stream shard `shard` schedules its own service work on.
  EventScheduler& shard_stream(std::size_t shard);
  common::WorkerPool& pool() { return *pool_; }
  SimTime now() const { return global_.now(); }

  /// Registered tasks run between the shard phase and the global phase of
  /// every window, on the coordinating thread, with all shard lanes parked
  /// — the only place cross-shard state may be touched. Invoked with the
  /// window end time (== every stream's now()).
  void add_barrier_task(std::function<void(SimTime)> task);

  /// Advances every stream to `horizon` window by window; returns the
  /// total number of events dispatched (all streams + global).
  std::size_t run_until(SimTime horizon);

 private:
  struct Stream {
    SimClock clock;
    std::unique_ptr<EventScheduler> scheduler;
    std::size_t dispatched = 0;
  };

  EventScheduler& global_;
  std::shared_ptr<common::WorkerPool> pool_;
  Config config_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::function<void(SimTime)>> barrier_tasks_;
};

}  // namespace qkd::sim
