// Golden timeline assertions for scenario runs.
//
// The corpus under tests/scenarios/ asserts the same handful of shapes
// again and again: an alarm (link unusable) raised by T+x, a reroute that
// avoids the cut link, load shed strictly bulk -> interactive with
// realtime untouched, grant rate recovered to its pre-event level by T+y.
// TimelineExpect packages that vocabulary as fluent checks over a finished
// ScenarioRunner: every check appends a human-readable failure instead of
// aborting, so one assertion block reports every violated expectation of a
// run at once.
//
//   TimelineExpect expect(runner);
//   expect.link_down_by(5, 11 * kSecond)
//         .request_served(0)
//         .request_avoids_link(0, 5)
//         .class_never_shed("realtime")
//         .shed_order("bulk", "interactive");
//   QKD_EXPECT_TIMELINE(expect);   // gtest: EXPECT_TRUE(ok()) << report()
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sim/scenario.hpp"

namespace qkd::sim {

class TimelineExpect {
 public:
  /// The runner must have finished run(); only its recorder and request
  /// outcomes are read.
  explicit TimelineExpect(const ScenarioRunner& runner) : runner_(runner) {}

  // ---- Link observability ---------------------------------------------------
  /// The link reads unusable in some sample at or before `deadline` (the
  /// alarm/cut was raised in time).
  TimelineExpect& link_down_by(network::LinkId link, SimTime deadline);
  /// The link reads usable again in some sample in (`after`, `deadline`]
  /// (service restored in time).
  TimelineExpect& link_up_by(network::LinkId link, SimTime after,
                             SimTime deadline);
  /// The link's pool holds at least `bits` in some sample at or before
  /// `deadline` (distillation recovered).
  TimelineExpect& pool_at_least_by(network::LinkId link, double bits,
                                   SimTime deadline);

  // ---- Scripted KeyRequest outcomes ----------------------------------------
  TimelineExpect& request_served(std::size_t index);
  TimelineExpect& request_failed(std::size_t index);
  /// The delivered route avoided this link (reroute dodged the damage).
  TimelineExpect& request_avoids_link(std::size_t index, network::LinkId link);
  /// No relay on the delivered route is this node.
  TimelineExpect& request_avoids_node(std::size_t index, network::NodeId node);
  /// The two requests took different routes (a reroute happened between).
  TimelineExpect& requests_rerouted(std::size_t first, std::size_t second);
  /// Delivered without touching a compromised relay.
  TimelineExpect& request_clean(std::size_t index);
  /// Delivered but flagged: some relay on the route was owned.
  TimelineExpect& request_flagged_compromised(std::size_t index);

  // ---- Service classes (ClassSample series, matched by label) --------------
  /// The class's cumulative shed counter stays zero across every sample.
  TimelineExpect& class_never_shed(const std::string& label);
  /// The class was shed at least once by `deadline`.
  TimelineExpect& class_shed_by(const std::string& label, SimTime deadline);
  /// Shedding reached `first` no later than it reached `second` (and if
  /// `second` was never shed, any shed of `first` satisfies the order).
  TimelineExpect& shed_order(const std::string& first,
                             const std::string& second);
  /// The class's queue depth is at most `depth` in the last sample at or
  /// after `deadline` (backlog drained in time).
  TimelineExpect& class_queue_at_most_by(const std::string& label,
                                         std::size_t depth, SimTime deadline);
  /// Grant rate over [recovery_start, end-of-run] is at least `factor` of
  /// the rate over [0, baseline_end] — "recovered to the pre-event grant
  /// rate by T+y" with an explicit tolerance.
  TimelineExpect& grant_rate_recovers(const std::string& label,
                                      SimTime baseline_end,
                                      SimTime recovery_start, double factor);

  // ---- Annotations ----------------------------------------------------------
  /// Some recorded note contains this substring.
  TimelineExpect& noted(const std::string& substring);

  bool ok() const { return failures_.empty(); }
  /// Every violated expectation, one per line ("timeline ok" when none).
  std::string report() const;

 private:
  const std::vector<TimelinePoint>& points() const {
    return runner_.recorder().points();
  }
  void fail(std::string message) { failures_.push_back(std::move(message)); }
  /// The request outcome, or nullptr after recording an index failure.
  const ScenarioRunner::KeyRequestOutcome* request(std::size_t index,
                                                   const char* check);
  /// The class's sample in `point`, or nullptr (no failure recorded — some
  /// early samples legitimately predate the service attaching).
  static const ClassSample* class_in(const TimelinePoint& point,
                                     const std::string& label);
  /// First sample time with shed > 0 for the label, or -1.
  SimTime first_shed_time(const std::string& label) const;
  /// Granted-per-second over (window_start, window_end], from the first and
  /// last samples inside the window; -1 when under two samples fall inside.
  double grant_rate(const std::string& label, SimTime window_start,
                    SimTime window_end) const;

  const ScenarioRunner& runner_;
  std::vector<std::string> failures_;
};

/// gtest glue: report every violated expectation of the block at once.
#define QKD_EXPECT_TIMELINE(expect) \
  EXPECT_TRUE((expect).ok()) << (expect).report()

}  // namespace qkd::sim
