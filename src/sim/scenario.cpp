#include "src/sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/optics/attacks.hpp"
#include "src/sim/sharded_scheduler.hpp"

namespace qkd::sim {

const char* action_name(const ScenarioAction& action) {
  struct Namer {
    const char* operator()(const CutLink&) const { return "CutLink"; }
    const char* operator()(const RestoreLink&) const { return "RestoreLink"; }
    const char* operator()(const StartEavesdrop&) const {
      return "StartEavesdrop";
    }
    const char* operator()(const StopEavesdrop&) const {
      return "StopEavesdrop";
    }
    const char* operator()(const TrafficBurst&) const {
      return "TrafficBurst";
    }
    const char* operator()(const KeyRequest&) const { return "KeyRequest"; }
    const char* operator()(const CompromiseNode&) const {
      return "CompromiseNode";
    }
    const char* operator()(const RestoreNode&) const { return "RestoreNode"; }
    const char* operator()(const ClientArrival&) const {
      return "ClientArrival";
    }
    const char* operator()(const ClientDeparture&) const {
      return "ClientDeparture";
    }
    const char* operator()(const ClassicalImpairment&) const {
      return "ClassicalImpairment";
    }
  };
  return std::visit(Namer{}, action);
}

std::string describe(const ScenarioAction& action) {
  struct Describer {
    std::string operator()(const CutLink& a) const {
      return "CutLink link=" + std::to_string(a.link);
    }
    std::string operator()(const RestoreLink& a) const {
      return "RestoreLink link=" + std::to_string(a.link);
    }
    std::string operator()(const StartEavesdrop& a) const {
      return "StartEavesdrop link=" + std::to_string(a.link) +
             " fraction=" + std::to_string(a.intercept_fraction);
    }
    std::string operator()(const StopEavesdrop& a) const {
      return "StopEavesdrop link=" + std::to_string(a.link);
    }
    std::string operator()(const TrafficBurst& a) const {
      return "TrafficBurst " + std::to_string(a.packets_per_s) + " pkt/s for " +
             std::to_string(a.duration_s) + " s";
    }
    std::string operator()(const KeyRequest& a) const {
      return "KeyRequest " + std::to_string(a.src) + "->" +
             std::to_string(a.dst) + " bits=" + std::to_string(a.bits);
    }
    std::string operator()(const CompromiseNode& a) const {
      return "CompromiseNode node=" + std::to_string(a.node);
    }
    std::string operator()(const RestoreNode& a) const {
      return "RestoreNode node=" + std::to_string(a.node);
    }
    std::string operator()(const ClientArrival& a) const {
      return "ClientArrival " + std::to_string(a.count) + " x qos" +
             std::to_string(a.qos) + " " + std::to_string(a.src) + "->" +
             std::to_string(a.dst) + " @" +
             std::to_string(a.request_rate_hz) + "/s";
    }
    std::string operator()(const ClientDeparture& a) const {
      return "ClientDeparture " + std::to_string(a.count) + " x qos" +
             std::to_string(a.qos) + " " + std::to_string(a.src) + "->" +
             std::to_string(a.dst);
    }
    std::string operator()(const ClassicalImpairment& a) const {
      return "ClassicalImpairment link=" + std::to_string(a.link) +
             " latency=" + std::to_string(sim_to_seconds(a.latency)) +
             "s loss=" + std::to_string(a.loss_prob) +
             " reorder=" + std::to_string(a.reorder_prob);
    }
  };
  return std::visit(Describer{}, action);
}

Scenario& Scenario::at(SimTime when, ScenarioAction action) {
  if (when < 0)
    throw std::invalid_argument("Scenario::at: negative time");
  events_.push_back(ScenarioEvent{when, std::move(action)});
  return *this;
}

ScenarioRunner::ScenarioRunner(Scenario scenario)
    : ScenarioRunner(std::move(scenario), Config()) {}

ScenarioRunner::ScenarioRunner(Scenario scenario, Config config)
    : scenario_(std::move(scenario)),
      config_(config),
      scheduler_(std::make_unique<EventScheduler>(own_clock_)) {}

ScenarioRunner::~ScenarioRunner() {
  if (vpn_ != nullptr && supply_subscriptions_.size() == 2) {
    vpn_->a().key_supply().unsubscribe(supply_subscriptions_[0]);
    vpn_->b().key_supply().unsubscribe(supply_subscriptions_[1]);
  }
}

void ScenarioRunner::attach_mesh(network::MeshSimulation& mesh) {
  mesh_ = &mesh;
  recorder_.attach_mesh(mesh);
}

void ScenarioRunner::attach_vpn(ipsec::VpnLinkSimulation& vpn) {
  if (scheduler_->pending() > 0 || scheduler_->dispatched() > 0)
    throw std::logic_error(
        "ScenarioRunner::attach_vpn: attach before scheduling anything (the "
        "scheduler rebinds to the VPN's clock)");
  vpn_ = &vpn;
  clock_ = &vpn.clock();
  scheduler_ = std::make_unique<EventScheduler>(*clock_);
  recorder_.attach_gateway(vpn.a());
  recorder_.attach_gateway(vpn.b());
  // A replenished supply ends a starvation episode: wake the tunnel
  // immediately instead of waiting for the next scheduled deadline.
  const auto on_event = [this](const keystore::SupplyEvent& event) {
    if (event.kind == keystore::SupplyEventKind::kReplenished)
      arm_vpn_deadline(clock_->now());
  };
  supply_subscriptions_.push_back(vpn.a().key_supply().subscribe(on_event));
  supply_subscriptions_.push_back(vpn.b().key_supply().subscribe(on_event));
}

void ScenarioRunner::set_traffic_source(
    std::function<ipsec::IpPacket(std::uint64_t)> make) {
  traffic_source_ = std::move(make);
}

void ScenarioRunner::attach_client_driver(ClientWorkloadDriver& driver) {
  client_driver_ = &driver;
}

void ScenarioRunner::attach_alerts(obs::health::AlertEngine& engine,
                                   SimTime interval) {
  if (interval <= 0)
    throw std::invalid_argument(
        "ScenarioRunner::attach_alerts: interval must be > 0");
  alerts_ = &engine;
  alert_interval_ = interval;
  engine.set_transition_observer([this](const obs::health::Transition& t) {
    recorder_.note(t.at, std::string("alert ") + t.rule + ": " +
                             obs::health::alert_state_name(t.from) + " -> " +
                             obs::health::alert_state_name(t.to));
  });
}

void ScenarioRunner::set_action_observer(
    std::function<void(SimTime, const ScenarioAction&)> observer) {
  action_observer_ = std::move(observer);
}

void ScenarioRunner::pump_vpn(SimTime now) {
  vpn_->pump();
  arm_vpn_deadline(now);
}

void ScenarioRunner::catch_up_mesh(SimTime now) {
  if (mesh_ == nullptr || mesh_->key_service() != nullptr) return;
  if (now <= mesh_accrued_to_) return;
  mesh_->step(sim_to_seconds(now - mesh_accrued_to_));
  mesh_accrued_to_ = now;
}

void ScenarioRunner::arm_vpn_deadline(SimTime now) {
  if (vpn_ == nullptr) return;
  std::optional<SimTime> deadline = vpn_->a().next_deadline(now);
  const auto b_deadline = vpn_->b().next_deadline(now);
  if (b_deadline.has_value() &&
      (!deadline.has_value() || *b_deadline < *deadline))
    deadline = b_deadline;
  if (vpn_wakeup_.valid()) scheduler_->cancel(vpn_wakeup_);
  vpn_wakeup_ = EventScheduler::Handle();
  if (!deadline.has_value()) return;
  // A deadline that still reads "now" right after a pump means a gateway is
  // starved and stays starved; back off instead of respinning this instant.
  const SimTime when =
      *deadline <= now ? now + config_.stalled_retry : *deadline;
  vpn_wakeup_ = scheduler_->at(when, [this](SimTime t) {
    vpn_wakeup_ = EventScheduler::Handle();  // consumed
    pump_vpn(t);
  });
}

void ScenarioRunner::start_traffic(SimTime now, const TrafficBurst& burst) {
  if (vpn_ == nullptr)
    throw std::logic_error("ScenarioRunner: TrafficBurst without a VPN");
  if (burst.tunnel != 0)
    throw std::logic_error(
        "ScenarioRunner: TrafficBurst tunnel " +
        std::to_string(burst.tunnel) +
        " — only tunnel 0 (the attached VpnLinkSimulation) exists");
  if (!traffic_source_)
    throw std::logic_error(
        "ScenarioRunner: TrafficBurst without set_traffic_source()");
  if (burst.packets_per_s <= 0.0 || burst.duration_s <= 0.0)
    throw std::invalid_argument("ScenarioRunner: degenerate TrafficBurst");
  const auto total = static_cast<std::uint64_t>(
      std::max(1.0, burst.packets_per_s * burst.duration_s));
  const SimTime period = std::max<SimTime>(
      1, seconds_to_sim(1.0 / burst.packets_per_s));
  auto remaining = std::make_shared<std::uint64_t>(total);
  auto handle = std::make_shared<EventScheduler::Handle>();
  *handle = scheduler_->every(0, period, [this, remaining,
                                          handle](SimTime t) {
    vpn_->a().submit_plaintext(traffic_source_(traffic_seq_++), t);
    pump_vpn(t);
    if (--*remaining == 0) scheduler_->cancel(*handle);
  });
  (void)now;
}

void ScenarioRunner::apply(SimTime now, const ScenarioAction& action) {
  catch_up_mesh(now);  // act on pools as of this instant, not the last tick
  recorder_.note(now, describe(action));
  struct Applier {
    ScenarioRunner& r;
    SimTime now;

    qkd::network::LinkKeyService* vpn_feed() const {
      return r.vpn_ != nullptr ? r.vpn_->key_service() : nullptr;
    }

    void operator()(const CutLink& a) const {
      if (r.mesh_ != nullptr) {
        r.mesh_->cut_link(a.link);
      } else if (auto* feed = vpn_feed()) {
        feed->set_link_enabled(a.link, false);
      } else {
        throw std::logic_error("ScenarioRunner: CutLink with nothing attached");
      }
    }
    void operator()(const RestoreLink& a) const {
      if (r.mesh_ != nullptr) {
        r.mesh_->restore_link(a.link);
      } else if (auto* feed = vpn_feed()) {
        feed->set_link_enabled(a.link, true);
      } else {
        throw std::logic_error(
            "ScenarioRunner: RestoreLink with nothing attached");
      }
    }
    void operator()(const StartEavesdrop& a) const {
      if (r.mesh_ != nullptr) {
        r.mesh_->eavesdrop_link(a.link, a.intercept_fraction);
      } else if (r.vpn_ != nullptr && r.vpn_->key_service() != nullptr) {
        r.vpn_->set_feed_attack(
            std::make_unique<qkd::optics::InterceptResendAttack>(
                a.intercept_fraction));
      } else {
        throw std::logic_error(
            "ScenarioRunner: StartEavesdrop with nothing attached");
      }
    }
    void operator()(const StopEavesdrop& a) const {
      if (r.mesh_ != nullptr) {
        r.mesh_->eavesdrop_link(a.link, 0.0);
        // The alarm abandoned the link; Eve leaving puts it back in
        // service (a concurrent fiber cut stays cut).
        if (r.mesh_->topology().link(a.link).state ==
            network::LinkState::kEavesdropped)
          r.mesh_->restore_link(a.link);
      } else if (r.vpn_ != nullptr && r.vpn_->key_service() != nullptr) {
        r.vpn_->set_feed_attack(nullptr);
      } else {
        throw std::logic_error(
            "ScenarioRunner: StopEavesdrop with nothing attached");
      }
    }
    void operator()(const TrafficBurst& a) const { r.start_traffic(now, a); }
    void operator()(const KeyRequest& a) const {
      if (r.mesh_ == nullptr)
        throw std::logic_error("ScenarioRunner: KeyRequest without a mesh");
      KeyRequestOutcome outcome;
      outcome.at = now;
      outcome.request = a;
      outcome.result = r.mesh_->transport_key(a.src, a.dst, a.bits);
      r.recorder_.note(
          now, std::string("  -> ") +
                   (outcome.result.success ? "delivered" : "failed") +
                   ", hops=" + std::to_string(outcome.result.route.hop_count()));
      r.key_requests_.push_back(std::move(outcome));
    }
    void operator()(const CompromiseNode& a) const {
      if (r.mesh_ == nullptr)
        throw std::logic_error(
            "ScenarioRunner: CompromiseNode without a mesh");
      r.mesh_->compromise_node(a.node);
    }
    void operator()(const RestoreNode& a) const {
      if (r.mesh_ == nullptr)
        throw std::logic_error("ScenarioRunner: RestoreNode without a mesh");
      r.mesh_->restore_node(a.node);
    }
    void operator()(const ClientArrival& a) const {
      if (r.client_driver_ == nullptr)
        throw std::logic_error(
            "ScenarioRunner: ClientArrival without attach_client_driver()");
      r.client_driver_->client_arrival(now, a);
    }
    void operator()(const ClientDeparture& a) const {
      if (r.client_driver_ == nullptr)
        throw std::logic_error(
            "ScenarioRunner: ClientDeparture without attach_client_driver()");
      r.client_driver_->client_departure(now, a);
    }
    void operator()(const ClassicalImpairment& a) const {
      qkd::net::ClassicalConditions conditions;
      conditions.latency = a.latency;
      conditions.loss_prob = a.loss_prob;
      conditions.reorder_prob = a.reorder_prob;
      if (r.mesh_ != nullptr) {
        if (!r.mesh_->set_classical_conditions(a.link, conditions))
          r.recorder_.note(
              now, "  -> no-op: analytic mesh has no classical channel");
      } else if (auto* feed = vpn_feed()) {
        feed->session(a.link).channel().set_conditions(
            conditions, 0x57A11EDULL ^ a.link);
      } else {
        throw std::logic_error(
            "ScenarioRunner: ClassicalImpairment with nothing attached");
      }
    }
  };
  std::visit(Applier{*this, now}, action);
  if (action_observer_) action_observer_(now, action);
}

std::size_t ScenarioRunner::run(SimTime horizon) {
  return run_with(horizon, [this](SimTime until) {
    return scheduler_->run_until(until);
  });
}

std::size_t ScenarioRunner::run(ShardedScheduler& sharded, SimTime horizon) {
  if (&sharded.global() != scheduler_.get())
    throw std::logic_error(
        "ScenarioRunner::run: the ShardedScheduler must wrap this runner's "
        "scheduler()");
  return run_with(horizon, [&sharded](SimTime until) {
    return sharded.run_until(until);
  });
}

std::size_t ScenarioRunner::run_with(
    SimTime horizon, const std::function<std::size_t(SimTime)>& drive) {
  if (running_)
    throw std::logic_error("ScenarioRunner::run: already ran");
  running_ = true;
  if (horizon < clock_->now())
    throw std::invalid_argument("ScenarioRunner::run: horizon precedes now");

  // Analytic distillation is accrued exactly up to every observation
  // instant (catch_up_mesh runs before each sample and each scripted
  // action), so same-instant ordering between driver ticks and actions is
  // immaterial; engine-backed links produce at real batch boundaries, and
  // an action between batches sees the last completed batch — as it would
  // on hardware.
  scheduler_->every(config_.sample_interval, config_.sample_interval,
                    [this](SimTime t) {
                      catch_up_mesh(t);
                      recorder_.sample(t);
                    });

  if (alerts_ != nullptr) {
    // Alert evaluation is its own periodic event (not piggybacked on
    // sampling) so the evaluation cadence — and with it for_duration
    // debounce resolution — is configured independently of the recorder.
    scheduler_->every(alert_interval_, alert_interval_, [this](SimTime t) {
      catch_up_mesh(t);
      alerts_->evaluate(t);
    });
  }

  if (mesh_ != nullptr) {
    if (auto* service = mesh_->key_service()) {
      // Engine-backed links: one self-paced batch-completion event chain
      // per link. The next completion lands after the duration the batch
      // ACTUALLY took — on a clean channel exactly the Qframe period, but
      // a ClassicalImpairment's latency stall (folded into the batch's
      // duration_s) stretches the cadence, so a degraded classical channel
      // lowers the distilled rate on the timeline, not just on paper.
      for (const network::Link& link : mesh_->topology().links()) {
        const SimTime frame =
            seconds_to_sim(service->link_frame_duration_s(link.id));
        const network::LinkId id = link.id;
        auto fire = std::make_shared<std::function<void(SimTime)>>();
        *fire = [this, service, id, frame, fire](SimTime now) {
          SimTime next = frame;
          if (mesh_->topology().link(id).usable()) {
            const double before = service->session(id).totals().duration_s;
            service->run_link_batch(id);
            const double took =
                service->session(id).totals().duration_s - before;
            if (took > 0.0) next = seconds_to_sim(took);
          }
          scheduler_->at(now + next, *fire);
        };
        scheduler_->at(frame, *fire);
      }
    } else {
      // Accrual cadence between observations (keeps long idle stretches
      // from accruing in one jump at the next sample).
      const SimTime tick = seconds_to_sim(config_.mesh_tick_s);
      scheduler_->every(tick, tick,
                        [this](SimTime t) { catch_up_mesh(t); });
    }
  }

  if (vpn_ != nullptr) {
    if (auto* feed = vpn_->key_service()) {
      // The tunnel's QKD feed: scheduled batch completions, each followed
      // by a pump so the gateways react to fresh key at delivery time.
      const SimTime frame = seconds_to_sim(feed->link_frame_duration_s(0));
      scheduler_->every(frame, frame, [this, feed](SimTime t) {
        feed->run_link_batch(0);
        pump_vpn(t);
      });
    }
    arm_vpn_deadline(clock_->now());
  }

  for (const ScenarioEvent& event : scenario_.events()) {
    scheduler_->at(event.at, [this, &event](SimTime t) {
      apply(t, event.action);
      if (vpn_ != nullptr) arm_vpn_deadline(t);
    });
  }

  const std::size_t dispatched = drive(horizon);
  // Close the series at the horizon (unless periodic sampling just did).
  catch_up_mesh(horizon);
  if (recorder_.points().empty() || recorder_.points().back().t != horizon)
    recorder_.sample(clock_->now());
  if (alerts_ != nullptr && alerts_->last_evaluated() < horizon)
    alerts_->evaluate(horizon);
  return dispatched;
}

}  // namespace qkd::sim
