// Property-based scenario generation: "as many scenarios as you can
// imagine", made mechanical.
//
// A ScenarioFuzzer derives, from one 64-bit seed, a random topology (relay
// ring or hub-and-spoke star with randomized size and optics) plus a random
// LEGAL action sequence over it — cuts only on up links, restores only on
// cut links, eavesdroppers arriving only where none is camped, departures
// only of cohorts that arrived, and so on. The legality rules are the
// published contract: validate_actions() checks any scenario against them,
// the generator provably emits only sequences that pass, and the fuzz
// harness replays a failing case from its seed alone.
//
// When a run violates a global invariant, minimize() shrinks the action
// script greedily (drop any event whose removal keeps the failure) so the
// reproduction the harness prints is the shortest story that still breaks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::sim {

/// One generated case: everything needed to run it — and to reproduce it,
/// since the whole struct is a pure function of `seed`.
struct FuzzCase {
  std::uint64_t seed = 0;
  network::Topology topology;
  std::string topology_summary;            // "relay_ring(n=6, 10 km, 1e8 Hz)"
  std::vector<network::NodeId> endpoints;  // KeyRequest / client endpoints
  std::vector<network::NodeId> relays;     // CompromiseNode candidates
  std::uint64_t mesh_seed = 0;             // MeshSimulation's RNG seed
  Scenario scenario;
  SimTime horizon = 0;

  /// The case as a replayable story: a header naming seed + topology, then
  /// one timestamped action per line (what a failure report prints).
  std::string script() const;
  /// script() for an explicitly minimized action list.
  std::string script_for(const Scenario& minimized) const;
};

class ScenarioFuzzer {
 public:
  struct Config {
    std::size_t min_relays = 3;
    std::size_t max_relays = 8;
    std::size_t min_actions = 4;
    std::size_t max_actions = 24;
    SimTime horizon = 60 * kSecond;
    /// Emit ClientArrival/ClientDeparture actions (the harness must attach
    /// a KMS-backed ClientWorkloadDriver).
    bool client_actions = true;
    /// Occasionally generate a single-relay star instead of a ring.
    bool allow_star = true;
  };

  explicit ScenarioFuzzer(std::uint64_t seed) : ScenarioFuzzer(seed, {}) {}
  ScenarioFuzzer(std::uint64_t seed, Config config);

  /// Generates the next case of this seed's stream. The first generate()
  /// of ScenarioFuzzer(s) is always the same case, so a campaign that
  /// uses one fresh fuzzer per seed reproduces any case from its seed.
  FuzzCase generate();

  const Config& config() const { return config_; }

 private:
  std::uint64_t seed_;
  Config config_;
  qkd::Rng rng_;
};

/// Checks an action sequence against the legality rules the fuzzer
/// generates under (events considered in time order, append order breaking
/// ties — the runner's dispatch order). Returns one human-readable line
/// per violation; empty means legal. A legal sequence never throws in
/// ScenarioRunner and never asks the stack for a nonsensical transition.
std::vector<std::string> validate_actions(const network::Topology& topology,
                                          const Scenario& scenario);

/// Greedy scenario shrinking: repeatedly drops any single event whose
/// removal keeps `still_fails` true, until no single removal does. The
/// oracle typically re-runs the scenario end to end; it is called
/// O(events^2) times. Returns `scenario` unchanged if it does not fail.
Scenario minimize(const Scenario& scenario,
                  const std::function<bool(const Scenario&)>& still_fails);

}  // namespace qkd::sim
