#include "src/sim/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace qkd::sim {

void TimelineRecorder::start(EventScheduler& scheduler, SimTime interval) {
  if (sampling_.valid())
    throw std::logic_error("TimelineRecorder: sampling already armed");
  scheduler_ = &scheduler;
  sampling_ = scheduler.every(interval, interval,
                              [this](SimTime now) { sample(now); });
}

void TimelineRecorder::stop() {
  if (scheduler_ != nullptr && sampling_.valid()) scheduler_->cancel(sampling_);
  sampling_ = EventScheduler::Handle();
  scheduler_ = nullptr;
}

void TimelineRecorder::sample(SimTime now) {
  TimelinePoint point;
  point.t = now;
  if (mesh_ != nullptr) {
    const auto& topology = mesh_->topology();
    point.links.reserve(topology.link_count());
    for (const network::Link& link : topology.links()) {
      LinkSample sample;
      sample.pool_bits = mesh_->link_pool_bits(link.id);
      sample.usable = link.usable();
      point.links.push_back(sample);
    }
    point.mesh = mesh_->stats();
  }
  point.tunnels.reserve(gateways_.size());
  for (ipsec::VpnGateway* gateway : gateways_) {
    TunnelSample sample;
    sample.sas_installed = gateway->sad().size();
    sample.sa_rollovers = gateway->stats().sa_rollovers;
    sample.phase2_completed = gateway->ike().stats().phase2_completed;
    sample.phase2_timeouts = gateway->ike().stats().phase2_timeouts;
    sample.supply_bits = gateway->key_supply().available_bits();
    sample.supply_low_water = gateway->stats().supply_low_water;
    sample.esp_sent = gateway->stats().esp_sent;
    sample.delivered = gateway->stats().delivered;
    point.tunnels.push_back(sample);
  }
  if (service_ != nullptr) point.service = service_->sample_service(now);
  points_.push_back(std::move(point));
}

void TimelineRecorder::note(SimTime t, std::string text) {
  notes_.push_back(TimelineNote{t, std::move(text)});
}

void TimelineRecorder::annotate_spans(const std::vector<obs::Span>& spans) {
  for (const obs::Span& span : spans) {
    const SimTime end =
        span.sim_end >= span.sim_start ? span.sim_end : span.sim_start;
    char text[128];
    std::snprintf(text, sizeof text, "span %s (%.1f us)", span.name.c_str(),
                  static_cast<double>(end - span.sim_start) / 1e3);
    notes_.push_back(TimelineNote{span.sim_start, text});
  }
  // Interleave with the scenario annotations; stable so same-instant notes
  // keep insertion order (action first, then its spans).
  std::stable_sort(
      notes_.begin(), notes_.end(),
      [](const TimelineNote& a, const TimelineNote& b) { return a.t < b.t; });
}

std::vector<double> TimelineRecorder::link_pool_series(
    network::LinkId link) const {
  std::vector<double> series;
  series.reserve(points_.size());
  for (const TimelinePoint& point : points_)
    series.push_back(link < point.links.size() ? point.links[link].pool_bits
                                               : 0.0);
  return series;
}

std::string TimelineRecorder::render() const {
  std::string out;
  char line[256];
  // Interleave samples and notes chronologically (notes first on ties, so an
  // action prints before the sample that shows its effect).
  std::size_t note_idx = 0;
  const auto flush_notes = [&](SimTime up_to) {
    while (note_idx < notes_.size() && notes_[note_idx].t <= up_to) {
      std::snprintf(line, sizeof(line), "t=%8.1fs  ** %s\n",
                    sim_to_seconds(notes_[note_idx].t),
                    notes_[note_idx].text.c_str());
      out += line;
      ++note_idx;
    }
  };
  for (const TimelinePoint& point : points_) {
    flush_notes(point.t);
    std::snprintf(line, sizeof(line), "t=%8.1fs ", sim_to_seconds(point.t));
    out += line;
    for (std::size_t i = 0; i < point.links.size(); ++i) {
      std::snprintf(line, sizeof(line), " L%zu:%s%.0f", i,
                    point.links[i].usable ? "" : "x",
                    point.links[i].pool_bits);
      out += line;
    }
    if (!point.links.empty()) {
      std::snprintf(line, sizeof(line), "  ok=%llu reroutes=%llu",
                    static_cast<unsigned long long>(
                        point.mesh.transports_succeeded),
                    static_cast<unsigned long long>(point.mesh.reroutes));
      out += line;
    }
    for (std::size_t i = 0; i < point.tunnels.size(); ++i) {
      const TunnelSample& tunnel = point.tunnels[i];
      std::snprintf(line, sizeof(line),
                    "  gw%zu: sas=%zu roll=%llu supply=%zu", i,
                    tunnel.sas_installed,
                    static_cast<unsigned long long>(tunnel.sa_rollovers),
                    tunnel.supply_bits);
      out += line;
    }
    for (const ClassSample& cls : point.service) {
      std::snprintf(line, sizeof(line), "  %s:q%zu/g%llu/r%llu",
                    cls.label.c_str(), cls.queue_depth,
                    static_cast<unsigned long long>(cls.granted),
                    static_cast<unsigned long long>(cls.rejected));
      out += line;
    }
    out += '\n';
  }
  flush_notes(notes_.empty() ? 0 : notes_.back().t);
  return out;
}

std::string TimelineRecorder::to_csv() const {
  if (points_.empty()) return "t_s\n";
  std::string out;
  char cell[256];
  // The column set is the union over all samples (a source attached
  // between a stop() and a restart widens later points); short rows are
  // zero-padded so every row has the header's arity.
  std::size_t n_links = 0, n_tunnels = 0;
  const std::vector<ClassSample>* widest_service = nullptr;
  for (const TimelinePoint& point : points_) {
    n_links = std::max(n_links, point.links.size());
    n_tunnels = std::max(n_tunnels, point.tunnels.size());
    if (widest_service == nullptr ||
        point.service.size() > widest_service->size())
      widest_service = &point.service;
  }
  const std::size_t n_classes = widest_service->size();

  out += "t_s";
  for (std::size_t i = 0; i < n_links; ++i) {
    std::snprintf(cell, sizeof(cell), ",link%zu_pool_bits,link%zu_usable", i,
                  i);
    out += cell;
  }
  if (n_links > 0)
    out += ",mesh_ok,mesh_starved,mesh_no_route,mesh_reroutes"
           ",mesh_compromised";
  for (std::size_t i = 0; i < n_tunnels; ++i) {
    std::snprintf(cell, sizeof(cell),
                  ",gw%zu_sas,gw%zu_rollovers,gw%zu_supply_bits"
                  ",gw%zu_p2_done,gw%zu_p2_timeouts",
                  i, i, i, i, i);
    out += cell;
  }
  for (const ClassSample& cls : *widest_service) {
    std::snprintf(cell, sizeof(cell),
                  ",svc_%s_queue,svc_%s_granted,svc_%s_rejected"
                  ",svc_%s_shed,svc_%s_p99_s",
                  cls.label.c_str(), cls.label.c_str(), cls.label.c_str(),
                  cls.label.c_str(), cls.label.c_str());
    out += cell;
  }
  out += '\n';

  for (const TimelinePoint& point : points_) {
    std::snprintf(cell, sizeof(cell), "%.6f", sim_to_seconds(point.t));
    out += cell;
    for (std::size_t i = 0; i < n_links; ++i) {
      if (i < point.links.size()) {
        std::snprintf(cell, sizeof(cell), ",%.1f,%d",
                      point.links[i].pool_bits,
                      point.links[i].usable ? 1 : 0);
      } else {
        std::snprintf(cell, sizeof(cell), ",0.0,0");
      }
      out += cell;
    }
    if (n_links > 0) {
      std::snprintf(cell, sizeof(cell), ",%llu,%llu,%llu,%llu,%llu",
                    static_cast<unsigned long long>(
                        point.mesh.transports_succeeded),
                    static_cast<unsigned long long>(
                        point.mesh.transports_starved),
                    static_cast<unsigned long long>(
                        point.mesh.transports_no_route),
                    static_cast<unsigned long long>(point.mesh.reroutes),
                    static_cast<unsigned long long>(
                        point.mesh.transports_compromised));
      out += cell;
    }
    for (std::size_t i = 0; i < n_tunnels; ++i) {
      if (i < point.tunnels.size()) {
        const TunnelSample& tunnel = point.tunnels[i];
        std::snprintf(cell, sizeof(cell), ",%zu,%llu,%zu,%llu,%llu",
                      tunnel.sas_installed,
                      static_cast<unsigned long long>(tunnel.sa_rollovers),
                      tunnel.supply_bits,
                      static_cast<unsigned long long>(
                          tunnel.phase2_completed),
                      static_cast<unsigned long long>(
                          tunnel.phase2_timeouts));
      } else {
        std::snprintf(cell, sizeof(cell), ",0,0,0,0,0");
      }
      out += cell;
    }
    for (std::size_t i = 0; i < n_classes; ++i) {
      if (i < point.service.size()) {
        const ClassSample& cls = point.service[i];
        std::snprintf(cell, sizeof(cell), ",%zu,%llu,%llu,%llu,%.6f",
                      cls.queue_depth,
                      static_cast<unsigned long long>(cls.granted),
                      static_cast<unsigned long long>(cls.rejected),
                      static_cast<unsigned long long>(cls.shed),
                      cls.p99_grant_latency_s);
      } else {
        std::snprintf(cell, sizeof(cell), ",0,0,0,0,0.000000");
      }
      out += cell;
    }
    out += '\n';
  }
  return out;
}

}  // namespace qkd::sim
