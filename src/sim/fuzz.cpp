#include "src/sim/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <tuple>

namespace qkd::sim {

namespace {

// ---- The legality state machine -------------------------------------------
// Shared by the validator and the generator: one source of truth for what
// "a legal next action" means given everything that happened so far.

struct LinkFlags {
  bool cut = false;
  bool tapped = false;
};

using CohortKey = std::tuple<network::NodeId, network::NodeId, unsigned>;

struct SequenceState {
  std::vector<LinkFlags> links;
  std::vector<char> compromised;           // by NodeId
  std::map<CohortKey, std::size_t> cohorts;  // live clients per shape

  explicit SequenceState(const network::Topology& topology)
      : links(topology.link_count()), compromised(topology.node_count(), 0) {}
};

/// Why `action` is illegal in `state`, or nullopt when legal. Applies the
/// action's state transition when legal.
std::optional<std::string> check_and_apply(const network::Topology& topology,
                                           SequenceState& state,
                                           const ScenarioAction& action) {
  const auto bad_link = [&](network::LinkId link) {
    return link >= state.links.size();
  };
  const auto bad_node = [&](network::NodeId node) {
    return node >= state.compromised.size();
  };
  const auto endpoint = [&](network::NodeId node) {
    return !bad_node(node) &&
           topology.node(node).kind == network::NodeKind::kEndpoint;
  };

  struct Checker {
    const network::Topology& topology;
    SequenceState& state;
    decltype(bad_link)& is_bad_link;
    decltype(bad_node)& is_bad_node;
    decltype(endpoint)& is_endpoint;

    std::optional<std::string> operator()(const CutLink& a) {
      if (is_bad_link(a.link)) return "CutLink: unknown link";
      if (state.links[a.link].cut) return "CutLink: link already cut";
      state.links[a.link].cut = true;
      return std::nullopt;
    }
    std::optional<std::string> operator()(const RestoreLink& a) {
      if (is_bad_link(a.link)) return "RestoreLink: unknown link";
      if (!state.links[a.link].cut) return "RestoreLink: link is not cut";
      // restore_link() also clears any standing tap.
      state.links[a.link] = LinkFlags{};
      return std::nullopt;
    }
    std::optional<std::string> operator()(const StartEavesdrop& a) {
      if (is_bad_link(a.link)) return "StartEavesdrop: unknown link";
      if (a.intercept_fraction <= 0.0 || a.intercept_fraction > 1.0)
        return "StartEavesdrop: fraction outside (0, 1]";
      if (state.links[a.link].cut) return "StartEavesdrop: link is cut";
      if (state.links[a.link].tapped)
        return "StartEavesdrop: Eve is already on this link";
      state.links[a.link].tapped = true;
      return std::nullopt;
    }
    std::optional<std::string> operator()(const StopEavesdrop& a) {
      if (is_bad_link(a.link)) return "StopEavesdrop: unknown link";
      if (!state.links[a.link].tapped)
        return "StopEavesdrop: no eavesdropper on this link";
      state.links[a.link].tapped = false;
      return std::nullopt;
    }
    std::optional<std::string> operator()(const TrafficBurst& a) {
      if (a.packets_per_s <= 0.0 || a.duration_s <= 0.0)
        return "TrafficBurst: degenerate rate or duration";
      return std::nullopt;
    }
    std::optional<std::string> operator()(const KeyRequest& a) {
      if (!is_endpoint(a.src) || !is_endpoint(a.dst))
        return "KeyRequest: src/dst must be endpoint nodes";
      if (a.src == a.dst) return "KeyRequest: src == dst";
      if (a.bits == 0) return "KeyRequest: bits == 0";
      return std::nullopt;
    }
    std::optional<std::string> operator()(const CompromiseNode& a) {
      if (is_bad_node(a.node)) return "CompromiseNode: unknown node";
      if (topology.node(a.node).kind != network::NodeKind::kTrustedRelay)
        return "CompromiseNode: node is not a trusted relay";
      if (state.compromised[a.node]) return "CompromiseNode: already owned";
      state.compromised[a.node] = 1;
      return std::nullopt;
    }
    std::optional<std::string> operator()(const RestoreNode& a) {
      if (is_bad_node(a.node)) return "RestoreNode: unknown node";
      if (!state.compromised[a.node])
        return "RestoreNode: node is not compromised";
      state.compromised[a.node] = 0;
      return std::nullopt;
    }
    std::optional<std::string> operator()(const ClientArrival& a) {
      if (!is_endpoint(a.src) || !is_endpoint(a.dst))
        return "ClientArrival: src/dst must be endpoint nodes";
      if (a.src == a.dst) return "ClientArrival: src == dst";
      if (a.qos >= 3) return "ClientArrival: unknown QoS class";
      if (a.count == 0 || a.request_rate_hz <= 0.0 || a.bits == 0)
        return "ClientArrival: degenerate cohort";
      state.cohorts[CohortKey{a.src, a.dst, a.qos}] += a.count;
      return std::nullopt;
    }
    std::optional<std::string> operator()(const ClientDeparture& a) {
      const auto it = state.cohorts.find(CohortKey{a.src, a.dst, a.qos});
      const std::size_t live = it == state.cohorts.end() ? 0 : it->second;
      if (a.count == 0) return "ClientDeparture: count == 0";
      if (a.count > live)
        return "ClientDeparture: departs " + std::to_string(a.count) +
               " but only " + std::to_string(live) + " arrived";
      it->second -= a.count;
      return std::nullopt;
    }
    std::optional<std::string> operator()(const ClassicalImpairment& a) {
      // Settable at any time, even on a cut link (the fiber is cut; the
      // classical channel still exists); all-zero fields clear it.
      if (is_bad_link(a.link)) return "ClassicalImpairment: unknown link";
      if (a.latency < 0) return "ClassicalImpairment: negative latency";
      if (a.loss_prob < 0.0 || a.loss_prob > 1.0)
        return "ClassicalImpairment: loss outside [0, 1]";
      if (a.reorder_prob < 0.0 || a.reorder_prob > 1.0)
        return "ClassicalImpairment: reorder outside [0, 1]";
      return std::nullopt;
    }
  };
  Checker checker{topology, state, bad_link, bad_node, endpoint};
  return std::visit(checker, action);
}

Scenario rebuild(const std::vector<ScenarioEvent>& events) {
  Scenario scenario;
  for (const ScenarioEvent& event : events)
    scenario.at(event.at, event.action);
  return scenario;
}

std::string script_header(const FuzzCase& fuzz_case) {
  char line[200];
  std::snprintf(line, sizeof(line),
                "seed=%llu topology=%s mesh_seed=%llu horizon=%.1fs\n",
                static_cast<unsigned long long>(fuzz_case.seed),
                fuzz_case.topology_summary.c_str(),
                static_cast<unsigned long long>(fuzz_case.mesh_seed),
                sim_to_seconds(fuzz_case.horizon));
  return line;
}

std::string script_body(const Scenario& scenario) {
  std::string out;
  char prefix[48];
  for (const ScenarioEvent& event : scenario.events()) {
    std::snprintf(prefix, sizeof(prefix), "t=%8.3fs  ",
                  sim_to_seconds(event.at));
    out += prefix;
    out += describe(event.action);
    out += '\n';
  }
  return out;
}

}  // namespace

std::string FuzzCase::script() const { return script_for(scenario); }

std::string FuzzCase::script_for(const Scenario& minimized) const {
  return script_header(*this) + script_body(minimized);
}

std::vector<std::string> validate_actions(const network::Topology& topology,
                                          const Scenario& scenario) {
  // Events apply in time order; the runner's FIFO tie-break keeps append
  // order for same-instant actions, which stable_sort preserves.
  std::vector<ScenarioEvent> ordered = scenario.events();
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ScenarioEvent& a, const ScenarioEvent& b) {
                     return a.at < b.at;
                   });
  SequenceState state(topology);
  std::vector<std::string> violations;
  for (const ScenarioEvent& event : ordered) {
    if (auto error = check_and_apply(topology, state, event.action))
      violations.push_back("t=" + std::to_string(sim_to_seconds(event.at)) +
                           "s: " + describe(event.action) + " — " + *error);
  }
  return violations;
}

// ---- Generation ------------------------------------------------------------

ScenarioFuzzer::ScenarioFuzzer(std::uint64_t seed, Config config)
    : seed_(seed), config_(config), rng_(seed) {
  if (config_.min_relays < 3 || config_.max_relays < config_.min_relays)
    throw std::invalid_argument("ScenarioFuzzer: bad relay count range");
  if (config_.max_actions < config_.min_actions)
    throw std::invalid_argument("ScenarioFuzzer: bad action count range");
  if (config_.horizon < 10 * kSecond)
    throw std::invalid_argument("ScenarioFuzzer: horizon under 10 s");
}

FuzzCase ScenarioFuzzer::generate() {
  FuzzCase out;
  out.seed = seed_;
  out.horizon = config_.horizon;
  out.mesh_seed = rng_.next_u64();

  // ---- Random topology ----------------------------------------------------
  const double link_km = 5.0 * static_cast<double>(1 + rng_.next_below(3));
  const double pulse_hz = rng_.next_bool(0.5) ? 1e7 : 1e8;
  char summary[96];
  if (config_.allow_star && rng_.next_bool(0.2)) {
    const std::size_t spokes = 3 + rng_.next_below(4);
    out.topology = network::Topology::star(spokes, link_km);
    out.relays = {0};
    for (std::size_t i = 1; i <= spokes; ++i)
      out.endpoints.push_back(static_cast<network::NodeId>(i));
    std::snprintf(summary, sizeof(summary), "star(n=%zu, %.0f km, %.0e Hz)",
                  spokes, link_km, pulse_hz);
  } else {
    const std::size_t relays =
        config_.min_relays +
        rng_.next_below(config_.max_relays - config_.min_relays + 1);
    out.topology = network::Topology::relay_ring(relays, link_km);
    for (std::size_t i = 0; i < relays; ++i)
      out.relays.push_back(static_cast<network::NodeId>(i));
    out.endpoints = {static_cast<network::NodeId>(relays),
                     static_cast<network::NodeId>(relays + 1)};
    std::snprintf(summary, sizeof(summary),
                  "relay_ring(n=%zu, %.0f km, %.0e Hz)", relays, link_km,
                  pulse_hz);
  }
  out.topology_summary = summary;
  for (const network::Link& link : out.topology.links())
    out.topology.link(link.id).optics.pulse_rate_hz = pulse_hz;

  SequenceState state(out.topology);
  const auto pick_endpoint_pair = [&] {
    const std::size_t a = rng_.next_below(out.endpoints.size());
    std::size_t b = rng_.next_below(out.endpoints.size() - 1);
    if (b >= a) ++b;
    return std::make_pair(out.endpoints[a], out.endpoints[b]);
  };
  const auto add = [&](SimTime at, ScenarioAction action) {
    const auto error = check_and_apply(out.topology, state, action);
    if (error.has_value())
      throw std::logic_error("ScenarioFuzzer generated an illegal action: " +
                             describe(action) + " — " + *error);
    out.scenario.at(at, std::move(action));
  };

  // ---- Guaranteed workload: a cohort is online before the chaos ----------
  if (config_.client_actions) {
    const auto [src, dst] = pick_endpoint_pair();
    ClientArrival arrival;
    arrival.src = src;
    arrival.dst = dst;
    arrival.qos = static_cast<unsigned>(rng_.next_below(3));
    arrival.count = 1 + rng_.next_below(4);
    arrival.request_rate_hz = 0.5 * static_cast<double>(1 + rng_.next_below(5));
    arrival.bits = 64u << rng_.next_below(3);
    add(kSecond / 2, arrival);
  }

  // ---- Random legal action sequence --------------------------------------
  const std::size_t actions =
      config_.min_actions +
      rng_.next_below(config_.max_actions - config_.min_actions + 1);
  std::vector<SimTime> times;
  times.reserve(actions);
  const SimTime window = config_.horizon - 6 * kSecond;
  for (std::size_t i = 0; i < actions; ++i)
    times.push_back(kSecond +
                    static_cast<SimTime>(rng_.next_below(
                        static_cast<std::uint64_t>(window / kMillisecond))) *
                        kMillisecond);
  std::sort(times.begin(), times.end());

  enum class Kind {
    kCut,
    kRestoreLink,
    kTap,
    kUntap,
    kCompromise,
    kRestoreNode,
    kKeyRequest,
    kArrival,
    kDeparture,
    kImpair,
  };
  for (const SimTime at : times) {
    // Operand pools that are legal right now.
    std::vector<network::LinkId> cuttable, restorable, tappable, tapped;
    for (network::LinkId id = 0; id < state.links.size(); ++id) {
      if (!state.links[id].cut) cuttable.push_back(id);
      if (state.links[id].cut) restorable.push_back(id);
      if (!state.links[id].cut && !state.links[id].tapped)
        tappable.push_back(id);
      if (state.links[id].tapped) tapped.push_back(id);
    }
    std::vector<network::NodeId> ownable, sweepable;
    for (network::NodeId relay : out.relays) {
      if (state.compromised[relay])
        sweepable.push_back(relay);
      else
        ownable.push_back(relay);
    }
    std::vector<CohortKey> departable;
    for (const auto& [key, live] : state.cohorts)
      if (live > 0) departable.push_back(key);

    // Weighted legal-kind lottery: traffic-shaped actions dominate, damage
    // and recovery stay frequent, compromise campaigns are the rare spice.
    std::vector<Kind> lottery;
    const auto enter = [&lottery](Kind kind, std::size_t weight) {
      lottery.insert(lottery.end(), weight, kind);
    };
    enter(Kind::kKeyRequest, 3);
    if (config_.client_actions) enter(Kind::kArrival, 2);
    if (config_.client_actions && !departable.empty())
      enter(Kind::kDeparture, 2);
    if (!cuttable.empty()) enter(Kind::kCut, 2);
    if (!restorable.empty()) enter(Kind::kRestoreLink, 2);
    if (!tappable.empty()) enter(Kind::kTap, 2);
    if (!tapped.empty()) enter(Kind::kUntap, 2);
    if (!ownable.empty()) enter(Kind::kCompromise, 1);
    if (!sweepable.empty()) enter(Kind::kRestoreNode, 1);
    enter(Kind::kImpair, 1);

    switch (lottery[rng_.next_below(lottery.size())]) {
      case Kind::kCut:
        add(at, CutLink{cuttable[rng_.next_below(cuttable.size())]});
        break;
      case Kind::kRestoreLink:
        add(at, RestoreLink{restorable[rng_.next_below(restorable.size())]});
        break;
      case Kind::kTap:
        add(at, StartEavesdrop{tappable[rng_.next_below(tappable.size())],
                               rng_.next_bool(0.7) ? 1.0 : 0.05});
        break;
      case Kind::kUntap:
        add(at, StopEavesdrop{tapped[rng_.next_below(tapped.size())]});
        break;
      case Kind::kCompromise:
        add(at, CompromiseNode{ownable[rng_.next_below(ownable.size())]});
        break;
      case Kind::kRestoreNode:
        add(at, RestoreNode{sweepable[rng_.next_below(sweepable.size())]});
        break;
      case Kind::kKeyRequest: {
        const auto [src, dst] = pick_endpoint_pair();
        add(at, KeyRequest{src, dst, 64u << rng_.next_below(4)});
        break;
      }
      case Kind::kArrival: {
        const auto [src, dst] = pick_endpoint_pair();
        ClientArrival arrival;
        arrival.src = src;
        arrival.dst = dst;
        arrival.qos = static_cast<unsigned>(rng_.next_below(3));
        arrival.count = 1 + rng_.next_below(4);
        arrival.request_rate_hz =
            0.5 * static_cast<double>(1 + rng_.next_below(5));
        arrival.bits = 64u << rng_.next_below(3);
        add(at, arrival);
        break;
      }
      case Kind::kDeparture: {
        const CohortKey key = departable[rng_.next_below(departable.size())];
        const std::size_t live = state.cohorts[key];
        ClientDeparture departure;
        departure.src = std::get<0>(key);
        departure.dst = std::get<1>(key);
        departure.qos = std::get<2>(key);
        departure.count = 1 + rng_.next_below(live);
        add(at, departure);
        break;
      }
      case Kind::kImpair: {
        ClassicalImpairment impair;
        impair.link = static_cast<network::LinkId>(
            rng_.next_below(state.links.size()));
        if (rng_.next_bool(0.25)) {
          // Clear: all-zero restores a clean channel.
        } else {
          impair.latency =
              static_cast<SimTime>(rng_.next_below(50)) * kMillisecond;
          impair.loss_prob = rng_.next_bool(0.5)
                                 ? 0.0
                                 : 0.02 * static_cast<double>(
                                              1 + rng_.next_below(5));
          impair.reorder_prob =
              rng_.next_bool(0.5)
                  ? 0.0
                  : 0.05 * static_cast<double>(1 + rng_.next_below(4));
        }
        add(at, impair);
        break;
      }
    }
  }
  return out;
}

// ---- Minimization ----------------------------------------------------------

Scenario minimize(const Scenario& scenario,
                  const std::function<bool(const Scenario&)>& still_fails) {
  if (!still_fails(scenario)) return scenario;
  std::vector<ScenarioEvent> events = scenario.events();
  bool progress = true;
  while (progress && events.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
      std::vector<ScenarioEvent> candidate = events;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (still_fails(rebuild(candidate))) {
        events = std::move(candidate);
        progress = true;
        break;  // restart: indices shifted
      }
    }
  }
  return rebuild(events);
}

}  // namespace qkd::sim
