// IKE consumes through the KMS like any other client.
//
// Before the KMS, the VPN layer's key arrived either by hand-mirrored
// deposits or by attaching both gateway pools as sinks of one QKD link's
// stream — a dedicated-link arrangement. KmsIkeBridge replaces that with
// service consumption: it registers ONE client on the KMS for the gateway
// pair's endpoints and keeps both gateways' existing KeySupply reservoirs
// topped up from KMS grants — the initiator-side grant bits and the
// peer-side get_key_with_id copy are byte-identical (asserted), so the
// deposits stay mirror images and the IkeDaemons' Qblock/lane discipline
// works unchanged on top. Refills are event-driven: a low-water or
// exhausted event on the initiator supply triggers the next get_key (one
// in flight at a time), so the bridge consumes exactly the fair-share the
// scheduler awards its QoS class alongside every other tenant.
#pragma once

#include <cstdint>

#include "src/kms/kms.hpp"

namespace qkd::kms {

class KmsIkeBridge {
 public:
  struct Config {
    QosClass qos = QosClass::kRealtime;
    /// Bits requested per refill (whole Qblocks keep IKE's lane framing
    /// fed in round numbers).
    std::size_t refill_bits = 16 * keystore::KeySupply::kQblockBits;
    /// Low-water mark installed on the initiator supply; crossing it (or
    /// an exhausted request) triggers the next refill.
    std::size_t low_water_bits = 8 * keystore::KeySupply::kQblockBits;
  };

  struct Stats {
    std::uint64_t refills_requested = 0;
    std::uint64_t refills_granted = 0;
    std::uint64_t refills_denied = 0;  // rejected or shed by the KMS
    std::uint64_t bits_delivered = 0;  // per gateway supply
  };

  /// `initiator_supply` / `peer_supply` are the two gateways' reservoirs
  /// (they, the KMS and the scheduler must outlive the bridge). `src`/`dst`
  /// are the mesh endpoints the gateways sit on.
  KmsIkeBridge(KeyManagementService& kms, network::NodeId src,
               network::NodeId dst, keystore::KeySupply& initiator_supply,
               keystore::KeySupply& peer_supply, Config config);
  KmsIkeBridge(KeyManagementService& kms, network::NodeId src,
               network::NodeId dst, keystore::KeySupply& initiator_supply,
               keystore::KeySupply& peer_supply);
  ~KmsIkeBridge();

  /// Issues the first refill request (call once before IKE starts; the
  /// low-water machinery takes over from there).
  void prime();

  const Stats& stats() const { return stats_; }

 private:
  void request_refill();
  void on_grant(const Grant& grant);

  KeyManagementService& kms_;
  keystore::KeySupply& initiator_supply_;
  keystore::KeySupply& peer_supply_;
  Config config_;
  ClientId client_ = 0;
  std::uint64_t subscription_ = 0;
  bool refill_in_flight_ = false;
  Stats stats_;
};

}  // namespace qkd::kms
