#include "src/kms/shard.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace qkd::kms {

// ---- LatencyHistogram ------------------------------------------------------

void LatencyHistogram::record(qkd::SimTime latency) {
  if (latency < 0) latency = 0;
  std::size_t index = std::bit_width(static_cast<std::uint64_t>(latency));
  if (index >= kBuckets) index = kBuckets - 1;
  ++buckets_[index];
  ++count_;
  total_ += latency;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  total_ += other.total_;
}

double LatencyHistogram::quantile_s(double q) const {
  if (count_ == 0) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // Bucket i holds latencies in [2^(i-1), 2^i) ns; report the upper
      // bound — a conservative percentile.
      return static_cast<double>(1ULL << i) / 1e9;
    }
  }
  return 0.0;
}

double LatencyHistogram::mean_s() const {
  if (count_ == 0) return 0.0;
  return sim_to_seconds(total_) / static_cast<double>(count_);
}

// ---- AtomicLatencyHistogram ------------------------------------------------

void AtomicLatencyHistogram::record(qkd::SimTime latency) {
  if (latency < 0) latency = 0;
  std::size_t index = std::bit_width(static_cast<std::uint64_t>(latency));
  if (index >= kBuckets) index = kBuckets - 1;
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(latency, std::memory_order_relaxed);
}

LatencyHistogram AtomicLatencyHistogram::snapshot() const {
  LatencyHistogram out;
  for (std::size_t i = 0; i < kBuckets; ++i)
    out.buckets_[i] = buckets_[i].load(std::memory_order_relaxed);
  out.count_ = count_.load(std::memory_order_relaxed);
  out.total_ = total_.load(std::memory_order_relaxed);
  return out;
}

// ---- Construction ----------------------------------------------------------

KmsShard::KmsShard(KeyManagementService& service, std::size_t index,
                   sim::EventScheduler& stream, bool epoch_mode)
    : service_(service),
      index_(index),
      stream_(stream),
      epoch_mode_(epoch_mode) {}

KmsShard::~KmsShard() {
  for (auto& pair : pairs_)
    if (pair->service_event.valid()) stream_.cancel(pair->service_event);
}

// ---- Pair registry ---------------------------------------------------------

namespace {
bool pair_precedes(const std::unique_ptr<PairState>& pair,
                   const std::pair<network::NodeId, network::NodeId>& key) {
  return std::make_pair(pair->src, pair->dst) < key;
}
}  // namespace

PairState* KmsShard::find_pair(network::NodeId src, network::NodeId dst) {
  const auto key = std::make_pair(src, dst);
  const auto it =
      std::lower_bound(pairs_.begin(), pairs_.end(), key, pair_precedes);
  if (it == pairs_.end() || (*it)->src != src || (*it)->dst != dst)
    return nullptr;
  return it->get();
}

PairState& KmsShard::pair_for(network::NodeId src, network::NodeId dst) {
  const auto key = std::make_pair(src, dst);
  const auto it =
      std::lower_bound(pairs_.begin(), pairs_.end(), key, pair_precedes);
  if (it != pairs_.end() && (*it)->src == src && (*it)->dst == dst)
    return **it;
  auto pair = std::make_unique<PairState>();
  pair->src = src;
  pair->dst = dst;
  const std::string tag = std::to_string(src) + "->" + std::to_string(dst);
  pair->src_store.set_label("kms:" + tag + ":src");
  pair->dst_store.set_label("kms:" + tag + ":dst");
  // The pair's key-material stream (epoch mode): derived from the service
  // seed and the ordered pair alone, so it is the same no matter which
  // shard — of however many — the pair lands on.
  std::uint64_t state = service_.config_.seed;
  qkd::splitmix64(state);
  state ^= (static_cast<std::uint64_t>(src) << 32) ^ dst;
  pair->frame_rng = qkd::Rng(qkd::splitmix64(state));
  pair->pool_gauge = &service_.pool_gauge_for(src, dst);
  return **pairs_.insert(it, std::move(pair));
}

// ---- Delivery --------------------------------------------------------------

void KmsShard::finish(Request& request, GrantStatus status, qkd::SimTime now,
                      AtomicClassStats& stats) {
  switch (status) {
    case GrantStatus::kRejectedQueueFull:
      stats.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      break;
    case GrantStatus::kShed:
      stats.shed.fetch_add(1, std::memory_order_relaxed);
      break;
    case GrantStatus::kDeparted:
      stats.departed.fetch_add(1, std::memory_order_relaxed);
      break;
    case GrantStatus::kGranted: break;  // grant_round accounts these
  }
  Grant grant;
  grant.client = request.client;
  grant.status = status;
  grant.requested_at = request.requested_at;
  grant.granted_at = now;
  if (service_.grant_observer_) service_.grant_observer_(grant);
  request.callback(grant);
}

void KmsShard::submit(PairState& pair, unsigned qos, Request request,
                      qkd::SimTime now) {
  AtomicClassStats& stats = class_stats_[qos];
  stats.requests.fetch_add(1, std::memory_order_relaxed);
  // The admission decision is the first server-side leg of a traced
  // request; it parents under whatever context the caller propagated
  // (possibly off the wire).
  obs::ScopedSpan admit_span(tracer(), "kms.admit", request.trace, index_);
  // Admission control: a full (pair, class) queue pushes back at request
  // time instead of letting grant latency grow without bound.
  if (pair.queues[qos].size() >= service_.config_.max_queue_per_class) {
    if (admit_span.recording()) admit_span.attr("result", "queue-full");
    finish(request, GrantStatus::kRejectedQueueFull, now, stats);
    return;
  }
  if (admit_span.recording()) {
    admit_span.attr("qos", std::to_string(qos));
    admit_span.attr("bits", std::to_string(request.bits));
    admit_span.attr("result", "queued");
  }
  pair.queues[qos].push_back(std::move(request));
  arm_service(pair, now + service_.config_.batch_window);
}

std::optional<keystore::KeyBlock> KmsShard::claim(PairState& own,
                                                  PairState* reversed,
                                                  std::uint64_t key_id,
                                                  ClientId claimant,
                                                  qkd::SimTime now) {
  PairState* candidates[2] = {&own, reversed};
  for (std::size_t side = 0; side < 2; ++side) {
    PairState* pair = candidates[side];
    if (pair == nullptr) continue;
    purge_expired_claims(*pair, now);
    const auto it = std::lower_bound(
        pair->claims.begin(), pair->claims.end(), key_id,
        [](const PendingClaim& c, std::uint64_t k) { return c.key_id < k; });
    if (it == pair->claims.end() || it->key_id != key_id || it->claimed)
      continue;
    const bool own_pair = side == 0;
    if (own_pair && it->initiator != claimant) return std::nullopt;
    keystore::KeyBlock block = std::move(it->block);
    it->claimed = true;  // tombstone; popped when it reaches the front
    --pair->live_claims;
    stats_.claims_fulfilled.fetch_add(1, std::memory_order_relaxed);
    return block;
  }
  return std::nullopt;
}

void KmsShard::purge_expired_claims(PairState& pair, qkd::SimTime now) {
  // The deque is in key_id == expiry order, so everything purgeable sits at
  // the front: claimed tombstones are simply dropped, expired unclaimed
  // copies are reclaimed. (A claim at exactly expires_at already reads
  // expired — strictly before, or it's gone.)
  while (!pair.claims.empty()) {
    PendingClaim& front = pair.claims.front();
    if (front.claimed) {
      pair.claims.pop_front();
      continue;
    }
    if (front.expires_at > now) break;
    // Reclaim, don't leak: the unclaimed peer copy's bits go back into BOTH
    // mirror stores through identical deposits, so the pair stays in
    // lockstep and the material is re-servable.
    const qkd::BitVector& bits = front.block.bits;
    pair.src_store.deposit(bits);
    pair.dst_store.deposit(bits);
    stats_.bits_reclaimed.fetch_add(bits.size(), std::memory_order_relaxed);
    stats_.claims_expired.fetch_add(1, std::memory_order_relaxed);
    --pair.live_claims;
    pair.claims.pop_front();
    if (pair.pool_gauge != nullptr)
      pair.pool_gauge->store(pair.src_store.available_bits(),
                             std::memory_order_relaxed);
  }
}

void KmsShard::drain_departed(PairState& pair, ClientId id, qkd::SimTime now) {
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    auto& queue = pair.queues[qos];
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->client == id) {
        finish(*it, GrantStatus::kDeparted, now, class_stats_[qos]);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }
}

// ---- Scheduling ------------------------------------------------------------

void KmsShard::arm_service(PairState& pair, qkd::SimTime when) {
  if (when < stream_.now()) when = stream_.now();
  if (pair.service_event.valid() && pair.armed_for <= when) return;
  if (pair.service_event.valid()) stream_.cancel(pair.service_event);
  pair.armed_for = when;
  PairState* target = &pair;
  pair.service_event = stream_.at(when, [this, target](qkd::SimTime now) {
    target->service_event = sim::EventScheduler::Handle();
    target->armed_for = -1;
    service_round(*target, now);
  });
}

bool KmsShard::backlogged(const PairState& pair) {
  for (const auto& queue : pair.queues)
    if (!queue.empty()) return true;
  return false;
}

bool KmsShard::wake_backlogged(qkd::SimTime now) {
  bool woke = false;
  for (auto& pair : pairs_) {
    if (!backlogged(*pair)) continue;
    arm_service(*pair, now);
    woke = true;
  }
  return woke;
}

std::vector<std::pair<unsigned, Request>> KmsShard::select_round(
    PairState& pair) {
  // Deficit round robin, work-conserving: crediting passes repeat until
  // the frame payload cap is reached or every queue drains, so an idle
  // class's capacity flows to the backlogged ones — still at the weighted
  // ratio, still highest-priority-first within each pass, and a request
  // bigger than one pass's credit accrues deficit across passes instead of
  // blocking anyone else (no priority inversion).
  const KeyManagementService::Config& config = service_.config_;
  std::vector<std::pair<unsigned, Request>> round;
  std::size_t total_bits = 0;
  bool backlog = true;
  while (backlog && total_bits < config.max_frame_bits) {
    backlog = false;
    for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
      auto& queue = pair.queues[qos];
      if (queue.empty()) {
        pair.deficit_bits[qos] = 0;  // DRR: idle classes do not hoard credit
        continue;
      }
      pair.deficit_bits[qos] += config.class_weights[qos] * config.quantum_bits;
      while (!queue.empty() && queue.front().bits <= pair.deficit_bits[qos] &&
             total_bits < config.max_frame_bits) {
        pair.deficit_bits[qos] -= queue.front().bits;
        total_bits += queue.front().bits;
        round.emplace_back(qos, std::move(queue.front()));
        queue.pop_front();
      }
      if (queue.empty())
        pair.deficit_bits[qos] = 0;
      else
        backlog = true;
    }
  }
  return round;
}

void KmsShard::requeue_round(PairState& pair,
                             std::vector<std::pair<unsigned, Request>>& round) {
  // Reverse order keeps each class queue's FIFO order; the spent deficit is
  // handed back so the retry round can select the same set immediately.
  for (auto it = round.rbegin(); it != round.rend(); ++it) {
    pair.deficit_bits[it->first] += it->second.bits;
    pair.queues[it->first].push_front(std::move(it->second));
  }
  round.clear();
}

void KmsShard::shed_lowest_class(PairState& pair, qkd::SimTime now) {
  // Lowest-priority backlog goes first; realtime (class 0) is never shed.
  for (unsigned qos = kQosClassCount; qos-- > 1;) {
    auto& queue = pair.queues[qos];
    if (queue.empty()) continue;
    for (Request& request : queue)
      finish(request, GrantStatus::kShed, now, class_stats_[qos]);
    queue.clear();
    pair.deficit_bits[qos] = 0;
    stats_.shed_events.fetch_add(1, std::memory_order_relaxed);
    shedding_.store(true, std::memory_order_relaxed);
    return;
  }
}

void KmsShard::grant_round(
    PairState& pair, std::vector<std::pair<unsigned, Request>>& round,
    const network::MeshSimulation::TransportResult& frame, qkd::SimTime now,
    obs::TraceContext trace) {
  obs::ScopedSpan grant_span(tracer(), "kms.grant_round", trace, index_);
  if (grant_span.recording()) {
    grant_span.attr("requests", std::to_string(round.size()));
    grant_span.attr("payload_bits", std::to_string(frame.key.size()));
  }
  // Both endpoints received the frame payload: deposit it into the two
  // mirror-image pools, then withdraw per request through identical calls —
  // the key_ids the two stores assign are equal by the keystore's mirrored
  // lockstep, which is exactly the cross-end key-ID agreement get_key /
  // get_key_with_id needs.
  pair.src_store.deposit(frame.key);
  pair.dst_store.deposit(frame.key);
  for (auto& [qos, request] : round) {
    const auto src_block =
        pair.src_store.request_bits(request.bits, "kms::grant_round(src)");
    const auto dst_block =
        pair.dst_store.request_bits(request.bits, "kms::grant_round(dst)");
    if (!src_block.has_value() || !dst_block.has_value() ||
        src_block->key_id != dst_block->key_id)
      throw std::logic_error(
          "KeyManagementService: mirrored pair stores diverged");
    pair.claims.push_back(PendingClaim{dst_block->key_id, *dst_block,
                                       request.client,
                                       now + service_.config_.claim_ttl,
                                       false});
    ++pair.live_claims;

    AtomicClassStats& stats = class_stats_[qos];
    stats.granted.fetch_add(1, std::memory_order_relaxed);
    stats.bits_granted.fetch_add(request.bits, std::memory_order_relaxed);
    const qkd::SimTime latency = now - request.requested_at;
    latency_[qos].record(latency);
    if (latency <= service_.config_.slo_grant_latency)
      stats.granted_within_slo.fetch_add(1, std::memory_order_relaxed);

    Grant grant;
    grant.client = request.client;
    grant.status = GrantStatus::kGranted;
    grant.key_id = src_block->key_id;
    grant.bits = src_block->bits;
    grant.exposed_to = frame.exposed_to;
    grant.compromised = frame.compromised;
    grant.requested_at = request.requested_at;
    grant.granted_at = now;
    if (service_.grant_observer_) service_.grant_observer_(grant);
    request.callback(grant);
  }
  if (pair.pool_gauge != nullptr)
    pair.pool_gauge->store(pair.src_store.available_bits(),
                           std::memory_order_relaxed);
}

void KmsShard::service_round(PairState& pair, qkd::SimTime now) {
  stats_.service_rounds.fetch_add(1, std::memory_order_relaxed);
  purge_expired_claims(pair, now);

  auto round = select_round(pair);
  if (round.empty()) {
    // A backlogged class whose head request outruns this round's credit
    // keeps accruing deficit on the next round.
    if (backlogged(pair)) arm_service(pair, now + service_.config_.batch_window);
    return;
  }

  // Selection runs BEFORE the round span opens so the span can be born
  // under the adopted context (the first traced request's) — reparenting
  // after the fact would leave already-opened children in the wrong trace.
  // The DRR pass itself is recorded as an annotation child.
  obs::TraceContext adopted;
  for (const auto& [qos, request] : round)
    if (request.trace.valid()) { adopted = request.trace; break; }
  obs::ScopedSpan round_span(tracer(), "kms.service_round", adopted, index_);
  if (round_span.recording()) {
    round_span.attr("pair", std::to_string(pair.src) + "->" +
                                std::to_string(pair.dst));
    round_span.attr("requests", std::to_string(round.size()));
    obs::ScopedSpan drr_span(tracer(), "kms.drr_select", round_span.context(),
                             index_);
    drr_span.attr("selected", std::to_string(round.size()));
  }

  if (epoch_mode_) {
    // Park the selection; the window barrier plans the transport and
    // finalize_outbox() settles the outcome (including the re-arm, which
    // depends on it). The round's context rides along so the barrier plan
    // and the finalize spans stay in this trace.
    FrameJob job;
    job.pair = &pair;
    for (const auto& [qos, request] : round) job.payload_bits += request.bits;
    job.round = std::move(round);
    job.trace = round_span.context();
    outbox_.push_back(std::move(job));
    return;
  }

  // Batch: every request this round selected rides one relay frame.
  std::vector<std::size_t> sizes;
  sizes.reserve(round.size());
  for (const auto& [qos, request] : round) sizes.push_back(request.bits);
  const auto frame = service_.mesh_.transport_key_batch(
      pair.src, pair.dst, sizes, round_span.context());
  if (!frame.success) {
    stats_.starved_rounds.fetch_add(1, std::memory_order_relaxed);
    ++pair.consecutive_starved;
    if (round_span.recording()) round_span.attr("result", "starved");
    requeue_round(pair, round);
    if (pair.consecutive_starved >= service_.config_.shed_after_starved_rounds)
      shed_lowest_class(pair, now);
    if (backlogged(pair)) arm_service(pair, now + service_.config_.retry_backoff);
    return;
  }
  stats_.transports.fetch_add(1, std::memory_order_relaxed);
  pair.consecutive_starved = 0;
  shedding_.store(false, std::memory_order_relaxed);
  grant_round(pair, round, frame, now, round_span.context());
  if (backlogged(pair)) arm_service(pair, now + service_.config_.batch_window);
}

// ---- Epoch barrier ---------------------------------------------------------

void KmsShard::collect_jobs(std::vector<FrameJob*>& out) {
  for (FrameJob& job : outbox_) out.push_back(&job);
}

void KmsShard::finalize_outbox(qkd::SimTime now) {
  for (FrameJob& job : outbox_) {
    PairState& pair = *job.pair;
    if (!job.plan.success) {
      stats_.starved_rounds.fetch_add(1, std::memory_order_relaxed);
      ++pair.consecutive_starved;
      requeue_round(pair, job.round);
      if (pair.consecutive_starved >=
          service_.config_.shed_after_starved_rounds)
        shed_lowest_class(pair, now);
      if (backlogged(pair))
        arm_service(pair, now + service_.config_.retry_backoff);
      continue;
    }
    stats_.transports.fetch_add(1, std::memory_order_relaxed);
    pair.consecutive_starved = 0;
    shedding_.store(false, std::memory_order_relaxed);
    // The finalize leg runs on a worker lane under the parked round's
    // context — the trace reconnects across the barrier.
    obs::ScopedSpan finalize_span(tracer(), "kms.finalize", job.trace, index_);
    if (finalize_span.recording())
      finalize_span.attr("hops", std::to_string(job.plan.route.links.size()));
    // Materialize the frame from the pair's own deterministic stream — no
    // shared rng, no mesh state, so every shard finalizes concurrently.
    const auto frame =
        network::MeshSimulation::finalize_frame(job.plan, pair.frame_rng);
    grant_round(pair, job.round, frame, now, finalize_span.context());
    if (backlogged(pair))
      arm_service(pair, now + service_.config_.batch_window);
  }
  outbox_.clear();
}

// ---- Aggregation -----------------------------------------------------------

const std::array<KmsShard::ClassStats, kQosClassCount>& KmsShard::class_stats()
    const {
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    const AtomicClassStats& in = class_stats_[qos];
    ClassStats& out = class_stats_cache_[qos];
    out.requests = in.requests.load(std::memory_order_relaxed);
    out.granted = in.granted.load(std::memory_order_relaxed);
    out.granted_within_slo =
        in.granted_within_slo.load(std::memory_order_relaxed);
    out.rejected_queue_full =
        in.rejected_queue_full.load(std::memory_order_relaxed);
    out.shed = in.shed.load(std::memory_order_relaxed);
    out.departed = in.departed.load(std::memory_order_relaxed);
    out.bits_granted = in.bits_granted.load(std::memory_order_relaxed);
  }
  return class_stats_cache_;
}

const std::array<LatencyHistogram, kQosClassCount>& KmsShard::latency() const {
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos)
    latency_cache_[qos] = latency_[qos].snapshot();
  return latency_cache_;
}

const KmsShard::Stats& KmsShard::stats() const {
  stats_cache_.service_rounds =
      stats_.service_rounds.load(std::memory_order_relaxed);
  stats_cache_.transports = stats_.transports.load(std::memory_order_relaxed);
  stats_cache_.starved_rounds =
      stats_.starved_rounds.load(std::memory_order_relaxed);
  stats_cache_.shed_events = stats_.shed_events.load(std::memory_order_relaxed);
  stats_cache_.claims_fulfilled =
      stats_.claims_fulfilled.load(std::memory_order_relaxed);
  stats_cache_.claims_expired =
      stats_.claims_expired.load(std::memory_order_relaxed);
  stats_cache_.bits_reclaimed =
      stats_.bits_reclaimed.load(std::memory_order_relaxed);
  return stats_cache_;
}

obs::Tracer* KmsShard::tracer() const { return service_.tracer_; }

std::size_t KmsShard::queue_depth(std::size_t qos) const {
  std::size_t depth = 0;
  for (const auto& pair : pairs_) depth += pair->queues[qos].size();
  return depth;
}

void KmsShard::inspect_into(
    std::vector<KeyManagementService::PairInspection>& out) const {
  for (const auto& pair : pairs_) {
    KeyManagementService::PairInspection inspection;
    inspection.src = pair->src;
    inspection.dst = pair->dst;
    inspection.src_available_bits = pair->src_store.available_bits();
    inspection.dst_available_bits = pair->dst_store.available_bits();
    inspection.src_next_key_id = pair->src_store.next_key_id();
    inspection.dst_next_key_id = pair->dst_store.next_key_id();
    inspection.src_stats = pair->src_store.stats();
    inspection.dst_stats = pair->dst_store.stats();
    inspection.claims_outstanding = pair->live_claims;
    for (std::size_t qos = 0; qos < kQosClassCount; ++qos)
      inspection.queue_depths[qos] = pair->queues[qos].size();
    out.push_back(std::move(inspection));
  }
}

}  // namespace qkd::kms
