#include "src/kms/kms.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/network/key_service.hpp"

namespace qkd::kms {

const char* qos_class_name(QosClass qos) {
  switch (qos) {
    case QosClass::kRealtime: return "realtime";
    case QosClass::kInteractive: return "interactive";
    case QosClass::kBulk: return "bulk";
  }
  return "?";
}

const char* grant_status_name(GrantStatus status) {
  switch (status) {
    case GrantStatus::kGranted: return "granted";
    case GrantStatus::kRejectedQueueFull: return "rejected-queue-full";
    case GrantStatus::kShed: return "shed";
    case GrantStatus::kDeparted: return "departed";
  }
  return "?";
}

// ---- LatencyHistogram ------------------------------------------------------

void KeyManagementService::LatencyHistogram::record(qkd::SimTime latency) {
  if (latency < 0) latency = 0;
  std::size_t index = std::bit_width(static_cast<std::uint64_t>(latency));
  if (index >= kBuckets) index = kBuckets - 1;
  ++buckets_[index];
  ++count_;
  total_ += latency;
}

double KeyManagementService::LatencyHistogram::quantile_s(double q) const {
  if (count_ == 0) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // Bucket i holds latencies in [2^(i-1), 2^i) ns; report the upper
      // bound — a conservative percentile.
      return static_cast<double>(1ULL << i) / 1e9;
    }
  }
  return 0.0;
}

double KeyManagementService::LatencyHistogram::mean_s() const {
  if (count_ == 0) return 0.0;
  return sim_to_seconds(total_) / static_cast<double>(count_);
}

// ---- Construction ----------------------------------------------------------

KeyManagementService::KeyManagementService(network::MeshSimulation& mesh,
                                           sim::EventScheduler& scheduler,
                                           Config config)
    : mesh_(mesh), scheduler_(scheduler), config_(config) {
  if (config_.quantum_bits == 0)
    throw std::invalid_argument("KeyManagementService: quantum_bits == 0");
  if (config_.max_frame_bits == 0)
    throw std::invalid_argument("KeyManagementService: max_frame_bits == 0");
  for (unsigned weight : config_.class_weights)
    if (weight == 0)
      throw std::invalid_argument(
          "KeyManagementService: every class weight must be >= 1 "
          "(a zero-weight class would starve)");
  // Engine-backed meshes announce replenishment through each link's
  // KeySupply; arm the low-water machinery and wake stalled queues on it.
  if (auto* service = mesh_.key_service();
      service != nullptr && config_.link_low_water_bits > 0) {
    for (std::size_t id = 0; id < service->supply_count(); ++id) {
      auto& supply = service->supply(id);
      supply.set_low_water_bits(config_.link_low_water_bits);
      supply_subscriptions_.push_back(
          supply.subscribe([this](const keystore::SupplyEvent& event) {
            if (event.kind == keystore::SupplyEventKind::kReplenished)
              on_supply_replenished(scheduler_.now());
          }));
    }
  }
}

KeyManagementService::KeyManagementService(network::MeshSimulation& mesh,
                                           sim::EventScheduler& scheduler)
    : KeyManagementService(mesh, scheduler, Config()) {}

KeyManagementService::~KeyManagementService() {
  for (auto& [key, pair] : pairs_)
    if (pair->service_event.valid()) scheduler_.cancel(pair->service_event);
  if (auto* service = mesh_.key_service()) {
    for (std::size_t id = 0; id < supply_subscriptions_.size(); ++id)
      service->supply(id).unsubscribe(supply_subscriptions_[id]);
  }
}

// ---- Registry --------------------------------------------------------------

KeyManagementService::PairState& KeyManagementService::pair_for(
    network::NodeId src, network::NodeId dst) {
  const auto key = std::make_pair(src, dst);
  auto it = pairs_.find(key);
  if (it == pairs_.end()) {
    auto pair = std::make_unique<PairState>();
    pair->src = src;
    pair->dst = dst;
    const std::string tag =
        std::to_string(src) + "->" + std::to_string(dst);
    pair->src_store.set_label("kms:" + tag + ":src");
    pair->dst_store.set_label("kms:" + tag + ":dst");
    it = pairs_.emplace(key, std::move(pair)).first;
  }
  return *it->second;
}

ClientId KeyManagementService::register_client(ClientConfig config) {
  if (config.src == config.dst)
    throw std::invalid_argument("KeyManagementService: src == dst for \"" +
                                config.name + "\"");
  if (static_cast<std::size_t>(config.qos) >= kQosClassCount)
    throw std::invalid_argument(
        "KeyManagementService: unknown QoS class for \"" + config.name +
        "\"");
  ClientRecord record;
  record.pair = &pair_for(config.src, config.dst);
  record.config = std::move(config);
  record.live = true;
  clients_.push_back(std::move(record));
  ++live_clients_;
  return static_cast<ClientId>(clients_.size() - 1);
}

KeyManagementService::ClientRecord& KeyManagementService::live_client(
    ClientId id, const char* op) {
  if (id >= clients_.size() || !clients_[id].live)
    throw std::invalid_argument(std::string("KeyManagementService::") + op +
                                ": unknown or departed client " +
                                std::to_string(id));
  return clients_[id];
}

void KeyManagementService::deregister_client(ClientId id) {
  ClientRecord& record = live_client(id, "deregister_client");
  record.live = false;
  --live_clients_;
  // Drain the departing client's queued requests so callers never wait on
  // a grant that can no longer arrive.
  const qkd::SimTime now = scheduler_.now();
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    auto& queue = record.pair->queues[qos];
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->client == id) {
        finish(*it, GrantStatus::kDeparted, now, class_stats_[qos]);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  }
}

const ClientConfig& KeyManagementService::client(ClientId id) const {
  if (id >= clients_.size())
    throw std::invalid_argument("KeyManagementService::client: unknown id " +
                                std::to_string(id));
  return clients_[id].config;
}

// ---- Delivery --------------------------------------------------------------

void KeyManagementService::finish(Request& request, GrantStatus status,
                                  qkd::SimTime now, ClassStats& stats) {
  switch (status) {
    case GrantStatus::kRejectedQueueFull: ++stats.rejected_queue_full; break;
    case GrantStatus::kShed: ++stats.shed; break;
    case GrantStatus::kDeparted: ++stats.departed; break;
    case GrantStatus::kGranted: break;  // grant_round accounts these
  }
  Grant grant;
  grant.client = request.client;
  grant.status = status;
  grant.requested_at = request.requested_at;
  grant.granted_at = now;
  if (grant_observer_) grant_observer_(grant);
  request.callback(grant);
}

void KeyManagementService::get_key(ClientId id, std::size_t bits,
                                   GrantCallback on_grant) {
  if (bits == 0)
    throw std::invalid_argument("KeyManagementService::get_key: bits == 0");
  if (!on_grant)
    throw std::invalid_argument(
        "KeyManagementService::get_key: empty callback");
  ClientRecord& record = live_client(id, "get_key");
  const auto qos = static_cast<std::size_t>(record.config.qos);
  ClassStats& stats = class_stats_[qos];
  ++stats.requests;

  const qkd::SimTime now = scheduler_.now();
  Request request;
  request.client = id;
  request.bits = bits;
  request.callback = std::move(on_grant);
  request.requested_at = now;

  PairState& pair = *record.pair;
  // Admission control: a full (pair, class) queue pushes back at request
  // time instead of letting grant latency grow without bound.
  if (pair.queues[qos].size() >= config_.max_queue_per_class) {
    finish(request, GrantStatus::kRejectedQueueFull, now, stats);
    return;
  }
  pair.queues[qos].push_back(std::move(request));
  arm_service(pair, now + config_.batch_window);
}

std::optional<keystore::KeyBlock> KeyManagementService::get_key_with_id(
    ClientId id, std::uint64_t key_id) {
  ClientRecord& record = live_client(id, "get_key_with_id");
  const qkd::SimTime now = scheduler_.now();
  // A claim in the claimant's own ordered pair is only its own grant's
  // peer copy (an initiator retrieving both halves in-process); a claim in
  // the REVERSED pair is claimable by any application at the peer endpoint
  // (the ETSI slave side registers dst->src). A co-tenant on the same
  // pair never gets another tenant's key.
  PairState* candidates[2] = {record.pair, nullptr};
  const auto reversed =
      pairs_.find(std::make_pair(record.config.dst, record.config.src));
  if (reversed != pairs_.end()) candidates[1] = reversed->second.get();
  for (std::size_t side = 0; side < 2; ++side) {
    PairState* pair = candidates[side];
    if (pair == nullptr) continue;
    purge_expired_claims(*pair, now);
    const auto it = pair->claims.find(key_id);
    if (it == pair->claims.end()) continue;
    const bool own_pair = side == 0;
    if (own_pair && it->second.initiator != id) return std::nullopt;
    keystore::KeyBlock block = std::move(it->second.block);
    pair->claims.erase(it);
    ++stats_.claims_fulfilled;
    return block;
  }
  return std::nullopt;
}

void KeyManagementService::purge_expired_claims(PairState& pair,
                                                qkd::SimTime now) {
  // key_ids are monotonic per pair and claim_ttl is constant, so the map's
  // iteration order is also expiry order.
  while (!pair.claims.empty() &&
         pair.claims.begin()->second.expires_at <= now) {
    // Reclaim, don't leak: the unclaimed peer copy's bits go back into BOTH
    // mirror stores through identical deposits, so the pair stays in
    // lockstep and the material is re-servable. (A claim at exactly
    // expires_at already reads expired — strictly before, or it's gone.)
    const qkd::BitVector& bits = pair.claims.begin()->second.block.bits;
    pair.src_store.deposit(bits);
    pair.dst_store.deposit(bits);
    stats_.bits_reclaimed += bits.size();
    pair.claims.erase(pair.claims.begin());
    ++stats_.claims_expired;
  }
}

// ---- Scheduling ------------------------------------------------------------

void KeyManagementService::arm_service(PairState& pair, qkd::SimTime when) {
  if (when < scheduler_.now()) when = scheduler_.now();
  if (pair.service_event.valid() && pair.armed_for <= when) return;
  if (pair.service_event.valid()) scheduler_.cancel(pair.service_event);
  pair.armed_for = when;
  PairState* target = &pair;
  pair.service_event = scheduler_.at(when, [this, target](qkd::SimTime now) {
    target->service_event = sim::EventScheduler::Handle();
    target->armed_for = -1;
    service_round(*target, now);
  });
}

std::vector<std::pair<unsigned, KeyManagementService::Request>>
KeyManagementService::select_round(PairState& pair) {
  // Deficit round robin, work-conserving: crediting passes repeat until
  // the frame payload cap is reached or every queue drains, so an idle
  // class's capacity flows to the backlogged ones — still at the weighted
  // ratio, still highest-priority-first within each pass, and a request
  // bigger than one pass's credit accrues deficit across passes instead of
  // blocking anyone else (no priority inversion).
  std::vector<std::pair<unsigned, Request>> round;
  std::size_t total_bits = 0;
  bool backlog = true;
  while (backlog && total_bits < config_.max_frame_bits) {
    backlog = false;
    for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
      auto& queue = pair.queues[qos];
      if (queue.empty()) {
        pair.deficit_bits[qos] = 0;  // DRR: idle classes do not hoard credit
        continue;
      }
      pair.deficit_bits[qos] +=
          config_.class_weights[qos] * config_.quantum_bits;
      while (!queue.empty() &&
             queue.front().bits <= pair.deficit_bits[qos] &&
             total_bits < config_.max_frame_bits) {
        pair.deficit_bits[qos] -= queue.front().bits;
        total_bits += queue.front().bits;
        round.emplace_back(qos, std::move(queue.front()));
        queue.pop_front();
      }
      if (queue.empty())
        pair.deficit_bits[qos] = 0;
      else
        backlog = true;
    }
  }
  return round;
}

void KeyManagementService::requeue_round(
    PairState& pair, std::vector<std::pair<unsigned, Request>>& round) {
  // Reverse order keeps each class queue's FIFO order; the spent deficit is
  // handed back so the retry round can select the same set immediately.
  for (auto it = round.rbegin(); it != round.rend(); ++it) {
    pair.deficit_bits[it->first] += it->second.bits;
    pair.queues[it->first].push_front(std::move(it->second));
  }
  round.clear();
}

void KeyManagementService::shed_lowest_class(PairState& pair,
                                             qkd::SimTime now) {
  // Lowest-priority backlog goes first; realtime (class 0) is never shed.
  for (unsigned qos = kQosClassCount; qos-- > 1;) {
    auto& queue = pair.queues[qos];
    if (queue.empty()) continue;
    for (Request& request : queue)
      finish(request, GrantStatus::kShed, now, class_stats_[qos]);
    queue.clear();
    pair.deficit_bits[qos] = 0;
    ++stats_.shed_events;
    shedding_ = true;
    return;
  }
}

void KeyManagementService::grant_round(
    PairState& pair, std::vector<std::pair<unsigned, Request>>& round,
    const network::MeshSimulation::TransportResult& frame, qkd::SimTime now) {
  // Both endpoints received the frame payload: deposit it into the two
  // mirror-image pools, then withdraw per request through identical calls —
  // the key_ids the two stores assign are equal by the keystore's mirrored
  // lockstep, which is exactly the cross-end key-ID agreement get_key /
  // get_key_with_id needs.
  pair.src_store.deposit(frame.key);
  pair.dst_store.deposit(frame.key);
  for (auto& [qos, request] : round) {
    const auto src_block =
        pair.src_store.request_bits(request.bits, "kms::grant_round(src)");
    const auto dst_block =
        pair.dst_store.request_bits(request.bits, "kms::grant_round(dst)");
    if (!src_block.has_value() || !dst_block.has_value() ||
        src_block->key_id != dst_block->key_id)
      throw std::logic_error(
          "KeyManagementService: mirrored pair stores diverged");
    pair.claims[dst_block->key_id] =
        PendingClaim{*dst_block, request.client, now + config_.claim_ttl};

    ClassStats& stats = class_stats_[qos];
    ++stats.granted;
    stats.bits_granted += request.bits;
    latency_[qos].record(now - request.requested_at);

    Grant grant;
    grant.client = request.client;
    grant.status = GrantStatus::kGranted;
    grant.key_id = src_block->key_id;
    grant.bits = src_block->bits;
    grant.exposed_to = frame.exposed_to;
    grant.compromised = frame.compromised;
    grant.requested_at = request.requested_at;
    grant.granted_at = now;
    if (grant_observer_) grant_observer_(grant);
    request.callback(grant);
  }
}

void KeyManagementService::service_round(PairState& pair, qkd::SimTime now) {
  ++stats_.service_rounds;
  purge_expired_claims(pair, now);

  auto round = select_round(pair);
  const auto backlog = [&pair] {
    for (const auto& queue : pair.queues)
      if (!queue.empty()) return true;
    return false;
  };
  if (round.empty()) {
    // A backlogged class whose head request outruns this round's credit
    // keeps accruing deficit on the next round.
    if (backlog()) arm_service(pair, now + config_.batch_window);
    return;
  }

  // Batch: every request this round selected rides one relay frame.
  std::vector<std::size_t> sizes;
  sizes.reserve(round.size());
  for (const auto& [qos, request] : round) sizes.push_back(request.bits);
  const auto frame = mesh_.transport_key_batch(pair.src, pair.dst, sizes);
  if (!frame.success) {
    ++stats_.starved_rounds;
    ++pair.consecutive_starved;
    requeue_round(pair, round);
    if (pair.consecutive_starved >= config_.shed_after_starved_rounds)
      shed_lowest_class(pair, now);
    if (backlog()) arm_service(pair, now + config_.retry_backoff);
    return;
  }
  ++stats_.transports;
  pair.consecutive_starved = 0;
  shedding_ = false;
  grant_round(pair, round, frame, now);
  if (backlog()) arm_service(pair, now + config_.batch_window);
}

void KeyManagementService::on_supply_replenished(qkd::SimTime now) {
  // A drought just ended: serve stalled queues immediately instead of
  // waiting out the retry backoff.
  bool woke = false;
  for (auto& [key, pair] : pairs_) {
    bool backlog = false;
    for (const auto& queue : pair->queues)
      if (!queue.empty()) backlog = true;
    if (!backlog) continue;
    arm_service(*pair, now);
    woke = true;
  }
  if (woke) ++stats_.replenish_wakeups;
}

// ---- Introspection ---------------------------------------------------------

const KeyManagementService::ClassStats& KeyManagementService::class_stats(
    QosClass qos) const {
  return class_stats_.at(static_cast<std::size_t>(qos));
}

std::size_t KeyManagementService::queue_depth(QosClass qos) const {
  const auto index = static_cast<std::size_t>(qos);
  std::size_t depth = 0;
  for (const auto& [key, pair] : pairs_) depth += pair->queues[index].size();
  return depth;
}

double KeyManagementService::p99_grant_latency_s(QosClass qos) const {
  return latency_.at(static_cast<std::size_t>(qos)).quantile_s(0.99);
}

double KeyManagementService::mean_grant_latency_s(QosClass qos) const {
  return latency_.at(static_cast<std::size_t>(qos)).mean_s();
}

std::vector<KeyManagementService::PairInspection>
KeyManagementService::inspect_pairs() const {
  std::vector<PairInspection> out;
  out.reserve(pairs_.size());
  for (const auto& [key, pair] : pairs_) {
    PairInspection inspection;
    inspection.src = pair->src;
    inspection.dst = pair->dst;
    inspection.src_available_bits = pair->src_store.available_bits();
    inspection.dst_available_bits = pair->dst_store.available_bits();
    inspection.src_next_key_id = pair->src_store.next_key_id();
    inspection.dst_next_key_id = pair->dst_store.next_key_id();
    inspection.src_stats = pair->src_store.stats();
    inspection.dst_stats = pair->dst_store.stats();
    inspection.claims_outstanding = pair->claims.size();
    for (std::size_t qos = 0; qos < kQosClassCount; ++qos)
      inspection.queue_depths[qos] = pair->queues[qos].size();
    out.push_back(std::move(inspection));
  }
  return out;
}

std::vector<sim::ClassSample> KeyManagementService::sample_service(
    qkd::SimTime) {
  std::vector<sim::ClassSample> samples;
  samples.reserve(kQosClassCount);
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    sim::ClassSample sample;
    sample.label = qos_class_name(static_cast<QosClass>(qos));
    sample.queue_depth = queue_depth(static_cast<QosClass>(qos));
    sample.granted = class_stats_[qos].granted;
    sample.rejected = class_stats_[qos].rejected_queue_full;
    sample.shed = class_stats_[qos].shed;
    sample.p99_grant_latency_s = latency_[qos].quantile_s(0.99);
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace qkd::kms
