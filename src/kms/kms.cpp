#include "src/kms/kms.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/kms/shard.hpp"
#include "src/network/key_service.hpp"
#include "src/sim/sharded_scheduler.hpp"

namespace qkd::kms {

const char* qos_class_name(QosClass qos) {
  switch (qos) {
    case QosClass::kRealtime: return "realtime";
    case QosClass::kInteractive: return "interactive";
    case QosClass::kBulk: return "bulk";
  }
  return "?";
}

const char* grant_status_name(GrantStatus status) {
  switch (status) {
    case GrantStatus::kGranted: return "granted";
    case GrantStatus::kRejectedQueueFull: return "rejected-queue-full";
    case GrantStatus::kShed: return "shed";
    case GrantStatus::kDeparted: return "departed";
  }
  return "?";
}

// ---- Construction ----------------------------------------------------------

void KeyManagementService::init_shards(std::size_t count) {
  if (config_.quantum_bits == 0)
    throw std::invalid_argument("KeyManagementService: quantum_bits == 0");
  if (config_.max_frame_bits == 0)
    throw std::invalid_argument("KeyManagementService: max_frame_bits == 0");
  for (unsigned weight : config_.class_weights)
    if (weight == 0)
      throw std::invalid_argument(
          "KeyManagementService: every class weight must be >= 1 "
          "(a zero-weight class would starve)");
  if (count == 0)
    throw std::invalid_argument("KeyManagementService: shards == 0");
  shards_.reserve(count);
  for (std::size_t s = 0; s < count; ++s)
    shards_.push_back(std::make_unique<KmsShard>(
        *this, s, sharded_ != nullptr ? sharded_->shard_stream(s) : scheduler_,
        sharded_ != nullptr));
  if (sharded_ != nullptr)
    sharded_->add_barrier_task(
        [this](qkd::SimTime now) { flush_frames(now); });
  // Engine-backed meshes announce replenishment through each link's
  // KeySupply; arm the low-water machinery and wake stalled queues on it.
  if (auto* service = mesh_.key_service();
      service != nullptr && config_.link_low_water_bits > 0) {
    for (std::size_t id = 0; id < service->supply_count(); ++id) {
      auto& supply = service->supply(id);
      supply.set_low_water_bits(config_.link_low_water_bits);
      supply_subscriptions_.push_back(
          supply.subscribe([this](const keystore::SupplyEvent& event) {
            if (event.kind == keystore::SupplyEventKind::kReplenished)
              on_supply_replenished(scheduler_.now());
          }));
    }
  }
}

KeyManagementService::KeyManagementService(network::MeshSimulation& mesh,
                                           sim::EventScheduler& scheduler,
                                           Config config)
    : mesh_(mesh), scheduler_(scheduler), config_(config) {
  init_shards(config_.shards);
}

KeyManagementService::KeyManagementService(network::MeshSimulation& mesh,
                                           sim::EventScheduler& scheduler)
    : KeyManagementService(mesh, scheduler, Config()) {}

KeyManagementService::KeyManagementService(network::MeshSimulation& mesh,
                                           sim::ShardedScheduler& sharded,
                                           Config config)
    : mesh_(mesh),
      scheduler_(sharded.global()),
      sharded_(&sharded),
      config_(config) {
  init_shards(sharded.shard_count());
}

KeyManagementService::KeyManagementService(network::MeshSimulation& mesh,
                                           sim::ShardedScheduler& sharded)
    : KeyManagementService(mesh, sharded, Config()) {}

KeyManagementService::~KeyManagementService() {
  // Shards cancel their own pairs' service events; the supply
  // subscriptions are the only router-held external hooks.
  if (auto* service = mesh_.key_service()) {
    for (std::size_t id = 0; id < supply_subscriptions_.size(); ++id)
      service->supply(id).unsubscribe(supply_subscriptions_[id]);
  }
}

// ---- Sharding --------------------------------------------------------------

std::size_t KeyManagementService::shard_of(network::NodeId a,
                                           network::NodeId b) const {
  // Hash the UNORDERED pair so (src, dst) and (dst, src) land on the same
  // shard — get_key_with_id's reversed-pair claim never crosses shards.
  const network::NodeId lo = std::min(a, b);
  const network::NodeId hi = std::max(a, b);
  std::uint64_t state = (static_cast<std::uint64_t>(lo) << 32) | hi;
  return static_cast<std::size_t>(qkd::splitmix64(state) % shards_.size());
}

sim::EventScheduler& KeyManagementService::stream_for_pair(
    network::NodeId src, network::NodeId dst) {
  return shards_[shard_of(src, dst)]->stream();
}

void KeyManagementService::flush_frames(qkd::SimTime now) {
  std::vector<FrameJob*> jobs;
  for (const auto& shard : shards_) shard->collect_jobs(jobs);
  if (jobs.empty()) return;
  // Plan in global (src, dst) order: the mesh (pool levels, reroute
  // accounting, engine pad withdrawals) sees the SAME sequence no matter
  // how the pairs are sharded. A pair with several parked rounds keeps
  // their chronological order (one shard owns a pair, so its outbox order
  // is that order, and the sort is stable).
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const FrameJob* a, const FrameJob* b) {
                     return std::make_pair(a->pair->src, a->pair->dst) <
                            std::make_pair(b->pair->src, b->pair->dst);
                   });
  for (FrameJob* job : jobs)
    job->plan = mesh_.plan_key_batch(job->pair->src, job->pair->dst,
                                     job->payload_bits,
                                     &job->pair->route_cache, job->trace);
  // Fan the settlement back out: grants, requeues and re-arms are all
  // shard-local, so every shard finalizes on its own lane.
  sharded_->pool().parallel_for(
      shards_.size(),
      [this, now](std::size_t s) { shards_[s]->finalize_outbox(now); });
}

// ---- Registry --------------------------------------------------------------

ClientId KeyManagementService::register_client(ClientConfig config) {
  if (config.src == config.dst)
    throw std::invalid_argument("KeyManagementService: src == dst for \"" +
                                config.name + "\"");
  if (static_cast<std::size_t>(config.qos) >= kQosClassCount)
    throw std::invalid_argument(
        "KeyManagementService: unknown QoS class for \"" + config.name +
        "\"");
  ClientRecord record;
  record.shard = shards_[shard_of(config.src, config.dst)].get();
  record.pair = &record.shard->pair_for(config.src, config.dst);
  record.config = std::move(config);
  record.live = true;
  clients_.push_back(std::move(record));
  ++live_clients_;
  return static_cast<ClientId>(clients_.size() - 1);
}

KeyManagementService::ClientRecord& KeyManagementService::live_client(
    ClientId id, const char* op) {
  if (id >= clients_.size() || !clients_[id].live)
    throw std::invalid_argument(std::string("KeyManagementService::") + op +
                                ": unknown or departed client " +
                                std::to_string(id));
  return clients_[id];
}

void KeyManagementService::deregister_client(ClientId id) {
  ClientRecord& record = live_client(id, "deregister_client");
  record.live = false;
  --live_clients_;
  // Drain the departing client's queued requests so callers never wait on
  // a grant that can no longer arrive.
  record.shard->drain_departed(*record.pair, id, record.shard->stream().now());
}

const ClientConfig& KeyManagementService::client(ClientId id) const {
  if (id >= clients_.size())
    throw std::invalid_argument("KeyManagementService::client: unknown id " +
                                std::to_string(id));
  return clients_[id].config;
}

// ---- Delivery --------------------------------------------------------------

void KeyManagementService::get_key(ClientId id, std::size_t bits,
                                   GrantCallback on_grant) {
  get_key(id, bits, std::move(on_grant), obs::TraceContext{});
}

void KeyManagementService::get_key(ClientId id, std::size_t bits,
                                   GrantCallback on_grant,
                                   obs::TraceContext trace) {
  if (bits == 0)
    throw std::invalid_argument("KeyManagementService::get_key: bits == 0");
  if (!on_grant)
    throw std::invalid_argument(
        "KeyManagementService::get_key: empty callback");
  ClientRecord& record = live_client(id, "get_key");
  const qkd::SimTime now = record.shard->stream().now();
  Request request;
  request.client = id;
  request.bits = bits;
  request.callback = std::move(on_grant);
  request.requested_at = now;
  request.trace = trace;
  record.shard->submit(*record.pair,
                       static_cast<unsigned>(record.config.qos),
                       std::move(request), now);
}

std::optional<keystore::KeyBlock> KeyManagementService::get_key_with_id(
    ClientId id, std::uint64_t key_id) {
  ClientRecord& record = live_client(id, "get_key_with_id");
  // A claim in the claimant's own ordered pair is only its own grant's
  // peer copy (an initiator retrieving both halves in-process); a claim in
  // the REVERSED pair is claimable by any application at the peer endpoint
  // (the ETSI slave side registers dst->src). A co-tenant on the same
  // pair never gets another tenant's key. Both orderings live on the same
  // shard (unordered hash), so the whole walk is shard-local.
  return record.shard->claim(
      *record.pair,
      record.shard->find_pair(record.config.dst, record.config.src), key_id,
      id, record.shard->stream().now());
}

void KeyManagementService::on_supply_replenished(qkd::SimTime now) {
  // A drought just ended: serve stalled queues immediately instead of
  // waiting out the retry backoff.
  bool woke = false;
  for (const auto& shard : shards_)
    if (shard->wake_backlogged(now)) woke = true;
  if (woke) ++router_stats_.replenish_wakeups;
}

std::atomic<std::size_t>& KeyManagementService::pool_gauge_for(
    network::NodeId src, network::NodeId dst) {
  std::lock_guard<std::mutex> lock(pool_gauge_mu_);
  for (PairPoolGauge& gauge : pool_gauges_)
    if (gauge.src == src && gauge.dst == dst) return gauge.bits;
  PairPoolGauge& gauge = pool_gauges_.emplace_back();
  gauge.src = src;
  gauge.dst = dst;
  return gauge.bits;
}

// ---- Observability ---------------------------------------------------------

void KeyManagementService::bind_metrics(obs::MetricsRegistry& registry,
                                        std::string prefix) {
  registry.add_collector([this, prefix = std::move(prefix)](
                             obs::MetricsRegistry::Collect& out) {
    const Stats& s = stats();
    out.counter(prefix + "_service_rounds", s.service_rounds);
    out.counter(prefix + "_transports", s.transports);
    out.counter(prefix + "_starved_rounds", s.starved_rounds);
    out.counter(prefix + "_shed_events", s.shed_events);
    out.counter(prefix + "_replenish_wakeups", s.replenish_wakeups);
    out.counter(prefix + "_claims_fulfilled", s.claims_fulfilled);
    out.counter(prefix + "_claims_expired", s.claims_expired);
    out.counter(prefix + "_bits_reclaimed", s.bits_reclaimed);
    for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
      const auto cls = static_cast<QosClass>(qos);
      const ClassStats& c = class_stats(cls);
      const std::string base = prefix + "_" + qos_class_name(cls);
      out.counter(base + "_requests", c.requests);
      out.counter(base + "_granted", c.granted);
      out.counter(base + "_granted_within_slo", c.granted_within_slo);
      out.counter(base + "_rejected_queue_full", c.rejected_queue_full);
      out.counter(base + "_shed", c.shed);
      out.counter(base + "_departed", c.departed);
      out.counter(base + "_bits_granted", c.bits_granted);
      out.gauge(base + "_p99_grant_latency_s", p99_grant_latency_s(cls));
    }
    // Per-pair pooled bits: each cell is a relaxed atomic the owning shard
    // refreshes after every deposit/withdraw, so this read is safe while
    // lanes are mid-grant (same contract as the class counters above).
    std::lock_guard<std::mutex> lock(pool_gauge_mu_);
    for (const PairPoolGauge& gauge : pool_gauges_)
      out.gauge(prefix + "_pair" + std::to_string(gauge.src) + "_" +
                    std::to_string(gauge.dst) + "_pool_bits",
                static_cast<double>(
                    gauge.bits.load(std::memory_order_relaxed)));
  });
}

// ---- Introspection ---------------------------------------------------------

const KeyManagementService::ClassStats& KeyManagementService::class_stats(
    QosClass qos) const {
  const auto index = static_cast<std::size_t>(qos);
  ClassStats total;
  for (const auto& shard : shards_) {
    const ClassStats& s = shard->class_stats().at(index);
    total.requests += s.requests;
    total.granted += s.granted;
    total.granted_within_slo += s.granted_within_slo;
    total.rejected_queue_full += s.rejected_queue_full;
    total.shed += s.shed;
    total.departed += s.departed;
    total.bits_granted += s.bits_granted;
  }
  agg_class_stats_.at(index) = total;
  return agg_class_stats_.at(index);
}

const KeyManagementService::Stats& KeyManagementService::stats() const {
  Stats total = router_stats_;  // replenish_wakeups is router-level
  for (const auto& shard : shards_) {
    const Stats& s = shard->stats();
    total.service_rounds += s.service_rounds;
    total.transports += s.transports;
    total.starved_rounds += s.starved_rounds;
    total.shed_events += s.shed_events;
    total.claims_fulfilled += s.claims_fulfilled;
    total.claims_expired += s.claims_expired;
    total.bits_reclaimed += s.bits_reclaimed;
  }
  agg_stats_ = total;
  return agg_stats_;
}

const KeyManagementService::Stats& KeyManagementService::shard_stats(
    std::size_t shard) const {
  return shards_.at(shard)->stats();
}

const KeyManagementService::ClassStats& KeyManagementService::shard_class_stats(
    std::size_t shard, QosClass qos) const {
  return shards_.at(shard)->class_stats().at(static_cast<std::size_t>(qos));
}

std::size_t KeyManagementService::queue_depth(QosClass qos) const {
  const auto index = static_cast<std::size_t>(qos);
  std::size_t depth = 0;
  for (const auto& shard : shards_) depth += shard->queue_depth(index);
  return depth;
}

double KeyManagementService::p99_grant_latency_s(QosClass qos) const {
  const auto index = static_cast<std::size_t>(qos);
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.merge(shard->latency().at(index));
  return merged.quantile_s(0.99);
}

double KeyManagementService::mean_grant_latency_s(QosClass qos) const {
  const auto index = static_cast<std::size_t>(qos);
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.merge(shard->latency().at(index));
  return merged.mean_s();
}

bool KeyManagementService::shedding() const {
  for (const auto& shard : shards_)
    if (shard->shedding()) return true;
  return false;
}

std::vector<KeyManagementService::PairInspection>
KeyManagementService::inspect_pairs() const {
  std::vector<PairInspection> out;
  for (const auto& shard : shards_) shard->inspect_into(out);
  std::sort(out.begin(), out.end(),
            [](const PairInspection& a, const PairInspection& b) {
              return std::make_pair(a.src, a.dst) < std::make_pair(b.src, b.dst);
            });
  return out;
}

std::vector<sim::ClassSample> KeyManagementService::sample_service(
    qkd::SimTime) {
  std::vector<sim::ClassSample> samples;
  samples.reserve(kQosClassCount);
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    const auto cls = static_cast<QosClass>(qos);
    const ClassStats& stats = class_stats(cls);
    sim::ClassSample sample;
    sample.label = qos_class_name(cls);
    sample.queue_depth = queue_depth(cls);
    sample.granted = stats.granted;
    sample.rejected = stats.rejected_queue_full;
    sample.shed = stats.shed;
    sample.p99_grant_latency_s = p99_grant_latency_s(cls);
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace qkd::kms
