// The KMS API bound to the wire: an ETSI-014-style request/response server
// over any wire::Transport, fronting a live KeyManagementService, plus the
// matching blocking client. One typed request frame in, one typed response
// frame out (src/wire/etsi.hpp is the codec); the same adapter serves the
// in-memory channel in tier-1 tests and a TCP socket in the two-process
// integration runs.
//
// Grants are asynchronous inside the KMS (service rounds run on
// EventScheduler deadlines), so the server pumps the scheduler between
// receiving a KmsGetKey and answering it — the wire surface stays strictly
// request/response while the service underneath batches and fair-queues.
//
// Loss handling mirrors the distillation dialogue: the client retransmits
// an unanswered request verbatim (request_ids make logical calls
// distinguishable), and the server answers a byte-identical duplicate from
// its last-reply cache instead of re-executing it — a retransmitted
// get_key is one grant, not two, and a retransmitted claim does not see
// "already claimed".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/kms/kms.hpp"
#include "src/wire/etsi.hpp"
#include "src/wire/transport.hpp"

namespace qkd::kms {

/// Server half: decodes KMS request frames from a transport, executes them
/// against the service, and replies. Single conversation at a time (one
/// transport per server instance; run several instances for several
/// clients).
class KmsWireServer {
 public:
  /// Sim time the server is willing to pump the scheduler while waiting
  /// for one grant to be delivered (covers batch windows, retry backoffs
  /// and shedding decisions; a request not answered by then is rejected
  /// as shed).
  static constexpr qkd::SimTime kGrantPatience = 2 * qkd::kMinute;

  KmsWireServer(KeyManagementService& kms, sim::EventScheduler& scheduler)
      : kms_(kms), scheduler_(scheduler) {}

  /// Serves one request frame on `io`: receive, execute, reply. Returns
  /// false when the conversation is over (KmsBye) or the transport failed;
  /// malformed frames are dropped (the client retransmits).
  bool serve_one(wire::Transport& io);

  /// Serves until KmsBye or transport failure.
  void serve(wire::Transport& io);

  /// Requests served (duplicates answered from cache included).
  std::size_t served() const { return served_; }

  /// Installs the tracer the server records its spans into. A version-2
  /// request frame's trace context parents the server-side span, so the
  /// client's trace continues across the transport.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  bool handle(wire::Transport& io, const wire::EtsiMessage& message,
              obs::TraceContext trace);
  bool reply(wire::Transport& io, const Bytes& framed);

  KeyManagementService& kms_;
  sim::EventScheduler& scheduler_;
  obs::Tracer* tracer_ = nullptr;
  std::optional<Bytes> last_request_;  // raw frame bytes of the last request
  Bytes last_reply_;                   // raw frame bytes of its response
  std::size_t served_ = 0;
};

/// Client half: the blocking ETSI-014-flavored calls, each one request
/// frame and one awaited response frame, retransmitting through loss.
class KmsWireClient {
 public:
  static constexpr int kMaxAttempts = 12;

  /// A get_key outcome as delivered over the wire (Grant minus the
  /// server-local fields that never travel).
  struct KeyReply {
    GrantStatus status = GrantStatus::kGranted;
    std::uint64_t key_id = 0;
    qkd::BitVector bits;
    bool compromised = false;
  };

  explicit KmsWireClient(wire::Transport& io) : io_(io) {}

  /// Registers an application; nullopt when the channel is lost.
  std::optional<ClientId> register_app(const std::string& name,
                                       std::uint32_t src, std::uint32_t dst,
                                       QosClass qos = QosClass::kInteractive);

  /// Master side: requests `bits` of end-to-end key.
  std::optional<KeyReply> get_key(ClientId id, std::uint64_t bits);

  /// Slave side: claims the peer copy named by `key_id`. nullopt when the
  /// channel is lost OR the server reports the claim unfulfillable
  /// (unknown, expired, not claimable by `id`) — distinguish via ok().
  std::optional<keystore::KeyBlock> get_key_with_id(ClientId id,
                                                    std::uint64_t key_id);

  std::optional<wire::KmsStatusReply> status(ClientId id);

  /// Ends the conversation (the server's serve loop returns).
  void bye();

  /// Wire traffic this client put on the transport (retransmits included).
  std::size_t messages_sent() const { return messages_sent_; }
  /// Re-sends of an unanswered request (attempts beyond each call's
  /// first) — the wire-degradation signal the retransmission-storm alert
  /// watches.
  std::size_t retransmits() const { return retransmits_; }

  /// Registers a collector exporting `<prefix>_messages_sent` and
  /// `<prefix>_retransmits` counters. The client must outlive `registry`'s
  /// snapshots.
  void bind_metrics(obs::MetricsRegistry& registry, std::string prefix);

  /// Installs the tracer get_key roots its client span in. With one set
  /// (and enabled), get_key requests travel as version-2 frames carrying
  /// the span's context — the server resumes the same trace.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Sends `request` and blocks for a response frame of type `want`
  /// (retransmitting the identical bytes through loss); returns the
  /// decoded response message, or nullopt after kMaxAttempts.
  std::optional<wire::EtsiMessage> call(const Bytes& framed,
                                        wire::PacketType want,
                                        wire::PacketType alt);

  wire::Transport& io_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t next_request_id_ = 1;
  std::size_t messages_sent_ = 0;
  std::size_t retransmits_ = 0;
};

}  // namespace qkd::kms
