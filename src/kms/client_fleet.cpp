#include "src/kms/client_fleet.hpp"

#include <algorithm>
#include <string>

namespace qkd::kms {

KmsClientFleet::KmsClientFleet(KeyManagementService& kms,
                               sim::EventScheduler& scheduler)
    : kms_(kms), scheduler_(scheduler), shard_stats_(kms.shard_count()) {}

KmsClientFleet::~KmsClientFleet() {
  // Stop the tickers, then deregister every live member so its queued
  // requests drain (as kDeparted) while the fleet — which their callbacks
  // capture — is still alive.
  for (Member& member : members_) {
    if (member.ticker.valid()) member.stream->cancel(member.ticker);
    if (member.active) kms_.deregister_client(member.id);
  }
}

void KmsClientFleet::issue_request(Member& member, std::size_t bits) {
  Stats& stats = shard_stats_[member.shard];
  ++stats.requests_issued;
  const std::size_t index = static_cast<std::size_t>(&member - members_.data());
  kms_.get_key(member.id, bits, [this, index](const Grant& grant) {
    Stats& stats = shard_stats_[members_[index].shard];
    switch (grant.status) {
      case GrantStatus::kGranted: {
        ++stats.granted;
        Member& m = members_[index];
        if (!m.active) return;  // departed while the request was queued
        // The peer application fetches its copy right away: every grant
        // round-trips the ETSI get_key / get_key_with_id agreement.
        const auto peer = kms_.get_key_with_id(m.id, grant.key_id);
        if (peer.has_value() && peer->bits == grant.bits)
          ++stats.claims_matched;
        else
          ++stats.claims_mismatched;
        return;
      }
      case GrantStatus::kRejectedQueueFull: ++stats.rejected; return;
      case GrantStatus::kShed: ++stats.shed; return;
      case GrantStatus::kDeparted: ++stats.departed; return;
    }
  });
}

void KmsClientFleet::client_arrival(qkd::SimTime now,
                                    const sim::ClientArrival& arrival) {
  if (arrival.count == 0 || arrival.request_rate_hz <= 0.0 ||
      arrival.bits == 0)
    throw std::invalid_argument("KmsClientFleet: degenerate ClientArrival");
  const qkd::SimTime period =
      std::max<qkd::SimTime>(1, seconds_to_sim(1.0 / arrival.request_rate_hz));
  for (std::size_t i = 0; i < arrival.count; ++i) {
    ClientConfig config;
    config.name = "fleet-" + std::to_string(arrival.src) + "-" +
                  std::to_string(arrival.dst) + "-q" +
                  std::to_string(arrival.qos) + "-" +
                  std::to_string(arrivals_++);
    config.src = arrival.src;
    config.dst = arrival.dst;
    config.qos = static_cast<QosClass>(arrival.qos);

    Member member;
    member.id = kms_.register_client(std::move(config));
    member.src = arrival.src;
    member.dst = arrival.dst;
    member.qos = arrival.qos;
    member.shard = kms_.shard_of(arrival.src, arrival.dst);
    member.stream = &kms_.stream_for_pair(arrival.src, arrival.dst);
    member.active = true;
    members_.push_back(std::move(member));
    ++active_;

    // Phase-stagger the cohort across one period so a 1000-client arrival
    // does not land 1000 same-instant requests every cycle. The ticker
    // lives on the member's shard stream: in sharded mode the request is
    // issued on the same lane that serves it.
    const std::size_t index = members_.size() - 1;
    const qkd::SimTime offset =
        static_cast<qkd::SimTime>((i + 1) * period / (arrival.count + 1));
    const std::size_t bits = arrival.bits;
    members_[index].ticker = members_[index].stream->every(
        offset, period,
        [this, index, bits](qkd::SimTime) {
          issue_request(members_[index], bits);
        });
  }
  (void)now;
}

void KmsClientFleet::client_departure(qkd::SimTime now,
                                      const sim::ClientDeparture& departure) {
  std::size_t remaining = departure.count;
  for (auto it = members_.rbegin(); it != members_.rend() && remaining > 0;
       ++it) {
    if (!it->active || it->src != departure.src || it->dst != departure.dst ||
        it->qos != departure.qos)
      continue;
    it->stream->cancel(it->ticker);
    it->ticker = sim::EventScheduler::Handle();
    it->active = false;
    kms_.deregister_client(it->id);
    --active_;
    --remaining;
  }
  (void)now;
}

const KmsClientFleet::Stats& KmsClientFleet::stats() const {
  Stats total;
  for (const Stats& s : shard_stats_) {
    total.requests_issued += s.requests_issued;
    total.granted += s.granted;
    total.rejected += s.rejected;
    total.shed += s.shed;
    total.departed += s.departed;
    total.claims_matched += s.claims_matched;
    total.claims_mismatched += s.claims_mismatched;
  }
  agg_stats_ = total;
  return agg_stats_;
}

}  // namespace qkd::kms
