// One KMS shard: the complete service state of a disjoint subset of
// endpoint pairs.
//
// KeyManagementService is a thin router over N of these (pairs hash to
// shards by their unordered endpoint ids, so a pair and its reverse always
// co-locate and get_key_with_id claims stay shard-local). EVERYTHING on the
// grant path lives here — the mirrored per-pair KeyPools, the bounded
// per-(pair, class) queues, the DRR deficit state, the TTL claim ledger,
// the per-class stats and latency histograms — so shards share no mutable
// state and need no locks: each one services its pairs on its own event
// stream (a ShardedScheduler shard stream in epoch mode, the single global
// scheduler otherwise), and the router only crosses the boundary at
// registration and stats aggregation, with every shard lane parked.
//
// Two execution modes, selected by the service's constructor:
//
//  * legacy (single-stream): service_round() transports synchronously via
//    mesh.transport_key_batch — bit-for-bit the pre-sharding behavior the
//    tier-1 suite pins down.
//  * epoch (ShardedScheduler): service_round() only SELECTS (DRR) and
//    parks the round in the shard's outbox as a FrameJob. At the window
//    barrier the router plans every job's transport against the shared
//    mesh sequentially in global (src, dst) order, then fans
//    finalize_outbox() back out across shards: key material is generated
//    from the pair's own deterministic rng and granted entirely
//    shard-locally. Grant content therefore depends only on pair-local
//    history plus the globally-ordered plan sequence — identical for any
//    shard count and any worker-lane count.
//
// This header is internal to src/kms (kms.hpp only forward-declares the
// types here); clients program against kms.hpp.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "src/kms/kms.hpp"

namespace qkd::kms {

class AtomicLatencyHistogram;

/// O(1)-memory latency histogram (power-of-two nanosecond buckets) for the
/// per-class p99 over million-grant runs. Shards record locally (into the
/// atomic variant below); the router merges per-shard histograms on read.
class LatencyHistogram {
 public:
  void record(qkd::SimTime latency);
  void merge(const LatencyHistogram& other);
  double quantile_s(double q) const;
  double mean_s() const;
  std::uint64_t count() const { return count_; }

 private:
  friend class AtomicLatencyHistogram;
  static constexpr std::size_t kBuckets = 64;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  qkd::SimTime total_ = 0;
};

/// The shard-side recording form of LatencyHistogram: the same power-of-two
/// buckets held in relaxed atomics, so a monitoring thread can snapshot
/// latency quantiles while shard lanes are mid-grant (the counters are
/// statistically consistent, never torn).
class AtomicLatencyHistogram {
 public:
  void record(qkd::SimTime latency);
  /// The current contents as a plain histogram (relaxed loads per bucket).
  LatencyHistogram snapshot() const;

 private:
  static constexpr std::size_t kBuckets = LatencyHistogram::kBuckets;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<qkd::SimTime> total_{0};
};

struct Request {
  ClientId client = 0;
  std::size_t bits = 0;
  GrantCallback callback;
  qkd::SimTime requested_at = 0;
  /// The caller's trace (invalid for untraced requests): the parent every
  /// grant-path span of this request hangs under.
  obs::TraceContext trace;
};

/// An unclaimed peer copy. key_ids are monotonic per pair and claim_ttl is
/// constant, so a pair's claims deque is sorted by key_id AND by expiry:
/// lookup is a binary search, purge pops from the front, and a fulfilled
/// claim is tombstoned in place (`claimed`) until it reaches the front —
/// no node-based map on the grant path.
struct PendingClaim {
  std::uint64_t key_id = 0;
  keystore::KeyBlock block;
  ClientId initiator = 0;  // the granted client: may claim its own copy
  qkd::SimTime expires_at = 0;
  bool claimed = false;
};

/// One ordered (src, dst) endpoint pair's service state.
struct PairState {
  network::NodeId src = 0;
  network::NodeId dst = 0;
  /// Mirror-image delivered-key pools, one per endpoint: every frame's
  /// payload is deposited into both, every grant withdraws from both
  /// through identical calls, so key_ids agree end to end.
  keystore::KeyPool src_store;
  keystore::KeyPool dst_store;
  std::array<std::deque<Request>, kQosClassCount> queues;
  std::array<std::size_t, kQosClassCount> deficit_bits{};
  std::deque<PendingClaim> claims;
  /// Entries neither claimed nor purged — what claims.size() was before
  /// tombstoning (PairInspection::claims_outstanding).
  std::size_t live_claims = 0;
  /// Route memo for the planning phase (owned here so the mesh carries no
  /// per-pair state).
  network::MeshSimulation::RouteCache route_cache;
  /// Epoch mode: the pair's own key-material stream, seeded from
  /// (Config::seed, src, dst) — advanced only by this pair's frames, so
  /// grant bits are independent of shard count and finalize order.
  qkd::Rng frame_rng{0};
  sim::EventScheduler::Handle service_event;
  qkd::SimTime armed_for = -1;  // due time of service_event, -1 when idle
  std::size_t consecutive_starved = 0;
  /// Service-owned pooled-bits gauge cell (relaxed writes after every
  /// deposit/withdraw): lets the metrics collector read per-pair pool
  /// depth without walking shard pair state.
  std::atomic<std::size_t>* pool_gauge = nullptr;
};

/// A selected-but-not-yet-transported service round, parked between the
/// shard's service event and the window barrier (epoch mode only).
struct FrameJob {
  PairState* pair = nullptr;
  std::vector<std::pair<unsigned, Request>> round;
  std::size_t payload_bits = 0;
  network::MeshSimulation::FramePlan plan;
  /// The service round's span context (adopted from the first traced
  /// request in the round): the barrier's mesh plan and the finalize spans
  /// parent under it, keeping the trace connected across the park.
  obs::TraceContext trace;
};

class KmsShard {
 public:
  using ClassStats = KeyManagementService::ClassStats;
  using Stats = KeyManagementService::Stats;

  /// `stream` is where this shard's service events run: a ShardedScheduler
  /// shard stream in epoch mode, the service's global scheduler otherwise.
  KmsShard(KeyManagementService& service, std::size_t index,
           sim::EventScheduler& stream, bool epoch_mode);
  ~KmsShard();
  KmsShard(const KmsShard&) = delete;
  KmsShard& operator=(const KmsShard&) = delete;

  sim::EventScheduler& stream() { return stream_; }

  /// Finds or creates the ordered pair's state (registration path; the
  /// pair vector stays sorted by (src, dst) and addresses stay stable).
  PairState& pair_for(network::NodeId src, network::NodeId dst);
  PairState* find_pair(network::NodeId src, network::NodeId dst);

  /// Admission + enqueue + arm (the get_key fast path). `now` is the
  /// shard stream's current time.
  void submit(PairState& pair, unsigned qos, Request request, qkd::SimTime now);

  /// The get_key_with_id walk: the claimant's own ordered pair first (only
  /// its own grant's peer copy — and a foreign key_id found there is
  /// DENIED, not retried on the reversed side), then the reversed pair
  /// (claimable by any peer-endpoint application).
  std::optional<keystore::KeyBlock> claim(PairState& own, PairState* reversed,
                                          std::uint64_t key_id,
                                          ClientId claimant, qkd::SimTime now);

  /// Drains a departing client's queued requests with kDeparted.
  void drain_departed(PairState& pair, ClientId id, qkd::SimTime now);

  /// Arms every backlogged pair for immediate service (replenish wakeup).
  /// Returns true if anything was armed.
  bool wake_backlogged(qkd::SimTime now);

  /// Epoch mode: appends the shard's parked jobs to `out` (barrier phase;
  /// the router plans them in global pair order; job addresses are stable
  /// until finalize_outbox).
  void collect_jobs(std::vector<FrameJob*>& out);
  /// Epoch mode: grants / requeues every planned job shard-locally and
  /// clears the outbox. Runs on a worker lane; touches only shard state.
  void finalize_outbox(qkd::SimTime now);

  // ---- Aggregation surface -------------------------------------------------
  // Counter and latency accessors read relaxed atomics into mutable caches
  // and return references into them: safe to call from ONE monitoring
  // thread concurrently with shard-lane grants (the cross-shard stats
  // regression test pins this under TSan). queue_depth / inspect_into
  // still walk pair state and require shard lanes parked.
  const std::array<ClassStats, kQosClassCount>& class_stats() const;
  const std::array<LatencyHistogram, kQosClassCount>& latency() const;
  const Stats& stats() const;
  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }
  std::size_t queue_depth(std::size_t qos) const;
  void inspect_into(
      std::vector<KeyManagementService::PairInspection>& out) const;

 private:
  /// ClassStats with every counter a relaxed atomic — the recording form;
  /// class_stats() snapshots these into the plain structs callers see.
  struct AtomicClassStats {
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> granted{0};
    std::atomic<std::uint64_t> granted_within_slo{0};
    std::atomic<std::uint64_t> rejected_queue_full{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> departed{0};
    std::atomic<std::uint64_t> bits_granted{0};
  };
  struct AtomicStats {
    std::atomic<std::uint64_t> service_rounds{0};
    std::atomic<std::uint64_t> transports{0};
    std::atomic<std::uint64_t> starved_rounds{0};
    std::atomic<std::uint64_t> shed_events{0};
    std::atomic<std::uint64_t> claims_fulfilled{0};
    std::atomic<std::uint64_t> claims_expired{0};
    std::atomic<std::uint64_t> bits_reclaimed{0};
  };

  void arm_service(PairState& pair, qkd::SimTime when);
  void service_round(PairState& pair, qkd::SimTime now);
  std::vector<std::pair<unsigned, Request>> select_round(PairState& pair);
  void grant_round(PairState& pair,
                   std::vector<std::pair<unsigned, Request>>& round,
                   const network::MeshSimulation::TransportResult& frame,
                   qkd::SimTime now, obs::TraceContext trace);
  void requeue_round(PairState& pair,
                     std::vector<std::pair<unsigned, Request>>& round);
  void shed_lowest_class(PairState& pair, qkd::SimTime now);
  void purge_expired_claims(PairState& pair, qkd::SimTime now);
  void finish(Request& request, GrantStatus status, qkd::SimTime now,
              AtomicClassStats& stats);
  static bool backlogged(const PairState& pair);
  obs::Tracer* tracer() const;

  KeyManagementService& service_;
  std::size_t index_ = 0;
  sim::EventScheduler& stream_;
  bool epoch_mode_ = false;

  /// Sorted by (src, dst); unique_ptr keeps PairState addresses stable
  /// across insertions (registration only — never on the grant path).
  std::vector<std::unique_ptr<PairState>> pairs_;
  std::vector<FrameJob> outbox_;

  std::array<AtomicClassStats, kQosClassCount> class_stats_{};
  std::array<AtomicLatencyHistogram, kQosClassCount> latency_{};
  AtomicStats stats_;
  std::atomic<bool> shedding_{false};

  /// Snapshot caches the const accessors refresh and hand out references
  /// into (written only by the reading thread).
  mutable std::array<ClassStats, kQosClassCount> class_stats_cache_{};
  mutable std::array<LatencyHistogram, kQosClassCount> latency_cache_{};
  mutable Stats stats_cache_;
};

}  // namespace qkd::kms
