// Multi-tenant key management service: the subsystem that turns the
// keystore + trusted-relay mesh into a *service* shared by many client
// applications (the Q-KeyMaker key-server architecture; the paper's
// "millions of users" trajectory). Distilled key is only useful once it is
// delivered to cryptographic consumers — and sustained multi-client rates
// are bounded by computational load and fair scheduling, not just optics
// (Gilbert & Hamrick, "Secrecy, Computational Loads and Rates in Practical
// Quantum Cryptography").
//
// Shape of the service:
//
//  * Client registry. Applications register by name, bound to a
//    (src-node, dst-node) endpoint pair and a QoS class. get_key() asks
//    for end-to-end key; the grant arrives asynchronously (the KMS runs
//    entirely on EventScheduler deadlines) carrying a KeyBlock whose
//    key_id names the SAME bits on the peer endpoint — the claiming side
//    fetches its copy with get_key_with_id() (ETSI GS QKD 014 semantics:
//    get_key on the master side, get_key_with_key_IDs on the slave side).
//    Key-ID agreement is built on the keystore's mirrored-KeyPool
//    machinery: each endpoint pair owns two mirror-image delivered-key
//    pools driven through identical KeySupply call sequences, so both
//    ends derive the same key_id for the same bits.
//  * Admission control + backpressure. Each (pair, class) request queue is
//    bounded; a full queue rejects at get_key() time (kRejectedQueueFull)
//    instead of letting latency grow without bound.
//  * Weighted fair share across QoS classes. Per-pair deficit round robin:
//    each service round credits every backlogged class
//    weight x quantum_bits and serves within the credit, highest-priority
//    class first. Every backlogged class makes progress each round
//    (bounded wait, no starvation of low-priority clients) and a large
//    bulk request can never block a realtime one (no priority inversion —
//    the classes spend separate credit).
//  * Batching. All requests a round selects for one destination ride ONE
//    MeshSimulation relay frame (transport_key_batch), paying the per-hop
//    header+tag overhead once — the hop-pad amortization that makes
//    thousands of small grants affordable.
//  * Supply-event-driven reaction. On a link supply's kReplenished the KMS
//    immediately serves queues that stalled on dry pools (no waiting out
//    the retry backoff); sustained exhaustion (consecutive starved rounds)
//    sheds load, lowest-priority class first (kShed), so realtime clients
//    survive an eavesdropping-induced drought.
//  * Sharding. The service itself is a thin router over N KmsShards:
//    endpoint pairs hash (by unordered endpoint ids, so a pair and its
//    reverse co-locate) to shards, and each shard owns the COMPLETE grant
//    path of its pairs — mirrored pools, bounded queues, DRR state, claim
//    TTL ledger, stats, latency histograms. Shards share no mutable state;
//    the router crosses the boundary only at registration, stats
//    aggregation and the epoch-mode frame barrier. Constructed on a plain
//    EventScheduler the shards all service on that one stream (the
//    deterministic single-thread path tier-1 pins down); constructed on a
//    sim::ShardedScheduler each shard services on its own stream, in
//    parallel on the scheduler's worker pool, and relay frames are planned
//    sequentially at the window barrier in global (src, dst) order then
//    finalized shard-locally from per-pair deterministic rngs — so the
//    per-client grant sequence for a fixed seed is identical for ANY shard
//    and lane count.
//
// The KMS is the topmost layer (src/kms links qkd_sim): it schedules onto
// the same EventScheduler the scenario engine scripts, implements
// sim::ServiceSampler so the TimelineRecorder can chart per-class queue
// depth / grants / rejections / p99 grant latency, and plugs into scripted
// days through kms::KmsClientFleet (ClientArrival/ClientDeparture actions).
// E19 (bench_kms) drives >= 1M requests from >= 1k clients through one
// scheduled run; the sharded sweep scales grants/s across cores.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/keystore/key_pool.hpp"
#include "src/network/key_transport.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/event_scheduler.hpp"
#include "src/sim/timeline.hpp"

namespace qkd::sim {
class ShardedScheduler;
}  // namespace qkd::sim

namespace qkd::kms {

class KmsShard;       // internal: src/kms/shard.hpp
struct PairState;     // internal: one endpoint pair's shard-owned state
struct FrameJob;      // internal: a parked epoch-mode service round

// ---- QoS vocabulary --------------------------------------------------------

/// Service classes in priority order (0 = highest weight). kRealtime is
/// never shed; kBulk is the first to go when supply dries up.
enum class QosClass : unsigned { kRealtime = 0, kInteractive = 1, kBulk = 2 };
inline constexpr std::size_t kQosClassCount = 3;

const char* qos_class_name(QosClass qos);

// ---- Client registry -------------------------------------------------------

using ClientId = std::uint32_t;

struct ClientConfig {
  std::string name;              // appears in diagnostics
  network::NodeId src = 0;       // the endpoint this application runs on
  network::NodeId dst = 0;       // its peer application's endpoint
  QosClass qos = QosClass::kInteractive;
};

// ---- Grants ----------------------------------------------------------------

enum class GrantStatus {
  kGranted,            // bits + key_id delivered
  kRejectedQueueFull,  // admission control: (pair, class) queue at capacity
  kShed,               // dropped by sustained-exhaustion load shedding
  kDeparted,           // the client deregistered with the request queued
};

const char* grant_status_name(GrantStatus status);

struct Grant {
  ClientId client = 0;
  GrantStatus status = GrantStatus::kGranted;
  /// Names the same bits on both endpoints (kGranted only); the peer
  /// application claims its copy with get_key_with_id(key_id).
  std::uint64_t key_id = 0;
  qkd::BitVector bits;                      // the initiator's copy
  std::vector<network::NodeId> exposed_to;  // relays that saw the frame
  /// The delivering frame traversed a relay that was compromised at grant
  /// time (the mesh flags it; policy above decides whether to discard).
  bool compromised = false;
  qkd::SimTime requested_at = 0;
  qkd::SimTime granted_at = 0;
};

/// Invoked exactly once per get_key() call, from inside a scheduler event
/// (or synchronously for admission rejections). In sharded-scheduler mode
/// the callback runs on the owning shard's lane: it may touch the
/// requesting client's own KMS surface (get_key / get_key_with_id on the
/// same pair) and any state partitioned the same way the KMS is, but no
/// cross-shard or global state.
using GrantCallback = std::function<void(const Grant&)>;

// ---- The service -----------------------------------------------------------

class KeyManagementService final : public sim::ServiceSampler {
 public:
  struct Config {
    /// Fair-share weights by QoS class index; each crediting pass of a
    /// round gives every backlogged class weight x quantum_bits of
    /// service, highest priority served first.
    std::array<unsigned, kQosClassCount> class_weights{8, 3, 1};
    std::size_t quantum_bits = 4096;

    /// Payload cap of one relay frame: a round keeps crediting passes
    /// going (work conservation — idle classes' capacity flows to the
    /// backlogged ones at the weighted ratio) until the frame is full or
    /// the queues are empty. The cap, not the credit, is what bounds a
    /// round, so weighted differentiation only appears under contention.
    std::size_t max_frame_bits = 64 * 1024;

    /// Admission cap per (endpoint pair, class) queue.
    std::size_t max_queue_per_class = 256;

    /// How long a pair's arrivals are collected before a service round
    /// batches them into one relay frame.
    qkd::SimTime batch_window = 10 * qkd::kMillisecond;

    /// Retry delay after a starved round (pools could not cover the
    /// frame); bounds the event rate of a drought.
    qkd::SimTime retry_backoff = 250 * qkd::kMillisecond;

    /// Consecutive starved rounds on a pair before load is shed,
    /// lowest-priority backlogged class first.
    std::size_t shed_after_starved_rounds = 4;

    /// How long an unclaimed peer copy is held for get_key_with_id before
    /// it is discarded (both mirrored pools have already consumed the
    /// blocks, so expiry cannot desynchronize them).
    qkd::SimTime claim_ttl = qkd::kMinute;

    /// Engine-backed meshes only: low-water mark installed on every link
    /// supply so kReplenished fires (0 leaves the supplies untouched and
    /// disables replenish wakeups).
    std::size_t link_low_water_bits = 4 * keystore::KeySupply::kQblockBits;

    /// Shard count for the plain-EventScheduler constructors (all shards
    /// service on that one stream — pure partitioning, no parallelism).
    /// The ShardedScheduler constructors ignore this and use the
    /// scheduler's shard count, one stream per shard.
    std::size_t shards = 1;

    /// Seeds the per-pair frame rngs that generate key material in
    /// sharded-scheduler mode (each pair's stream derives from
    /// (seed, src, dst), so grant bits do not depend on shard count).
    std::uint64_t seed = 19;

    /// Grant-latency service-level objective: a grant delivered within
    /// this of its request counts into ClassStats::granted_within_slo
    /// (the "good" counter the alert engine's burn-rate rules divide by
    /// granted). Latency here is request-to-grant on the sim timeline.
    qkd::SimTime slo_grant_latency = 500 * qkd::kMillisecond;
  };

  struct ClassStats {
    std::uint64_t requests = 0;
    std::uint64_t granted = 0;
    /// Grants delivered within Config::slo_grant_latency — the SLO "good"
    /// counter (granted_within_slo <= granted always).
    std::uint64_t granted_within_slo = 0;
    std::uint64_t rejected_queue_full = 0;
    std::uint64_t shed = 0;
    std::uint64_t departed = 0;
    std::uint64_t bits_granted = 0;
  };

  struct Stats {
    std::uint64_t service_rounds = 0;
    std::uint64_t transports = 0;      // relay frames sent (batching: <= grants)
    std::uint64_t starved_rounds = 0;  // frames the pools could not cover
    std::uint64_t shed_events = 0;     // times a class queue was dropped
    std::uint64_t replenish_wakeups = 0;
    std::uint64_t claims_fulfilled = 0;
    std::uint64_t claims_expired = 0;
    /// Bits of expired unclaimed peer copies redeposited into BOTH pair
    /// stores (never silently leaked).
    std::uint64_t bits_reclaimed = 0;
  };

  /// Snapshot of one endpoint pair's mirrored state, for invariant
  /// checkers: the fuzzer asserts src/dst agree on every field after every
  /// scenario event.
  struct PairInspection {
    network::NodeId src = 0;
    network::NodeId dst = 0;
    std::size_t src_available_bits = 0;
    std::size_t dst_available_bits = 0;
    std::uint64_t src_next_key_id = 0;
    std::uint64_t dst_next_key_id = 0;
    keystore::KeyPool::Stats src_stats;
    keystore::KeyPool::Stats dst_stats;
    std::size_t claims_outstanding = 0;
    std::array<std::size_t, kQosClassCount> queue_depths{};
  };

  /// Single-stream service: every shard (Config::shards of them) runs its
  /// service rounds on `scheduler` — the deterministic path. The mesh and
  /// scheduler must outlive the service. Engine-backed meshes must be
  /// driven single-threaded (scheduler-dispatched run_link_batch, as
  /// ScenarioRunner does): the KMS subscribes to the link supplies and its
  /// callbacks are not thread-safe.
  KeyManagementService(network::MeshSimulation& mesh,
                       sim::EventScheduler& scheduler, Config config);
  KeyManagementService(network::MeshSimulation& mesh,
                       sim::EventScheduler& scheduler);

  /// Sharded-execution service: one KmsShard per scheduler shard, each
  /// servicing its pairs on its own stream, in parallel on the scheduler's
  /// worker pool. Relay frames are planned at the window barrier (the
  /// service registers a barrier task) in global (src, dst) order against
  /// the shared mesh, then finalized shard-locally from per-pair
  /// deterministic rngs. Registration, deregistration and every
  /// introspection accessor must be called with shard lanes parked (from
  /// the global stream or between runs); get_key / get_key_with_id may
  /// additionally be called from the owning shard's lane.
  KeyManagementService(network::MeshSimulation& mesh,
                       sim::ShardedScheduler& sharded, Config config);
  KeyManagementService(network::MeshSimulation& mesh,
                       sim::ShardedScheduler& sharded);
  ~KeyManagementService() override;

  // ---- Registry -----------------------------------------------------------
  ClientId register_client(ClientConfig config);
  /// Queued requests of the departing client are drained with kDeparted.
  void deregister_client(ClientId id);
  std::size_t client_count() const { return live_clients_; }
  const ClientConfig& client(ClientId id) const;

  // ---- ETSI-014-style delivery -------------------------------------------
  /// Initiator side: asks for `bits` of end-to-end key for `id`'s endpoint
  /// pair. The callback fires with a kGranted grant (bits + key_id) once a
  /// service round delivers, or with a rejection status. Throws
  /// std::invalid_argument for bits == 0 or an unknown/departed client.
  void get_key(ClientId id, std::size_t bits, GrantCallback on_grant);

  /// The traced form: `trace` (a client span's context, possibly carried in
  /// off the wire) parents every grant-path span of this request —
  /// admission, the DRR service round, the mesh plan and hops, the grant.
  /// An invalid (default) context behaves exactly like the overload above.
  void get_key(ClientId id, std::size_t bits, GrantCallback on_grant,
               obs::TraceContext trace);

  /// Peer side: claims the peer copy of a granted key by its key_id. Only
  /// the peer endpoint's applications (registered on the reversed pair)
  /// and the granted client itself may claim — a co-tenant on the same
  /// pair cannot take another tenant's key. nullopt when the key_id is
  /// unknown, already claimed, expired, or not claimable by `id`. Both
  /// orderings of a pair hash to the same shard, so the claim never
  /// crosses a shard boundary.
  std::optional<keystore::KeyBlock> get_key_with_id(ClientId id,
                                                    std::uint64_t key_id);

  // ---- Sharding surface ---------------------------------------------------
  std::size_t shard_count() const { return shards_.size(); }
  /// Which shard owns the (unordered) endpoint pair {a, b}.
  std::size_t shard_of(network::NodeId a, network::NodeId b) const;
  /// The event stream the pair's service work runs on: its shard's stream
  /// in sharded-scheduler mode, the global scheduler otherwise. Client
  /// drivers arm their per-client tickers here so request issue runs on
  /// the same lane that serves it.
  sim::EventScheduler& stream_for_pair(network::NodeId src,
                                       network::NodeId dst);

  // ---- Observability ------------------------------------------------------
  /// Installs (or removes, with nullptr) the tracer the grant path records
  /// spans into. Shard spans land in the owning shard's cell; the caller
  /// should size the tracer with at least shard_count() cells. The mesh's
  /// tracer is NOT installed here — set it on the mesh explicitly if the
  /// relay legs should be recorded too.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Registers a collector exposing aggregated service/class counters and
  /// per-class p99 grant latency under `prefix`. Reads only the shards'
  /// relaxed-atomic counters, so snapshots are safe from one monitoring
  /// thread while shard lanes grant.
  void bind_metrics(obs::MetricsRegistry& registry, std::string prefix);

  // ---- Introspection (aggregated across shards) ---------------------------
  // Counter/latency accessors aggregate the shards' relaxed-atomic stats:
  // callable from ONE monitoring thread concurrently with shard-lane
  // grants. queue_depth / inspect_pairs still walk shard pair state and
  // require lanes parked.
  const ClassStats& class_stats(QosClass qos) const;
  const Stats& stats() const;
  const Config& config() const { return config_; }
  /// Requests waiting in `qos` queues across all endpoint pairs.
  std::size_t queue_depth(QosClass qos) const;
  double p99_grant_latency_s(QosClass qos) const;
  double mean_grant_latency_s(QosClass qos) const;
  /// True while some shard is in a shedding episode (cleared by its next
  /// successful round).
  bool shedding() const;
  /// One snapshot per live endpoint pair (ordered by (src, dst)).
  std::vector<PairInspection> inspect_pairs() const;

  // ---- Per-shard introspection (DRR fairness across shards) ---------------
  const Stats& shard_stats(std::size_t shard) const;
  const ClassStats& shard_class_stats(std::size_t shard, QosClass qos) const;

  /// Observer invoked for EVERY delivered Grant — granted, rejected, shed
  /// and departed alike — just before the client's own callback. In
  /// sharded-scheduler mode it runs on shard lanes concurrently and must
  /// only touch state partitioned by client/pair (see GrantCallback). The
  /// fuzz harness checks its invariants (compromise flagging,
  /// conservation) here without disturbing delivery.
  void set_grant_observer(GrantCallback observer) {
    grant_observer_ = std::move(observer);
  }

  // ---- sim::ServiceSampler ------------------------------------------------
  std::vector<sim::ClassSample> sample_service(qkd::SimTime now) override;

 private:
  friend class KmsShard;

  /// One endpoint pair's pooled-bits gauge cell: written (relaxed) by the
  /// owning shard after every deposit/withdraw, read by the metrics
  /// collector. Lives in a deque so addresses stay stable as pairs
  /// register; the deque itself is guarded by pool_gauge_mu_ (registration
  /// and collection only — never the grant path's inner loop).
  struct PairPoolGauge {
    network::NodeId src = 0;
    network::NodeId dst = 0;
    std::atomic<std::size_t> bits{0};
  };
  std::atomic<std::size_t>& pool_gauge_for(network::NodeId src,
                                           network::NodeId dst);

  struct ClientRecord {
    ClientConfig config;
    KmsShard* shard = nullptr;
    PairState* pair = nullptr;
    bool live = false;
  };

  void init_shards(std::size_t count);
  ClientRecord& live_client(ClientId id, const char* op);
  void on_supply_replenished(qkd::SimTime now);
  /// Barrier task (sharded-scheduler mode): plans every shard's parked
  /// service rounds against the mesh in global (src, dst) order, then fans
  /// finalization back out across shard lanes.
  void flush_frames(qkd::SimTime now);

  network::MeshSimulation& mesh_;
  sim::EventScheduler& scheduler_;            // the global stream
  sim::ShardedScheduler* sharded_ = nullptr;  // sharded-scheduler mode only
  Config config_;

  std::vector<std::unique_ptr<KmsShard>> shards_;
  std::vector<ClientRecord> clients_;
  std::size_t live_clients_ = 0;

  /// Router-level counters (everything else lives in the shards);
  /// stats()/class_stats() aggregate into the mutable caches on read.
  Stats router_stats_;
  mutable Stats agg_stats_;
  mutable std::array<ClassStats, kQosClassCount> agg_class_stats_{};
  GrantCallback grant_observer_;
  obs::Tracer* tracer_ = nullptr;
  std::vector<std::uint64_t> supply_subscriptions_;  // engine mode only
  mutable std::mutex pool_gauge_mu_;
  std::deque<PairPoolGauge> pool_gauges_;
};

}  // namespace qkd::kms
