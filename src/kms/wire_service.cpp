#include "src/kms/wire_service.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

namespace qkd::kms {
namespace {

/// request_id echoed by a response message, 0 for the types that carry
/// none (registration and status replies — at most one is in flight).
std::uint64_t response_request_id(const wire::EtsiMessage& message) {
  if (const auto* grant = std::get_if<wire::KmsGrant>(&message))
    return grant->request_id;
  if (const auto* reject = std::get_if<wire::KmsReject>(&message))
    return reject->request_id;
  if (const auto* claim = std::get_if<wire::KmsKeyWithIdReply>(&message))
    return claim->request_id;
  return 0;
}

}  // namespace

// ---- Server ----------------------------------------------------------------

void KmsWireServer::serve(wire::Transport& io) {
  while (serve_one(io)) {
  }
}

bool KmsWireServer::serve_one(wire::Transport& io) {
  const auto raw = io.recv_frame();
  if (!raw.has_value()) return false;  // transport closed or timed out

  // A byte-identical retransmit is answered from cache, not re-executed:
  // the lost-response case must not double-grant or "already-claim".
  if (last_request_.has_value() && *last_request_ == *raw) {
    ++served_;
    return reply(io, last_reply_);
  }

  const auto frame = wire::decode_frame(*raw);
  if (!frame.ok()) return true;  // malformed: drop, the client retransmits
  const auto message = wire::decode_etsi(frame.value);
  if (!message.ok()) return true;

  last_request_ = *raw;
  last_reply_.clear();
  ++served_;
  return handle(io, message.value, frame.value.trace);
}

bool KmsWireServer::reply(wire::Transport& io, const Bytes& framed) {
  last_reply_ = framed;
  io.send_frame(framed);
  return true;
}

bool KmsWireServer::handle(wire::Transport& io,
                           const wire::EtsiMessage& message,
                           obs::TraceContext trace) {
  if (std::holds_alternative<wire::KmsBye>(message)) return false;

  if (const auto* reg = std::get_if<wire::KmsRegister>(&message)) {
    ClientConfig config;
    config.name = reg->name;
    config.src = reg->src;
    config.dst = reg->dst;
    config.qos = reg->qos < kQosClassCount ? static_cast<QosClass>(reg->qos)
                                           : QosClass::kBulk;
    wire::KmsRegisterReply ack;
    ack.client_id = kms_.register_client(config);
    return reply(io, wire::encode_frame(ack.kType, ack.encode()));
  }

  if (const auto* get = std::get_if<wire::KmsGetKey>(&message)) {
    // The server-side half of the request's trace: parented on the context
    // the version-2 frame carried in (or a fresh root when the client was
    // untraced but this server records).
    obs::ScopedSpan server_span(tracer_, "kms.server.get_key", trace);
    if (server_span.recording()) {
      server_span.attr("client", std::to_string(get->client_id));
      server_span.attr("bits", std::to_string(get->bits));
    }
    // The grant lands asynchronously from a service round; the delivery
    // slot is shared so a patience timeout cannot leave the callback
    // writing through a dangling pointer.
    auto slot = std::make_shared<std::optional<Grant>>();
    try {
      kms_.get_key(get->client_id, static_cast<std::size_t>(get->bits),
                   [slot](const Grant& grant) { *slot = grant; },
                   server_span.context());
    } catch (const std::invalid_argument&) {
      wire::KmsReject reject;
      reject.request_id = get->request_id;
      reject.status = static_cast<std::uint8_t>(GrantStatus::kDeparted);
      return reply(io, wire::encode_frame(reject.kType, reject.encode()));
    }
    const qkd::SimTime step =
        std::max<qkd::SimTime>(kms_.config().batch_window, qkd::kMillisecond);
    for (qkd::SimTime waited = 0; !slot->has_value() && waited < kGrantPatience;
         waited += step)
      scheduler_.run_for(step);
    if (server_span.recording())
      server_span.attr("result",
                       grant_status_name(slot->has_value()
                                             ? (*slot)->status
                                             : GrantStatus::kShed));
    if (slot->has_value() && (*slot)->status == GrantStatus::kGranted) {
      wire::KmsGrant grant;
      grant.request_id = get->request_id;
      grant.status = static_cast<std::uint8_t>(GrantStatus::kGranted);
      grant.key_id = (*slot)->key_id;
      grant.bits = (*slot)->bits;
      grant.compromised = (*slot)->compromised;
      return reply(io, wire::encode_frame(grant.kType, grant.encode()));
    }
    wire::KmsReject reject;
    reject.request_id = get->request_id;
    reject.status = static_cast<std::uint8_t>(
        slot->has_value() ? (*slot)->status : GrantStatus::kShed);
    return reply(io, wire::encode_frame(reject.kType, reject.encode()));
  }

  if (const auto* claim = std::get_if<wire::KmsGetKeyWithId>(&message)) {
    wire::KmsKeyWithIdReply ack;
    ack.request_id = claim->request_id;
    try {
      const auto block = kms_.get_key_with_id(claim->client_id, claim->key_id);
      if (block.has_value()) {
        ack.ok = true;
        ack.key_id = block->key_id;
        ack.bits = block->bits;
      }
    } catch (const std::invalid_argument&) {
      ack.ok = false;
    }
    return reply(io, wire::encode_frame(ack.kType, ack.encode()));
  }

  if (std::holds_alternative<wire::KmsStatus>(message)) {
    wire::KmsStatusReply ack;
    for (std::size_t q = 0; q < kQosClassCount; ++q) {
      const auto& cls = kms_.class_stats(static_cast<QosClass>(q));
      ack.requests += cls.requests;
      ack.granted += cls.granted;
      ack.queue_depth += kms_.queue_depth(static_cast<QosClass>(q));
    }
    ack.claims_fulfilled = kms_.stats().claims_fulfilled;
    return reply(io, wire::encode_frame(ack.kType, ack.encode()));
  }

  // A response-typed frame arriving at the server: drop it.
  return true;
}

// ---- Client ----------------------------------------------------------------

void KmsWireClient::bind_metrics(obs::MetricsRegistry& registry,
                                 std::string prefix) {
  registry.add_collector([this, prefix = std::move(prefix)](
                             obs::MetricsRegistry::Collect& out) {
    out.counter(prefix + "_messages_sent", messages_sent_);
    out.counter(prefix + "_retransmits", retransmits_);
  });
}

std::optional<wire::EtsiMessage> KmsWireClient::call(const Bytes& framed,
                                                     wire::PacketType want,
                                                     wire::PacketType alt) {
  const std::uint64_t want_request_id = next_request_id_ - 1;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    io_.send_frame(framed);
    ++messages_sent_;
    if (attempt > 0) ++retransmits_;
    const auto raw = io_.recv_frame();
    if (!raw.has_value()) continue;  // lost in either direction: retransmit
    const auto frame = wire::decode_frame(*raw);
    if (!frame.ok() ||
        (frame.value.type != want && frame.value.type != alt))
      continue;
    const auto message = wire::decode_etsi(frame.value);
    if (!message.ok()) continue;
    // A stale reply to an earlier (retransmitted) call: discard and ask
    // again — the server's duplicate cache makes the re-ask idempotent.
    const std::uint64_t rid = response_request_id(message.value);
    if (rid != 0 && rid != want_request_id) continue;
    return message.value;
  }
  return std::nullopt;
}

std::optional<ClientId> KmsWireClient::register_app(const std::string& name,
                                                    std::uint32_t src,
                                                    std::uint32_t dst,
                                                    QosClass qos) {
  wire::KmsRegister request;
  request.name = name;
  request.src = src;
  request.dst = dst;
  request.qos = static_cast<std::uint8_t>(qos);
  ++next_request_id_;  // keeps the id stream aligned across call types
  const auto response =
      call(wire::encode_frame(request.kType, request.encode()),
           wire::PacketType::kKmsRegisterReply,
           wire::PacketType::kKmsRegisterReply);
  if (!response.has_value()) return std::nullopt;
  return std::get<wire::KmsRegisterReply>(*response).client_id;
}

std::optional<KmsWireClient::KeyReply> KmsWireClient::get_key(
    ClientId id, std::uint64_t bits) {
  // The trace root: every server-side span of this request descends from
  // here, carried across the transport in the request's version-2 frame.
  // With no tracer the context is invalid and the frame stays version 1.
  obs::ScopedSpan client_span(tracer_, "kms.client.get_key");
  if (client_span.recording()) {
    client_span.attr("client", std::to_string(id));
    client_span.attr("bits", std::to_string(bits));
  }
  wire::KmsGetKey request;
  request.client_id = id;
  request.request_id = next_request_id_++;
  request.bits = bits;
  const auto response = call(
      wire::encode_frame(request.kType, request.encode(),
                         client_span.context()),
      wire::PacketType::kKmsGrant, wire::PacketType::kKmsReject);
  if (!response.has_value()) return std::nullopt;
  KeyReply out;
  if (const auto* grant = std::get_if<wire::KmsGrant>(&*response)) {
    out.status = static_cast<GrantStatus>(grant->status);
    out.key_id = grant->key_id;
    out.bits = grant->bits;
    out.compromised = grant->compromised;
  } else {
    out.status =
        static_cast<GrantStatus>(std::get<wire::KmsReject>(*response).status);
  }
  if (client_span.recording())
    client_span.attr("status", grant_status_name(out.status));
  return out;
}

std::optional<keystore::KeyBlock> KmsWireClient::get_key_with_id(
    ClientId id, std::uint64_t key_id) {
  wire::KmsGetKeyWithId request;
  request.client_id = id;
  request.request_id = next_request_id_++;
  request.key_id = key_id;
  const auto response =
      call(wire::encode_frame(request.kType, request.encode()),
           wire::PacketType::kKmsKeyWithIdReply,
           wire::PacketType::kKmsKeyWithIdReply);
  if (!response.has_value()) return std::nullopt;
  const auto& ack = std::get<wire::KmsKeyWithIdReply>(*response);
  if (!ack.ok) return std::nullopt;
  keystore::KeyBlock block;
  block.key_id = ack.key_id;
  block.bits = ack.bits;
  return block;
}

std::optional<wire::KmsStatusReply> KmsWireClient::status(ClientId id) {
  wire::KmsStatus request;
  request.client_id = id;
  ++next_request_id_;
  const auto response =
      call(wire::encode_frame(request.kType, request.encode()),
           wire::PacketType::kKmsStatusReply,
           wire::PacketType::kKmsStatusReply);
  if (!response.has_value()) return std::nullopt;
  return std::get<wire::KmsStatusReply>(*response);
}

void KmsWireClient::bye() {
  const wire::KmsBye request{};
  io_.send_frame(wire::encode_frame(request.kType, request.encode()));
  ++messages_sent_;
}

}  // namespace qkd::kms
