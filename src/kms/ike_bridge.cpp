#include "src/kms/ike_bridge.hpp"

#include <stdexcept>

namespace qkd::kms {

KmsIkeBridge::KmsIkeBridge(KeyManagementService& kms, network::NodeId src,
                           network::NodeId dst,
                           keystore::KeySupply& initiator_supply,
                           keystore::KeySupply& peer_supply, Config config)
    : kms_(kms),
      initiator_supply_(initiator_supply),
      peer_supply_(peer_supply),
      config_(config) {
  if (config_.refill_bits == 0)
    throw std::invalid_argument("KmsIkeBridge: refill_bits == 0");
  ClientConfig client;
  client.name = "ike-" + std::to_string(src) + "-" + std::to_string(dst);
  client.src = src;
  client.dst = dst;
  client.qos = config_.qos;
  client_ = kms_.register_client(std::move(client));

  initiator_supply_.set_low_water_bits(config_.low_water_bits);
  subscription_ = initiator_supply_.subscribe(
      [this](const keystore::SupplyEvent& event) {
        if (event.kind == keystore::SupplyEventKind::kLowWater ||
            event.kind == keystore::SupplyEventKind::kExhausted)
          request_refill();
      });
}

KmsIkeBridge::KmsIkeBridge(KeyManagementService& kms, network::NodeId src,
                           network::NodeId dst,
                           keystore::KeySupply& initiator_supply,
                           keystore::KeySupply& peer_supply)
    : KmsIkeBridge(kms, src, dst, initiator_supply, peer_supply, Config()) {}

KmsIkeBridge::~KmsIkeBridge() {
  initiator_supply_.unsubscribe(subscription_);
  // Drains any in-flight refill request (as kDeparted) while this object
  // is still alive — a grant after destruction would invoke a callback
  // capturing freed memory.
  kms_.deregister_client(client_);
}

void KmsIkeBridge::prime() { request_refill(); }

void KmsIkeBridge::request_refill() {
  if (refill_in_flight_) return;
  refill_in_flight_ = true;
  ++stats_.refills_requested;
  kms_.get_key(client_, config_.refill_bits,
               [this](const Grant& grant) { on_grant(grant); });
}

void KmsIkeBridge::on_grant(const Grant& grant) {
  refill_in_flight_ = false;
  if (grant.status != GrantStatus::kGranted) {
    ++stats_.refills_denied;
    return;
  }
  // The peer gateway's KMS hands over the same bits under the same key_id;
  // mirrored deposits are a property of the service, not of this process.
  const auto peer = kms_.get_key_with_id(client_, grant.key_id);
  if (!peer.has_value() || !(peer->bits == grant.bits))
    throw std::logic_error(
        "KmsIkeBridge: peer copy disagrees with the initiator grant");
  ++stats_.refills_granted;
  stats_.bits_delivered += grant.bits.size();
  initiator_supply_.deposit(grant.bits);
  peer_supply_.deposit(peer->bits);
}

}  // namespace qkd::kms
