// Scripted client populations for the KMS.
//
// KmsClientFleet is the sim::ClientWorkloadDriver the scenario engine talks
// to: a ClientArrival{count, qos, rate, bits} action registers `count`
// applications on the KMS and gives each a phase-staggered periodic
// get_key event; ClientDeparture cancels them (most recently arrived
// first) and deregisters. Granted keys are immediately claimed on the peer
// side through get_key_with_id, so every grant continuously exercises —
// and verifies — the cross-end key-ID agreement.
//
// Sharding: each member's ticker is armed on the stream that serves its
// endpoint pair (KeyManagementService::stream_for_pair), so request issue,
// grant delivery and the peer claim all run on the owning shard's lane.
// The fleet's own counters are kept per shard (a member touches only its
// shard's slot) and aggregated on read — no cross-lane mutable state.
//
// This is how a scripted day ramps thousands of clients up and down with a
// handful of scenario lines (see example_kms_day and bench_kms/E19).
#pragma once

#include <cstdint>
#include <vector>

#include "src/kms/kms.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::kms {

class KmsClientFleet final : public sim::ClientWorkloadDriver {
 public:
  struct Stats {
    std::uint64_t requests_issued = 0;
    std::uint64_t granted = 0;
    std::uint64_t rejected = 0;  // admission control
    std::uint64_t shed = 0;
    std::uint64_t departed = 0;
    /// Peer-side claims whose bits matched the initiator's grant — the
    /// end-to-end key-ID agreement check, counted per grant.
    std::uint64_t claims_matched = 0;
    std::uint64_t claims_mismatched = 0;
  };

  /// Both must outlive the fleet. `scheduler` is the stream arrivals and
  /// departures are scripted on (the global stream in sharded mode).
  KmsClientFleet(KeyManagementService& kms, sim::EventScheduler& scheduler);
  ~KmsClientFleet() override;

  // ---- sim::ClientWorkloadDriver ------------------------------------------
  void client_arrival(qkd::SimTime now,
                      const sim::ClientArrival& arrival) override;
  void client_departure(qkd::SimTime now,
                        const sim::ClientDeparture& departure) override;

  std::size_t active_clients() const { return active_; }
  /// Aggregated across shards; call with shard lanes parked.
  const Stats& stats() const;

 private:
  struct Member {
    ClientId id = 0;
    network::NodeId src = 0;
    network::NodeId dst = 0;
    unsigned qos = 0;
    /// The stream the ticker lives on (the member's shard's stream).
    sim::EventScheduler* stream = nullptr;
    std::size_t shard = 0;
    sim::EventScheduler::Handle ticker;
    bool active = false;
  };

  void issue_request(Member& member, std::size_t bits);

  KeyManagementService& kms_;
  sim::EventScheduler& scheduler_;
  std::vector<Member> members_;
  std::size_t active_ = 0;
  std::uint64_t arrivals_ = 0;  // names successive fleet members
  /// One slot per KMS shard: a member's callbacks write only its shard's
  /// slot, so shard lanes never contend.
  std::vector<Stats> shard_stats_;
  mutable Stats agg_stats_;
};

}  // namespace qkd::kms
