// The stage-decomposed QKD protocol pipeline.
//
// run_batch() used to be one monolith; it is now an ordered run of
// PipelineStage objects sharing a BatchContext. Gilbert & Hamrick
// (quant-ph/0106043) argue that the computational load and rate of *each*
// distillation stage must be measurable independently to assess
// practicality — so every stage is timed and its wire traffic attributed
// separately (BatchResult::stages), and stages can be reordered, swapped,
// or replaced wholesale via QkdLinkSession::set_pipeline().
//
// Default order (paper Fig. 9, left to right):
//   SiftingStage -> SamplingStage -> ErrorCorrectionStage -> VerifyStage
//     -> EntropyStage -> PrivacyAmplificationStage -> AuthReplenishStage
//
// A stage returns AbortReason::kNone to pass control to the next stage, or
// the reason the batch must be rejected; the runner stops at the first
// abort. The physical layer (one Qframe through the optics) runs before the
// pipeline and fills BatchContext::frame.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/qkd/engine.hpp"
#include "src/wire/packets.hpp"
#include "src/wire/transport.hpp"

namespace qkd::proto {

/// Outcome of shipping one control message end to end.
enum class ShipStatus {
  kOk,             // delivered and (where applicable) verified
  kAuthExhausted,  // no pad bits left to protect it
  kChannelLost,    // retransmission gave up on the classical channel
};

/// Per-frame working state threaded through the stages. Stages communicate
/// exclusively through this object: each consumes fields written by its
/// predecessors and writes its own outputs (plus accounting into `result`).
struct BatchContext {
  // Fixed for the batch (owned by the session).
  const QkdLinkConfig& config;
  qkd::crypto::Drbg& drbg;
  AuthenticationService& alice_auth;
  AuthenticationService& bob_auth;
  // Each side's end of the classical channel (Alice = side A). The
  // in-memory session hands in two ChannelTransports over one
  // PublicChannel; the same dialogue runs unchanged over TCP sockets in
  // the two-process peers.
  wire::Transport& alice_wire;
  wire::Transport& bob_wire;
  const qkd::optics::FrameResult& frame;
  std::uint64_t frame_id = 0;

  // Evolving key material. Sifting fills the bit strings; sampling shrinks
  // them; error correction mutates bob_bits in place; privacy amplification
  // consumes them into alice_key/bob_key.
  qkd::BitVector alice_bits;
  qkd::BitVector bob_bits;

  // Entropy-stage output: distillable bits net of the PA margin.
  double usable_bits = 0.0;

  // Privacy-amplification outputs (equal by construction after verify).
  qkd::BitVector alice_key;
  qkd::BitVector bob_key;

  // Accounting sink; also where the final key lands.
  BatchResult& result;

  /// Ships one typed packet from one side to the other as a real encoded
  /// frame over the transports, Wegman-Carter-protected (the packet's
  /// encoding is what gets authenticated), retransmitting through loss.
  /// Counts every frame actually put on the wire into `result`.
  template <typename Packet>
  ShipStatus ship(bool from_alice, const Packet& packet) {
    return ship_frame(from_alice, Packet::kType, packet.encode(),
                      /*authenticated=*/true);
  }

  /// The transport-level primitive behind ship(); `authenticated=false`
  /// frames travel bare (the parity dialogue, the abort notice).
  ShipStatus ship_frame(bool from_alice, wire::PacketType type,
                        const Bytes& packet_payload, bool authenticated);
};

/// One stage of the distillation pipeline.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;

  /// Stable identifier used in BatchResult::stages and the benches.
  virtual const char* name() const = 0;

  /// Runs the stage. Returning anything but kNone rejects the batch.
  virtual AbortReason run(BatchContext& ctx) = 0;
};

/// Bob announces detections; Alice replies with the compatible-basis
/// subset; both sides keep the sifted bits (Sec. 5).
class SiftingStage final : public PipelineStage {
 public:
  const char* name() const override { return "sifting"; }
  AbortReason run(BatchContext& ctx) override;
};

/// Sacrifices a random `sample_fraction` of the sifted bits to estimate the
/// error rate in the clear; early-aborts at intercept-resend QBER levels.
/// The sample positions are drawn with a partial Fisher-Yates shuffle over
/// indices — O(n) regardless of the fraction (the previous
/// rejection-sampling loop was O(n*target) expected and degenerated as the
/// fraction grew).
class SamplingStage final : public PipelineStage {
 public:
  const char* name() const override { return "sampling"; }
  AbortReason run(BatchContext& ctx) override;
};

/// Bob drives the configured corrector against Alice's parity oracle.
class ErrorCorrectionStage final : public PipelineStage {
 public:
  const char* name() const override { return "error-correction"; }
  AbortReason run(BatchContext& ctx) override;
};

/// Exchanges a hash of the corrected strings (IKE "has no mechanisms for
/// noticing" key disagreement, so the QKD stack must catch residual errors
/// here), then applies the canonical 11 % alarm on the exact error rate.
class VerifyStage final : public PipelineStage {
 public:
  const char* name() const override { return "verify"; }
  AbortReason run(BatchContext& ctx) override;
};

/// The Sec. 6 entropy estimate: how many bits survive Eve's knowledge.
class EntropyStage final : public PipelineStage {
 public:
  const char* name() const override { return "entropy"; }
  AbortReason run(BatchContext& ctx) override;
};

/// GF(2^n) linear-hash privacy amplification, chunked to the field-width
/// ladder (Sec. 5).
class PrivacyAmplificationStage final : public PipelineStage {
 public:
  const char* name() const override { return "privacy-amplification"; }
  AbortReason run(BatchContext& ctx) override;
};

/// Diverts the configured slice of distilled key into both endpoints'
/// Wegman-Carter pad pools and delivers the remainder (Sec. 5).
class AuthReplenishStage final : public PipelineStage {
 public:
  const char* name() const override { return "auth-replenish"; }
  AbortReason run(BatchContext& ctx) override;
};

/// The Fig. 9 default: all seven stages in protocol order.
std::vector<std::unique_ptr<PipelineStage>> default_pipeline();

}  // namespace qkd::proto
