// Sifting: winnowing the failed qubits (Section 5).
//
// After a frame, Bob tells Alice which slots produced a usable detection and
// which basis he measured each in (the SIFT message, run-length encoded).
// Alice replies with the subset of those detections where her transmission
// basis matched (the SIFT RESPONSE). Both sides then discard everything
// else, keeping only the sifted bits. "A transmitted stream of 1,000 bits
// therefore would boil down to about 5 sifted bits."
#pragma once

#include <cstdint>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"
#include "src/optics/types.hpp"

namespace qkd::proto {

/// Bob -> Alice: which slots registered a single click, and Bob's basis for
/// each detected slot (in detection order).
struct SiftMessage {
  std::uint64_t frame_id = 0;
  qkd::BitVector detected;    // one bit per slot
  qkd::BitVector bob_bases;   // one bit per *detected* slot, detection order

  Bytes serialize() const;
  static SiftMessage deserialize(const Bytes& wire);
};

/// Alice -> Bob: which detections survive the basis comparison (one bit per
/// detected slot, detection order).
struct SiftResponse {
  std::uint64_t frame_id = 0;
  qkd::BitVector keep;

  Bytes serialize() const;
  static SiftResponse deserialize(const Bytes& wire);
};

/// Outcome on either side: the sifted key bits plus, for ground-truth joins
/// (attack accounting, diagnostics), the original slot index of each bit.
struct SiftOutcome {
  qkd::BitVector bits;
  std::vector<std::uint32_t> slot_indices;
};

/// Bob's half: builds the SIFT message from his detection record.
SiftMessage make_sift_message(std::uint64_t frame_id,
                              const qkd::optics::DetectionRecord& bob);

/// Alice's half: compares bases, produces the response and her sifted bits.
struct AliceSiftResult {
  SiftResponse response;
  SiftOutcome outcome;
};
AliceSiftResult alice_sift(const qkd::optics::PulseTrainRecord& alice,
                           const SiftMessage& msg);

/// Bob's completion: applies Alice's response to his detections.
SiftOutcome bob_apply_response(const qkd::optics::DetectionRecord& bob,
                               const SiftMessage& msg,
                               const SiftResponse& response);

}  // namespace qkd::proto
