// Privacy amplification (Section 5).
//
// "The side that initiates privacy amplification chooses a linear hash
// function over the Galois Field GF[2^n] where n is the number of bits as
// input, rounded up to a multiple of 32. He then transmits four things to
// the other end — the number of bits m of the shortened result, the (sparse)
// primitive polynomial of the Galois field, a multiplier (n bits long), and
// an m-bit polynomial to add (i.e. a bit string to exclusive-or) with the
// product. Each side then performs the corresponding hash and truncates the
// result to m bits."
//
// h(x) = truncate_m(a * x  in GF(2^n))  XOR  v
// is a 2-universal family (for random a), so by the privacy-amplification
// theorem the output is within 2^-s of uniform given Eve's Renyi information
// bound from the entropy estimate.
#pragma once

#include <cstdint>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"
#include "src/crypto/drbg.hpp"
#include "src/crypto/gf2n.hpp"

namespace qkd::proto {

/// The four wire-announced parameters.
struct PaParams {
  std::uint32_t n = 0;                 // field width (multiple of 32)
  std::uint32_t m = 0;                 // output bits, m <= n
  qkd::crypto::SparsePoly modulus;     // sparse irreducible polynomial
  qkd::BitVector multiplier;           // n bits
  qkd::BitVector addend;               // m bits

  Bytes serialize() const;
  static PaParams deserialize(const Bytes& wire);
};

/// Rounds an input length up to the field width the paper prescribes.
inline std::uint32_t round_up_to_32(std::size_t bits) {
  return static_cast<std::uint32_t>((bits + 31) / 32 * 32);
}

/// Field widths with pre-validated low-weight irreducible polynomials.
/// make_pa_params picks the smallest ladder entry >= round_up_to_32(input):
/// zero-padding the input into a slightly wider field preserves
/// 2-universality and avoids an open-ended polynomial search for every
/// distinct batch size. The largest ladder width bounds a PA block; the
/// engine chunks longer inputs.
std::uint32_t pa_field_width(std::size_t input_bits);

/// Largest input a single PA block supports (== top of the ladder).
std::size_t pa_max_block_bits();

/// Initiator's choice of parameters for shrinking `input_bits` bits to
/// `output_bits` bits. Throws std::invalid_argument if output > input.
PaParams make_pa_params(std::size_t input_bits, std::size_t output_bits,
                        qkd::crypto::Drbg& drbg);

/// Applies the announced hash. Both sides call this with identical params;
/// equal inputs yield equal outputs (and unequal inputs almost surely don't).
qkd::BitVector privacy_amplify(const qkd::BitVector& input,
                               const PaParams& params);

}  // namespace qkd::proto
