// Estimation of Eve's knowledge (Section 6 and the Appendix).
//
// Privacy amplification needs an estimate of the eavesdropping-free entropy
// of the quantum channel. Inputs (paper's notation):
//   b  — number of received (sifted) bits
//   e  — number of errors found in the sifted bits
//   n  — total number of pulses transmitted
//   d  — parity bits disclosed during error correction
//   r  — non-randomness measure from randomness tests (placeholder in the
//        paper "until randomness testing is put into the system")
//
// Components:
//   * a defense function t(e) bounding Eve's information from error-inducing
//     (non-transparent) attacks — Bennett et al. [1] or Slutsky et al. [21];
//   * transparent-eavesdropping leakage from multi-photon pulses: for
//     weak-coherent links proportional to *transmitted* pulses times the
//     multi-photon probability (Brassard et al. [13]), for entangled links
//     proportional to *received* bits;
//   * the publicly disclosed d;
//   * the non-randomness r;
//   * a confidence margin: c standard deviations, deviations of the terms
//     combined at the end ("a parameter c = 5 means 5 standard deviations,
//     or about 10^-6 chance of successful eavesdropping").
//
// Resultant entropy (both estimates):
//   H = b - d - r - t_defense - t_multiphoton - c*sqrt(s_def^2 + s_multi^2)
//
// NOTE on formula provenance: the Appendix table is typographically damaged
// in the available text; the formulas below are reconstructed from the cited
// primary sources and checked against the recoverable fragments (DESIGN.md
// section 4 records the reconstruction).
#pragma once

#include <cstddef>

namespace qkd::proto {

enum class DefenseFunction { kBennett, kSlutsky };

enum class LinkKind { kWeakCoherent, kEntangled };

/// How the transparent (multi-photon) leakage term is charged for
/// weak-coherent links. Section 6 notes this "is not uniformly treated in
/// the QKD community":
///  * kTransmittedWorstCase — Brassard et al. [13]: leakage proportional to
///    transmitted pulses times P[N>=2]. At the paper's lossy operating point
///    (mu=0.1, ~25 dB effective loss) this exceeds the sifted bits: the
///    worst-case PNS bound yields ZERO distillable key, which is precisely
///    the pre-decoy-state vulnerability the paper cites as motivation for
///    entangled links. Bench E8 demonstrates it.
///  * kReceivedConditional — the practical 1992-2003 beamsplitting
///    accounting (Bennett et al. [2]): leakage proportional to received
///    bits times P[N>=2 | N>=1]. This is what a system that actually
///    delivered ~1000 bit/s (as the DARPA network did) must charge; it
///    underestimates an ideal PNS adversary, which our ground-truth attack
///    accounting makes visible.
enum class MultiPhotonPolicy { kReceivedConditional, kTransmittedWorstCase };

/// A defense-function evaluation: Eve's expected information gain in bits
/// plus one standard deviation of that estimate.
struct DefenseEstimate {
  double t = 0.0;
  double sigma = 0.0;
};

/// Bennett et al. [1,2]: t = 4e/sqrt(2) = 2*sqrt(2)*e, with standard
/// deviation sqrt((4 + 2*sqrt(2)) * e).
DefenseEstimate bennett_defense(std::size_t error_bits);

/// Slutsky et al. [21] defense frontier for BB84 individual attacks, per
/// sifted bit at error ratio e' = e/b:
///   t' = 1 + log2(1 - 0.5 * (max(1 - 3e', 0) / (1 - e'))^2)
/// saturating at t' = 1 for e' >= 1/3. Total t = b * t'. The deviation is
/// obtained by propagating the binomial deviation of e through dt/de.
DefenseEstimate slutsky_defense(std::size_t sifted_bits,
                                std::size_t error_bits);

/// Poisson multi-photon probability P[N >= 2] at mean photon number mu.
double multi_photon_probability(double mean_photon_number);

/// Conditional multi-photon probability P[N >= 2 | N >= 1] at mean mu.
double conditional_multi_photon_probability(double mean_photon_number);

struct EntropyInputs {
  std::size_t sifted_bits = 0;        // b
  std::size_t error_bits = 0;         // e
  std::size_t transmitted_pulses = 0; // n
  std::size_t disclosed_bits = 0;     // d
  double non_randomness = 0.0;        // r (placeholder, as in the paper)
  double mean_photon_number = 0.1;    // mu, for the transparent-leakage term
  double confidence = 5.0;            // c
  DefenseFunction defense = DefenseFunction::kSlutsky;
  LinkKind link_kind = LinkKind::kWeakCoherent;
  MultiPhotonPolicy multi_photon_policy = MultiPhotonPolicy::kReceivedConditional;
};

struct EntropyEstimate {
  DefenseEstimate defense;       // error-inducing attack term
  DefenseEstimate multi_photon;  // transparent-eavesdropping term
  double disclosed = 0.0;        // d
  double non_randomness = 0.0;   // r
  double margin = 0.0;           // c * combined sigma
  /// Distillable bits: max(0, b - d - r - t_def - t_multi - margin).
  double distillable_bits = 0.0;
};

/// Evaluates the full Section-6 entropy estimate.
EntropyEstimate estimate_entropy(const EntropyInputs& inputs);

}  // namespace qkd::proto
