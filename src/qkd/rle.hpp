// Run-length encoding for sifting messages.
//
// Appendix, "Sifting / Run-Length Encoding": "Encode the sifting messages,
// as sent between Bob and Alice, efficiently so that runs of identical
// values (and in particular of 'no detection' values) are compressed to take
// very little space." At the paper's operating point only ~0.3 % of slots
// produce a detection, so the detection bitmap is overwhelmingly zero runs.
//
// Wire format: varint count of bits, then alternating varint run lengths
// starting with the length of the initial 0-run (possibly zero if the bitmap
// starts with a 1).
#pragma once

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"

namespace qkd::proto {

/// Encodes a bitmap; worst case ~2 bytes per transition.
Bytes rle_encode(const qkd::BitVector& bits);

/// Decodes; throws std::invalid_argument on malformed input.
qkd::BitVector rle_decode(const Bytes& encoded);

/// Size in bytes of the naive (unencoded) bitmap, for the E9 comparison.
inline std::size_t raw_bitmap_bytes(std::size_t n_bits) {
  return (n_bits + 7) / 8;
}

}  // namespace qkd::proto
