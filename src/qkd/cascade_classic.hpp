// Classic Cascade (Brassard & Salvail [19]) — the baseline the paper's
// variant is measured against in the E5 ablation bench.
//
// Pass 1 splits a seeded pseudo-random permutation of the bits into blocks
// of size k1 ~ 0.73/QBER; each block's parity is compared and mismatching
// blocks are bisected to fix one error. Later passes double the block size
// under fresh permutations. The protocol's namesake effect: fixing an error
// in pass i flips the parity of the blocks containing that bit in earlier
// passes, whose (already known) parities now mismatch and can be searched
// again, each fix potentially cascading further corrections.
#pragma once

#include <cstdint>

#include "src/common/bitvector.hpp"
#include "src/qkd/ec.hpp"

namespace qkd::proto {

struct ClassicCascadeConfig {
  /// Number of passes; Brassard & Salvail found 4 sufficient in practice.
  unsigned passes = 4;
  /// Initial block size is chosen as ~ alpha / estimated QBER.
  double block_factor = 0.73;
  /// Clamp for pathological estimates.
  std::size_t min_block = 4;
  /// Permutation seeds are derived from this announced base.
  std::uint32_t seed_base = 0xCA5CADEu;
};

/// Corrects `bob_bits` in place against Alice's parity oracle.
/// `qber_estimate` sizes the first-pass blocks (from sacrificial sampling or
/// a prior batch); it only affects efficiency, not correctness.
EcStats classic_cascade_correct(qkd::BitVector& bob_bits, ParityOracle& alice,
                                double qber_estimate,
                                const ClassicCascadeConfig& config = {});

}  // namespace qkd::proto
