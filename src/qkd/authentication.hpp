// Ongoing authentication of key-management traffic (Section 5).
//
// "Authentication must be performed on an ongoing basis for all key
// management traffic, since Eve may insert herself into the conversation
// between Alice and Bob at any stage." Both directions carry Wegman-Carter
// tags keyed from a prepositioned shared secret; "a complete authenticated
// conversation can validate a large number of new, shared secret bits from
// QKD, and a small number of these may be used to replenish the pool."
//
// Framing: seq (u64) | payload | tag(tag_bits). Sequence numbers are per
// direction and strictly increasing, defeating replay and reflection.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"
#include "src/crypto/universal_hash.hpp"

namespace qkd::proto {

class AuthenticationService {
 public:
  struct Config {
    unsigned tag_bits = 64;
    unsigned max_message_bits = 1 << 16;
    /// Pad bits below which needs_replenishment() turns on.
    std::size_t low_water_bits = 1024;
  };

  struct Stats {
    std::size_t tagged = 0;
    std::size_t verified = 0;
    std::size_t rejected = 0;
    std::size_t stalls = 0;  // tag requests refused for lack of pad
  };

  /// Both endpoints construct from the same prepositioned secret; the
  /// initiator flag splits it into two direction-specific authenticators.
  AuthenticationService(Config config, const qkd::BitVector& shared_secret,
                        bool is_initiator);

  /// Bits of prepositioned secret a Config requires.
  static std::size_t required_secret_bits(const Config& config);

  /// Frames and tags an outbound message; nullopt when the pad pool is
  /// exhausted (the exhaustion DoS of Sec. 2).
  std::optional<Bytes> protect(const Bytes& message);

  /// Verifies an inbound frame; returns the payload, or nullopt on bad tag,
  /// replayed sequence number, or malformed frame.
  std::optional<Bytes> verify(const Bytes& framed);

  /// Feeds fresh distilled bits into both directions' pad pools.
  void replenish(const qkd::BitVector& bits);

  bool needs_replenishment() const;
  std::size_t pad_bits_available() const;
  std::size_t pad_bits_consumed() const;
  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  bool is_initiator_;
  qkd::crypto::WegmanCarterAuthenticator send_auth_;
  qkd::crypto::WegmanCarterAuthenticator recv_auth_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_expected_ = 0;
  Stats stats_;
};

}  // namespace qkd::proto
