// The paper's error-correction protocol: a novel variant of Cascade (Sec. 5).
//
// "Our version works by defining a number of subsets (currently 64) of the
// sifted bits and forming the parities of each subset. ... The subsets are
// pseudo-random bit strings, from a Linear-Feedback Shift Register (LFSR)
// and are identified by a 32-bit seed for the LFSR. Once an error bit has
// been found and fixed, both sides inspect their records of subsets and
// subranges, and flip the recorded parity of those that contained that bit.
// This will clear up some discrepancies but may introduce other new ones,
// and so the process continues."
//
// Bob drives: each round announces 64 fresh LFSR seeds, compares subset
// parities with Alice, and bisects every mismatching subset down to a single
// error bit. Fixing a bit updates the recorded parities of all subsets that
// contain it; newly-mismatching subsets are re-searched. Rounds repeat until
// one passes with no discrepancy (or the round limit trips). The protocol is
// adaptive exactly as the paper claims: at low error rates it discloses
// little beyond the 64 subset parities per round.
#pragma once

#include <cstdint>

#include "src/common/bitvector.hpp"
#include "src/qkd/ec.hpp"

namespace qkd::proto {

struct BbnCascadeConfig {
  /// Subsets announced per round. Paper: "currently 64".
  unsigned subsets_per_round = 64;
  /// Rounds with zero discrepancies required to declare convergence.
  unsigned clean_rounds_to_converge = 1;
  /// Hard cap on protocol rounds.
  unsigned max_rounds = 64;
  /// Base value from which per-round subset seeds are derived; both sides
  /// derive the same seeds from the announced value.
  std::uint32_t seed_base = 0x5eed0000u;
};

/// Runs the protocol: corrects `bob_bits` in place against Alice's string
/// (reachable only through `alice`, the parity oracle). Returns accounting.
EcStats bbn_cascade_correct(qkd::BitVector& bob_bits, ParityOracle& alice,
                            const BbnCascadeConfig& config = {});

}  // namespace qkd::proto
