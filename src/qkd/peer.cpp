#include "src/qkd/peer.hpp"

#include <algorithm>
#include <numeric>

#include "src/crypto/sha1.hpp"
#include "src/qkd/privacy.hpp"
#include "src/qkd/randomness.hpp"
#include "src/qkd/sifting.hpp"
#include "src/qkd/wire_link.hpp"

namespace qkd::proto {
namespace {

/// Same derivation as QkdLinkSession's: both peers are launched with one
/// shared seed, standing in for the couriered pre-QKD secret.
qkd::BitVector preposition_secret(std::uint64_t seed, std::size_t bits) {
  qkd::crypto::Drbg courier(seed ^ 0xC0931E5ULL);
  return courier.generate_bits(bits);
}

Bytes digest_bytes(const qkd::BitVector& bits) {
  const auto digest = qkd::crypto::Sha1::hash(bits.to_bytes());
  return Bytes(digest.begin(), digest.end());
}

/// One side's view of the conversation: its transport, its authentication
/// service, and the outcome being accounted into.
struct PeerIo {
  wire::Transport& io;
  AuthenticationService& auth;
  PeerOutcome& out;
};

template <typename Packet>
bool send_auth(PeerIo& p, const Packet& packet, bool counted = true) {
  const auto protected_payload = p.auth.protect(packet.encode());
  if (!protected_payload.has_value()) return false;
  const Bytes framed = wire::encode_frame(Packet::kType, *protected_payload);
  if (counted) {
    ++p.out.control_messages;
    p.out.control_bytes += framed.size();
  }
  return p.io.send_frame(framed);
}

std::optional<wire::Frame> recv_decoded(wire::Transport& io) {
  const auto raw = io.recv_frame();
  if (!raw.has_value()) return std::nullopt;
  const auto frame = wire::decode_frame(*raw);
  if (!frame.ok()) return std::nullopt;
  return frame.value;
}

/// Receives the next frame and expects it to be an authenticated Packet;
/// a bare kAbort frame instead reports the peer's abort reason through
/// `abort`. Anything else (timeout, tamper, wrong type) is kChannelLost.
template <typename Packet>
std::optional<Packet> recv_auth(PeerIo& p, AbortReason& abort) {
  abort = AbortReason::kChannelLost;
  const auto frame = recv_decoded(p.io);
  if (!frame.has_value()) return std::nullopt;
  if (frame->type == wire::PacketType::kAbort) {
    const auto notice = wire::AbortPacket::decode(frame->payload);
    if (notice.ok() && notice.value.reason < kAbortReasonCount)
      abort = static_cast<AbortReason>(notice.value.reason);
    return std::nullopt;
  }
  if (frame->type != Packet::kType) return std::nullopt;
  const auto payload = p.auth.verify(frame->payload);
  if (!payload.has_value()) return std::nullopt;
  const auto packet = Packet::decode(*payload);
  if (!packet.ok()) return std::nullopt;
  return packet.value;
}

/// Alice announces every shared-data abort with one bare frame (the same
/// convention the in-process engine follows), so both transcripts match.
PeerOutcome alice_abort(PeerIo& p, AbortReason reason) {
  wire::AbortPacket notice;
  notice.reason = static_cast<std::uint8_t>(reason);
  const Bytes framed = wire::to_frame(notice);
  p.io.send_frame(framed);
  ++p.out.control_messages;
  p.out.control_bytes += framed.size();
  p.out.reason = reason;
  return p.out;
}

/// Bob's side of the same convention: he concluded `reason` from shared
/// data and consumes Alice's abort notice (uncounted — she sent it).
PeerOutcome bob_abort(PeerIo& p, AbortReason reason) {
  const auto frame = recv_decoded(p.io);
  if (frame.has_value() && frame->type == wire::PacketType::kAbort) {
    const auto notice = wire::AbortPacket::decode(frame->payload);
    if (notice.ok() && notice.value.reason < kAbortReasonCount)
      reason = static_cast<AbortReason>(notice.value.reason);
  }
  p.out.reason = reason;
  return p.out;
}

PeerOutcome local_abort(PeerIo& p, AbortReason reason) {
  p.out.reason = reason;
  return p.out;
}

/// The sample-position draw both sides make from their DRBG lockstep —
/// byte-for-byte the SamplingStage draw.
qkd::BitVector draw_sample_mask(std::size_t n, std::size_t sample_target,
                                qkd::crypto::Drbg& drbg) {
  std::vector<std::uint32_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0u);
  for (std::size_t i = 0; i < sample_target; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(drbg.next_u64() % (n - i));
    std::swap(positions[i], positions[j]);
  }
  qkd::BitVector mask(n);
  for (std::size_t i = 0; i < sample_target; ++i)
    mask.set(positions[i], true);
  return mask;
}

std::size_t sample_target_for(const QkdLinkConfig& config, std::size_t n) {
  return static_cast<std::size_t>(config.sample_fraction *
                                  static_cast<double>(n));
}

void split_by_mask(const qkd::BitVector& bits, const qkd::BitVector& mask,
                   qkd::BitVector& sampled, qkd::BitVector& kept) {
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (mask.get(i)) {
      sampled.push_back(bits.get(i));
    } else {
      kept.push_back(bits.get(i));
    }
  }
}

double entropy_usable_bits(const QkdLinkConfig& config,
                           const qkd::BitVector& corrected_bits,
                           std::size_t errors, std::size_t disclosed) {
  EntropyInputs inputs;
  inputs.sifted_bits = corrected_bits.size();
  inputs.error_bits = errors;
  inputs.transmitted_pulses = config.frame_slots;
  inputs.disclosed_bits = disclosed;
  inputs.non_randomness =
      config.run_randomness_tests
          ? test_randomness(corrected_bits).non_randomness_bits
          : 0.0;
  inputs.mean_photon_number = config.link.mean_photon_number;
  inputs.confidence = config.confidence;
  inputs.defense = config.defense;
  inputs.link_kind = config.link_kind;
  inputs.multi_photon_policy = config.multi_photon_policy;
  return estimate_entropy(inputs).distillable_bits -
         static_cast<double>(config.pa_margin_bits);
}

/// The PA chunk walk (identical arithmetic to PrivacyAmplificationStage);
/// calls `announce` per chunk with the locally-derived params and returns
/// false if the announcement/verification step failed.
template <typename Announce>
bool amplify_chunks(const QkdLinkConfig&, const qkd::BitVector& bits,
                    double usable_bits, qkd::crypto::Drbg& drbg,
                    qkd::BitVector& key, const Announce& announce) {
  const std::size_t m_total = static_cast<std::size_t>(usable_bits);
  const std::size_t total_in = bits.size();
  const std::size_t chunk_max = pa_max_block_bits();
  std::size_t offset = 0;
  std::size_t m_emitted = 0;
  while (offset < total_in) {
    const std::size_t chunk = std::min(chunk_max, total_in - offset);
    const std::size_t m_target =
        static_cast<std::size_t>(static_cast<double>(m_total) *
                                 static_cast<double>(offset + chunk) /
                                 static_cast<double>(total_in));
    const std::size_t m_chunk = std::min(m_target - m_emitted, chunk);
    if (m_chunk > 0) {
      const PaParams pa = make_pa_params(chunk, m_chunk, drbg);
      if (!announce(pa)) return false;
      key.append(privacy_amplify(bits.slice(offset, chunk), pa));
      m_emitted += m_chunk;
    }
    offset += chunk;
  }
  return true;
}

wire::PaParamsPacket to_pa_packet(const PaParams& pa) {
  wire::PaParamsPacket packet;
  packet.n = pa.n;
  packet.m = pa.m;
  packet.modulus_exponents.assign(pa.modulus.exponents.begin(),
                                  pa.modulus.exponents.end());
  packet.multiplier = pa.multiplier;
  packet.addend = pa.addend;
  return packet;
}

qkd::BitVector replenish_and_trim(const QkdLinkConfig& config,
                                  AuthenticationService& auth,
                                  qkd::BitVector key) {
  const std::size_t replenish =
      std::min(config.auth_replenish_bits, key.size());
  if (replenish > 0) {
    auth.replenish(key.slice(key.size() - replenish, replenish));
    key.resize(key.size() - replenish);
  }
  return key;
}

/// The closing handshake: exchange authenticated KeyDigest frames
/// (uncounted harness traffic) and confirm both sides distilled the same
/// bytes.
bool exchange_key_digest(PeerIo& p, std::uint64_t frame_id,
                         const qkd::BitVector& key) {
  wire::KeyDigest mine;
  mine.frame_id = frame_id;
  mine.key_bits = key.size();
  mine.digest = digest_bytes(key);
  if (!send_auth(p, mine, /*counted=*/false)) return false;
  AbortReason ignored;
  const auto theirs = recv_auth<wire::KeyDigest>(p, ignored);
  return theirs.has_value() && theirs->key_bits == mine.key_bits &&
         theirs->digest == mine.digest;
}

}  // namespace

AlicePeer::AlicePeer(QkdLinkConfig config, std::uint64_t seed)
    : config_(config),
      link_(config.link, seed),
      drbg_(seed ^ 0xD15711ULL),
      auth_(config.auth,
            preposition_secret(seed,
                               AuthenticationService::required_secret_bits(
                                   config.auth) +
                                   config.preposition_extra_bits),
            /*is_initiator=*/true) {}

AlicePeer::~AlicePeer() = default;

PeerOutcome AlicePeer::run_batch(wire::Transport& io) {
  PeerOutcome out;
  out.frame_id = next_frame_id_++;
  PeerIo p{io, auth_, out};

  // ---- Quantum channel (simulated here, fed to Bob; uncounted). -----------
  const auto frame = link_.run_frame(config_.frame_slots, nullptr);
  wire::QframeFeed feed;
  feed.frame_id = out.frame_id;
  feed.detected = frame.bob.detected;
  feed.bases = frame.bob.bases;
  feed.bits = frame.bob.bits;
  if (!io.send_frame(wire::to_frame(feed)))
    return local_abort(p, AbortReason::kChannelLost);

  // ---- Sifting. -----------------------------------------------------------
  AbortReason peer_reason = AbortReason::kChannelLost;
  const auto announce = recv_auth<wire::SiftAnnounce>(p, peer_reason);
  if (!announce.has_value()) return local_abort(p, peer_reason);
  SiftMessage sift_msg;
  sift_msg.frame_id = announce->frame_id;
  sift_msg.detected = announce->detected;
  sift_msg.bob_bases = announce->bob_bases;
  AliceSiftResult sifted = alice_sift(frame.alice, sift_msg);
  wire::SiftDecision decision;
  decision.frame_id = sifted.response.frame_id;
  decision.keep = sifted.response.keep;
  if (!send_auth(p, decision))
    return local_abort(p, AbortReason::kAuthExhausted);
  qkd::BitVector bits = std::move(sifted.outcome.bits);
  out.sifted_bits = bits.size();
  if (bits.empty()) return alice_abort(p, AbortReason::kNoSiftedBits);

  // ---- Sampling. ----------------------------------------------------------
  const std::size_t n = bits.size();
  const std::size_t sample_target = sample_target_for(config_, n);
  if (sample_target > 0) {
    const qkd::BitVector mask = draw_sample_mask(n, sample_target, drbg_);
    wire::SampleReveal mine;
    mine.frame_id = out.frame_id;
    qkd::BitVector kept;
    split_by_mask(bits, mask, mine.bits, kept);
    if (!send_auth(p, mine)) return local_abort(p, AbortReason::kAuthExhausted);
    const auto theirs = recv_auth<wire::SampleReveal>(p, peer_reason);
    if (!theirs.has_value()) return local_abort(p, peer_reason);
    if (theirs->bits.size() != mine.bits.size())
      return local_abort(p, AbortReason::kChannelLost);
    out.qber_sampled =
        static_cast<double>(mine.bits.hamming_distance(theirs->bits)) /
        static_cast<double>(sample_target);
    bits = std::move(kept);
    if (out.qber_sampled > config_.early_abort_qber)
      return alice_abort(p, AbortReason::kQberTooHigh);
  }
  if (bits.empty()) return alice_abort(p, AbortReason::kNoSiftedBits);

  // ---- Error correction: serve Bob's parity dialogue. ---------------------
  drbg_.next_u32();  // burn the EC seed draw, staying in DRBG lockstep
  WireParityServer server(bits);
  wire::EcSummary summary;
  for (;;) {
    const auto ec_frame = recv_decoded(io);
    if (!ec_frame.has_value()) return local_abort(p, AbortReason::kChannelLost);
    if (ec_frame->type == wire::PacketType::kParityRequest) {
      server.serve_frame(io, *ec_frame);
      continue;
    }
    if (ec_frame->type == wire::PacketType::kAbort)
      return bob_abort(p, AbortReason::kChannelLost);
    if (ec_frame->type != wire::PacketType::kEcSummary)
      return local_abort(p, AbortReason::kChannelLost);
    const auto payload = auth_.verify(ec_frame->payload);
    if (!payload.has_value()) return local_abort(p, AbortReason::kChannelLost);
    const auto decoded = wire::EcSummary::decode(*payload);
    if (!decoded.ok()) return local_abort(p, AbortReason::kChannelLost);
    summary = decoded.value;
    break;
  }
  out.control_messages += server.traffic().messages;
  out.control_bytes += server.traffic().bytes;
  out.errors_corrected = summary.corrections;
  if (config_.ec_strategy != EcStrategy::kNaiveParity && !summary.converged)
    return alice_abort(p, AbortReason::kEcNotConverged);

  // ---- Verify. ------------------------------------------------------------
  wire::VerifyHash mine_hash;
  mine_hash.frame_id = out.frame_id;
  mine_hash.digest = digest_bytes(bits);
  if (!send_auth(p, mine_hash))
    return local_abort(p, AbortReason::kAuthExhausted);
  const auto bob_hash = recv_auth<wire::VerifyHash>(p, peer_reason);
  if (!bob_hash.has_value()) return local_abort(p, peer_reason);
  if (bob_hash->digest != mine_hash.digest)
    return alice_abort(p, AbortReason::kVerifyFailed);
  const double qber_exact = static_cast<double>(summary.corrections) /
                            static_cast<double>(bits.size());
  if (qber_exact > config_.qber_abort_threshold)
    return alice_abort(p, AbortReason::kQberTooHigh);

  // ---- Entropy. -----------------------------------------------------------
  const double usable = entropy_usable_bits(config_, bits, summary.corrections,
                                            server.disclosed());
  if (usable < 1.0) return alice_abort(p, AbortReason::kEntropyExhausted);

  // ---- Privacy amplification (Alice announces the parameters). ------------
  qkd::BitVector key;
  const bool announced =
      amplify_chunks(config_, bits, usable, drbg_, key, [&](const PaParams& pa) {
        return send_auth(p, to_pa_packet(pa));
      });
  if (!announced) return local_abort(p, AbortReason::kAuthExhausted);

  // ---- Replenish + deliver. -----------------------------------------------
  out.key = replenish_and_trim(config_, auth_, std::move(key));
  out.accepted = true;
  out.reason = AbortReason::kNone;
  out.digest_matched = exchange_key_digest(p, out.frame_id, out.key);
  return out;
}

BobPeer::BobPeer(QkdLinkConfig config, std::uint64_t seed)
    : config_(config),
      drbg_(seed ^ 0xD15711ULL),
      auth_(config.auth,
            preposition_secret(seed,
                               AuthenticationService::required_secret_bits(
                                   config.auth) +
                                   config.preposition_extra_bits),
            /*is_initiator=*/false) {}

BobPeer::~BobPeer() = default;

PeerOutcome BobPeer::run_batch(wire::Transport& io) {
  PeerOutcome out;
  out.frame_id = next_frame_id_++;
  PeerIo p{io, auth_, out};

  // ---- Quantum channel: receive this batch's detections. ------------------
  const auto feed_frame = recv_decoded(io);
  if (!feed_frame.has_value() ||
      feed_frame->type != wire::PacketType::kQframeFeed)
    return local_abort(p, AbortReason::kChannelLost);
  const auto feed = wire::QframeFeed::decode(feed_frame->payload);
  if (!feed.ok()) return local_abort(p, AbortReason::kChannelLost);
  qkd::optics::DetectionRecord detections;
  detections.detected = feed.value.detected;
  detections.bases = feed.value.bases;
  detections.bits = feed.value.bits;

  // ---- Sifting. -----------------------------------------------------------
  const SiftMessage sift_msg = make_sift_message(out.frame_id, detections);
  wire::SiftAnnounce announce;
  announce.frame_id = sift_msg.frame_id;
  announce.detected = sift_msg.detected;
  announce.bob_bases = sift_msg.bob_bases;
  if (!send_auth(p, announce))
    return local_abort(p, AbortReason::kAuthExhausted);
  AbortReason peer_reason = AbortReason::kChannelLost;
  const auto decision = recv_auth<wire::SiftDecision>(p, peer_reason);
  if (!decision.has_value()) return local_abort(p, peer_reason);
  SiftResponse response;
  response.frame_id = decision->frame_id;
  response.keep = decision->keep;
  SiftOutcome outcome = bob_apply_response(detections, sift_msg, response);
  qkd::BitVector bits = std::move(outcome.bits);
  out.sifted_bits = bits.size();
  if (bits.empty()) return bob_abort(p, AbortReason::kNoSiftedBits);

  // ---- Sampling. ----------------------------------------------------------
  const std::size_t n = bits.size();
  const std::size_t sample_target = sample_target_for(config_, n);
  if (sample_target > 0) {
    const qkd::BitVector mask = draw_sample_mask(n, sample_target, drbg_);
    wire::SampleReveal mine;
    mine.frame_id = out.frame_id;
    qkd::BitVector kept;
    split_by_mask(bits, mask, mine.bits, kept);
    const auto theirs = recv_auth<wire::SampleReveal>(p, peer_reason);
    if (!theirs.has_value()) return local_abort(p, peer_reason);
    if (theirs->bits.size() != mine.bits.size())
      return local_abort(p, AbortReason::kChannelLost);
    if (!send_auth(p, mine)) return local_abort(p, AbortReason::kAuthExhausted);
    out.qber_sampled =
        static_cast<double>(mine.bits.hamming_distance(theirs->bits)) /
        static_cast<double>(sample_target);
    bits = std::move(kept);
    if (out.qber_sampled > config_.early_abort_qber)
      return bob_abort(p, AbortReason::kQberTooHigh);
  }
  if (bits.empty()) return bob_abort(p, AbortReason::kNoSiftedBits);

  // ---- Error correction: drive the corrector over the wire. ---------------
  WireParityClient client(io);
  EcStats ec;
  try {
    switch (config_.ec_strategy) {
      case EcStrategy::kBbnCascade: {
        BbnCascadeConfig cfg = config_.bbn_config;
        cfg.seed_base = static_cast<std::uint32_t>(drbg_.next_u32());
        ec = bbn_cascade_correct(bits, client, cfg);
        break;
      }
      case EcStrategy::kClassicCascade: {
        ClassicCascadeConfig cfg = config_.classic_config;
        cfg.seed_base = static_cast<std::uint32_t>(drbg_.next_u32());
        ec = classic_cascade_correct(bits, client,
                                     std::max(out.qber_sampled, 0.01), cfg);
        break;
      }
      case EcStrategy::kNaiveParity: {
        NaiveParityConfig cfg = config_.naive_config;
        cfg.perm_seed = static_cast<std::uint32_t>(drbg_.next_u32());
        ec = naive_parity_correct(bits, client, cfg);
        break;
      }
    }
  } catch (const ChannelLostError&) {
    out.control_messages += client.traffic().messages;
    out.control_bytes += client.traffic().bytes;
    return local_abort(p, AbortReason::kChannelLost);
  }
  out.control_messages += client.traffic().messages;
  out.control_bytes += client.traffic().bytes;
  out.errors_corrected = ec.corrections;
  wire::EcSummary summary;
  summary.corrections = static_cast<std::uint32_t>(ec.corrections);
  summary.converged = ec.converged;
  if (!send_auth(p, summary))
    return local_abort(p, AbortReason::kAuthExhausted);
  if (config_.ec_strategy != EcStrategy::kNaiveParity && !ec.converged)
    return bob_abort(p, AbortReason::kEcNotConverged);

  // ---- Verify. ------------------------------------------------------------
  const auto alice_hash = recv_auth<wire::VerifyHash>(p, peer_reason);
  if (!alice_hash.has_value()) return local_abort(p, peer_reason);
  wire::VerifyHash mine_hash;
  mine_hash.frame_id = out.frame_id;
  mine_hash.digest = digest_bytes(bits);
  if (!send_auth(p, mine_hash))
    return local_abort(p, AbortReason::kAuthExhausted);
  if (alice_hash->digest != mine_hash.digest)
    return bob_abort(p, AbortReason::kVerifyFailed);
  const double qber_exact = static_cast<double>(ec.corrections) /
                            static_cast<double>(bits.size());
  if (qber_exact > config_.qber_abort_threshold)
    return bob_abort(p, AbortReason::kQberTooHigh);

  // ---- Entropy (Bob's disclosed count == his distinct queries). -----------
  const double usable = entropy_usable_bits(config_, bits, ec.corrections,
                                            client.queries());
  if (usable < 1.0) return bob_abort(p, AbortReason::kEntropyExhausted);

  // ---- Privacy amplification (verify Alice's announcement matches the
  // locally-derived parameters — any divergence means the DRBG lockstep or
  // the wire is compromised). -----------------------------------------------
  qkd::BitVector key;
  bool lockstep_ok = true;
  const bool announced =
      amplify_chunks(config_, bits, usable, drbg_, key, [&](const PaParams& pa) {
        const auto packet = recv_auth<wire::PaParamsPacket>(p, peer_reason);
        if (!packet.has_value()) return false;
        lockstep_ok = *packet == to_pa_packet(pa);
        return lockstep_ok;
      });
  if (!announced)
    return local_abort(p, lockstep_ok ? peer_reason
                                      : AbortReason::kVerifyFailed);

  // ---- Replenish + deliver. -----------------------------------------------
  out.key = replenish_and_trim(config_, auth_, std::move(key));
  out.accepted = true;
  out.reason = AbortReason::kNone;
  out.digest_matched = exchange_key_digest(p, out.frame_id, out.key);
  return out;
}

}  // namespace qkd::proto
