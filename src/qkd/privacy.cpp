#include "src/qkd/privacy.hpp"

#include <stdexcept>

namespace qkd::proto {

Bytes PaParams::serialize() const {
  Bytes out;
  put_u32(out, n);
  put_u32(out, m);
  put_u8(out, static_cast<std::uint8_t>(modulus.exponents.size()));
  for (unsigned e : modulus.exponents) put_u32(out, e);
  put_bytes(out, multiplier.to_bytes());
  put_bytes(out, addend.to_bytes());
  return out;
}

PaParams PaParams::deserialize(const Bytes& wire) {
  try {
    ByteReader reader(wire);
    PaParams p;
    p.n = reader.u32();
    p.m = reader.u32();
    if (p.n == 0 || p.n % 32 != 0 || p.m > p.n)
      throw std::invalid_argument("PaParams: bad field/output widths");
    const std::uint8_t terms = reader.u8();
    for (unsigned i = 0; i < terms; ++i)
      p.modulus.exponents.push_back(reader.u32());
    if (p.modulus.degree() != p.n)
      throw std::invalid_argument("PaParams: modulus degree != n");
    p.multiplier = qkd::BitVector::from_bytes(reader.bytes((p.n + 7) / 8));
    p.multiplier.resize(p.n);
    p.addend = qkd::BitVector::from_bytes(reader.bytes((p.m + 7) / 8));
    p.addend.resize(p.m);
    if (!reader.done()) throw std::invalid_argument("PaParams: trailing bytes");
    return p;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("PaParams: truncated");
  }
}

namespace {
// Widths whose low-weight irreducible polynomials are pinned in the
// qkd::crypto table (verified by crypto tests).
constexpr std::uint32_t kWidthLadder[] = {32,  64,   96,   128,  192, 256,
                                          384, 512,  768,  1024, 1536, 2048,
                                          3072, 4096};
}  // namespace

std::uint32_t pa_field_width(std::size_t input_bits) {
  const std::uint32_t needed = std::max(round_up_to_32(input_bits), 32u);
  for (std::uint32_t w : kWidthLadder)
    if (w >= needed) return w;
  throw std::invalid_argument("pa_field_width: input exceeds ladder maximum");
}

std::size_t pa_max_block_bits() {
  return kWidthLadder[std::size(kWidthLadder) - 1];
}

PaParams make_pa_params(std::size_t input_bits, std::size_t output_bits,
                        qkd::crypto::Drbg& drbg) {
  if (output_bits > input_bits)
    throw std::invalid_argument("make_pa_params: output exceeds input");
  if (input_bits == 0)
    throw std::invalid_argument("make_pa_params: empty input");
  PaParams p;
  p.n = pa_field_width(input_bits);
  p.m = static_cast<std::uint32_t>(output_bits);
  p.modulus = qkd::crypto::irreducible_poly(p.n);
  p.multiplier = drbg.generate_bits(p.n);
  p.addend = drbg.generate_bits(p.m);
  return p;
}

qkd::BitVector privacy_amplify(const qkd::BitVector& input,
                               const PaParams& params) {
  if (input.size() > params.n)
    throw std::invalid_argument("privacy_amplify: input wider than field");
  const qkd::crypto::Gf2Field field(params.n, params.modulus);
  qkd::BitVector x = input;
  x.resize(params.n);  // zero-pad up to the field width
  qkd::BitVector product = field.multiply(params.multiplier, x);
  product.resize(params.m);  // truncate to m bits
  product ^= params.addend;
  return product;
}

}  // namespace qkd::proto
