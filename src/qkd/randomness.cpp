#include "src/qkd/randomness.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace qkd::proto {
namespace {

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

}  // namespace

RandomnessReport test_randomness(const qkd::BitVector& bits) {
  RandomnessReport report;
  const std::size_t n = bits.size();
  if (n < 64) return report;

  // --- Monobit: ones count vs. Binomial(n, 1/2). ---------------------------
  const std::size_t ones = bits.popcount();
  const double mean = static_cast<double>(n) / 2.0;
  const double sigma = std::sqrt(static_cast<double>(n)) / 2.0;
  report.monobit_sigma = std::abs(static_cast<double>(ones) - mean) / sigma;

  // --- Longest run of identical bits. --------------------------------------
  std::size_t run = 1;
  for (std::size_t i = 1; i < n; ++i) {
    if (bits.get(i) == bits.get(i - 1)) {
      ++run;
    } else {
      report.longest_run = std::max(report.longest_run, run);
      run = 1;
    }
  }
  report.longest_run = std::max(report.longest_run, run);

  // --- Poker test: chi-square over 4-bit block frequencies. ----------------
  std::array<std::size_t, 16> counts{};
  const std::size_t blocks = n / 4;
  for (std::size_t b = 0; b < blocks; ++b) {
    unsigned value = 0;
    for (unsigned j = 0; j < 4; ++j)
      value = value << 1 | static_cast<unsigned>(bits.get(4 * b + j));
    ++counts[value];
  }
  const double expected = static_cast<double>(blocks) / 16.0;
  for (std::size_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    report.poker_chi2 += diff * diff / expected;
  }

  // --- Acceptance bands and the shortening measure. -------------------------
  // Monobit: 4.5 sigma two-sided (~7e-6 false alarm). Longest run: a fair
  // string of length n has runs ~ log2(n) + few; flag at log2(n) + 10.
  // Poker: chi-square with 15 dof, mean 15, sd sqrt(30); flag at +6 sd.
  const bool monobit_ok = report.monobit_sigma < 4.5;
  const bool run_ok =
      static_cast<double>(report.longest_run) <
      std::log2(static_cast<double>(n)) + 10.0;
  const bool poker_ok = report.poker_chi2 < 15.0 + 6.0 * std::sqrt(30.0);
  report.passed = monobit_ok && run_ok && poker_ok;

  if (!monobit_ok) {
    // Min-entropy shortfall of an i.i.d. biased source with the observed
    // ones fraction: n * (1 - h2(p)).
    const double p = static_cast<double>(ones) / static_cast<double>(n);
    report.non_randomness_bits +=
        static_cast<double>(n) * (1.0 - binary_entropy(p));
  }
  // Structural failures are charged a flat penalty: the tests detect the
  // defect but cannot bound it tightly, so shorten aggressively (n/8 each).
  if (!run_ok) report.non_randomness_bits += static_cast<double>(n) / 8.0;
  if (!poker_ok) report.non_randomness_bits += static_cast<double>(n) / 8.0;
  report.non_randomness_bits =
      std::min(report.non_randomness_bits, static_cast<double>(n));
  return report;
}

}  // namespace qkd::proto
