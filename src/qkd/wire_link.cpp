#include "src/qkd/wire_link.hpp"

namespace qkd::proto {
namespace {

ParityQuery to_query(const wire::ParityRequest& request) {
  ParityQuery query;
  query.kind = static_cast<ParityQuery::Kind>(request.kind);
  query.seed = request.seed;
  query.begin = request.begin;
  query.end = request.end;
  return query;
}

wire::ParityRequest to_request(const ParityQuery& query) {
  wire::ParityRequest request;
  request.kind = static_cast<std::uint8_t>(query.kind);
  request.seed = query.seed;
  request.begin = query.begin;
  request.end = query.end;
  return request;
}

}  // namespace

bool WireParityServer::serve_one(wire::Transport& io) {
  const auto raw = io.recv_frame();
  if (!raw.has_value()) return false;
  const auto frame = wire::decode_frame(*raw);
  if (!frame.ok()) return false;
  return serve_frame(io, frame.value);
}

bool WireParityServer::serve_frame(wire::Transport& io,
                                   const wire::Frame& frame) {
  if (frame.type != wire::PacketType::kParityRequest) return false;
  const auto request = wire::ParityRequest::decode(frame.payload);
  if (!request.ok()) return false;

  const ParityQuery query = to_query(request.value);
  // A retransmitted duplicate re-answers from cache: the same parity bit
  // said twice is one disclosure, not two.
  if (!(last_query_.has_value() && *last_query_ == query)) {
    last_parity_ = oracle_.parity(query);
    last_query_ = query;
  }

  wire::ParityResponse response;
  response.parity = last_parity_;
  const Bytes framed = wire::to_frame(response);
  io.send_frame(framed);
  ++traffic_.messages;
  traffic_.bytes += framed.size();
  return true;
}

bool WireParityClient::parity(const ParityQuery& query) {
  ++queries_;
  const Bytes framed = wire::to_frame(to_request(query));
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    io_.send_frame(framed);
    ++traffic_.messages;
    traffic_.bytes += framed.size();
    if (pump_) pump_();
    const auto raw = io_.recv_frame();
    if (!raw.has_value()) continue;  // lost in either direction
    const auto frame = wire::decode_frame(*raw);
    if (!frame.ok() || frame.value.type != wire::PacketType::kParityResponse)
      continue;  // corrupted: retransmit, verify will audit the result
    const auto response = wire::ParityResponse::decode(frame.value.payload);
    if (!response.ok()) continue;
    return response.value.parity;
  }
  throw ChannelLostError();
}

}  // namespace qkd::proto
