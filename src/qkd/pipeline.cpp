#include "src/qkd/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "src/crypto/sha1.hpp"
#include "src/qkd/privacy.hpp"
#include "src/qkd/randomness.hpp"
#include "src/qkd/sifting.hpp"

namespace qkd::proto {

bool BatchContext::ship(AuthenticationService& sender,
                        AuthenticationService& receiver, const Bytes& payload) {
  const auto framed = sender.protect(payload);
  if (!framed.has_value()) return false;
  ++result.control_messages;
  result.control_bytes += framed->size();
  const auto verified = receiver.verify(*framed);
  return verified.has_value() && *verified == payload;
}

AbortReason SiftingStage::run(BatchContext& ctx) {
  // Bob announces detections; Alice replies with the basis matches.
  const SiftMessage sift_msg = make_sift_message(ctx.frame_id, ctx.frame.bob);
  if (!ctx.ship(ctx.bob_auth, ctx.alice_auth, sift_msg.serialize()))
    return AbortReason::kAuthExhausted;
  AliceSiftResult alice_sifted = alice_sift(ctx.frame.alice, sift_msg);
  if (!ctx.ship(ctx.alice_auth, ctx.bob_auth,
                alice_sifted.response.serialize()))
    return AbortReason::kAuthExhausted;
  SiftOutcome bob_sifted =
      bob_apply_response(ctx.frame.bob, sift_msg, alice_sifted.response);

  ctx.alice_bits = std::move(alice_sifted.outcome.bits);
  ctx.bob_bits = std::move(bob_sifted.bits);
  ctx.result.sifted_bits = ctx.alice_bits.size();
  if (ctx.alice_bits.empty()) return AbortReason::kNoSiftedBits;

  // Ground truth for attack accounting: sifted-slot join with Eve's record.
  ctx.result.qber_actual =
      static_cast<double>(ctx.alice_bits.hamming_distance(ctx.bob_bits)) /
      static_cast<double>(ctx.alice_bits.size());
  for (std::uint32_t slot : alice_sifted.outcome.slot_indices)
    if (ctx.frame.eve.known.get(slot)) ++ctx.result.eve_known_sifted;
  return AbortReason::kNone;
}

AbortReason SamplingStage::run(BatchContext& ctx) {
  // The sample positions derive from the shared DRBG (announced on the wire
  // in the real system); the sampled bits are exchanged in clear and dropped.
  const std::size_t n = ctx.alice_bits.size();
  const std::size_t sample_target = static_cast<std::size_t>(
      ctx.config.sample_fraction * static_cast<double>(n));
  if (sample_target > 0) {
    // Partial Fisher-Yates: after `sample_target` swap steps the prefix
    // holds a uniform without-replacement draw of the positions.
    std::vector<std::uint32_t> positions(n);
    std::iota(positions.begin(), positions.end(), 0u);
    for (std::size_t i = 0; i < sample_target; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(ctx.drbg.next_u64() % (n - i));
      std::swap(positions[i], positions[j]);
    }
    qkd::BitVector sample_mask(n);
    for (std::size_t i = 0; i < sample_target; ++i)
      sample_mask.set(positions[i], true);

    std::size_t sample_errors = 0;
    qkd::BitVector alice_keep, bob_keep;
    Bytes sample_exchange;  // the revealed bits, for wire accounting
    for (std::size_t i = 0; i < n; ++i) {
      if (sample_mask.get(i)) {
        sample_errors += ctx.alice_bits.get(i) != ctx.bob_bits.get(i);
        sample_exchange.push_back(static_cast<std::uint8_t>(
            ctx.alice_bits.get(i) << 1 |
            static_cast<int>(ctx.bob_bits.get(i))));
      } else {
        alice_keep.push_back(ctx.alice_bits.get(i));
        bob_keep.push_back(ctx.bob_bits.get(i));
      }
    }
    ctx.result.sampled_bits = sample_target;
    ctx.result.qber_sampled = static_cast<double>(sample_errors) /
                              static_cast<double>(sample_target);
    if (!ctx.ship(ctx.bob_auth, ctx.alice_auth, sample_exchange))
      return AbortReason::kAuthExhausted;
    ctx.alice_bits = std::move(alice_keep);
    ctx.bob_bits = std::move(bob_keep);

    if (ctx.result.qber_sampled > ctx.config.early_abort_qber)
      return AbortReason::kQberTooHigh;
  }
  if (ctx.alice_bits.empty()) return AbortReason::kNoSiftedBits;
  return AbortReason::kNone;
}

AbortReason ErrorCorrectionStage::run(BatchContext& ctx) {
  // Bob drives; Alice answers parity queries.
  LocalParityOracle alice_oracle(ctx.alice_bits);
  EcStats ec;
  switch (ctx.config.ec_strategy) {
    case EcStrategy::kBbnCascade: {
      BbnCascadeConfig cfg = ctx.config.bbn_config;
      cfg.seed_base = static_cast<std::uint32_t>(ctx.drbg.next_u32());
      ec = bbn_cascade_correct(ctx.bob_bits, alice_oracle, cfg);
      break;
    }
    case EcStrategy::kClassicCascade: {
      ClassicCascadeConfig cfg = ctx.config.classic_config;
      cfg.seed_base = static_cast<std::uint32_t>(ctx.drbg.next_u32());
      ec = classic_cascade_correct(ctx.bob_bits, alice_oracle,
                                   std::max(ctx.result.qber_sampled, 0.01),
                                   cfg);
      break;
    }
    case EcStrategy::kNaiveParity: {
      NaiveParityConfig cfg = ctx.config.naive_config;
      cfg.perm_seed = static_cast<std::uint32_t>(ctx.drbg.next_u32());
      ec = naive_parity_correct(ctx.bob_bits, alice_oracle, cfg);
      break;
    }
  }
  ctx.result.errors_corrected = ec.corrections;
  ctx.result.disclosed_bits = alice_oracle.disclosed();
  // Wire accounting for EC: each query is ~14 bytes out, 1 byte back.
  ctx.result.control_messages += 2 * ec.parity_queries;
  ctx.result.control_bytes += 15 * ec.parity_queries;
  if (ctx.config.ec_strategy != EcStrategy::kNaiveParity && !ec.converged)
    return AbortReason::kEcNotConverged;
  return AbortReason::kNone;
}

AbortReason VerifyStage::run(BatchContext& ctx) {
  // Equality verification: exchange a hash of the corrected string. (IKE
  // "has no mechanisms for noticing" key disagreement — the QKD stack must
  // therefore catch residual errors here, Sec. 7.)
  const auto alice_hash = qkd::crypto::Sha1::hash(ctx.alice_bits.to_bytes());
  const auto bob_hash = qkd::crypto::Sha1::hash(ctx.bob_bits.to_bytes());
  const Bytes hash_msg(alice_hash.begin(), alice_hash.end());
  if (!ctx.ship(ctx.alice_auth, ctx.bob_auth, hash_msg))
    return AbortReason::kAuthExhausted;
  if (alice_hash != bob_hash) return AbortReason::kVerifyFailed;

  // The exact error count is now known; apply the canonical QBER alarm.
  const double qber_exact =
      static_cast<double>(ctx.result.errors_corrected) /
      static_cast<double>(ctx.alice_bits.size());
  if (qber_exact > ctx.config.qber_abort_threshold)
    return AbortReason::kQberTooHigh;
  return AbortReason::kNone;
}

AbortReason EntropyStage::run(BatchContext& ctx) {
  EntropyInputs inputs;
  inputs.sifted_bits = ctx.alice_bits.size();
  inputs.error_bits = ctx.result.errors_corrected;
  inputs.transmitted_pulses = ctx.result.pulses;
  inputs.disclosed_bits = ctx.result.disclosed_bits;
  // The paper left r as "a placeholder ... until randomness testing is put
  // into the system"; our system has the testing (detector bias shows up in
  // the monobit statistic of the corrected bits).
  inputs.non_randomness =
      ctx.config.run_randomness_tests
          ? test_randomness(ctx.alice_bits).non_randomness_bits
          : 0.0;
  inputs.mean_photon_number = ctx.config.link.mean_photon_number;
  inputs.confidence = ctx.config.confidence;
  inputs.defense = ctx.config.defense;
  inputs.link_kind = ctx.config.link_kind;
  inputs.multi_photon_policy = ctx.config.multi_photon_policy;
  const EntropyEstimate entropy = estimate_entropy(inputs);

  ctx.usable_bits = entropy.distillable_bits -
                    static_cast<double>(ctx.config.pa_margin_bits);
  if (ctx.usable_bits < 1.0) return AbortReason::kEntropyExhausted;
  return AbortReason::kNone;
}

AbortReason PrivacyAmplificationStage::run(BatchContext& ctx) {
  // Long batches are amplified in chunks of bounded field width; the total
  // output budget m is spread across chunks proportionally.
  const std::size_t m_total = static_cast<std::size_t>(ctx.usable_bits);
  const std::size_t total_in = ctx.alice_bits.size();
  const std::size_t chunk_max = pa_max_block_bits();
  std::size_t offset = 0;
  std::size_t m_emitted = 0;
  while (offset < total_in) {
    const std::size_t chunk = std::min(chunk_max, total_in - offset);
    const std::size_t m_target =
        static_cast<std::size_t>(static_cast<double>(m_total) *
                                 static_cast<double>(offset + chunk) /
                                 static_cast<double>(total_in));
    const std::size_t m_chunk = std::min(m_target - m_emitted, chunk);
    if (m_chunk > 0) {
      const PaParams pa = make_pa_params(chunk, m_chunk, ctx.drbg);
      if (!ctx.ship(ctx.alice_auth, ctx.bob_auth, pa.serialize()))
        return AbortReason::kAuthExhausted;
      ctx.alice_key.append(
          privacy_amplify(ctx.alice_bits.slice(offset, chunk), pa));
      ctx.bob_key.append(
          privacy_amplify(ctx.bob_bits.slice(offset, chunk), pa));
      m_emitted += m_chunk;
    }
    offset += chunk;
  }
  if (!(ctx.alice_key == ctx.bob_key))
    throw std::logic_error("QkdLinkSession: PA outputs diverged after verify");
  return AbortReason::kNone;
}

AbortReason AuthReplenishStage::run(BatchContext& ctx) {
  qkd::BitVector key = ctx.alice_key;
  const std::size_t replenish =
      std::min(ctx.config.auth_replenish_bits, key.size());
  if (replenish > 0) {
    const qkd::BitVector pad = key.slice(key.size() - replenish, replenish);
    ctx.alice_auth.replenish(pad);
    ctx.bob_auth.replenish(pad);
    key.resize(key.size() - replenish);
  }
  ctx.result.distilled_bits = key.size();
  ctx.result.key = std::move(key);
  return AbortReason::kNone;
}

std::vector<std::unique_ptr<PipelineStage>> default_pipeline() {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(std::make_unique<SiftingStage>());
  stages.push_back(std::make_unique<SamplingStage>());
  stages.push_back(std::make_unique<ErrorCorrectionStage>());
  stages.push_back(std::make_unique<VerifyStage>());
  stages.push_back(std::make_unique<EntropyStage>());
  stages.push_back(std::make_unique<PrivacyAmplificationStage>());
  stages.push_back(std::make_unique<AuthReplenishStage>());
  return stages;
}

}  // namespace qkd::proto
