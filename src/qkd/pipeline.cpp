#include "src/qkd/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "src/crypto/sha1.hpp"
#include "src/qkd/privacy.hpp"
#include "src/qkd/randomness.hpp"
#include "src/qkd/sifting.hpp"
#include "src/qkd/wire_link.hpp"

namespace qkd::proto {
namespace {

/// Retransmission budget per authenticated control message before the
/// batch concedes the classical channel is gone.
constexpr int kMaxShipAttempts = 12;

AbortReason to_abort(ShipStatus status) {
  switch (status) {
    case ShipStatus::kOk:
      return AbortReason::kNone;
    case ShipStatus::kAuthExhausted:
      return AbortReason::kAuthExhausted;
    case ShipStatus::kChannelLost:
      return AbortReason::kChannelLost;
  }
  return AbortReason::kChannelLost;
}

Bytes digest_bytes(const qkd::BitVector& bits) {
  const auto digest = qkd::crypto::Sha1::hash(bits.to_bytes());
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

ShipStatus BatchContext::ship_frame(bool from_alice, wire::PacketType type,
                                    const Bytes& packet_payload,
                                    bool authenticated) {
  AuthenticationService& sender = from_alice ? alice_auth : bob_auth;
  AuthenticationService& receiver = from_alice ? bob_auth : alice_auth;
  wire::Transport& out = from_alice ? alice_wire : bob_wire;
  wire::Transport& in = from_alice ? bob_wire : alice_wire;

  // Protect ONCE: the pad slot is bound to the sequence number, so every
  // retransmission is the identical envelope and costs no extra pad.
  Bytes payload = packet_payload;
  if (authenticated) {
    auto protected_payload = sender.protect(packet_payload);
    if (!protected_payload.has_value()) return ShipStatus::kAuthExhausted;
    payload = std::move(*protected_payload);
  }
  const Bytes framed = wire::encode_frame(type, payload);

  for (int attempt = 0; attempt < kMaxShipAttempts; ++attempt) {
    out.send_frame(framed);
    ++result.control_messages;
    result.control_bytes += framed.size();
    const auto raw = in.recv_frame();
    if (!raw.has_value()) continue;  // lost in transit: retransmit
    const auto frame = wire::decode_frame(*raw);
    if (!frame.ok() || frame.value.type != type) continue;
    if (authenticated) {
      const auto verified = receiver.verify(frame.value.payload);
      if (!verified.has_value() || *verified != packet_payload) continue;
    } else if (frame.value.payload != packet_payload) {
      continue;  // tampered bare frame: retransmit (verify stage audits)
    }
    return ShipStatus::kOk;
  }
  return ShipStatus::kChannelLost;
}

AbortReason SiftingStage::run(BatchContext& ctx) {
  // Bob announces detections; Alice replies with the basis matches.
  const SiftMessage sift_msg = make_sift_message(ctx.frame_id, ctx.frame.bob);
  wire::SiftAnnounce announce;
  announce.frame_id = sift_msg.frame_id;
  announce.detected = sift_msg.detected;
  announce.bob_bases = sift_msg.bob_bases;
  if (const auto s = ctx.ship(/*from_alice=*/false, announce);
      s != ShipStatus::kOk)
    return to_abort(s);

  AliceSiftResult alice_sifted = alice_sift(ctx.frame.alice, sift_msg);
  wire::SiftDecision decision;
  decision.frame_id = alice_sifted.response.frame_id;
  decision.keep = alice_sifted.response.keep;
  if (const auto s = ctx.ship(/*from_alice=*/true, decision);
      s != ShipStatus::kOk)
    return to_abort(s);
  SiftOutcome bob_sifted =
      bob_apply_response(ctx.frame.bob, sift_msg, alice_sifted.response);

  ctx.alice_bits = std::move(alice_sifted.outcome.bits);
  ctx.bob_bits = std::move(bob_sifted.bits);
  ctx.result.sifted_bits = ctx.alice_bits.size();
  if (ctx.alice_bits.empty()) return AbortReason::kNoSiftedBits;

  // Ground truth for attack accounting: sifted-slot join with Eve's record.
  ctx.result.qber_actual =
      static_cast<double>(ctx.alice_bits.hamming_distance(ctx.bob_bits)) /
      static_cast<double>(ctx.alice_bits.size());
  for (std::uint32_t slot : alice_sifted.outcome.slot_indices)
    if (ctx.frame.eve.known.get(slot)) ++ctx.result.eve_known_sifted;
  return AbortReason::kNone;
}

AbortReason SamplingStage::run(BatchContext& ctx) {
  // The sample positions derive from the shared DRBG (both sides hold the
  // same stream, so the positions are never transmitted); each side then
  // reveals its OWN bits at those positions in the clear and drops them.
  const std::size_t n = ctx.alice_bits.size();
  const std::size_t sample_target = static_cast<std::size_t>(
      ctx.config.sample_fraction * static_cast<double>(n));
  if (sample_target > 0) {
    // Partial Fisher-Yates: after `sample_target` swap steps the prefix
    // holds a uniform without-replacement draw of the positions.
    std::vector<std::uint32_t> positions(n);
    std::iota(positions.begin(), positions.end(), 0u);
    for (std::size_t i = 0; i < sample_target; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(ctx.drbg.next_u64() % (n - i));
      std::swap(positions[i], positions[j]);
    }
    qkd::BitVector sample_mask(n);
    for (std::size_t i = 0; i < sample_target; ++i)
      sample_mask.set(positions[i], true);

    std::size_t sample_errors = 0;
    qkd::BitVector alice_keep, bob_keep;
    wire::SampleReveal alice_reveal, bob_reveal;
    alice_reveal.frame_id = ctx.frame_id;
    bob_reveal.frame_id = ctx.frame_id;
    for (std::size_t i = 0; i < n; ++i) {
      if (sample_mask.get(i)) {
        sample_errors += ctx.alice_bits.get(i) != ctx.bob_bits.get(i);
        alice_reveal.bits.push_back(ctx.alice_bits.get(i));
        bob_reveal.bits.push_back(ctx.bob_bits.get(i));
      } else {
        alice_keep.push_back(ctx.alice_bits.get(i));
        bob_keep.push_back(ctx.bob_bits.get(i));
      }
    }
    ctx.result.sampled_bits = sample_target;
    ctx.result.qber_sampled = static_cast<double>(sample_errors) /
                              static_cast<double>(sample_target);
    if (const auto s = ctx.ship(/*from_alice=*/true, alice_reveal);
        s != ShipStatus::kOk)
      return to_abort(s);
    if (const auto s = ctx.ship(/*from_alice=*/false, bob_reveal);
        s != ShipStatus::kOk)
      return to_abort(s);
    ctx.alice_bits = std::move(alice_keep);
    ctx.bob_bits = std::move(bob_keep);

    if (ctx.result.qber_sampled > ctx.config.early_abort_qber)
      return AbortReason::kQberTooHigh;
  }
  if (ctx.alice_bits.empty()) return AbortReason::kNoSiftedBits;
  return AbortReason::kNone;
}

AbortReason ErrorCorrectionStage::run(BatchContext& ctx) {
  // Bob drives; every parity question and answer is a real frame on the
  // wire (unauthenticated — see src/qkd/wire_link.hpp for why), answered
  // by Alice's responder on the other end of the channel.
  WireParityServer alice_server(ctx.alice_bits);
  WireParityClient bob_client(
      ctx.bob_wire, [&] { alice_server.serve_one(ctx.alice_wire); });
  EcStats ec;
  bool channel_lost = false;
  try {
    switch (ctx.config.ec_strategy) {
      case EcStrategy::kBbnCascade: {
        BbnCascadeConfig cfg = ctx.config.bbn_config;
        cfg.seed_base = static_cast<std::uint32_t>(ctx.drbg.next_u32());
        ec = bbn_cascade_correct(ctx.bob_bits, bob_client, cfg);
        break;
      }
      case EcStrategy::kClassicCascade: {
        ClassicCascadeConfig cfg = ctx.config.classic_config;
        cfg.seed_base = static_cast<std::uint32_t>(ctx.drbg.next_u32());
        ec = classic_cascade_correct(ctx.bob_bits, bob_client,
                                     std::max(ctx.result.qber_sampled, 0.01),
                                     cfg);
        break;
      }
      case EcStrategy::kNaiveParity: {
        NaiveParityConfig cfg = ctx.config.naive_config;
        cfg.perm_seed = static_cast<std::uint32_t>(ctx.drbg.next_u32());
        ec = naive_parity_correct(ctx.bob_bits, bob_client, cfg);
        break;
      }
    }
  } catch (const ChannelLostError&) {
    channel_lost = true;
  }
  // Wire accounting for EC is measured, not estimated: both sides' sent
  // frames, retransmissions included.
  ctx.result.control_messages +=
      bob_client.traffic().messages + alice_server.traffic().messages;
  ctx.result.control_bytes +=
      bob_client.traffic().bytes + alice_server.traffic().bytes;
  ctx.result.errors_corrected = ec.corrections;
  ctx.result.disclosed_bits = alice_server.disclosed();
  if (channel_lost) return AbortReason::kChannelLost;

  // Bob closes the dialogue with an authenticated summary; Alice needs the
  // correction count for her entropy estimate.
  wire::EcSummary summary;
  summary.corrections = static_cast<std::uint32_t>(ec.corrections);
  summary.converged = ec.converged;
  if (const auto s = ctx.ship(/*from_alice=*/false, summary);
      s != ShipStatus::kOk)
    return to_abort(s);

  if (ctx.config.ec_strategy != EcStrategy::kNaiveParity && !ec.converged)
    return AbortReason::kEcNotConverged;
  return AbortReason::kNone;
}

AbortReason VerifyStage::run(BatchContext& ctx) {
  // Equality verification: BOTH directions exchange a hash of the
  // corrected string. (IKE "has no mechanisms for noticing" key
  // disagreement — the QKD stack must therefore catch residual errors
  // here, Sec. 7.)
  wire::VerifyHash alice_hash;
  alice_hash.frame_id = ctx.frame_id;
  alice_hash.digest = digest_bytes(ctx.alice_bits);
  wire::VerifyHash bob_hash;
  bob_hash.frame_id = ctx.frame_id;
  bob_hash.digest = digest_bytes(ctx.bob_bits);
  if (const auto s = ctx.ship(/*from_alice=*/true, alice_hash);
      s != ShipStatus::kOk)
    return to_abort(s);
  if (const auto s = ctx.ship(/*from_alice=*/false, bob_hash);
      s != ShipStatus::kOk)
    return to_abort(s);
  if (alice_hash.digest != bob_hash.digest) return AbortReason::kVerifyFailed;

  // The exact error count is now known; apply the canonical QBER alarm.
  const double qber_exact =
      static_cast<double>(ctx.result.errors_corrected) /
      static_cast<double>(ctx.alice_bits.size());
  if (qber_exact > ctx.config.qber_abort_threshold)
    return AbortReason::kQberTooHigh;
  return AbortReason::kNone;
}

AbortReason EntropyStage::run(BatchContext& ctx) {
  EntropyInputs inputs;
  inputs.sifted_bits = ctx.alice_bits.size();
  inputs.error_bits = ctx.result.errors_corrected;
  inputs.transmitted_pulses = ctx.result.pulses;
  inputs.disclosed_bits = ctx.result.disclosed_bits;
  // The paper left r as "a placeholder ... until randomness testing is put
  // into the system"; our system has the testing (detector bias shows up in
  // the monobit statistic of the corrected bits).
  inputs.non_randomness =
      ctx.config.run_randomness_tests
          ? test_randomness(ctx.alice_bits).non_randomness_bits
          : 0.0;
  inputs.mean_photon_number = ctx.config.link.mean_photon_number;
  inputs.confidence = ctx.config.confidence;
  inputs.defense = ctx.config.defense;
  inputs.link_kind = ctx.config.link_kind;
  inputs.multi_photon_policy = ctx.config.multi_photon_policy;
  const EntropyEstimate entropy = estimate_entropy(inputs);

  ctx.usable_bits = entropy.distillable_bits -
                    static_cast<double>(ctx.config.pa_margin_bits);
  if (ctx.usable_bits < 1.0) return AbortReason::kEntropyExhausted;
  return AbortReason::kNone;
}

AbortReason PrivacyAmplificationStage::run(BatchContext& ctx) {
  // Long batches are amplified in chunks of bounded field width; the total
  // output budget m is spread across chunks proportionally.
  const std::size_t m_total = static_cast<std::size_t>(ctx.usable_bits);
  const std::size_t total_in = ctx.alice_bits.size();
  const std::size_t chunk_max = pa_max_block_bits();
  std::size_t offset = 0;
  std::size_t m_emitted = 0;
  while (offset < total_in) {
    const std::size_t chunk = std::min(chunk_max, total_in - offset);
    const std::size_t m_target =
        static_cast<std::size_t>(static_cast<double>(m_total) *
                                 static_cast<double>(offset + chunk) /
                                 static_cast<double>(total_in));
    const std::size_t m_chunk = std::min(m_target - m_emitted, chunk);
    if (m_chunk > 0) {
      const PaParams pa = make_pa_params(chunk, m_chunk, ctx.drbg);
      wire::PaParamsPacket announce;
      announce.n = pa.n;
      announce.m = pa.m;
      announce.modulus_exponents.assign(pa.modulus.exponents.begin(),
                                        pa.modulus.exponents.end());
      announce.multiplier = pa.multiplier;
      announce.addend = pa.addend;
      if (const auto s = ctx.ship(/*from_alice=*/true, announce);
          s != ShipStatus::kOk)
        return to_abort(s);
      ctx.alice_key.append(
          privacy_amplify(ctx.alice_bits.slice(offset, chunk), pa));
      ctx.bob_key.append(
          privacy_amplify(ctx.bob_bits.slice(offset, chunk), pa));
      m_emitted += m_chunk;
    }
    offset += chunk;
  }
  if (!(ctx.alice_key == ctx.bob_key))
    throw std::logic_error("QkdLinkSession: PA outputs diverged after verify");
  return AbortReason::kNone;
}

AbortReason AuthReplenishStage::run(BatchContext& ctx) {
  qkd::BitVector key = ctx.alice_key;
  const std::size_t replenish =
      std::min(ctx.config.auth_replenish_bits, key.size());
  if (replenish > 0) {
    const qkd::BitVector pad = key.slice(key.size() - replenish, replenish);
    ctx.alice_auth.replenish(pad);
    ctx.bob_auth.replenish(pad);
    key.resize(key.size() - replenish);
  }
  ctx.result.distilled_bits = key.size();
  ctx.result.key = std::move(key);
  return AbortReason::kNone;
}

std::vector<std::unique_ptr<PipelineStage>> default_pipeline() {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(std::make_unique<SiftingStage>());
  stages.push_back(std::make_unique<SamplingStage>());
  stages.push_back(std::make_unique<ErrorCorrectionStage>());
  stages.push_back(std::make_unique<VerifyStage>());
  stages.push_back(std::make_unique<EntropyStage>());
  stages.push_back(std::make_unique<PrivacyAmplificationStage>());
  stages.push_back(std::make_unique<AuthReplenishStage>());
  return stages;
}

}  // namespace qkd::proto
