#include "src/qkd/authentication.hpp"

#include <stdexcept>

namespace qkd::proto {
namespace {

qkd::crypto::WegmanCarterAuthenticator make_direction(
    const AuthenticationService::Config& config,
    const qkd::BitVector& shared_secret, std::size_t index) {
  const std::size_t per_direction = shared_secret.size() / 2;
  const qkd::crypto::WegmanCarterAuthenticator::Config wc{
      .tag_bits = config.tag_bits,
      .max_message_bits = config.max_message_bits};
  return qkd::crypto::WegmanCarterAuthenticator(
      wc, shared_secret.slice(index * per_direction, per_direction));
}

}  // namespace

std::size_t AuthenticationService::required_secret_bits(const Config& config) {
  // Per direction: Toeplitz key plus at least one tag of pad.
  const std::size_t per_direction =
      (config.tag_bits + config.max_message_bits - 1) + config.tag_bits;
  return 2 * per_direction;
}

AuthenticationService::AuthenticationService(Config config,
                                             const qkd::BitVector& shared_secret,
                                             bool is_initiator)
    : config_(config),
      is_initiator_(is_initiator),
      send_auth_(make_direction(config, shared_secret, is_initiator ? 0 : 1)),
      recv_auth_(make_direction(config, shared_secret, is_initiator ? 1 : 0)) {
  if (shared_secret.size() < required_secret_bits(config))
    throw std::invalid_argument(
        "AuthenticationService: prepositioned secret too small");
}

std::optional<Bytes> AuthenticationService::protect(const Bytes& message) {
  Bytes framed;
  put_u64(framed, send_seq_);
  put_bytes(framed, message);
  // The pad slot is the sequence number itself, keeping both ends paired
  // by what the message SAYS it is rather than by how many calls each side
  // has made — the property that lets a lost envelope be retransmitted
  // verbatim over a lossy wire.
  const auto tag = send_auth_.tag_at(framed, send_seq_);
  if (!tag.has_value()) {
    ++stats_.stalls;
    return std::nullopt;
  }
  ++send_seq_;
  ++stats_.tagged;
  put_bytes(framed, tag->to_bytes());
  return framed;
}

std::optional<Bytes> AuthenticationService::verify(const Bytes& framed) {
  const std::size_t tag_bytes = (config_.tag_bits + 7) / 8;
  if (framed.size() < 8 + tag_bytes) {
    ++stats_.rejected;
    return std::nullopt;
  }
  const std::size_t body_len = framed.size() - tag_bytes;
  const Bytes body(framed.begin(),
                   framed.begin() + static_cast<std::ptrdiff_t>(body_len));
  qkd::BitVector tag = qkd::BitVector::from_bytes(
      std::span<const std::uint8_t>(framed.data() + body_len, tag_bytes));
  tag.resize(config_.tag_bits);

  ByteReader reader(body);
  const std::uint64_t seq = reader.u64();
  // Strictly increasing, gaps allowed: a replay (seq below the watermark)
  // is rejected outright; a gap means the peer gave up on an envelope the
  // impaired wire never delivered, and the pads it consumed are skipped in
  // lockstep by the slot addressing. A forged high seq fails its tag check
  // without consuming anything.
  if (seq < recv_seq_expected_) {
    ++stats_.rejected;
    return std::nullopt;
  }
  if (!recv_auth_.verify_at(body, tag, seq)) {
    ++stats_.rejected;
    return std::nullopt;
  }
  recv_seq_expected_ = seq + 1;
  ++stats_.verified;
  return reader.bytes(reader.remaining());
}

void AuthenticationService::replenish(const qkd::BitVector& bits) {
  // Split replenishment between the two directions. Both endpoints call this
  // with the same bits; the initiator's send pool must pair with the
  // responder's receive pool, so the halves swap with the role.
  const std::size_t half = bits.size() / 2;
  const qkd::BitVector first = bits.slice(0, half);
  const qkd::BitVector second = bits.slice(half, bits.size() - half);
  if (is_initiator_) {
    send_auth_.replenish(first);
    recv_auth_.replenish(second);
  } else {
    send_auth_.replenish(second);
    recv_auth_.replenish(first);
  }
}

bool AuthenticationService::needs_replenishment() const {
  return pad_bits_available() < config_.low_water_bits;
}

std::size_t AuthenticationService::pad_bits_available() const {
  return send_auth_.pad_bits_available() + recv_auth_.pad_bits_available();
}

std::size_t AuthenticationService::pad_bits_consumed() const {
  return send_auth_.pad_bits_consumed() + recv_auth_.pad_bits_consumed();
}

}  // namespace qkd::proto
