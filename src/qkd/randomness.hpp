// Randomness testing of the raw QKD bits (Section 6).
//
// "The fourth [entropy component] — the non-randomness measure — is only a
// placeholder at the moment, until randomness testing is put into the
// system. We assume that this testing will produce a measure in the form of
// a number of bits by which to shorten the string." This module puts that
// testing into the system: FIPS 140-1-style statistical tests (monobit,
// runs, poker/serial) over the sifted bits, converted into exactly such a
// shortening measure. Detector bias — the paper's example source of
// non-randomness — shows up first in the monobit statistic.
#pragma once

#include <cstddef>

#include "src/common/bitvector.hpp"

namespace qkd::proto {

struct RandomnessReport {
  /// Normalized monobit excess: |ones - n/2| in standard deviations.
  double monobit_sigma = 0.0;
  /// Longest run of identical bits observed.
  std::size_t longest_run = 0;
  /// Chi-square statistic of 4-bit block frequencies (poker test, 15 dof).
  double poker_chi2 = 0.0;
  /// True when every statistic is within its FIPS-style acceptance band.
  bool passed = true;

  /// The paper's r: "a number of bits by which to shorten the string".
  /// Zero when all tests pass; otherwise estimates the min-entropy
  /// shortfall from the observed bias (monobit) plus a fixed penalty per
  /// failed structural test.
  double non_randomness_bits = 0.0;
};

/// Runs the test battery over `bits`. Small inputs (< 64 bits) are always
/// reported as passed with r = 0 (no statistical power).
RandomnessReport test_randomness(const qkd::BitVector& bits);

}  // namespace qkd::proto
