// The parity dialogue of error correction, bound to the wire: Bob's
// corrector drives a ParityOracle whose every query becomes a real
// kParityRequest frame on a Transport, answered by a kParityResponse frame
// from Alice's responder. In-process the two are colocated over one
// PublicChannel (the client's pump runs the server between send and
// receive); across processes each side holds only its half and the TCP
// socket sits in between — same frames either way.
//
// Parity frames travel UNAUTHENTICATED by design: Cascade asks thousands
// of one-bit questions per batch, and spending Wegman-Carter pad on each
// would exhaust the very key being distilled. Tampering with them corrupts
// the correction and is caught by the verify stage's hash exchange, which
// is the paper's containment for this surface. Lost or mangled frames are
// retransmitted; a persistently dead channel surfaces as ChannelLostError
// (-> AbortReason::kChannelLost).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>

#include "src/qkd/ec.hpp"
#include "src/wire/packets.hpp"
#include "src/wire/transport.hpp"

namespace qkd::proto {

/// Sent-side wire accounting (messages and bytes PUT on the wire,
/// retransmits included — loss inflates these, visibly).
struct WireTraffic {
  std::size_t messages = 0;
  std::size_t bytes = 0;
};

/// Thrown when retransmission gives up on the classical channel; the
/// pipeline maps it to AbortReason::kChannelLost.
class ChannelLostError : public std::runtime_error {
 public:
  ChannelLostError() : std::runtime_error("wire: classical channel lost") {}
};

/// Alice's side: answers parity requests arriving on a transport against
/// her sifted bits. Retransmitted duplicates of the last query are
/// re-answered from cache so a lossy channel cannot inflate the disclosure
/// count the entropy estimate charges for.
class WireParityServer {
 public:
  explicit WireParityServer(const qkd::BitVector& bits) : oracle_(bits) {}

  /// Serves at most one pending request on `io` (receive, compute,
  /// respond). Returns false when nothing decodable was waiting;
  /// malformed frames are consumed and dropped (the client retransmits).
  bool serve_one(wire::Transport& io);

  /// Serves an already-received frame (two-process receive loops dispatch
  /// frames by type and hand parity requests here); the response goes out
  /// on `io`. Returns false if the frame is not a decodable parity request.
  bool serve_frame(wire::Transport& io, const wire::Frame& frame);

  /// Distinct parity bits disclosed (the `d` of the entropy estimate).
  std::size_t disclosed() const { return oracle_.disclosed(); }

  const WireTraffic& traffic() const { return traffic_; }

 private:
  LocalParityOracle oracle_;
  std::optional<ParityQuery> last_query_;
  bool last_parity_ = false;
  WireTraffic traffic_;
};

/// Bob's side: a ParityOracle that ships each query as a frame and blocks
/// on the response, retransmitting through loss. `pump` (in-process runs
/// only) is invoked between send and receive to let the colocated
/// WireParityServer take its turn.
class WireParityClient final : public ParityOracle {
 public:
  static constexpr int kMaxAttempts = 12;

  explicit WireParityClient(wire::Transport& io,
                            std::function<void()> pump = {})
      : io_(io), pump_(std::move(pump)) {}

  /// Throws ChannelLostError after kMaxAttempts fruitless retransmits.
  bool parity(const ParityQuery& query) override;

  const WireTraffic& traffic() const { return traffic_; }

  /// Distinct parity questions asked (retransmits excluded) — Bob's side
  /// of the disclosure count the entropy estimate charges for, mirroring
  /// the server's oracle_.disclosed().
  std::size_t queries() const { return queries_; }

 private:
  wire::Transport& io_;
  std::function<void()> pump_;
  WireTraffic traffic_;
  std::size_t queries_ = 0;
};

}  // namespace qkd::proto
