#include "src/qkd/entropy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qkd::proto {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;

/// Slutsky per-bit Renyi information at error ratio ep in [0, 1).
double slutsky_per_bit(double ep) {
  if (ep >= 1.0 / 3.0) return 1.0;
  if (ep < 0.0) ep = 0.0;
  const double frontier = (1.0 - 3.0 * ep) / (1.0 - ep);
  return 1.0 + std::log2(1.0 - 0.5 * frontier * frontier);
}

}  // namespace

DefenseEstimate bennett_defense(std::size_t error_bits) {
  const double e = static_cast<double>(error_bits);
  DefenseEstimate out;
  out.t = 2.0 * kSqrt2 * e;
  out.sigma = std::sqrt((4.0 + 2.0 * kSqrt2) * e);
  return out;
}

DefenseEstimate slutsky_defense(std::size_t sifted_bits,
                                std::size_t error_bits) {
  DefenseEstimate out;
  if (sifted_bits == 0) return out;
  const double b = static_cast<double>(sifted_bits);
  const double e = static_cast<double>(error_bits);
  const double ep = e / b;
  out.t = b * slutsky_per_bit(ep);

  // Propagate the binomial deviation of the error count through dt/de,
  // evaluated numerically with a one-error step.
  const double sigma_e = std::sqrt(std::max(e, 1.0) * (1.0 - ep));
  const double t_up = b * slutsky_per_bit((e + 1.0) / b);
  const double dt_de = t_up - out.t;
  out.sigma = std::abs(dt_de) * sigma_e;
  return out;
}

double multi_photon_probability(double mean_photon_number) {
  if (mean_photon_number < 0.0)
    throw std::invalid_argument("multi_photon_probability: negative mu");
  const double mu = mean_photon_number;
  return 1.0 - std::exp(-mu) * (1.0 + mu);
}

double conditional_multi_photon_probability(double mean_photon_number) {
  const double p_multi = multi_photon_probability(mean_photon_number);
  const double p_any = 1.0 - std::exp(-mean_photon_number);
  return p_any > 0.0 ? p_multi / p_any : 0.0;
}

EntropyEstimate estimate_entropy(const EntropyInputs& in) {
  if (in.error_bits > in.sifted_bits)
    throw std::invalid_argument("estimate_entropy: e > b");
  EntropyEstimate out;

  out.defense = in.defense == DefenseFunction::kBennett
                    ? bennett_defense(in.error_bits)
                    : slutsky_defense(in.sifted_bits, in.error_bits);

  // Transparent leakage (Sec. 6). Weak-coherent links choose between the
  // worst-case PNS bound (transmitted * P[N>=2]) and the practical
  // beamsplitting accounting (received * P[N>=2 | N>=1]); entangled links
  // leak only in proportion to received bits times P[N>=2].
  double p_multi, exposure;
  if (in.link_kind == LinkKind::kEntangled) {
    p_multi = multi_photon_probability(in.mean_photon_number);
    exposure = static_cast<double>(in.sifted_bits);
  } else if (in.multi_photon_policy == MultiPhotonPolicy::kTransmittedWorstCase) {
    p_multi = multi_photon_probability(in.mean_photon_number);
    exposure = static_cast<double>(in.transmitted_pulses);
  } else {
    p_multi = conditional_multi_photon_probability(in.mean_photon_number);
    exposure = static_cast<double>(in.sifted_bits);
  }
  out.multi_photon.t = exposure * p_multi;
  out.multi_photon.sigma = std::sqrt(exposure * p_multi * (1.0 - p_multi));

  out.disclosed = static_cast<double>(in.disclosed_bits);
  out.non_randomness = in.non_randomness;

  // "we separate out the standard deviation of each term and combine them at
  // the end, times a confidence parameter c."
  out.margin = in.confidence * std::hypot(out.defense.sigma,
                                          out.multi_photon.sigma);

  const double b = static_cast<double>(in.sifted_bits);
  out.distillable_bits =
      std::max(0.0, b - out.disclosed - out.non_randomness - out.defense.t -
                        out.multi_photon.t - out.margin);
  return out;
}

}  // namespace qkd::proto
