// Error-correction substrate: parity queries between Bob (who drives
// correction) and Alice (who answers as a parity oracle).
//
// All three error-correction protocols in this library — the paper's BBN
// Cascade variant (Sec. 5), classic Brassard-Salvail Cascade [19], and the
// conventional block-parity baseline from the Appendix — reduce to one wire
// primitive: "Alice, what is the parity of this subset of your sifted
// bits?". Subsets are described compactly (an LFSR seed or a permutation
// seed plus a range), never as explicit bit lists. Every answered query
// reveals exactly one bit of parity information to Eve; the oracle counts
// them, and that count is the `d` fed into entropy estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"

namespace qkd::proto {

/// A parity question about a compactly-described subset of the sifted bits.
struct ParityQuery {
  enum class Kind : std::uint8_t {
    /// Members are the positions where Lfsr32::subset_mask(seed) is 1,
    /// in increasing position order; the query covers members [begin, end).
    kLfsrSubset = 0,
    /// Members are seeded_permutation(seed)[begin..end).
    kPermutedRange = 1,
  };

  Kind kind = Kind::kLfsrSubset;
  std::uint32_t seed = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  Bytes serialize() const;
  static ParityQuery deserialize(const Bytes& wire);
  bool operator==(const ParityQuery&) const = default;
};

/// Answers parity queries against a fixed bit string. The wire protocol and
/// the in-process fast path both go through this interface.
class ParityOracle {
 public:
  virtual ~ParityOracle() = default;
  virtual bool parity(const ParityQuery& query) = 0;
};

/// Alice's oracle over her sifted bits; counts disclosures and caches the
/// expanded subset descriptions.
class LocalParityOracle final : public ParityOracle {
 public:
  explicit LocalParityOracle(const qkd::BitVector& bits);

  bool parity(const ParityQuery& query) override;

  /// Number of parity bits disclosed so far (the `d` of the entropy
  /// estimate).
  std::size_t disclosed() const { return disclosed_; }

 private:
  const qkd::BitVector& bits_;
  std::size_t disclosed_ = 0;
  // seed -> expanded member lists, cached across bisection steps.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> lfsr_cache_;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> perm_cache_;
};

/// The subset membership mask both sides expand from an announced 32-bit
/// seed (one bit per sifted-bit position; expected density 1/2).
///
/// REPRODUCTION NOTE: the paper says the subsets are "pseudo-random bit
/// strings, from a Linear-Feedback Shift Register (LFSR) ... identified by a
/// 32-bit seed". Taken literally — n-bit windows of one fixed 32-bit LFSR
/// stream — every such mask lies in a <= 32-dimensional subspace of
/// GF(2)^n (windows are linear functions of the 32-bit state, and m-sequences
/// are closed under shift-and-add). At most 32 independent parity
/// constraints can ever be formed, so correction provably stalls beyond ~32
/// errors; we confirmed the stall empirically. BBN's deployed generator must
/// have differed in some detail the paper does not record. We therefore keep
/// the protocol and wire format (a 32-bit seed identifies each subset) but
/// expand the seed through a nonlinear mixer (SplitMix64 -> xoshiro) so that
/// distinct seeds yield effectively independent masks. DESIGN.md section 4
/// records this substitution.
qkd::BitVector subset_mask_from_seed(std::uint32_t seed, std::size_t n);

/// Positions selected by subset_mask_from_seed(seed) over `n` bits.
std::vector<std::uint32_t> lfsr_members(std::uint32_t seed, std::size_t n);

/// Deterministic Fisher-Yates permutation of [0, n) derived from `seed`;
/// both sides of the classic-Cascade exchange derive the same one.
std::vector<std::uint32_t> seeded_permutation(std::uint32_t seed,
                                              std::size_t n);

/// Parity of `bits` over members[begin..end).
bool parity_of_members(const qkd::BitVector& bits,
                       const std::vector<std::uint32_t>& members,
                       std::size_t begin, std::size_t end);

/// Outcome accounting common to all error-correction strategies.
struct EcStats {
  std::size_t parity_queries = 0;  // == parity bits disclosed
  std::size_t corrections = 0;     // bits flipped on Bob's side
  std::size_t rounds = 0;          // protocol rounds / passes executed
  bool converged = false;          // protocol believes the strings now match
};

}  // namespace qkd::proto
