// Conventional block-parity error correction — the Appendix's "Parity
// Checks: a conventional parity-checking scheme as widely employed in
// telecommunications systems".
//
// A single pass of fixed-size blocks in natural order: compare parities,
// bisect mismatching blocks to fix one error each. Blocks containing an even
// number of errors go undetected, so this baseline leaves residual errors —
// which is exactly why the paper built a Cascade variant instead (bench E5
// quantifies the difference).
#pragma once

#include "src/common/bitvector.hpp"
#include "src/qkd/ec.hpp"

namespace qkd::proto {

struct NaiveParityConfig {
  std::size_t block_size = 64;
  /// Permutation seed for the single pass (identity-order blocks would
  /// correlate with burst errors; a fixed seeded shuffle is still "one
  /// conventional pass" but fairer to the baseline).
  std::uint32_t perm_seed = 0xBA5E11E5u;
};

EcStats naive_parity_correct(qkd::BitVector& bob_bits, ParityOracle& alice,
                             const NaiveParityConfig& config = {});

}  // namespace qkd::proto
