#include "src/qkd/sifting.hpp"

#include <stdexcept>

#include "src/qkd/rle.hpp"

namespace qkd::proto {
namespace {

void put_bitvector(Bytes& out, const qkd::BitVector& bits) {
  put_varint(out, bits.size());
  const auto bytes = bits.to_bytes();
  put_bytes(out, bytes);
}

qkd::BitVector read_bitvector(ByteReader& reader) {
  const std::uint64_t n = reader.varint();
  const Bytes raw = reader.bytes((n + 7) / 8);
  qkd::BitVector bits = qkd::BitVector::from_bytes(raw);
  bits.resize(n);
  return bits;
}

}  // namespace

Bytes SiftMessage::serialize() const {
  Bytes out;
  put_u64(out, frame_id);
  const Bytes rle = rle_encode(detected);
  put_varint(out, rle.size());
  put_bytes(out, rle);
  put_bitvector(out, bob_bases);
  return out;
}

SiftMessage SiftMessage::deserialize(const Bytes& wire) {
  try {
    ByteReader reader(wire);
    SiftMessage msg;
    msg.frame_id = reader.u64();
    const std::uint64_t rle_len = reader.varint();
    msg.detected = rle_decode(reader.bytes(rle_len));
    msg.bob_bases = read_bitvector(reader);
    if (!reader.done())
      throw std::invalid_argument("SiftMessage: trailing bytes");
    if (msg.bob_bases.size() != msg.detected.popcount())
      throw std::invalid_argument("SiftMessage: basis count != detections");
    return msg;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("SiftMessage: truncated");
  }
}

Bytes SiftResponse::serialize() const {
  Bytes out;
  put_u64(out, frame_id);
  put_bitvector(out, keep);
  return out;
}

SiftResponse SiftResponse::deserialize(const Bytes& wire) {
  try {
    ByteReader reader(wire);
    SiftResponse msg;
    msg.frame_id = reader.u64();
    msg.keep = read_bitvector(reader);
    if (!reader.done())
      throw std::invalid_argument("SiftResponse: trailing bytes");
    return msg;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("SiftResponse: truncated");
  }
}

SiftMessage make_sift_message(std::uint64_t frame_id,
                              const qkd::optics::DetectionRecord& bob) {
  SiftMessage msg;
  msg.frame_id = frame_id;
  msg.detected = bob.detected;
  for (std::size_t i = 0; i < bob.size(); ++i) {
    if (bob.detected.get(i)) msg.bob_bases.push_back(bob.bases.get(i));
  }
  return msg;
}

AliceSiftResult alice_sift(const qkd::optics::PulseTrainRecord& alice,
                           const SiftMessage& msg) {
  if (msg.detected.size() != alice.size())
    throw std::invalid_argument("alice_sift: frame size mismatch");
  AliceSiftResult result;
  result.response.frame_id = msg.frame_id;
  std::size_t det_index = 0;
  for (std::size_t slot = 0; slot < alice.size(); ++slot) {
    if (!msg.detected.get(slot)) continue;
    const bool match =
        msg.bob_bases.get(det_index) == alice.bases.get(slot);
    result.response.keep.push_back(match);
    if (match) {
      result.outcome.bits.push_back(alice.values.get(slot));
      result.outcome.slot_indices.push_back(static_cast<std::uint32_t>(slot));
    }
    ++det_index;
  }
  return result;
}

SiftOutcome bob_apply_response(const qkd::optics::DetectionRecord& bob,
                               const SiftMessage& msg,
                               const SiftResponse& response) {
  if (response.keep.size() != msg.bob_bases.size())
    throw std::invalid_argument("bob_apply_response: keep length mismatch");
  if (response.frame_id != msg.frame_id)
    throw std::invalid_argument("bob_apply_response: frame id mismatch");
  SiftOutcome outcome;
  std::size_t det_index = 0;
  for (std::size_t slot = 0; slot < bob.size(); ++slot) {
    if (!bob.detected.get(slot)) continue;
    if (response.keep.get(det_index)) {
      outcome.bits.push_back(bob.bits.get(slot));
      outcome.slot_indices.push_back(static_cast<std::uint32_t>(slot));
    }
    ++det_index;
  }
  return outcome;
}

}  // namespace qkd::proto
