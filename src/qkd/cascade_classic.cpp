#include "src/qkd/cascade_classic.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

namespace qkd::proto {
namespace {

/// One pass: a permutation of the bit positions partitioned into fixed-size
/// blocks, with lazily-fetched Alice parities.
struct Pass {
  std::uint32_t perm_seed;
  std::size_t block_size;
  std::vector<std::uint32_t> perm;          // permuted position order
  std::vector<std::uint32_t> inv;           // position -> index in perm
  std::vector<std::optional<bool>> alice;   // per block, once fetched
  std::vector<bool> bob;                    // per block, kept current

  std::size_t num_blocks() const {
    return (perm.size() + block_size - 1) / block_size;
  }
  std::size_t block_begin(std::size_t b) const { return b * block_size; }
  std::size_t block_end(std::size_t b) const {
    return std::min(perm.size(), (b + 1) * block_size);
  }
  std::size_t block_of_position(std::uint32_t pos) const {
    return inv[pos] / block_size;
  }
};

bool fetch_alice_parity(Pass& pass, std::size_t block, ParityOracle& alice,
                        EcStats& stats) {
  auto& cached = pass.alice[block];
  if (!cached.has_value()) {
    ParityQuery q;
    q.kind = ParityQuery::Kind::kPermutedRange;
    q.seed = pass.perm_seed;
    q.begin = static_cast<std::uint32_t>(pass.block_begin(block));
    q.end = static_cast<std::uint32_t>(pass.block_end(block));
    cached = alice.parity(q);
    ++stats.parity_queries;
  }
  return *cached;
}

/// Bisects block `block` of `pass` (whose parities are known to mismatch)
/// down to one bit and flips it. Returns the flipped position.
std::uint32_t bisect_block(qkd::BitVector& bob_bits, Pass& pass,
                           std::size_t block, ParityOracle& alice,
                           EcStats& stats) {
  std::size_t lo = pass.block_begin(block), hi = pass.block_end(block);
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ParityQuery q;
    q.kind = ParityQuery::Kind::kPermutedRange;
    q.seed = pass.perm_seed;
    q.begin = static_cast<std::uint32_t>(lo);
    q.end = static_cast<std::uint32_t>(mid);
    const bool alice_left = alice.parity(q);
    ++stats.parity_queries;
    const bool bob_left = parity_of_members(bob_bits, pass.perm, lo, mid);
    if (alice_left != bob_left)
      hi = mid;
    else
      lo = mid;
  }
  const std::uint32_t pos = pass.perm[lo];
  bob_bits.flip(pos);
  ++stats.corrections;
  return pos;
}

}  // namespace

EcStats classic_cascade_correct(qkd::BitVector& bob_bits, ParityOracle& alice,
                                double qber_estimate,
                                const ClassicCascadeConfig& config) {
  EcStats stats;
  const std::size_t n = bob_bits.size();
  if (n == 0) {
    stats.converged = true;
    return stats;
  }

  const double q = std::max(qber_estimate, 1e-4);
  std::size_t k1 = static_cast<std::size_t>(config.block_factor / q);
  k1 = std::clamp(k1, config.min_block, n);

  std::vector<Pass> passes;
  passes.reserve(config.passes);

  // (pass index, block index) pairs known to mismatch and awaiting bisection.
  std::deque<std::pair<std::size_t, std::size_t>> work;

  auto refresh_bob_parity = [&](Pass& pass, std::size_t block) {
    pass.bob[block] = parity_of_members(bob_bits, pass.perm,
                                        pass.block_begin(block),
                                        pass.block_end(block));
  };

  for (unsigned pi = 0; pi < config.passes; ++pi) {
    ++stats.rounds;
    Pass pass;
    pass.perm_seed = config.seed_base + pi;
    pass.block_size = std::min<std::size_t>(n, k1 << pi);
    pass.perm = seeded_permutation(pass.perm_seed, n);
    pass.inv.resize(n);
    for (std::size_t i = 0; i < n; ++i) pass.inv[pass.perm[i]] = static_cast<std::uint32_t>(i);
    pass.alice.resize(pass.num_blocks());
    pass.bob.resize(pass.num_blocks());
    for (std::size_t b = 0; b < pass.num_blocks(); ++b)
      refresh_bob_parity(pass, b);
    passes.push_back(std::move(pass));
    const std::size_t this_pass = passes.size() - 1;

    // Compare every block of the new pass.
    for (std::size_t b = 0; b < passes[this_pass].num_blocks(); ++b) {
      const bool ap = fetch_alice_parity(passes[this_pass], b, alice, stats);
      if (ap != passes[this_pass].bob[b]) work.emplace_back(this_pass, b);
    }

    // Drain the cascade: each fix may re-open blocks in any earlier pass.
    while (!work.empty()) {
      const auto [wp, wb] = work.front();
      work.pop_front();
      Pass& pass_ref = passes[wp];
      const bool ap = fetch_alice_parity(pass_ref, wb, alice, stats);
      if (ap == pass_ref.bob[wb]) continue;  // already healed by another fix

      const std::uint32_t fixed = bisect_block(bob_bits, pass_ref, wb, alice, stats);

      // Update Bob's recorded parities in every pass built so far and
      // requeue blocks that now mismatch a known Alice parity.
      for (std::size_t opi = 0; opi < passes.size(); ++opi) {
        Pass& other = passes[opi];
        const std::size_t ob = other.block_of_position(fixed);
        other.bob[ob] = !other.bob[ob];
        if (other.alice[ob].has_value() && *other.alice[ob] != other.bob[ob])
          work.emplace_back(opi, ob);
      }
    }
  }

  // Converged if the final pass ends with all compared parities equal; since
  // the work queue drained, every known parity pair matches.
  stats.converged = true;
  return stats;
}

}  // namespace qkd::proto
