#include "src/qkd/rle.hpp"

#include <stdexcept>

namespace qkd::proto {

Bytes rle_encode(const qkd::BitVector& bits) {
  Bytes out;
  put_varint(out, bits.size());
  if (bits.empty()) return out;
  bool current = false;  // runs start with a (possibly empty) 0-run
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i) == current) {
      ++run;
    } else {
      put_varint(out, run);
      current = !current;
      run = 1;
    }
  }
  put_varint(out, run);
  return out;
}

qkd::BitVector rle_decode(const Bytes& encoded) {
  ByteReader reader(encoded);
  std::uint64_t n;
  try {
    n = reader.varint();
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("rle_decode: truncated header");
  }
  qkd::BitVector out(n);
  std::size_t pos = 0;
  bool current = false;
  while (pos < n) {
    std::uint64_t run;
    try {
      run = reader.varint();
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("rle_decode: truncated run");
    }
    if (run > n - pos)
      throw std::invalid_argument("rle_decode: run overflows bitmap");
    if (current) {
      for (std::uint64_t i = 0; i < run; ++i) out.set(pos + i, true);
    }
    pos += run;
    current = !current;
  }
  if (!reader.done()) throw std::invalid_argument("rle_decode: trailing bytes");
  return out;
}

}  // namespace qkd::proto
