#include "src/qkd/engine.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "src/optics/attacks.hpp"
#include "src/qkd/pipeline.hpp"

namespace qkd::proto {
namespace {

/// Prepositioned secret both endpoints share before QKD begins ("some means
/// of distributing these keys before QKD itself begins, e.g., by human
/// courier"). In the simulation it is derived from the session seed.
qkd::BitVector preposition_secret(std::uint64_t seed, std::size_t bits) {
  qkd::crypto::Drbg courier(seed ^ 0xC0931E5ULL);
  return courier.generate_bits(bits);
}

}  // namespace

const char* abort_reason_name(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kNoSiftedBits:
      return "no-sifted-bits";
    case AbortReason::kQberTooHigh:
      return "qber-too-high";
    case AbortReason::kEcNotConverged:
      return "ec-not-converged";
    case AbortReason::kVerifyFailed:
      return "verify-failed";
    case AbortReason::kEntropyExhausted:
      return "entropy-exhausted";
    case AbortReason::kAuthExhausted:
      return "auth-exhausted";
    case AbortReason::kChannelLost:
      return "channel-lost";
  }
  return "?";
}

QkdLinkSession::QkdLinkSession(QkdLinkConfig config, std::uint64_t seed)
    : config_(config),
      link_(config.link, seed),
      drbg_(seed ^ 0xD15711ULL),
      alice_auth_(config.auth,
                  preposition_secret(
                      seed, AuthenticationService::required_secret_bits(
                                config.auth) +
                                config.preposition_extra_bits),
                  /*is_initiator=*/true),
      bob_auth_(config.auth,
                preposition_secret(
                    seed, AuthenticationService::required_secret_bits(
                              config.auth) +
                              config.preposition_extra_bits),
                /*is_initiator=*/false),
      alice_wire_(channel_, qkd::net::ChannelTransport::Side::kA),
      bob_wire_(channel_, qkd::net::ChannelTransport::Side::kB),
      pipeline_(default_pipeline()),
      supply_("qkd-link") {
  if (config_.sample_fraction < 0.0 || config_.sample_fraction >= 1.0)
    throw std::invalid_argument("QkdLinkSession: bad sample fraction");
  stage_wall_s_.assign(pipeline_.size(), 0.0);
  stage_bytes_.assign(pipeline_.size(), 0);
}

QkdLinkSession::~QkdLinkSession() = default;

void QkdLinkSession::set_pipeline(
    std::vector<std::unique_ptr<PipelineStage>> stages) {
  pipeline_ = std::move(stages);
  stage_wall_s_.assign(pipeline_.size(), 0.0);
  stage_bytes_.assign(pipeline_.size(), 0);
}

void QkdLinkSession::bind_metrics(obs::MetricsRegistry& registry,
                                  std::string prefix) {
  registry.add_collector([this, prefix = std::move(prefix)](
                             obs::MetricsRegistry::Collect& out) {
    out.counter(prefix + "_batches", totals_.batches);
    out.counter(prefix + "_accepted_batches", totals_.accepted_batches);
    out.counter(prefix + "_pulses", totals_.pulses);
    out.counter(prefix + "_sifted_bits", totals_.sifted_bits);
    out.counter(prefix + "_distilled_bits", totals_.distilled_bits);
    // The paper's eavesdrop alarm in counter form: batches the protocol
    // itself abandoned for excessive QBER.
    out.counter(prefix + "_aborted_qber", totals_.aborted_qber());
    out.gauge(prefix + "_link_seconds", totals_.duration_s);
    for (std::size_t i = 0; i < pipeline_.size() && i < stage_wall_s_.size();
         ++i) {
      const std::string stage = prefix + "_stage_" + pipeline_[i]->name();
      out.counter(stage + "_wall_us",
                  static_cast<std::uint64_t>(stage_wall_s_[i] * 1e6));
      out.counter(stage + "_control_bytes", stage_bytes_[i]);
    }
  });
}

BatchResult QkdLinkSession::run_batch(qkd::optics::Attack* attack) {
  BatchResult result;
  ++totals_.batches;

  // ---- Physical layer: one Qframe of raw symbols. -------------------------
  const auto frame = link_.run_frame(config_.frame_slots, attack);
  result.pulses = config_.frame_slots;
  result.detections = frame.bob.detected.popcount();
  result.duration_s = link_.frame_duration_s(config_.frame_slots);
  totals_.pulses += result.pulses;

  // ---- Protocol stack: the stage pipeline over one shared context. --------
  BatchContext ctx{.config = config_,
                   .drbg = drbg_,
                   .alice_auth = alice_auth_,
                   .bob_auth = bob_auth_,
                   .alice_wire = alice_wire_,
                   .bob_wire = bob_wire_,
                   .frame = frame,
                   .frame_id = next_frame_id_++,
                   .alice_bits = {},
                   .bob_bits = {},
                   .usable_bits = 0.0,
                   .alice_key = {},
                   .bob_key = {},
                   .result = result};
  AbortReason reason = AbortReason::kNone;
  result.stages.reserve(pipeline_.size());
  // The batch span roots its own trace (one per Qframe); each stage is a
  // child. A null/disabled tracer costs one branch per batch plus one per
  // stage — the span construction is skipped entirely.
  obs::ScopedSpan batch_span(tracer_, "qkd.batch", {}, trace_cell_);
  for (std::size_t s = 0; s < pipeline_.size(); ++s) {
    const auto& stage = pipeline_[s];
    const std::size_t messages_before = result.control_messages;
    const std::size_t bytes_before = result.control_bytes;
    std::optional<obs::ScopedSpan> stage_span;
    if (batch_span.recording())
      stage_span.emplace(tracer_, std::string("qkd.") + stage->name(),
                         batch_span.context(), trace_cell_);
    const auto start = std::chrono::steady_clock::now();
    reason = stage->run(ctx);
    const auto stop = std::chrono::steady_clock::now();
    StageStats& stats = result.stages.emplace_back();
    stats.name = stage->name();
    stats.wall_s = std::chrono::duration<double>(stop - start).count();
    stats.control_messages = result.control_messages - messages_before;
    stats.control_bytes = result.control_bytes - bytes_before;
    if (s < stage_wall_s_.size()) {
      stage_wall_s_[s] += stats.wall_s;
      stage_bytes_[s] += stats.control_bytes;
    }
    if (stage_span.has_value()) {
      stage_span->attr("control_messages",
                       std::to_string(stats.control_messages));
      stage_span->attr("control_bytes", std::to_string(stats.control_bytes));
      stage_span->finish();
    }
    if (reason != AbortReason::kNone) break;
  }

  // A rejected batch is announced to the peer as a bare abort frame so
  // both sides discard their halves in step (and the wire accounting
  // reflects the notice).
  if (reason != AbortReason::kNone) {
    wire::AbortPacket abort_packet;
    abort_packet.reason = static_cast<std::uint8_t>(reason);
    const Bytes framed = wire::to_frame(abort_packet);
    alice_wire_.send_frame(framed);
    ++result.control_messages;
    result.control_bytes += framed.size();
    bob_wire_.recv_frame();  // peer consumes the notice
  }

  // Lockstep dialogues pay the channel's one-way latency once per control
  // message; a latency spike therefore stalls distillation (lower key rate)
  // without deadlocking it.
  result.wire_stall_s = qkd::sim_to_seconds(channel_.conditions().latency) *
                        static_cast<double>(result.control_messages);
  result.duration_s += result.wire_stall_s;
  totals_.duration_s += result.duration_s;

  // ---- Outcome accounting. ------------------------------------------------
  if (batch_span.recording()) {
    batch_span.attr("accepted",
                    reason == AbortReason::kNone ? "true" : "false");
    batch_span.attr("reason", abort_reason_name(reason));
    batch_span.attr("sifted_bits", std::to_string(result.sifted_bits));
    batch_span.attr("distilled_bits", std::to_string(result.distilled_bits));
  }
  result.reason = reason;
  result.accepted = reason == AbortReason::kNone;
  totals_.sifted_bits += result.sifted_bits;
  totals_.distilled_bits += result.distilled_bits;
  ++totals_.by_reason[static_cast<std::size_t>(reason)];
  if (result.accepted) ++totals_.accepted_batches;
  return result;
}

DistillOutcome QkdLinkSession::distill(std::size_t bits,
                                       std::size_t max_batches,
                                       qkd::optics::Attack* attack) {
  DistillOutcome outcome;
  for (std::size_t i = 0; i < max_batches && outcome.key.size() < bits; ++i) {
    BatchResult batch = run_batch(attack);
    ++outcome.batches_run;
    ++outcome.by_reason[static_cast<std::size_t>(batch.reason)];
    if (batch.accepted) outcome.key.append(batch.key);
  }
  outcome.reached_target = outcome.key.size() >= bits;
  if (outcome.key.size() > bits) outcome.key.resize(bits);
  return outcome;
}

qkd::BitVector QkdLinkSession::distill_bits(std::size_t bits,
                                            std::size_t max_batches,
                                            qkd::optics::Attack* attack) {
  return distill(bits, max_batches, attack).key;
}

qkd::keystore::KeySupply& QkdLinkSession::supply(std::size_t index) {
  if (index != 0)
    throw std::out_of_range("QkdLinkSession: single-stream producer");
  return supply_;
}

const qkd::keystore::KeySupply& QkdLinkSession::supply(
    std::size_t index) const {
  if (index != 0)
    throw std::out_of_range("QkdLinkSession: single-stream producer");
  return supply_;
}

void QkdLinkSession::attach_sink(std::size_t index,
                                 qkd::keystore::KeySupply& sink) {
  if (index != 0)
    throw std::out_of_range("QkdLinkSession: single-stream producer");
  sinks_.push_back(&sink);
}

void QkdLinkSession::set_attack(std::unique_ptr<qkd::optics::Attack> attack) {
  attack_ = std::move(attack);
}

void QkdLinkSession::deliver(const qkd::BitVector& key) {
  if (key.empty()) return;
  if (sinks_.empty()) {
    supply_.deposit(key);
    return;
  }
  for (qkd::keystore::KeySupply* sink : sinks_) sink->deposit(key);
}

void QkdLinkSession::produce_batches(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const BatchResult batch = run_batch(attack_.get());
    if (batch.accepted) deliver(batch.key);
  }
}

void QkdLinkSession::advance(double dt_seconds) {
  if (dt_seconds <= 0.0) return;
  const double frame_s = link_.frame_duration_s(config_.frame_slots);
  frame_debt_s_ += dt_seconds;
  const auto batches = static_cast<std::size_t>(frame_debt_s_ / frame_s);
  frame_debt_s_ -= static_cast<double>(batches) * frame_s;
  produce_batches(batches);
}

}  // namespace qkd::proto
