#include "src/qkd/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/crypto/sha1.hpp"
#include "src/qkd/privacy.hpp"
#include "src/qkd/randomness.hpp"
#include "src/qkd/sifting.hpp"

namespace qkd::proto {
namespace {

/// Prepositioned secret both endpoints share before QKD begins ("some means
/// of distributing these keys before QKD itself begins, e.g., by human
/// courier"). In the simulation it is derived from the session seed.
qkd::BitVector preposition_secret(std::uint64_t seed, std::size_t bits) {
  qkd::crypto::Drbg courier(seed ^ 0xC0931E5ULL);
  return courier.generate_bits(bits);
}

}  // namespace

const char* abort_reason_name(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kNoSiftedBits:
      return "no-sifted-bits";
    case AbortReason::kQberTooHigh:
      return "qber-too-high";
    case AbortReason::kEcNotConverged:
      return "ec-not-converged";
    case AbortReason::kVerifyFailed:
      return "verify-failed";
    case AbortReason::kEntropyExhausted:
      return "entropy-exhausted";
    case AbortReason::kAuthExhausted:
      return "auth-exhausted";
  }
  return "?";
}

QkdLinkSession::QkdLinkSession(QkdLinkConfig config, std::uint64_t seed)
    : config_(config),
      link_(config.link, seed),
      drbg_(seed ^ 0xD15711ULL),
      alice_auth_(config.auth,
                  preposition_secret(
                      seed, AuthenticationService::required_secret_bits(
                                config.auth) +
                                8192),
                  /*is_initiator=*/true),
      bob_auth_(config.auth,
                preposition_secret(
                    seed, AuthenticationService::required_secret_bits(
                              config.auth) +
                              8192),
                /*is_initiator=*/false) {
  if (config_.sample_fraction < 0.0 || config_.sample_fraction >= 1.0)
    throw std::invalid_argument("QkdLinkSession: bad sample fraction");
}

bool QkdLinkSession::ship(AuthenticationService& sender,
                          AuthenticationService& receiver,
                          const Bytes& payload, BatchResult& result) {
  const auto framed = sender.protect(payload);
  if (!framed.has_value()) return false;
  ++result.control_messages;
  result.control_bytes += framed->size();
  const auto verified = receiver.verify(*framed);
  return verified.has_value() && *verified == payload;
}

BatchResult QkdLinkSession::run_batch(qkd::optics::Attack* attack) {
  BatchResult result;
  ++totals_.batches;

  // ---- Physical layer: one Qframe of raw symbols. -------------------------
  const auto frame = link_.run_frame(config_.frame_slots, attack);
  result.pulses = config_.frame_slots;
  result.detections = frame.bob.detected.popcount();
  result.duration_s = link_.frame_duration_s(config_.frame_slots);
  totals_.pulses += result.pulses;
  totals_.duration_s += result.duration_s;

  auto finish = [&](AbortReason reason) {
    result.reason = reason;
    result.accepted = reason == AbortReason::kNone;
    if (result.accepted) ++totals_.accepted_batches;
    return result;
  };

  // ---- Sifting (Bob announces detections; Alice replies with matches). ----
  const SiftMessage sift_msg =
      make_sift_message(next_frame_id_++, frame.bob);
  if (!ship(bob_auth_, alice_auth_, sift_msg.serialize(), result))
    return finish(AbortReason::kAuthExhausted);
  AliceSiftResult alice_sifted = alice_sift(frame.alice, sift_msg);
  if (!ship(alice_auth_, bob_auth_, alice_sifted.response.serialize(), result))
    return finish(AbortReason::kAuthExhausted);
  SiftOutcome bob_sifted =
      bob_apply_response(frame.bob, sift_msg, alice_sifted.response);

  qkd::BitVector alice_bits = std::move(alice_sifted.outcome.bits);
  qkd::BitVector bob_bits = std::move(bob_sifted.bits);
  result.sifted_bits = alice_bits.size();
  totals_.sifted_bits += result.sifted_bits;
  if (alice_bits.empty()) return finish(AbortReason::kNoSiftedBits);

  // Ground truth for attack accounting: sifted-slot join with Eve's record.
  result.qber_actual =
      static_cast<double>(alice_bits.hamming_distance(bob_bits)) /
      static_cast<double>(alice_bits.size());
  for (std::uint32_t slot : alice_sifted.outcome.slot_indices)
    if (frame.eve.known.get(slot)) ++result.eve_known_sifted;

  // ---- Error-rate estimation on a sacrificial random sample. --------------
  // The sample positions derive from the shared DRBG (announced on the wire
  // in the real system); the sampled bits are exchanged in clear and dropped.
  const std::size_t sample_target = static_cast<std::size_t>(
      config_.sample_fraction * static_cast<double>(alice_bits.size()));
  if (sample_target > 0) {
    qkd::BitVector sample_mask(alice_bits.size());
    std::size_t chosen = 0;
    while (chosen < sample_target) {
      const std::size_t pos = static_cast<std::size_t>(
          drbg_.next_u64() % alice_bits.size());
      if (!sample_mask.get(pos)) {
        sample_mask.set(pos, true);
        ++chosen;
      }
    }
    std::size_t sample_errors = 0;
    qkd::BitVector alice_keep, bob_keep;
    Bytes sample_exchange;  // the revealed bits, for wire accounting
    for (std::size_t i = 0; i < alice_bits.size(); ++i) {
      if (sample_mask.get(i)) {
        sample_errors += alice_bits.get(i) != bob_bits.get(i);
        sample_exchange.push_back(static_cast<std::uint8_t>(
            alice_bits.get(i) << 1 | static_cast<int>(bob_bits.get(i))));
      } else {
        alice_keep.push_back(alice_bits.get(i));
        bob_keep.push_back(bob_bits.get(i));
      }
    }
    result.sampled_bits = sample_target;
    result.qber_sampled =
        static_cast<double>(sample_errors) / static_cast<double>(sample_target);
    if (!ship(bob_auth_, alice_auth_, sample_exchange, result))
      return finish(AbortReason::kAuthExhausted);
    alice_bits = std::move(alice_keep);
    bob_bits = std::move(bob_keep);

    if (result.qber_sampled > config_.early_abort_qber) {
      ++totals_.aborted_qber;
      return finish(AbortReason::kQberTooHigh);
    }
  }
  if (alice_bits.empty()) return finish(AbortReason::kNoSiftedBits);

  // ---- Error correction (Bob drives; Alice answers parity queries). -------
  LocalParityOracle alice_oracle(alice_bits);
  EcStats ec;
  switch (config_.ec_strategy) {
    case EcStrategy::kBbnCascade: {
      BbnCascadeConfig cfg = config_.bbn_config;
      cfg.seed_base = static_cast<std::uint32_t>(drbg_.next_u32());
      ec = bbn_cascade_correct(bob_bits, alice_oracle, cfg);
      break;
    }
    case EcStrategy::kClassicCascade: {
      ClassicCascadeConfig cfg = config_.classic_config;
      cfg.seed_base = static_cast<std::uint32_t>(drbg_.next_u32());
      ec = classic_cascade_correct(
          bob_bits, alice_oracle,
          std::max(result.qber_sampled, 0.01), cfg);
      break;
    }
    case EcStrategy::kNaiveParity: {
      NaiveParityConfig cfg = config_.naive_config;
      cfg.perm_seed = static_cast<std::uint32_t>(drbg_.next_u32());
      ec = naive_parity_correct(bob_bits, alice_oracle, cfg);
      break;
    }
  }
  result.errors_corrected = ec.corrections;
  result.disclosed_bits = alice_oracle.disclosed();
  // Wire accounting for EC: each query is ~14 bytes out, 1 byte back.
  result.control_messages += 2 * ec.parity_queries;
  result.control_bytes += 15 * ec.parity_queries;
  if (config_.ec_strategy != EcStrategy::kNaiveParity && !ec.converged) {
    ++totals_.aborted_verify;
    return finish(AbortReason::kEcNotConverged);
  }

  // ---- Equality verification: exchange a hash of the corrected string. ----
  // (IKE "has no mechanisms for noticing" key disagreement — the QKD stack
  // must therefore catch residual errors here, Sec. 7.)
  const auto alice_hash = qkd::crypto::Sha1::hash(alice_bits.to_bytes());
  const auto bob_hash = qkd::crypto::Sha1::hash(bob_bits.to_bytes());
  const Bytes hash_msg(alice_hash.begin(), alice_hash.end());
  if (!ship(alice_auth_, bob_auth_, hash_msg, result))
    return finish(AbortReason::kAuthExhausted);
  if (alice_hash != bob_hash) {
    ++totals_.aborted_verify;
    return finish(AbortReason::kVerifyFailed);
  }

  // The exact error count is now known; apply the canonical QBER alarm.
  const double qber_exact = static_cast<double>(result.errors_corrected) /
                            static_cast<double>(alice_bits.size());
  if (qber_exact > config_.qber_abort_threshold) {
    ++totals_.aborted_qber;
    return finish(AbortReason::kQberTooHigh);
  }

  // ---- Entropy estimation (Sec. 6). ----------------------------------------
  EntropyInputs inputs;
  inputs.sifted_bits = alice_bits.size();
  inputs.error_bits = result.errors_corrected;
  inputs.transmitted_pulses = result.pulses;
  inputs.disclosed_bits = result.disclosed_bits;
  // The paper left r as "a placeholder ... until randomness testing is put
  // into the system"; our system has the testing (detector bias shows up in
  // the monobit statistic of the corrected bits).
  inputs.non_randomness =
      config_.run_randomness_tests
          ? test_randomness(alice_bits).non_randomness_bits
          : 0.0;
  inputs.mean_photon_number = config_.link.mean_photon_number;
  inputs.confidence = config_.confidence;
  inputs.defense = config_.defense;
  inputs.link_kind = config_.link_kind;
  inputs.multi_photon_policy = config_.multi_photon_policy;
  const EntropyEstimate entropy = estimate_entropy(inputs);

  const double usable = entropy.distillable_bits -
                        static_cast<double>(config_.pa_margin_bits);
  if (usable < 1.0) {
    ++totals_.aborted_entropy;
    return finish(AbortReason::kEntropyExhausted);
  }

  // ---- Privacy amplification (Sec. 5). -------------------------------------
  // Long batches are amplified in chunks of bounded field width; the total
  // output budget m is spread across chunks proportionally.
  const std::size_t m_total = static_cast<std::size_t>(usable);
  const std::size_t total_in = alice_bits.size();
  const std::size_t chunk_max = pa_max_block_bits();
  qkd::BitVector alice_key, bob_key;
  std::size_t offset = 0;
  std::size_t m_emitted = 0;
  while (offset < total_in) {
    const std::size_t chunk = std::min(chunk_max, total_in - offset);
    const std::size_t m_target =
        static_cast<std::size_t>(static_cast<double>(m_total) *
                                 static_cast<double>(offset + chunk) /
                                 static_cast<double>(total_in));
    const std::size_t m_chunk = std::min(m_target - m_emitted, chunk);
    if (m_chunk > 0) {
      const PaParams pa = make_pa_params(chunk, m_chunk, drbg_);
      if (!ship(alice_auth_, bob_auth_, pa.serialize(), result))
        return finish(AbortReason::kAuthExhausted);
      alice_key.append(privacy_amplify(alice_bits.slice(offset, chunk), pa));
      bob_key.append(privacy_amplify(bob_bits.slice(offset, chunk), pa));
      m_emitted += m_chunk;
    }
    offset += chunk;
  }
  if (!(alice_key == bob_key))
    throw std::logic_error("QkdLinkSession: PA outputs diverged after verify");

  // ---- Authentication replenishment (Sec. 5). ------------------------------
  qkd::BitVector key = alice_key;
  const std::size_t replenish =
      std::min(config_.auth_replenish_bits, key.size());
  if (replenish > 0) {
    const qkd::BitVector pad = key.slice(key.size() - replenish, replenish);
    alice_auth_.replenish(pad);
    bob_auth_.replenish(pad);
    key.resize(key.size() - replenish);
  }

  result.distilled_bits = key.size();
  totals_.distilled_bits += key.size();
  result.key = std::move(key);
  return finish(AbortReason::kNone);
}

qkd::BitVector QkdLinkSession::distill_bits(std::size_t bits,
                                            std::size_t max_batches,
                                            qkd::optics::Attack* attack) {
  qkd::BitVector out;
  for (std::size_t i = 0; i < max_batches && out.size() < bits; ++i) {
    BatchResult batch = run_batch(attack);
    if (batch.accepted) out.append(batch.key);
  }
  if (out.size() > bits) out.resize(bits);
  return out;
}

}  // namespace qkd::proto
