#include "src/qkd/parity_ec.hpp"

#include <algorithm>

namespace qkd::proto {

EcStats naive_parity_correct(qkd::BitVector& bob_bits, ParityOracle& alice,
                             const NaiveParityConfig& config) {
  EcStats stats;
  const std::size_t n = bob_bits.size();
  if (n == 0) {
    stats.converged = true;
    return stats;
  }
  stats.rounds = 1;
  const auto perm = seeded_permutation(config.perm_seed, n);
  const std::size_t block = std::max<std::size_t>(2, config.block_size);

  for (std::size_t lo = 0; lo < n; lo += block) {
    const std::size_t hi = std::min(n, lo + block);
    ParityQuery q;
    q.kind = ParityQuery::Kind::kPermutedRange;
    q.seed = config.perm_seed;
    q.begin = static_cast<std::uint32_t>(lo);
    q.end = static_cast<std::uint32_t>(hi);
    const bool alice_parity = alice.parity(q);
    ++stats.parity_queries;
    const bool bob_parity = parity_of_members(bob_bits, perm, lo, hi);
    if (alice_parity == bob_parity) continue;

    // Bisect to one error.
    std::size_t a = lo, b = hi;
    while (b - a > 1) {
      const std::size_t mid = a + (b - a) / 2;
      ParityQuery sub = q;
      sub.begin = static_cast<std::uint32_t>(a);
      sub.end = static_cast<std::uint32_t>(mid);
      const bool alice_left = alice.parity(sub);
      ++stats.parity_queries;
      const bool bob_left = parity_of_members(bob_bits, perm, a, mid);
      if (alice_left != bob_left)
        b = mid;
      else
        a = mid;
    }
    bob_bits.flip(perm[a]);
    ++stats.corrections;
  }
  // The single pass cannot certify equality (even-error blocks pass
  // silently); report convergence honestly as unknown.
  stats.converged = false;
  return stats;
}

}  // namespace qkd::proto
