#include "src/qkd/ec.hpp"

#include <stdexcept>

#include "src/common/rng.hpp"

namespace qkd::proto {

Bytes ParityQuery::serialize() const {
  Bytes out;
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u32(out, seed);
  put_u32(out, begin);
  put_u32(out, end);
  return out;
}

ParityQuery ParityQuery::deserialize(const Bytes& wire) {
  try {
    ByteReader reader(wire);
    ParityQuery q;
    const std::uint8_t kind = reader.u8();
    if (kind > 1) throw std::invalid_argument("ParityQuery: bad kind");
    q.kind = static_cast<Kind>(kind);
    q.seed = reader.u32();
    q.begin = reader.u32();
    q.end = reader.u32();
    if (!reader.done()) throw std::invalid_argument("ParityQuery: trailing");
    return q;
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("ParityQuery: truncated");
  }
}

qkd::BitVector subset_mask_from_seed(std::uint32_t seed, std::size_t n) {
  std::uint64_t mix = 0x5eedba5e00000000ULL | seed;
  qkd::Rng rng(splitmix64(mix));
  return rng.next_bits(n);
}

std::vector<std::uint32_t> lfsr_members(std::uint32_t seed, std::size_t n) {
  const qkd::BitVector mask = subset_mask_from_seed(seed, n);
  std::vector<std::uint32_t> members;
  members.reserve(n / 2 + 1);
  for (std::size_t i = 0; i < n; ++i)
    if (mask.get(i)) members.push_back(static_cast<std::uint32_t>(i));
  return members;
}

std::vector<std::uint32_t> seeded_permutation(std::uint32_t seed,
                                              std::size_t n) {
  std::vector<std::uint32_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::uint32_t>(i);
  qkd::Rng rng(0x9e3779b97f4a7c15ULL ^ (static_cast<std::uint64_t>(seed) << 16));
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

bool parity_of_members(const qkd::BitVector& bits,
                       const std::vector<std::uint32_t>& members,
                       std::size_t begin, std::size_t end) {
  if (begin > end || end > members.size())
    throw std::out_of_range("parity_of_members: bad range");
  bool p = false;
  for (std::size_t i = begin; i < end; ++i) p ^= bits.get(members[i]);
  return p;
}

LocalParityOracle::LocalParityOracle(const qkd::BitVector& bits)
    : bits_(bits) {}

bool LocalParityOracle::parity(const ParityQuery& query) {
  auto& cache = query.kind == ParityQuery::Kind::kLfsrSubset ? lfsr_cache_
                                                             : perm_cache_;
  const std::vector<std::uint32_t>* members = nullptr;
  for (const auto& [seed, m] : cache) {
    if (seed == query.seed) {
      members = &m;
      break;
    }
  }
  if (members == nullptr) {
    if (cache.size() >= 128) cache.erase(cache.begin());
    auto expanded = query.kind == ParityQuery::Kind::kLfsrSubset
                        ? lfsr_members(query.seed, bits_.size())
                        : seeded_permutation(query.seed, bits_.size());
    cache.emplace_back(query.seed, std::move(expanded));
    members = &cache.back().second;
  }
  ++disclosed_;
  return parity_of_members(bits_, *members, query.begin, query.end);
}

}  // namespace qkd::proto
