// Single-sided distillation peers: Alice's half and Bob's half of the
// Fig. 9 dialogue, each runnable in its OWN process over any
// wire::Transport (in practice the TCP transport — the integration suite
// forks one process per endpoint and connects them over localhost).
//
// The dialogue is frame-for-frame the one the in-process pipeline ships
// over the in-memory channel: SiftAnnounce/SiftDecision, two
// SampleReveals, the bare parity dialogue, EcSummary, two VerifyHashes,
// PaParams per chunk, Abort on rejection. Determinism does the rest: both
// peers seed the same DRBG, so sample positions, EC seeds and PA
// parameters come out identical on both sides without ever crossing the
// wire (Bob cross-checks the announced PA parameters against his own
// derivation and aborts on any divergence).
//
// Two frame types exist only here and are excluded from control-traffic
// accounting: QframeFeed (Alice simulates the optics and feeds Bob his
// detection record — the QUANTUM channel, bootstrapped) and KeyDigest
// (each side proves its distilled key byte-identical to the other's).
#pragma once

#include <cstdint>
#include <memory>

#include "src/optics/link.hpp"
#include "src/qkd/engine.hpp"
#include "src/wire/transport.hpp"

namespace qkd::proto {

/// One batch's outcome as seen from one side of the wire.
struct PeerOutcome {
  bool accepted = false;
  AbortReason reason = AbortReason::kNone;
  qkd::BitVector key;             // this side's distilled block
  bool digest_matched = false;    // peer's KeyDigest agreed with ours
  std::uint64_t frame_id = 0;
  std::size_t sifted_bits = 0;
  std::size_t errors_corrected = 0;
  double qber_sampled = 0.0;
  // Control frames THIS side put on the wire (QframeFeed/KeyDigest
  // excluded, matching the in-process accounting).
  std::size_t control_messages = 0;
  std::size_t control_bytes = 0;
};

/// Alice's endpoint: simulates the quantum channel, feeds Bob his
/// detections, then runs her half of the distillation dialogue.
class AlicePeer {
 public:
  AlicePeer(QkdLinkConfig config, std::uint64_t seed);
  ~AlicePeer();

  PeerOutcome run_batch(wire::Transport& io);

  const AuthenticationService& auth() const { return auth_; }

 private:
  QkdLinkConfig config_;
  qkd::optics::WeakCoherentLink link_;
  qkd::crypto::Drbg drbg_;
  AuthenticationService auth_;
  std::uint64_t next_frame_id_ = 0;
};

/// Bob's endpoint: receives the Qframe feed, then drives sifting
/// announcements and error correction from his side of the wire.
class BobPeer {
 public:
  BobPeer(QkdLinkConfig config, std::uint64_t seed);
  ~BobPeer();

  PeerOutcome run_batch(wire::Transport& io);

  const AuthenticationService& auth() const { return auth_; }

 private:
  QkdLinkConfig config_;
  qkd::crypto::Drbg drbg_;
  AuthenticationService auth_;
  std::uint64_t next_frame_id_ = 0;
};

}  // namespace qkd::proto
