#include "src/qkd/cascade_bbn.hpp"

#include <algorithm>
#include <vector>

namespace qkd::proto {
namespace {

/// One announced subset: its seed, expanded member list, Alice's parity for
/// the full subset, and Bob's current parity.
struct Subset {
  std::uint32_t seed;
  std::vector<std::uint32_t> members;
  bool alice_parity;
  bool bob_parity;

  bool mismatched() const { return alice_parity != bob_parity; }
};

/// Bisects subset `s` down to one erroneous member and flips it in
/// `bob_bits`. Precondition: s.mismatched(). Returns the flipped position.
std::uint32_t bisect_fix(qkd::BitVector& bob_bits, ParityOracle& alice,
                         const Subset& s, EcStats& stats) {
  std::size_t lo = 0, hi = s.members.size();
  // Invariant: parity over members[lo, hi) differs between Alice and Bob.
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ParityQuery q;
    q.kind = ParityQuery::Kind::kLfsrSubset;
    q.seed = s.seed;
    q.begin = static_cast<std::uint32_t>(lo);
    q.end = static_cast<std::uint32_t>(mid);
    const bool alice_left = alice.parity(q);
    ++stats.parity_queries;
    const bool bob_left = parity_of_members(bob_bits, s.members, lo, mid);
    if (alice_left != bob_left)
      hi = mid;  // the odd-error half is the left one
    else
      lo = mid;
  }
  const std::uint32_t pos = s.members[lo];
  bob_bits.flip(pos);
  ++stats.corrections;
  return pos;
}

}  // namespace

EcStats bbn_cascade_correct(qkd::BitVector& bob_bits, ParityOracle& alice,
                            const BbnCascadeConfig& config) {
  EcStats stats;
  const std::size_t n = bob_bits.size();
  if (n == 0) {
    stats.converged = true;
    return stats;
  }

  std::uint32_t next_seed = config.seed_base;
  unsigned clean_rounds = 0;

  for (unsigned round = 0; round < config.max_rounds; ++round) {
    ++stats.rounds;

    // Announce this round's subsets and exchange full-subset parities.
    std::vector<Subset> subsets;
    subsets.reserve(config.subsets_per_round);
    for (unsigned i = 0; i < config.subsets_per_round; ++i) {
      Subset s;
      s.seed = next_seed++;
      s.members = lfsr_members(s.seed, n);
      if (s.members.empty()) continue;
      ParityQuery q;
      q.kind = ParityQuery::Kind::kLfsrSubset;
      q.seed = s.seed;
      q.begin = 0;
      q.end = static_cast<std::uint32_t>(s.members.size());
      s.alice_parity = alice.parity(q);
      ++stats.parity_queries;
      s.bob_parity = parity_of_members(bob_bits, s.members, 0, s.members.size());
      subsets.push_back(std::move(s));
    }

    bool round_had_mismatch = false;
    // "This will clear up some discrepancies but may introduce other new
    // ones, and so the process continues": loop until no subset mismatches.
    for (;;) {
      Subset* target = nullptr;
      for (auto& s : subsets) {
        if (s.mismatched()) {
          target = &s;
          break;
        }
      }
      if (target == nullptr) break;
      round_had_mismatch = true;

      const std::uint32_t fixed_pos = bisect_fix(bob_bits, alice, *target, stats);

      // Both sides flip the recorded parity of every subset containing the
      // corrected bit (local bookkeeping, nothing on the wire).
      for (auto& s : subsets) {
        const bool contains =
            std::binary_search(s.members.begin(), s.members.end(), fixed_pos);
        if (contains) s.bob_parity = !s.bob_parity;
      }
    }

    if (!round_had_mismatch) {
      if (++clean_rounds >= config.clean_rounds_to_converge) {
        stats.converged = true;
        return stats;
      }
    } else {
      clean_rounds = 0;
    }
  }
  // Round limit hit; convergence unknown — report honestly.
  stats.converged = false;
  return stats;
}

}  // namespace qkd::proto
