// The QKD protocol engine: Fig. 9's stack run end to end.
//
//   Raw Qframes -> Sifting -> Error Correction -> Privacy Amplification
//                -> Authentication -> Distilled bits
//
// A QkdLinkSession owns one simulated weak-coherent link plus the paired
// Alice/Bob protocol endpoints. run_batch() pushes one Qframe through the
// whole pipeline and either yields a distilled key block (identical on both
// sides, by construction verified) or reports why the batch was rejected —
// too much disturbance (eavesdropping alarm), entropy exhausted, or residual
// error detected.
//
// All control traffic is serialized to real wire bytes, carried through the
// Wegman-Carter authentication service, and accounted (message and byte
// counts), so protocol overhead experiments read directly off BatchResult.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/bitvector.hpp"
#include "src/crypto/drbg.hpp"
#include "src/optics/link.hpp"
#include "src/qkd/authentication.hpp"
#include "src/qkd/cascade_bbn.hpp"
#include "src/qkd/cascade_classic.hpp"
#include "src/qkd/ec.hpp"
#include "src/qkd/entropy.hpp"
#include "src/qkd/parity_ec.hpp"

namespace qkd::proto {

enum class EcStrategy { kBbnCascade, kClassicCascade, kNaiveParity };

enum class AbortReason {
  kNone = 0,
  kNoSiftedBits,     // link produced nothing usable
  kQberTooHigh,      // sampled error rate above the alarm threshold
  kEcNotConverged,   // error correction hit its round limit
  kVerifyFailed,     // post-correction hash comparison mismatched
  kEntropyExhausted, // estimate says Eve may know everything
  kAuthExhausted,    // no pad bits left to authenticate control traffic
};

const char* abort_reason_name(AbortReason reason);

struct QkdLinkConfig {
  /// Physical-layer calibration: fiber length/loss, mean photon number,
  /// detector efficiency and dark rate, trigger rate. Defaults model the
  /// paper's Sec. 4 operating point (10 km, mu = 0.1, 1 MHz, ~6% QBER).
  qkd::optics::LinkParams link;

  /// Trigger slots per Qframe batch.
  std::size_t frame_slots = 1 << 20;

  /// Fraction of sifted bits sacrificed for the error-rate estimate.
  double sample_fraction = 0.05;

  /// Early abort when the *sampled* QBER exceeds this. The sample is small,
  /// so this gate is set at intercept-resend levels where even a noisy
  /// estimate is unambiguous.
  double early_abort_qber = 0.25;

  /// Abort threshold on the *exact* error rate found by error correction
  /// (the canonical 11 % BB84 alarm point). Unlike the sampled gate this is
  /// measured over every sifted bit, so it does not false-alarm at the 6-8 %
  /// operating point.
  double qber_abort_threshold = 0.11;

  /// Default error correction is classic Cascade: the BBN variant's
  /// bisections run over ~n/2-member subsets and disclose ~log2(n) bits per
  /// error, which at the 6-8 % QBER operating point leaves no distillable
  /// key after the entropy deductions (bench E5 quantifies this — it is the
  /// reproduction's most interesting negative result). The paper's variant
  /// remains fully implemented and selectable.
  EcStrategy ec_strategy = EcStrategy::kClassicCascade;
  /// Tuning for whichever corrector `ec_strategy` selects; the other two
  /// config blocks are carried but unused.
  BbnCascadeConfig bbn_config;
  ClassicCascadeConfig classic_config;
  NaiveParityConfig naive_config;

  /// Bennett by default: the paper observes Slutsky's bound is "overly
  /// conservative for finite-length blocks" — with c = 5 at 6 % QBER it
  /// (correctly per its own terms) refuses to distill (bench E6 shows the
  /// crossover).
  DefenseFunction defense = DefenseFunction::kBennett;

  /// Source model assumed by the entropy estimate: weak-coherent pulses
  /// leak multi-photon information to a PNS attacker; single-photon and
  /// entangled sources do not.
  LinkKind link_kind = LinkKind::kWeakCoherent;

  /// How the multi-photon deduction t_multiphoton is charged: the
  /// worst-case policy counts every transmitted multi-photon pulse, the
  /// kReceivedConditional default counts P[N>=2 | N>=1] over received
  /// pulses only (bench E8 measures how much this undercharges a PNS Eve).
  MultiPhotonPolicy multi_photon_policy =
      MultiPhotonPolicy::kReceivedConditional;

  /// Confidence multiplier c on the combined deviation
  /// c * sqrt(s_def^2 + s_multi^2) subtracted by the entropy estimate;
  /// 5.0 follows the paper's Appendix.
  double confidence = 5.0;

  /// Run the Sec. 6 randomness-test battery on the corrected bits and feed
  /// the resulting shortening measure into the entropy estimate as r.
  bool run_randomness_tests = true;

  /// Extra shrinkage below the entropy estimate (security parameter s:
  /// Eve's expected knowledge of the distilled key <= 2^-s bits).
  std::size_t pa_margin_bits = 30;

  /// Distilled bits per accepted batch diverted to authentication pads.
  std::size_t auth_replenish_bits = 192;

  /// 32-bit tags keep the per-message pad cost below the replenishment
  /// budget; 2^-32 forgery probability per control message is ample since a
  /// single forged message only aborts one batch.
  AuthenticationService::Config auth{
      .tag_bits = 32, .max_message_bits = 1 << 17, .low_water_bits = 1024};
};

struct BatchResult {
  // Volumes at each pipeline stage.
  std::size_t pulses = 0;
  std::size_t detections = 0;
  std::size_t sifted_bits = 0;
  std::size_t sampled_bits = 0;      // sacrificed for error estimation
  std::size_t errors_corrected = 0;
  std::size_t disclosed_bits = 0;    // EC parity disclosures (d)
  std::size_t distilled_bits = 0;    // final key bits delivered
  // Quality measures.
  double qber_sampled = 0.0;
  double qber_actual = 0.0;          // ground truth over all sifted bits
  // Protocol overhead.
  std::size_t control_messages = 0;
  std::size_t control_bytes = 0;
  // Ground truth: how much Eve actually knew about the sifted bits.
  std::size_t eve_known_sifted = 0;
  // Outcome.
  bool accepted = false;
  AbortReason reason = AbortReason::kNone;
  qkd::BitVector key;                // the distilled block (both sides equal)
  double duration_s = 0.0;           // wall-clock at the configured trigger rate
};

/// Cumulative accounting across batches.
struct SessionTotals {
  std::size_t batches = 0;
  std::size_t accepted_batches = 0;
  std::size_t pulses = 0;
  std::size_t sifted_bits = 0;
  std::size_t distilled_bits = 0;
  std::size_t aborted_qber = 0;
  std::size_t aborted_entropy = 0;
  std::size_t aborted_verify = 0;
  double duration_s = 0.0;

  double distilled_rate_bps() const {
    return duration_s > 0.0 ? static_cast<double>(distilled_bits) / duration_s
                            : 0.0;
  }
};

class QkdLinkSession {
 public:
  QkdLinkSession(QkdLinkConfig config, std::uint64_t seed);

  /// Runs one Qframe through the pipeline. `attack` taps the quantum channel.
  BatchResult run_batch(qkd::optics::Attack* attack = nullptr);

  /// Runs batches until `bits` distilled bits accumulate or `max_batches`
  /// pass; returns the concatenated key material.
  qkd::BitVector distill_bits(std::size_t bits, std::size_t max_batches = 64,
                              qkd::optics::Attack* attack = nullptr);

  const SessionTotals& totals() const { return totals_; }
  const QkdLinkConfig& config() const { return config_; }
  const qkd::optics::WeakCoherentLink& link() const { return link_; }
  const AuthenticationService& alice_auth() const { return alice_auth_; }
  const AuthenticationService& bob_auth() const { return bob_auth_; }

 private:
  /// Ships `payload` through the authentication service pair, counting
  /// wire bytes. Returns false on pad exhaustion or verification failure.
  bool ship(AuthenticationService& sender, AuthenticationService& receiver,
            const Bytes& payload, BatchResult& result);

  QkdLinkConfig config_;
  qkd::optics::WeakCoherentLink link_;
  qkd::crypto::Drbg drbg_;
  AuthenticationService alice_auth_;
  AuthenticationService bob_auth_;
  SessionTotals totals_;
  std::uint64_t next_frame_id_ = 0;
};

}  // namespace qkd::proto
