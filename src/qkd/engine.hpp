// The QKD protocol engine: Fig. 9's stack run end to end.
//
//   Raw Qframes -> Sifting -> Error Correction -> Privacy Amplification
//                -> Authentication -> Distilled bits
//
// A QkdLinkSession owns one simulated weak-coherent link plus the paired
// Alice/Bob protocol endpoints. run_batch() pushes one Qframe through the
// stage pipeline (src/qkd/pipeline.hpp) and either yields a distilled key
// block (identical on both sides, by construction verified) or reports why
// the batch was rejected — too much disturbance (eavesdropping alarm),
// entropy exhausted, or residual error detected.
//
// All control traffic is serialized to real wire bytes, carried through the
// Wegman-Carter authentication service, and accounted (message and byte
// counts), so protocol overhead experiments read directly off BatchResult —
// including per-stage wall time and wire bytes (BatchResult::stages).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/crypto/drbg.hpp"
#include "src/keystore/key_pool.hpp"
#include "src/keystore/key_producer.hpp"
#include "src/net/channel_transport.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/optics/link.hpp"
#include "src/qkd/authentication.hpp"
#include "src/qkd/cascade_bbn.hpp"
#include "src/qkd/cascade_classic.hpp"
#include "src/qkd/ec.hpp"
#include "src/qkd/entropy.hpp"
#include "src/qkd/parity_ec.hpp"

namespace qkd::proto {

enum class EcStrategy { kBbnCascade, kClassicCascade, kNaiveParity };

enum class AbortReason {
  kNone = 0,
  kNoSiftedBits,     // link produced nothing usable
  kQberTooHigh,      // sampled error rate above the alarm threshold
  kEcNotConverged,   // error correction hit its round limit
  kVerifyFailed,     // post-correction hash comparison mismatched
  kEntropyExhausted, // estimate says Eve may know everything
  kAuthExhausted,    // no pad bits left to authenticate control traffic
  kChannelLost,      // classical channel dropped traffic past retransmission
};

const char* abort_reason_name(AbortReason reason);

/// Number of distinct AbortReason values (kNone included), for histograms.
inline constexpr std::size_t kAbortReasonCount = 8;

class PipelineStage;  // src/qkd/pipeline.hpp

struct QkdLinkConfig {
  /// Physical-layer calibration: fiber length/loss, mean photon number,
  /// detector efficiency and dark rate, trigger rate. Defaults model the
  /// paper's Sec. 4 operating point (10 km, mu = 0.1, 1 MHz, ~6% QBER).
  qkd::optics::LinkParams link;

  /// Trigger slots per Qframe batch.
  std::size_t frame_slots = 1 << 20;

  /// Fraction of sifted bits sacrificed for the error-rate estimate.
  double sample_fraction = 0.05;

  /// Early abort when the *sampled* QBER exceeds this. The sample is small,
  /// so this gate is set at intercept-resend levels where even a noisy
  /// estimate is unambiguous.
  double early_abort_qber = 0.25;

  /// Abort threshold on the *exact* error rate found by error correction
  /// (the canonical 11 % BB84 alarm point). Unlike the sampled gate this is
  /// measured over every sifted bit, so it does not false-alarm at the 6-8 %
  /// operating point.
  double qber_abort_threshold = 0.11;

  /// Default error correction is classic Cascade: the BBN variant's
  /// bisections run over ~n/2-member subsets and disclose ~log2(n) bits per
  /// error, which at the 6-8 % QBER operating point leaves no distillable
  /// key after the entropy deductions (bench E5 quantifies this — it is the
  /// reproduction's most interesting negative result). The paper's variant
  /// remains fully implemented and selectable.
  EcStrategy ec_strategy = EcStrategy::kClassicCascade;
  /// Tuning for whichever corrector `ec_strategy` selects; the other two
  /// config blocks are carried but unused.
  BbnCascadeConfig bbn_config;
  ClassicCascadeConfig classic_config;
  NaiveParityConfig naive_config;

  /// Bennett by default: the paper observes Slutsky's bound is "overly
  /// conservative for finite-length blocks" — with c = 5 at 6 % QBER it
  /// (correctly per its own terms) refuses to distill (bench E6 shows the
  /// crossover).
  DefenseFunction defense = DefenseFunction::kBennett;

  /// Source model assumed by the entropy estimate: weak-coherent pulses
  /// leak multi-photon information to a PNS attacker; single-photon and
  /// entangled sources do not.
  LinkKind link_kind = LinkKind::kWeakCoherent;

  /// How the multi-photon deduction t_multiphoton is charged: the
  /// worst-case policy counts every transmitted multi-photon pulse, the
  /// kReceivedConditional default counts P[N>=2 | N>=1] over received
  /// pulses only (bench E8 measures how much this undercharges a PNS Eve).
  MultiPhotonPolicy multi_photon_policy =
      MultiPhotonPolicy::kReceivedConditional;

  /// Confidence multiplier c on the combined deviation
  /// c * sqrt(s_def^2 + s_multi^2) subtracted by the entropy estimate;
  /// 5.0 follows the paper's Appendix.
  double confidence = 5.0;

  /// Run the Sec. 6 randomness-test battery on the corrected bits and feed
  /// the resulting shortening measure into the entropy estimate as r.
  bool run_randomness_tests = true;

  /// Extra shrinkage below the entropy estimate (security parameter s:
  /// Eve's expected knowledge of the distilled key <= 2^-s bits).
  std::size_t pa_margin_bits = 30;

  /// Distilled bits per accepted batch diverted to authentication pads.
  std::size_t auth_replenish_bits = 192;

  /// 32-bit tags keep the per-message pad cost below the replenishment
  /// budget; 2^-32 forgery probability per control message is ample since a
  /// single forged message only aborts one batch.
  AuthenticationService::Config auth{
      .tag_bits = 32, .max_message_bits = 1 << 17, .low_water_bits = 1024};

  /// Prepositioned pad bits beyond the structural minimum the auth service
  /// requires. This is the one-time-pad runway before the first replenishment
  /// lands; 0 exhausts it within the first batch (the kAuthExhausted DoS).
  std::size_t preposition_extra_bits = 8192;
};

/// Wall-time and wire traffic attributed to one pipeline stage of one batch.
struct StageStats {
  std::string name;                  // PipelineStage::name()
  double wall_s = 0.0;               // host wall-clock spent in the stage
  std::size_t control_messages = 0;  // wire messages shipped by the stage
  std::size_t control_bytes = 0;     // wire bytes shipped by the stage
};

struct BatchResult {
  // Volumes at each pipeline stage.
  std::size_t pulses = 0;
  std::size_t detections = 0;
  std::size_t sifted_bits = 0;
  std::size_t sampled_bits = 0;      // sacrificed for error estimation
  std::size_t errors_corrected = 0;
  std::size_t disclosed_bits = 0;    // EC parity disclosures (d)
  std::size_t distilled_bits = 0;    // final key bits delivered
  // Quality measures.
  double qber_sampled = 0.0;
  double qber_actual = 0.0;          // ground truth over all sifted bits
  // Protocol overhead. Message/byte counts are MEASURED from the encoded
  // frames the batch actually put on the public channel (retransmissions
  // included); wire_stall_s is the wall-clock the lockstep dialogue spent
  // waiting on the channel's one-way latency, already folded into
  // duration_s.
  std::size_t control_messages = 0;
  std::size_t control_bytes = 0;
  double wire_stall_s = 0.0;
  // Ground truth: how much Eve actually knew about the sifted bits.
  std::size_t eve_known_sifted = 0;
  // Outcome.
  bool accepted = false;
  AbortReason reason = AbortReason::kNone;
  qkd::BitVector key;                // the distilled block (both sides equal)
  double duration_s = 0.0;           // wall-clock at the configured trigger rate
  // Per-stage decomposition, in execution order; an aborted batch records
  // only the stages that ran (the last entry is the one that aborted).
  std::vector<StageStats> stages;
};

/// Cumulative accounting across batches.
struct SessionTotals {
  std::size_t batches = 0;
  std::size_t accepted_batches = 0;
  std::size_t pulses = 0;
  std::size_t sifted_bits = 0;
  std::size_t distilled_bits = 0;
  double duration_s = 0.0;
  /// Outcome histogram, indexed by AbortReason. by_reason[kNone] counts
  /// accepted batches; the full histogram sums to `batches`.
  std::array<std::size_t, kAbortReasonCount> by_reason{};

  std::size_t aborted(AbortReason reason) const {
    return by_reason[static_cast<std::size_t>(reason)];
  }

  // Named views over the histogram for the common operator questions.
  std::size_t aborted_qber() const {
    return aborted(AbortReason::kQberTooHigh);
  }
  std::size_t aborted_entropy() const {
    return aborted(AbortReason::kEntropyExhausted);
  }
  /// Correction-integrity failures: EC round-limit plus hash mismatch.
  std::size_t aborted_verify() const {
    return aborted(AbortReason::kEcNotConverged) +
           aborted(AbortReason::kVerifyFailed);
  }

  double distilled_rate_bps() const {
    return duration_s > 0.0 ? static_cast<double>(distilled_bits) / duration_s
                            : 0.0;
  }
};

/// What distill() delivered and — when it missed the target — why: the
/// per-batch abort-reason histogram tells an operator whether the link is
/// starved by eavesdropping, entropy exhaustion, pad exhaustion, or loss.
struct DistillOutcome {
  qkd::BitVector key;          // concatenated accepted-batch key material
  bool reached_target = false; // key.size() met the request before the cap
  std::size_t batches_run = 0;
  std::array<std::size_t, kAbortReasonCount> by_reason{};

  std::size_t aborted(AbortReason reason) const {
    return by_reason[static_cast<std::size_t>(reason)];
  }
};

/// One link session doubles as a single-stream keystore::KeyProducer: the
/// producer paths (advance / produce_batches) deliver accepted batches into
/// attached KeySupply sinks — or, with no sinks, into the session-owned
/// supply — so consumers never touch BatchResult directly.
class QkdLinkSession : public qkd::keystore::KeyProducer {
 public:
  QkdLinkSession(QkdLinkConfig config, std::uint64_t seed);
  ~QkdLinkSession() override;

  /// Runs one Qframe through the stage pipeline. `attack` taps the quantum
  /// channel.
  BatchResult run_batch(qkd::optics::Attack* attack = nullptr);

  /// Runs batches until `bits` distilled bits accumulate or `max_batches`
  /// pass; reports the key material plus the abort-reason histogram.
  DistillOutcome distill(std::size_t bits, std::size_t max_batches = 64,
                         qkd::optics::Attack* attack = nullptr);

  /// Convenience wrapper around distill() returning just the key.
  qkd::BitVector distill_bits(std::size_t bits, std::size_t max_batches = 64,
                              qkd::optics::Attack* attack = nullptr);

  /// The stages run_batch executes, in order (default_pipeline() unless
  /// replaced). Stages may be reordered, swapped, or instrumented; the
  /// caller owns the consequences of non-protocol orders.
  const std::vector<std::unique_ptr<PipelineStage>>& pipeline() const {
    return pipeline_;
  }
  void set_pipeline(std::vector<std::unique_ptr<PipelineStage>> stages);

  const SessionTotals& totals() const { return totals_; }
  const QkdLinkConfig& config() const { return config_; }
  const qkd::optics::WeakCoherentLink& link() const { return link_; }
  const AuthenticationService& alice_auth() const { return alice_auth_; }
  const AuthenticationService& bob_auth() const { return bob_auth_; }

  /// The public channel every control frame of this session crosses.
  /// Install impairments or ClassicalConditions here to attack the framed
  /// byte stream (the scenario engine's classical-channel actions do).
  qkd::net::PublicChannel& channel() { return channel_; }
  const qkd::net::PublicChannel& channel() const { return channel_; }

  /// Installs (or, with nullptr, removes) a tracer: every run_batch then
  /// records a "qkd.batch" span with one "qkd.<stage>" child per pipeline
  /// stage, into `cell` (the session's lane in a LinkKeyService pool).
  void set_tracer(obs::Tracer* tracer, std::size_t cell = 0) {
    tracer_ = tracer;
    trace_cell_ = cell;
  }

  /// Registers a collector exposing SessionTotals plus cumulative
  /// per-stage wall time under `prefix`; totals()/BatchResult::stages keep
  /// working unchanged. The session must outlive the registry's snapshots.
  void bind_metrics(obs::MetricsRegistry& registry, std::string prefix);

  // ---- keystore::KeyProducer ----------------------------------------------
  std::size_t supply_count() const override { return 1; }
  qkd::keystore::KeySupply& supply(std::size_t index = 0) override;
  const qkd::keystore::KeySupply& supply(std::size_t index = 0) const override;
  void attach_sink(std::size_t index, qkd::keystore::KeySupply& sink) override;

  /// Runs however many whole Qframes fit into `dt_seconds` of link time
  /// (fractional frame time carries to the next call), delivering accepted
  /// key to the sinks.
  void advance(double dt_seconds) override;

  /// Runs `count` batches against the installed attack, delivering accepted
  /// key to the sinks (or the session-owned supply).
  void produce_batches(std::size_t count);

  /// Installs (or clears, with nullptr) an eavesdropper on the quantum
  /// channel, applied by the producer paths; run_batch callers pass theirs
  /// explicitly.
  void set_attack(std::unique_ptr<qkd::optics::Attack> attack);
  qkd::optics::Attack* attack() { return attack_.get(); }

  /// The session-owned supply as its concrete type (labelling, stats); the
  /// KeyProducer interface exposes it as a KeySupply.
  qkd::keystore::KeyPool& supply_pool() { return supply_; }

 private:
  /// Deposits one accepted batch into the sinks (or the owned supply).
  void deliver(const qkd::BitVector& key);

  QkdLinkConfig config_;
  qkd::optics::WeakCoherentLink link_;
  qkd::crypto::Drbg drbg_;
  AuthenticationService alice_auth_;
  AuthenticationService bob_auth_;
  qkd::net::PublicChannel channel_;
  qkd::net::ChannelTransport alice_wire_;
  qkd::net::ChannelTransport bob_wire_;
  std::vector<std::unique_ptr<PipelineStage>> pipeline_;
  SessionTotals totals_;
  /// Cumulative per-stage wall seconds / control bytes, indexed like
  /// pipeline_ (reset by set_pipeline): the registry's view of the stage
  /// table without touching BatchResult.
  std::vector<double> stage_wall_s_;
  std::vector<std::size_t> stage_bytes_;
  obs::Tracer* tracer_ = nullptr;
  std::size_t trace_cell_ = 0;
  std::uint64_t next_frame_id_ = 0;
  qkd::keystore::KeyPool supply_;
  std::vector<qkd::keystore::KeySupply*> sinks_;
  std::unique_ptr<qkd::optics::Attack> attack_;
  double frame_debt_s_ = 0.0;  // simulated time owed to advance()
};

}  // namespace qkd::proto
