// The producer face of the key-delivery layer.
//
// A KeyProducer turns simulated time into distilled key material and
// deposits it into KeySupply sinks: a single QkdLinkSession is a
// one-stream producer; a LinkKeyService is an N-stream producer (one
// stream per topology link, distilled in parallel, each stream
// bit-identical regardless of thread count).
//
// Every stream has a producer-owned default supply. attach_sink() mirrors
// a stream into external supplies instead — the paper's two VPN gateways
// each attach their own pool to the same stream and thereafter hold
// mirror-image reservoirs without any hand-copied deposits. While one or
// more sinks are attached, the producer's own supply stops accumulating
// (key is delivered, not archived).
//
// Threading: deposits for one stream are always made from one thread at a
// time, but different streams may run on different workers — attach a
// given sink to at most one stream unless the sinks are synchronized
// externally.
#pragma once

#include <cstddef>

#include "src/keystore/key_supply.hpp"

namespace qkd::keystore {

class KeyProducer {
 public:
  virtual ~KeyProducer() = default;

  /// Independent key streams this producer fills (topology links).
  virtual std::size_t supply_count() const = 0;

  /// The producer-owned default supply of stream `index`.
  virtual KeySupply& supply(std::size_t index) = 0;
  virtual const KeySupply& supply(std::size_t index) const = 0;

  /// Routes stream `index` into `sink` (in addition to any sinks already
  /// attached; the producer-owned supply stops receiving). `sink` must
  /// outlive the producer or be detached by destroying the producer first.
  virtual void attach_sink(std::size_t index, KeySupply& sink) = 0;

  /// Advances simulated time by `dt_seconds`, running whatever distillation
  /// fits and depositing accepted key into the attached sinks (or the
  /// producer-owned supplies). Fractional batch time carries over.
  virtual void advance(double dt_seconds) = 0;
};

}  // namespace qkd::keystore
