#include "src/keystore/key_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace qkd::keystore {
namespace {

const char* site_or_unspecified(const char* site) {
  return site != nullptr ? site : "(unspecified)";
}

void check_lane(unsigned lane) {
  if (lane >= KeySupply::kLaneCount)
    throw std::invalid_argument("KeyPool: lane must be < kLaneCount");
}

}  // namespace

const char* KeyPool::mode_name(Mode mode) {
  switch (mode) {
    case Mode::kUnset: return "unset";
    case Mode::kLinear: return "linear FIFO";
    case Mode::kLaned: return "Qblock/lane";
  }
  return "?";
}

void KeyPool::require_mode(Mode wanted, const char* op, const char* site) {
  if (mode_ == Mode::kUnset) {
    mode_ = wanted;
    mode_site_ = site_or_unspecified(site);
    return;
  }
  if (mode_ == wanted) return;
  throw std::logic_error(
      "KeyPool[" + (label_.empty() ? "unlabelled" : label_) + "]: " + op +
      " uses " + mode_name(wanted) + " framing, but this pool is in " +
      mode_name(mode_) + " mode (framing fixed by the first call from " +
      mode_site_ + "; this call from " + site_or_unspecified(site) +
      "); Qblock/lane and linear FIFO framing cannot be mixed on one pool");
}

void KeyPool::deposit(const qkd::BitVector& bits) {
  const std::size_t before = available_bits();
  pool_.append(bits);
  stats_.bits_deposited += bits.size();
  signal_availability(before, available_bits());
}

std::size_t KeyPool::available_bits() const {
  const std::size_t total = base_bits_ + pool_.size();
  if (mode_ == Mode::kLinear) return total - linear_cursor_;
  if (mode_ == Mode::kUnset) return total;
  // Laned mode: bits in complete, unreserved blocks of both lanes.
  std::size_t blocks = 0;
  for (unsigned lane = 0; lane < kLaneCount; ++lane)
    blocks += available_qblocks(lane);
  return blocks * kQblockBits;
}

std::size_t KeyPool::available_qblocks(unsigned lane) const {
  check_lane(lane);
  const std::size_t total_blocks = (base_bits_ + pool_.size()) / kQblockBits;
  // Lane-local block k occupies absolute block kLaneCount*k + lane.
  const std::size_t lane_blocks =
      total_blocks > lane
          ? (total_blocks - lane + kLaneCount - 1) / kLaneCount
          : 0;
  const std::size_t fresh =
      lane_blocks > lane_next_[lane] ? lane_blocks - lane_next_[lane] : 0;
  return fresh + lane_released_[lane].size();
}

qkd::BitVector KeyPool::lane_block_bits(std::size_t lane_index,
                                        unsigned lane) const {
  const std::size_t abs_block = kLaneCount * lane_index + lane;
  const std::size_t abs_bit = abs_block * kQblockBits;
  return pool_.slice(abs_bit - base_bits_, kQblockBits);
}

std::optional<KeyBlock> KeyPool::reserve_qblocks(std::size_t count,
                                                 unsigned lane,
                                                 const char* site) {
  check_lane(lane);
  if (count == 0) return KeyBlock{};
  require_mode(Mode::kLaned, "reserve_qblocks", site);
  if (available_qblocks(lane) < count) {
    ++stats_.failed_withdrawals;
    signal_exhausted(count * kQblockBits, available_bits());
    return std::nullopt;
  }
  const std::size_t before = available_bits();

  Reservation reservation;
  reservation.lane = lane;
  reservation.blocks.reserve(count);
  // Released blocks are re-served first (lowest index first); they always
  // precede lane_next_, so the collected indices come out ascending.
  auto& released = lane_released_[lane];
  while (reservation.blocks.size() < count && !released.empty()) {
    reservation.blocks.push_back(*released.begin());
    released.erase(released.begin());
  }
  while (reservation.blocks.size() < count)
    reservation.blocks.push_back(lane_next_[lane]++);

  KeyBlock block;
  block.key_id = next_key_id_++;
  for (std::size_t index : reservation.blocks)
    block.bits.append(lane_block_bits(index, lane));
  reservation.bits = block.bits.size();
  stats_.bits_reserved += reservation.bits;
  reservations_[block.key_id] = std::move(reservation);
  signal_availability(before, available_bits());
  return block;
}

std::optional<KeyBlock> KeyPool::request_qblocks(std::size_t count,
                                                 unsigned lane,
                                                 const char* site) {
  auto block = reserve_qblocks(count, lane, site);
  if (!block.has_value() || block->key_id == 0) return block;
  acknowledge(block->key_id);
  return block;
}

std::optional<KeyBlock> KeyPool::request_bits(std::size_t bits,
                                              const char* site) {
  if (bits == 0) return KeyBlock{};
  require_mode(Mode::kLinear, "request_bits", site);
  if (bits > base_bits_ + pool_.size() - linear_cursor_) {
    ++stats_.failed_withdrawals;
    signal_exhausted(bits, available_bits());
    return std::nullopt;
  }
  const std::size_t before = available_bits();
  KeyBlock block;
  block.key_id = next_key_id_++;
  block.bits = pool_.slice(linear_cursor_ - base_bits_, bits);
  linear_cursor_ += bits;
  stats_.bits_withdrawn += bits;
  compact();
  signal_availability(before, available_bits());
  return block;
}

void KeyPool::acknowledge(std::uint64_t key_id) {
  const auto it = reservations_.find(key_id);
  if (it == reservations_.end())
    throw std::invalid_argument(
        "KeyPool[" + (label_.empty() ? "unlabelled" : label_) +
        "]: acknowledge of unknown or already settled key_id " +
        std::to_string(key_id));
  const Reservation& reservation = it->second;
  stats_.bits_withdrawn += reservation.bits;
  stats_.qblocks_withdrawn += reservation.blocks.size();
  stats_.bits_reserved -= reservation.bits;
  reservations_.erase(it);
  compact();
}

void KeyPool::release(std::uint64_t key_id) {
  const auto it = reservations_.find(key_id);
  if (it == reservations_.end())
    throw std::invalid_argument(
        "KeyPool[" + (label_.empty() ? "unlabelled" : label_) +
        "]: release of unknown or already settled key_id " +
        std::to_string(key_id));
  const std::size_t before = available_bits();
  const Reservation& reservation = it->second;
  for (std::size_t index : reservation.blocks)
    lane_released_[reservation.lane].insert(index);
  stats_.bits_released += reservation.bits;
  stats_.bits_reserved -= reservation.bits;
  reservations_.erase(it);
  signal_availability(before, available_bits());
}

void KeyPool::compact() {
  // Everything before the earliest live bit can be dropped. Released and
  // still-reserved blocks are live: release() must be able to re-serve the
  // original bits.
  std::size_t keep_from;
  if (mode_ == Mode::kLinear) {
    keep_from = linear_cursor_;
  } else if (mode_ == Mode::kLaned) {
    keep_from = SIZE_MAX;
    for (unsigned lane = 0; lane < kLaneCount; ++lane) {
      std::size_t frontier = lane_next_[lane];
      if (!lane_released_[lane].empty())
        frontier = std::min(frontier, *lane_released_[lane].begin());
      for (const auto& [id, reservation] : reservations_) {
        if (reservation.lane == lane && !reservation.blocks.empty())
          frontier = std::min(frontier, reservation.blocks.front());
      }
      keep_from = std::min(keep_from,
                           (kLaneCount * frontier + lane) * kQblockBits);
    }
  } else {
    return;
  }
  if (keep_from <= base_bits_) return;
  const std::size_t drop = keep_from - base_bits_;
  if (drop > (1 << 20) && drop > pool_.size() / 2) {
    pool_ = pool_.slice(drop, pool_.size() - drop);
    base_bits_ = keep_from;
  }
}

}  // namespace qkd::keystore
