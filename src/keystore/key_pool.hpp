// The concrete KeySupply: a reservoir of distilled QKD key material that
// owns the Qblock/lane framing (the VPN/OPC reservoir of Fig. 12).
//
// The QKD protocol engine deposits distilled bits; consumers withdraw them
// through the KeySupply verbs, most prominently as 1024-bit "Qblocks" (the
// unit visible in the paper's Fig. 12 transcript: "reply 1 Qblocks 1024
// bits 1024.000000 entropy"). Both VPN gateways hold mirror-image pools —
// the same bits in the same order — so block N withdrawn at Alice equals
// block N withdrawn at Bob. Running dry is the key-consumption race of
// Section 2 ("Sufficiently Rapid Key Delivery").
//
// Lanes. The paper notes the extensions needed "negotiation mechanisms to
// agree on which QKD bits will be used": when both gateways initiate
// Phase-2 negotiations concurrently (e.g. simultaneous rekey after
// expiry), naive FIFO withdrawal would interleave differently on the two
// ends and scramble every subsequent key. Qblocks are therefore
// partitioned into two lanes by block-index parity — lane 0 holds blocks
// 0, 2, 4, ...; lane 1 holds blocks 1, 3, 5, ... — and each negotiation
// draws from the lane owned by its initiating direction. Concurrent
// opposite-direction negotiations then consume disjoint blocks and stay in
// lockstep without extra round trips.
//
// Reservations. reserve_qblocks() earmarks lane blocks without counting
// them consumed; release() returns them for re-serving lowest-index-first
// (before any fresh block), so two mirrored pools driven through the same
// completed negotiations remain in lockstep even across abandoned offers
// and partial grants.
//
// Framing modes are exclusive per pool: Qblock/lane calls and linear
// request_bits() calls cannot be mixed — doing so throws std::logic_error
// whose message names the pool, both framing modes, and both call sites.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/bitvector.hpp"
#include "src/keystore/key_supply.hpp"

namespace qkd::keystore {

class KeyPool final : public KeySupply {
 public:
  struct Stats {
    std::uint64_t bits_deposited = 0;
    std::uint64_t bits_withdrawn = 0;    // acknowledged (consumed for good)
    std::uint64_t qblocks_withdrawn = 0;
    std::uint64_t failed_withdrawals = 0;  // pool-empty events
    std::uint64_t bits_reserved = 0;   // currently outstanding earmarks
    std::uint64_t bits_released = 0;   // cumulative, handed back via release
  };

  KeyPool() = default;
  /// `label` names this pool in misuse diagnostics ("alice-gw", "link-3").
  explicit KeyPool(std::string label) : label_(std::move(label)) {}

  void set_label(std::string label) { label_ = std::move(label); }
  const std::string& label() const { return label_; }

  // ---- KeySupply ----------------------------------------------------------
  void deposit(const qkd::BitVector& bits) override;
  std::optional<KeyBlock> request_qblocks(std::size_t count, unsigned lane,
                                          const char* site = nullptr) override;
  std::optional<KeyBlock> request_bits(std::size_t bits,
                                       const char* site = nullptr) override;
  std::optional<KeyBlock> reserve_qblocks(std::size_t count, unsigned lane,
                                          const char* site = nullptr) override;
  void acknowledge(std::uint64_t key_id) override;
  void release(std::uint64_t key_id) override;

  std::size_t available_bits() const override;
  /// Complete, unconsumed, unreserved Qblocks remaining in `lane`
  /// (released blocks count as available again).
  std::size_t available_qblocks(unsigned lane = 0) const override;

  const Stats& stats() const { return stats_; }

  /// The key_id the next successful withdrawal/reservation will be issued.
  /// Two mirrored pools driven through identical calls agree on this at
  /// every step — the lockstep witness invariant checkers compare.
  std::uint64_t next_key_id() const { return next_key_id_; }

 private:
  enum class Mode { kUnset, kLinear, kLaned };

  struct Reservation {
    unsigned lane = 0;
    std::vector<std::size_t> blocks;  // lane-local indices, ascending
    std::size_t bits = 0;
  };

  static const char* mode_name(Mode mode);
  /// Switches to (or stays in) `wanted`; throws the contextual
  /// std::logic_error on a framing-mode conflict.
  void require_mode(Mode wanted, const char* op, const char* site);
  qkd::BitVector lane_block_bits(std::size_t lane_index, unsigned lane) const;
  void compact();

  std::string label_;
  qkd::BitVector pool_;        // bits not yet dropped by compaction
  std::size_t base_bits_ = 0;  // absolute bit offset of pool_[0]
  std::size_t linear_cursor_ = 0;      // absolute, kLinear mode
  std::size_t lane_next_[kLaneCount] = {0, 0};  // next fresh lane-local index
  std::set<std::size_t> lane_released_[kLaneCount];  // re-serve before fresh
  std::map<std::uint64_t, Reservation> reservations_;  // outstanding only
  std::uint64_t next_key_id_ = 1;
  Mode mode_ = Mode::kUnset;
  std::string mode_site_;  // call site that fixed the framing mode
  Stats stats_;
};

}  // namespace qkd::keystore
