// The unified key-delivery interface: distilled QKD key as a fungible
// commodity ("Sufficiently Rapid Key Delivery", Sec. 2; the VPN/OPC
// reservoir of Fig. 12).
//
// One seam, two faces. Producers (a single QkdLinkSession, a whole
// LinkKeyService mesh) deposit distilled bits into a KeySupply; consumers
// (IKE, the trusted-relay transport, benches) obtain key exclusively
// through it. Every piece of key handed out is a KeyBlock with a key_id —
// the per-supply sequence number that names the withdrawal for later
// settlement (acknowledge/release) and tracing. Two mirrored supplies
// driven through an identical call sequence derive identical key_ids;
// across asymmetric flows (one end reserves an offer the other never
// sees) the counters diverge, so cross-end agreement on *which bits* is
// guaranteed by the lane/block ordering below, not by comparing key_ids.
//
// Consumption verbs:
//   * request_*  — withdraw now: reserve + acknowledge in one step.
//   * reserve_qblocks / acknowledge / release — two-phase consumption for
//     consumers whose need is conditional (an IKE initiator earmarks pad
//     material when it makes an offer, acknowledges when the responder
//     grants, releases when the negotiation times out). Released blocks
//     return to their lane and are re-served lowest-index-first, so two
//     mirrored supplies driven through the same completed negotiations
//     stay in bit-for-bit lockstep even across partial grants and
//     abandoned offers.
//
// Lanes. Qblocks are partitioned into kLaneCount lanes by block-index
// parity; each negotiation direction owns one lane, so concurrent
// opposite-direction IKE rekeys consume disjoint blocks (see KeyPool for
// the framing; see IkeDaemon for lane assignment).
//
// Starvation is an event, not a poll. A supply calls back when it crosses
// its low-water mark going down (kLowWater), when a request fails for lack
// of key (kExhausted), and when a deposit lifts it back over the mark
// (kReplenished) — the hook that lets IKE react to the key-consumption
// race of Sec. 2 instead of discovering starvation one failed negotiation
// at a time.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/bitvector.hpp"

namespace qkd::keystore {

/// A unit of delivered key: the bits plus the per-supply sequence number
/// that names them on both ends of a mirrored pair.
struct KeyBlock {
  std::uint64_t key_id = 0;  // 1-based; 0 is "no block"
  qkd::BitVector bits;
};

enum class SupplyEventKind {
  kLowWater,     // available bits crossed the low-water mark going down
  kExhausted,    // a request/reserve failed for lack of key
  kReplenished,  // a deposit/release lifted availability back over the mark
};

const char* supply_event_kind_name(SupplyEventKind kind);

struct SupplyEvent {
  SupplyEventKind kind = SupplyEventKind::kLowWater;
  std::size_t available_bits = 0;  // after the triggering operation
  std::size_t requested_bits = 0;  // kExhausted only: size of the failed ask
};

class KeySupply {
 public:
  /// The paper's Fig. 12 unit: "reply 1 Qblocks 1024 bits".
  static constexpr std::size_t kQblockBits = 1024;
  /// Qblock lanes (one per negotiation direction).
  static constexpr unsigned kLaneCount = 2;

  using EventCallback = std::function<void(const SupplyEvent&)>;

  virtual ~KeySupply() = default;

  // ---- Producer face ------------------------------------------------------
  /// Appends freshly distilled bits. Mirrored supplies must see identical
  /// deposit streams (the QKD pipeline's verify stage guarantees the bits;
  /// the producer guarantees the ordering).
  virtual void deposit(const qkd::BitVector& bits) = 0;

  // ---- Consumer face ------------------------------------------------------
  /// Withdraws `count` complete Qblocks from `lane` immediately (reserve +
  /// acknowledge in one step); nullopt — without consuming — if the lane
  /// cannot cover the request. `site` names the caller in misuse
  /// diagnostics.
  virtual std::optional<KeyBlock> request_qblocks(
      std::size_t count, unsigned lane, const char* site = nullptr) = 0;

  /// Withdraws `bits` in FIFO order (linear framing, for consumers without
  /// the Qblock/lane discipline); nullopt without consuming if short.
  virtual std::optional<KeyBlock> request_bits(std::size_t bits,
                                               const char* site = nullptr) = 0;

  /// Earmarks `count` Qblocks of `lane` without committing: the blocks stop
  /// being served to other callers, but the material is not counted
  /// consumed until acknowledge(). release() hands the blocks back for
  /// re-serving in block order.
  virtual std::optional<KeyBlock> reserve_qblocks(
      std::size_t count, unsigned lane, const char* site = nullptr) = 0;

  /// Commits a reservation: the material is consumed for good. Throws
  /// std::invalid_argument for an unknown (or already settled) key_id.
  virtual void acknowledge(std::uint64_t key_id) = 0;

  /// Cancels a reservation: its blocks return to their lane and are
  /// re-served (lowest block index first) before fresh ones. Throws
  /// std::invalid_argument for an unknown key_id.
  virtual void release(std::uint64_t key_id) = 0;

  /// Convenience: withdraws everything currently available through the
  /// linear framing (producer hand-off, tests).
  KeyBlock take_all(const char* site = nullptr);

  // ---- Introspection ------------------------------------------------------
  virtual std::size_t available_bits() const = 0;
  virtual std::size_t available_qblocks(unsigned lane = 0) const = 0;

  // ---- Starvation signalling ----------------------------------------------
  /// Threshold for kLowWater / kReplenished; 0 (default) disables those two
  /// events (kExhausted always fires).
  void set_low_water_bits(std::size_t bits) { low_water_bits_ = bits; }
  std::size_t low_water_bits() const { return low_water_bits_; }

  /// Registers an observer. Callbacks run synchronously inside the
  /// triggering deposit/request/release, on that caller's thread. Returns
  /// a token for unsubscribe(); an observer whose lifetime may end before
  /// the supply's MUST unsubscribe (the supply calls whatever the callback
  /// captured).
  std::uint64_t subscribe(EventCallback callback);
  void unsubscribe(std::uint64_t token);

 protected:
  /// Implementations report every availability change through these; the
  /// base class turns threshold crossings into events.
  void signal_availability(std::size_t before, std::size_t after);
  void signal_exhausted(std::size_t requested, std::size_t available);

 private:
  void emit(SupplyEventKind kind, std::size_t available,
            std::size_t requested);

  std::size_t low_water_bits_ = 0;
  std::uint64_t next_subscription_token_ = 1;
  std::vector<std::pair<std::uint64_t, EventCallback>> callbacks_;
};

}  // namespace qkd::keystore
