#include "src/keystore/key_supply.hpp"

#include <algorithm>

namespace qkd::keystore {

const char* supply_event_kind_name(SupplyEventKind kind) {
  switch (kind) {
    case SupplyEventKind::kLowWater: return "low-water";
    case SupplyEventKind::kExhausted: return "exhausted";
    case SupplyEventKind::kReplenished: return "replenished";
  }
  return "?";
}

KeyBlock KeySupply::take_all(const char* site) {
  const std::size_t bits = available_bits();
  if (bits == 0) return KeyBlock{};
  return *request_bits(bits, site);
}

std::uint64_t KeySupply::subscribe(EventCallback callback) {
  const std::uint64_t token = next_subscription_token_++;
  callbacks_.emplace_back(token, std::move(callback));
  return token;
}

void KeySupply::unsubscribe(std::uint64_t token) {
  std::erase_if(callbacks_,
                [token](const auto& entry) { return entry.first == token; });
}

void KeySupply::signal_availability(std::size_t before, std::size_t after) {
  if (low_water_bits_ == 0 || before == after) return;
  if (before >= low_water_bits_ && after < low_water_bits_)
    emit(SupplyEventKind::kLowWater, after, 0);
  else if (before < low_water_bits_ && after >= low_water_bits_)
    emit(SupplyEventKind::kReplenished, after, 0);
}

void KeySupply::signal_exhausted(std::size_t requested,
                                 std::size_t available) {
  emit(SupplyEventKind::kExhausted, available, requested);
}

void KeySupply::emit(SupplyEventKind kind, std::size_t available,
                     std::size_t requested) {
  SupplyEvent event;
  event.kind = kind;
  event.available_bits = available;
  event.requested_bits = requested;
  // Callbacks may re-enter the supply (a replenish handler that immediately
  // withdraws) and may subscribe/unsubscribe while we iterate. Snapshot the
  // tokens and re-resolve each before calling: an observer unsubscribed
  // mid-event (itself or by a peer) is skipped without displacing anyone
  // else, a subscriber added mid-event waits for the next event, and the
  // copied function object survives self-unsubscription.
  std::vector<std::uint64_t> tokens;
  tokens.reserve(callbacks_.size());
  for (const auto& [token, callback] : callbacks_) tokens.push_back(token);
  for (const std::uint64_t token : tokens) {
    const auto it =
        std::find_if(callbacks_.begin(), callbacks_.end(),
                     [token](const auto& entry) { return entry.first == token; });
    if (it == callbacks_.end()) continue;
    const EventCallback callback = it->second;
    callback(event);
  }
}

}  // namespace qkd::keystore
