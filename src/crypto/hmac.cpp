#include "src/crypto/hmac.hpp"

#include <algorithm>
#include <array>

namespace qkd::crypto {

Sha1::Digest hmac_sha1(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const auto digest = Sha1::hash(key);
    std::copy(digest.begin(), digest.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha1 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha1 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

Bytes prf_plus(std::span<const std::uint8_t> key,
               std::span<const std::uint8_t> seed, std::size_t out_len) {
  Bytes out;
  out.reserve(out_len + Sha1::kDigestSize);
  Bytes block;  // K(i-1) | seed | counter
  std::uint8_t counter = 1;
  Sha1::Digest prev{};
  bool first = true;
  while (out.size() < out_len) {
    block.clear();
    if (!first) block.insert(block.end(), prev.begin(), prev.end());
    block.insert(block.end(), seed.begin(), seed.end());
    block.push_back(counter++);
    prev = hmac_sha1(key, block);
    out.insert(out.end(), prev.begin(), prev.end());
    first = false;
  }
  out.resize(out_len);
  return out;
}

bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace qkd::crypto
