// 32-bit Galois Linear-Feedback Shift Register.
//
// The paper's Cascade variant identifies each pseudo-random bit-subset of the
// sifted bits by "a 32-bit seed for the LFSR" (Section 5). This LFSR is that
// generator: given a seed, it emits the deterministic bit stream both Alice
// and Bob expand into a subset membership mask.
#pragma once

#include <cstdint>

#include "src/common/bitvector.hpp"

namespace qkd::crypto {

class Lfsr32 {
 public:
  /// Maximal-length feedback polynomial x^32 + x^22 + x^2 + x + 1
  /// (taps 0xC0000401 in Galois form gives period 2^32 - 1).
  static constexpr std::uint32_t kDefaultTaps = 0xC0000401u;

  /// A zero seed would lock the register at zero forever; it is mapped to a
  /// fixed non-zero state so any 32-bit seed is usable on the wire.
  explicit Lfsr32(std::uint32_t seed, std::uint32_t taps = kDefaultTaps);

  /// Next output bit (the bit shifted out of the register).
  bool next_bit();

  /// Next `n` bits packed into a BitVector (bit 0 = first emitted).
  qkd::BitVector next_bits(std::size_t n);

  /// Expands a subset-membership mask of `n` positions: position i is in the
  /// subset iff the i-th LFSR output bit is 1. This is the mask both sides of
  /// the Cascade exchange derive from the announced seed.
  static qkd::BitVector subset_mask(std::uint32_t seed, std::size_t n,
                                    std::uint32_t taps = kDefaultTaps);

  std::uint32_t state() const { return state_; }

 private:
  std::uint32_t state_;
  std::uint32_t taps_;
};

}  // namespace qkd::crypto
