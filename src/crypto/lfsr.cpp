#include "src/crypto/lfsr.hpp"

namespace qkd::crypto {

Lfsr32::Lfsr32(std::uint32_t seed, std::uint32_t taps)
    : state_(seed != 0 ? seed : 0xACE1ACE1u), taps_(taps) {}

bool Lfsr32::next_bit() {
  const bool out = state_ & 1u;
  state_ >>= 1;
  if (out) state_ ^= taps_;
  return out;
}

qkd::BitVector Lfsr32::next_bits(std::size_t n) {
  qkd::BitVector v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, next_bit());
  return v;
}

qkd::BitVector Lfsr32::subset_mask(std::uint32_t seed, std::size_t n,
                                   std::uint32_t taps) {
  Lfsr32 lfsr(seed, taps);
  return lfsr.next_bits(n);
}

}  // namespace qkd::crypto
