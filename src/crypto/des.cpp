#include "src/crypto/des.hpp"

#include <cstring>
#include <stdexcept>

namespace qkd::crypto {
namespace {

// FIPS 46-3 tables. Entries are 1-based bit positions counted from the MSB,
// exactly as printed in the standard.
constexpr std::uint8_t kIp[64] = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::uint8_t kFp[64] = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::uint8_t kExpansion[48] = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::uint8_t kPbox[32] = {16, 7,  20, 21, 29, 12, 28, 17,
                                    1,  15, 23, 26, 5,  18, 31, 10,
                                    2,  8,  24, 14, 32, 27, 3,  9,
                                    19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::uint8_t kPc1[56] = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::uint8_t kPc2[48] = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::uint8_t kShifts[16] = {1, 1, 2, 2, 2, 2, 2, 2,
                                      1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSboxes[8][64] = {
    {14, 4,  13, 1, 2,  15, 11, 8,  3,  10, 6,  12, 5,  9,  0, 7,
     0,  15, 7,  4, 14, 2,  13, 1,  10, 6,  12, 11, 9,  5,  3, 8,
     4,  1,  14, 8, 13, 6,  2,  11, 15, 12, 9,  7,  3,  10, 5, 0,
     15, 12, 8,  2, 4,  9,  1,  7,  5,  11, 3,  14, 10, 0,  6, 13},
    {15, 1,  8,  14, 6,  11, 3,  4,  9,  7, 2,  13, 12, 0, 5,  10,
     3,  13, 4,  7,  15, 2,  8,  14, 12, 0, 1,  10, 6,  9, 11, 5,
     0,  14, 7,  11, 10, 4,  13, 1,  5,  8, 12, 6,  9,  3, 2,  15,
     13, 8,  10, 1,  3,  15, 4,  2,  11, 6, 7,  12, 0,  5, 14, 9},
    {10, 0,  9,  14, 6, 3,  15, 5,  1,  13, 12, 7,  11, 4,  2,  8,
     13, 7,  0,  9,  3, 4,  6,  10, 2,  8,  5,  14, 12, 11, 15, 1,
     13, 6,  4,  9,  8, 15, 3,  0,  11, 1,  2,  12, 5,  10, 14, 7,
     1,  10, 13, 0,  6, 9,  8,  7,  4,  15, 14, 3,  11, 5,  2,  12},
    {7,  13, 14, 3, 0,  6,  9,  10, 1,  2, 8, 5,  11, 12, 4,  15,
     13, 8,  11, 5, 6,  15, 0,  3,  4,  7, 2, 12, 1,  10, 14, 9,
     10, 6,  9,  0, 12, 11, 7,  13, 15, 1, 3, 14, 5,  2,  8,  4,
     3,  15, 0,  6, 10, 1,  13, 8,  9,  4, 5, 11, 12, 7,  2,  14},
    {2,  12, 4,  1,  7,  10, 11, 6,  8,  5,  3,  15, 13, 0, 14, 9,
     14, 11, 2,  12, 4,  7,  13, 1,  5,  0,  15, 10, 3,  9, 8,  6,
     4,  2,  1,  11, 10, 13, 7,  8,  15, 9,  12, 5,  6,  3, 0,  14,
     11, 8,  12, 7,  1,  14, 2,  13, 6,  15, 0,  9,  10, 4, 5,  3},
    {12, 1,  10, 15, 9, 2,  6,  8,  0,  13, 3,  4,  14, 7,  5,  11,
     10, 15, 4,  2,  7, 12, 9,  5,  6,  1,  13, 14, 0,  11, 3,  8,
     9,  14, 15, 5,  2, 8,  12, 3,  7,  0,  4,  10, 1,  13, 11, 6,
     4,  3,  2,  12, 9, 5,  15, 10, 11, 14, 1,  7,  6,  0,  8,  13},
    {4,  11, 2,  14, 15, 0, 8,  13, 3,  12, 9, 7,  5,  10, 6, 1,
     13, 0,  11, 7,  4,  9, 1,  10, 14, 3,  5, 12, 2,  15, 8, 6,
     1,  4,  11, 13, 12, 3, 7,  14, 10, 15, 6, 8,  0,  5,  9, 2,
     6,  11, 13, 8,  1,  4, 10, 7,  9,  5,  0, 15, 14, 2,  3, 12},
    {13, 2,  8,  4, 6,  15, 11, 1,  10, 9,  3,  14, 5,  0,  12, 7,
     1,  15, 13, 8, 10, 3,  7,  4,  12, 5,  6,  11, 0,  14, 9,  2,
     7,  11, 4,  1, 9,  12, 14, 2,  0,  6,  10, 13, 15, 3,  5,  8,
     2,  1,  14, 7, 4,  10, 8,  13, 15, 12, 9,  0,  3,  5,  6,  11}};

// Applies a 1-based-from-MSB bit permutation from `in_bits`-wide input to
// `out_bits`-wide output.
std::uint64_t permute(std::uint64_t value, const std::uint8_t* table,
                      unsigned out_bits, unsigned in_bits) {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < out_bits; ++i) {
    out <<= 1;
    out |= (value >> (in_bits - table[i])) & 1;
  }
  return out;
}

std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey) {
  const std::uint64_t expanded = permute(r, kExpansion, 48, 32) ^ subkey;
  std::uint32_t s_out = 0;
  for (int box = 0; box < 8; ++box) {
    const auto six =
        static_cast<std::uint8_t>((expanded >> (42 - 6 * box)) & 0x3f);
    const unsigned row = ((six & 0x20) >> 4) | (six & 1);
    const unsigned col = (six >> 1) & 0xf;
    s_out = (s_out << 4) | kSboxes[box][16 * row + col];
  }
  return static_cast<std::uint32_t>(permute(s_out, kPbox, 32, 32));
}

std::uint64_t load_be64(std::span<const std::uint8_t> b) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | b[static_cast<std::size_t>(i)];
  return v;
}

void store_be64(std::uint64_t v, std::uint8_t* out) {
  for (int i = 7; i >= 0; --i) {
    out[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

std::span<const std::uint8_t> subkey_span(std::span<const std::uint8_t> key,
                                          std::size_t index) {
  if (key.size() != 24)
    throw std::invalid_argument("TripleDes: key must be 24 bytes");
  return key.subspan(index * 8, 8);
}

std::uint64_t des_rounds(std::uint64_t block,
                         const std::array<std::uint64_t, 16>& keys,
                         bool decrypt) {
  const std::uint64_t ip = permute(block, kIp, 64, 64);
  std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(ip);
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t k = keys[static_cast<std::size_t>(decrypt ? 15 - i : i)];
    const std::uint32_t next_r = l ^ feistel(r, k);
    l = r;
    r = next_r;
  }
  // Final swap: preoutput is R16 | L16.
  const std::uint64_t preoutput = (static_cast<std::uint64_t>(r) << 32) | l;
  return permute(preoutput, kFp, 64, 64);
}

}  // namespace

Des::Des(std::span<const std::uint8_t> key) {
  if (key.size() != 8) throw std::invalid_argument("Des: key must be 8 bytes");
  const std::uint64_t k64 = load_be64(key);
  const std::uint64_t pc1 = permute(k64, kPc1, 56, 64);
  std::uint32_t c = static_cast<std::uint32_t>(pc1 >> 28) & 0x0fffffff;
  std::uint32_t d = static_cast<std::uint32_t>(pc1) & 0x0fffffff;
  for (int i = 0; i < 16; ++i) {
    const unsigned s = kShifts[i];
    c = ((c << s) | (c >> (28 - s))) & 0x0fffffff;
    d = ((d << s) | (d >> (28 - s))) & 0x0fffffff;
    const std::uint64_t cd = (static_cast<std::uint64_t>(c) << 28) | d;
    subkeys_[static_cast<std::size_t>(i)] = permute(cd, kPc2, 48, 56);
  }
}

std::uint64_t Des::encrypt(std::uint64_t block) const {
  return des_rounds(block, subkeys_, /*decrypt=*/false);
}

std::uint64_t Des::decrypt(std::uint64_t block) const {
  return des_rounds(block, subkeys_, /*decrypt=*/true);
}

TripleDes::TripleDes(std::span<const std::uint8_t> key)
    : k1_(subkey_span(key, 0)),
      k2_(subkey_span(key, 1)),
      k3_(subkey_span(key, 2)) {}

std::uint64_t TripleDes::encrypt(std::uint64_t block) const {
  return k3_.encrypt(k2_.decrypt(k1_.encrypt(block)));
}

std::uint64_t TripleDes::decrypt(std::uint64_t block) const {
  return k1_.decrypt(k2_.encrypt(k3_.decrypt(block)));
}

Bytes des3_cbc_encrypt(const TripleDes& des, std::uint64_t iv,
                       std::span<const std::uint8_t> plaintext) {
  if (plaintext.size() % 8 != 0)
    throw std::invalid_argument("des3_cbc_encrypt: unpadded input");
  Bytes out(plaintext.size());
  std::uint64_t chain = iv;
  for (std::size_t off = 0; off < plaintext.size(); off += 8) {
    const std::uint64_t p = load_be64(plaintext.subspan(off, 8));
    chain = des.encrypt(p ^ chain);
    store_be64(chain, out.data() + off);
  }
  return out;
}

Bytes des3_cbc_decrypt(const TripleDes& des, std::uint64_t iv,
                       std::span<const std::uint8_t> ciphertext) {
  if (ciphertext.size() % 8 != 0)
    throw std::invalid_argument("des3_cbc_decrypt: truncated input");
  Bytes out(ciphertext.size());
  std::uint64_t chain = iv;
  for (std::size_t off = 0; off < ciphertext.size(); off += 8) {
    const std::uint64_t c = load_be64(ciphertext.subspan(off, 8));
    store_be64(des.decrypt(c) ^ chain, out.data() + off);
    chain = c;
  }
  return out;
}

}  // namespace qkd::crypto
