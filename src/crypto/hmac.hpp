// HMAC-SHA1 (RFC 2104) and the IKE-style PRF+ key expansion built on it.
#pragma once

#include <span>

#include "src/common/bytes.hpp"
#include "src/crypto/sha1.hpp"

namespace qkd::crypto {

/// HMAC-SHA1 of `data` under `key`.
Sha1::Digest hmac_sha1(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> data);

/// RFC-2409-style iterated keying material expansion:
///   K1 = prf(key, seed | 0x01), K2 = prf(key, K1 | seed | 0x02), ...
/// concatenated and truncated to `out_len` bytes. IKE uses this to stretch
/// SKEYID (+ QKD bits, in our extension) into per-SA keys.
Bytes prf_plus(std::span<const std::uint8_t> key,
               std::span<const std::uint8_t> seed, std::size_t out_len);

/// Constant-time comparison (authenticator checks must not leak timing).
bool constant_time_equal(std::span<const std::uint8_t> a,
                         std::span<const std::uint8_t> b);

}  // namespace qkd::crypto
