// Arithmetic in GF(2^n) for privacy amplification.
//
// Section 5 of the paper: "The side that initiates privacy amplification
// chooses a linear hash function over the Galois Field GF[2^n] where n is the
// number of bits as input, rounded up to a multiple of 32. He then transmits
// ... the (sparse) primitive polynomial of the Galois field, a multiplier
// (n bits long), and an m-bit polynomial to add ..."
//
// Elements are polynomials over GF(2) packed into BitVectors (bit i = the
// coefficient of x^i). Field moduli are low-weight (trinomial / pentanomial)
// irreducible polynomials. A built-in table covers the n values the stack
// uses; any other multiple-of-32 n is served by an exhaustive low-weight
// search validated by a Ben-Or irreducibility test. (Irreducibility is what
// 2-universality of the hash requires; the paper says "primitive", which the
// table entries also are, but we only rely on the field structure.)
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bitvector.hpp"

namespace qkd::crypto {

/// A sparse polynomial over GF(2), stored as the sorted list of exponents with
/// nonzero coefficients, highest first, e.g. x^32+x^7+x^3+x^2+1 is
/// {32, 7, 3, 2, 0}.
struct SparsePoly {
  std::vector<unsigned> exponents;

  unsigned degree() const { return exponents.empty() ? 0 : exponents.front(); }
  qkd::BitVector to_bits() const;  // dense, degree+1 bits
  bool operator==(const SparsePoly&) const = default;
};

/// Carry-less (GF(2)[x]) product of two bit-polynomials; result has
/// a.size()+b.size()-1 bits (or is empty if either input is empty).
qkd::BitVector clmul(const qkd::BitVector& a, const qkd::BitVector& b);

/// Reduces `value` modulo the sparse polynomial `mod` (in place); afterwards
/// value.size() == mod.degree().
void reduce_mod(qkd::BitVector& value, const SparsePoly& mod);

/// Ben-Or / Rabin irreducibility test over GF(2).
bool is_irreducible(const SparsePoly& poly);

/// Returns a low-weight irreducible polynomial of the given degree: the table
/// entry if present (verified once), otherwise the lexicographically smallest
/// irreducible trinomial or pentanomial found by search. Results are memoized.
/// Throws std::invalid_argument for degree < 2.
SparsePoly irreducible_poly(unsigned degree);

/// The finite field GF(2^n) with a fixed modulus.
class Gf2Field {
 public:
  /// Uses irreducible_poly(n) as the modulus.
  explicit Gf2Field(unsigned n);
  /// Uses a caller-supplied modulus (must be irreducible of degree n); this is
  /// the path a privacy-amplification *responder* takes when the initiator
  /// announces the polynomial on the wire.
  Gf2Field(unsigned n, SparsePoly modulus);

  unsigned n() const { return n_; }
  const SparsePoly& modulus() const { return modulus_; }

  /// Field multiplication: inputs are n-bit values (shorter inputs are
  /// implicitly zero-extended), output is exactly n bits.
  qkd::BitVector multiply(const qkd::BitVector& a, const qkd::BitVector& b) const;

  /// Field addition (XOR); sizes may differ, result has n bits.
  qkd::BitVector add(const qkd::BitVector& a, const qkd::BitVector& b) const;

  /// a^(2^k) via repeated squaring (used by the irreducibility test and tests).
  qkd::BitVector pow2k(const qkd::BitVector& a, unsigned k) const;

 private:
  unsigned n_;
  SparsePoly modulus_;
};

}  // namespace qkd::crypto
