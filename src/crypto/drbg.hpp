// Deterministic random bit generator (hash-DRBG over SHA-1).
//
// Protocol components that need unpredictable-but-reproducible randomness in
// the simulation (IKE cookies, nonces, ESP IVs, privacy-amplification
// multipliers) draw from a Drbg seeded from the experiment's master seed.
// This is NIST SP 800-90A-shaped, not certified; determinism for experiment
// replay is the design goal.
#pragma once

#include <cstdint>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"
#include "src/crypto/sha1.hpp"

namespace qkd::crypto {

class Drbg {
 public:
  explicit Drbg(std::span<const std::uint8_t> seed);
  explicit Drbg(std::uint64_t seed);

  Bytes generate(std::size_t n_bytes);
  qkd::BitVector generate_bits(std::size_t n_bits);
  std::uint32_t next_u32();
  std::uint64_t next_u64();

  /// Mixes additional entropy into the state.
  void reseed(std::span<const std::uint8_t> entropy);

 private:
  Sha1::Digest state_{};
  std::uint64_t counter_ = 0;
};

}  // namespace qkd::crypto
