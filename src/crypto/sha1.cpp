#include "src/crypto/sha1.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace qkd::crypto {

Sha1::Sha1()
    : h_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u},
      buffer_{} {}

void Sha1::update(std::span<const std::uint8_t> data) {
  if (finished_) throw std::logic_error("Sha1::update after finish");
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha1::Digest Sha1::finish() {
  if (finished_) throw std::logic_error("Sha1::finish called twice");
  finished_ = true;
  const std::uint64_t bit_len = total_bytes_ * 8;
  std::uint8_t pad = 0x80;
  // Pad with 0x80 then zeros until 8 bytes remain in the block.
  buffer_[buffered_++] = pad;
  if (buffered_ > 56) {
    while (buffered_ < 64) buffer_[buffered_++] = 0;
    process_block(buffer_.data());
    buffered_ = 0;
  }
  while (buffered_ < 56) buffer_[buffered_++] = 0;
  for (int i = 7; i >= 0; --i)
    buffer_[buffered_++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  process_block(buffer_.data());

  Digest digest;
  for (std::size_t i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 s;
  s.update(data);
  return s.finish();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i)
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace qkd::crypto
