#include "src/crypto/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace qkd::crypto {
namespace {

// ---- GF(2^8) helpers for table generation (modulus x^8+x^4+x^3+x+1) ----

constexpr std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0));
}

constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t result = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) result ^= a;
    b >>= 1;
    a = xtime(a);
  }
  return result;
}

constexpr std::uint8_t ginv(std::uint8_t a) {
  if (a == 0) return 0;
  // a^254 = a^-1 in GF(2^8).
  std::uint8_t result = 1, base = a;
  int e = 254;
  while (e > 0) {
    if (e & 1) result = gmul(result, base);
    base = gmul(base, base);
    e >>= 1;
  }
  return result;
}

constexpr std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> sbox{};
  for (unsigned i = 0; i < 256; ++i) {
    const std::uint8_t x = ginv(static_cast<std::uint8_t>(i));
    // Affine transform: b ^= rotl(b,1)^rotl(b,2)^rotl(b,3)^rotl(b,4) ^ 0x63.
    std::uint8_t y = x;
    for (int r = 1; r <= 4; ++r)
      y ^= static_cast<std::uint8_t>((x << r) | (x >> (8 - r)));
    sbox[i] = y ^ 0x63;
  }
  return sbox;
}

constexpr std::array<std::uint8_t, 256> make_inv_sbox(
    const std::array<std::uint8_t, 256>& sbox) {
  std::array<std::uint8_t, 256> inv{};
  for (unsigned i = 0; i < 256; ++i) inv[sbox[i]] = static_cast<std::uint8_t>(i);
  return inv;
}

constexpr auto kSbox = make_sbox();
constexpr auto kInvSbox = make_inv_sbox(kSbox);

void sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

void inv_sub_bytes(std::uint8_t* s) {
  for (int i = 0; i < 16; ++i) s[i] = kInvSbox[s[i]];
}

// State is column-major: s[4*c + r] is row r, column c (FIPS 197 layout when
// loading input bytes sequentially into columns).
void shift_rows(std::uint8_t* s) {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c) s[4 * c + r] = t[4 * ((c + r) % 4) + r];
}

void inv_shift_rows(std::uint8_t* s) {
  std::uint8_t t[16];
  std::memcpy(t, s, 16);
  for (int r = 1; r < 4; ++r)
    for (int c = 0; c < 4; ++c) s[4 * ((c + r) % 4) + r] = t[4 * c + r];
}

void mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
  }
}

void inv_mix_columns(std::uint8_t* s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
  }
}

void add_round_key(std::uint8_t* s, const std::uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

Aes::Aes(std::span<const std::uint8_t> key) {
  const std::size_t nk = key.size() / 4;  // key length in 32-bit words
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("Aes: key must be 16, 24 or 32 bytes");
  rounds_ = static_cast<unsigned>(nk + 6);

  const std::size_t total_words = 4 * (rounds_ + 1);
  std::uint8_t* w = round_keys_.data();
  std::memcpy(w, key.data(), key.size());

  std::uint8_t rcon = 1;
  for (std::size_t i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, w + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
      rcon = xtime(rcon);
    } else if (nk > 6 && i % nk == 4) {
      for (auto& b : temp) b = kSbox[b];
    }
    for (int b = 0; b < 4; ++b) w[4 * i + b] = w[4 * (i - nk) + b] ^ temp[b];
  }
}

void Aes::encrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, round_keys_.data());
  for (unsigned round = 1; round < rounds_; ++round) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 16 * round);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_.data() + 16 * rounds_);
  std::memcpy(out, s, 16);
}

void Aes::decrypt_block(const std::uint8_t* in, std::uint8_t* out) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, round_keys_.data() + 16 * rounds_);
  for (unsigned round = rounds_ - 1; round >= 1; --round) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, round_keys_.data() + 16 * round);
    inv_mix_columns(s);
  }
  inv_shift_rows(s);
  inv_sub_bytes(s);
  add_round_key(s, round_keys_.data());
  std::memcpy(out, s, 16);
}

Aes::Block Aes::encrypt_block(const Block& in) const {
  Block out;
  encrypt_block(in.data(), out.data());
  return out;
}

Aes::Block Aes::decrypt_block(const Block& in) const {
  Block out;
  decrypt_block(in.data(), out.data());
  return out;
}

Bytes aes_cbc_encrypt(const Aes& aes, const Aes::Block& iv,
                      std::span<const std::uint8_t> plaintext) {
  if (plaintext.size() % Aes::kBlockSize != 0)
    throw std::invalid_argument("aes_cbc_encrypt: unpadded input");
  Bytes out(plaintext.size());
  Aes::Block chain = iv;
  for (std::size_t off = 0; off < plaintext.size(); off += 16) {
    Aes::Block block;
    for (int i = 0; i < 16; ++i) block[i] = plaintext[off + i] ^ chain[i];
    chain = aes.encrypt_block(block);
    std::memcpy(out.data() + off, chain.data(), 16);
  }
  return out;
}

Bytes aes_cbc_decrypt(const Aes& aes, const Aes::Block& iv,
                      std::span<const std::uint8_t> ciphertext) {
  if (ciphertext.size() % Aes::kBlockSize != 0)
    throw std::invalid_argument("aes_cbc_decrypt: truncated input");
  Bytes out(ciphertext.size());
  Aes::Block chain = iv;
  for (std::size_t off = 0; off < ciphertext.size(); off += 16) {
    Aes::Block block;
    std::memcpy(block.data(), ciphertext.data() + off, 16);
    const Aes::Block plain = aes.decrypt_block(block);
    for (int i = 0; i < 16; ++i) out[off + i] = plain[i] ^ chain[i];
    chain = block;
  }
  return out;
}

Bytes aes_ctr_crypt(const Aes& aes, const Aes::Block& counter_block,
                    std::span<const std::uint8_t> data) {
  Bytes out(data.size());
  Aes::Block counter = counter_block;
  for (std::size_t off = 0; off < data.size(); off += 16) {
    const Aes::Block keystream = aes.encrypt_block(counter);
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = data[off + i] ^ keystream[i];
    // Big-endian increment of the trailing 32-bit counter.
    for (int i = 15; i >= 12; --i)
      if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
  return out;
}

}  // namespace qkd::crypto
