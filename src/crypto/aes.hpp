// AES-128/192/256 (FIPS 197), implemented from scratch.
//
// The paper's rapid-reseed extension derives AES keys from QKD bits and
// rolls them about once a minute (Section 7); ESP security associations in
// qkd_ipsec use this implementation in CBC mode. S-boxes are generated at
// compile time from the GF(2^8) inverse + affine map rather than transcribed,
// eliminating table-typo risk.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.hpp"

namespace qkd::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;
  using Block = std::array<std::uint8_t, kBlockSize>;

  /// Key must be 16, 24 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(std::span<const std::uint8_t> key);

  void encrypt_block(const std::uint8_t* in, std::uint8_t* out) const;
  void decrypt_block(const std::uint8_t* in, std::uint8_t* out) const;

  Block encrypt_block(const Block& in) const;
  Block decrypt_block(const Block& in) const;

  unsigned rounds() const { return rounds_; }

 private:
  unsigned rounds_;
  // Maximum schedule: AES-256 = 15 round keys of 16 bytes.
  std::array<std::uint8_t, 16 * 15> round_keys_{};
};

/// CBC mode over whole blocks (callers pad; ESP applies RFC 2406 padding).
/// Throws std::invalid_argument if data is not a multiple of 16 bytes.
Bytes aes_cbc_encrypt(const Aes& aes, const Aes::Block& iv,
                      std::span<const std::uint8_t> plaintext);
Bytes aes_cbc_decrypt(const Aes& aes, const Aes::Block& iv,
                      std::span<const std::uint8_t> ciphertext);

/// CTR keystream XOR (encrypt == decrypt); any data length.
Bytes aes_ctr_crypt(const Aes& aes, const Aes::Block& counter_block,
                    std::span<const std::uint8_t> data);

}  // namespace qkd::crypto
