// DES and Triple-DES (EDE), implemented from scratch per FIPS 46-3.
//
// The paper's conventional VPN baseline uses 3DES for traffic confidentiality
// ("Symmetric mechanisms (e.g. 3DES, SHA1)"). DES is long broken; it is here
// because the 2003 system supported it and our IPsec layer reproduces the
// per-tunnel algorithm choice (AES vs. 3DES vs. one-time pad).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.hpp"

namespace qkd::crypto {

class Des {
 public:
  static constexpr std::size_t kBlockSize = 8;
  using Block = std::array<std::uint8_t, kBlockSize>;

  /// Key is 8 bytes (parity bits ignored, as is conventional).
  explicit Des(std::span<const std::uint8_t> key);

  std::uint64_t encrypt(std::uint64_t block) const;
  std::uint64_t decrypt(std::uint64_t block) const;

 private:
  std::array<std::uint64_t, 16> subkeys_;  // 48-bit subkeys, right-aligned
};

class TripleDes {
 public:
  static constexpr std::size_t kBlockSize = 8;

  /// Key is 24 bytes (K1 | K2 | K3); EDE: E_K3(D_K2(E_K1(x))).
  explicit TripleDes(std::span<const std::uint8_t> key);

  std::uint64_t encrypt(std::uint64_t block) const;
  std::uint64_t decrypt(std::uint64_t block) const;

 private:
  Des k1_, k2_, k3_;
};

/// CBC over whole 8-byte blocks; throws std::invalid_argument on misalignment.
Bytes des3_cbc_encrypt(const TripleDes& des, std::uint64_t iv,
                       std::span<const std::uint8_t> plaintext);
Bytes des3_cbc_decrypt(const TripleDes& des, std::uint64_t iv,
                       std::span<const std::uint8_t> ciphertext);

}  // namespace qkd::crypto
