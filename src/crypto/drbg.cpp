#include "src/crypto/drbg.hpp"

namespace qkd::crypto {

Drbg::Drbg(std::span<const std::uint8_t> seed) { state_ = Sha1::hash(seed); }

Drbg::Drbg(std::uint64_t seed) {
  Bytes b;
  put_u64(b, seed);
  state_ = Sha1::hash(b);
}

Bytes Drbg::generate(std::size_t n_bytes) {
  Bytes out;
  out.reserve(n_bytes + Sha1::kDigestSize);
  while (out.size() < n_bytes) {
    Bytes block(state_.begin(), state_.end());
    put_u64(block, counter_++);
    const auto digest = Sha1::hash(block);
    out.insert(out.end(), digest.begin(), digest.end());
  }
  out.resize(n_bytes);
  // Ratchet the state forward so earlier output cannot be recovered from a
  // captured state (backtracking resistance).
  Bytes ratchet(state_.begin(), state_.end());
  ratchet.push_back(0xff);
  state_ = Sha1::hash(ratchet);
  return out;
}

qkd::BitVector Drbg::generate_bits(std::size_t n_bits) {
  const Bytes bytes = generate((n_bits + 7) / 8);
  qkd::BitVector bits = qkd::BitVector::from_bytes(bytes);
  bits.resize(n_bits);
  return bits;
}

std::uint32_t Drbg::next_u32() {
  const Bytes b = generate(4);
  return static_cast<std::uint32_t>(b[0]) << 24 |
         static_cast<std::uint32_t>(b[1]) << 16 |
         static_cast<std::uint32_t>(b[2]) << 8 | b[3];
}

std::uint64_t Drbg::next_u64() {
  return static_cast<std::uint64_t>(next_u32()) << 32 | next_u32();
}

void Drbg::reseed(std::span<const std::uint8_t> entropy) {
  Bytes mix(state_.begin(), state_.end());
  mix.insert(mix.end(), entropy.begin(), entropy.end());
  state_ = Sha1::hash(mix);
}

}  // namespace qkd::crypto
