// SHA-1 (FIPS 180-1), implemented from scratch.
//
// The paper's VPN uses SHA1 for traffic integrity ("Symmetric mechanisms
// (e.g. 3DES, SHA1)") and our IKE uses HMAC-SHA1 as the Phase-1/Phase-2 PRF
// into which QKD bits are mixed. SHA-1 is obsolete for new designs but is the
// algorithm the 2003 system ran, so we reproduce it.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "src/common/bytes.hpp"

namespace qkd::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1();

  /// Streaming interface.
  void update(std::span<const std::uint8_t> data);
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace qkd::crypto
