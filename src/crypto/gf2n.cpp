#include "src/crypto/gf2n.hpp"

#include <array>
#include <bit>
#include <map>
#include <mutex>
#include <stdexcept>

namespace qkd::crypto {
namespace {

// Spreads the 8 bits of a byte into the even positions of a 16-bit word;
// polynomial squaring over GF(2) is exactly this bit-spreading.
constexpr std::array<std::uint16_t, 256> make_spread_table() {
  std::array<std::uint16_t, 256> t{};
  for (unsigned b = 0; b < 256; ++b) {
    std::uint16_t s = 0;
    for (unsigned i = 0; i < 8; ++i)
      if (b & (1u << i)) s |= static_cast<std::uint16_t>(1u << (2 * i));
    t[b] = s;
  }
  return t;
}
constexpr auto kSpread = make_spread_table();

// Degree of a dense polynomial, or -1 for the zero polynomial.
int degree_of(const qkd::BitVector& p) {
  for (std::size_t i = p.size(); i-- > 0;)
    if (p.get(i)) return static_cast<int>(i);
  return -1;
}

// Polynomial squaring: spread every bit i to position 2i.
qkd::BitVector square_poly(const qkd::BitVector& a) {
  const auto bytes = a.to_bytes();
  qkd::BitVector out(a.size() * 2);
  auto words = out.words();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::uint64_t spread = kSpread[bytes[i]];
    const std::size_t bitpos = 16 * i;
    words[bitpos / 64] |= spread << (bitpos % 64);
    // A 16-bit spread never straddles a word boundary because bitpos is a
    // multiple of 16 and 16 divides 64.
  }
  out.normalize_tail();
  return out;
}

// GCD of two dense polynomials over GF(2) (Euclid with shifted XORs).
qkd::BitVector poly_gcd(qkd::BitVector a, qkd::BitVector b) {
  int da = degree_of(a), db = degree_of(b);
  while (db >= 0) {
    while (da >= db) {
      // a ^= b << (da - db)
      const std::size_t shift = static_cast<std::size_t>(da - db);
      for (int i = db; i >= 0; --i)
        if (b.get(static_cast<std::size_t>(i)))
          a.flip(static_cast<std::size_t>(i) + shift);
      da = degree_of(a);
      if (da < 0) break;
    }
    std::swap(a, b);
    std::swap(da, db);
  }
  a.resize(static_cast<std::size_t>(da + 1));
  return a;
}

std::vector<unsigned> prime_divisors(unsigned n) {
  std::vector<unsigned> out;
  for (unsigned p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      out.push_back(p);
      while (n % p == 0) n /= p;
    }
  }
  if (n > 1) out.push_back(n);
  return out;
}

// Known low-weight irreducible polynomials (Seroussi, HPL-98-135 and common
// usage, e.g. the GCM polynomial for n = 128). Entries are verified by
// is_irreducible() the first time a field of that degree is built; a wrong
// entry falls back to search, so the table is purely an accelerator.
const std::map<unsigned, SparsePoly>& poly_table() {
  static const std::map<unsigned, SparsePoly> table = {
      {32, {{32, 7, 3, 2, 0}}},    {64, {{64, 4, 3, 1, 0}}},
      {96, {{96, 10, 9, 6, 0}}},   {128, {{128, 7, 2, 1, 0}}},
      {160, {{160, 5, 3, 2, 0}}},  {192, {{192, 15, 11, 5, 0}}},
      {224, {{224, 9, 8, 3, 0}}},  {256, {{256, 10, 5, 2, 0}}},
      {384, {{384, 12, 3, 2, 0}}}, {512, {{512, 8, 5, 2, 0}}},
      {768, {{768, 19, 17, 4, 0}}},{1024, {{1024, 19, 6, 1, 0}}},
      {1536, {{1536, 21, 6, 2, 0}}},
      {2048, {{2048, 19, 14, 13, 0}}},
      {3072, {{3072, 11, 10, 5, 0}}},
      {4096, {{4096, 27, 15, 1, 0}}},
      {8192, {{8192, 9, 5, 2, 0}}},
  };
  return table;
}

}  // namespace

qkd::BitVector SparsePoly::to_bits() const {
  qkd::BitVector v(degree() + 1);
  for (unsigned e : exponents) v.set(e, true);
  return v;
}

qkd::BitVector clmul(const qkd::BitVector& a, const qkd::BitVector& b) {
  if (a.empty() || b.empty()) return {};
  qkd::BitVector out(a.size() + b.size() - 1);
  auto ow = out.words();
  const auto bw = b.words();
  const auto aw = a.words();
  for (std::size_t wi = 0; wi < aw.size(); ++wi) {
    std::uint64_t word = aw[wi];
    while (word != 0) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
      word &= word - 1;
      const std::size_t shift = wi * 64 + bit;
      const std::size_t ws = shift / 64, bs = shift % 64;
      for (std::size_t j = 0; j < bw.size(); ++j) {
        ow[ws + j] ^= bw[j] << bs;
        if (bs != 0 && ws + j + 1 < ow.size()) ow[ws + j + 1] ^= bw[j] >> (64 - bs);
      }
    }
  }
  out.normalize_tail();
  return out;
}

void reduce_mod(qkd::BitVector& value, const SparsePoly& mod) {
  const unsigned n = mod.degree();
  if (n == 0) throw std::invalid_argument("reduce_mod: degree-0 modulus");
  for (std::size_t p = value.size(); p-- > n;) {
    if (!value.get(p)) continue;
    value.set(p, false);
    for (unsigned t : mod.exponents) {
      if (t == n) continue;
      value.flip(p - n + t);
    }
  }
  value.resize(n);
}

bool is_irreducible(const SparsePoly& poly) {
  const unsigned n = poly.degree();
  if (n == 0) return false;
  if (n == 1) return true;
  // Constant term must be 1 or x divides the polynomial.
  bool has_const = false;
  for (unsigned e : poly.exponents) has_const |= (e == 0);
  if (!has_const) return false;

  // Rabin: f (deg n) is irreducible iff x^(2^n) == x (mod f) and for every
  // prime p | n, gcd(x^(2^(n/p)) - x, f) == 1. One chain of n squarings,
  // checkpointing at the n/p exponents.
  std::vector<unsigned> checkpoints;
  for (unsigned p : prime_divisors(n)) checkpoints.push_back(n / p);

  qkd::BitVector h(n);
  if (n > 1) h.set(1, true);  // h = x
  const qkd::BitVector f_bits = poly.to_bits();

  for (unsigned k = 1; k <= n; ++k) {
    qkd::BitVector sq = square_poly(h);
    reduce_mod(sq, poly);
    h = std::move(sq);
    for (unsigned cp : checkpoints) {
      if (k != cp) continue;
      qkd::BitVector diff = h;
      if (diff.size() > 1) diff.flip(1);  // h + x
      qkd::BitVector g = poly_gcd(diff, f_bits);
      if (degree_of(g) != 0) return false;  // nontrivial common factor
    }
  }
  // h == x^(2^n) mod f must equal x.
  qkd::BitVector x(n);
  if (n > 1) x.set(1, true);
  return h == x;
}

SparsePoly irreducible_poly(unsigned degree) {
  if (degree < 2) throw std::invalid_argument("irreducible_poly: degree < 2");
  static std::mutex mu;
  static std::map<unsigned, SparsePoly> cache;
  std::scoped_lock lock(mu);
  if (auto it = cache.find(degree); it != cache.end()) return it->second;

  const auto& table = poly_table();
  if (auto it = table.find(degree); it != table.end()) {
    if (is_irreducible(it->second)) {
      cache[degree] = it->second;
      return it->second;
    }
  }
  // Trinomials first (cheapest), then pentanomials in lexicographic order.
  for (unsigned k = 1; k < degree; ++k) {
    SparsePoly cand{{degree, k, 0}};
    if (is_irreducible(cand)) {
      cache[degree] = cand;
      return cand;
    }
  }
  for (unsigned a = 3; a < degree; ++a) {
    for (unsigned b = 2; b < a; ++b) {
      for (unsigned c = 1; c < b; ++c) {
        SparsePoly cand{{degree, a, b, c, 0}};
        if (is_irreducible(cand)) {
          cache[degree] = cand;
          return cand;
        }
      }
    }
  }
  throw std::runtime_error("irreducible_poly: no low-weight polynomial found");
}

Gf2Field::Gf2Field(unsigned n) : n_(n), modulus_(irreducible_poly(n)) {}

Gf2Field::Gf2Field(unsigned n, SparsePoly modulus)
    : n_(n), modulus_(std::move(modulus)) {
  if (modulus_.degree() != n)
    throw std::invalid_argument("Gf2Field: modulus degree != n");
}

qkd::BitVector Gf2Field::multiply(const qkd::BitVector& a,
                                  const qkd::BitVector& b) const {
  if (a.size() > n_ || b.size() > n_)
    throw std::invalid_argument("Gf2Field::multiply: operand wider than field");
  qkd::BitVector prod = clmul(a, b);
  if (prod.size() < n_) {
    prod.resize(n_);
    return prod;
  }
  reduce_mod(prod, modulus_);
  return prod;
}

qkd::BitVector Gf2Field::add(const qkd::BitVector& a,
                             const qkd::BitVector& b) const {
  qkd::BitVector out = a;
  out.resize(n_);
  qkd::BitVector rhs = b;
  rhs.resize(n_);
  out ^= rhs;
  return out;
}

qkd::BitVector Gf2Field::pow2k(const qkd::BitVector& a, unsigned k) const {
  qkd::BitVector h = a;
  h.resize(n_);
  for (unsigned i = 0; i < k; ++i) {
    qkd::BitVector sq = square_poly(h);
    reduce_mod(sq, modulus_);
    h = std::move(sq);
  }
  return h;
}

}  // namespace qkd::crypto
