#include "src/crypto/universal_hash.hpp"

#include <stdexcept>

#include "src/crypto/gf2n.hpp"

namespace qkd::crypto {

qkd::BitVector toeplitz_hash(const qkd::BitVector& key,
                             const qkd::BitVector& message,
                             unsigned tag_bits) {
  if (message.empty()) return qkd::BitVector(tag_bits);
  if (key.size() < tag_bits + message.size() - 1)
    throw std::invalid_argument("toeplitz_hash: key too short");
  // Row i of the Toeplitz matrix is key[i .. i+msg_len); equivalently the
  // tag is the windowed inner product of key and message.
  qkd::BitVector tag(tag_bits);
  for (unsigned i = 0; i < tag_bits; ++i) {
    const qkd::BitVector row = key.slice(i, message.size());
    tag.set(i, row.masked_parity(message));
  }
  return tag;
}

std::uint64_t poly_hash64(std::uint64_t key,
                          std::span<const std::uint8_t> message) {
  static const Gf2Field field(64);
  const qkd::BitVector k = qkd::BitVector::from_uint64(key, 64);
  qkd::BitVector acc(64);
  // Horner evaluation over 8-byte chunks (zero-padded tail). The message
  // length is mixed in as a final chunk so that messages differing only in
  // trailing zero bytes hash differently.
  std::size_t off = 0;
  auto absorb = [&](std::uint64_t chunk) {
    acc = field.multiply(acc, k);
    acc ^= qkd::BitVector::from_uint64(chunk, 64);
  };
  while (off < message.size()) {
    std::uint64_t chunk = 0;
    const std::size_t n = std::min<std::size_t>(8, message.size() - off);
    for (std::size_t i = 0; i < n; ++i)
      chunk |= static_cast<std::uint64_t>(message[off + i]) << (8 * i);
    absorb(chunk);
    off += n;
  }
  absorb(static_cast<std::uint64_t>(message.size()));
  return acc.to_uint64();
}

WegmanCarterAuthenticator::WegmanCarterAuthenticator(
    Config config, const qkd::BitVector& initial_secret)
    : config_(config) {
  const std::size_t key_bits = config_.tag_bits + config_.max_message_bits - 1;
  if (initial_secret.size() < key_bits)
    throw std::invalid_argument(
        "WegmanCarterAuthenticator: initial secret shorter than Toeplitz key");
  toeplitz_key_ = initial_secret.slice(0, key_bits);
  // Whatever remains of the prepositioned secret seeds the pad pool.
  pad_pool_ = initial_secret.slice(key_bits, initial_secret.size() - key_bits);
}

void WegmanCarterAuthenticator::replenish(const qkd::BitVector& bits) {
  pad_pool_.append(bits);
}

std::size_t WegmanCarterAuthenticator::pad_bits_available() const {
  return pad_pool_.size() - pad_cursor_;
}

qkd::BitVector WegmanCarterAuthenticator::next_pad() {
  qkd::BitVector pad = pad_pool_.slice(pad_cursor_, config_.tag_bits);
  pad_cursor_ += config_.tag_bits;
  consumed_ += config_.tag_bits;
  return pad;
}

std::optional<qkd::BitVector> WegmanCarterAuthenticator::tag(
    const Bytes& message) {
  if (pad_bits_available() < config_.tag_bits) return std::nullopt;
  if (message.size() * 8 > config_.max_message_bits)
    throw std::invalid_argument("WegmanCarterAuthenticator: message too long");
  const qkd::BitVector msg_bits = qkd::BitVector::from_bytes(message);
  qkd::BitVector t = toeplitz_hash(toeplitz_key_, msg_bits, config_.tag_bits);
  t ^= next_pad();
  return t;
}

bool WegmanCarterAuthenticator::verify(const Bytes& message,
                                       const qkd::BitVector& tag) {
  const auto expected = this->tag(message);
  return expected.has_value() && *expected == tag;
}

std::optional<qkd::BitVector> WegmanCarterAuthenticator::tag_at(
    const Bytes& message, std::size_t slot) {
  const std::size_t offset = slot * config_.tag_bits;
  if (offset + config_.tag_bits > pad_pool_.size()) return std::nullopt;
  if (message.size() * 8 > config_.max_message_bits)
    throw std::invalid_argument("WegmanCarterAuthenticator: message too long");
  const qkd::BitVector msg_bits = qkd::BitVector::from_bytes(message);
  qkd::BitVector t = toeplitz_hash(toeplitz_key_, msg_bits, config_.tag_bits);
  t ^= pad_pool_.slice(offset, config_.tag_bits);
  if (offset + config_.tag_bits > pad_cursor_) {
    consumed_ += offset + config_.tag_bits - pad_cursor_;
    pad_cursor_ = offset + config_.tag_bits;
  }
  return t;
}

bool WegmanCarterAuthenticator::verify_at(const Bytes& message,
                                          const qkd::BitVector& tag,
                                          std::size_t slot) {
  const std::size_t offset = slot * config_.tag_bits;
  if (offset + config_.tag_bits > pad_pool_.size()) return false;
  if (message.size() * 8 > config_.max_message_bits) return false;
  const qkd::BitVector msg_bits = qkd::BitVector::from_bytes(message);
  qkd::BitVector expected =
      toeplitz_hash(toeplitz_key_, msg_bits, config_.tag_bits);
  expected ^= pad_pool_.slice(offset, config_.tag_bits);
  if (!(expected == tag)) return false;
  // Only a SUCCESSFUL verification consumes the slot's pad.
  if (offset + config_.tag_bits > pad_cursor_) {
    consumed_ += offset + config_.tag_bits - pad_cursor_;
    pad_cursor_ = offset + config_.tag_bits;
  }
  return true;
}

}  // namespace qkd::crypto
