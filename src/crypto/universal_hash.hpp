// Universal hashing for QKD authentication (Wegman & Carter).
//
// BB84's original paper sketched authentication via universal families of
// hash functions [Wegman & Carter 1981]: Alice and Bob share a small secret
// key that selects a hash function; any forger who does not know the key has
// probability <= 2^-tag_bits of producing a valid tag, *regardless of
// computational power* — exactly the adversary model of Section 6.
//
// Two families are provided:
//  * ToeplitzHash — an (m x n) Toeplitz matrix over GF(2), described by
//    m+n-1 key bits. XOR-universal; with a fresh one-time pad applied to the
//    tag the Toeplitz key itself is reusable (this is the standard
//    "LFSR/Toeplitz + OTP" construction QKD systems deploy, and is what the
//    WegmanCarterAuthenticator below consumes key bits for).
//  * PolyHash — polynomial evaluation over GF(2^64); constant key size,
//    eps = len/2^64; used for comparison in the authentication bench.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"

namespace qkd::crypto {

/// Hash of an arbitrary-length message to `tag_bits` bits using a Toeplitz
/// matrix whose diagonals are `key` (key.size() must be tag_bits+msg_bits-1).
qkd::BitVector toeplitz_hash(const qkd::BitVector& key,
                             const qkd::BitVector& message, unsigned tag_bits);

/// Polynomial-evaluation hash over GF(2^64): interprets the message as
/// coefficients and evaluates at the 64-bit key point k, i.e.
/// H(m) = m_1*k^t + ... + m_t*k (Horner), an eps-almost-XOR-universal family.
std::uint64_t poly_hash64(std::uint64_t key, std::span<const std::uint8_t> message);

/// A Wegman–Carter authenticator bound to a pool of one-time secret bits.
///
/// Construction: tag = toeplitz_hash(K_toeplitz, message) XOR pad, where
/// K_toeplitz is fixed per association (consumed once, at construction time,
/// from the shared secret) and `pad` is `tag_bits` fresh of one-time key per
/// message. The pad is what makes tags single-use-secure; running out of pad
/// bits is the key-exhaustion DoS discussed in Section 2 of the paper.
class WegmanCarterAuthenticator {
 public:
  struct Config {
    unsigned tag_bits = 64;
    /// Maximum message length in bits the Toeplitz key supports.
    unsigned max_message_bits = 1 << 16;
  };

  /// Draws the Toeplitz key from `initial_secret` (throws std::invalid_argument
  /// if it is too short: needs tag_bits + max_message_bits - 1 bits).
  WegmanCarterAuthenticator(Config config, const qkd::BitVector& initial_secret);

  /// Bits of one-time pad required per tag.
  unsigned pad_bits_per_tag() const { return config_.tag_bits; }

  /// Appends fresh secret bits (e.g. distilled QKD output) to the pad pool.
  void replenish(const qkd::BitVector& bits);

  /// Remaining pad bits (== number of tags still issuable * tag_bits).
  std::size_t pad_bits_available() const;

  /// Tags a message, consuming pad bits; returns nullopt if the pad pool is
  /// exhausted (the caller decides whether that is an alarm or a stall).
  std::optional<qkd::BitVector> tag(const Bytes& message);

  /// Verifies and consumes pad bits in lockstep with the peer's tag().
  /// Returns false on mismatch OR exhaustion.
  bool verify(const Bytes& message, const qkd::BitVector& tag);

  /// Slot-addressed variants: pad bits for slot `s` live at a fixed pool
  /// offset (s * tag_bits), so tag and verification stay paired by the
  /// message's sequence number rather than by call count. This is what
  /// lets a lossy wire retransmit an identical envelope: the receiver
  /// verifies the retransmission against the same pad, and a FAILED verify
  /// consumes nothing (a forger cannot burn the pool by spraying frames).
  std::optional<qkd::BitVector> tag_at(const Bytes& message, std::size_t slot);
  bool verify_at(const Bytes& message, const qkd::BitVector& tag,
                 std::size_t slot);

  /// Total pad bits consumed so far (for the key-consumption accounting
  /// benches).
  std::size_t pad_bits_consumed() const { return consumed_; }

 private:
  qkd::BitVector next_pad();

  Config config_;
  qkd::BitVector toeplitz_key_;
  qkd::BitVector pad_pool_;
  std::size_t pad_cursor_ = 0;
  std::size_t consumed_ = 0;
};

}  // namespace qkd::crypto
