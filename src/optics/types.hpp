// Shared types for the simulated weak-coherent BB84 physical layer.
//
// The paper's link (Fig. 3) encodes each qubit in the relative phase of a
// double pulse produced by unbalanced Mach-Zehnder interferometers: Alice
// applies one of four phase shifts {0, pi/2, pi, 3pi/2} encoding a
// (basis, value) pair; Bob applies 0 or pi/2 to choose a measurement basis.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/bitvector.hpp"

namespace qkd::optics {

/// BB84 basis choice. In the phase encoding, kRectilinear contributes phase
/// 0 and kDiagonal contributes pi/2.
enum class Basis : std::uint8_t { kRectilinear = 0, kDiagonal = 1 };

inline Basis basis_from_bit(bool b) {
  return b ? Basis::kDiagonal : Basis::kRectilinear;
}

/// Alice's phase shift for a (basis, value) pair: phi = value*pi + basis*pi/2,
/// returned in units of pi/2 (0..3) to keep arithmetic exact.
inline unsigned alice_phase_quarter(Basis basis, bool value) {
  return (value ? 2u : 0u) + (basis == Basis::kDiagonal ? 1u : 0u);
}

/// Bob's phase shift in units of pi/2 (0 or 1).
inline unsigned bob_phase_quarter(Basis basis) {
  return basis == Basis::kDiagonal ? 1u : 0u;
}

/// Ground-truth record of what Alice's transmitter suite emitted in a frame
/// (one entry per trigger slot). The QKD protocol stack sees only bases and
/// values; photon counts are simulator ground truth used for attack
/// accounting and diagnostics.
struct PulseTrainRecord {
  qkd::BitVector bases;   // bit i: Alice's basis in slot i (1 = diagonal)
  qkd::BitVector values;  // bit i: Alice's key bit in slot i
  std::vector<std::uint8_t> photon_counts;  // emitted photons (saturates @255)

  std::size_t size() const { return bases.size(); }
};

/// Bob's receiver-side record for a frame.
struct DetectionRecord {
  qkd::BitVector detected;  // bit i: slot produced a usable single click
  qkd::BitVector bases;     // bit i: Bob's basis choice in slot i
  qkd::BitVector bits;      // bit i: measured value (meaningful iff detected)

  // Diagnostics (ground truth, not visible to the protocols):
  std::size_t double_clicks = 0;     // both APDs fired; slot discarded
  std::size_t dark_only_clicks = 0;  // click caused by dark count alone
  std::size_t signal_clicks = 0;     // click caused by >=1 real photon

  std::size_t size() const { return detected.size(); }
};

/// Ground truth about the eavesdropper's take for a frame.
struct EveRecord {
  qkd::BitVector attacked;  // bit i: Eve touched slot i
  qkd::BitVector known;     // bit i: Eve knows Alice's bit in slot i exactly
  std::size_t photons_captured = 0;

  void resize(std::size_t n) {
    attacked.resize(n);
    known.resize(n);
  }
};

/// Result of simulating one frame over the link.
struct FrameResult {
  PulseTrainRecord alice;
  DetectionRecord bob;
  EveRecord eve;
};

}  // namespace qkd::optics
