#include "src/optics/attacks.hpp"

#include <stdexcept>

namespace qkd::optics {

void Attack::resolve_bases(const qkd::BitVector&, EveRecord&) {}

InterceptResendAttack::InterceptResendAttack(double fraction)
    : fraction_(fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("InterceptResendAttack: fraction not in [0,1]");
}

void InterceptResendAttack::apply(std::size_t slot, InFlightPulse& pulse,
                                  EveRecord& eve, qkd::Rng& rng) {
  if (pulse.photons == 0) return;
  if (!rng.next_bool(fraction_)) return;

  eve.attacked.set(slot, true);
  const Basis eve_basis = basis_from_bit(rng.next_bool());
  bool eve_result;
  if (eve_basis == pulse.basis) {
    // Compatible measurement: deterministic outcome.
    eve_result = pulse.value;
  } else {
    // Incompatible: the outcome is uniformly random and the state collapses
    // into Eve's basis.
    eve_result = rng.next_bool();
  }
  measured_slots_.emplace_back(slot, eve_basis);
  // Resend a fresh single-photon-equivalent pulse prepared in Eve's basis
  // with her measured value. (Eve's source is ideal; she resends the same
  // photon number so the attack does not show up as loss.)
  pulse.basis = eve_basis;
  pulse.value = eve_result;
}

void InterceptResendAttack::resolve_bases(const qkd::BitVector& alice_bases,
                                          EveRecord& eve) {
  for (const auto& [slot, eve_basis] : measured_slots_) {
    if (slot >= alice_bases.size()) continue;
    const Basis alice_basis = basis_from_bit(alice_bases.get(slot));
    if (alice_basis == eve_basis) eve.known.set(slot, true);
  }
  measured_slots_.clear();
}

BeamsplitAttack::BeamsplitAttack(double tap_ratio) : tap_ratio_(tap_ratio) {
  if (tap_ratio < 0.0 || tap_ratio > 1.0)
    throw std::invalid_argument("BeamsplitAttack: tap ratio not in [0,1]");
}

void BeamsplitAttack::apply(std::size_t slot, InFlightPulse& pulse,
                            EveRecord& eve, qkd::Rng& rng) {
  unsigned captured = 0;
  for (unsigned i = 0; i < pulse.photons; ++i)
    if (rng.next_bool(tap_ratio_)) ++captured;
  if (captured == 0) return;
  pulse.photons -= captured;
  eve.photons_captured += captured;
  eve.attacked.set(slot, true);
  // Eve stores the photon and measures after the sifting announcement, so a
  // single captured photon yields the full bit.
  eve.known.set(slot, true);
}

void PhotonNumberSplittingAttack::apply(std::size_t slot, InFlightPulse& pulse,
                                        EveRecord& eve, qkd::Rng&) {
  if (pulse.photons < 2) return;
  pulse.photons -= 1;
  pulse.lossless_delivery = true;  // Eve compensates the loss she'd cause
  eve.photons_captured += 1;
  eve.attacked.set(slot, true);
  eve.known.set(slot, true);
}

void ChannelCutAttack::apply(std::size_t slot, InFlightPulse& pulse,
                             EveRecord& eve, qkd::Rng&) {
  if (pulse.photons > 0) eve.attacked.set(slot, true);
  pulse.photons = 0;
}

void CompositeAttack::add(std::unique_ptr<Attack> attack) {
  attacks_.push_back(std::move(attack));
}

void CompositeAttack::apply(std::size_t slot, InFlightPulse& pulse,
                            EveRecord& eve, qkd::Rng& rng) {
  for (auto& attack : attacks_) attack->apply(slot, pulse, eve, rng);
}

void CompositeAttack::resolve_bases(const qkd::BitVector& alice_bases,
                                    EveRecord& eve) {
  for (auto& attack : attacks_) attack->resolve_bases(alice_bases, eve);
}

}  // namespace qkd::optics
