#include "src/optics/entangled.hpp"

#include <cmath>
#include <stdexcept>

namespace qkd::optics {

double EntangledParams::transmittance() const {
  const double total_db = attenuation_db_per_km * fiber_km + insertion_loss_db;
  return std::pow(10.0, -total_db / 10.0);
}

EntangledLink::EntangledLink(EntangledParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.pair_probability < 0.0 || params_.pair_probability > 1.0)
    throw std::invalid_argument("EntangledLink: pair probability not in [0,1]");
  if (params_.visibility < 0.0 || params_.visibility > 1.0)
    throw std::invalid_argument("EntangledLink: visibility not in [0,1]");
}

FrameResult EntangledLink::run_frame(std::size_t n_slots) {
  FrameResult frame;
  frame.alice.bases.resize(n_slots);
  frame.alice.values.resize(n_slots);
  frame.alice.photon_counts.resize(n_slots);
  frame.bob.detected.resize(n_slots);
  frame.bob.bases.resize(n_slots);
  frame.bob.bits.resize(n_slots);
  frame.eve.resize(n_slots);

  const double transmittance = params_.transmittance();

  for (std::size_t slot = 0; slot < n_slots; ++slot) {
    ++stats_.slots;
    // Both sides pick random bases every gate, pair or not.
    const bool alice_basis = rng_.next_bool();
    const bool bob_basis = rng_.next_bool();
    frame.alice.bases.set(slot, alice_basis);
    frame.bob.bases.set(slot, bob_basis);

    const bool pair = rng_.next_bool(params_.pair_probability);
    const bool double_pair =
        pair && rng_.next_bool(params_.double_pair_probability /
                               params_.pair_probability);
    frame.alice.photon_counts[slot] =
        static_cast<std::uint8_t>(pair ? (double_pair ? 2 : 1) : 0);
    if (double_pair) {
      ++stats_.double_pairs;
      // Eve can split off the spare pair without disturbing the first: the
      // entangled analogue of the multi-photon leak — but it is per
      // *received* pair, the Sec. 6 distinction.
      frame.eve.attacked.set(slot, true);
      frame.eve.known.set(slot, true);
      ++frame.eve.photons_captured;
    }
    if (pair) ++stats_.pairs_emitted;

    // Alice's local measurement.
    const bool alice_detects =
        pair && rng_.next_bool(params_.alice_efficiency);
    // Her outcome is intrinsically random.
    const bool alice_value = rng_.next_bool();
    frame.alice.values.set(slot, alice_value);

    // Bob's photon crosses the fiber.
    bool bob_signal =
        pair && rng_.next_bool(transmittance * params_.bob_efficiency);
    bool bob_value;
    if (bob_signal && alice_detects) {
      if (alice_basis == bob_basis) {
        // Correlated up to visibility; double pairs decorrelate (the second
        // pair is independent, so a swap yields a random outcome).
        const bool correlated =
            !double_pair && rng_.next_bool((1.0 + params_.visibility) / 2.0);
        bob_value = correlated ? alice_value : !alice_value;
        if (double_pair) bob_value = rng_.next_bool();
      } else {
        bob_value = rng_.next_bool();
      }
    } else if (bob_signal) {
      // Bob caught a photon but Alice missed hers: uncorrelated click.
      bob_value = rng_.next_bool();
    } else if (rng_.next_bool(2.0 * params_.dark_count_prob)) {
      bob_signal = true;  // dark count masquerades as a detection
      bob_value = rng_.next_bool();
    } else {
      continue;
    }

    // A usable slot needs both sides to have registered something; Alice
    // announces her detection slots during sifting, so Bob-only clicks are
    // discarded there. We model the coincidence test here.
    if (!alice_detects) continue;
    frame.bob.detected.set(slot, true);
    frame.bob.bits.set(slot, bob_value);
    ++stats_.coincidences;
  }
  return frame;
}

double EntangledModel::coincidence_prob() const {
  return params.pair_probability * params.alice_efficiency *
         params.transmittance() * params.bob_efficiency;
}

double EntangledModel::expected_qber() const {
  // Matched-basis error sources: imperfect visibility + decorrelated double
  // pairs + dark-count accidentals.
  const double p_coincidence = coincidence_prob();
  const double p_dark_accidental = params.pair_probability *
                                   params.alice_efficiency * 2.0 *
                                   params.dark_count_prob;
  const double p_double = params.double_pair_probability *
                          params.alice_efficiency * params.transmittance() *
                          params.bob_efficiency;
  const double visibility_err = (1.0 - params.visibility) / 2.0;
  const double total = p_coincidence + p_dark_accidental;
  if (total <= 0.0) return 0.0;
  const double errors = (p_coincidence - p_double) * visibility_err +
                        p_double * 0.5 + p_dark_accidental * 0.5;
  return errors / total;
}

double EntangledModel::sifted_rate_bps() const {
  return 0.5 * params.pulse_rate_hz * coincidence_prob();
}

}  // namespace qkd::optics
