// Closed-form link-budget model of the weak-coherent link.
//
// This is the analytic companion to the Monte-Carlo WeakCoherentLink. The
// protocol benches use it for fast parameter sweeps (e.g. the key-rate vs.
// distance curve of experiment E4), and property tests cross-validate the
// Monte-Carlo link against it. All formulas treat the attenuated laser as a
// Poisson source and the two APDs as independent thresholded detectors.
#pragma once

#include "src/optics/link_params.hpp"

namespace qkd::optics {

class LinkModel {
 public:
  explicit LinkModel(LinkParams params) : params_(params) {}

  const LinkParams& params() const { return params_; }

  /// End-to-end linear transmittance (fiber + insertion losses).
  double transmittance() const { return params_.transmittance(); }

  /// Mean detected signal photons per pulse: mu * T * central-peak * eta.
  double detected_mean() const;

  /// Probability a pulse produces >= 1 detected signal photon.
  double p_signal() const;

  /// Probability a pulse produces a usable single click (exactly one APD,
  /// signal or dark), marginalized over basis match/mismatch.
  double p_single_click() const;

  /// Expected quantum bit error rate measured on sifted bits.
  double expected_qber() const;

  /// Expected sifted-bit rate (bits/s): rate * P(single click) * P(match).
  double sifted_rate_bps() const;

  /// Sifted bits per transmitted pulse (the paper's "1 photon in 200" worked
  /// example corresponds to this quantity at 1 % detection probability).
  double sift_fraction() const;

  /// Multi-photon pulse probability P[N >= 2] for the configured mu — the
  /// PNS-vulnerable fraction used by the transparent-leakage entropy term.
  double multi_photon_prob() const;

  /// Largest fiber length (km) at which the expected QBER stays below
  /// `qber_threshold` (11 % is the canonical BB84 abort point). Returns 0
  /// if even back-to-back operation exceeds the threshold.
  double max_range_km(double qber_threshold = 0.11) const;

 private:
  struct ClickProbs {
    double single;  // exactly one APD fired
    double error;   // the wrong APD fired alone (compatible bases)
  };
  /// Click distribution for a pulse, given the probability `p_wrong` that a
  /// detected photon routes to the wrong APD.
  ClickProbs click_probs(double p_wrong) const;

  LinkParams params_;
};

}  // namespace qkd::optics
