// Monte-Carlo simulation of the paper's weak-coherent QKD link (Fig. 3).
//
// One WeakCoherentLink instance models the full transmitter-fiber-receiver
// chain: Poisson photon statistics at the attenuated 1550 nm source, the
// (basis, value) phase modulation, channel loss, Mach-Zehnder interference,
// gated APD detection with dark counts and optional afterpulsing, and the
// 1300 nm bright-pulse framing. An optional Attack taps the channel.
//
// The simulation is slot-synchronous: each trigger from the OPC produces one
// slot; the frame is the unit handed to the QKD protocol stack ("Qframes").
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/optics/attacks.hpp"
#include "src/optics/link_params.hpp"
#include "src/optics/types.hpp"

namespace qkd::optics {

class WeakCoherentLink {
 public:
  struct Stats {
    std::uint64_t pulses = 0;
    std::uint64_t detections = 0;      // usable single clicks
    std::uint64_t double_clicks = 0;
    std::uint64_t dark_only_clicks = 0;
    std::uint64_t signal_clicks = 0;
    std::uint64_t misframed_slots = 0;
  };

  WeakCoherentLink(LinkParams params, std::uint64_t seed);

  /// Simulates `n_slots` consecutive trigger slots. If `attack` is non-null
  /// it is applied to every pulse and resolved against the (eventually
  /// public) basis string.
  FrameResult run_frame(std::size_t n_slots, Attack* attack = nullptr);

  const LinkParams& params() const { return params_; }
  const Stats& stats() const { return stats_; }

  /// Wall-clock duration of n slots at the configured trigger rate (seconds).
  double frame_duration_s(std::size_t n_slots) const {
    return static_cast<double>(n_slots) / params_.pulse_rate_hz;
  }

 private:
  LinkParams params_;
  qkd::Rng rng_;
  Stats stats_;
  bool afterpulse_pending_[2] = {false, false};
};

}  // namespace qkd::optics
