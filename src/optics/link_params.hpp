// Operating parameters of the simulated weak-coherent link.
//
// Defaults are calibrated to the paper's reported operating point (Sec. 4):
// 1 MHz pulse repetition rate, mean photon number 0.1, 10 km of telco fiber,
// and detectors cooled to -30 C yielding a 6-8 % QBER. With these defaults
// the analytic model predicts ~6.6 % QBER at 10 km and the distilled key
// rate collapses near ~70 km, matching Sec. 1's "up to about 70 km".
#pragma once

namespace qkd::optics {

struct LinkParams {
  /// Mean photon number per weak-coherent pulse (mu). Paper: 0.1.
  double mean_photon_number = 0.1;

  /// Fiber length in km. Paper's lab link: 10 km spool.
  double fiber_km = 10.0;

  /// Fiber attenuation at 1550 nm, dB/km (standard telco fiber: ~0.2).
  double attenuation_db_per_km = 0.2;

  /// Fixed losses: couplers, connectors, polarization controller (dB).
  double insertion_loss_db = 2.0;

  /// Interference visibility V of the matched Mach-Zehnder pair; the
  /// intrinsic error floor on compatible-basis detections is (1-V)/2.
  /// 0.885 lands the link at ~6 % QBER — the paper's 6-8 % operating point.
  double interferometer_visibility = 0.885;

  /// APD quantum efficiency at 1550 nm (gated Geiger mode, cooled).
  double detector_efficiency = 0.15;

  /// Dark count probability per gate per detector.
  double dark_count_prob = 1e-5;

  /// Probability that a detection leaves an afterpulse on the next gate.
  double afterpulse_prob = 0.0;

  /// Fraction of photon amplitude in the central (interfering) peak; the
  /// side peaks (S_A S_B and L_A L_B paths) fall outside the detector gate.
  double central_peak_fraction = 0.5;

  /// Trigger rate supplied by the OPC (Hz). Paper: 1 MHz (5 MHz max).
  double pulse_rate_hz = 1e6;

  /// Probability that the 1300 nm bright-pulse framing misses a slot
  /// (annunciation failure), losing that slot entirely.
  double misframe_prob = 0.0;

  /// Total channel transmittance (fiber + fixed insertion loss), linear.
  double transmittance() const;
};

}  // namespace qkd::optics
