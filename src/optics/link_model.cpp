#include "src/optics/link_model.hpp"

#include <cmath>

namespace qkd::optics {

double LinkModel::detected_mean() const {
  return params_.mean_photon_number * transmittance() *
         params_.central_peak_fraction * params_.detector_efficiency;
}

double LinkModel::p_signal() const { return 1.0 - std::exp(-detected_mean()); }

double LinkModel::multi_photon_prob() const {
  const double mu = params_.mean_photon_number;
  return 1.0 - std::exp(-mu) * (1.0 + mu);
}

LinkModel::ClickProbs LinkModel::click_probs(double p_wrong) const {
  // Poisson thinning: photons detected at the "right" APD ~ Poisson(lr),
  // at the "wrong" APD ~ Poisson(lw), independent.
  const double lambda = detected_mean();
  const double lr = lambda * (1.0 - p_wrong);
  const double lw = lambda * p_wrong;
  const double dark = params_.dark_count_prob;
  // Probability each APD fires at least once (signal or dark):
  const double p_right_fires = 1.0 - std::exp(-lr) * (1.0 - dark);
  const double p_wrong_fires = 1.0 - std::exp(-lw) * (1.0 - dark);
  ClickProbs out;
  out.single = p_right_fires * (1.0 - p_wrong_fires) +
               p_wrong_fires * (1.0 - p_right_fires);
  out.error = p_wrong_fires * (1.0 - p_right_fires);
  return out;
}

double LinkModel::p_single_click() const {
  // Compatible bases (prob 1/2): p_wrong = (1-V)/2.
  // Incompatible (prob 1/2): photons route 50/50.
  const double ev = (1.0 - params_.interferometer_visibility) / 2.0;
  const ClickProbs compat = click_probs(ev);
  const ClickProbs mismatch = click_probs(0.5);
  return 0.5 * compat.single + 0.5 * mismatch.single;
}

double LinkModel::expected_qber() const {
  const double ev = (1.0 - params_.interferometer_visibility) / 2.0;
  const ClickProbs compat = click_probs(ev);
  return compat.single > 0.0 ? compat.error / compat.single : 0.0;
}

double LinkModel::sift_fraction() const {
  // Sifted bits arise from single clicks where Bob's basis matched Alice's.
  const double ev = (1.0 - params_.interferometer_visibility) / 2.0;
  const ClickProbs compat = click_probs(ev);
  return 0.5 * compat.single;
}

double LinkModel::sifted_rate_bps() const {
  return params_.pulse_rate_hz * sift_fraction();
}

double LinkModel::max_range_km(double qber_threshold) const {
  LinkParams p = params_;
  p.fiber_km = 0.0;
  if (LinkModel(p).expected_qber() >= qber_threshold) return 0.0;
  double lo = 0.0, hi = 1.0;
  // Exponential search for an upper bracket, then bisection.
  while (hi < 1e4) {
    p.fiber_km = hi;
    if (LinkModel(p).expected_qber() >= qber_threshold) break;
    lo = hi;
    hi *= 2.0;
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    p.fiber_km = mid;
    if (LinkModel(p).expected_qber() >= qber_threshold)
      hi = mid;
    else
      lo = mid;
  }
  return (lo + hi) / 2.0;
}

}  // namespace qkd::optics
