#include "src/optics/link.hpp"

#include <cmath>
#include <stdexcept>

#include "src/optics/interference.hpp"

namespace qkd::optics {

double LinkParams::transmittance() const {
  const double total_db = attenuation_db_per_km * fiber_km + insertion_loss_db;
  return std::pow(10.0, -total_db / 10.0);
}

WeakCoherentLink::WeakCoherentLink(LinkParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  if (params_.mean_photon_number < 0.0)
    throw std::invalid_argument("WeakCoherentLink: negative photon number");
  if (params_.detector_efficiency < 0.0 || params_.detector_efficiency > 1.0)
    throw std::invalid_argument("WeakCoherentLink: efficiency not in [0,1]");
  if (params_.interferometer_visibility < 0.0 ||
      params_.interferometer_visibility > 1.0)
    throw std::invalid_argument("WeakCoherentLink: visibility not in [0,1]");
}

FrameResult WeakCoherentLink::run_frame(std::size_t n_slots, Attack* attack) {
  FrameResult frame;
  frame.alice.bases.resize(n_slots);
  frame.alice.values.resize(n_slots);
  frame.alice.photon_counts.resize(n_slots);
  frame.bob.detected.resize(n_slots);
  frame.bob.bases.resize(n_slots);
  frame.bob.bits.resize(n_slots);
  frame.eve.resize(n_slots);

  const double transmittance = params_.transmittance();
  const double capture = params_.central_peak_fraction * params_.detector_efficiency;
  const double dark = params_.dark_count_prob;

  for (std::size_t slot = 0; slot < n_slots; ++slot) {
    ++stats_.pulses;

    // --- Transmitter suite: random (basis, value), Poisson photon number.
    const bool alice_basis_bit = rng_.next_bool();
    const bool alice_value = rng_.next_bool();
    const unsigned emitted = rng_.next_poisson(params_.mean_photon_number);
    frame.alice.bases.set(slot, alice_basis_bit);
    frame.alice.values.set(slot, alice_value);
    frame.alice.photon_counts[slot] =
        static_cast<std::uint8_t>(emitted > 255 ? 255 : emitted);

    InFlightPulse pulse{basis_from_bit(alice_basis_bit), alice_value, emitted,
                        /*lossless_delivery=*/false};
    if (attack != nullptr) attack->apply(slot, pulse, frame.eve, rng_);

    // --- Receiver: Bob modulates his interferometer every gate.
    const bool bob_basis_bit = rng_.next_bool();
    frame.bob.bases.set(slot, bob_basis_bit);

    // Bright-pulse framing failure: the gate never opens for this slot.
    if (params_.misframe_prob > 0.0 && rng_.next_bool(params_.misframe_prob)) {
      ++stats_.misframed_slots;
      afterpulse_pending_[0] = afterpulse_pending_[1] = false;
      continue;
    }

    // --- Fiber + receiver optics, photon by photon.
    const double survive = pulse.lossless_delivery ? 1.0 : transmittance;
    const unsigned alice_q =
        alice_phase_quarter(pulse.basis, pulse.value);
    const unsigned bob_q =
        bob_phase_quarter(basis_from_bit(bob_basis_bit));
    const double p_d1 =
        p_route_to_d1(alice_q, bob_q, params_.interferometer_visibility);

    bool click[2] = {false, false};
    bool any_signal = false;
    for (unsigned photon = 0; photon < pulse.photons; ++photon) {
      if (!rng_.next_bool(survive * capture)) continue;
      const bool to_d1 = rng_.next_bool(p_d1);
      click[to_d1 ? 1 : 0] = true;
      any_signal = true;
    }

    // --- Dark counts: one uniform draw covers the common no-signal case.
    if (!click[0] && !click[1]) {
      const double u = rng_.next_double();
      if (u < dark)
        click[0] = true;
      else if (u < 2 * dark)
        click[1] = true;
    } else {
      if (rng_.next_bool(dark)) click[0] = true;
      if (rng_.next_bool(dark)) click[1] = true;
    }

    // --- Afterpulsing from the previous gate.
    if (params_.afterpulse_prob > 0.0) {
      for (int d = 0; d < 2; ++d) {
        if (afterpulse_pending_[d] && rng_.next_bool(params_.afterpulse_prob))
          click[d] = true;
      }
    }
    afterpulse_pending_[0] = click[0];
    afterpulse_pending_[1] = click[1];

    // --- Click resolution: exactly one APD firing yields a usable bit.
    if (click[0] && click[1]) {
      ++stats_.double_clicks;
      ++frame.bob.double_clicks;
      continue;
    }
    if (!click[0] && !click[1]) continue;

    frame.bob.detected.set(slot, true);
    frame.bob.bits.set(slot, click[1]);
    ++stats_.detections;
    if (any_signal) {
      ++stats_.signal_clicks;
      ++frame.bob.signal_clicks;
    } else {
      ++stats_.dark_only_clicks;
      ++frame.bob.dark_only_clicks;
    }
  }
  if (attack != nullptr) attack->resolve_bases(frame.alice.bases, frame.eve);
  return frame;
}

}  // namespace qkd::optics
