// Entangled-photon-pair link — the paper's planned second link type.
//
// Section 3: "we hope to achieve rapid delivery of keys by introducing a
// new, high-speed source of entangled photons"; Section 8: "work should
// proceed at full speed on building out ... its next kinds of QKD links
// (based on entangled photon pairs)". Section 6 gives the security payoff:
// with an entangled link Eve's transparent leakage is "only proportional to
// the number of received bits times the multi-photon probability".
//
// Model: a Spontaneous Parametric Down-Conversion source at Alice emits
// photon pairs; Alice measures one photon locally (high-efficiency detector,
// negligible loss), the other travels the fiber to Bob. Measurements in
// matching bases are correlated up to the entanglement visibility; double
// pairs produce accidental coincidences (errors) and are the entangled
// analogue of multi-photon pulses. The link produces the same FrameResult
// the weak-coherent link does, so the whole protocol stack runs unchanged
// on top — with LinkKind::kEntangled selected in the entropy estimate.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/optics/types.hpp"

namespace qkd::optics {

struct EntangledParams {
  /// Probability an SPDC pair is emitted in a trigger slot (pump power).
  double pair_probability = 0.05;
  /// Probability a slot carries two independent pairs (the multi-photon
  /// analogue; roughly pair_probability^2 for a Poissonian pump).
  double double_pair_probability = 0.0025;
  /// Entanglement visibility: matched-basis correlation = (1+V)/2.
  double visibility = 0.97;
  /// Alice's local detector efficiency (short free-space path).
  double alice_efficiency = 0.6;
  /// Fiber to Bob.
  double fiber_km = 10.0;
  double attenuation_db_per_km = 0.2;
  double insertion_loss_db = 2.0;
  /// Bob's gated APD.
  double bob_efficiency = 0.15;
  double dark_count_prob = 1e-5;
  /// Trigger rate (the "high-speed source" goal).
  double pulse_rate_hz = 1e6;

  double transmittance() const;
};

class EntangledLink {
 public:
  struct Stats {
    std::uint64_t slots = 0;
    std::uint64_t pairs_emitted = 0;
    std::uint64_t double_pairs = 0;
    std::uint64_t coincidences = 0;  // both sides detected
  };

  EntangledLink(EntangledParams params, std::uint64_t seed);

  /// One frame of trigger slots. Alice's record holds her measured values
  /// (entanglement means neither side chooses the bit); `detected` on Bob's
  /// side marks coincidence slots. Eve's record flags double-pair slots as
  /// known (she can capture the spare pair undetectably).
  FrameResult run_frame(std::size_t n_slots);

  const EntangledParams& params() const { return params_; }
  const Stats& stats() const { return stats_; }

  double frame_duration_s(std::size_t n_slots) const {
    return static_cast<double>(n_slots) / params_.pulse_rate_hz;
  }

 private:
  EntangledParams params_;
  qkd::Rng rng_;
  Stats stats_;
};

/// Analytic expectations, mirroring LinkModel for the weak-coherent case.
struct EntangledModel {
  explicit EntangledModel(EntangledParams params) : params(params) {}

  double coincidence_prob() const;   // per slot
  double expected_qber() const;
  double sifted_rate_bps() const;

  EntangledParams params;
};

}  // namespace qkd::optics
