// Eavesdropping attacks on the quantum channel (Section 6's "Disquisition on
// Eve").
//
// Eve is limited only by physics: she detects dim pulses with zero loss,
// fabricates indistinguishable pulses, and transports photons losslessly.
// Attacks plug into the link between Alice's transmitter and the fiber; each
// attack sees the true quantum state of the in-flight pulse and may measure,
// replace, or siphon photons. The simulator separately keeps ground truth of
// what Eve actually learned so entropy-estimation claims can be audited.
#pragma once

#include <memory>

#include "src/common/rng.hpp"
#include "src/optics/types.hpp"

namespace qkd::optics {

/// The state of one pulse in flight, as an attack sees it. `basis`/`value`
/// describe the quantum state on the wire (an intercept-resend attack may
/// rewrite them); `photons` is the photon count entering the channel.
struct InFlightPulse {
  Basis basis;
  bool value;
  unsigned photons;
  /// When true the remaining photons bypass fiber loss (Eve transports them
  /// losslessly to Bob, as the PNS attack requires).
  bool lossless_delivery = false;
};

class Attack {
 public:
  virtual ~Attack() = default;

  /// Called once per slot. `slot` indexes the frame; `eve` collects ground
  /// truth. Implementations may mutate the pulse arbitrarily.
  virtual void apply(std::size_t slot, InFlightPulse& pulse, EveRecord& eve,
                     qkd::Rng& rng) = 0;

  /// Called after the sifting bases become public; lets attacks that stored
  /// photons (beamsplit / PNS) resolve which stored bits they now know.
  /// `alice_bases` is the public basis string. Default: nothing to resolve.
  virtual void resolve_bases(const qkd::BitVector& alice_bases, EveRecord& eve);
};

/// Intercept-resend: Eve measures a fraction of pulses in a random basis and
/// resends a fresh pulse prepared in her basis/result. Induces a 25 % error
/// rate on the intercepted, sifted fraction — the "measurable disturbance"
/// that makes eavesdropping detectable (Sec. 1).
class InterceptResendAttack final : public Attack {
 public:
  /// `fraction` in [0,1]: probability each pulse is intercepted.
  explicit InterceptResendAttack(double fraction);

  void apply(std::size_t slot, InFlightPulse& pulse, EveRecord& eve,
             qkd::Rng& rng) override;
  void resolve_bases(const qkd::BitVector& alice_bases, EveRecord& eve) override;

  double fraction() const { return fraction_; }

 private:
  double fraction_;
  // Per-slot records for post-sifting resolution: Eve knows the bit exactly
  // only when her basis matched Alice's.
  std::vector<std::pair<std::size_t, Basis>> measured_slots_;
};

/// Passive beamsplitting: a tap diverts each photon to Eve with probability
/// `tap_ratio`. Adds loss but no errors; Eve gains full knowledge of a slot
/// when she captures a photon AND the slot's basis is later announced equal
/// to her measurement basis (she stores photons, so she measures after the
/// announcement: every captured photon becomes a known bit).
class BeamsplitAttack final : public Attack {
 public:
  explicit BeamsplitAttack(double tap_ratio);

  void apply(std::size_t slot, InFlightPulse& pulse, EveRecord& eve,
             qkd::Rng& rng) override;

  double tap_ratio() const { return tap_ratio_; }

 private:
  double tap_ratio_;
};

/// Idealized photon-number-splitting: Eve performs a quantum-nondemolition
/// photon-number measurement, steals exactly one photon from every
/// multi-photon pulse, stores it until bases are public, and forwards the
/// remaining photons to Bob over her own lossless channel. Transparent: no
/// added loss (indeed less) and zero induced QBER — the attack Brassard et
/// al. showed weak-coherent systems are particularly vulnerable to (Sec. 6).
class PhotonNumberSplittingAttack final : public Attack {
 public:
  PhotonNumberSplittingAttack() = default;

  void apply(std::size_t slot, InFlightPulse& pulse, EveRecord& eve,
             qkd::Rng& rng) override;
};

/// Denial of service: Eve (or a backhoe) cuts the channel; no photons arrive.
class ChannelCutAttack final : public Attack {
 public:
  void apply(std::size_t slot, InFlightPulse& pulse, EveRecord& eve,
             qkd::Rng& rng) override;
};

/// Applies several attacks in sequence (e.g. PNS plus intercept-resend).
class CompositeAttack final : public Attack {
 public:
  void add(std::unique_ptr<Attack> attack);

  void apply(std::size_t slot, InFlightPulse& pulse, EveRecord& eve,
             qkd::Rng& rng) override;
  void resolve_bases(const qkd::BitVector& alice_bases, EveRecord& eve) override;

 private:
  std::vector<std::unique_ptr<Attack>> attacks_;
};

}  // namespace qkd::optics
