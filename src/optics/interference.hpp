// The Mach-Zehnder interference law of Figs. 4-7.
//
// After Bob's 50/50 coupler the central (self-interfering) peak routes a
// photon to detector D1 with probability (1 - V cos(delta)) / 2, where delta
// is the phase difference between the S_A L_B and L_A S_B paths and V is the
// interferometer visibility. With delta = 0 the interference is fully
// constructive at D0 ("no click" at D1 in Fig. 7); with delta = pi it is
// fully destructive at D0; with delta = pi/2 or 3pi/2 (incompatible bases)
// the photon strikes one of the two APDs at random.
#pragma once

namespace qkd::optics {

/// cos(q * pi/2) for integer quarter turns, exact.
inline int cos_quarter(unsigned quarters) {
  switch (quarters % 4) {
    case 0:
      return 1;
    case 2:
      return -1;
    default:
      return 0;
  }
}

/// Probability that a central-peak photon exits toward detector D1, given
/// Alice's and Bob's modulator settings in quarter turns of pi/2 and the
/// interferometer visibility V in [0,1].
inline double p_route_to_d1(unsigned alice_quarters, unsigned bob_quarters,
                            double visibility) {
  const unsigned delta = (alice_quarters + 4 - (bob_quarters % 4)) % 4;
  return (1.0 - visibility * cos_quarter(delta)) / 2.0;
}

/// True when the two phase settings form a compatible measurement: the phase
/// difference is 0 or pi, so the outcome is deterministic (up to visibility).
inline bool compatible_phases(unsigned alice_quarters, unsigned bob_quarters) {
  return (alice_quarters + 4 - (bob_quarters % 4)) % 2 == 0;
}

}  // namespace qkd::optics
