// Trace exporters: the recorded spans in formats other tools read.
//
// chrome_trace_json renders spans as Chrome trace-event JSON ("X"
// complete events), loadable directly in Perfetto / chrome://tracing.
// Timestamps are SIM time in microseconds — the run's own timeline, so a
// scripted network day lays out as a day — with wall-clock duration, span
// ids and attributes carried in "args". tools/trace_report.py consumes
// the same file for per-name latency percentiles.
#pragma once

#include <string>
#include <vector>

#include "src/obs/trace.hpp"

namespace qkd::obs {

/// Serializes spans as {"traceEvents": [...]} Chrome trace JSON. Open
/// spans (sim_end < sim_start) export with zero duration. Track mapping:
/// pid 1, tid = recording cell + 1 (one row per shard/lane).
std::string chrome_trace_json(const std::vector<Span>& spans);

/// chrome_trace_json over everything `tracer` recorded.
std::string chrome_trace_json(const Tracer& tracer);

}  // namespace qkd::obs
