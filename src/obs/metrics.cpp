#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace qkd::obs {

// ---- Counter ---------------------------------------------------------------

Counter::Counter(std::size_t cells) : cells_(cells == 0 ? 1 : cells) {}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Slot& slot : cells_) total += slot.v.load(std::memory_order_relaxed);
  return total;
}

// ---- Gauge -----------------------------------------------------------------

Gauge::Gauge(std::size_t cells) : cells_(cells == 0 ? 1 : cells) {}

std::int64_t Gauge::value() const {
  std::int64_t total = 0;
  for (const Slot& slot : cells_) total += slot.v.load(std::memory_order_relaxed);
  return total;
}

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::size_t cells) {
  if (cells == 0) cells = 1;
  cells_.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i)
    cells_.push_back(std::make_unique<Slot>());
}

void Histogram::record(std::uint64_t value, std::size_t cell) {
  if (cell >= cells_.size()) cell = cells_.size() - 1;
  Slot& slot = *cells_[cell];
  std::size_t index = std::bit_width(value);
  if (index >= kBuckets) index = kBuckets - 1;
  slot.buckets[index].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& slot : cells_)
    total += slot->count.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const auto& slot : cells_)
    total += slot->sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> buckets(kBuckets, 0);
  for (const auto& slot : cells_)
    for (std::size_t i = 0; i < kBuckets; ++i)
      buckets[i] += slot->buckets[i].load(std::memory_order_relaxed);
  return buckets;
}

double Histogram::quantile(double q) const {
  const auto buckets = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank)
      return static_cast<double>(i == 0 ? 0ULL : (1ULL << i));
  }
  return 0.0;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry::MetricsRegistry(std::size_t cells)
    : default_cells_(cells == 0 ? 1 : cells) {}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name,
                                                   MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument("MetricsRegistry: \"" + name +
                                  "\" already registered with another kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter.reset(new Counter(default_cells_));
      break;
    case MetricKind::kGauge:
      entry.gauge.reset(new Gauge(default_cells_));
      break;
    case MetricKind::kHistogram:
      entry.histogram.reset(new Histogram(default_cells_));
      break;
  }
  return entries_.emplace(name, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *entry_for(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *entry_for(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return *entry_for(name, MetricKind::kHistogram).histogram;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != MetricKind::kHistogram)
    return nullptr;
  return it->second.histogram.get();
}

void MetricsRegistry::add_collector(Collector collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

namespace {
/// Accumulates collector output as plain samples.
class SampleCollect final : public MetricsRegistry::Collect {
 public:
  explicit SampleCollect(std::vector<MetricSample>& out) : out_(out) {}
  void counter(const std::string& name, std::uint64_t value) override {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kCounter;
    sample.value = static_cast<double>(value);
    out_.push_back(std::move(sample));
  }
  void gauge(const std::string& name, double value) override {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricKind::kGauge;
    sample.value = value;
    out_.push_back(std::move(sample));
  }

 private:
  std::vector<MetricSample>& out_;
};
}  // namespace

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> samples;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {
      MetricSample sample;
      sample.name = name;
      sample.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          sample.value = static_cast<double>(entry.counter->value());
          break;
        case MetricKind::kGauge:
          sample.value = static_cast<double>(entry.gauge->value());
          break;
        case MetricKind::kHistogram:
          sample.value = static_cast<double>(entry.histogram->count());
          sample.sum = static_cast<double>(entry.histogram->sum());
          sample.p50 = entry.histogram->quantile(0.5);
          sample.p99 = entry.histogram->quantile(0.99);
          break;
      }
      samples.push_back(std::move(sample));
    }
    collectors = collectors_;
  }
  // Collectors run outside the registry lock: they read other layers'
  // stats and may themselves resolve instruments.
  SampleCollect sink(samples);
  for (const Collector& collector : collectors) collector(sink);
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream out;
  for (const MetricSample& sample : snapshot()) {
    switch (sample.kind) {
      case MetricKind::kCounter:
        out << "# TYPE " << sample.name << " counter\n"
            << sample.name << " " << sample.value << "\n";
        break;
      case MetricKind::kGauge:
        out << "# TYPE " << sample.name << " gauge\n"
            << sample.name << " " << sample.value << "\n";
        break;
      case MetricKind::kHistogram:
        out << "# TYPE " << sample.name << " summary\n"
            << sample.name << "_count " << sample.value << "\n"
            << sample.name << "_sum " << sample.sum << "\n"
            << sample.name << "{quantile=\"0.5\"} " << sample.p50 << "\n"
            << sample.name << "{quantile=\"0.99\"} " << sample.p99 << "\n";
        break;
    }
  }
  return out.str();
}

}  // namespace qkd::obs
