// Sim-time health engine: declarative alert rules over MetricsRegistry
// samples.
//
// The paper's operational premise is that a deployed QKD network is run by
// alarms — a QBER spike IS the eavesdropping detector, and a drained key
// pool is what starves IKE rekeying — so the metrics layer needs a watcher
// that turns signal into operable state. An AlertEngine holds a set of
// AlertRules and is ticked by evaluate(now): each tick takes one registry
// snapshot, feeds every rule's condition, and drives a per-rule lifecycle
// state machine
//
//   inactive -> pending -> firing -> resolved -> (pending | firing) ...
//
// where `for_duration` is the pending debounce (a condition must hold that
// long before the alert fires — one noisy sample never pages) and
// `resolved` is sticky until the condition trips again. Every state change
// is recorded as a Transition (the full history tests assert on), surfaced
// through an observer callback (the sim layer bridges these onto the
// TimelineRecorder as annotations), exported as Prometheus-style ALERTS
// samples via bind_alerts(), and assembled into firing episodes by
// incidents() for the JSON incident report (src/obs/health/report.hpp).
//
// Evaluation is deliberately pull-based and clock-agnostic: the engine
// never schedules itself. Drive it from an EventScheduler periodic event
// (ScenarioRunner::attach_alerts does exactly that) and evaluation is
// deterministic and scenario-scriptable; drive it from a wall-clock
// monitoring thread in a live deployment and nothing changes.
//
// Conditions (the rule grammar; see DESIGN.md "Health & alerting"):
//   Threshold    instantaneous comparison against a counter/gauge value or
//                a histogram's count.
//   RateOfChange per-second delta over a trailing window (counters: surge
//                detection; needs at least two ticks inside the window).
//   Absence      the metric is missing from the snapshot, or — for
//                counters — has not advanced within `stale_after` (the
//                watchdog flavor: "distillation stopped").
//   QuantileAbove a live histogram quantile (any q, not just the exported
//                p50/p99) compared against a bound.
//   SloBurnRate  multi-window burn rate over a good/total counter pair:
//                burn = (bad fraction over window) / error budget, firing
//                only when BOTH the short and the long window burn faster
//                than `burn_threshold` (the SRE multi-window pattern:
//                short window for reaction time, long window so a blip
//                that already ended cannot page).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/sim_clock.hpp"
#include "src/obs/metrics.hpp"

namespace qkd::obs::health {

// ---- Condition grammar -----------------------------------------------------

enum class Comparison { kGreater, kLess };

/// Instantaneous bound on a sample's value (counter/gauge value; a
/// histogram's sample reports its count).
struct Threshold {
  std::string metric;
  Comparison op = Comparison::kGreater;
  double bound = 0.0;
};

/// Per-second change of the metric over the trailing `window`, compared
/// against `bound_per_s`. Needs history: the engine keeps (time, value)
/// samples per referenced metric across evaluate() ticks; until two ticks
/// fall inside the window the condition reads false.
struct RateOfChange {
  std::string metric;
  qkd::SimTime window = 0;
  Comparison op = Comparison::kGreater;
  double bound_per_s = 0.0;
};

/// Staleness watchdog: true when the metric is absent from the snapshot
/// entirely, or when its value has not changed for `stale_after` (tracked
/// from evaluation history — the heartbeat flavor for counters).
struct Absence {
  std::string metric;
  qkd::SimTime stale_after = 0;
};

/// A live histogram quantile (conservative upper-bucket-bound convention,
/// same as Histogram::quantile) compared against `bound`. The metric must
/// be a registry-owned histogram; collector-reported values cannot carry
/// arbitrary quantiles.
struct QuantileAbove {
  std::string metric;
  double quantile = 0.99;
  double bound = 0.0;
};

/// Multi-window SLO burn rate over cumulative good/total counters.
/// bad = total_delta - good_delta over the window;
/// burn = (bad / total_delta) / (1 - objective). Burn 1.0 consumes the
/// error budget exactly at the sustainable rate; the condition is true
/// when BOTH windows burn past `burn_threshold`.
struct SloBurnRate {
  std::string good_metric;
  std::string total_metric;
  double objective = 0.99;        // target good/total ratio
  qkd::SimTime short_window = 0;  // reaction-time window
  qkd::SimTime long_window = 0;   // anti-flap window (>= short_window)
  double burn_threshold = 1.0;
};

using AlertCondition =
    std::variant<Threshold, RateOfChange, Absence, QuantileAbove, SloBurnRate>;

/// Human-readable condition tag ("threshold", "rate_of_change", ...).
const char* condition_kind(const AlertCondition& condition);

// ---- Rules and lifecycle ---------------------------------------------------

struct AlertRule {
  std::string name;     // unique within the engine
  std::string summary;  // one line for reports ("QBER alarm on link 6")
  AlertCondition condition;
  /// Debounce: the condition must hold this long before pending becomes
  /// firing. Zero fires on the first true evaluation.
  qkd::SimTime for_duration = 0;
  /// Free-form labels carried into ALERTS samples and incident reports
  /// (severity, link/pair ids, ...).
  std::map<std::string, std::string> labels;
};

enum class AlertState { kInactive, kPending, kFiring, kResolved };

const char* alert_state_name(AlertState state);

/// One lifecycle state change, recorded at the evaluation that caused it.
struct Transition {
  qkd::SimTime at = 0;
  std::string rule;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  /// The condition's observed value at the transition (burn rules report
  /// the short-window burn; absence reports seconds since last change).
  double value = 0.0;
};

/// One firing episode assembled from the transition history: the unit the
/// incident report and the expect_alert assertions consume.
struct Incident {
  std::string rule;
  std::string summary;
  std::map<std::string, std::string> labels;
  qkd::SimTime pending_at = -1;  // -1 when the rule fired without debounce
  qkd::SimTime firing_at = 0;
  qkd::SimTime resolved_at = -1;  // -1 while still firing
  double peak_value = 0.0;        // extreme observed value while pending/firing
  bool resolved() const { return resolved_at >= 0; }
};

// ---- The engine ------------------------------------------------------------

class AlertEngine {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;
    std::uint64_t conditions_evaluated = 0;
    std::uint64_t transitions = 0;
  };

  /// The registry is read at every evaluate(); it must outlive the engine.
  explicit AlertEngine(const MetricsRegistry& registry);

  /// Adds a rule; throws std::invalid_argument on a duplicate name, an
  /// empty name, or a SloBurnRate whose long window is shorter than its
  /// short window.
  void add_rule(AlertRule rule);
  std::size_t rule_count() const { return rules_.size(); }
  bool has_rule(const std::string& rule) const {
    return rule_index_.count(rule) != 0;
  }

  /// One evaluation tick at sim time `now` (monotonically non-decreasing
  /// across calls; going backwards throws). Takes one registry snapshot,
  /// updates metric history, advances every rule's state machine, and
  /// records/announces transitions.
  void evaluate(qkd::SimTime now);

  /// Current lifecycle state of a rule (throws on unknown name).
  AlertState state(const std::string& rule) const;
  /// Rules currently pending or firing.
  std::vector<std::string> active() const;

  /// Every transition since construction, in evaluation order.
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Firing episodes assembled from the history, in firing order. An
  /// episode still firing at the last evaluation has resolved_at == -1.
  std::vector<Incident> incidents() const;

  /// Invoked synchronously for every transition (after it is recorded).
  /// The sim bridge uses this to annotate the TimelineRecorder.
  using TransitionObserver = std::function<void(const Transition&)>;
  void set_transition_observer(TransitionObserver observer) {
    observer_ = std::move(observer);
  }

  /// Registers a collector on `registry` exposing Prometheus-style ALERTS
  /// samples for every rule: a gauge
  ///   ALERTS{alertname="<rule>",alertstate="<pending|firing>"} = 1
  /// per active alert, plus ALERTS_firing_total / ALERTS_resolved_total
  /// counters. Usually the same registry the rules read; any registry
  /// works. The engine must outlive the binding.
  void bind_alerts(MetricsRegistry& registry);

  const Stats& stats() const { return stats_; }
  qkd::SimTime last_evaluated() const { return last_evaluated_; }

 private:
  struct RuleState {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    qkd::SimTime pending_since = -1;
    double last_value = 0.0;
    double peak_value = 0.0;
  };

  struct HistoryPoint {
    qkd::SimTime at = 0;
    double value = 0.0;
  };
  struct MetricHistory {
    std::deque<HistoryPoint> points;
    qkd::SimTime last_changed = -1;
    bool present = false;  // seen in any snapshot yet
    qkd::SimTime max_window = 0;
  };

  /// (condition true?, observed value) against the current snapshot.
  std::pair<bool, double> evaluate_condition(const AlertCondition& condition,
                                             qkd::SimTime now) const;
  /// Metric value over the trailing window: value(now) - value(at or
  /// before now - window); nullopt until the window is covered.
  std::optional<double> window_delta(const std::string& metric,
                                     qkd::SimTime window,
                                     qkd::SimTime now) const;
  double burn_rate(const SloBurnRate& slo, qkd::SimTime window,
                   qkd::SimTime now) const;
  void track(const std::string& metric, qkd::SimTime window);
  void transition(RuleState& rs, AlertState to, qkd::SimTime now);

  const MetricsRegistry& registry_;
  std::vector<RuleState> rules_;
  std::map<std::string, std::size_t> rule_index_;
  std::map<std::string, MetricHistory> history_;
  std::map<std::string, double> snapshot_;  // name -> value, last evaluate
  std::map<std::string, double> snapshot_p99_;  // histograms only
  std::vector<Transition> transitions_;
  TransitionObserver observer_;
  Stats stats_;
  qkd::SimTime last_evaluated_ = -1;
};

}  // namespace qkd::obs::health
