#include "src/obs/health/report.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qkd::obs::health {
namespace {

/// Minimal JSON string escaping (rule names and labels are ASCII
/// identifiers in practice, but a stray quote must not corrupt the file).
void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
              << "0123456789abcdef"[c & 0xF];
        else
          out << c;
    }
  }
  out << '"';
}

void append_labels(std::ostringstream& out,
                   const std::map<std::string, std::string>& labels) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ",";
    first = false;
    append_json_string(out, key);
    out << ":";
    append_json_string(out, value);
  }
  out << "}";
}

void append_time_or_null(std::ostringstream& out, qkd::SimTime t) {
  if (t < 0)
    out << "null";
  else
    out << qkd::sim_to_seconds(t);
}

}  // namespace

std::string incident_report_json(const AlertEngine& engine) {
  std::ostringstream out;
  out << "{\"incidents\":[";
  bool first = true;
  for (const Incident& incident : engine.incidents()) {
    if (!first) out << ",";
    first = false;
    out << "{\"rule\":";
    append_json_string(out, incident.rule);
    out << ",\"summary\":";
    append_json_string(out, incident.summary);
    out << ",\"labels\":";
    append_labels(out, incident.labels);
    out << ",\"pending_s\":";
    append_time_or_null(out, incident.pending_at);
    out << ",\"firing_s\":" << qkd::sim_to_seconds(incident.firing_at)
        << ",\"resolved_s\":";
    append_time_or_null(out, incident.resolved_at);
    // Duration of the firing phase; still-open incidents run to the last
    // evaluation.
    const qkd::SimTime end =
        incident.resolved() ? incident.resolved_at : engine.last_evaluated();
    out << ",\"duration_s\":"
        << qkd::sim_to_seconds(end - incident.firing_at)
        << ",\"peak_value\":" << incident.peak_value << "}";
  }
  out << "],\"transitions\":[";
  first = true;
  for (const Transition& t : engine.transitions()) {
    if (!first) out << ",";
    first = false;
    out << "{\"t_s\":" << qkd::sim_to_seconds(t.at) << ",\"rule\":";
    append_json_string(out, t.rule);
    out << ",\"from\":\"" << alert_state_name(t.from) << "\",\"to\":\""
        << alert_state_name(t.to) << "\",\"value\":" << t.value << "}";
  }
  const AlertEngine::Stats& stats = engine.stats();
  out << "],\"stats\":{\"evaluations\":" << stats.evaluations
      << ",\"conditions_evaluated\":" << stats.conditions_evaluated
      << ",\"transitions\":" << stats.transitions
      << ",\"rules\":" << engine.rule_count() << ",\"last_evaluated_s\":";
  append_time_or_null(out, engine.last_evaluated());
  out << "}}";
  return out.str();
}

void write_incident_report(const AlertEngine& engine, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open incident report " + path);
  out << incident_report_json(engine) << "\n";
  if (!out) throw std::runtime_error("failed writing incident report " + path);
}

}  // namespace qkd::obs::health
