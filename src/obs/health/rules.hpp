// The built-in rule pack: the alarms the paper's network is run by.
//
// Each factory returns one configured AlertRule for a signal the stack
// already exports through bind_metrics(); callers pass the metric names
// (the obs layer cannot see network/kms types, so topology enumeration —
// one QBER rule per link, one drought rule per endpoint pair — happens at
// the caller's level, where the links and pairs are known). Defaults are
// grounded in the paper's operating points: the QBER alarm sits at 8%
// (warning territory below the 11% intercept-resend abort), the drought
// floor at one 256-bit AES key worth of pooled bits, and the grant SLO
// uses the SRE multi-window burn-rate pattern.
#pragma once

#include <string>

#include "src/obs/health/alert.hpp"

namespace qkd::obs::health::rules {

/// Eavesdrop alarm: the link's QBER gauge (percent, as exported by the
/// mesh) crossed `qber_percent`. Intercept-resend at full fraction drives
/// QBER to ~25%; the 8% default trips well before the 11% protocol abort
/// so the alert leads the automatic link teardown.
AlertRule qber_spike(const std::string& qber_metric, const std::string& link,
                     double qber_percent = 8.0,
                     qkd::SimTime for_duration = 2 * qkd::kSecond);

/// Per-pair pool drought: the pooled key bits for one endpoint pair fell
/// below `min_bits` (default: one AES-256 key). Debounced so a transient
/// dip during a burst does not page.
AlertRule pool_drought(const std::string& pool_metric, const std::string& pair,
                       double min_bits = 256.0,
                       qkd::SimTime for_duration = 5 * qkd::kSecond);

/// Grant-latency SLO burn: `good_metric` counts grants inside the latency
/// objective, `total_metric` all grants; fires when both the short and the
/// long window burn the error budget faster than `burn_threshold`.
AlertRule grant_slo_burn(const std::string& good_metric,
                         const std::string& total_metric,
                         const std::string& qos, double objective = 0.99,
                         qkd::SimTime short_window = 10 * qkd::kSecond,
                         qkd::SimTime long_window = 60 * qkd::kSecond,
                         double burn_threshold = 2.0);

/// Shed/rejection surge: the class's cumulative shed counter is rising
/// faster than `per_second` over `window` (load shedding is by design, a
/// *surge* of it is an incident).
AlertRule shed_surge(const std::string& shed_metric, const std::string& qos,
                     double per_second = 1.0,
                     qkd::SimTime window = 10 * qkd::kSecond,
                     qkd::SimTime for_duration = 0);

/// Wire retransmission storm: the transport's retransmit counter is rising
/// faster than `per_second` over `window` — the classical channel under
/// the key protocols is degrading.
AlertRule retransmission_storm(const std::string& retransmit_metric,
                               double per_second = 5.0,
                               qkd::SimTime window = 10 * qkd::kSecond,
                               qkd::SimTime for_duration = 0);

/// Distillation watchdog: the transports counter has not advanced for
/// `stale_after` — key generation stopped entirely (fiber cut, engine
/// wedge) even though nothing else alarmed.
AlertRule distillation_stalled(const std::string& transports_metric,
                               qkd::SimTime stale_after = 30 * qkd::kSecond);

}  // namespace qkd::obs::health::rules
