#include "src/obs/health/rules.hpp"

namespace qkd::obs::health::rules {

AlertRule qber_spike(const std::string& qber_metric, const std::string& link,
                     double qber_percent, qkd::SimTime for_duration) {
  AlertRule rule;
  rule.name = "qber_spike:" + link;
  rule.summary = "QBER alarm on link " + link + " (possible eavesdropper)";
  rule.condition = Threshold{qber_metric, Comparison::kGreater, qber_percent};
  rule.for_duration = for_duration;
  rule.labels = {{"severity", "critical"}, {"link", link}};
  return rule;
}

AlertRule pool_drought(const std::string& pool_metric, const std::string& pair,
                       double min_bits, qkd::SimTime for_duration) {
  AlertRule rule;
  rule.name = "pool_drought:" + pair;
  rule.summary = "key pool drought for pair " + pair;
  rule.condition = Threshold{pool_metric, Comparison::kLess, min_bits};
  rule.for_duration = for_duration;
  rule.labels = {{"severity", "warning"}, {"pair", pair}};
  return rule;
}

AlertRule grant_slo_burn(const std::string& good_metric,
                         const std::string& total_metric,
                         const std::string& qos, double objective,
                         qkd::SimTime short_window, qkd::SimTime long_window,
                         double burn_threshold) {
  AlertRule rule;
  rule.name = "grant_slo_burn:" + qos;
  rule.summary = "grant-latency SLO burning for class " + qos;
  SloBurnRate condition;
  condition.good_metric = good_metric;
  condition.total_metric = total_metric;
  condition.objective = objective;
  condition.short_window = short_window;
  condition.long_window = long_window;
  condition.burn_threshold = burn_threshold;
  rule.condition = condition;
  rule.labels = {{"severity", "page"}, {"qos", qos}};
  return rule;
}

AlertRule shed_surge(const std::string& shed_metric, const std::string& qos,
                     double per_second, qkd::SimTime window,
                     qkd::SimTime for_duration) {
  AlertRule rule;
  rule.name = "shed_surge:" + qos;
  rule.summary = "load-shed surge for class " + qos;
  rule.condition =
      RateOfChange{shed_metric, window, Comparison::kGreater, per_second};
  rule.for_duration = for_duration;
  rule.labels = {{"severity", "warning"}, {"qos", qos}};
  return rule;
}

AlertRule retransmission_storm(const std::string& retransmit_metric,
                               double per_second, qkd::SimTime window,
                               qkd::SimTime for_duration) {
  AlertRule rule;
  rule.name = "retransmission_storm";
  rule.summary = "wire retransmission storm on the key-protocol channel";
  rule.condition = RateOfChange{retransmit_metric, window, Comparison::kGreater,
                                per_second};
  rule.for_duration = for_duration;
  rule.labels = {{"severity", "warning"}, {"layer", "wire"}};
  return rule;
}

AlertRule distillation_stalled(const std::string& transports_metric,
                               qkd::SimTime stale_after) {
  AlertRule rule;
  rule.name = "distillation_stalled";
  rule.summary = "key distillation stopped advancing";
  rule.condition = Absence{transports_metric, stale_after};
  rule.labels = {{"severity", "critical"}, {"layer", "qkd"}};
  return rule;
}

}  // namespace qkd::obs::health::rules
