// JSON incident report for a finished AlertEngine.
//
// One self-describing document per run: every firing episode (with its
// pending/firing/resolved instants in seconds and the peak observed
// value), the raw transition log, and the engine's evaluation stats.
// `tools/incident_report.py` merges this file with a chrome-trace span
// dump into a per-incident timeline; CI uploads the example_kms_day
// report as an artifact.
#pragma once

#include <string>

#include "src/obs/health/alert.hpp"

namespace qkd::obs::health {

/// The report as a JSON string:
///   {"incidents":[{"rule":...,"summary":...,"labels":{...},
///                  "pending_s":...,"firing_s":...,"resolved_s":null|...,
///                  "duration_s":...,"peak_value":...}, ...],
///    "transitions":[{"t_s":...,"rule":...,"from":...,"to":...,
///                    "value":...}, ...],
///    "stats":{"evaluations":...,"conditions_evaluated":...,
///             "transitions":...,"rules":...,"last_evaluated_s":...}}
/// pending_s is null when the rule fired without a debounce window;
/// resolved_s is null while the incident is still firing.
std::string incident_report_json(const AlertEngine& engine);

/// Writes incident_report_json() to `path` (throws std::runtime_error on
/// I/O failure). The QKD_INCIDENT_OUT hook in example_kms_day lands here.
void write_incident_report(const AlertEngine& engine, const std::string& path);

}  // namespace qkd::obs::health
