#include "src/obs/health/alert.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/common/logging.hpp"

namespace qkd::obs::health {

const char* condition_kind(const AlertCondition& condition) {
  struct Visitor {
    const char* operator()(const Threshold&) const { return "threshold"; }
    const char* operator()(const RateOfChange&) const {
      return "rate_of_change";
    }
    const char* operator()(const Absence&) const { return "absence"; }
    const char* operator()(const QuantileAbove&) const { return "quantile"; }
    const char* operator()(const SloBurnRate&) const { return "slo_burn_rate"; }
  };
  return std::visit(Visitor{}, condition);
}

const char* alert_state_name(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "?";
}

namespace {

bool compare(Comparison op, double value, double bound) {
  return op == Comparison::kGreater ? value > bound : value < bound;
}

}  // namespace

AlertEngine::AlertEngine(const MetricsRegistry& registry)
    : registry_(registry) {}

void AlertEngine::track(const std::string& metric, qkd::SimTime window) {
  MetricHistory& history = history_[metric];
  history.max_window = std::max(history.max_window, window);
}

void AlertEngine::add_rule(AlertRule rule) {
  if (rule.name.empty())
    throw std::invalid_argument("AlertEngine: rule with empty name");
  if (rule_index_.count(rule.name) != 0)
    throw std::invalid_argument("AlertEngine: duplicate rule \"" + rule.name +
                                "\"");
  // Register the rule's metrics for history tracking (window conditions
  // need samples from past ticks; instantaneous ones still feed Absence's
  // last-changed bookkeeping).
  struct Visitor {
    AlertEngine& engine;
    void operator()(const Threshold& c) const { engine.track(c.metric, 0); }
    void operator()(const RateOfChange& c) const {
      if (c.window <= 0)
        throw std::invalid_argument("AlertEngine: RateOfChange window <= 0");
      engine.track(c.metric, c.window);
    }
    void operator()(const Absence& c) const {
      if (c.stale_after <= 0)
        throw std::invalid_argument("AlertEngine: Absence stale_after <= 0");
      engine.track(c.metric, c.stale_after);
    }
    void operator()(const QuantileAbove& c) const { engine.track(c.metric, 0); }
    void operator()(const SloBurnRate& c) const {
      if (c.short_window <= 0 || c.long_window < c.short_window)
        throw std::invalid_argument(
            "AlertEngine: SloBurnRate windows must satisfy 0 < short <= long");
      if (c.objective <= 0.0 || c.objective >= 1.0)
        throw std::invalid_argument(
            "AlertEngine: SloBurnRate objective must be in (0, 1)");
      engine.track(c.good_metric, c.long_window);
      engine.track(c.total_metric, c.long_window);
    }
  };
  std::visit(Visitor{*this}, rule.condition);

  rule_index_[rule.name] = rules_.size();
  RuleState rs;
  rs.rule = std::move(rule);
  rules_.push_back(std::move(rs));
}

std::optional<double> AlertEngine::window_delta(const std::string& metric,
                                                qkd::SimTime window,
                                                qkd::SimTime now) const {
  const auto it = history_.find(metric);
  if (it == history_.end()) return std::nullopt;
  const auto& points = it->second.points;
  if (points.size() < 2) return std::nullopt;
  // The newest point at or before the window start; the window must be
  // covered (oldest retained point no later than now - window) so a young
  // engine never reports a rate off a partial window.
  const qkd::SimTime start = now - window;
  if (points.front().at > start) return std::nullopt;
  const HistoryPoint* base = &points.front();
  for (const HistoryPoint& p : points) {
    if (p.at > start) break;
    base = &p;
  }
  return points.back().value - base->value;
}

double AlertEngine::burn_rate(const SloBurnRate& slo, qkd::SimTime window,
                              qkd::SimTime now) const {
  const auto good = window_delta(slo.good_metric, window, now);
  const auto total = window_delta(slo.total_metric, window, now);
  if (!good || !total || *total <= 0.0) return 0.0;
  const double bad_fraction = std::max(0.0, (*total - *good) / *total);
  return bad_fraction / (1.0 - slo.objective);
}

std::pair<bool, double> AlertEngine::evaluate_condition(
    const AlertCondition& condition, qkd::SimTime now) const {
  struct Visitor {
    const AlertEngine& engine;
    qkd::SimTime now;

    std::pair<bool, double> operator()(const Threshold& c) const {
      const auto it = engine.snapshot_.find(c.metric);
      if (it == engine.snapshot_.end()) return {false, 0.0};
      return {compare(c.op, it->second, c.bound), it->second};
    }
    std::pair<bool, double> operator()(const RateOfChange& c) const {
      const auto delta = engine.window_delta(c.metric, c.window, now);
      if (!delta) return {false, 0.0};
      const double rate = *delta / qkd::sim_to_seconds(c.window);
      return {compare(c.op, rate, c.bound_per_s), rate};
    }
    std::pair<bool, double> operator()(const Absence& c) const {
      const auto it = engine.history_.find(c.metric);
      if (it == engine.history_.end() || !it->second.present)
        return {true, 0.0};  // never seen at all: maximally absent
      const qkd::SimTime idle = now - it->second.last_changed;
      return {idle >= c.stale_after, qkd::sim_to_seconds(idle)};
    }
    std::pair<bool, double> operator()(const QuantileAbove& c) const {
      const Histogram* histogram = engine.registry_.find_histogram(c.metric);
      if (histogram == nullptr || histogram->count() == 0) return {false, 0.0};
      const double value = histogram->quantile(c.quantile);
      return {value > c.bound, value};
    }
    std::pair<bool, double> operator()(const SloBurnRate& c) const {
      const double short_burn = engine.burn_rate(c, c.short_window, now);
      const double long_burn = engine.burn_rate(c, c.long_window, now);
      return {short_burn > c.burn_threshold && long_burn > c.burn_threshold,
              short_burn};
    }
  };
  return std::visit(Visitor{*this, now}, condition);
}

void AlertEngine::transition(RuleState& rs, AlertState to, qkd::SimTime now) {
  Transition t;
  t.at = now;
  t.rule = rs.rule.name;
  t.from = rs.state;
  t.to = to;
  t.value = rs.last_value;
  rs.state = to;
  transitions_.push_back(t);
  ++stats_.transitions;
  QKD_LOG(kDebug) << "alert " << t.rule << ": " << alert_state_name(t.from)
                  << " -> " << alert_state_name(t.to) << " (value "
                  << t.value << ")";
  if (observer_) observer_(transitions_.back());
}

void AlertEngine::evaluate(qkd::SimTime now) {
  if (now < last_evaluated_)
    throw std::invalid_argument("AlertEngine: evaluate() going backwards");
  last_evaluated_ = now;
  ++stats_.evaluations;

  // One snapshot per tick: every rule sees the same instant.
  snapshot_.clear();
  snapshot_p99_.clear();
  for (const MetricSample& sample : registry_.snapshot()) {
    snapshot_[sample.name] = sample.value;
    if (sample.kind == MetricKind::kHistogram)
      snapshot_p99_[sample.name] = sample.p99;
  }

  // Advance the tracked histories (only metrics some rule references).
  for (auto& [name, history] : history_) {
    const auto it = snapshot_.find(name);
    if (it == snapshot_.end()) continue;
    const double value = it->second;
    if (!history.present || history.points.empty() ||
        history.points.back().value != value) {
      history.last_changed = now;
    }
    history.present = true;
    history.points.push_back({now, value});
    // Retain one point at or before the window start so window_delta can
    // anchor a full window; everything older is dead weight.
    const qkd::SimTime horizon = now - history.max_window;
    while (history.points.size() > 1 && history.points[1].at <= horizon)
      history.points.pop_front();
  }

  for (RuleState& rs : rules_) {
    const auto [active, value] =
        evaluate_condition(rs.rule.condition, now);
    ++stats_.conditions_evaluated;
    rs.last_value = value;
    switch (rs.state) {
      case AlertState::kInactive:
      case AlertState::kResolved:
        if (active) {
          rs.peak_value = value;
          if (rs.rule.for_duration <= 0) {
            rs.pending_since = -1;
            transition(rs, AlertState::kFiring, now);
          } else {
            rs.pending_since = now;
            transition(rs, AlertState::kPending, now);
          }
        }
        break;
      case AlertState::kPending:
        if (!active) {
          // The condition released before the debounce elapsed: back to
          // where the episode started (a resolved rule stays resolved).
          rs.pending_since = -1;
          transition(rs,
                     std::any_of(transitions_.begin(), transitions_.end(),
                                 [&rs](const Transition& t) {
                                   return t.rule == rs.rule.name &&
                                          t.to == AlertState::kResolved;
                                 })
                         ? AlertState::kResolved
                         : AlertState::kInactive,
                     now);
        } else {
          rs.peak_value = std::max(rs.peak_value, value);
          if (now - rs.pending_since >= rs.rule.for_duration)
            transition(rs, AlertState::kFiring, now);
        }
        break;
      case AlertState::kFiring:
        if (!active) {
          transition(rs, AlertState::kResolved, now);
        } else {
          rs.peak_value = std::max(rs.peak_value, value);
        }
        break;
    }
  }
}

AlertState AlertEngine::state(const std::string& rule) const {
  const auto it = rule_index_.find(rule);
  if (it == rule_index_.end())
    throw std::invalid_argument("AlertEngine: unknown rule \"" + rule + "\"");
  return rules_[it->second].state;
}

std::vector<std::string> AlertEngine::active() const {
  std::vector<std::string> names;
  for (const RuleState& rs : rules_)
    if (rs.state == AlertState::kPending || rs.state == AlertState::kFiring)
      names.push_back(rs.rule.name);
  return names;
}

std::vector<Incident> AlertEngine::incidents() const {
  // Replay the transition history per rule: pending opens a candidate,
  // firing commits the episode, resolved closes it. A pending that never
  // fires is not an incident.
  std::map<std::string, Incident> open;
  std::vector<Incident> out;
  for (const Transition& t : transitions_) {
    const std::size_t index = rule_index_.at(t.rule);
    const AlertRule& rule = rules_[index].rule;
    switch (t.to) {
      case AlertState::kPending: {
        Incident incident;
        incident.rule = t.rule;
        incident.summary = rule.summary;
        incident.labels = rule.labels;
        incident.pending_at = t.at;
        incident.peak_value = t.value;
        open[t.rule] = std::move(incident);
        break;
      }
      case AlertState::kFiring: {
        auto it = open.find(t.rule);
        if (it == open.end()) {
          Incident incident;
          incident.rule = t.rule;
          incident.summary = rule.summary;
          incident.labels = rule.labels;
          incident.peak_value = t.value;
          it = open.emplace(t.rule, std::move(incident)).first;
        }
        it->second.firing_at = t.at;
        it->second.peak_value = std::max(it->second.peak_value, t.value);
        break;
      }
      case AlertState::kResolved: {
        const auto it = open.find(t.rule);
        if (it == open.end()) break;
        it->second.resolved_at = t.at;
        it->second.peak_value =
            std::max(it->second.peak_value, rules_[index].peak_value);
        out.push_back(std::move(it->second));
        open.erase(it);
        break;
      }
      case AlertState::kInactive:
        open.erase(t.rule);  // pending released before firing: no incident
        break;
    }
  }
  // Episodes still firing (or pending-to-fire) at the last evaluation.
  for (auto& [name, incident] : open) {
    if (incident.firing_at <= 0 && incident.pending_at >= 0 &&
        state(name) != AlertState::kFiring)
      continue;  // still pending: not an incident yet
    incident.peak_value = std::max(
        incident.peak_value, rules_[rule_index_.at(name)].peak_value);
    out.push_back(incident);
  }
  std::sort(out.begin(), out.end(), [](const Incident& a, const Incident& b) {
    return a.firing_at != b.firing_at ? a.firing_at < b.firing_at
                                      : a.rule < b.rule;
  });
  return out;
}

void AlertEngine::bind_alerts(MetricsRegistry& registry) {
  registry.add_collector([this](MetricsRegistry::Collect& out) {
    std::uint64_t firing = 0;
    std::uint64_t resolved = 0;
    for (const Transition& t : transitions_) {
      if (t.to == AlertState::kFiring) ++firing;
      if (t.to == AlertState::kResolved) ++resolved;
    }
    out.counter("ALERTS_firing_total", firing);
    out.counter("ALERTS_resolved_total", resolved);
    for (const RuleState& rs : rules_) {
      if (rs.state != AlertState::kPending && rs.state != AlertState::kFiring)
        continue;
      out.gauge("ALERTS{alertname=\"" + rs.rule.name + "\",alertstate=\"" +
                    alert_state_name(rs.state) + "\"}",
                1.0);
    }
  });
}

}  // namespace qkd::obs::health
