#include "src/obs/health/expect.hpp"

#include <sstream>

namespace qkd::obs::health {

namespace {

std::string at_s(qkd::SimTime t) {
  std::ostringstream out;
  out << "t=" << qkd::sim_to_seconds(t) << "s";
  return out.str();
}

}  // namespace

void AlertExpect::RuleExpect::fail(const std::string& message) {
  parent_.failures_.push_back("expect_alert(" + rule_ + "): " + message);
}

bool AlertExpect::RuleExpect::known(const char* check) {
  if (parent_.engine_.has_rule(rule_)) return true;
  fail(std::string(check) + ": no such rule in the engine");
  return false;
}

qkd::SimTime AlertExpect::RuleExpect::first_entered(AlertState state) const {
  for (const Transition& t : parent_.engine_.transitions())
    if (t.rule == rule_ && t.to == state) return t.at;
  return -1;
}

AlertExpect::RuleExpect& AlertExpect::RuleExpect::pending_by(
    qkd::SimTime deadline) {
  if (!known("pending_by")) return *this;
  const qkd::SimTime at = first_entered(AlertState::kPending);
  if (at < 0)
    fail("never entered pending");
  else if (at > deadline)
    fail("entered pending at " + at_s(at) + ", after deadline " +
         at_s(deadline));
  return *this;
}

AlertExpect::RuleExpect& AlertExpect::RuleExpect::firing_between(
    qkd::SimTime t0, qkd::SimTime t1) {
  if (!known("firing_between")) return *this;
  for (const Transition& t : parent_.engine_.transitions())
    if (t.rule == rule_ && t.to == AlertState::kFiring && t.at >= t0 &&
        t.at <= t1)
      return *this;
  const qkd::SimTime first = first_entered(AlertState::kFiring);
  if (first < 0)
    fail("never fired (expected firing in [" + at_s(t0) + ", " + at_s(t1) +
         "])");
  else
    fail("fired at " + at_s(first) + ", outside [" + at_s(t0) + ", " +
         at_s(t1) + "]");
  return *this;
}

AlertExpect::RuleExpect& AlertExpect::RuleExpect::fired() {
  if (!known("fired")) return *this;
  if (first_entered(AlertState::kFiring) < 0) fail("never fired");
  return *this;
}

AlertExpect::RuleExpect& AlertExpect::RuleExpect::resolved_by(
    qkd::SimTime deadline) {
  if (!known("resolved_by")) return *this;
  const qkd::SimTime at = first_entered(AlertState::kResolved);
  if (at < 0)
    fail("never resolved");
  else if (at > deadline)
    fail("resolved at " + at_s(at) + ", after deadline " + at_s(deadline));
  return *this;
}

AlertExpect::RuleExpect& AlertExpect::RuleExpect::never_fires() {
  if (!known("never_fires")) return *this;
  for (const Transition& t : parent_.engine_.transitions()) {
    if (t.rule != rule_) continue;
    fail("expected to stay inactive, but entered " +
         std::string(alert_state_name(t.to)) + " at " + at_s(t.at));
    return *this;
  }
  return *this;
}

AlertExpect::RuleExpect& AlertExpect::RuleExpect::full_lifecycle() {
  if (!known("full_lifecycle")) return *this;
  const qkd::SimTime pending = first_entered(AlertState::kPending);
  const qkd::SimTime firing = first_entered(AlertState::kFiring);
  const qkd::SimTime resolved = first_entered(AlertState::kResolved);
  if (pending < 0)
    fail("full_lifecycle: never entered pending");
  else if (firing < 0)
    fail("full_lifecycle: pending at " + at_s(pending) + " but never fired");
  else if (resolved < 0)
    fail("full_lifecycle: fired at " + at_s(firing) + " but never resolved");
  else if (!(pending <= firing && firing <= resolved))
    fail("full_lifecycle: out of order (pending " + at_s(pending) +
         ", firing " + at_s(firing) + ", resolved " + at_s(resolved) + ")");
  return *this;
}

AlertExpect::RuleExpect& AlertExpect::RuleExpect::state_now(AlertState state) {
  if (!known("state_now")) return *this;
  const AlertState actual = parent_.engine_.state(rule_);
  if (actual != state)
    fail(std::string("expected state ") + alert_state_name(state) +
         " after the last evaluation, got " + alert_state_name(actual));
  return *this;
}

std::string AlertExpect::report() const {
  if (failures_.empty()) return "alerts ok";
  std::ostringstream out;
  for (const std::string& failure : failures_) out << failure << "\n";
  return out.str();
}

}  // namespace qkd::obs::health
