// Golden assertions over a finished AlertEngine — the alert-flavored
// sibling of sim::TimelineExpect.
//
// The scenario corpus asserts alert shapes the same way it asserts
// timeline shapes: fluent checks that append human-readable failures
// instead of aborting, so one block reports every violated expectation of
// a run at once.
//
//   AlertExpect expect(engine);
//   expect.expect_alert("qber_spike:6")
//         .pending_by(22 * kMinute)
//         .firing_between(20 * kMinute, 30 * kMinute)
//         .resolved_by(45 * kMinute);
//   expect.expect_alert("qber_spike:3").never_fires();
//   QKD_EXPECT_ALERTS(expect);   // gtest: EXPECT_TRUE(ok()) << report()
#pragma once

#include <string>
#include <vector>

#include "src/obs/health/alert.hpp"

namespace qkd::obs::health {

class AlertExpect {
 public:
  /// The engine must have finished its evaluations; only its transition
  /// history and current states are read. Must outlive the AlertExpect.
  explicit AlertExpect(const AlertEngine& engine) : engine_(engine) {}

  /// Per-rule fluent handle; checks record failures on the parent.
  class RuleExpect {
   public:
    /// The rule entered pending at or before `deadline`.
    RuleExpect& pending_by(qkd::SimTime deadline);
    /// The rule started firing inside [t0, t1] (the incident began in the
    /// window — the ISSUE's expect_alert(name).firing_between(t0, t1)).
    RuleExpect& firing_between(qkd::SimTime t0, qkd::SimTime t1);
    /// The rule fired at some point in the run.
    RuleExpect& fired();
    /// The rule reached resolved at or before `deadline`.
    RuleExpect& resolved_by(qkd::SimTime deadline);
    /// The rule never left inactive (no pending, no firing).
    RuleExpect& never_fires();
    /// The full episode arc in order: pending -> firing -> resolved (the
    /// lifecycle the ISSUE's acceptance criterion names).
    RuleExpect& full_lifecycle();
    /// The rule's state after the last evaluation.
    RuleExpect& state_now(AlertState state);

   private:
    friend class AlertExpect;
    RuleExpect(AlertExpect& parent, std::string rule)
        : parent_(parent), rule_(std::move(rule)) {}
    /// First transition into `state` for this rule, or -1.
    qkd::SimTime first_entered(AlertState state) const;
    void fail(const std::string& message);
    /// Records an unknown-rule failure once and returns false.
    bool known(const char* check);

    AlertExpect& parent_;
    std::string rule_;
  };

  RuleExpect expect_alert(const std::string& rule) {
    return RuleExpect(*this, rule);
  }

  bool ok() const { return failures_.empty(); }
  /// Every violated expectation, one per line ("alerts ok" when none).
  std::string report() const;

 private:
  friend class RuleExpect;
  const AlertEngine& engine_;
  std::vector<std::string> failures_;
};

/// gtest glue: report every violated expectation of the block at once.
#define QKD_EXPECT_ALERTS(expect) \
  EXPECT_TRUE((expect).ok()) << (expect).report()

}  // namespace qkd::obs::health
