#include "src/obs/trace.hpp"

#include <chrono>

namespace qkd::obs {

namespace {
std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Tracer::Tracer(std::size_t cells) {
  if (cells == 0) cells = 1;
  cells_.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i)
    cells_.push_back(std::make_unique<Cell>());
}

void Tracer::set_sim_time_source(std::function<SimTime()> source) {
  sim_source_ = std::move(source);
}

SimTime Tracer::sim_now() const { return sim_source_ ? sim_source_() : 0; }

TraceContext Tracer::make_root() {
  if (!enabled()) return {};
  TraceContext context;
  context.trace_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return context;
}

SpanHandle Tracer::start_span(const std::string& name, TraceContext parent,
                              std::size_t cell) {
  if (!enabled()) return {};
  if (cell >= cells_.size()) cell = cells_.size() - 1;
  Span span;
  span.span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.trace_id = parent.valid() ? parent.trace_id : span.span_id;
  span.parent_span = parent.parent_span;
  span.name = name;
  span.sim_start = sim_now();
  span.wall_start_ns = wall_now_ns();
  span.cell = cell;

  SpanHandle handle;
  handle.cell = cell;
  handle.context = TraceContext{span.trace_id, span.span_id};

  Cell& bucket = *cells_[cell];
  std::lock_guard<std::mutex> lock(bucket.mu);
  handle.index = bucket.spans.size();
  bucket.spans.push_back(std::move(span));
  return handle;
}

void Tracer::end_span(const SpanHandle& handle) {
  if (!handle.valid()) return;
  Cell& bucket = *cells_[handle.cell];
  std::lock_guard<std::mutex> lock(bucket.mu);
  if (handle.index >= bucket.spans.size()) return;  // cleared underneath
  Span& span = bucket.spans[handle.index];
  // The handle addresses by position; a clear() since it was issued would
  // leave a different span there — the id check catches that staleness.
  if (span.span_id != handle.context.parent_span) return;
  if (span.sim_end != -1) return;  // already closed
  span.sim_end = sim_now();
  span.wall_end_ns = wall_now_ns();
}

void Tracer::add_attribute(const SpanHandle& handle, const std::string& key,
                           std::string value) {
  if (!handle.valid()) return;
  Cell& bucket = *cells_[handle.cell];
  std::lock_guard<std::mutex> lock(bucket.mu);
  if (handle.index >= bucket.spans.size()) return;
  Span& span = bucket.spans[handle.index];
  if (span.span_id != handle.context.parent_span) return;
  span.attributes.emplace_back(key, std::move(value));
}

void Tracer::set_parent(const SpanHandle& handle, TraceContext parent) {
  if (!handle.valid() || !parent.valid()) return;
  Cell& bucket = *cells_[handle.cell];
  std::lock_guard<std::mutex> lock(bucket.mu);
  if (handle.index >= bucket.spans.size()) return;
  Span& span = bucket.spans[handle.index];
  if (span.span_id != handle.context.parent_span) return;
  span.trace_id = parent.trace_id;
  span.parent_span = parent.parent_span;
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  for (const auto& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell->mu);
    out.insert(out.end(), cell->spans.begin(), cell->spans.end());
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::size_t count = 0;
  for (const auto& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell->mu);
    count += cell->spans.size();
  }
  return count;
}

void Tracer::clear() {
  for (const auto& cell : cells_) {
    std::lock_guard<std::mutex> lock(cell->mu);
    cell->spans.clear();
  }
}

}  // namespace qkd::obs
