// One metrics registry for the whole stack.
//
// Every layer used to keep its own ad-hoc Stats struct (pipeline stage
// tables, channel byte counters, KMS shard stats, mesh transport stats,
// worker-pool utilization); diagnosing a run meant reading eight of them.
// The registry gives them one namespace and one export path (a
// Prometheus-style text dump, plus structured snapshots for tests and the
// bench tooling) without taking over their storage: hot paths either
// write the registry's sharded instruments directly, or keep their
// existing structs and register a *collector* — a callback run at
// snapshot time that reports current values (the Prometheus collector
// pattern). Either way the existing accessors keep working.
//
// Instruments are sharded like the KMS: a family owns `cells` independent
// cache-line-padded atomic slots (one per shard/lane), written with
// relaxed operations — no cross-shard locks, no contention on the grant
// path — and aggregated only when read.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qkd::obs {

/// A monotonically increasing count, sharded across cells. Writers pass
/// their own cell index; value() sums all cells with relaxed loads (the
/// counters are statistically consistent, not a synchronization point).
class Counter {
 public:
  void add(std::uint64_t n = 1, std::size_t cell = 0) {
    slot(cell).fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;
  std::uint64_t cell_value(std::size_t cell) const {
    return slot(cell).load(std::memory_order_relaxed);
  }
  std::size_t cells() const { return cells_.size(); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::size_t cells);

  struct Slot {
    alignas(64) std::atomic<std::uint64_t> v{0};
  };
  std::atomic<std::uint64_t>& slot(std::size_t cell) {
    return cells_[cell < cells_.size() ? cell : cells_.size() - 1].v;
  }
  const std::atomic<std::uint64_t>& slot(std::size_t cell) const {
    return cells_[cell < cells_.size() ? cell : cells_.size() - 1].v;
  }
  std::vector<Slot> cells_;
};

/// A point-in-time signed value; per-cell set/add, summed on read.
class Gauge {
 public:
  void set(std::int64_t v, std::size_t cell = 0) {
    slot(cell).store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta, std::size_t cell = 0) {
    slot(cell).fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const;
  std::size_t cells() const { return cells_.size(); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::size_t cells);

  struct Slot {
    alignas(64) std::atomic<std::int64_t> v{0};
  };
  std::atomic<std::int64_t>& slot(std::size_t cell) {
    return cells_[cell < cells_.size() ? cell : cells_.size() - 1].v;
  }
  const std::atomic<std::int64_t>& slot(std::size_t cell) const {
    return cells_[cell < cells_.size() ? cell : cells_.size() - 1].v;
  }
  std::vector<Slot> cells_;
};

/// Fixed-bucket latency/size histogram: power-of-two buckets (value v
/// lands in bucket bit_width(v)), O(1) memory over million-sample runs,
/// sharded per cell like Counter. Quantiles report the bucket's upper
/// bound — conservative, same convention as the KMS latency histograms.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value, std::size_t cell = 0);
  std::uint64_t count() const;
  std::uint64_t sum() const;
  /// Conservative quantile (upper bucket bound), 0 when empty.
  double quantile(double q) const;
  /// Bucket counts summed across cells (export path).
  std::vector<std::uint64_t> bucket_counts() const;
  std::size_t cells() const { return cells_.size(); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::size_t cells);

  struct Slot {
    alignas(64) std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[kBuckets]{};
  };
  std::vector<std::unique_ptr<Slot>> cells_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One exported value at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counter/gauge value; histogram count
  double sum = 0.0;    // histograms only
  double p50 = 0.0;    // histograms only (conservative)
  double p99 = 0.0;    // histograms only (conservative)
};

class MetricsRegistry {
 public:
  /// `cells` is the default sharding degree of newly created instruments
  /// (pass the shard/lane count of whatever writes hottest).
  explicit MetricsRegistry(std::size_t cells = 1);

  /// Finds or creates the named instrument. The returned reference is
  /// stable for the registry's lifetime — resolve once at bind time, then
  /// write lock-free forever. Name collisions across kinds throw.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// The named histogram if one is registered, else nullptr (never
  /// creates). Readers — the alert engine's quantile conditions — use this
  /// to query arbitrary quantiles beyond the exported p50/p99.
  const Histogram* find_histogram(const std::string& name) const;

  /// Pull-model bridge for layers that keep their own Stats structs: the
  /// callback runs inside snapshot()/to_prometheus() and reports current
  /// values through the emit functions. Values it emits appear alongside
  /// the direct instruments (same name rules).
  class Collect {
   public:
    virtual ~Collect() = default;
    virtual void counter(const std::string& name, std::uint64_t value) = 0;
    virtual void gauge(const std::string& name, double value) = 0;
  };
  using Collector = std::function<void(Collect&)>;
  void add_collector(Collector collector);

  /// Every instrument plus every collector-reported value, sorted by
  /// name. Reads are relaxed; call anytime (the satellite TSan test reads
  /// while shard lanes write).
  std::vector<MetricSample> snapshot() const;

  /// Prometheus-style text exposition (one "# TYPE" line per family;
  /// histograms export _count/_sum plus conservative p50/p99 gauges).
  std::string to_prometheus() const;

  std::size_t default_cells() const { return default_cells_; }

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(const std::string& name, MetricKind kind);

  std::size_t default_cells_;
  mutable std::mutex mu_;  // registration + collector list; not the hot path
  std::map<std::string, Entry> entries_;
  std::vector<Collector> collectors_;
};

}  // namespace qkd::obs
