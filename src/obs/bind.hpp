// Registry bindings for the layers BELOW src/obs.
//
// Layers above obs (net, network, qkd, kms) register their own collectors
// via a bind_metrics member; src/common cannot link qkd_obs (obs links
// common), so its instruments are bridged from this side instead.
#pragma once

#include <string>

#include "src/common/worker_pool.hpp"
#include "src/obs/metrics.hpp"

namespace qkd::obs {

/// Exposes a WorkerPool's utilization tallies under `prefix`:
///   <prefix>_jobs_total, <prefix>_tasks_total, <prefix>_lanes,
///   <prefix>_lane_tasks_min / _max (the spread — equal when work balances).
/// The pool must outlive the registry's snapshots.
void bind_worker_pool(MetricsRegistry& registry,
                      const common::WorkerPool& pool, std::string prefix);

}  // namespace qkd::obs
