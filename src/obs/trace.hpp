// Request-scoped tracing on the simulation's own timeline.
//
// A Span is one timed operation: sim-time start/end (the timeline the
// whole stack runs on), wall-clock start/end (where host cycles actually
// went — Gilbert & Hamrick's point that computational load bounds key
// rate), a name, and key=value attributes. Spans form trees through
// explicit TraceContext propagation: whoever starts work passes its
// context down (function argument in-process, the version-2 wire-frame
// extension across a Transport), so one KMS get_key issued by a
// KmsWireClient is ONE trace from the client call through server
// admission, DRR selection, mesh hops and the grant.
//
// The Tracer is storage plus an id allocator. It is sharded the same way
// the KMS is: `cells` independent span buffers, one per shard/lane, so
// recording on the grant path never takes a cross-shard lock (each cell
// has its own mutex, touched only by its lane plus the parked-lane
// reader). Everything checks enabled() first — a null or disabled tracer
// costs one predictable branch, which is what lets the instrumentation
// live permanently inside the hot paths (E21 pins the disabled overhead).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/sim_clock.hpp"

namespace qkd::obs {

/// What propagates: the trace a request belongs to and the span to parent
/// new work under. trace_id == 0 means "no trace" everywhere (the wire
/// codec uses that to decide between a version-1 and a version-2 frame).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

/// One finished (or still-open, end == -1) operation.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  // 0: a root
  std::string name;
  SimTime sim_start = 0;
  SimTime sim_end = -1;
  std::uint64_t wall_start_ns = 0;  // steady-clock, process epoch
  std::uint64_t wall_end_ns = 0;
  std::size_t cell = 0;  // which shard/lane recorded it
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Names an open span inside one tracer cell. Invalid handles (from a
/// disabled tracer) are inert: every operation on them is a no-op.
struct SpanHandle {
  std::size_t cell = 0;
  std::size_t index = 0;
  TraceContext context;  // this span's own (trace_id, span_id)

  bool valid() const { return context.valid(); }
};

class Tracer {
 public:
  /// `cells` is the sharding degree (KMS shard count, worker-lane count);
  /// out-of-range cell arguments clamp to the last cell.
  explicit Tracer(std::size_t cells = 1);

  /// Tracing is off until enabled; a disabled tracer records nothing and
  /// hands out invalid handles. Flipping is thread-safe.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Where spans read sim time from (the scheduler's now(), usually).
  /// Without a source, sim timestamps record 0 and only wall time is
  /// meaningful. The source must be safe to call from recording threads.
  void set_sim_time_source(std::function<SimTime()> source);

  /// Mints a fresh trace id for a root request (the client side of a
  /// conversation). Invalid when disabled.
  TraceContext make_root();

  /// Opens a span. A default (invalid) `parent` starts a new trace; a
  /// valid one continues it. Returns an invalid handle when disabled.
  SpanHandle start_span(const std::string& name, TraceContext parent = {},
                        std::size_t cell = 0);
  /// Closes the span at the current sim/wall instant.
  void end_span(const SpanHandle& handle);
  /// Attaches a key=value attribute to an open or finished span.
  void add_attribute(const SpanHandle& handle, const std::string& key,
                     std::string value);
  /// Re-parents an open span (a service round adopts the context of the
  /// first traced request it selected — selection happens after start).
  void set_parent(const SpanHandle& handle, TraceContext parent);

  /// Copies out every recorded span, ordered by (cell, record order).
  /// Takes each cell's mutex; call with recording lanes quiesced for a
  /// consistent snapshot.
  std::vector<Span> spans() const;
  std::size_t span_count() const;
  void clear();

  std::size_t cells() const { return cells_.size(); }

  /// The continuation context for work under `handle`: the span itself
  /// when it is real, otherwise `fallback` — so an untraced middle layer
  /// passes its caller's context through instead of severing the chain.
  static TraceContext child_context(const SpanHandle& handle,
                                    TraceContext fallback = {}) {
    return handle.valid() ? handle.context : fallback;
  }

 private:
  struct Cell {
    mutable std::mutex mu;
    std::vector<Span> spans;
  };

  SimTime sim_now() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};  // spans and traces share the pool
  std::function<SimTime()> sim_source_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// RAII span: opens on construction (when `tracer` is non-null and
/// enabled), closes on destruction. The common instrumentation shape:
///
///   obs::ScopedSpan span(tracer_, "kms.service_round", ctx, shard);
///   ... work ...
///   span.attr("requests", std::to_string(round.size()));
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, const std::string& name, TraceContext parent = {},
             std::size_t cell = 0)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) handle_ = tracer_->start_span(name, parent, cell);
    fallback_ = parent;
  }
  ~ScopedSpan() { finish(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Ends the span early (idempotent).
  void finish() {
    if (tracer_ != nullptr) tracer_->end_span(handle_);
    tracer_ = nullptr;
  }

  void attr(const std::string& key, std::string value) {
    if (tracer_ != nullptr)
      tracer_->add_attribute(handle_, key, std::move(value));
  }
  void reparent(TraceContext parent) {
    if (tracer_ != nullptr) {
      tracer_->set_parent(handle_, parent);
      // The handle's own context follows the span into the adopted trace.
      if (handle_.valid() && parent.valid())
        handle_.context.trace_id = parent.trace_id;
    }
    fallback_ = parent;
  }

  /// Context for child work: this span if recording, else the parent that
  /// was passed in (the chain survives a disabled tracer).
  TraceContext context() const {
    return Tracer::child_context(handle_, fallback_);
  }
  bool recording() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  SpanHandle handle_;
  TraceContext fallback_;
};

}  // namespace qkd::obs
