#include "src/obs/export.hpp"

#include <sstream>

namespace qkd::obs {
namespace {

/// Minimal JSON string escaping (names and attribute values are ASCII
/// identifiers in practice, but a stray quote must not corrupt the file).
void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
              << "0123456789abcdef"[c & 0xF];
        else
          out << c;
    }
  }
  out << '"';
}

double sim_us(SimTime t) { return static_cast<double>(t) / 1e3; }

}  // namespace

std::string chrome_trace_json(const std::vector<Span>& spans) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out << ",";
    first = false;
    const SimTime sim_end =
        span.sim_end >= span.sim_start ? span.sim_end : span.sim_start;
    const std::uint64_t wall_ns =
        span.wall_end_ns >= span.wall_start_ns
            ? span.wall_end_ns - span.wall_start_ns
            : 0;
    out << "{\"name\":";
    append_json_string(out, span.name);
    out << ",\"cat\":\"qkd\",\"ph\":\"X\",\"ts\":" << sim_us(span.sim_start)
        << ",\"dur\":" << sim_us(sim_end - span.sim_start)
        << ",\"pid\":1,\"tid\":" << (span.cell + 1) << ",\"args\":{"
        << "\"trace_id\":" << span.trace_id
        << ",\"span_id\":" << span.span_id
        << ",\"parent_span\":" << span.parent_span
        << ",\"wall_ns\":" << wall_ns;
    for (const auto& [key, value] : span.attributes) {
      out << ",";
      append_json_string(out, key);
      out << ":";
      append_json_string(out, value);
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

std::string chrome_trace_json(const Tracer& tracer) {
  return chrome_trace_json(tracer.spans());
}

}  // namespace qkd::obs
