#include "src/obs/bind.hpp"

#include <algorithm>
#include <utility>

namespace qkd::obs {

void bind_worker_pool(MetricsRegistry& registry,
                      const common::WorkerPool& pool, std::string prefix) {
  registry.add_collector([&pool, prefix = std::move(prefix)](
                             MetricsRegistry::Collect& out) {
    out.counter(prefix + "_jobs_total", pool.jobs_dispatched());
    out.counter(prefix + "_tasks_total", pool.total_tasks());
    out.gauge(prefix + "_lanes", static_cast<double>(pool.lanes()));
    std::uint64_t lo = pool.lane_tasks(0);
    std::uint64_t hi = lo;
    for (std::size_t lane = 1; lane < pool.lanes(); ++lane) {
      const std::uint64_t tasks = pool.lane_tasks(lane);
      lo = std::min(lo, tasks);
      hi = std::max(hi, tasks);
    }
    out.gauge(prefix + "_lane_tasks_min", static_cast<double>(lo));
    out.gauge(prefix + "_lane_tasks_max", static_cast<double>(hi));
  });
}

}  // namespace qkd::obs
