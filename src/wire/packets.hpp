// Typed packets for the distillation dialogue — one struct per step of the
// Fig. 9 pipeline conversation, each with a strict binary codec. These are
// the messages that actually cross the public channel: the in-memory
// tier-1 path and the two-process socket path encode and decode the SAME
// bytes, so wire accounting is a measurement, not bookkeeping.
//
// Codec conventions (shared with src/wire/etsi.hpp):
//  * integers big-endian via put_u*/ByteReader; counts as LEB128 varints;
//  * dense bit strings as varint bit-count + packed bytes (LSB first);
//  * sparse bit strings (a Qframe's detected-slot mask at ~1% density) as
//    varint bit-count + varint set-count + delta-encoded set positions;
//  * decode is strict: short payloads, impossible counts, nonzero padding
//    bits and trailing bytes all return WireError::kMalformedPayload.
#pragma once

#include <cstdint>
#include <variant>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"
#include "src/wire/frame.hpp"

namespace qkd::wire {

// ---- Shared field codecs ---------------------------------------------------

/// varint bit-count + packed bytes, LSB-first within each byte; padding
/// bits in the last byte must decode as zero.
void put_bits_dense(Bytes& out, const qkd::BitVector& bits);
qkd::BitVector get_bits_dense(ByteReader& reader);  // throws on malformed

/// varint bit-count + varint popcount + varint position deltas (first
/// absolute, then gaps-1). Compact for sparse masks like detected slots.
void put_bits_sparse(Bytes& out, const qkd::BitVector& bits);
qkd::BitVector get_bits_sparse(ByteReader& reader);  // throws on malformed

// ---- Packets ---------------------------------------------------------------

/// Simulation bootstrap (two-process runs only): the side simulating the
/// optics feeds the peer its half of the Qframe. This models the QUANTUM
/// channel, not the classical wire, and is excluded from control-traffic
/// accounting.
struct QframeFeed {
  static constexpr PacketType kType = PacketType::kQframeFeed;
  std::uint64_t frame_id = 0;
  qkd::BitVector detected;  // per slot
  qkd::BitVector bases;     // per slot
  qkd::BitVector bits;      // per slot (meaningful iff detected)

  Bytes encode() const;
  static Result<QframeFeed> decode(const Bytes& payload);
  bool operator==(const QframeFeed&) const = default;
};

/// Bob -> Alice: slots that produced a usable click, plus Bob's basis for
/// each detected slot (detection order).
struct SiftAnnounce {
  static constexpr PacketType kType = PacketType::kSiftAnnounce;
  std::uint64_t frame_id = 0;
  qkd::BitVector detected;   // per slot (sparse on the wire)
  qkd::BitVector bob_bases;  // per detection

  Bytes encode() const;
  static Result<SiftAnnounce> decode(const Bytes& payload);
  bool operator==(const SiftAnnounce&) const = default;
};

/// Alice -> Bob: which detections survive the basis comparison.
struct SiftDecision {
  static constexpr PacketType kType = PacketType::kSiftDecision;
  std::uint64_t frame_id = 0;
  qkd::BitVector keep;  // per detection

  Bytes encode() const;
  static Result<SiftDecision> decode(const Bytes& payload);
  bool operator==(const SiftDecision&) const = default;
};

/// The sender's values at the agreed sample positions (positions derive
/// from the shared DRBG and are never transmitted). Each side reveals its
/// own bits; both then compute the identical sampled error rate.
struct SampleReveal {
  static constexpr PacketType kType = PacketType::kSampleReveal;
  std::uint64_t frame_id = 0;
  qkd::BitVector bits;  // per sampled position

  Bytes encode() const;
  static Result<SampleReveal> decode(const Bytes& payload);
  bool operator==(const SampleReveal&) const = default;
};

/// Bob -> Alice: one parity question (the compact subset description of
/// src/qkd/ec.hpp — an LFSR or permutation seed plus a range, never a bit
/// list).
struct ParityRequest {
  static constexpr PacketType kType = PacketType::kParityRequest;
  std::uint8_t kind = 0;  // ParityQuery::Kind
  std::uint32_t seed = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  Bytes encode() const;
  static Result<ParityRequest> decode(const Bytes& payload);
  bool operator==(const ParityRequest&) const = default;
};

/// Alice -> Bob: the answer to the most recent ParityRequest.
struct ParityResponse {
  static constexpr PacketType kType = PacketType::kParityResponse;
  bool parity = false;

  Bytes encode() const;
  static Result<ParityResponse> decode(const Bytes& payload);
  bool operator==(const ParityResponse&) const = default;
};

/// Bob -> Alice: error correction finished; how it went. Alice needs the
/// correction count for her entropy estimate (her oracle already knows the
/// disclosure count).
struct EcSummary {
  static constexpr PacketType kType = PacketType::kEcSummary;
  std::uint32_t corrections = 0;
  bool converged = false;

  Bytes encode() const;
  static Result<EcSummary> decode(const Bytes& payload);
  bool operator==(const EcSummary&) const = default;
};

/// Hash of the corrected string (both directions exchange one; IKE "has no
/// mechanisms for noticing" key disagreement, so the QKD stack must).
struct VerifyHash {
  static constexpr PacketType kType = PacketType::kVerifyHash;
  std::uint64_t frame_id = 0;
  Bytes digest;  // SHA-1, 20 bytes

  Bytes encode() const;
  static Result<VerifyHash> decode(const Bytes& payload);
  bool operator==(const VerifyHash&) const = default;
};

/// Alice -> Bob, per PA chunk: "the number of bits m of the shortened
/// result, the (sparse) primitive polynomial of the Galois field, a
/// multiplier (n bits long), and an m-bit polynomial to add" (Sec. 5).
struct PaParamsPacket {
  static constexpr PacketType kType = PacketType::kPaParams;
  std::uint32_t n = 0;
  std::uint32_t m = 0;
  std::vector<std::uint32_t> modulus_exponents;  // sparse poly, highest first
  qkd::BitVector multiplier;                     // n bits
  qkd::BitVector addend;                         // m bits

  Bytes encode() const;
  static Result<PaParamsPacket> decode(const Bytes& payload);
  bool operator==(const PaParamsPacket&) const = default;
};

/// Either side walks away from the batch; the peer must discard its half.
struct AbortPacket {
  static constexpr PacketType kType = PacketType::kAbort;
  std::uint8_t reason = 0;  // proto::AbortReason

  Bytes encode() const;
  static Result<AbortPacket> decode(const Bytes& payload);
  bool operator==(const AbortPacket&) const = default;
};

/// Digest of the batch's distilled key — the end-to-end "byte-identical on
/// both sides" check of the two-process integration runs.
struct KeyDigest {
  static constexpr PacketType kType = PacketType::kKeyDigest;
  std::uint64_t frame_id = 0;
  std::uint64_t key_bits = 0;
  Bytes digest;  // SHA-1, 20 bytes

  Bytes encode() const;
  static Result<KeyDigest> decode(const Bytes& payload);
  bool operator==(const KeyDigest&) const = default;
};

// ---- Whole-packet codec ----------------------------------------------------

using DistillationPacket =
    std::variant<QframeFeed, SiftAnnounce, SiftDecision, SampleReveal,
                 ParityRequest, ParityResponse, EcSummary, VerifyHash,
                 PaParamsPacket, AbortPacket, KeyDigest>;

/// Encodes payload + frame header in one step.
template <typename Packet>
Bytes to_frame(const Packet& packet) {
  return encode_frame(Packet::kType, packet.encode());
}

/// Decodes a frame's payload into the typed packet its header names.
/// kMalformedPayload for non-dialogue frame types (KMS frames go through
/// src/wire/etsi.hpp).
Result<DistillationPacket> decode_packet(const Frame& frame);

/// Convenience: full strict path, bytes -> frame -> typed packet.
Result<DistillationPacket> decode_packet_bytes(
    std::span<const std::uint8_t> buffer);

}  // namespace qkd::wire
