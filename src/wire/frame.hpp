// The message-framing layer under every protocol conversation (Fig. 1's
// public channel made concrete): everything Alice, Bob and the KMS say to
// each other travels as a length-prefixed, versioned, typed frame.
//
//   magic(u16) | version(u8) | type(u8) | payload_len(u32) | payload
//
// Version 2 frames insert a 16-byte trace-context extension between the
// base header and the payload (trace_id u64 | parent_span u64), so a
// request traced on one endpoint resumes the SAME trace on the other —
// the wire-crossing half of src/obs. Version 1 frames are what they
// always were, bit for bit; encoders only emit version 2 when a caller
// hands them a valid TraceContext, and decoders accept both strictly.
//
// The 8-byte header is the whole story: `type` selects a packet codec
// (src/wire/packets.hpp for the distillation dialogue, src/wire/etsi.hpp
// for the KMS request/response API), `payload_len` lets a byte-stream
// transport (TCP) reassemble frames without understanding their contents,
// and decoding is STRICT — bad magic, unknown version or type, a length
// that disagrees with the buffer, trailing bytes, or an oversized claim all
// come back as a typed WireError, never as UB or a silent best-effort
// parse. Eve owns this channel (she may forge, truncate, and splice), so
// the decoder treats every input as hers.
#pragma once

#include <cstdint>
#include <span>

#include "src/common/bytes.hpp"
#include "src/obs/trace.hpp"

namespace qkd::wire {

// ---- Packet vocabulary -----------------------------------------------------

/// Every message the stack puts on a wire. 0x0x: the distillation dialogue
/// (the per-step messages of the Fig. 9 pipeline — the packet-type enum of
/// BBN's engineering tradition); 0x2x: the ETSI-014-flavored KMS API.
enum class PacketType : std::uint8_t {
  // Distillation dialogue (src/wire/packets.hpp).
  kQframeFeed = 0x01,     // sim bootstrap: Bob's detections for the batch
  kSiftAnnounce = 0x02,   // Bob -> Alice: detected slots + bases
  kSiftDecision = 0x03,   // Alice -> Bob: which detections survive
  kSampleReveal = 0x04,   // either direction: sacrificed sample bits
  kParityRequest = 0x05,  // Bob -> Alice: one parity query
  kParityResponse = 0x06, // Alice -> Bob: the parity bit
  kEcSummary = 0x07,      // Bob -> Alice: corrections + convergence
  kVerifyHash = 0x08,     // either direction: hash of the corrected string
  kPaParams = 0x09,       // Alice -> Bob: multiplier / poly / addend / m
  kAbort = 0x0A,          // either direction: batch rejected, with reason
  kKeyDigest = 0x0B,      // either direction: digest of the distilled key
  // KMS API (src/wire/etsi.hpp).
  kKmsRegister = 0x20,
  kKmsRegisterReply = 0x21,
  kKmsGetKey = 0x22,
  kKmsGrant = 0x23,
  kKmsGetKeyWithId = 0x24,
  kKmsKeyWithIdReply = 0x25,
  kKmsStatus = 0x26,
  kKmsStatusReply = 0x27,
  kKmsReject = 0x28,
  kKmsBye = 0x29,
  // Relay transport (src/network/key_transport.cpp): the per-hop header of
  // a trusted-relay frame. Its encoded size is what the mesh charges each
  // hop pad for (MeshSimulation::kFrameOverheadBits is measured from it).
  kRelayHeader = 0x30,
};

/// True iff `raw` names a PacketType the codec knows.
bool packet_type_known(std::uint8_t raw);

const char* packet_type_name(PacketType type);

// ---- Errors ----------------------------------------------------------------

/// Typed decode failures. Strict decoding: anything not bit-exactly a valid
/// frame/payload maps to one of these; decoders never throw across the wire
/// boundary and never return partial values.
enum class WireError : std::uint8_t {
  kNone = 0,
  kShortFrame,        // buffer ends before the header or declared payload
  kBadMagic,          // first two bytes are not kMagic
  kBadVersion,        // version byte != kVersion
  kUnknownType,       // type byte outside the PacketType vocabulary
  kOversizedFrame,    // declared payload length above kMaxPayloadBytes
  kTrailingBytes,     // buffer continues past the declared frame end
  kMalformedPayload,  // frame ok, but the typed payload did not parse
  kClosed,            // transport peer closed mid-frame
};

const char* wire_error_name(WireError error);

/// A decode outcome: `value` is meaningful iff ok().
template <typename T>
struct Result {
  T value{};
  WireError error = WireError::kNone;

  bool ok() const { return error == WireError::kNone; }

  static Result failure(WireError e) { return Result{{}, e}; }
  static Result success(T v) { return Result{std::move(v), WireError::kNone}; }
};

// ---- Frame codec -----------------------------------------------------------

inline constexpr std::uint16_t kMagic = 0x514B;  // "QK"
inline constexpr std::uint8_t kWireVersion = 1;
/// Version-2 frames carry the 16-byte trace-context extension after the
/// base header. Emitted only when the sender has a live trace; a peer
/// that has never heard of tracing still speaks version 1 unchanged.
inline constexpr std::uint8_t kWireVersionTraced = 2;
inline constexpr std::size_t kHeaderBytes = 8;
/// trace_id(u64) | parent_span(u64), present iff version == 2.
inline constexpr std::size_t kTraceExtensionBytes = 16;
/// Upper bound on a payload a peer may declare; bounds memory a hostile
/// header can make us reserve (a Qframe's sift announce at 2^20 slots is
/// ~130 KiB, so 16 MiB is generous for every legitimate packet).
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

/// One decoded frame: the typed payload bytes, not yet parsed. `trace`
/// is invalid (trace_id == 0) for version-1 frames.
struct Frame {
  PacketType type = PacketType::kAbort;
  Bytes payload;
  obs::TraceContext trace;
};

/// Encodes header + payload. The only way bytes enter a Transport.
Bytes encode_frame(PacketType type, const Bytes& payload);

/// Encodes with trace propagation: a valid `trace` produces a version-2
/// frame carrying it; an invalid one degrades to the plain version-1
/// encoding (byte-identical to encode_frame above).
Bytes encode_frame(PacketType type, const Bytes& payload,
                   obs::TraceContext trace);

/// Strictly decodes ONE frame occupying the whole buffer (trailing bytes
/// are an error — the transports deliver exact frames).
Result<Frame> decode_frame(std::span<const std::uint8_t> buffer);

/// Stream-assembly helper: given a buffer prefix, how many total bytes the
/// frame at its head occupies. Needs at least kHeaderBytes; validates
/// magic/version/type/size so a corrupt header fails before any blocking
/// read for its payload.
Result<std::size_t> frame_total_length(std::span<const std::uint8_t> prefix);

// ---- Relay-hop overhead ----------------------------------------------------

/// Wegman-Carter tag bytes on a kRelayHeader hop frame (32-bit tags, per
/// the engine's auth config).
inline constexpr std::size_t kRelayTagBytes = 4;

/// Measured per-hop overhead of a trusted-relay frame: the wire header
/// plus the hop's authentication tag, in bits. This is the quantity the
/// mesh charges every hop pad for (MeshSimulation::kFrameOverheadBits) —
/// derived from the frame layout rather than asserted as a constant.
constexpr std::size_t relay_frame_overhead_bits() {
  return 8 * (kHeaderBytes + kRelayTagBytes);
}

}  // namespace qkd::wire
