// The Transport seam: where encoded frames meet a byte-moving substrate.
//
// Exactly two implementations exist, and every protocol conversation works
// over either unchanged (same codec, same bytes — the transport is the
// only swapped part):
//
//  * net::ChannelTransport (src/net/channel_transport.hpp): one side of
//    the in-memory PublicChannel. Tier-1 runs fully simulated over it, and
//    the scenario engine's classical-channel impairments (latency, loss,
//    reordering) attack the framed byte stream it carries.
//  * TcpTransport (here): a blocking localhost/LAN socket, reassembling
//    frames from the stream by their length prefix. The opt-in
//    integration suite runs Alice/Bob and KMS client/server as separate
//    OS processes over it.
//
// send_frame/recv_frame move WHOLE frames (as produced by encode_frame);
// a transport never splits or merges what the codec made, and the TCP
// receive path strictly validates the header before trusting its length.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/common/bytes.hpp"
#include "src/wire/frame.hpp"

namespace qkd::wire {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships one encoded frame. False when the peer is gone.
  virtual bool send_frame(const Bytes& frame) = 0;

  /// Next complete frame, still encoded (caller runs decode_frame).
  /// nullopt when none is available: immediately for a drained in-memory
  /// channel, after EOF/error for a socket (last_error() says which).
  virtual std::optional<Bytes> recv_frame() = 0;

  /// Why the last recv_frame returned nullopt (kNone: merely drained).
  virtual WireError last_error() const { return WireError::kNone; }
};

// ---- Blocking TCP ----------------------------------------------------------

/// A connected, blocking TCP endpoint carrying frames. Construction is via
/// TcpListener::accept_transport or tcp_connect. Closes its fd on
/// destruction. Not thread-safe; one conversation per transport.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  bool send_frame(const Bytes& frame) override;

  /// Blocks until one whole frame arrives (header first — validated
  /// before its payload is read), the peer closes (kClosed), the header
  /// fails validation (typed error), or the receive timeout fires.
  std::optional<Bytes> recv_frame() override;

  WireError last_error() const override { return last_error_; }

  /// Receive timeout; a hung peer then surfaces as kClosed instead of
  /// wedging the process (the integration suite's anti-hang guard).
  void set_recv_timeout_ms(int timeout_ms);

  bool is_open() const { return fd_ >= 0; }

 private:
  bool read_exact(std::uint8_t* out, std::size_t n);
  void close_fd();

  int fd_ = -1;
  WireError last_error_ = WireError::kNone;
};

/// Listening socket on 127.0.0.1. Port 0 binds an ephemeral port (read it
/// back with port() — the two-process tests hand it to the child).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t port() const { return port_; }

  /// Blocks for one inbound connection; nullptr on error.
  std::unique_ptr<TcpTransport> accept_transport();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port` (retrying briefly while the server is
/// still binding); nullptr when the connection cannot be established.
std::unique_ptr<TcpTransport> tcp_connect(std::uint16_t port,
                                          int retry_ms = 2000);

}  // namespace qkd::wire
