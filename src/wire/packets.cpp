#include "src/wire/packets.hpp"

#include <stdexcept>

namespace qkd::wire {
namespace {

/// Guard against hostile counts before any allocation: a decoded length
/// may not imply more memory than the payload could possibly describe.
constexpr std::uint64_t kMaxDecodedBits = 8ull * kMaxPayloadBytes;

void check_bit_count(std::uint64_t bits) {
  if (bits > kMaxDecodedBits)
    throw std::out_of_range("wire: bit count exceeds frame bound");
}

/// Runs a payload parser with strict trailing-byte and exception mapping.
template <typename Packet, typename Parse>
Result<Packet> parse_payload(const Bytes& payload, const Parse& parse) {
  try {
    ByteReader reader(payload);
    Packet packet = parse(reader);
    if (!reader.done())
      return Result<Packet>::failure(WireError::kTrailingBytes);
    return Result<Packet>::success(std::move(packet));
  } catch (const std::exception&) {
    return Result<Packet>::failure(WireError::kMalformedPayload);
  }
}

}  // namespace

void put_bits_dense(Bytes& out, const qkd::BitVector& bits) {
  put_varint(out, bits.size());
  const auto packed = bits.to_bytes();
  out.insert(out.end(), packed.begin(), packed.end());
}

qkd::BitVector get_bits_dense(ByteReader& reader) {
  const std::uint64_t n = reader.varint();
  check_bit_count(n);
  const std::size_t byte_count = (static_cast<std::size_t>(n) + 7) / 8;
  const Bytes packed = reader.bytes(byte_count);
  qkd::BitVector bits = qkd::BitVector::from_bytes(packed);
  // Strictness: padding bits beyond n must be zero, or two distinct wire
  // encodings would decode to the same value.
  for (std::size_t i = n; i < bits.size(); ++i)
    if (bits.get(i)) throw std::invalid_argument("wire: nonzero padding bit");
  bits.resize(static_cast<std::size_t>(n));
  return bits;
}

void put_bits_sparse(Bytes& out, const qkd::BitVector& bits) {
  put_varint(out, bits.size());
  put_varint(out, bits.popcount());
  std::uint64_t previous = 0;
  bool first = true;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (!bits.get(i)) continue;
    put_varint(out, first ? i : i - previous - 1);
    previous = i;
    first = false;
  }
}

qkd::BitVector get_bits_sparse(ByteReader& reader) {
  const std::uint64_t n = reader.varint();
  check_bit_count(n);
  const std::uint64_t set_count = reader.varint();
  if (set_count > n) throw std::invalid_argument("wire: popcount > size");
  qkd::BitVector bits(static_cast<std::size_t>(n));
  std::uint64_t position = 0;
  for (std::uint64_t i = 0; i < set_count; ++i) {
    const std::uint64_t delta = reader.varint();
    position = (i == 0) ? delta : position + delta + 1;
    if (position >= n)
      throw std::invalid_argument("wire: set position out of range");
    bits.set(static_cast<std::size_t>(position), true);
  }
  return bits;
}

// ---- QframeFeed ------------------------------------------------------------

Bytes QframeFeed::encode() const {
  Bytes out;
  put_varint(out, frame_id);
  put_bits_sparse(out, detected);
  put_bits_dense(out, bases);
  put_bits_dense(out, bits);
  return out;
}

Result<QframeFeed> QframeFeed::decode(const Bytes& payload) {
  return parse_payload<QframeFeed>(payload, [](ByteReader& reader) {
    QframeFeed packet;
    packet.frame_id = reader.varint();
    packet.detected = get_bits_sparse(reader);
    packet.bases = get_bits_dense(reader);
    packet.bits = get_bits_dense(reader);
    if (packet.bases.size() != packet.detected.size() ||
        packet.bits.size() != packet.detected.size())
      throw std::invalid_argument("QframeFeed: field sizes disagree");
    return packet;
  });
}

// ---- SiftAnnounce ----------------------------------------------------------

Bytes SiftAnnounce::encode() const {
  Bytes out;
  put_varint(out, frame_id);
  put_bits_sparse(out, detected);
  put_bits_dense(out, bob_bases);
  return out;
}

Result<SiftAnnounce> SiftAnnounce::decode(const Bytes& payload) {
  return parse_payload<SiftAnnounce>(payload, [](ByteReader& reader) {
    SiftAnnounce packet;
    packet.frame_id = reader.varint();
    packet.detected = get_bits_sparse(reader);
    packet.bob_bases = get_bits_dense(reader);
    if (packet.bob_bases.size() != packet.detected.popcount())
      throw std::invalid_argument("SiftAnnounce: one basis per detection");
    return packet;
  });
}

// ---- SiftDecision ----------------------------------------------------------

Bytes SiftDecision::encode() const {
  Bytes out;
  put_varint(out, frame_id);
  put_bits_dense(out, keep);
  return out;
}

Result<SiftDecision> SiftDecision::decode(const Bytes& payload) {
  return parse_payload<SiftDecision>(payload, [](ByteReader& reader) {
    SiftDecision packet;
    packet.frame_id = reader.varint();
    packet.keep = get_bits_dense(reader);
    return packet;
  });
}

// ---- SampleReveal ----------------------------------------------------------

Bytes SampleReveal::encode() const {
  Bytes out;
  put_varint(out, frame_id);
  put_bits_dense(out, bits);
  return out;
}

Result<SampleReveal> SampleReveal::decode(const Bytes& payload) {
  return parse_payload<SampleReveal>(payload, [](ByteReader& reader) {
    SampleReveal packet;
    packet.frame_id = reader.varint();
    packet.bits = get_bits_dense(reader);
    return packet;
  });
}

// ---- ParityRequest / ParityResponse ---------------------------------------

Bytes ParityRequest::encode() const {
  Bytes out;
  put_u8(out, kind);
  put_u32(out, seed);
  put_u32(out, begin);
  put_u32(out, end);
  return out;
}

Result<ParityRequest> ParityRequest::decode(const Bytes& payload) {
  return parse_payload<ParityRequest>(payload, [](ByteReader& reader) {
    ParityRequest packet;
    packet.kind = reader.u8();
    if (packet.kind > 1)
      throw std::invalid_argument("ParityRequest: unknown subset kind");
    packet.seed = reader.u32();
    packet.begin = reader.u32();
    packet.end = reader.u32();
    if (packet.begin > packet.end)
      throw std::invalid_argument("ParityRequest: inverted range");
    return packet;
  });
}

Bytes ParityResponse::encode() const {
  Bytes out;
  put_u8(out, parity ? 1 : 0);
  return out;
}

Result<ParityResponse> ParityResponse::decode(const Bytes& payload) {
  return parse_payload<ParityResponse>(payload, [](ByteReader& reader) {
    ParityResponse packet;
    const std::uint8_t raw = reader.u8();
    if (raw > 1) throw std::invalid_argument("ParityResponse: non-boolean");
    packet.parity = raw != 0;
    return packet;
  });
}

// ---- EcSummary -------------------------------------------------------------

Bytes EcSummary::encode() const {
  Bytes out;
  put_u32(out, corrections);
  put_u8(out, converged ? 1 : 0);
  return out;
}

Result<EcSummary> EcSummary::decode(const Bytes& payload) {
  return parse_payload<EcSummary>(payload, [](ByteReader& reader) {
    EcSummary packet;
    packet.corrections = reader.u32();
    const std::uint8_t raw = reader.u8();
    if (raw > 1) throw std::invalid_argument("EcSummary: non-boolean");
    packet.converged = raw != 0;
    return packet;
  });
}

// ---- VerifyHash ------------------------------------------------------------

Bytes VerifyHash::encode() const {
  Bytes out;
  put_varint(out, frame_id);
  put_bytes(out, digest);
  return out;
}

Result<VerifyHash> VerifyHash::decode(const Bytes& payload) {
  return parse_payload<VerifyHash>(payload, [](ByteReader& reader) {
    VerifyHash packet;
    packet.frame_id = reader.varint();
    packet.digest = reader.bytes(20);
    return packet;
  });
}

// ---- PaParamsPacket --------------------------------------------------------

Bytes PaParamsPacket::encode() const {
  Bytes out;
  put_u32(out, n);
  put_u32(out, m);
  put_varint(out, modulus_exponents.size());
  for (std::uint32_t e : modulus_exponents) put_varint(out, e);
  put_bits_dense(out, multiplier);
  put_bits_dense(out, addend);
  return out;
}

Result<PaParamsPacket> PaParamsPacket::decode(const Bytes& payload) {
  return parse_payload<PaParamsPacket>(payload, [](ByteReader& reader) {
    PaParamsPacket packet;
    packet.n = reader.u32();
    packet.m = reader.u32();
    if (packet.m > packet.n)
      throw std::invalid_argument("PaParams: m > n");
    const std::uint64_t terms = reader.varint();
    if (terms > 64) throw std::invalid_argument("PaParams: dense modulus");
    packet.modulus_exponents.reserve(static_cast<std::size_t>(terms));
    for (std::uint64_t i = 0; i < terms; ++i) {
      const std::uint64_t e = reader.varint();
      if (e > packet.n) throw std::invalid_argument("PaParams: exponent > n");
      packet.modulus_exponents.push_back(static_cast<std::uint32_t>(e));
    }
    packet.multiplier = get_bits_dense(reader);
    packet.addend = get_bits_dense(reader);
    if (packet.multiplier.size() != packet.n ||
        packet.addend.size() != packet.m)
      throw std::invalid_argument("PaParams: field sizes disagree");
    return packet;
  });
}

// ---- AbortPacket -----------------------------------------------------------

Bytes AbortPacket::encode() const {
  Bytes out;
  put_u8(out, reason);
  return out;
}

Result<AbortPacket> AbortPacket::decode(const Bytes& payload) {
  return parse_payload<AbortPacket>(payload, [](ByteReader& reader) {
    AbortPacket packet;
    packet.reason = reader.u8();
    return packet;
  });
}

// ---- KeyDigest -------------------------------------------------------------

Bytes KeyDigest::encode() const {
  Bytes out;
  put_varint(out, frame_id);
  put_varint(out, key_bits);
  put_bytes(out, digest);
  return out;
}

Result<KeyDigest> KeyDigest::decode(const Bytes& payload) {
  return parse_payload<KeyDigest>(payload, [](ByteReader& reader) {
    KeyDigest packet;
    packet.frame_id = reader.varint();
    packet.key_bits = reader.varint();
    packet.digest = reader.bytes(20);
    return packet;
  });
}

// ---- Whole-packet codec ----------------------------------------------------

namespace {

template <typename Packet>
Result<DistillationPacket> lift(Result<Packet> decoded) {
  if (!decoded.ok())
    return Result<DistillationPacket>::failure(decoded.error);
  return Result<DistillationPacket>::success(
      DistillationPacket(std::move(decoded.value)));
}

}  // namespace

Result<DistillationPacket> decode_packet(const Frame& frame) {
  switch (frame.type) {
    case PacketType::kQframeFeed:
      return lift(QframeFeed::decode(frame.payload));
    case PacketType::kSiftAnnounce:
      return lift(SiftAnnounce::decode(frame.payload));
    case PacketType::kSiftDecision:
      return lift(SiftDecision::decode(frame.payload));
    case PacketType::kSampleReveal:
      return lift(SampleReveal::decode(frame.payload));
    case PacketType::kParityRequest:
      return lift(ParityRequest::decode(frame.payload));
    case PacketType::kParityResponse:
      return lift(ParityResponse::decode(frame.payload));
    case PacketType::kEcSummary:
      return lift(EcSummary::decode(frame.payload));
    case PacketType::kVerifyHash:
      return lift(VerifyHash::decode(frame.payload));
    case PacketType::kPaParams:
      return lift(PaParamsPacket::decode(frame.payload));
    case PacketType::kAbort:
      return lift(AbortPacket::decode(frame.payload));
    case PacketType::kKeyDigest:
      return lift(KeyDigest::decode(frame.payload));
    default:
      return Result<DistillationPacket>::failure(WireError::kMalformedPayload);
  }
}

Result<DistillationPacket> decode_packet_bytes(
    std::span<const std::uint8_t> buffer) {
  const auto frame = decode_frame(buffer);
  if (!frame.ok()) return Result<DistillationPacket>::failure(frame.error);
  return decode_packet(frame.value);
}

}  // namespace qkd::wire
