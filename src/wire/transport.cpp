#include "src/wire/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace qkd::wire {

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  if (fd_ >= 0) {
    // Dialogue frames are small and strictly request/response; Nagle only
    // adds round-trip latency here.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
}

TcpTransport::~TcpTransport() { close_fd(); }

void TcpTransport::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void TcpTransport::set_recv_timeout_ms(int timeout_ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool TcpTransport::send_frame(const Bytes& frame) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      last_error_ = WireError::kClosed;
      close_fd();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpTransport::read_exact(std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, out + got, n - got, 0);
    if (r == 0) return false;  // orderly shutdown
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;  // error or SO_RCVTIMEO expiry
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

std::optional<Bytes> TcpTransport::recv_frame() {
  last_error_ = WireError::kNone;
  if (fd_ < 0) {
    last_error_ = WireError::kClosed;
    return std::nullopt;
  }

  Bytes buffer(kHeaderBytes);
  if (!read_exact(buffer.data(), kHeaderBytes)) {
    last_error_ = WireError::kClosed;
    close_fd();
    return std::nullopt;
  }

  // Validate the header before trusting its length field — a corrupt or
  // hostile peer must produce a typed error, never a 4GiB allocation.
  const auto total = frame_total_length(buffer);
  if (!total.ok()) {
    last_error_ = total.error;
    close_fd();
    return std::nullopt;
  }

  buffer.resize(total.value);
  if (total.value > kHeaderBytes &&
      !read_exact(buffer.data() + kHeaderBytes, total.value - kHeaderBytes)) {
    last_error_ = WireError::kClosed;
    close_fd();
    return std::nullopt;
  }
  return buffer;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;

  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd_, 8) < 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpTransport> TcpListener::accept_transport() {
  if (fd_ < 0) return nullptr;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return std::make_unique<TcpTransport>(client);
    if (errno != EINTR) return nullptr;
  }
}

std::unique_ptr<TcpTransport> tcp_connect(std::uint16_t port, int retry_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(retry_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return std::make_unique<TcpTransport>(fd);

    ::close(fd);
    // The listener may still be binding (the forked child races its
    // parent); back off briefly and retry until the deadline.
    if (std::chrono::steady_clock::now() >= deadline) return nullptr;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace qkd::wire
