#include "src/wire/etsi.hpp"

#include <stdexcept>

#include "src/wire/packets.hpp"

namespace qkd::wire {
namespace {

constexpr std::size_t kMaxNameBytes = 256;

void put_string(Bytes& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(ByteReader& reader) {
  const std::uint64_t len = reader.varint();
  if (len > kMaxNameBytes) throw std::invalid_argument("wire: name too long");
  const Bytes raw = reader.bytes(static_cast<std::size_t>(len));
  return std::string(raw.begin(), raw.end());
}

template <typename Message, typename Parse>
Result<Message> parse_payload(const Bytes& payload, const Parse& parse) {
  try {
    ByteReader reader(payload);
    Message message = parse(reader);
    if (!reader.done())
      return Result<Message>::failure(WireError::kTrailingBytes);
    return Result<Message>::success(std::move(message));
  } catch (const std::exception&) {
    return Result<Message>::failure(WireError::kMalformedPayload);
  }
}

}  // namespace

Bytes KmsRegister::encode() const {
  Bytes out;
  put_string(out, name);
  put_u32(out, src);
  put_u32(out, dst);
  put_u8(out, qos);
  return out;
}

Result<KmsRegister> KmsRegister::decode(const Bytes& payload) {
  return parse_payload<KmsRegister>(payload, [](ByteReader& reader) {
    KmsRegister message;
    message.name = get_string(reader);
    message.src = reader.u32();
    message.dst = reader.u32();
    message.qos = reader.u8();
    if (message.qos > 2)
      throw std::invalid_argument("KmsRegister: unknown QoS class");
    return message;
  });
}

Bytes KmsRegisterReply::encode() const {
  Bytes out;
  put_u32(out, client_id);
  return out;
}

Result<KmsRegisterReply> KmsRegisterReply::decode(const Bytes& payload) {
  return parse_payload<KmsRegisterReply>(payload, [](ByteReader& reader) {
    KmsRegisterReply message;
    message.client_id = reader.u32();
    return message;
  });
}

Bytes KmsGetKey::encode() const {
  Bytes out;
  put_u32(out, client_id);
  put_varint(out, request_id);
  put_varint(out, bits);
  return out;
}

Result<KmsGetKey> KmsGetKey::decode(const Bytes& payload) {
  return parse_payload<KmsGetKey>(payload, [](ByteReader& reader) {
    KmsGetKey message;
    message.client_id = reader.u32();
    message.request_id = reader.varint();
    message.bits = reader.varint();
    if (message.bits == 0)
      throw std::invalid_argument("KmsGetKey: zero-bit request");
    return message;
  });
}

Bytes KmsGetKeyWithId::encode() const {
  Bytes out;
  put_u32(out, client_id);
  put_varint(out, request_id);
  put_u64(out, key_id);
  return out;
}

Result<KmsGetKeyWithId> KmsGetKeyWithId::decode(const Bytes& payload) {
  return parse_payload<KmsGetKeyWithId>(payload, [](ByteReader& reader) {
    KmsGetKeyWithId message;
    message.client_id = reader.u32();
    message.request_id = reader.varint();
    message.key_id = reader.u64();
    return message;
  });
}

Bytes KmsStatus::encode() const {
  Bytes out;
  put_u32(out, client_id);
  return out;
}

Result<KmsStatus> KmsStatus::decode(const Bytes& payload) {
  return parse_payload<KmsStatus>(payload, [](ByteReader& reader) {
    KmsStatus message;
    message.client_id = reader.u32();
    return message;
  });
}

Result<KmsBye> KmsBye::decode(const Bytes& payload) {
  return parse_payload<KmsBye>(payload,
                               [](ByteReader&) { return KmsBye{}; });
}

Bytes KmsGrant::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_u8(out, status);
  put_u64(out, key_id);
  put_bits_dense(out, bits);
  put_u8(out, compromised ? 1 : 0);
  return out;
}

Result<KmsGrant> KmsGrant::decode(const Bytes& payload) {
  return parse_payload<KmsGrant>(payload, [](ByteReader& reader) {
    KmsGrant message;
    message.request_id = reader.varint();
    message.status = reader.u8();
    message.key_id = reader.u64();
    message.bits = get_bits_dense(reader);
    const std::uint8_t raw = reader.u8();
    if (raw > 1) throw std::invalid_argument("KmsGrant: non-boolean flag");
    message.compromised = raw != 0;
    return message;
  });
}

Bytes KmsKeyWithIdReply::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_u8(out, ok ? 1 : 0);
  put_u64(out, key_id);
  put_bits_dense(out, bits);
  return out;
}

Result<KmsKeyWithIdReply> KmsKeyWithIdReply::decode(const Bytes& payload) {
  return parse_payload<KmsKeyWithIdReply>(payload, [](ByteReader& reader) {
    KmsKeyWithIdReply message;
    message.request_id = reader.varint();
    const std::uint8_t raw = reader.u8();
    if (raw > 1)
      throw std::invalid_argument("KmsKeyWithIdReply: non-boolean flag");
    message.ok = raw != 0;
    message.key_id = reader.u64();
    message.bits = get_bits_dense(reader);
    return message;
  });
}

Bytes KmsStatusReply::encode() const {
  Bytes out;
  put_varint(out, requests);
  put_varint(out, granted);
  put_varint(out, queue_depth);
  put_varint(out, claims_fulfilled);
  return out;
}

Result<KmsStatusReply> KmsStatusReply::decode(const Bytes& payload) {
  return parse_payload<KmsStatusReply>(payload, [](ByteReader& reader) {
    KmsStatusReply message;
    message.requests = reader.varint();
    message.granted = reader.varint();
    message.queue_depth = reader.varint();
    message.claims_fulfilled = reader.varint();
    return message;
  });
}

Bytes KmsReject::encode() const {
  Bytes out;
  put_varint(out, request_id);
  put_u8(out, status);
  return out;
}

Result<KmsReject> KmsReject::decode(const Bytes& payload) {
  return parse_payload<KmsReject>(payload, [](ByteReader& reader) {
    KmsReject message;
    message.request_id = reader.varint();
    message.status = reader.u8();
    return message;
  });
}

namespace {

template <typename Message>
Result<EtsiMessage> lift(Result<Message> decoded) {
  if (!decoded.ok()) return Result<EtsiMessage>::failure(decoded.error);
  return Result<EtsiMessage>::success(EtsiMessage(std::move(decoded.value)));
}

}  // namespace

Result<EtsiMessage> decode_etsi(const Frame& frame) {
  switch (frame.type) {
    case PacketType::kKmsRegister:
      return lift(KmsRegister::decode(frame.payload));
    case PacketType::kKmsRegisterReply:
      return lift(KmsRegisterReply::decode(frame.payload));
    case PacketType::kKmsGetKey:
      return lift(KmsGetKey::decode(frame.payload));
    case PacketType::kKmsGetKeyWithId:
      return lift(KmsGetKeyWithId::decode(frame.payload));
    case PacketType::kKmsStatus:
      return lift(KmsStatus::decode(frame.payload));
    case PacketType::kKmsBye:
      return lift(KmsBye::decode(frame.payload));
    case PacketType::kKmsGrant:
      return lift(KmsGrant::decode(frame.payload));
    case PacketType::kKmsKeyWithIdReply:
      return lift(KmsKeyWithIdReply::decode(frame.payload));
    case PacketType::kKmsStatusReply:
      return lift(KmsStatusReply::decode(frame.payload));
    case PacketType::kKmsReject:
      return lift(KmsReject::decode(frame.payload));
    default:
      return Result<EtsiMessage>::failure(WireError::kMalformedPayload);
  }
}

}  // namespace qkd::wire
