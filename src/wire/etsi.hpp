// ETSI GS QKD 014-flavored request/response encoding for the KMS API.
//
// The delivery model mirrors the spec's two-sided shape (and the
// Q-KeyMaker key-server architecture): the master side asks get_key and
// receives (key, key_ID); the slave side fetches the SAME bits by key_ID
// with get_key_with_id. Here each call is one typed request frame and one
// typed response frame; src/kms/wire_service.hpp binds the codec to a live
// KeyManagementService on the server side and to a blocking client API on
// the other, over any wire::Transport (in-memory channel or TCP socket).
//
// Status values in KmsGrant/KmsReject are kms::GrantStatus; the codec
// layer carries them as raw u8 so src/wire stays below src/kms in the DAG.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"
#include "src/wire/frame.hpp"

namespace qkd::wire {

// ---- Requests --------------------------------------------------------------

/// Registers an application on an endpoint pair (the registry handshake
/// that precedes ETSI delivery; the spec's SAE identity, here by name).
struct KmsRegister {
  static constexpr PacketType kType = PacketType::kKmsRegister;
  std::string name;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t qos = 1;

  Bytes encode() const;
  static Result<KmsRegister> decode(const Bytes& payload);
  bool operator==(const KmsRegister&) const = default;
};

struct KmsRegisterReply {
  static constexpr PacketType kType = PacketType::kKmsRegisterReply;
  std::uint32_t client_id = 0;

  Bytes encode() const;
  static Result<KmsRegisterReply> decode(const Bytes& payload);
  bool operator==(const KmsRegisterReply&) const = default;
};

/// Master side: requests `bits` of end-to-end key. `request_id` is echoed
/// on the matching KmsGrant/KmsReject so a client may pipeline requests.
struct KmsGetKey {
  static constexpr PacketType kType = PacketType::kKmsGetKey;
  std::uint32_t client_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t bits = 0;

  Bytes encode() const;
  static Result<KmsGetKey> decode(const Bytes& payload);
  bool operator==(const KmsGetKey&) const = default;
};

/// Slave side: claims the peer copy of a granted key by its key_ID.
struct KmsGetKeyWithId {
  static constexpr PacketType kType = PacketType::kKmsGetKeyWithId;
  std::uint32_t client_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t key_id = 0;

  Bytes encode() const;
  static Result<KmsGetKeyWithId> decode(const Bytes& payload);
  bool operator==(const KmsGetKeyWithId&) const = default;
};

struct KmsStatus {
  static constexpr PacketType kType = PacketType::kKmsStatus;
  std::uint32_t client_id = 0;

  Bytes encode() const;
  static Result<KmsStatus> decode(const Bytes& payload);
  bool operator==(const KmsStatus&) const = default;
};

/// Ends a wire session (the server's serve loop returns).
struct KmsBye {
  static constexpr PacketType kType = PacketType::kKmsBye;

  Bytes encode() const { return {}; }
  static Result<KmsBye> decode(const Bytes& payload);
  bool operator==(const KmsBye&) const = default;
};

// ---- Responses -------------------------------------------------------------

/// A granted get_key: the initiator's copy plus the key_ID naming the same
/// bits on the peer endpoint.
struct KmsGrant {
  static constexpr PacketType kType = PacketType::kKmsGrant;
  std::uint64_t request_id = 0;
  std::uint8_t status = 0;  // kms::GrantStatus
  std::uint64_t key_id = 0;
  qkd::BitVector bits;
  bool compromised = false;

  Bytes encode() const;
  static Result<KmsGrant> decode(const Bytes& payload);
  bool operator==(const KmsGrant&) const = default;
};

struct KmsKeyWithIdReply {
  static constexpr PacketType kType = PacketType::kKmsKeyWithIdReply;
  std::uint64_t request_id = 0;
  bool ok = false;
  std::uint64_t key_id = 0;
  qkd::BitVector bits;

  Bytes encode() const;
  static Result<KmsKeyWithIdReply> decode(const Bytes& payload);
  bool operator==(const KmsKeyWithIdReply&) const = default;
};

struct KmsStatusReply {
  static constexpr PacketType kType = PacketType::kKmsStatusReply;
  std::uint64_t requests = 0;
  std::uint64_t granted = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t claims_fulfilled = 0;

  Bytes encode() const;
  static Result<KmsStatusReply> decode(const Bytes& payload);
  bool operator==(const KmsStatusReply&) const = default;
};

/// A rejected request (admission control, shedding, departure) — the
/// non-granted statuses travel here so a grant never needs an empty key.
struct KmsReject {
  static constexpr PacketType kType = PacketType::kKmsReject;
  std::uint64_t request_id = 0;
  std::uint8_t status = 0;  // kms::GrantStatus

  Bytes encode() const;
  static Result<KmsReject> decode(const Bytes& payload);
  bool operator==(const KmsReject&) const = default;
};

// ---- Whole-message codec ---------------------------------------------------

using EtsiMessage =
    std::variant<KmsRegister, KmsRegisterReply, KmsGetKey, KmsGetKeyWithId,
                 KmsStatus, KmsBye, KmsGrant, KmsKeyWithIdReply,
                 KmsStatusReply, KmsReject>;

/// Decodes a frame's payload into the typed KMS message its header names;
/// kMalformedPayload for non-KMS frame types.
Result<EtsiMessage> decode_etsi(const Frame& frame);

}  // namespace qkd::wire
