#include "src/wire/frame.hpp"

namespace qkd::wire {

bool packet_type_known(std::uint8_t raw) {
  switch (static_cast<PacketType>(raw)) {
    case PacketType::kQframeFeed:
    case PacketType::kSiftAnnounce:
    case PacketType::kSiftDecision:
    case PacketType::kSampleReveal:
    case PacketType::kParityRequest:
    case PacketType::kParityResponse:
    case PacketType::kEcSummary:
    case PacketType::kVerifyHash:
    case PacketType::kPaParams:
    case PacketType::kAbort:
    case PacketType::kKeyDigest:
    case PacketType::kKmsRegister:
    case PacketType::kKmsRegisterReply:
    case PacketType::kKmsGetKey:
    case PacketType::kKmsGrant:
    case PacketType::kKmsGetKeyWithId:
    case PacketType::kKmsKeyWithIdReply:
    case PacketType::kKmsStatus:
    case PacketType::kKmsStatusReply:
    case PacketType::kKmsReject:
    case PacketType::kKmsBye:
    case PacketType::kRelayHeader:
      return true;
  }
  return false;
}

const char* packet_type_name(PacketType type) {
  switch (type) {
    case PacketType::kQframeFeed: return "qframe-feed";
    case PacketType::kSiftAnnounce: return "sift-announce";
    case PacketType::kSiftDecision: return "sift-decision";
    case PacketType::kSampleReveal: return "sample-reveal";
    case PacketType::kParityRequest: return "parity-request";
    case PacketType::kParityResponse: return "parity-response";
    case PacketType::kEcSummary: return "ec-summary";
    case PacketType::kVerifyHash: return "verify-hash";
    case PacketType::kPaParams: return "pa-params";
    case PacketType::kAbort: return "abort";
    case PacketType::kKeyDigest: return "key-digest";
    case PacketType::kKmsRegister: return "kms-register";
    case PacketType::kKmsRegisterReply: return "kms-register-reply";
    case PacketType::kKmsGetKey: return "kms-get-key";
    case PacketType::kKmsGrant: return "kms-grant";
    case PacketType::kKmsGetKeyWithId: return "kms-get-key-with-id";
    case PacketType::kKmsKeyWithIdReply: return "kms-key-with-id-reply";
    case PacketType::kKmsStatus: return "kms-status";
    case PacketType::kKmsStatusReply: return "kms-status-reply";
    case PacketType::kKmsReject: return "kms-reject";
    case PacketType::kKmsBye: return "kms-bye";
    case PacketType::kRelayHeader: return "relay-header";
  }
  return "?";
}

const char* wire_error_name(WireError error) {
  switch (error) {
    case WireError::kNone: return "none";
    case WireError::kShortFrame: return "short-frame";
    case WireError::kBadMagic: return "bad-magic";
    case WireError::kBadVersion: return "bad-version";
    case WireError::kUnknownType: return "unknown-type";
    case WireError::kOversizedFrame: return "oversized-frame";
    case WireError::kTrailingBytes: return "trailing-bytes";
    case WireError::kMalformedPayload: return "malformed-payload";
    case WireError::kClosed: return "closed";
  }
  return "?";
}

Bytes encode_frame(PacketType type, const Bytes& payload) {
  return encode_frame(type, payload, obs::TraceContext{});
}

Bytes encode_frame(PacketType type, const Bytes& payload,
                   obs::TraceContext trace) {
  const bool traced = trace.valid();
  Bytes out;
  out.reserve(kHeaderBytes + (traced ? kTraceExtensionBytes : 0) +
              payload.size());
  put_u16(out, kMagic);
  put_u8(out, traced ? kWireVersionTraced : kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  if (traced) {
    put_u64(out, trace.trace_id);
    put_u64(out, trace.parent_span);
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<std::size_t> frame_total_length(
    std::span<const std::uint8_t> prefix) {
  if (prefix.size() < kHeaderBytes)
    return Result<std::size_t>::failure(WireError::kShortFrame);
  ByteReader reader(prefix.first(kHeaderBytes));
  if (reader.u16() != kMagic)
    return Result<std::size_t>::failure(WireError::kBadMagic);
  const std::uint8_t version = reader.u8();
  if (version != kWireVersion && version != kWireVersionTraced)
    return Result<std::size_t>::failure(WireError::kBadVersion);
  if (!packet_type_known(reader.u8()))
    return Result<std::size_t>::failure(WireError::kUnknownType);
  const std::uint32_t payload_len = reader.u32();
  if (payload_len > kMaxPayloadBytes)
    return Result<std::size_t>::failure(WireError::kOversizedFrame);
  const std::size_t extension =
      version == kWireVersionTraced ? kTraceExtensionBytes : 0;
  return Result<std::size_t>::success(kHeaderBytes + extension + payload_len);
}

Result<Frame> decode_frame(std::span<const std::uint8_t> buffer) {
  const auto total = frame_total_length(buffer);
  if (!total.ok()) return Result<Frame>::failure(total.error);
  if (buffer.size() < total.value)
    return Result<Frame>::failure(WireError::kShortFrame);
  if (buffer.size() > total.value)
    return Result<Frame>::failure(WireError::kTrailingBytes);
  Frame frame;
  frame.type = static_cast<PacketType>(buffer[3]);
  std::size_t payload_start = kHeaderBytes;
  if (buffer[2] == kWireVersionTraced) {
    ByteReader reader(buffer.subspan(kHeaderBytes, kTraceExtensionBytes));
    frame.trace.trace_id = reader.u64();
    frame.trace.parent_span = reader.u64();
    payload_start += kTraceExtensionBytes;
  }
  frame.payload.assign(buffer.begin() + payload_start, buffer.end());
  return Result<Frame>::success(std::move(frame));
}

}  // namespace qkd::wire
