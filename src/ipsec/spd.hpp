// Security Policy Database (RFC 2401, Fig. 10).
//
// "Every security association has a maximum lifetime ... expressed either in
// time (seconds) or in data encrypted (kilobytes) and is configured via the
// Security Policy Database (SPD) entry". Our extensions add per-tunnel QKD
// policy: whether the tunnel's keys come from IKE alone, IKE hybridized with
// Qblocks (the rapid-reseed extension), or a pure one-time pad drawn from
// the key pool (Sec. 7): "Some may use conventional cryptography (e.g. AES),
// while others employ one-time pads, depending on how sensitive traffic is
// within a given VPN."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ipsec/ip_packet.hpp"

namespace qkd::ipsec {

enum class PolicyAction : std::uint8_t { kBypass, kDiscard, kProtect };

enum class CipherAlgo : std::uint8_t { kAes128, kAes256, kTripleDes, kOneTimePad };

enum class QkdMode : std::uint8_t {
  kNone,    // conventional IKE keys only
  kHybrid,  // Qblocks mixed into the IKE Phase-2 keymat (rapid reseeding)
  kOtp,     // traffic keys ARE pool bits; consumes key per byte sent
};

/// Key sizes per algorithm (bytes); OTP has no fixed key size.
std::size_t cipher_key_bytes(CipherAlgo algo);
const char* cipher_name(CipherAlgo algo);

struct TrafficSelector {
  std::uint32_t src_prefix = 0;
  std::uint32_t src_mask = 0;  // e.g. 0xffffff00 for /24
  std::uint32_t dst_prefix = 0;
  std::uint32_t dst_mask = 0;
  std::optional<std::uint8_t> protocol;  // nullopt = any

  bool matches(const IpPacket& packet) const;
};

struct SpdEntry {
  std::string name;
  TrafficSelector selector;
  PolicyAction action = PolicyAction::kProtect;

  // Protection parameters (meaningful when action == kProtect):
  CipherAlgo cipher = CipherAlgo::kAes128;
  QkdMode qkd_mode = QkdMode::kHybrid;
  /// Qblocks requested per Phase-2 negotiation (Fig. 12: "offer is 1
  /// Qblocks").
  std::uint32_t qblocks_per_rekey = 1;
  /// SA lifetime in seconds ("we update the resultant AES keys about once a
  /// minute").
  double lifetime_seconds = 60.0;
  /// SA lifetime in kilobytes of protected traffic (0 = unlimited).
  std::uint64_t lifetime_kilobytes = 0;
};

class SecurityPolicyDatabase {
 public:
  void add(SpdEntry entry) { entries_.push_back(std::move(entry)); }

  /// First-match lookup in insertion order; nullptr when nothing matches
  /// (callers treat no-match as discard, the conservative default).
  const SpdEntry* lookup(const IpPacket& packet) const;

  const std::vector<SpdEntry>& entries() const { return entries_; }

 private:
  std::vector<SpdEntry> entries_;
};

}  // namespace qkd::ipsec
