#include "src/ipsec/spd.hpp"

namespace qkd::ipsec {

std::size_t cipher_key_bytes(CipherAlgo algo) {
  switch (algo) {
    case CipherAlgo::kAes128:
      return 16;
    case CipherAlgo::kAes256:
      return 32;
    case CipherAlgo::kTripleDes:
      return 24;
    case CipherAlgo::kOneTimePad:
      return 0;
  }
  return 0;
}

const char* cipher_name(CipherAlgo algo) {
  switch (algo) {
    case CipherAlgo::kAes128:
      return "AES-128";
    case CipherAlgo::kAes256:
      return "AES-256";
    case CipherAlgo::kTripleDes:
      return "3DES";
    case CipherAlgo::kOneTimePad:
      return "OTP";
  }
  return "?";
}

bool TrafficSelector::matches(const IpPacket& packet) const {
  if ((packet.src & src_mask) != (src_prefix & src_mask)) return false;
  if ((packet.dst & dst_mask) != (dst_prefix & dst_mask)) return false;
  if (protocol.has_value() && packet.protocol != *protocol) return false;
  return true;
}

const SpdEntry* SecurityPolicyDatabase::lookup(const IpPacket& packet) const {
  for (const auto& entry : entries_) {
    if (entry.selector.matches(packet)) return &entry;
  }
  return nullptr;
}

}  // namespace qkd::ipsec
