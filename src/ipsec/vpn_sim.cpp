#include "src/ipsec/vpn_sim.hpp"

#include <stdexcept>

namespace qkd::ipsec {
namespace {

VpnGateway::Config gateway_config(const VpnLinkSimulation::Params& params,
                                  const std::string& name,
                                  const std::string& address,
                                  const std::string& peer) {
  VpnGateway::Config config;
  config.name = name;
  config.address = parse_ipv4(address);
  config.peer_address = parse_ipv4(peer);
  config.preshared_key = Bytes{'d', 'a', 'r', 'p', 'a', '-', 'q', 'n'};
  config.supply_low_water_bits = params.supply_low_water_bits;
  return config;
}

}  // namespace

VpnLinkSimulation::VpnLinkSimulation(Params params, std::uint64_t seed)
    : params_(params),
      a_(gateway_config(params, params.a_name, params.a_address,
                        params.b_address),
         seed * 2 + 1),
      b_(gateway_config(params, params.b_name, params.b_address,
                        params.a_address),
         seed * 2 + 2) {
  a_.set_transmit([this](const Bytes& wire) { channel_.send_from_a(wire); });
  b_.set_transmit([this](const Bytes& wire) { channel_.send_from_b(wire); });
}

void VpnLinkSimulation::install_mirrored_policy(const SpdEntry& entry) {
  a_.spd().add(entry);
  // Mirror with swapped selector directions.
  SpdEntry reversed = entry;
  std::swap(reversed.selector.src_prefix, reversed.selector.dst_prefix);
  std::swap(reversed.selector.src_mask, reversed.selector.dst_mask);
  b_.spd().add(reversed);
}

void VpnLinkSimulation::deposit_key_material(const qkd::BitVector& bits,
                                             bool corrupt_b) {
  a_.key_pool().deposit(bits);
  if (corrupt_b && !bits.empty()) {
    qkd::BitVector corrupted = bits;
    corrupted.flip(corrupted.size() / 2);
    b_.key_pool().deposit(corrupted);
  } else {
    b_.key_pool().deposit(bits);
  }
}

void VpnLinkSimulation::enable_engine_feed(qkd::proto::QkdLinkConfig proto,
                                           std::uint64_t seed) {
  qkd::network::Topology topology;
  const auto a = topology.add_node(params_.a_name,
                                   qkd::network::NodeKind::kEndpoint);
  const auto b = topology.add_node(params_.b_name,
                                   qkd::network::NodeKind::kEndpoint);
  topology.add_link(a, b, proto.link);
  qkd::network::LinkKeyService::Config config;
  config.proto = proto;
  config.seed = seed;
  config.threads = 1;  // one link: no fan-out to schedule
  feed_ = std::make_unique<qkd::network::LinkKeyService>(topology, config);
  // Both gateways' reservoirs are sinks of the same key stream: the
  // producer mirrors every accepted batch into the two supplies itself.
  feed_->attach_sink(0, a_.key_supply());
  feed_->attach_sink(0, b_.key_supply());
}

void VpnLinkSimulation::set_feed_attack(
    std::unique_ptr<qkd::optics::Attack> attack) {
  if (!feed_)
    throw std::logic_error(
        "VpnLinkSimulation: set_feed_attack before enable_engine_feed");
  feed_->set_attack(0, std::move(attack));
}

void VpnLinkSimulation::run_engine_feed(double dt_seconds) {
  if (!feed_) return;
  feed_->advance(dt_seconds);
}

void VpnLinkSimulation::start() {
  a_.start(clock_.now());
  pump();
}

void VpnLinkSimulation::pump() {
  // Bounded ping-pong: each delivery may generate replies.
  for (int round = 0; round < 32; ++round) {
    bool moved = false;
    while (auto msg = channel_.recv_at_a()) {
      a_.deliver_from_network(*msg, clock_.now());
      moved = true;
    }
    while (auto msg = channel_.recv_at_b()) {
      b_.deliver_from_network(*msg, clock_.now());
      moved = true;
    }
    if (!moved) break;
  }
  a_.tick(clock_.now());
  b_.tick(clock_.now());
}

void VpnLinkSimulation::advance(double seconds) {
  qkd::advance_clock_stepped(clock_, seconds,
                             qkd::seconds_to_sim(params_.tick_interval_s),
                             [this](double dt_seconds) {
                               run_engine_feed(dt_seconds);
                               pump();
                             });
}

}  // namespace qkd::ipsec
