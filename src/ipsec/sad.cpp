#include "src/ipsec/sad.hpp"

namespace qkd::ipsec {

bool SecurityAssociation::expired(qkd::SimTime now) const {
  if (lifetime_seconds > 0.0) {
    if (qkd::sim_to_seconds(now - established_at) >= lifetime_seconds)
      return true;
  }
  if (lifetime_bytes > 0 && bytes_protected >= lifetime_bytes) return true;
  return false;
}

std::optional<qkd::SimTime> SecurityAssociation::expires_at() const {
  if (lifetime_seconds <= 0.0) return std::nullopt;
  // Ceiling: expired() compares in the seconds domain, so a truncated
  // deadline would wake the driver one tick before it reads true.
  return established_at + qkd::seconds_to_sim_ceil(lifetime_seconds);
}

bool SecurityAssociation::replay_check_and_update(std::uint64_t seq) {
  if (seq == 0) return false;  // ESP sequence numbers start at 1
  if (seq > replay_highest) {
    const std::uint64_t shift = seq - replay_highest;
    replay_window = shift >= 64 ? 0 : replay_window << shift;
    replay_window |= 1;  // mark the new highest as seen
    replay_highest = seq;
    return true;
  }
  const std::uint64_t offset = replay_highest - seq;
  if (offset >= 64) return false;  // too old to judge: reject
  const std::uint64_t bit = 1ULL << offset;
  if (replay_window & bit) return false;  // replay
  replay_window |= bit;
  return true;
}

void SecurityAssociationDatabase::install(SecurityAssociation sa) {
  by_spi_[sa.spi] = std::move(sa);
}

SecurityAssociation* SecurityAssociationDatabase::find(std::uint32_t spi) {
  auto it = by_spi_.find(spi);
  return it == by_spi_.end() ? nullptr : &it->second;
}

const SecurityAssociation* SecurityAssociationDatabase::find(
    std::uint32_t spi) const {
  auto it = by_spi_.find(spi);
  return it == by_spi_.end() ? nullptr : &it->second;
}

void SecurityAssociationDatabase::remove(std::uint32_t spi) {
  by_spi_.erase(spi);
}

std::vector<std::uint32_t> SecurityAssociationDatabase::expire(
    qkd::SimTime now) {
  std::vector<std::uint32_t> removed;
  for (auto it = by_spi_.begin(); it != by_spi_.end();) {
    if (it->second.expired(now)) {
      removed.push_back(it->first);
      it = by_spi_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

std::optional<qkd::SimTime> SecurityAssociationDatabase::next_expiry() const {
  std::optional<qkd::SimTime> earliest;
  for (const auto& [spi, sa] : by_spi_) {
    const auto at = sa.expires_at();
    if (at.has_value() && (!earliest.has_value() || *at < *earliest))
      earliest = at;
  }
  return earliest;
}

}  // namespace qkd::ipsec
