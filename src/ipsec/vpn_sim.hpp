// Paired-gateway VPN simulation harness.
//
// Wires two VpnGateways back to back over a net::PublicChannel (with
// optional Eve impairments) and drives both against one SimClock. Key
// material reaches the gateway pools one of two ways:
//
//  * deposit_key_material() hand-mirrors a bit string into both pools —
//    the original harness mode, still used to inject corrupted deposits;
//  * enable_engine_feed() attaches a real QkdLinkSession (through a
//    two-node LinkKeyService) with BOTH gateways' supplies attached as its
//    sinks: as simulated time advances, every accepted batch is delivered
//    into the two mirrored reservoirs by the producer itself — no
//    hand-copied deposits — the continuously-running Fig. 11 stack. An
//    Attack on the feed suppresses distillation, making the Section 7
//    "IKE starves when Eve suppresses distillation" scenario runnable end
//    to end.
//
// Examples, tests and the E10/E11 benches all run on this harness.
#pragma once

#include "src/common/sim_clock.hpp"
#include "src/ipsec/gateway.hpp"
#include "src/net/channel.hpp"
#include "src/network/key_service.hpp"

namespace qkd::ipsec {

class VpnLinkSimulation {
 public:
  struct Params {
    std::string a_name = "alice-gw";
    std::string b_name = "bob-gw";
    std::string a_address = "192.1.99.34";
    std::string b_address = "192.1.99.35";
    double tick_interval_s = 0.1;
    /// Low-water mark installed on both gateways' key supplies (starvation
    /// events; see VpnGateway::Config::supply_low_water_bits).
    std::size_t supply_low_water_bits =
        4 * keystore::KeySupply::kQblockBits;
  };

  explicit VpnLinkSimulation(Params params, std::uint64_t seed = 1);

  VpnGateway& a() { return a_; }
  VpnGateway& b() { return b_; }
  qkd::net::PublicChannel& channel() { return channel_; }
  qkd::SimClock& clock() { return clock_; }

  /// Installs a mirrored protect-everything policy on both gateways (the
  /// usual two-enclave setup); returns the entry for customization.
  void install_mirrored_policy(const SpdEntry& entry);

  /// Deposits the same distilled bits into both pools (what the QKD engine
  /// does continuously). `corrupt_b` flips one bit in B's copy — the
  /// Section 7 "believe they possess secret bits in common but in fact these
  /// two sets of bits are not identical" failure injection.
  void deposit_key_material(const qkd::BitVector& bits, bool corrupt_b = false);

  /// Attaches a real QKD engine between the gateways: a LinkKeyService over
  /// a two-endpoint topology whose single link runs `proto` (the fiber and
  /// operating point come from `proto.link`), with both gateways' supplies
  /// attached as the link's sinks. Every advance() runs the distillation
  /// the elapsed simulated time allows; the producer delivers accepted
  /// batches into BOTH pools — mirrored by the engine's verify stage, not
  /// by hand.
  void enable_engine_feed(qkd::proto::QkdLinkConfig proto,
                          std::uint64_t seed = 1);

  /// Puts Eve on (or removes her from, with nullptr) the feed's quantum
  /// channel. Requires enable_engine_feed() first.
  void set_feed_attack(std::unique_ptr<qkd::optics::Attack> attack);

  /// The engine feed, or nullptr when running on manual deposits.
  qkd::network::LinkKeyService* key_service() { return feed_.get(); }

  /// Starts IKE (A initiates Phase 1).
  void start();

  /// Delivers all queued channel messages to both ends, repeatedly, until
  /// the channel drains (bounded), then ticks both gateways.
  void pump();

  /// Advances simulated time by `seconds`, ticking and pumping on the way.
  void advance(double seconds);

 private:
  /// Runs the feed for `dt` simulated seconds; the producer deposits fresh
  /// key into both attached gateway supplies. No-op without an engine feed.
  void run_engine_feed(double dt_seconds);

  Params params_;
  qkd::SimClock clock_;
  qkd::net::PublicChannel channel_;
  VpnGateway a_;
  VpnGateway b_;
  std::unique_ptr<qkd::network::LinkKeyService> feed_;
};

}  // namespace qkd::ipsec
