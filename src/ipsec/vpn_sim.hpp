// Paired-gateway VPN simulation harness.
//
// Wires two VpnGateways back to back over a net::PublicChannel (with
// optional Eve impairments), drives both against one SimClock, and mirrors
// QKD key-material deposits into both pools — the role the QKD protocol
// engine plays in the full system (Fig. 11). Examples, tests and the E10/E11
// benches all run on this harness.
#pragma once

#include "src/common/sim_clock.hpp"
#include "src/ipsec/gateway.hpp"
#include "src/net/channel.hpp"

namespace qkd::ipsec {

class VpnLinkSimulation {
 public:
  struct Params {
    std::string a_name = "alice-gw";
    std::string b_name = "bob-gw";
    std::string a_address = "192.1.99.34";
    std::string b_address = "192.1.99.35";
    double tick_interval_s = 0.1;
  };

  explicit VpnLinkSimulation(Params params, std::uint64_t seed = 1);

  VpnGateway& a() { return a_; }
  VpnGateway& b() { return b_; }
  qkd::net::PublicChannel& channel() { return channel_; }
  qkd::SimClock& clock() { return clock_; }

  /// Installs a mirrored protect-everything policy on both gateways (the
  /// usual two-enclave setup); returns the entry for customization.
  void install_mirrored_policy(const SpdEntry& entry);

  /// Deposits the same distilled bits into both pools (what the QKD engine
  /// does continuously). `corrupt_b` flips one bit in B's copy — the
  /// Section 7 "believe they possess secret bits in common but in fact these
  /// two sets of bits are not identical" failure injection.
  void deposit_key_material(const qkd::BitVector& bits, bool corrupt_b = false);

  /// Starts IKE (A initiates Phase 1).
  void start();

  /// Delivers all queued channel messages to both ends, repeatedly, until
  /// the channel drains (bounded), then ticks both gateways.
  void pump();

  /// Advances simulated time by `seconds`, ticking and pumping on the way.
  void advance(double seconds);

 private:
  Params params_;
  qkd::SimClock clock_;
  qkd::net::PublicChannel channel_;
  VpnGateway a_;
  VpnGateway b_;
};

}  // namespace qkd::ipsec
