#include "src/ipsec/ip_packet.hpp"

#include <sstream>
#include <stdexcept>

namespace qkd::ipsec {

std::uint32_t parse_ipv4(const std::string& dotted) {
  std::uint32_t out = 0;
  std::istringstream stream(dotted);
  for (int i = 0; i < 4; ++i) {
    int octet;
    if (!(stream >> octet) || octet < 0 || octet > 255)
      throw std::invalid_argument("parse_ipv4: bad octet in " + dotted);
    out = out << 8 | static_cast<std::uint32_t>(octet);
    if (i < 3) {
      char dot;
      if (!(stream >> dot) || dot != '.')
        throw std::invalid_argument("parse_ipv4: bad separator in " + dotted);
    }
  }
  char extra;
  if (stream >> extra)
    throw std::invalid_argument("parse_ipv4: trailing characters in " + dotted);
  return out;
}

std::string format_ipv4(std::uint32_t address) {
  std::ostringstream out;
  out << (address >> 24) << '.' << ((address >> 16) & 0xff) << '.'
      << ((address >> 8) & 0xff) << '.' << (address & 0xff);
  return out.str();
}

std::uint16_t ipv4_header_checksum(const std::uint8_t* header) {
  std::uint32_t sum = 0;
  for (int i = 0; i < 20; i += 2)
    sum += static_cast<std::uint32_t>(header[i]) << 8 | header[i + 1];
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes IpPacket::serialize() const {
  Bytes out;
  out.reserve(total_length());
  put_u8(out, 0x45);  // version 4, IHL 5
  put_u8(out, 0);     // DSCP/ECN
  put_u16(out, static_cast<std::uint16_t>(total_length()));
  put_u16(out, 0);  // identification
  put_u16(out, 0);  // flags/fragment offset
  put_u8(out, ttl);
  put_u8(out, protocol);
  put_u16(out, 0);  // checksum placeholder
  put_u32(out, src);
  put_u32(out, dst);
  const std::uint16_t checksum = ipv4_header_checksum(out.data());
  out[10] = static_cast<std::uint8_t>(checksum >> 8);
  out[11] = static_cast<std::uint8_t>(checksum);
  put_bytes(out, payload);
  return out;
}

IpPacket IpPacket::parse(const Bytes& wire) {
  if (wire.size() < 20) throw std::invalid_argument("IpPacket: short header");
  if ((wire[0] >> 4) != 4) throw std::invalid_argument("IpPacket: not IPv4");
  if ((wire[0] & 0xf) != 5)
    throw std::invalid_argument("IpPacket: options unsupported");
  if (ipv4_header_checksum(wire.data()) != 0)
    throw std::invalid_argument("IpPacket: bad header checksum");
  ByteReader reader(wire);
  reader.u16();  // version/IHL + DSCP
  const std::uint16_t total = reader.u16();
  if (total != wire.size())
    throw std::invalid_argument("IpPacket: length mismatch");
  reader.u32();  // id + flags/offset
  IpPacket packet;
  packet.ttl = reader.u8();
  packet.protocol = reader.u8();
  reader.u16();  // checksum (already verified)
  packet.src = reader.u32();
  packet.dst = reader.u32();
  packet.payload = reader.bytes(reader.remaining());
  return packet;
}

}  // namespace qkd::ipsec
