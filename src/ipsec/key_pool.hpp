// The VPN/OPC interface: a reservoir of distilled QKD key material.
//
// The QKD protocol engine deposits distilled bits; IKE withdraws them as
// 1024-bit "Qblocks" (the unit visible in the paper's Fig. 12 transcript:
// "reply 1 Qblocks 1024 bits 1024.000000 entropy"). Both VPN gateways hold
// mirror-image pools — the same bits in the same order — so block N
// withdrawn at Alice equals block N withdrawn at Bob. Running dry is the
// key-consumption race of Section 2 ("Sufficiently Rapid Key Delivery").
//
// Lanes. The paper notes the extensions needed "negotiation mechanisms to
// agree on which QKD bits will be used": when both gateways initiate Phase-2
// negotiations concurrently (e.g. simultaneous rekey after expiry), naive
// FIFO withdrawal would interleave differently on the two ends and scramble
// every subsequent key. Qblocks are therefore partitioned into two lanes by
// block-index parity — lane 0 holds blocks 0, 2, 4, ...; lane 1 holds
// blocks 1, 3, 5, ... — and each negotiation draws from the lane owned by
// its initiating direction. Concurrent opposite-direction negotiations then
// consume disjoint blocks and stay in lockstep without extra round trips.
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/bitvector.hpp"

namespace qkd::ipsec {

class KeyPool {
 public:
  static constexpr std::size_t kQblockBits = 1024;

  struct Stats {
    std::uint64_t bits_deposited = 0;
    std::uint64_t bits_withdrawn = 0;
    std::uint64_t qblocks_withdrawn = 0;
    std::uint64_t failed_withdrawals = 0;  // pool-empty events
  };

  KeyPool() = default;

  /// Deposits freshly distilled bits (order matters; both ends must deposit
  /// identical streams).
  void deposit(const qkd::BitVector& bits);

  /// Withdraws `count` Qblocks from `lane` (0 or 1), concatenated in block
  /// order; nullopt if the lane holds fewer complete blocks. Partial
  /// withdrawal is refused so the two ends never get out of step.
  std::optional<qkd::BitVector> withdraw_qblocks(std::size_t count,
                                                 unsigned lane = 0);

  /// Withdraws an arbitrary number of bits in FIFO order (testing and
  /// non-IKE consumers). Must not be mixed with laned Qblock withdrawal on
  /// the same pool; doing so throws std::logic_error.
  std::optional<qkd::BitVector> withdraw_bits(std::size_t bits);

  std::size_t available_bits() const;
  /// Complete, unconsumed Qblocks remaining in `lane`.
  std::size_t available_qblocks(unsigned lane = 0) const;
  const Stats& stats() const { return stats_; }

 private:
  enum class Mode { kUnset, kLinear, kLaned };
  void compact();

  qkd::BitVector pool_;       // bits not yet dropped by compaction
  std::size_t base_bits_ = 0; // absolute bit offset of pool_[0]
  std::size_t linear_cursor_ = 0;   // absolute, kLinear mode
  std::size_t lane_next_[2] = {0, 0};  // next lane-local block index
  Mode mode_ = Mode::kUnset;
  Stats stats_;
};

}  // namespace qkd::ipsec
