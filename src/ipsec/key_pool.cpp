#include "src/ipsec/key_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace qkd::ipsec {

void KeyPool::deposit(const qkd::BitVector& bits) {
  pool_.append(bits);
  stats_.bits_deposited += bits.size();
}

std::size_t KeyPool::available_bits() const {
  const std::size_t total = base_bits_ + pool_.size();
  if (mode_ == Mode::kLinear) return total - linear_cursor_;
  if (mode_ == Mode::kUnset) return total;
  // Laned mode: bits in complete unconsumed blocks of both lanes.
  return (available_qblocks(0) + available_qblocks(1)) * kQblockBits;
}

std::size_t KeyPool::available_qblocks(unsigned lane) const {
  if (lane > 1) throw std::invalid_argument("KeyPool: lane must be 0 or 1");
  const std::size_t total_blocks = (base_bits_ + pool_.size()) / kQblockBits;
  // Lane-local block k occupies absolute block 2k + lane.
  const std::size_t lane_blocks =
      total_blocks > lane ? (total_blocks - lane + 1) / 2 : 0;
  return lane_blocks > lane_next_[lane] ? lane_blocks - lane_next_[lane] : 0;
}

std::optional<qkd::BitVector> KeyPool::withdraw_qblocks(std::size_t count,
                                                        unsigned lane) {
  if (lane > 1) throw std::invalid_argument("KeyPool: lane must be 0 or 1");
  if (mode_ == Mode::kLinear)
    throw std::logic_error("KeyPool: laned withdrawal after linear use");
  mode_ = Mode::kLaned;
  if (available_qblocks(lane) < count) {
    ++stats_.failed_withdrawals;
    return std::nullopt;
  }
  qkd::BitVector out;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t abs_block = 2 * lane_next_[lane] + lane;
    const std::size_t abs_bit = abs_block * kQblockBits;
    out.append(pool_.slice(abs_bit - base_bits_, kQblockBits));
    ++lane_next_[lane];
  }
  stats_.bits_withdrawn += count * kQblockBits;
  stats_.qblocks_withdrawn += count;
  compact();
  return out;
}

std::optional<qkd::BitVector> KeyPool::withdraw_bits(std::size_t bits) {
  if (mode_ == Mode::kLaned)
    throw std::logic_error("KeyPool: linear withdrawal after laned use");
  mode_ = Mode::kLinear;
  if (bits > base_bits_ + pool_.size() - linear_cursor_) {
    ++stats_.failed_withdrawals;
    return std::nullopt;
  }
  qkd::BitVector out = pool_.slice(linear_cursor_ - base_bits_, bits);
  linear_cursor_ += bits;
  stats_.bits_withdrawn += bits;
  compact();
  return out;
}

void KeyPool::compact() {
  // Everything before the earliest live cursor can be dropped.
  std::size_t keep_from;
  if (mode_ == Mode::kLinear) {
    keep_from = linear_cursor_;
  } else {
    const std::size_t lane0_bit = (2 * lane_next_[0]) * kQblockBits;
    const std::size_t lane1_bit = (2 * lane_next_[1] + 1) * kQblockBits;
    keep_from = std::min(lane0_bit, lane1_bit);
  }
  if (keep_from <= base_bits_) return;
  const std::size_t drop = keep_from - base_bits_;
  if (drop > (1 << 20) && drop > pool_.size() / 2) {
    pool_ = pool_.slice(drop, pool_.size() - drop);
    base_bits_ = keep_from;
  }
}

}  // namespace qkd::ipsec
