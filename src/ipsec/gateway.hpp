// The cryptographic VPN gateway of Figs. 2, 10 and 11.
//
// One gateway sits between a private ("red") enclave and the public
// ("black") network: outbound plaintext packets are matched against the SPD
// and either bypassed, discarded, or protected — tunneled through an ESP SA
// whose keys IKE negotiated, continually reseeded from QKD key material.
// Inbound packets are demultiplexed (IKE vs. ESP), decapsulated, checked and
// delivered. SA lifetimes drive rollover, triggering fresh Phase-2
// negotiations that withdraw fresh Qblocks.
#pragma once

#include <deque>
#include <functional>
#include <map>

#include "src/ipsec/esp.hpp"
#include "src/ipsec/ike.hpp"
#include "src/keystore/key_pool.hpp"

namespace qkd::ipsec {

class VpnGateway {
 public:
  struct Config {
    std::string name = "gw";
    std::uint32_t address = 0;       // black-side address
    std::uint32_t peer_address = 0;  // the other gateway
    Bytes preshared_key;             // IKE Phase-1 PSK
    double phase2_timeout_s = 10.0;
    /// Plaintext packets waiting for an SA are dropped beyond this queue
    /// depth (the paper's timeout pressure made visible).
    std::size_t max_pending_packets = 64;
    /// Low-water mark on the key supply: crossing it down raises a
    /// supply_low_water event; a deposit lifting the supply back over it
    /// wakes any negotiation that stalled on an empty pool.
    std::size_t supply_low_water_bits = 4 * keystore::KeySupply::kQblockBits;
  };

  struct Stats {
    std::uint64_t esp_sent = 0;
    std::uint64_t esp_received = 0;
    std::uint64_t delivered = 0;       // decrypted packets handed to red side
    std::uint64_t bypassed = 0;
    std::uint64_t discarded_policy = 0;
    std::uint64_t dropped_no_policy = 0;
    std::uint64_t dropped_queue_full = 0;
    std::uint64_t auth_failures = 0;   // the mismatched-Qblock symptom
    std::uint64_t replay_drops = 0;
    std::uint64_t unknown_spi = 0;
    std::uint64_t otp_exhausted = 0;
    std::uint64_t sa_rollovers = 0;
    // Key-supply starvation events (delivered by KeySupply callbacks, not
    // polling): the Sec. 2 key-consumption race made visible.
    std::uint64_t supply_low_water = 0;
    std::uint64_t supply_exhausted = 0;
    std::uint64_t supply_replenished = 0;
  };

  /// `transmit` carries outer (black-side) IP packets to the peer.
  using TransmitFn = std::function<void(const Bytes&)>;

  VpnGateway(Config config, std::uint64_t seed);

  void set_transmit(TransmitFn transmit) { transmit_ = std::move(transmit); }

  SecurityPolicyDatabase& spd() { return spd_; }
  /// The gateway's key reservoir. Producers deposit through the KeySupply
  /// face (key_supply()); the concrete pool is exposed for stats/labels.
  keystore::KeyPool& key_pool() { return key_pool_; }
  keystore::KeySupply& key_supply() { return key_pool_; }
  const SecurityAssociationDatabase& sad() const { return sad_; }
  const IkeDaemon& ike() const { return ike_; }
  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

  /// Starts IKE Phase 1 (call on one side; the responder learns it from the
  /// wire).
  void start(qkd::SimTime now);

  /// A plaintext packet arriving from the red enclave.
  void submit_plaintext(const IpPacket& packet, qkd::SimTime now);

  /// A packet arriving from the black network (outer IP: ESP or IKE-in-UDP).
  void deliver_from_network(const Bytes& outer_wire, qkd::SimTime now);

  /// Periodic timer: SA expiry/rollover, IKE retransmits, queue flush.
  void tick(qkd::SimTime now);

  /// Earliest instant tick() has scheduled work: the next SA lifetime
  /// expiry, the next IKE retransmit/negotiation deadline, or `now` itself
  /// when a supply-replenished wakeup is armed. nullopt when the gateway is
  /// fully idle. An event-driven driver (src/sim) calls tick() exactly at
  /// these deadlines instead of on a fixed poll interval.
  std::optional<qkd::SimTime> next_deadline(qkd::SimTime now) const;

  /// Decrypted (or bypassed) packets delivered to the red side.
  std::vector<IpPacket> drain_delivered();

 private:
  void send_ike(const Bytes& message);
  void send_esp(const Bytes& esp_payload);
  void ensure_sa(const SpdEntry& policy, qkd::SimTime now);
  void flush_established(qkd::SimTime now);
  void protect_and_send(const SpdEntry& policy, const IpPacket& packet,
                        qkd::SimTime now);
  void on_supply_event(const keystore::SupplyEvent& event);
  /// Retriggers negotiation for policies with queued traffic and no SA
  /// (after a supply_replenished event ended a starvation episode).
  /// Returns true if some policy is still stalled (could not start a
  /// negotiation), so the caller keeps the wakeup armed.
  bool wake_stalled_negotiations(qkd::SimTime now);

  Config config_;
  SecurityPolicyDatabase spd_;
  SecurityAssociationDatabase sad_;
  keystore::KeyPool key_pool_;
  IkeDaemon ike_;
  qkd::crypto::Drbg drbg_;
  TransmitFn transmit_;
  Stats stats_;
  bool supply_wakeup_ = false;  // set by on_supply_event, consumed by tick()

  // Policy name -> current outbound SPI.
  std::map<std::string, std::uint32_t> outbound_spi_;
  // Policy name -> negotiation in flight.
  std::map<std::string, bool> negotiating_;
  // Packets awaiting an SA, per policy.
  std::map<std::string, std::deque<IpPacket>> pending_packets_;
  std::vector<IpPacket> delivered_;
};

}  // namespace qkd::ipsec
