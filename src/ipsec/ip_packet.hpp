// Minimal IPv4 packet model for the VPN data path.
//
// The gateways of Fig. 10/11 filter, tunnel and deliver IP packets; this is
// the packet representation they operate on. Only the fields the VPN data
// path needs are modelled (version/IHL, protocol, TTL, addresses, payload,
// header checksum); options are unsupported.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/bytes.hpp"

namespace qkd::ipsec {

/// Dotted-quad helper ("192.1.99.34" <-> 0xC0016322).
std::uint32_t parse_ipv4(const std::string& dotted);
std::string format_ipv4(std::uint32_t address);

struct IpPacket {
  static constexpr std::uint8_t kProtoTcp = 6;
  static constexpr std::uint8_t kProtoUdp = 17;
  static constexpr std::uint8_t kProtoEsp = 50;

  std::uint8_t protocol = kProtoUdp;
  std::uint8_t ttl = 64;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  Bytes payload;

  /// Serializes to wire format with a valid header checksum.
  Bytes serialize() const;

  /// Parses and validates (version, length, checksum); throws
  /// std::invalid_argument on malformed input.
  static IpPacket parse(const Bytes& wire);

  std::size_t total_length() const { return 20 + payload.size(); }
  bool operator==(const IpPacket&) const = default;
};

/// RFC 1071 header checksum over a 20-byte header.
std::uint16_t ipv4_header_checksum(const std::uint8_t* header);

}  // namespace qkd::ipsec
