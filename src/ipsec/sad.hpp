// Security Association Database (RFC 2401, Fig. 10).
//
// Each SA carries the negotiated keys, sequence counters, the anti-replay
// window, and the lifetime counters that drive rollover ("Every time the
// lifetime expires, a new security association must be negotiated ... This
// is sometimes termed 'key rollover'").
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "src/common/bitvector.hpp"
#include "src/common/bytes.hpp"
#include "src/common/sim_clock.hpp"
#include "src/ipsec/spd.hpp"

namespace qkd::ipsec {

struct SecurityAssociation {
  std::uint32_t spi = 0;
  CipherAlgo cipher = CipherAlgo::kAes128;
  QkdMode qkd_mode = QkdMode::kHybrid;

  Bytes encryption_key;            // empty for OTP
  Bytes authentication_key;        // HMAC-SHA1 key (20 bytes)
  qkd::BitVector otp_pool;         // pre-shared pad bits (OTP SAs)
  std::size_t otp_cursor = 0;      // consumed pad bits

  // Outbound state.
  std::uint64_t send_seq = 0;

  // Inbound anti-replay (RFC 2401-style 64-entry sliding window).
  std::uint64_t replay_highest = 0;
  std::uint64_t replay_window = 0;

  // Lifetime accounting.
  qkd::SimTime established_at = 0;
  double lifetime_seconds = 60.0;
  std::uint64_t lifetime_bytes = 0;  // 0 = unlimited
  std::uint64_t bytes_protected = 0;

  bool expired(qkd::SimTime now) const;
  /// The instant the time-based lifetime runs out, or nullopt for SAs
  /// limited only by bytes (their expiry has no schedulable time).
  std::optional<qkd::SimTime> expires_at() const;
  std::size_t otp_bits_available() const {
    return otp_pool.size() - otp_cursor;
  }

  /// Anti-replay acceptance check + window update; returns false on replay
  /// or stale sequence number.
  bool replay_check_and_update(std::uint64_t seq);
};

class SecurityAssociationDatabase {
 public:
  /// Installs an SA (inbound or outbound); replaces any SA with equal SPI.
  void install(SecurityAssociation sa);

  SecurityAssociation* find(std::uint32_t spi);
  const SecurityAssociation* find(std::uint32_t spi) const;

  void remove(std::uint32_t spi);

  /// Expires (removes) all SAs past their lifetime; returns the SPIs removed.
  std::vector<std::uint32_t> expire(qkd::SimTime now);

  /// Earliest time-based expiry across installed SAs — the rollover deadline
  /// an event-driven driver schedules its next wakeup at. nullopt when no SA
  /// has a time lifetime.
  std::optional<qkd::SimTime> next_expiry() const;

  std::size_t size() const { return by_spi_.size(); }

 private:
  std::map<std::uint32_t, SecurityAssociation> by_spi_;
};

}  // namespace qkd::ipsec
