#include "src/ipsec/esp.hpp"

#include <cstring>
#include <stdexcept>

#include "src/crypto/aes.hpp"
#include "src/crypto/des.hpp"
#include "src/crypto/hmac.hpp"

namespace qkd::ipsec {
namespace {

constexpr std::size_t kIcvBytes = 12;  // HMAC-SHA1-96

std::size_t cipher_block_bytes(CipherAlgo algo) {
  switch (algo) {
    case CipherAlgo::kAes128:
    case CipherAlgo::kAes256:
      return 16;
    case CipherAlgo::kTripleDes:
      return 8;
    case CipherAlgo::kOneTimePad:
      return 1;
  }
  return 1;
}

/// RFC 2406 trailer: pad to block size, then pad-length and next-header
/// bytes (we carry next-header = 4, IP-in-IP).
Bytes pad_payload(const Bytes& inner, std::size_t block) {
  Bytes padded = inner;
  const std::size_t with_trailer = inner.size() + 2;
  const std::size_t padding = (block - with_trailer % block) % block;
  for (std::size_t i = 1; i <= padding; ++i)
    padded.push_back(static_cast<std::uint8_t>(i));
  padded.push_back(static_cast<std::uint8_t>(padding));
  padded.push_back(4);  // next header: IP-in-IP
  return padded;
}

std::optional<Bytes> unpad_payload(const Bytes& padded) {
  if (padded.size() < 2) return std::nullopt;
  const std::uint8_t next_header = padded.back();
  const std::uint8_t pad_len = padded[padded.size() - 2];
  if (next_header != 4) return std::nullopt;
  if (padded.size() < 2u + pad_len) return std::nullopt;
  return Bytes(padded.begin(),
               padded.end() - static_cast<std::ptrdiff_t>(2 + pad_len));
}

Bytes encrypt_payload(SecurityAssociation& sa, const Bytes& plain,
                      const Bytes& iv) {
  switch (sa.cipher) {
    case CipherAlgo::kAes128:
    case CipherAlgo::kAes256: {
      const qkd::crypto::Aes aes(sa.encryption_key);
      qkd::crypto::Aes::Block iv_block{};
      std::memcpy(iv_block.data(), iv.data(), 16);
      return qkd::crypto::aes_cbc_encrypt(aes, iv_block, plain);
    }
    case CipherAlgo::kTripleDes: {
      const qkd::crypto::TripleDes des(sa.encryption_key);
      std::uint64_t iv64 = 0;
      for (int i = 0; i < 8; ++i) iv64 = iv64 << 8 | iv[static_cast<std::size_t>(i)];
      return qkd::crypto::des3_cbc_encrypt(des, iv64, plain);
    }
    case CipherAlgo::kOneTimePad:
      throw std::logic_error("encrypt_payload: OTP handled separately");
  }
  throw std::logic_error("encrypt_payload: unknown cipher");
}

Bytes decrypt_payload(SecurityAssociation& sa, const Bytes& cipher,
                      const Bytes& iv) {
  switch (sa.cipher) {
    case CipherAlgo::kAes128:
    case CipherAlgo::kAes256: {
      const qkd::crypto::Aes aes(sa.encryption_key);
      qkd::crypto::Aes::Block iv_block{};
      std::memcpy(iv_block.data(), iv.data(), 16);
      return qkd::crypto::aes_cbc_decrypt(aes, iv_block, cipher);
    }
    case CipherAlgo::kTripleDes: {
      const qkd::crypto::TripleDes des(sa.encryption_key);
      std::uint64_t iv64 = 0;
      for (int i = 0; i < 8; ++i) iv64 = iv64 << 8 | iv[static_cast<std::size_t>(i)];
      return qkd::crypto::des3_cbc_decrypt(des, iv64, cipher);
    }
    case CipherAlgo::kOneTimePad:
      throw std::logic_error("decrypt_payload: OTP handled separately");
  }
  throw std::logic_error("decrypt_payload: unknown cipher");
}

/// XORs `data` with the next data.size() * 8 pad bits of the SA.
std::optional<Bytes> otp_crypt(SecurityAssociation& sa, const Bytes& data) {
  const std::size_t need = data.size() * 8;
  if (sa.otp_bits_available() < need) return std::nullopt;
  const qkd::BitVector pad = sa.otp_pool.slice(sa.otp_cursor, need);
  sa.otp_cursor += need;
  const Bytes pad_bytes = pad.to_bytes();
  Bytes out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i] ^ pad_bytes[i];
  return out;
}

Bytes compute_icv(const SecurityAssociation& sa, const Bytes& header_and_body) {
  const auto mac = qkd::crypto::hmac_sha1(sa.authentication_key,
                                          header_and_body);
  return Bytes(mac.begin(), mac.begin() + kIcvBytes);
}

std::size_t iv_bytes_for(CipherAlgo algo) {
  switch (algo) {
    case CipherAlgo::kAes128:
    case CipherAlgo::kAes256:
      return 16;
    case CipherAlgo::kTripleDes:
      return 8;
    case CipherAlgo::kOneTimePad:
      return 0;
  }
  return 0;
}

}  // namespace

std::optional<Bytes> esp_encapsulate(SecurityAssociation& sa,
                                     const IpPacket& inner,
                                     std::uint64_t iv_seed) {
  const Bytes inner_wire = inner.serialize();
  const std::size_t block = cipher_block_bytes(sa.cipher);
  const Bytes padded = pad_payload(inner_wire, block);

  // Derive a per-packet IV from the seed and sequence number.
  const std::size_t iv_len = iv_bytes_for(sa.cipher);
  Bytes iv;
  for (std::size_t i = 0; i < iv_len; ++i) {
    iv.push_back(static_cast<std::uint8_t>(
        (iv_seed ^ (sa.send_seq * 0x9e3779b97f4a7c15ULL)) >> (8 * (i % 8)) ^
        static_cast<std::uint8_t>(i * 0x45)));
  }

  Bytes ciphertext;
  if (sa.cipher == CipherAlgo::kOneTimePad) {
    auto encrypted = otp_crypt(sa, padded);
    if (!encrypted.has_value()) return std::nullopt;  // pad ran dry
    ciphertext = std::move(*encrypted);
  } else {
    ciphertext = encrypt_payload(sa, padded, iv);
  }

  ++sa.send_seq;
  Bytes out;
  put_u32(out, sa.spi);
  put_u64(out, sa.send_seq);  // first packet carries seq 1
  put_bytes(out, iv);
  put_bytes(out, ciphertext);
  const Bytes icv = compute_icv(sa, out);
  put_bytes(out, icv);
  sa.bytes_protected += inner_wire.size();
  return out;
}

EspResult esp_decapsulate(SecurityAssociation& sa, const Bytes& wire) {
  EspResult result;
  const std::size_t iv_len = iv_bytes_for(sa.cipher);
  if (wire.size() < 4 + 8 + iv_len + kIcvBytes) {
    result.error = EspError::kMalformed;
    return result;
  }

  // Integrity first (HMAC over everything but the ICV).
  const Bytes body(wire.begin(),
                   wire.end() - static_cast<std::ptrdiff_t>(kIcvBytes));
  const Bytes icv(wire.end() - static_cast<std::ptrdiff_t>(kIcvBytes),
                  wire.end());
  if (!qkd::crypto::constant_time_equal(compute_icv(sa, body), icv)) {
    result.error = EspError::kBadIntegrity;
    return result;
  }

  ByteReader reader(body);
  reader.u32();  // SPI (caller already routed on it)
  const std::uint64_t seq = reader.u64();
  if (!sa.replay_check_and_update(seq)) {
    result.error = EspError::kReplay;
    return result;
  }
  const Bytes iv = reader.bytes(iv_len);
  const Bytes ciphertext = reader.bytes(reader.remaining());

  Bytes padded;
  if (sa.cipher == CipherAlgo::kOneTimePad) {
    auto decrypted = otp_crypt(sa, ciphertext);
    if (!decrypted.has_value()) {
      result.error = EspError::kOtpExhausted;
      return result;
    }
    padded = std::move(*decrypted);
  } else {
    if (ciphertext.size() % cipher_block_bytes(sa.cipher) != 0) {
      result.error = EspError::kMalformed;
      return result;
    }
    padded = decrypt_payload(sa, ciphertext, iv);
  }

  const auto inner_wire = unpad_payload(padded);
  if (!inner_wire.has_value()) {
    result.error = EspError::kMalformed;
    return result;
  }
  try {
    result.packet = IpPacket::parse(*inner_wire);
  } catch (const std::invalid_argument&) {
    result.error = EspError::kMalformed;
  }
  return result;
}

}  // namespace qkd::ipsec
