// ESP tunnel-mode traffic processing (RFC 2406 shape), with the paper's
// one-time-pad extension.
//
// Outbound: the inner IP packet is padded, encrypted under the SA's cipher
// (AES-CBC, 3DES-CBC, or the Vernam/one-time-pad extension drawing pad bits
// from QKD key material), wrapped in an ESP header (SPI, sequence number,
// IV) and authenticated with truncated HMAC-SHA1. Inbound reverses the
// process with anti-replay and integrity checks.
//
// Wire layout:  spi(4) | seq(8) | iv(0|8|16) | ciphertext | icv(12)
// For OTP SAs there is no IV; the pad position is implied by lockstep
// consumption on both sides (a real system would carry an offset; lockstep
// keeps the simulation honest because loss is handled above this layer).
#pragma once

#include <optional>

#include "src/common/bytes.hpp"
#include "src/ipsec/ip_packet.hpp"
#include "src/ipsec/sad.hpp"

namespace qkd::ipsec {

/// Why decapsulation failed — distinguished for the Section 7 experiments
/// (auth failures are the visible symptom of mismatched QKD bits).
enum class EspError {
  kUnknownSpi,
  kReplay,
  kBadIntegrity,
  kMalformed,
  kOtpExhausted,
};

struct EspResult {
  std::optional<IpPacket> packet;
  std::optional<EspError> error;
  bool ok() const { return packet.has_value(); }
};

/// Encapsulates `inner` under `sa` (tunnel mode). Advances the SA's sequence
/// number, byte counters and (for OTP) pad cursor. Returns nullopt if an OTP
/// SA has insufficient pad (the key-consumption race of Sec. 2).
std::optional<Bytes> esp_encapsulate(SecurityAssociation& sa,
                                     const IpPacket& inner,
                                     std::uint64_t iv_seed);

/// Decapsulates an ESP payload under `sa` with anti-replay + integrity.
EspResult esp_decapsulate(SecurityAssociation& sa, const Bytes& wire);

}  // namespace qkd::ipsec
