// IKE (RFC 2409 shape) with the paper's quantum extensions (Section 7).
//
// Two phases, simplified to two messages each (aggressive-mode style; the
// paper's contribution is orthogonal to the main-mode message count):
//   Phase 1: cookie + nonce exchange authenticated by a preshared key ->
//            SKEYID (the SA protecting control traffic in Fig. 10).
//   Phase 2 ("quick mode") with the QPFS extension: the initiator offers a
//            number of 1024-bit Qblocks; the responder grants
//            min(offer, available) and both sides withdraw exactly the
//            granted Qblocks from their mirrored key pools and mix them into
//            the keying material:
//              KEYMAT = prf+(SKEYID_d, QBITS | SPIs | Ni | Nr)
//            reproducing Fig. 12's "KEYMAT using 128 bytes QBITS".
//
// The paper's two rarely-exercised IKE aspects are modelled faithfully:
//  * Timeouts: Phase-2 negotiations retransmit and give up on a configured
//    deadline ("less than 10 seconds for Phase 2"), and a blocked channel
//    (Eve's DoS) kills negotiations.
//  * Mismatched secret bits: IKE has no mechanism to detect that the two
//    Qblock pools disagree; the SAs install "successfully" and every ESP
//    packet then fails integrity until the lifetime expires and rollover
//    draws fresh (matching) bits — exactly the blackout the paper describes.
//
// Key access goes exclusively through keystore::KeySupply. Each end owns
// one Qblock lane (by address order); negotiations this end initiates draw
// from its lane, responses draw from the peer's, so simultaneous
// opposite-direction rekeys stay in lockstep. OTP initiations *reserve*
// their pad material when the offer is made (so concurrent offers cannot
// promise the same blocks) and release it on timeout; completed
// negotiations re-request exactly the granted blocks, which the supply
// re-serves in block order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/common/sim_clock.hpp"
#include "src/crypto/drbg.hpp"
#include "src/keystore/key_supply.hpp"
#include "src/ipsec/sad.hpp"
#include "src/ipsec/spd.hpp"

namespace qkd::ipsec {

namespace keystore = qkd::keystore;

struct IkeConfig {
  std::string name = "gw";        // appears in racoon-style log lines
  std::uint32_t local_address = 0;
  std::uint32_t peer_address = 0;
  Bytes preshared_key;
  double phase2_timeout_s = 10.0;  // "less than 10 seconds for Phase 2"
  double retransmit_interval_s = 2.0;
  unsigned max_retransmits = 3;
};

struct IkeStats {
  std::uint64_t phase1_completed = 0;
  std::uint64_t phase2_initiated = 0;
  std::uint64_t phase2_responded = 0;
  std::uint64_t phase2_completed = 0;
  std::uint64_t phase2_timeouts = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t qblocks_consumed = 0;
  std::uint64_t qblocks_reserved = 0;       // earmarked by OTP offers
  std::uint64_t reservations_released = 0;  // offers abandoned on timeout
  std::uint64_t degraded_negotiations = 0;  // hybrid granted 0 Qblocks
  std::uint64_t failed_otp_negotiations = 0;
  std::uint64_t supply_exhausted_events = 0;  // starvation callbacks seen
};

/// A Phase-2 outcome: the freshly installed SA pair.
struct NegotiatedSa {
  std::uint32_t inbound_spi = 0;
  std::uint32_t outbound_spi = 0;
  std::string policy_name;
};

class IkeDaemon {
 public:
  /// `supply` is the daemon's sole source of key material; it must outlive
  /// the daemon. Both peers' supplies must be mirror images (same deposit
  /// stream) for negotiated keys to match.
  IkeDaemon(IkeConfig config, SecurityPolicyDatabase* spd,
            SecurityAssociationDatabase* sad, keystore::KeySupply& supply,
            std::uint64_t seed);
  /// Unsubscribes the daemon's supply callback (the supply outlives the
  /// daemon; without this, events after destruction would call into freed
  /// memory).
  ~IkeDaemon();

  /// Phase 1: returns the initiator's first message. Call once at startup;
  /// feeding the peer's messages through handle_message completes it.
  Bytes begin_phase1(qkd::SimTime now);

  bool phase1_established() const { return skeyid_.has_value(); }

  /// Starts a Phase-2 negotiation for `policy`; returns the initiator
  /// message, or nullopt if Phase 1 is incomplete or (for OTP tunnels) the
  /// local pool cannot cover the request.
  std::optional<Bytes> initiate_phase2(const SpdEntry& policy,
                                       qkd::SimTime now);

  /// Processes an inbound IKE message; returns any messages to transmit.
  std::vector<Bytes> handle_message(const Bytes& wire, qkd::SimTime now);

  /// Drives timers (retransmits, negotiation expiry); returns retransmitted
  /// messages to send.
  std::vector<Bytes> poll(qkd::SimTime now);

  /// Earliest instant poll() would act — the next retransmit or negotiation
  /// deadline across pending Phase-2 exchanges. nullopt when nothing is
  /// pending; an event-driven driver schedules its next poll() here instead
  /// of polling on a fixed tick.
  std::optional<qkd::SimTime> next_timer() const;

  /// SAs installed since the last drain (the gateway wires these up).
  std::vector<NegotiatedSa> drain_established();

  /// Policy names whose Phase-2 negotiations timed out since the last drain
  /// (the gateway clears its in-flight marker and may retry).
  std::vector<std::string> drain_timed_out();

  const IkeStats& stats() const { return stats_; }

 private:
  struct PendingNegotiation {
    SpdEntry policy;
    std::uint64_t exchange_id = 0;
    std::uint32_t initiator_spi = 0;
    Bytes nonce_i;
    Bytes last_message;
    qkd::SimTime started_at = 0;
    qkd::SimTime last_send = 0;
    unsigned retransmits = 0;
    /// OTP offers earmark keymat + pad material at initiate time; the
    /// reservation is released (blocks re-served in order) at response or
    /// timeout.
    std::optional<std::uint64_t> reserved_key_id;
  };

  /// Releases a pending negotiation's earmark, if any.
  void release_reservation(PendingNegotiation& pending);

  unsigned initiator_lane() const;
  unsigned responder_lane() const;

  Bytes derive_keymat(const qkd::BitVector& qbits, std::uint32_t spi_i,
                      std::uint32_t spi_r, const Bytes& nonce_i,
                      const Bytes& nonce_r, std::size_t bytes_needed) const;

  void install_sa_pair(const SpdEntry& policy, std::uint32_t spi_i,
                       std::uint32_t spi_r, const Bytes& keymat,
                       const qkd::BitVector& otp_i_to_r,
                       const qkd::BitVector& otp_r_to_i, bool is_initiator,
                       qkd::SimTime now);

  void log_line(const std::string& file_func, const std::string& message) const;

  IkeConfig config_;
  SecurityPolicyDatabase* spd_;
  SecurityAssociationDatabase* sad_;
  keystore::KeySupply& supply_;
  std::uint64_t supply_subscription_ = 0;
  qkd::crypto::Drbg drbg_;

  std::optional<Bytes> skeyid_;
  Bytes phase1_nonce_i_;  // kept by the initiator between messages
  bool phase1_initiator_ = false;

  std::map<std::uint64_t, PendingNegotiation> pending_;
  // Responder replay cache: exchange id -> cached response, so retransmitted
  // requests do not double-withdraw Qblocks.
  std::map<std::uint64_t, Bytes> responded_;
  std::vector<NegotiatedSa> established_;
  std::vector<std::string> timed_out_;
  IkeStats stats_;
};

}  // namespace qkd::ipsec
