#include "src/ipsec/gateway.hpp"

#include <algorithm>

#include "src/common/logging.hpp"

namespace qkd::ipsec {
namespace {

IkeConfig make_ike_config(const VpnGateway::Config& config) {
  IkeConfig ike;
  ike.name = config.name;
  ike.local_address = config.address;
  ike.peer_address = config.peer_address;
  ike.preshared_key = config.preshared_key;
  ike.phase2_timeout_s = config.phase2_timeout_s;
  return ike;
}

}  // namespace

VpnGateway::VpnGateway(Config config, std::uint64_t seed)
    : config_(config),
      key_pool_(config.name),
      ike_(make_ike_config(config), &spd_, &sad_, key_pool_, seed),
      drbg_(seed ^ 0x6a7e3a7eULL) {
  key_pool_.set_low_water_bits(config_.supply_low_water_bits);
  key_pool_.subscribe([this](const keystore::SupplyEvent& event) {
    on_supply_event(event);
  });
}

void VpnGateway::on_supply_event(const keystore::SupplyEvent& event) {
  switch (event.kind) {
    case keystore::SupplyEventKind::kLowWater:
      ++stats_.supply_low_water;
      break;
    case keystore::SupplyEventKind::kExhausted:
      ++stats_.supply_exhausted;
      break;
    case keystore::SupplyEventKind::kReplenished:
      ++stats_.supply_replenished;
      // Fresh key after starvation: wake stalled negotiations on the next
      // tick (deposits arrive outside packet processing, with no timestamp
      // in hand).
      supply_wakeup_ = true;
      break;
  }
}

bool VpnGateway::wake_stalled_negotiations(qkd::SimTime now) {
  bool still_stalled = false;
  for (const auto& [policy_name, queue] : pending_packets_) {
    if (queue.empty()) continue;
    if (negotiating_[policy_name]) continue;
    if (outbound_spi_.count(policy_name) > 0) continue;
    for (const auto& entry : spd_.entries()) {
      if (entry.name == policy_name && entry.action == PolicyAction::kProtect)
        ensure_sa(entry, now);
    }
    // The supply may have come back with less than this policy needs (an
    // OTP offer wants several Qblocks in one lane); report it so the
    // caller keeps retrying rather than waiting for another low-water
    // crossing that may never happen.
    if (!negotiating_[policy_name] && outbound_spi_.count(policy_name) == 0)
      still_stalled = true;
  }
  return still_stalled;
}

void VpnGateway::send_ike(const Bytes& message) {
  if (!transmit_) return;
  IpPacket outer;
  outer.protocol = IpPacket::kProtoUdp;  // IKE rides UDP/500
  outer.src = config_.address;
  outer.dst = config_.peer_address;
  outer.payload = message;
  transmit_(outer.serialize());
}

void VpnGateway::send_esp(const Bytes& esp_payload) {
  if (!transmit_) return;
  IpPacket outer;
  outer.protocol = IpPacket::kProtoEsp;
  outer.src = config_.address;
  outer.dst = config_.peer_address;
  outer.payload = esp_payload;
  transmit_(outer.serialize());
  ++stats_.esp_sent;
}

void VpnGateway::start(qkd::SimTime now) { send_ike(ike_.begin_phase1(now)); }

void VpnGateway::ensure_sa(const SpdEntry& policy, qkd::SimTime now) {
  if (outbound_spi_.count(policy.name) > 0) return;
  if (negotiating_[policy.name]) return;
  const auto msg = ike_.initiate_phase2(policy, now);
  if (msg.has_value()) {
    negotiating_[policy.name] = true;
    send_ike(*msg);
  }
}

void VpnGateway::protect_and_send(const SpdEntry& policy,
                                  const IpPacket& packet, qkd::SimTime now) {
  auto it = outbound_spi_.find(policy.name);
  SecurityAssociation* sa =
      it == outbound_spi_.end() ? nullptr : sad_.find(it->second);
  if (sa == nullptr) {
    // No SA yet: queue and (re)negotiate.
    auto& queue = pending_packets_[policy.name];
    if (queue.size() >= config_.max_pending_packets) {
      ++stats_.dropped_queue_full;
    } else {
      queue.push_back(packet);
    }
    ensure_sa(policy, now);
    return;
  }
  const auto esp = esp_encapsulate(*sa, packet, drbg_.next_u64());
  if (!esp.has_value()) {
    // OTP pad ran dry mid-SA: force rollover.
    ++stats_.otp_exhausted;
    sad_.remove(sa->spi);
    outbound_spi_.erase(policy.name);
    auto& queue = pending_packets_[policy.name];
    if (queue.size() < config_.max_pending_packets) queue.push_back(packet);
    ensure_sa(policy, now);
    return;
  }
  send_esp(*esp);
}

void VpnGateway::submit_plaintext(const IpPacket& packet, qkd::SimTime now) {
  const SpdEntry* policy = spd_.lookup(packet);
  if (policy == nullptr) {
    ++stats_.dropped_no_policy;
    return;
  }
  switch (policy->action) {
    case PolicyAction::kBypass: {
      if (transmit_) transmit_(packet.serialize());
      ++stats_.bypassed;
      return;
    }
    case PolicyAction::kDiscard:
      ++stats_.discarded_policy;
      return;
    case PolicyAction::kProtect:
      protect_and_send(*policy, packet, now);
      return;
  }
}

void VpnGateway::deliver_from_network(const Bytes& outer_wire,
                                      qkd::SimTime now) {
  IpPacket outer;
  try {
    outer = IpPacket::parse(outer_wire);
  } catch (const std::invalid_argument&) {
    return;  // line noise
  }

  if (outer.protocol == IpPacket::kProtoUdp) {
    // IKE control traffic.
    for (const Bytes& reply : ike_.handle_message(outer.payload, now))
      send_ike(reply);
    flush_established(now);
    return;
  }

  if (outer.protocol == IpPacket::kProtoEsp) {
    ++stats_.esp_received;
    if (outer.payload.size() < 4) return;
    const std::uint32_t spi =
        static_cast<std::uint32_t>(outer.payload[0]) << 24 |
        static_cast<std::uint32_t>(outer.payload[1]) << 16 |
        static_cast<std::uint32_t>(outer.payload[2]) << 8 | outer.payload[3];
    SecurityAssociation* sa = sad_.find(spi);
    if (sa == nullptr) {
      ++stats_.unknown_spi;
      return;
    }
    const EspResult result = esp_decapsulate(*sa, outer.payload);
    if (result.ok()) {
      delivered_.push_back(*result.packet);
      ++stats_.delivered;
      return;
    }
    switch (*result.error) {
      case EspError::kBadIntegrity:
        ++stats_.auth_failures;
        break;
      case EspError::kReplay:
        ++stats_.replay_drops;
        break;
      case EspError::kOtpExhausted:
        ++stats_.otp_exhausted;
        break;
      default:
        break;
    }
    return;
  }

  // Anything else arriving in the clear is delivered as-is (bypass traffic).
  delivered_.push_back(outer);
  ++stats_.delivered;
}

void VpnGateway::flush_established(qkd::SimTime now) {
  for (const NegotiatedSa& negotiated : ike_.drain_established()) {
    outbound_spi_[negotiated.policy_name] = negotiated.outbound_spi;
    negotiating_[negotiated.policy_name] = false;
    auto queue_it = pending_packets_.find(negotiated.policy_name);
    if (queue_it == pending_packets_.end()) continue;
    // Flush packets that were waiting for this SA.
    std::deque<IpPacket> queue;
    queue.swap(queue_it->second);
    for (const IpPacket& packet : queue) submit_plaintext(packet, now);
  }
}

void VpnGateway::tick(qkd::SimTime now) {
  // SA lifetime expiry -> rollover.
  const auto removed = sad_.expire(now);
  if (!removed.empty()) {
    for (auto it = outbound_spi_.begin(); it != outbound_spi_.end();) {
      const bool gone =
          std::find(removed.begin(), removed.end(), it->second) != removed.end();
      if (gone) {
        ++stats_.sa_rollovers;
        QKD_LOG(kInfo) << config_.name
                       << " racoon: INFO: pfkey.c:1365:pk_recvexpire(): "
                          "IPsec-SA expired: ESP/Tunnel spi=" << it->second;
        const std::string policy_name = it->first;
        it = outbound_spi_.erase(it);
        // Proactively renegotiate so traffic stalls are brief.
        for (const auto& entry : spd_.entries()) {
          if (entry.name == policy_name && entry.action == PolicyAction::kProtect)
            ensure_sa(entry, now);
        }
      } else {
        ++it;
      }
    }
  }
  for (const Bytes& retransmit : ike_.poll(now)) send_ike(retransmit);
  // Timed-out negotiations release their in-flight marker so the next
  // packet (or a queued one) can retrigger Phase 2.
  for (const std::string& policy_name : ike_.drain_timed_out()) {
    negotiating_[policy_name] = false;
    auto queue_it = pending_packets_.find(policy_name);
    if (queue_it == pending_packets_.end() || queue_it->second.empty())
      continue;
    for (const auto& entry : spd_.entries()) {
      if (entry.name == policy_name && entry.action == PolicyAction::kProtect)
        ensure_sa(entry, now);
    }
  }
  // A replenished supply ends a starvation episode: retry negotiations that
  // stalled waiting for key, without waiting for fresh traffic. The wakeup
  // stays armed while any policy remains stalled — kReplenished is
  // edge-triggered on the low-water crossing, and the deposit that finally
  // covers a multi-Qblock OTP offer may not produce another crossing.
  if (supply_wakeup_) supply_wakeup_ = wake_stalled_negotiations(now);
  flush_established(now);
}

std::optional<qkd::SimTime> VpnGateway::next_deadline(qkd::SimTime now) const {
  if (supply_wakeup_) return now;  // replenished supply: wake immediately
  std::optional<qkd::SimTime> earliest = sad_.next_expiry();
  const auto ike_timer = ike_.next_timer();
  if (ike_timer.has_value() &&
      (!earliest.has_value() || *ike_timer < *earliest))
    earliest = ike_timer;
  if (earliest.has_value() && *earliest < now) return now;  // overdue
  return earliest;
}

std::vector<IpPacket> VpnGateway::drain_delivered() {
  std::vector<IpPacket> out;
  out.swap(delivered_);
  return out;
}

}  // namespace qkd::ipsec
