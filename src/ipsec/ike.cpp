#include "src/ipsec/ike.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "src/common/logging.hpp"
#include "src/crypto/hmac.hpp"

namespace qkd::ipsec {
namespace {

enum class MsgType : std::uint8_t {
  kPhase1Init = 1,
  kPhase1Resp = 2,
  kPhase2Init = 3,
  kPhase2Resp = 4,
};

constexpr std::size_t kNonceBytes = 16;

void put_spd_protection(Bytes& out, const SpdEntry& policy) {
  put_u8(out, static_cast<std::uint8_t>(policy.cipher));
  put_u8(out, static_cast<std::uint8_t>(policy.qkd_mode));
  put_u32(out, policy.qblocks_per_rekey);
}

}  // namespace

IkeDaemon::IkeDaemon(IkeConfig config, SecurityPolicyDatabase* spd,
                     SecurityAssociationDatabase* sad,
                     keystore::KeySupply& supply, std::uint64_t seed)
    : config_(std::move(config)), spd_(spd), sad_(sad), supply_(supply),
      drbg_(seed) {
  if (spd_ == nullptr || sad_ == nullptr)
    throw std::invalid_argument("IkeDaemon: null database");
  // Starvation is an event, not a poll: count the supply's exhaustion
  // callbacks so an operator can tell "IKE degraded" apart from "IKE never
  // asked" (the gateway layer reacts to the companion replenish event).
  supply_subscription_ =
      supply_.subscribe([this](const keystore::SupplyEvent& event) {
        if (event.kind == keystore::SupplyEventKind::kExhausted)
          ++stats_.supply_exhausted_events;
      });
}

IkeDaemon::~IkeDaemon() { supply_.unsubscribe(supply_subscription_); }

void IkeDaemon::release_reservation(PendingNegotiation& pending) {
  if (!pending.reserved_key_id.has_value()) return;
  supply_.release(*pending.reserved_key_id);
  pending.reserved_key_id.reset();
}

void IkeDaemon::log_line(const std::string& file_func,
                         const std::string& message) const {
  QKD_LOG(kInfo) << config_.name << " racoon: INFO: " << file_func << ": "
                 << message;
}

unsigned IkeDaemon::initiator_lane() const {
  // Qblock lane owned by negotiations this end initiates (see KeyPool docs).
  return config_.local_address < config_.peer_address ? 0u : 1u;
}

unsigned IkeDaemon::responder_lane() const {
  return config_.peer_address < config_.local_address ? 0u : 1u;
}

Bytes IkeDaemon::begin_phase1(qkd::SimTime) {
  phase1_initiator_ = true;
  phase1_nonce_i_ = drbg_.generate(kNonceBytes);
  Bytes msg;
  put_u8(msg, static_cast<std::uint8_t>(MsgType::kPhase1Init));
  put_bytes(msg, phase1_nonce_i_);
  log_line("isakmp.c:840:isakmp_ph1begin_i()",
           "initiate new phase 1 negotiation: " +
               format_ipv4(config_.local_address) + "[500]<=>" +
               format_ipv4(config_.peer_address) + "[500]");
  return msg;
}

std::optional<Bytes> IkeDaemon::initiate_phase2(const SpdEntry& policy,
                                                qkd::SimTime now) {
  if (!skeyid_.has_value()) return std::nullopt;
  PendingNegotiation pending;
  // An OTP tunnel cannot come up without pad material: reserve the keymat
  // Qblocks plus both pad directions when the offer is made, so concurrent
  // offers can never promise the same blocks. The reservation is released
  // at response time (the granted blocks are then re-requested, and the
  // supply re-serves exactly them) or on timeout.
  if (policy.qkd_mode == QkdMode::kOtp) {
    auto earmark = supply_.reserve_qblocks(3 * policy.qblocks_per_rekey,
                                           initiator_lane(),
                                           "IkeDaemon::initiate_phase2");
    if (!earmark.has_value()) {
      ++stats_.failed_otp_negotiations;
      log_line("bbn-qkd-qpd.c:903:qke_offer()",
               "cannot offer " + std::to_string(policy.qblocks_per_rekey) +
                   " Qblocks: pool has " +
                   std::to_string(
                       supply_.available_qblocks(initiator_lane())));
      return std::nullopt;
    }
    // key_id 0 is the "no block" sentinel (a zero-Qblock policy reserves
    // nothing) — there is nothing to settle later.
    if (earmark->key_id != 0) {
      pending.reserved_key_id = earmark->key_id;
      stats_.qblocks_reserved += 3 * policy.qblocks_per_rekey;
    }
  }

  pending.policy = policy;
  pending.exchange_id = drbg_.next_u64();
  pending.initiator_spi = drbg_.next_u32() | 0x10000000u;
  pending.nonce_i = drbg_.generate(kNonceBytes);
  pending.started_at = now;
  pending.last_send = now;

  Bytes msg;
  put_u8(msg, static_cast<std::uint8_t>(MsgType::kPhase2Init));
  put_u64(msg, pending.exchange_id);
  put_u32(msg, pending.initiator_spi);
  put_varint(msg, policy.name.size());
  for (char c : policy.name) msg.push_back(static_cast<std::uint8_t>(c));
  put_spd_protection(msg, policy);
  put_bytes(msg, pending.nonce_i);
  pending.last_message = msg;
  pending_[pending.exchange_id] = pending;
  ++stats_.phase2_initiated;
  log_line("isakmp.c:939:isakmp_ph2begin_i()",
           "initiate new phase 2 negotiation: " +
               format_ipv4(config_.local_address) + "[0]<=>" +
               format_ipv4(config_.peer_address) + "[0]");
  return msg;
}

Bytes IkeDaemon::derive_keymat(const qkd::BitVector& qbits,
                               std::uint32_t spi_i, std::uint32_t spi_r,
                               const Bytes& nonce_i, const Bytes& nonce_r,
                               std::size_t bytes_needed) const {
  // SKEYID_d = prf(SKEYID, 0x00): the derivation child of the Phase-1 key.
  const Bytes zero{0x00};
  const auto skeyid_d_digest = qkd::crypto::hmac_sha1(*skeyid_, zero);
  const Bytes skeyid_d(skeyid_d_digest.begin(), skeyid_d_digest.end());

  // "we have included distilled QKD bits into the IKE Phase 2 hash":
  // seed = QBITS | spi_i | spi_r | Ni | Nr.
  Bytes seed = qbits.to_bytes();
  put_u32(seed, spi_i);
  put_u32(seed, spi_r);
  put_bytes(seed, nonce_i);
  put_bytes(seed, nonce_r);
  return qkd::crypto::prf_plus(skeyid_d, seed, bytes_needed);
}

void IkeDaemon::install_sa_pair(const SpdEntry& policy, std::uint32_t spi_i,
                                std::uint32_t spi_r, const Bytes& keymat,
                                const qkd::BitVector& otp_i_to_r,
                                const qkd::BitVector& otp_r_to_i,
                                bool is_initiator, qkd::SimTime now) {
  const std::size_t ek = cipher_key_bytes(policy.cipher);
  const std::size_t ak = 20;  // HMAC-SHA1 key
  // keymat layout: enc(i->r) | auth(i->r) | enc(r->i) | auth(r->i).
  auto key_slice = [&](std::size_t offset, std::size_t len) {
    return Bytes(keymat.begin() + static_cast<std::ptrdiff_t>(offset),
                 keymat.begin() + static_cast<std::ptrdiff_t>(offset + len));
  };

  auto make_sa = [&](std::uint32_t spi, std::size_t enc_off,
                     std::size_t auth_off, const qkd::BitVector& otp) {
    SecurityAssociation sa;
    sa.spi = spi;
    sa.cipher = policy.cipher;
    sa.qkd_mode = policy.qkd_mode;
    if (ek > 0) sa.encryption_key = key_slice(enc_off, ek);
    sa.authentication_key = key_slice(auth_off, ak);
    sa.otp_pool = otp;
    sa.established_at = now;
    sa.lifetime_seconds = policy.lifetime_seconds;
    sa.lifetime_bytes = policy.lifetime_kilobytes * 1024;
    return sa;
  };

  const SecurityAssociation i_to_r =
      make_sa(spi_r, 0, ek, otp_i_to_r);  // receiver picked spi_r
  const SecurityAssociation r_to_i = make_sa(spi_i, ek + ak, 2 * ek + ak,
                                             otp_r_to_i);

  // Each side installs both; which is outbound depends on the role.
  sad_->install(i_to_r);
  sad_->install(r_to_i);

  NegotiatedSa result;
  result.policy_name = policy.name;
  result.inbound_spi = is_initiator ? spi_i : spi_r;
  result.outbound_spi = is_initiator ? spi_r : spi_i;
  established_.push_back(result);

  const std::string src = format_ipv4(is_initiator ? config_.local_address
                                                   : config_.peer_address);
  const std::string dst = format_ipv4(is_initiator ? config_.peer_address
                                                   : config_.local_address);
  std::ostringstream spi_text;
  spi_text << "IPsec-SA established: ESP/Tunnel " << src << "->" << dst
           << " spi=" << spi_r << "(0x" << std::hex << spi_r << ")";
  log_line("pfkey.c:1107:pk_recvupdate()", spi_text.str());
}

std::vector<Bytes> IkeDaemon::handle_message(const Bytes& wire,
                                             qkd::SimTime now) {
  std::vector<Bytes> out;
  if (wire.empty()) return out;
  ByteReader reader(wire);
  const auto type = static_cast<MsgType>(reader.u8());

  switch (type) {
    case MsgType::kPhase1Init: {
      const Bytes nonce_i = reader.bytes(kNonceBytes);
      const Bytes nonce_r = drbg_.generate(kNonceBytes);
      Bytes seed = nonce_i;
      put_bytes(seed, nonce_r);
      const auto skeyid = qkd::crypto::hmac_sha1(config_.preshared_key, seed);
      skeyid_ = Bytes(skeyid.begin(), skeyid.end());
      ++stats_.phase1_completed;
      log_line("isakmp.c:1046:isakmp_ph1begin_r()",
               "respond new phase 1 negotiation: " +
                   format_ipv4(config_.local_address) + "[500]<=>" +
                   format_ipv4(config_.peer_address) + "[500]");
      Bytes resp;
      put_u8(resp, static_cast<std::uint8_t>(MsgType::kPhase1Resp));
      put_bytes(resp, nonce_r);
      out.push_back(resp);
      break;
    }

    case MsgType::kPhase1Resp: {
      if (!phase1_initiator_) break;  // stray
      const Bytes nonce_r = reader.bytes(kNonceBytes);
      Bytes seed = phase1_nonce_i_;
      put_bytes(seed, nonce_r);
      const auto skeyid = qkd::crypto::hmac_sha1(config_.preshared_key, seed);
      skeyid_ = Bytes(skeyid.begin(), skeyid.end());
      ++stats_.phase1_completed;
      break;
    }

    case MsgType::kPhase2Init: {
      if (!skeyid_.has_value()) break;  // cannot respond yet
      const std::uint64_t exchange_id = reader.u64();
      // Retransmitted request: replay the cached answer, don't re-withdraw.
      if (auto it = responded_.find(exchange_id); it != responded_.end()) {
        out.push_back(it->second);
        break;
      }
      const std::uint32_t spi_i = reader.u32();
      const std::uint64_t name_len = reader.varint();
      const Bytes name_bytes = reader.bytes(name_len);
      const std::string policy_name(name_bytes.begin(), name_bytes.end());
      const auto cipher = static_cast<CipherAlgo>(reader.u8());
      const auto qkd_mode = static_cast<QkdMode>(reader.u8());
      const std::uint32_t offered_qblocks = reader.u32();
      const Bytes nonce_i = reader.bytes(kNonceBytes);

      log_line("isakmp.c:1046:isakmp_ph2begin_r()",
               "respond new phase 2 negotiation: " +
                   format_ipv4(config_.local_address) + "[0]<=>" +
                   format_ipv4(config_.peer_address) + "[0]");
      log_line("proposal.c:1023:set_proposal_from_policy()",
               "RESPONDER setting QPFS encmodesv 1");

      // Grant what the pool can cover. For OTP, two directions of pad are
      // needed on top of the keymat Qblocks.
      std::uint32_t granted = offered_qblocks;
      std::size_t otp_qblocks = 0;
      if (qkd_mode == QkdMode::kOtp) otp_qblocks = 2 * offered_qblocks;
      if (qkd_mode != QkdMode::kNone) {
        const std::size_t available =
            supply_.available_qblocks(responder_lane());
        if (available < granted + otp_qblocks) {
          granted = static_cast<std::uint32_t>(
              available >= otp_qblocks ? available - otp_qblocks : 0);
        }
      } else {
        granted = 0;
      }
      if (qkd_mode == QkdMode::kOtp && granted == 0) {
        ++stats_.failed_otp_negotiations;
        log_line("bbn-qkd-qpd.c:1101:qke_create_reply()",
                 "reject: OTP tunnel but pool empty");
        break;  // no response: the initiator will time out (paper Sec. 7)
      }

      constexpr const char* kRespondSite =
          "IkeDaemon::handle_message(Phase2Init)";
      qkd::BitVector qbits, otp_i_to_r, otp_r_to_i;
      if (granted > 0) {
        qbits = supply_.request_qblocks(granted, responder_lane(),
                                        kRespondSite)->bits;
        stats_.qblocks_consumed += granted;
      } else if (qkd_mode != QkdMode::kNone) {
        ++stats_.degraded_negotiations;
      }
      if (qkd_mode == QkdMode::kOtp) {
        otp_i_to_r = supply_.request_qblocks(granted, responder_lane(),
                                             kRespondSite)->bits;
        otp_r_to_i = supply_.request_qblocks(granted, responder_lane(),
                                             kRespondSite)->bits;
        stats_.qblocks_consumed += 2 * granted;
      }

      constexpr std::size_t kQblockBits = keystore::KeySupply::kQblockBits;
      std::ostringstream reply_text;
      reply_text << "reply " << granted << " Qblocks "
                 << granted * kQblockBits << " bits " << std::fixed
                 << std::setprecision(6)
                 << static_cast<double>(granted * kQblockBits)
                 << " entropy (offer is " << offered_qblocks << " Qblocks)";
      log_line("bbn-qkd-qpd.c:1047:qke_create_reply()", reply_text.str());

      const std::uint32_t spi_r = drbg_.next_u32() | 0x08000000u;
      const Bytes nonce_r = drbg_.generate(kNonceBytes);

      // Reconstruct the policy from the proposal (the responder's own SPD
      // would normally be consulted; proposal fields win for simplicity).
      SpdEntry policy;
      policy.name = policy_name;
      policy.cipher = cipher;
      policy.qkd_mode = qkd_mode;
      policy.qblocks_per_rekey = offered_qblocks;
      if (const SpdEntry* own = nullptr; true) {
        for (const auto& entry : spd_->entries()) {
          if (entry.name == policy_name) {
            own = &entry;
            break;
          }
        }
        if (own != nullptr) {
          policy.lifetime_seconds = own->lifetime_seconds;
          policy.lifetime_kilobytes = own->lifetime_kilobytes;
        }
      }

      const std::size_t keymat_bytes =
          2 * (cipher_key_bytes(cipher) + 20);
      const Bytes keymat = derive_keymat(qbits, spi_i, spi_r, nonce_i,
                                         nonce_r, keymat_bytes);
      log_line("oakley.c:473:oakley_compute_keymat_x()",
               "KEYMAT using " + std::to_string(qbits.size() / 8) +
                   " bytes QBITS");
      install_sa_pair(policy, spi_i, spi_r, keymat, otp_i_to_r, otp_r_to_i,
                      /*is_initiator=*/false, now);
      ++stats_.phase2_responded;

      Bytes resp;
      put_u8(resp, static_cast<std::uint8_t>(MsgType::kPhase2Resp));
      put_u64(resp, exchange_id);
      put_u32(resp, spi_r);
      put_u32(resp, granted);
      put_bytes(resp, nonce_r);
      responded_[exchange_id] = resp;
      out.push_back(resp);
      break;
    }

    case MsgType::kPhase2Resp: {
      const std::uint64_t exchange_id = reader.u64();
      auto it = pending_.find(exchange_id);
      if (it == pending_.end()) break;  // duplicate or expired
      PendingNegotiation pending = it->second;
      pending_.erase(it);
      const std::uint32_t spi_r = reader.u32();
      const std::uint32_t granted = reader.u32();
      const Bytes nonce_r = reader.bytes(kNonceBytes);

      // Release the offer-time earmark (if any): the supply re-serves the
      // released blocks lowest-index-first, so the requests below withdraw
      // exactly the blocks the responder consumed — even when the grant is
      // smaller than the offer.
      release_reservation(pending);

      constexpr const char* kInitiateSite =
          "IkeDaemon::handle_message(Phase2Resp)";
      qkd::BitVector qbits, otp_i_to_r, otp_r_to_i;
      if (granted > 0) {
        auto withdrawn =
            supply_.request_qblocks(granted, initiator_lane(), kInitiateSite);
        if (!withdrawn.has_value()) break;  // pools out of step: negotiation dies
        qbits = std::move(withdrawn->bits);
        stats_.qblocks_consumed += granted;
      } else if (pending.policy.qkd_mode != QkdMode::kNone) {
        ++stats_.degraded_negotiations;
      }
      if (pending.policy.qkd_mode == QkdMode::kOtp) {
        auto pad_i =
            supply_.request_qblocks(granted, initiator_lane(), kInitiateSite);
        auto pad_r =
            supply_.request_qblocks(granted, initiator_lane(), kInitiateSite);
        if (!pad_i || !pad_r) break;
        otp_i_to_r = std::move(pad_i->bits);
        otp_r_to_i = std::move(pad_r->bits);
        stats_.qblocks_consumed += 2 * granted;
      }

      const std::size_t keymat_bytes =
          2 * (cipher_key_bytes(pending.policy.cipher) + 20);
      const Bytes keymat =
          derive_keymat(qbits, pending.initiator_spi, spi_r, pending.nonce_i,
                        nonce_r, keymat_bytes);
      log_line("oakley.c:473:oakley_compute_keymat_x()",
               "KEYMAT using " + std::to_string(qbits.size() / 8) +
                   " bytes QBITS");
      install_sa_pair(pending.policy, pending.initiator_spi, spi_r, keymat,
                      otp_i_to_r, otp_r_to_i, /*is_initiator=*/true, now);
      ++stats_.phase2_completed;
      break;
    }
  }
  return out;
}

std::vector<Bytes> IkeDaemon::poll(qkd::SimTime now) {
  std::vector<Bytes> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingNegotiation& pending = it->second;
    const double age = qkd::sim_to_seconds(now - pending.started_at);
    if (age >= config_.phase2_timeout_s ||
        pending.retransmits > config_.max_retransmits) {
      ++stats_.phase2_timeouts;
      // Hand any offer-time earmark back to the supply: an abandoned offer
      // must not strand key material (the peer never consumed its mirror).
      if (pending.reserved_key_id.has_value()) ++stats_.reservations_released;
      release_reservation(pending);
      log_line("isakmp.c:1640:isakmp_ph2expire()",
               "phase 2 negotiation timed out for " + pending.policy.name);
      timed_out_.push_back(pending.policy.name);
      it = pending_.erase(it);
      continue;
    }
    const double since_send = qkd::sim_to_seconds(now - pending.last_send);
    if (since_send >= config_.retransmit_interval_s) {
      pending.last_send = now;
      ++pending.retransmits;
      ++stats_.retransmits;
      out.push_back(pending.last_message);
    }
    ++it;
  }
  return out;
}

std::optional<qkd::SimTime> IkeDaemon::next_timer() const {
  std::optional<qkd::SimTime> earliest;
  const auto consider = [&earliest](qkd::SimTime t) {
    if (!earliest.has_value() || t < *earliest) earliest = t;
  };
  // Ceiling conversions: poll() compares ages in the seconds domain, so a
  // truncated deadline would be one tick too early to act on.
  for (const auto& [exchange_id, pending] : pending_) {
    consider(pending.started_at +
             qkd::seconds_to_sim_ceil(config_.phase2_timeout_s));
    consider(pending.last_send +
             qkd::seconds_to_sim_ceil(config_.retransmit_interval_s));
  }
  return earliest;
}

std::vector<NegotiatedSa> IkeDaemon::drain_established() {
  std::vector<NegotiatedSa> out;
  out.swap(established_);
  return out;
}

std::vector<std::string> IkeDaemon::drain_timed_out() {
  std::vector<std::string> out;
  out.swap(timed_out_);
  return out;
}

}  // namespace qkd::ipsec
