// KeyProducer plumbing: a QkdLinkSession as a single-stream producer, sink
// attachment/mirroring, and the LinkKeyService as an N-stream producer —
// everything a consumer needs without ever touching BatchResult.
#include "src/keystore/key_producer.hpp"

#include <gtest/gtest.h>

#include "src/keystore/key_pool.hpp"
#include "src/network/key_service.hpp"
#include "src/qkd/engine.hpp"

namespace qkd::keystore {
namespace {

/// Small frames so a test batch is cheap but still distills (~100 bits).
qkd::proto::QkdLinkConfig small_config() {
  qkd::proto::QkdLinkConfig config;
  config.frame_slots = 1 << 19;
  config.auth_replenish_bits = 64;
  return config;
}

TEST(KeyProducer, SessionDeliversIntoItsOwnSupplyByDefault) {
  qkd::proto::QkdLinkSession session(small_config(), 11);
  KeyProducer& producer = session;
  ASSERT_EQ(producer.supply_count(), 1u);
  session.produce_batches(3);
  EXPECT_GT(session.totals().accepted_batches, 0u);
  EXPECT_EQ(producer.supply(0).available_bits(),
            session.totals().distilled_bits);
  EXPECT_THROW(producer.supply(1), std::out_of_range);
}

TEST(KeyProducer, AdvanceMatchesProducedBatchesBitForBit) {
  // Time-based production and count-based production run the same
  // pipeline: equal simulated time => identical supply content.
  qkd::proto::QkdLinkSession by_time(small_config(), 12);
  qkd::proto::QkdLinkSession by_count(small_config(), 12);
  const double frame_s =
      by_time.link().frame_duration_s(by_time.config().frame_slots);
  by_time.advance(3.4 * frame_s);  // 3 whole frames, 0.4 owed
  by_count.produce_batches(3);
  EXPECT_EQ(by_time.totals().batches, 3u);
  EXPECT_EQ(by_time.supply(0).take_all().bits,
            by_count.supply(0).take_all().bits);
}

TEST(KeyProducer, AttachedSinksMirrorTheStreamAndIdleTheOwnSupply) {
  qkd::proto::QkdLinkSession session(small_config(), 13);
  KeyPool alice("alice-gw"), bob("bob-gw");
  session.attach_sink(0, alice);
  session.attach_sink(0, bob);
  session.produce_batches(3);
  ASSERT_GT(session.totals().distilled_bits, 0u);
  // Both sinks saw the identical deposit stream; the producer-owned supply
  // stayed idle (key is delivered, not archived).
  EXPECT_EQ(alice.stats().bits_deposited, session.totals().distilled_bits);
  EXPECT_EQ(alice.take_all().bits, bob.take_all().bits);
  EXPECT_EQ(session.supply(0).available_bits(), 0u);
}

TEST(KeyProducer, SessionAttackSuppressesProduction) {
  qkd::proto::QkdLinkSession session(small_config(), 14);
  session.set_attack(
      std::make_unique<qkd::optics::InterceptResendAttack>(1.0));
  session.produce_batches(2);
  EXPECT_EQ(session.supply(0).available_bits(), 0u);
  EXPECT_GT(session.totals().aborted_qber(), 0u);
  session.set_attack(nullptr);
  session.produce_batches(2);
  EXPECT_GT(session.supply(0).available_bits(), 0u);
}

TEST(KeyProducer, LinkKeyServiceExposesOneSupplyPerLink) {
  qkd::network::Topology topo = qkd::network::Topology::star(3);
  qkd::network::LinkKeyService::Config config;
  config.proto = small_config();
  config.seed = 7;
  qkd::network::LinkKeyService service(topo, config);
  KeyProducer& producer = service;
  ASSERT_EQ(producer.supply_count(), topo.link_count());
  service.run_batches(2);
  for (std::size_t id = 0; id < producer.supply_count(); ++id)
    EXPECT_GT(producer.supply(id).available_bits(), 0u) << "link " << id;
}

}  // namespace
}  // namespace qkd::keystore
