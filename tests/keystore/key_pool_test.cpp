// The concrete KeySupply: Qblock/lane framing, FIFO framing, reservation
// semantics, framing-misuse diagnostics, and mirrored-pool lockstep.
#include "src/keystore/key_pool.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include <string>

#include "src/common/rng.hpp"

namespace qkd::keystore {
namespace {

constexpr std::size_t kQ = KeySupply::kQblockBits;

TEST(KeyPool, StartsEmpty) {
  KeyPool pool;
  EXPECT_EQ(pool.available_bits(), 0u);
  EXPECT_EQ(pool.available_qblocks(), 0u);
  EXPECT_FALSE(pool.request_bits(1).has_value());
}

TEST(KeyPool, DepositRequestFifoOrder) {
  QKD_SEEDED_RNG(rng, 1);
  KeyPool pool;
  const auto bits = rng.next_bits(4096);
  pool.deposit(bits);
  const auto first = pool.request_bits(1000);
  const auto second = pool.request_bits(1000);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->bits, bits.slice(0, 1000));
  EXPECT_EQ(second->bits, bits.slice(1000, 1000));
  // key_ids are the per-supply sequence both mirrored ends would derive.
  EXPECT_EQ(first->key_id, 1u);
  EXPECT_EQ(second->key_id, 2u);
}

TEST(KeyPool, QblockAccountingMatchesFig12Units) {
  QKD_SEEDED_RNG(rng, 2);
  KeyPool pool;
  pool.deposit(rng.next_bits(4 * kQ + 100));
  // Four complete blocks interleave into two lanes of two.
  EXPECT_EQ(pool.available_qblocks(0), 2u);
  EXPECT_EQ(pool.available_qblocks(1), 2u);
  const auto block = pool.request_qblocks(1, 0);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->bits.size(), 1024u);  // "reply 1 Qblocks 1024 bits"
  EXPECT_EQ(pool.available_qblocks(0), 1u);
  EXPECT_EQ(pool.available_qblocks(1), 2u);  // other lane untouched
}

TEST(KeyPool, LanesAreDisjointAndDeterministic) {
  // Two mirrored pools serving concurrent opposite-direction negotiations:
  // lane withdrawals must commute — any interleaving yields the same blocks.
  QKD_SEEDED_RNG(rng, 21);
  const auto stream = rng.next_bits(8 * kQ);
  KeyPool alice, bob;
  alice.deposit(stream);
  bob.deposit(stream);
  // Alice services lane 0 then lane 1; Bob the reverse order.
  const auto a0 = alice.request_qblocks(2, 0);
  const auto a1 = alice.request_qblocks(1, 1);
  const auto b1 = bob.request_qblocks(1, 1);
  const auto b0 = bob.request_qblocks(2, 0);
  ASSERT_TRUE(a0 && a1 && b0 && b1);
  EXPECT_EQ(a0->bits, b0->bits);
  EXPECT_EQ(a1->bits, b1->bits);
  // Lane 0 got absolute blocks 0 and 2; lane 1 got block 1.
  EXPECT_EQ(a1->bits, stream.slice(kQ, kQ));
}

TEST(KeyPool, MixedFramingThrowsWithPoolModeAndCallSites) {
  // Satellite: the misuse diagnostic must name the pool, the framing mode
  // it is in, and both call sites — in both orderings.
  QKD_SEEDED_RNG(rng, 22);
  KeyPool linear_first("alice-gw");
  linear_first.deposit(rng.next_bits(4096));
  ASSERT_TRUE(linear_first.request_bits(10, "first-linear-site").has_value());
  try {
    linear_first.request_qblocks(1, 0, "late-laned-site");
    FAIL() << "mixed framing must throw";
  } catch (const std::logic_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("alice-gw"), std::string::npos) << what;
    EXPECT_NE(what.find("linear FIFO"), std::string::npos) << what;
    EXPECT_NE(what.find("Qblock/lane"), std::string::npos) << what;
    EXPECT_NE(what.find("first-linear-site"), std::string::npos) << what;
    EXPECT_NE(what.find("late-laned-site"), std::string::npos) << what;
  }

  KeyPool laned_first("bob-gw");
  laned_first.deposit(rng.next_bits(4096));
  ASSERT_TRUE(
      laned_first.request_qblocks(1, 0, "first-laned-site").has_value());
  try {
    laned_first.request_bits(10, "late-linear-site");
    FAIL() << "mixed framing must throw";
  } catch (const std::logic_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bob-gw"), std::string::npos) << what;
    EXPECT_NE(what.find("Qblock/lane"), std::string::npos) << what;
    EXPECT_NE(what.find("linear FIFO"), std::string::npos) << what;
    EXPECT_NE(what.find("first-laned-site"), std::string::npos) << what;
    EXPECT_NE(what.find("late-linear-site"), std::string::npos) << what;
  }

  // An unlabelled pool with unspecified sites still produces a message.
  KeyPool anonymous;
  anonymous.deposit(rng.next_bits(4096));
  ASSERT_TRUE(anonymous.request_bits(10).has_value());
  try {
    anonymous.request_qblocks(1, 0);
    FAIL() << "mixed framing must throw";
  } catch (const std::logic_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unlabelled"), std::string::npos) << what;
    EXPECT_NE(what.find("(unspecified)"), std::string::npos) << what;
  }
}

TEST(KeyPool, LaneRefusalLeavesStateIntact) {
  QKD_SEEDED_RNG(rng, 23);
  KeyPool pool;
  pool.deposit(rng.next_bits(3 * kQ));  // lanes: 2 / 1
  EXPECT_FALSE(pool.request_qblocks(2, 1).has_value());
  EXPECT_EQ(pool.available_qblocks(1), 1u);
  EXPECT_TRUE(pool.request_qblocks(1, 1).has_value());
}

TEST(KeyPool, RefusesPartialWithdrawal) {
  QKD_SEEDED_RNG(rng, 3);
  KeyPool pool;
  pool.deposit(rng.next_bits(100));
  EXPECT_FALSE(pool.request_bits(101).has_value());
  EXPECT_EQ(pool.available_bits(), 100u);  // untouched after refusal
  EXPECT_EQ(pool.stats().failed_withdrawals, 1u);
}

TEST(KeyPool, MirroredPoolsStayInLockstep) {
  // The property the whole Qblock design rests on: two pools fed the same
  // deposits return the same bits (and key_ids) for the same request
  // sequence.
  QKD_SEEDED_RNG(rng, 4);
  KeyPool a, b;
  for (int i = 0; i < 10; ++i) {
    const auto bits = rng.next_bits(500 + i * 37);
    a.deposit(bits);
    b.deposit(bits);
  }
  for (std::size_t n : {100u, 1024u, 7u, 2048u, 333u}) {
    const auto from_a = a.request_bits(n);
    const auto from_b = b.request_bits(n);
    ASSERT_TRUE(from_a && from_b);
    EXPECT_EQ(from_a->bits, from_b->bits);
    EXPECT_EQ(from_a->key_id, from_b->key_id);
  }
}

TEST(KeyPool, ReserveAcknowledgeConsumesForGood) {
  QKD_SEEDED_RNG(rng, 31);
  const auto stream = rng.next_bits(8 * kQ);
  KeyPool pool;
  pool.deposit(stream);
  const auto reserved = pool.reserve_qblocks(2, 0);
  ASSERT_TRUE(reserved.has_value());
  EXPECT_EQ(reserved->bits.size(), 2 * kQ);
  // Earmarked blocks stop being served...
  EXPECT_EQ(pool.available_qblocks(0), 2u);
  EXPECT_EQ(pool.stats().bits_reserved, 2 * kQ);
  // ...but are not yet counted consumed.
  EXPECT_EQ(pool.stats().bits_withdrawn, 0u);
  pool.acknowledge(reserved->key_id);
  EXPECT_EQ(pool.stats().bits_withdrawn, 2 * kQ);
  EXPECT_EQ(pool.stats().qblocks_withdrawn, 2u);
  EXPECT_EQ(pool.stats().bits_reserved, 0u);
  // Settling twice is a caller bug.
  EXPECT_THROW(pool.acknowledge(reserved->key_id), std::invalid_argument);
  EXPECT_THROW(pool.release(reserved->key_id), std::invalid_argument);
  EXPECT_THROW(pool.acknowledge(999u), std::invalid_argument);
}

TEST(KeyPool, ReleasedBlocksAreReservedAgainInOrder) {
  QKD_SEEDED_RNG(rng, 32);
  const auto stream = rng.next_bits(12 * kQ);
  KeyPool pool;
  pool.deposit(stream);
  const auto first = pool.reserve_qblocks(3, 0);  // lane-0 blocks 0,1,2
  ASSERT_TRUE(first.has_value());
  pool.release(first->key_id);
  EXPECT_EQ(pool.stats().bits_released, 3 * kQ);
  EXPECT_EQ(pool.available_qblocks(0), 6u);  // all 6 lane-0 blocks again
  // Re-serving starts from the released blocks, lowest index first: a
  // smaller request returns a prefix of the released material.
  const auto second = pool.request_qblocks(2, 0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->bits, first->bits.slice(0, 2 * kQ));
  // And the next request continues with the released remainder before any
  // fresh block.
  const auto third = pool.request_qblocks(2, 0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->bits.slice(0, kQ), first->bits.slice(2 * kQ, kQ));
}

TEST(KeyPool, MirroredPoolsSurvivePartialGrantsAndAbandonedOffers) {
  // The IKE pattern: the initiator earmarks an offer, the responder
  // consumes only what it grants, the initiator releases and re-requests
  // the granted amount — or abandons the offer entirely. Both pools must
  // keep returning identical blocks afterwards.
  QKD_SEEDED_RNG(rng, 33);
  const auto stream = rng.next_bits(20 * kQ);
  KeyPool initiator, responder;
  initiator.deposit(stream);
  responder.deposit(stream);

  // Offer 3 blocks; responder grants 2.
  const auto offer = initiator.reserve_qblocks(3, 0);
  ASSERT_TRUE(offer.has_value());
  const auto granted = responder.request_qblocks(2, 0);
  initiator.release(offer->key_id);
  const auto settled = initiator.request_qblocks(2, 0);
  ASSERT_TRUE(granted && settled);
  EXPECT_EQ(settled->bits, granted->bits);

  // An abandoned offer (timeout before the responder saw it): release only.
  const auto abandoned = initiator.reserve_qblocks(4, 0);
  ASSERT_TRUE(abandoned.has_value());
  initiator.release(abandoned->key_id);

  // The next negotiation still matches block for block.
  const auto a_next = initiator.request_qblocks(3, 0);
  const auto r_next = responder.request_qblocks(3, 0);
  ASSERT_TRUE(a_next && r_next);
  EXPECT_EQ(a_next->bits, r_next->bits);
}

TEST(KeyPool, StatsTrackVolumes) {
  QKD_SEEDED_RNG(rng, 5);
  KeyPool pool;
  pool.deposit(rng.next_bits(8192));
  pool.request_qblocks(2, 0);
  EXPECT_EQ(pool.stats().bits_deposited, 8192u);
  EXPECT_EQ(pool.stats().bits_withdrawn, 2048u);
  EXPECT_EQ(pool.stats().qblocks_withdrawn, 2u);
  EXPECT_EQ(pool.stats().bits_reserved, 0u);  // request settles immediately
}

TEST(KeyPool, TakeAllDrainsEverything) {
  QKD_SEEDED_RNG(rng, 6);
  KeyPool pool;
  const auto bits = rng.next_bits(3333);
  pool.deposit(bits);
  const KeyBlock all = pool.take_all();
  EXPECT_EQ(all.bits, bits);
  EXPECT_EQ(pool.available_bits(), 0u);
  EXPECT_TRUE(pool.take_all().bits.empty());
}

TEST(KeyPool, CompactionPreservesContentAcrossReservations) {
  // Push enough through the pool to trigger internal compaction — with
  // interleaved reserve/release traffic — and verify the stream stays
  // correct across it.
  QKD_SEEDED_RNG(rng, 7);
  KeyPool pool;
  qkd::BitVector reference;
  for (int i = 0; i < 30; ++i) {
    const auto bits = rng.next_bits(100 * kQ);
    pool.deposit(bits);
    reference.append(bits);
  }
  std::size_t cursor = 0;  // lane-local block index, same for both lanes
  while (pool.available_qblocks(0) >= 40 && pool.available_qblocks(1) >= 40) {
    // Hold a reservation open across the withdrawal to pin compaction.
    const auto held = pool.reserve_qblocks(3, 0);
    ASSERT_TRUE(held.has_value());
    pool.release(held->key_id);
    for (unsigned lane = 0; lane < 2; ++lane) {
      const auto chunk = pool.request_qblocks(40, lane);
      ASSERT_TRUE(chunk.has_value());
      for (std::size_t b = 0; b < 40; ++b) {
        const std::size_t abs_block = 2 * (cursor + b) + lane;
        EXPECT_EQ(chunk->bits.slice(b * kQ, kQ),
                  reference.slice(abs_block * kQ, kQ))
            << "lane " << lane << " block " << cursor + b;
      }
    }
    cursor += 40;
  }
  EXPECT_GT(cursor, 1000u);  // compaction definitely engaged
}

TEST(KeySupply, EventsFireOnCrossingsAndExhaustion) {
  QKD_SEEDED_RNG(rng, 8);
  KeyPool pool;
  pool.set_low_water_bits(2048);
  std::vector<SupplyEvent> events;
  const std::uint64_t token = pool.subscribe(
      [&events](const SupplyEvent& event) { events.push_back(event); });

  pool.deposit(rng.next_bits(1024));  // below the mark: no crossing
  EXPECT_TRUE(events.empty());
  pool.deposit(rng.next_bits(3072));  // 4096 total: upward crossing
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SupplyEventKind::kReplenished);
  EXPECT_EQ(events[0].available_bits, 4096u);

  ASSERT_TRUE(pool.request_bits(3000).has_value());  // 1096 left: low water
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, SupplyEventKind::kLowWater);
  EXPECT_EQ(events[1].available_bits, 1096u);

  EXPECT_FALSE(pool.request_bits(9999).has_value());  // exhaustion
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].kind, SupplyEventKind::kExhausted);
  EXPECT_EQ(events[2].requested_bits, 9999u);
  EXPECT_EQ(events[2].available_bits, 1096u);

  pool.deposit(rng.next_bits(2048));  // back over the mark
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[3].kind, SupplyEventKind::kReplenished);

  // An unsubscribed observer sees nothing further (observers with shorter
  // lifetimes than the supply must unsubscribe).
  pool.unsubscribe(token);
  EXPECT_FALSE(pool.request_bits(1 << 20).has_value());  // would be kExhausted
  EXPECT_EQ(events.size(), 4u);
}

TEST(KeySupply, ReleaseCanReplenishPastTheMark) {
  // A released reservation is a deposit from the consumer's point of view:
  // it can end a low-water episode.
  QKD_SEEDED_RNG(rng, 9);
  KeyPool pool;
  pool.deposit(rng.next_bits(4 * kQ));
  pool.set_low_water_bits(3 * kQ);
  std::vector<SupplyEventKind> kinds;
  pool.subscribe([&kinds](const SupplyEvent& event) {
    kinds.push_back(event.kind);
  });
  const auto held = pool.reserve_qblocks(2, 0);  // drops to 2 blocks: low
  ASSERT_TRUE(held.has_value());
  ASSERT_EQ(kinds.size(), 1u);
  EXPECT_EQ(kinds[0], SupplyEventKind::kLowWater);
  pool.release(held->key_id);  // back to 4 blocks: replenished
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[1], SupplyEventKind::kReplenished);
}

TEST(KeySupply, FailedReserveEmitsExactlyOneExhaustedEventPerFailure) {
  // The event names the FAILURE, not the shortfall: a reserve that asks
  // for five blocks from an empty lane is one failed call, one kExhausted —
  // not one per missing block.
  KeyPool pool("starved");
  std::size_t exhausted = 0;
  std::vector<SupplyEvent> events;
  pool.subscribe([&](const SupplyEvent& event) {
    events.push_back(event);
    if (event.kind == SupplyEventKind::kExhausted) ++exhausted;
  });

  EXPECT_FALSE(pool.reserve_qblocks(5, 0).has_value());
  EXPECT_EQ(exhausted, 1u);
  EXPECT_EQ(events.back().requested_bits, 5 * KeySupply::kQblockBits);
  EXPECT_EQ(events.back().available_bits, 0u);

  // A second failed call is a second failure: exactly one more event.
  EXPECT_FALSE(pool.reserve_qblocks(3, 1).has_value());
  EXPECT_EQ(exhausted, 2u);

  // A partially-stocked lane that still cannot cover the ask: one event.
  QKD_SEEDED_RNG(rng, 5);
  pool.deposit(rng.next_bits(2 * KeySupply::kQblockBits));  // 1 block/lane
  EXPECT_FALSE(pool.reserve_qblocks(4, 0).has_value());
  EXPECT_EQ(exhausted, 3u);
  EXPECT_EQ(events.size(), 3u) << "no other event kinds fired";
}

TEST(KeySupply, SelfUnsubscribingObserverDoesNotStarveLaterObservers) {
  // An observer that unsubscribes from inside its own callback must not
  // displace the observers behind it out of the in-flight event.
  KeyPool pool("one-shot");
  std::uint64_t first_token = 0;
  std::size_t first_seen = 0, second_seen = 0;
  first_token = pool.subscribe([&](const SupplyEvent&) {
    ++first_seen;
    pool.unsubscribe(first_token);  // one-shot observer
  });
  pool.subscribe([&second_seen](const SupplyEvent&) { ++second_seen; });

  EXPECT_FALSE(pool.request_bits(64).has_value());  // kExhausted
  EXPECT_EQ(first_seen, 1u);
  EXPECT_EQ(second_seen, 1u) << "must still receive the in-flight event";

  EXPECT_FALSE(pool.request_bits(64).has_value());
  EXPECT_EQ(first_seen, 1u) << "one-shot observer is gone";
  EXPECT_EQ(second_seen, 2u);
}

TEST(KeySupply, ReplenishHandlerThatImmediatelyWithdrawsKeepsLaneLockstep) {
  // A callback re-entering the supply mid-event (the replenish handler of
  // a stalled consumer withdrawing on the spot) must leave lane state
  // coherent: a mirrored pool driven through the *resulting* call sequence
  // derives identical blocks and ids.
  QKD_SEEDED_RNG(rng, 6);
  const qkd::BitVector seed_bits = rng.next_bits(2 * KeySupply::kQblockBits);
  const qkd::BitVector refill_bits = rng.next_bits(8 * KeySupply::kQblockBits);

  KeyPool pool("reentrant");
  pool.set_low_water_bits(2 * KeySupply::kQblockBits);
  pool.deposit(seed_bits);
  ASSERT_TRUE(pool.request_qblocks(1, 0).has_value());  // dip below the mark

  std::vector<KeyBlock> reentrant_blocks;
  pool.subscribe([&pool, &reentrant_blocks](const SupplyEvent& event) {
    if (event.kind != SupplyEventKind::kReplenished) return;
    // Withdraw from inside the deposit's own callback.
    auto block = pool.request_qblocks(1, 0, "replenish-handler");
    ASSERT_TRUE(block.has_value());
    reentrant_blocks.push_back(std::move(*block));
  });
  pool.deposit(refill_bits);
  ASSERT_EQ(reentrant_blocks.size(), 1u);

  // After the dust settles, the pool still reserves/acknowledges/releases
  // coherently...
  auto reserved = pool.reserve_qblocks(2, 0);
  ASSERT_TRUE(reserved.has_value());
  pool.release(reserved->key_id);
  auto reserved_again = pool.reserve_qblocks(2, 0);
  ASSERT_TRUE(reserved_again.has_value());
  EXPECT_TRUE(reserved_again->bits == reserved->bits);
  pool.acknowledge(reserved_again->key_id);

  // ...and a mirror pool replaying the same external sequence (with the
  // reentrant withdrawal inlined where the event fired) lands on the same
  // bits and ids throughout.
  KeyPool mirror("mirror");
  mirror.deposit(seed_bits);
  ASSERT_TRUE(mirror.request_qblocks(1, 0).has_value());
  mirror.deposit(refill_bits);
  const auto mirror_reentrant = mirror.request_qblocks(1, 0);
  ASSERT_TRUE(mirror_reentrant.has_value());
  EXPECT_EQ(mirror_reentrant->key_id, reentrant_blocks[0].key_id);
  EXPECT_TRUE(mirror_reentrant->bits == reentrant_blocks[0].bits);
  auto mirror_reserved = mirror.reserve_qblocks(2, 0);
  ASSERT_TRUE(mirror_reserved.has_value());
  mirror.release(mirror_reserved->key_id);
  const auto mirror_again = mirror.reserve_qblocks(2, 0);
  ASSERT_TRUE(mirror_again.has_value());
  EXPECT_EQ(mirror_again->key_id, reserved_again->key_id);
  EXPECT_TRUE(mirror_again->bits == reserved_again->bits);
  mirror.acknowledge(mirror_again->key_id);
  EXPECT_EQ(mirror.available_qblocks(0), pool.available_qblocks(0));
  EXPECT_EQ(mirror.available_qblocks(1), pool.available_qblocks(1));
}

}  // namespace
}  // namespace qkd::keystore
