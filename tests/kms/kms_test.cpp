// The multi-tenant key management service: registry, ETSI-014-style
// get_key / get_key_with_id key-ID agreement, admission control, weighted
// fair share (bounded wait, no priority inversion), same-destination
// batching, supply-event wakeups, and sustained-exhaustion shedding.
#include "src/kms/kms.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/network/key_service.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

/// relay 0 in the middle, endpoints 1 and 2 — with optics hot enough
/// (~1 Mb/s distilled per link) that supply never bounds the tests that
/// are about scheduling rather than starvation.
Topology hot_star() {
  Topology topo;
  const NodeId relay = topo.add_node("relay", NodeKind::kTrustedRelay);
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  topo.add_link(relay, a, optics);
  topo.add_link(relay, b, optics);
  return topo;
}

struct Harness {
  explicit Harness(KeyManagementService::Config config = {},
                   double prefill_s = 20.0)
      : mesh(hot_star(), 77), scheduler(clock), kms(mesh, scheduler, config) {
    mesh.step(prefill_s);
  }

  MeshSimulation mesh;
  qkd::SimClock clock;
  sim::EventScheduler scheduler;
  KeyManagementService kms;
};

TEST(Kms, GetKeyGrantsMatchingKeyIdAndBitsOnBothEnds) {
  Harness h;
  const ClientId alice =
      h.kms.register_client({"alice-app", 1, 2, QosClass::kInteractive});
  const ClientId bob =
      h.kms.register_client({"bob-app", 2, 1, QosClass::kInteractive});

  std::vector<Grant> grants;
  h.kms.get_key(alice, 512, [&](const Grant& g) { grants.push_back(g); });
  EXPECT_TRUE(grants.empty()) << "grants arrive on scheduler deadlines";
  h.scheduler.run_for(kSecond);

  ASSERT_EQ(grants.size(), 1u);
  const Grant& grant = grants[0];
  ASSERT_EQ(grant.status, GrantStatus::kGranted);
  EXPECT_NE(grant.key_id, 0u);
  EXPECT_EQ(grant.bits.size(), 512u);
  ASSERT_EQ(grant.exposed_to.size(), 1u);  // the relay saw the frame
  EXPECT_EQ(grant.exposed_to[0], 0u);

  // A co-tenant on the SAME pair is not the peer endpoint: it must not be
  // able to take alice's key (multi-tenant isolation), and probing does
  // not consume the claim.
  const ClientId rival =
      h.kms.register_client({"rival-app", 1, 2, QosClass::kInteractive});
  EXPECT_FALSE(h.kms.get_key_with_id(rival, grant.key_id).has_value());

  // The peer application (registered on the reversed pair) claims the same
  // bits by the same id; a second claim finds nothing.
  const auto peer = h.kms.get_key_with_id(bob, grant.key_id);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->key_id, grant.key_id);
  EXPECT_TRUE(peer->bits == grant.bits);
  EXPECT_FALSE(h.kms.get_key_with_id(bob, grant.key_id).has_value());
  EXPECT_EQ(h.kms.stats().claims_fulfilled, 1u);
}

TEST(Kms, AdmissionControlRejectsBeyondQueueCapacity) {
  KeyManagementService::Config config;
  config.max_queue_per_class = 4;
  Harness h(config);
  const ClientId client =
      h.kms.register_client({"bursty", 1, 2, QosClass::kBulk});

  std::size_t granted = 0, rejected = 0;
  for (int i = 0; i < 7; ++i) {
    h.kms.get_key(client, 128, [&](const Grant& g) {
      if (g.status == GrantStatus::kGranted) ++granted;
      if (g.status == GrantStatus::kRejectedQueueFull) ++rejected;
    });
  }
  // The overflow rejections are synchronous backpressure...
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(granted, 0u);
  // ...and the admitted requests are all served.
  h.scheduler.run_for(kSecond);
  EXPECT_EQ(granted, 4u);
  EXPECT_EQ(h.kms.class_stats(QosClass::kBulk).rejected_queue_full, 3u);
}

TEST(Kms, WeightedFairShareBoundsEveryClassAndOrdersLatencyByWeight) {
  // Small quantum and a tight frame cap so one round cannot drain a whole
  // queue: classes must share rounds for many windows, which is where the
  // weighted differentiation shows.
  KeyManagementService::Config config;
  config.quantum_bits = 512;
  config.class_weights = {4, 2, 1};
  config.max_queue_per_class = 64;
  config.max_frame_bits = 4096;
  Harness h(config);
  const ClientId rt =
      h.kms.register_client({"rt", 1, 2, QosClass::kRealtime});
  const ClientId it =
      h.kms.register_client({"it", 1, 2, QosClass::kInteractive});
  const ClientId bulk =
      h.kms.register_client({"bulk", 1, 2, QosClass::kBulk});

  constexpr std::size_t kPerClass = 40;
  std::array<std::size_t, kQosClassCount> served{};
  for (std::size_t i = 0; i < kPerClass; ++i) {
    for (ClientId id : {rt, it, bulk}) {
      h.kms.get_key(id, 512, [&served, &h, id](const Grant& g) {
        if (g.status == GrantStatus::kGranted)
          ++served[static_cast<std::size_t>(h.kms.client(id).qos)];
      });
    }
  }
  h.scheduler.run_for(kMinute);

  // Bounded wait: every class is fully served, none starved.
  EXPECT_EQ(served[0], kPerClass);
  EXPECT_EQ(served[1], kPerClass);
  EXPECT_EQ(served[2], kPerClass);
  // Weighted: grant latency orders by class weight.
  const double rt_mean = h.kms.mean_grant_latency_s(QosClass::kRealtime);
  const double it_mean = h.kms.mean_grant_latency_s(QosClass::kInteractive);
  const double bulk_mean = h.kms.mean_grant_latency_s(QosClass::kBulk);
  EXPECT_LT(rt_mean, it_mean);
  EXPECT_LT(it_mean, bulk_mean);
  EXPECT_LE(h.kms.p99_grant_latency_s(QosClass::kRealtime),
            h.kms.p99_grant_latency_s(QosClass::kBulk));
  // Batching: many grants rode far fewer relay frames.
  EXPECT_LT(h.kms.stats().transports, 3 * kPerClass);
  EXPECT_GT(h.kms.stats().transports, 0u);
}

TEST(Kms, LargeBulkRequestCannotBlockRealtime) {
  KeyManagementService::Config config;
  config.quantum_bits = 256;  // bulk credit: 256 bits/pass
  config.class_weights = {4, 2, 1};
  config.max_frame_bits = 2048;  // contention: rounds fill before bulk fits
  Harness h(config);
  const ClientId bulk =
      h.kms.register_client({"bulk", 1, 2, QosClass::kBulk});
  const ClientId rt = h.kms.register_client({"rt", 1, 2, QosClass::kRealtime});

  // The big bulk ask needs 8 rounds of credit accumulation; realtime
  // requests submitted after it must not wait for it (no inversion).
  std::vector<SimTime> rt_granted_at;
  SimTime bulk_granted_at = -1;
  h.kms.get_key(bulk, 2048, [&](const Grant& g) {
    ASSERT_EQ(g.status, GrantStatus::kGranted);
    bulk_granted_at = g.granted_at;
  });
  for (int i = 0; i < 4; ++i) {
    h.kms.get_key(rt, 512, [&](const Grant& g) {
      ASSERT_EQ(g.status, GrantStatus::kGranted);
      rt_granted_at.push_back(g.granted_at);
    });
  }
  h.scheduler.run_for(kMinute);

  ASSERT_EQ(rt_granted_at.size(), 4u);
  ASSERT_GE(bulk_granted_at, 0);
  for (SimTime t : rt_granted_at) EXPECT_LT(t, bulk_granted_at);
}

TEST(Kms, SustainedExhaustionShedsLowestPriorityFirstAndRecovers) {
  KeyManagementService::Config config;
  config.shed_after_starved_rounds = 2;
  config.retry_backoff = 100 * kMillisecond;
  Harness h(config, /*prefill_s=*/0.0);  // pools empty: a full drought
  const ClientId rt = h.kms.register_client({"rt", 1, 2, QosClass::kRealtime});
  const ClientId it =
      h.kms.register_client({"it", 1, 2, QosClass::kInteractive});
  const ClientId bulk =
      h.kms.register_client({"bulk", 1, 2, QosClass::kBulk});

  std::array<std::size_t, kQosClassCount> shed{}, granted{};
  const auto counter = [&](const Grant& g) {
    const auto qos = static_cast<std::size_t>(h.kms.client(g.client).qos);
    if (g.status == GrantStatus::kShed) ++shed[qos];
    if (g.status == GrantStatus::kGranted) ++granted[qos];
  };
  for (int i = 0; i < 8; ++i) {
    h.kms.get_key(rt, 128, counter);
    h.kms.get_key(it, 128, counter);
    h.kms.get_key(bulk, 128, counter);
  }

  // Starved rounds mount; bulk is dropped first, then interactive; the
  // realtime backlog is never shed.
  h.scheduler.run_for(kSecond);
  EXPECT_TRUE(h.kms.shedding());
  EXPECT_EQ(shed[2], 8u);
  EXPECT_EQ(shed[1], 8u);
  EXPECT_EQ(shed[0], 0u);
  EXPECT_EQ(h.kms.queue_depth(QosClass::kRealtime), 8u);
  EXPECT_GE(h.kms.stats().starved_rounds, 2u);

  // Supply returns: the surviving realtime backlog drains.
  h.mesh.step(20.0);
  h.scheduler.run_for(kSecond);
  EXPECT_EQ(granted[0], 8u);
  EXPECT_FALSE(h.kms.shedding());
  EXPECT_EQ(h.kms.queue_depth(QosClass::kRealtime), 0u);
}

TEST(Kms, ReplenishedLinkSupplyWakesStalledQueueBeforeRetryBackoff) {
  // Engine-backed two-node mesh: the KMS subscribes to the link supply and
  // a kReplenished crossing — not the (deliberately huge) retry backoff —
  // is what serves the stalled queue.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  topo.add_link(a, b);
  network::LinkKeyService::Config engine;
  engine.proto.frame_slots = 1 << 19;
  engine.proto.auth_replenish_bits = 64;
  engine.threads = 1;
  MeshSimulation mesh(topo, 5, engine);

  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  KeyManagementService::Config config;
  config.retry_backoff = 10 * kMinute;  // only a wakeup can serve in time
  config.link_low_water_bits = 256;
  KeyManagementService kms(mesh, scheduler, config);
  const ClientId client =
      kms.register_client({"app", a, b, QosClass::kRealtime});

  std::optional<SimTime> granted_at;
  kms.get_key(client, 64, [&](const Grant& g) {
    if (g.status == GrantStatus::kGranted) granted_at = g.granted_at;
  });

  // Scheduled distillation, as ScenarioRunner arms it.
  auto* service = mesh.key_service();
  const SimTime frame = seconds_to_sim(service->link_frame_duration_s(0));
  scheduler.every(frame, frame,
                  [service](SimTime) { service->run_link_batch(0); });
  scheduler.run_until(30 * kSecond);

  ASSERT_TRUE(granted_at.has_value());
  EXPECT_LT(*granted_at, 10 * kMinute) << "served before the retry backoff";
  EXPECT_GE(kms.stats().replenish_wakeups, 1u);
  EXPECT_GE(kms.stats().starved_rounds, 1u);
}

TEST(Kms, SameWindowRequestsShareOneRelayFrame) {
  Harness h;
  const ClientId one = h.kms.register_client({"one", 1, 2, QosClass::kBulk});
  const ClientId two = h.kms.register_client({"two", 1, 2, QosClass::kBulk});
  std::size_t granted = 0;
  const auto count = [&](const Grant& g) {
    if (g.status == GrantStatus::kGranted) ++granted;
  };
  h.kms.get_key(one, 128, count);
  h.kms.get_key(two, 64, count);
  h.scheduler.run_for(kSecond);
  EXPECT_EQ(granted, 2u);
  EXPECT_EQ(h.kms.stats().transports, 1u) << "both grants rode one frame";
  EXPECT_EQ(h.mesh.stats().transports_succeeded, 1u);
}

TEST(Kms, DeregisterDrainsQueuedRequestsAsDeparted) {
  Harness h;
  const ClientId stay = h.kms.register_client({"stay", 1, 2, QosClass::kBulk});
  const ClientId leave =
      h.kms.register_client({"leave", 1, 2, QosClass::kBulk});
  std::vector<GrantStatus> leave_outcomes;
  std::size_t stay_granted = 0;
  h.kms.get_key(leave, 128,
                [&](const Grant& g) { leave_outcomes.push_back(g.status); });
  h.kms.get_key(stay, 128, [&](const Grant& g) {
    if (g.status == GrantStatus::kGranted) ++stay_granted;
  });
  h.kms.deregister_client(leave);

  ASSERT_EQ(leave_outcomes.size(), 1u);
  EXPECT_EQ(leave_outcomes[0], GrantStatus::kDeparted);
  EXPECT_THROW(h.kms.get_key(leave, 128, [](const Grant&) {}),
               std::invalid_argument);
  EXPECT_EQ(h.kms.client_count(), 1u);

  h.scheduler.run_for(kSecond);
  EXPECT_EQ(stay_granted, 1u) << "the surviving tenant is unaffected";
}

TEST(Kms, UnclaimedPeerCopyExpiresAfterTtl) {
  KeyManagementService::Config config;
  config.claim_ttl = kSecond;
  Harness h(config);
  const ClientId client =
      h.kms.register_client({"app", 1, 2, QosClass::kInteractive});
  std::uint64_t key_id = 0;
  h.kms.get_key(client, 256, [&](const Grant& g) { key_id = g.key_id; });
  h.scheduler.run_for(100 * kMillisecond);
  ASSERT_NE(key_id, 0u);

  h.scheduler.run_for(2 * kSecond);
  EXPECT_FALSE(h.kms.get_key_with_id(client, key_id).has_value());
  EXPECT_EQ(h.kms.stats().claims_expired, 1u);
}

TEST(Kms, DegenerateRequestsThrow) {
  Harness h;
  const ClientId client =
      h.kms.register_client({"app", 1, 2, QosClass::kBulk});
  EXPECT_THROW(h.kms.get_key(client, 0, [](const Grant&) {}),
               std::invalid_argument);
  EXPECT_THROW(h.kms.get_key(client + 1, 64, [](const Grant&) {}),
               std::invalid_argument);
  EXPECT_THROW(h.kms.register_client({"self", 1, 1, QosClass::kBulk}),
               std::invalid_argument);
}

}  // namespace
}  // namespace qkd::kms
