// IKE as a KMS tenant: KmsIkeBridge keeps both VPN gateways' key supplies
// fed from end-to-end KMS grants (mirrored deposits, key-ID agreement
// asserted per refill), and the tunnel negotiates and carries traffic on
// key that arrived through the service — no hand-mirrored deposits, no
// dedicated engine feed.
#include "src/kms/ike_bridge.hpp"

#include <gtest/gtest.h>

#include "src/ipsec/vpn_sim.hpp"
#include "src/kms/kms.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

ipsec::SpdEntry protect_policy() {
  ipsec::SpdEntry entry;
  entry.name = "vpn";
  entry.selector.src_prefix = ipsec::parse_ipv4("10.1.0.0");
  entry.selector.src_mask = 0xffff0000;
  entry.selector.dst_prefix = ipsec::parse_ipv4("10.2.0.0");
  entry.selector.dst_mask = 0xffff0000;
  entry.action = ipsec::PolicyAction::kProtect;
  entry.cipher = ipsec::CipherAlgo::kAes128;
  entry.qkd_mode = ipsec::QkdMode::kHybrid;
  entry.qblocks_per_rekey = 1;
  entry.lifetime_seconds = 60.0;
  return entry;
}

ipsec::IpPacket red_packet() {
  ipsec::IpPacket packet;
  packet.src = ipsec::parse_ipv4("10.1.0.5");
  packet.dst = ipsec::parse_ipv4("10.2.0.7");
  packet.payload = qkd::Bytes{'k', 'm', 's'};
  return packet;
}

constexpr QosClass bridge_qos() { return QosClass::kRealtime; }

TEST(KmsIkeBridge, TunnelNegotiatesAndCarriesTrafficOnKmsDeliveredKey) {
  // A hot single-relay mesh between the gateway endpoints (nodes 1 and 2).
  Topology topo;
  topo.add_node("relay", NodeKind::kTrustedRelay);
  const NodeId a = topo.add_node("gw-a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("gw-b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  topo.add_link(0, a, optics);
  topo.add_link(0, b, optics);
  MeshSimulation mesh(std::move(topo), 31);
  mesh.step(30.0);

  ipsec::VpnLinkSimulation vpn(ipsec::VpnLinkSimulation::Params{}, 9);
  sim::EventScheduler scheduler(vpn.clock());
  KeyManagementService kms(mesh, scheduler);
  KmsIkeBridge bridge(kms, a, b, vpn.a().key_supply(), vpn.b().key_supply());

  bridge.prime();
  scheduler.run_for(kSecond);  // the first refill grant lands
  ASSERT_GE(bridge.stats().refills_granted, 1u);
  ASSERT_GE(vpn.a().key_supply().available_bits(),
            bridge.stats().bits_delivered / 2);
  EXPECT_EQ(vpn.a().key_supply().available_bits(),
            vpn.b().key_supply().available_bits())
      << "mirrored deposits";

  vpn.install_mirrored_policy(protect_policy());
  vpn.start();
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());
  // Interleave scheduler time (KMS refills) with gateway pumping; the
  // scheduler owns the clock, pump() acts at the current instant.
  for (int i = 0; i < 20; ++i) {
    scheduler.run_for(100 * kMillisecond);
    vpn.pump();
  }

  EXPECT_GE(vpn.a().ike().stats().phase2_completed, 1u);
  const auto delivered = vpn.b().drain_delivered();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], red_packet());

  // The consumption went through the service like any other client: the
  // KMS accounted the bridge's grants in its QoS class.
  EXPECT_EQ(kms.class_stats(bridge_qos()).granted,
            bridge.stats().refills_granted);
  EXPECT_GT(bridge.stats().bits_delivered, 0u);
}

}  // namespace
}  // namespace qkd::kms
