// The KMS wire adapters over the in-memory channel: the blocking client
// and the request/response server exchange the same encoded ETSI frames
// the TCP path moves, so idempotent retransmission (request_ids plus the
// server's last-reply cache) is testable under seeded message loss without
// a second process.
#include "src/kms/wire_service.hpp"

#include <gtest/gtest.h>

#include "src/net/channel_transport.hpp"
#include "src/network/key_service.hpp"
#include "src/wire/packets.hpp"

namespace qkd::kms {
namespace {

using network::NodeId;
using network::NodeKind;
using network::Topology;

Topology hot_star() {
  Topology topo;
  const NodeId relay = topo.add_node("relay", NodeKind::kTrustedRelay);
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  topo.add_link(relay, a, optics);
  topo.add_link(relay, b, optics);
  return topo;
}

/// Client-side transport that pumps the server for its reply whenever the
/// client's inbox is drained — the single-threaded stand-in for a peer
/// process on the other end of the channel.
class ServedChannel final : public wire::Transport {
 public:
  ServedChannel(net::PublicChannel& channel, KmsWireServer& server)
      : client_side_(channel, net::ChannelTransport::Side::kA),
        server_side_(channel, net::ChannelTransport::Side::kB),
        server_(server) {}

  bool send_frame(const Bytes& frame) override {
    return client_side_.send_frame(frame);
  }

  std::optional<Bytes> recv_frame() override {
    if (auto ready = client_side_.recv_frame()) return ready;
    server_.serve_one(server_side_);
    return client_side_.recv_frame();
  }

  net::ChannelTransport& server_side() { return server_side_; }

 private:
  net::ChannelTransport client_side_;
  net::ChannelTransport server_side_;
  KmsWireServer& server_;
};

struct Harness {
  Harness() : mesh(hot_star(), 77), scheduler(clock), kms(mesh, scheduler, {}),
              server(kms, scheduler), io(channel, server), client(io) {
    mesh.step(20.0);  // supply never bounds these tests
  }

  network::MeshSimulation mesh;
  qkd::SimClock clock;
  sim::EventScheduler scheduler;
  KeyManagementService kms;
  net::PublicChannel channel;
  KmsWireServer server;
  ServedChannel io;
  KmsWireClient client;
};

TEST(KmsWire, FullDialogueOverTheChannel) {
  Harness h;
  const auto alice = h.client.register_app("alice-app", 1, 2);
  const auto bob = h.client.register_app("bob-app", 2, 1);
  ASSERT_TRUE(alice.has_value());
  ASSERT_TRUE(bob.has_value());
  EXPECT_NE(*alice, *bob);

  const auto reply = h.client.get_key(*alice, 512);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->status, GrantStatus::kGranted);
  EXPECT_NE(reply->key_id, 0u);
  EXPECT_EQ(reply->bits.size(), 512u);
  EXPECT_FALSE(reply->compromised);

  // The peer endpoint claims the SAME bits by key_ID over the wire.
  const auto claimed = h.client.get_key_with_id(*bob, reply->key_id);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->key_id, reply->key_id);
  EXPECT_TRUE(claimed->bits == reply->bits);

  // A second claim finds nothing (new request_id: a fresh call, not a
  // retransmit, so the duplicate cache rightly does not shield it).
  EXPECT_FALSE(h.client.get_key_with_id(*bob, reply->key_id).has_value());

  const auto status = h.client.status(*alice);
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(status->requests, 1u);
  EXPECT_GE(status->granted, 1u);
  EXPECT_EQ(status->claims_fulfilled, 1u);

  // Bye ends the conversation: the server's next serve_one returns false.
  h.client.bye();
  EXPECT_FALSE(h.server.serve_one(h.io.server_side()));
  EXPECT_GT(h.server.served(), 0u);
}

TEST(KmsWire, LossyChannelRetransmitsIdempotently) {
  Harness h;
  const auto alice = h.client.register_app("alice-app", 1, 2);
  const auto bob = h.client.register_app("bob-app", 2, 1);
  ASSERT_TRUE(alice.has_value());
  ASSERT_TRUE(bob.has_value());

  // Lose a third of all frames, both directions, deterministically.
  net::ClassicalConditions lossy;
  lossy.loss_prob = 0.33;
  h.channel.set_conditions(lossy, /*seed=*/404);

  const std::size_t sent_before = h.client.messages_sent();
  std::vector<KmsWireClient::KeyReply> grants;
  for (int i = 0; i < 8; ++i) {
    const auto reply = h.client.get_key(*alice, 128);
    ASSERT_TRUE(reply.has_value()) << "call " << i;
    ASSERT_EQ(reply->status, GrantStatus::kGranted) << "call " << i;
    grants.push_back(*reply);
  }

  // Loss forced retransmits...
  EXPECT_GT(h.client.messages_sent() - sent_before, 8u);
  EXPECT_GT(h.channel.stats().lost, 0u);
  // ...but each logical call produced exactly one grant: 8 distinct keys,
  // no grant minted twice for a retransmitted request.
  for (std::size_t i = 0; i < grants.size(); ++i)
    for (std::size_t j = i + 1; j < grants.size(); ++j)
      EXPECT_NE(grants[i].key_id, grants[j].key_id);
  EXPECT_EQ(h.kms.class_stats(QosClass::kInteractive).granted, 8u);

  // A claim whose request or reply drowns still fulfills exactly once.
  const auto claimed = h.client.get_key_with_id(*bob, grants[0].key_id);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_TRUE(claimed->bits == grants[0].bits);
  EXPECT_EQ(h.kms.stats().claims_fulfilled, 1u);
}

TEST(KmsWire, ByteIdenticalDuplicateIsAnsweredFromTheCache) {
  Harness h;
  const auto alice = h.client.register_app("alice-app", 1, 2);
  const auto bob = h.client.register_app("bob-app", 2, 1);
  const auto granted = h.client.get_key(*alice, 256);
  ASSERT_TRUE(granted.has_value());

  // Hand-deliver the same claim frame twice, as a loss-driven retransmit
  // would: the second must be answered from the reply cache, not
  // re-executed (a re-execution would see "already claimed").
  net::ChannelTransport client_side(h.channel,
                                    net::ChannelTransport::Side::kA);
  wire::KmsGetKeyWithId claim;
  claim.client_id = *bob;
  claim.request_id = 9001;
  claim.key_id = granted->key_id;
  const Bytes framed = to_frame(claim);

  std::vector<Bytes> replies;
  for (int attempt = 0; attempt < 2; ++attempt) {
    ASSERT_TRUE(client_side.send_frame(framed));
    ASSERT_TRUE(h.server.serve_one(h.io.server_side()));
    const auto reply = client_side.recv_frame();
    ASSERT_TRUE(reply.has_value());
    replies.push_back(*reply);
  }

  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], replies[1]);  // byte-identical replay
  const auto decoded = wire::decode_frame(replies[1]);
  ASSERT_TRUE(decoded.ok());
  const auto message = wire::decode_etsi(decoded.value);
  ASSERT_TRUE(message.ok());
  const auto& reply = std::get<wire::KmsKeyWithIdReply>(message.value);
  EXPECT_TRUE(reply.ok);
  EXPECT_TRUE(reply.bits == granted->bits);
  EXPECT_EQ(h.kms.stats().claims_fulfilled, 1u);  // executed once
}

TEST(KmsWire, MalformedFrameIsDroppedNotFatal) {
  Harness h;
  net::ChannelTransport client_side(h.channel,
                                    net::ChannelTransport::Side::kA);
  Bytes corrupt = wire::encode_frame(wire::PacketType::kKmsStatus, Bytes{1});
  corrupt.back() ^= 0xFF;        // still a valid frame header...
  corrupt.push_back(0x00);       // ...but now the payload has trailing junk
  const auto total = wire::frame_total_length(corrupt);
  ASSERT_TRUE(total.ok());  // header stays plausible; the payload is junk

  ASSERT_TRUE(client_side.send_frame(corrupt));
  EXPECT_TRUE(h.server.serve_one(h.io.server_side()));  // dropped, not fatal

  // The conversation continues normally afterwards.
  const auto id = h.client.register_app("survivor", 1, 2);
  EXPECT_TRUE(id.has_value());
}

}  // namespace
}  // namespace qkd::kms
