// The sharded KMS: pair-to-shard routing (reversed pairs co-locate),
// stats aggregation across shards, end-to-end epoch-mode grants on a
// ShardedScheduler — and the headline contract, that a fixed seed yields
// IDENTICAL per-client grant sequences for any shard count and any worker
// lane count.
#include "src/kms/kms.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "src/network/key_service.hpp"
#include "src/sim/sharded_scheduler.hpp"
#include "tests/testing/seeded_rng.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

/// A relay hub with `pairs` disjoint endpoint pairs fanned around it, hot
/// enough (~1 Mb/s distilled per link) that supply never bounds the tests
/// that are about scheduling rather than starvation. Pair p is the ordered
/// endpoints (1 + 2p, 2 + 2p).
Topology hot_fan(std::size_t pairs) {
  Topology topo;
  const NodeId hub = topo.add_node("hub", NodeKind::kTrustedRelay);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  for (std::size_t p = 0; p < 2 * pairs; ++p) {
    const NodeId node =
        topo.add_node("e" + std::to_string(p), NodeKind::kEndpoint);
    topo.add_link(hub, node, optics);
  }
  return topo;
}

TEST(KmsSharded, ReversedPairsHashToTheSameShard) {
  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  MeshSimulation mesh(hot_fan(1), 7);
  KeyManagementService::Config config;
  config.shards = 5;
  KeyManagementService kms(mesh, scheduler, config);
  ASSERT_EQ(kms.shard_count(), 5u);
  QKD_SEEDED_RNG(rng, 23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<NodeId>(1 + rng.next_below(1000));
    const auto b = static_cast<NodeId>(1001 + rng.next_below(1000));
    const std::size_t shard = kms.shard_of(a, b);
    ASSERT_LT(shard, 5u);
    EXPECT_EQ(shard, kms.shard_of(b, a)) << a << "," << b;
    seen.insert(shard);
  }
  // 200 random pairs over 5 shards: a healthy hash occupies every shard.
  EXPECT_EQ(seen.size(), 5u);
}

TEST(KmsSharded, RejectsZeroShards) {
  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  MeshSimulation mesh(hot_fan(1), 7);
  KeyManagementService::Config config;
  config.shards = 0;
  EXPECT_THROW(KeyManagementService(mesh, scheduler, config),
               std::invalid_argument);
}

/// Sharding on a plain EventScheduler is pure partitioning: grants still
/// flow, per-shard stats sum to the aggregate, and inspect_pairs stays
/// globally ordered.
TEST(KmsSharded, SingleStreamShardsPartitionAndAggregate) {
  constexpr std::size_t kPairs = 8;
  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  MeshSimulation mesh(hot_fan(kPairs), 7);
  mesh.step(20.0);
  KeyManagementService::Config config;
  config.shards = 4;
  KeyManagementService kms(mesh, scheduler, config);

  std::size_t granted = 0;
  for (std::size_t p = 0; p < kPairs; ++p) {
    const auto src = static_cast<NodeId>(1 + 2 * p);
    const auto dst = static_cast<NodeId>(2 + 2 * p);
    const ClientId id = kms.register_client(
        {"app-" + std::to_string(p), src, dst, QosClass::kInteractive});
    kms.get_key(id, 512, [&granted](const Grant& grant) {
      if (grant.status == GrantStatus::kGranted) ++granted;
    });
  }
  scheduler.run_for(kSecond);
  EXPECT_EQ(granted, kPairs);

  // The shards partition the pairs (this topology/hash spreads them);
  // their per-shard counters sum to the aggregated view.
  std::map<std::size_t, std::size_t> pairs_per_shard;
  for (std::size_t p = 0; p < kPairs; ++p)
    ++pairs_per_shard[kms.shard_of(static_cast<NodeId>(1 + 2 * p),
                                   static_cast<NodeId>(2 + 2 * p))];
  EXPECT_GT(pairs_per_shard.size(), 1u);

  std::uint64_t shard_granted = 0;
  std::uint64_t shard_transports = 0;
  for (std::size_t s = 0; s < kms.shard_count(); ++s) {
    shard_granted +=
        kms.shard_class_stats(s, QosClass::kInteractive).granted;
    shard_transports += kms.shard_stats(s).transports;
  }
  EXPECT_EQ(shard_granted, kms.class_stats(QosClass::kInteractive).granted);
  EXPECT_EQ(shard_transports, kms.stats().transports);
  EXPECT_EQ(shard_granted, granted);

  const auto inspections = kms.inspect_pairs();
  ASSERT_EQ(inspections.size(), kPairs);
  for (std::size_t i = 1; i < inspections.size(); ++i)
    EXPECT_LT(std::make_pair(inspections[i - 1].src, inspections[i - 1].dst),
              std::make_pair(inspections[i].src, inspections[i].dst));
}

TEST(KmsSharded, EpochModeGrantsAndPeerClaimsEndToEnd) {
  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  auto pool = std::make_shared<common::WorkerPool>(2);
  sim::ShardedScheduler sharded(scheduler, 2, pool);
  MeshSimulation mesh(hot_fan(2), 7);
  mesh.step(20.0);
  KeyManagementService kms(mesh, sharded);

  const ClientId alice =
      kms.register_client({"alice", 1, 2, QosClass::kInteractive});
  const ClientId bob =
      kms.register_client({"bob", 2, 1, QosClass::kInteractive});

  std::vector<Grant> grants;
  std::mutex mu;  // grant callbacks run on shard lanes
  kms.get_key(alice, 512, [&](const Grant& grant) {
    std::scoped_lock lock(mu);
    grants.push_back(grant);
  });
  EXPECT_TRUE(grants.empty()) << "grants arrive on scheduler deadlines";
  sharded.run_until(kSecond);

  ASSERT_EQ(grants.size(), 1u);
  ASSERT_EQ(grants[0].status, GrantStatus::kGranted);
  EXPECT_EQ(grants[0].bits.size(), 512u);

  // The peer (registered on the REVERSED pair — same shard by the
  // unordered hash) claims the same bits under the same key_id.
  const auto peer = kms.get_key_with_id(bob, grants[0].key_id);
  ASSERT_TRUE(peer.has_value());
  EXPECT_EQ(peer->key_id, grants[0].key_id);
  EXPECT_TRUE(peer->bits == grants[0].bits);
  // Claimed is claimed.
  EXPECT_FALSE(kms.get_key_with_id(bob, grants[0].key_id).has_value());
  EXPECT_EQ(kms.stats().claims_fulfilled, 1u);
}

// ---- The determinism contract ----------------------------------------------

struct GrantEvent {
  GrantStatus status = GrantStatus::kGranted;
  std::uint64_t key_id = 0;
  qkd::BitVector bits;
  qkd::SimTime granted_at = 0;

  bool operator==(const GrantEvent& other) const {
    return status == other.status && key_id == other.key_id &&
           bits == other.bits && granted_at == other.granted_at;
  }
};

/// Drives a fixed multi-pair, multi-class workload through an epoch-mode
/// KMS and returns every client's full grant sequence.
std::vector<std::vector<GrantEvent>> run_epoch_workload(std::size_t shards,
                                                        std::size_t lanes,
                                                        std::uint64_t seed) {
  constexpr std::size_t kPairs = 4;
  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  auto pool = std::make_shared<common::WorkerPool>(lanes);
  sim::ShardedScheduler sharded(scheduler, shards, pool);
  MeshSimulation mesh(hot_fan(kPairs), 7);
  mesh.step(30.0);
  KeyManagementService::Config config;
  config.seed = seed;
  KeyManagementService kms(mesh, sharded, config);

  struct Driven {
    ClientId id;
    NodeId src, dst;
    std::size_t bits;
  };
  std::vector<Driven> driven;
  for (std::size_t p = 0; p < kPairs; ++p) {
    const auto src = static_cast<NodeId>(1 + 2 * p);
    const auto dst = static_cast<NodeId>(2 + 2 * p);
    for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
      const ClientId id = kms.register_client(
          {"c" + std::to_string(p) + "-" + std::to_string(qos), src, dst,
           static_cast<QosClass>(qos)});
      driven.push_back({id, src, dst, 300u + 400u * qos});
    }
  }

  std::vector<std::vector<GrantEvent>> logs(driven.size());
  for (std::size_t c = 0; c < driven.size(); ++c) {
    const Driven& d = driven[c];
    // Each ticker lives on the stream that serves its pair; the grant
    // callback therefore writes logs[c] only from that pair's lane —
    // shard-disjoint, so no synchronization is needed.
    kms.stream_for_pair(d.src, d.dst)
        .every((c + 1) * kMillisecond, 20 * kMillisecond,
               [&kms, &logs, c, d](qkd::SimTime) {
                 kms.get_key(d.id, d.bits, [&logs, c](const Grant& grant) {
                   logs[c].push_back({grant.status, grant.key_id, grant.bits,
                                      grant.granted_at});
                 });
               });
  }
  sharded.run_until(2 * kSecond);
  return logs;
}

/// Same seed => same per-client grant sequence (status, key_id, bits,
/// grant time) no matter how the pairs are sharded or how many lanes
/// execute the shards. This is the acceptance gate for running tier-1
/// semantics on parallel hardware.
TEST(KmsSharded, GrantSequencesIdenticalForAnyShardAndLaneCount) {
  QKD_SEEDED_RNG(rng, 31);
  const std::uint64_t seed = rng.next_u64();
  const auto one_shard = run_epoch_workload(1, 1, seed);
  const auto four_shards = run_epoch_workload(4, 1, seed);
  const auto four_shards_threaded = run_epoch_workload(4, 2, seed);

  ASSERT_EQ(one_shard.size(), four_shards.size());
  std::size_t grants = 0;
  for (std::size_t c = 0; c < one_shard.size(); ++c) {
    EXPECT_EQ(one_shard[c], four_shards[c]) << "client " << c;
    EXPECT_EQ(one_shard[c], four_shards_threaded[c]) << "client " << c;
    grants += one_shard[c].size();
  }
  EXPECT_GT(grants, 100u) << "the workload must actually exercise grants";
}

TEST(KmsSharded, DifferentSeedsProduceDifferentKeyMaterial) {
  const auto a = run_epoch_workload(2, 1, 1);
  const auto b = run_epoch_workload(2, 1, 2);
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t c = 0; c < a.size(); ++c) {
    for (std::size_t g = 0; g < std::min(a[c].size(), b[c].size()); ++g)
      if (!(a[c][g].bits == b[c][g].bits)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

/// Epoch mode against the REAL protocol engine: the mesh's LinkKeyService
/// distills on the same shared worker pool the shards run on, frames
/// withdraw true hop pads at the barrier, and replenish wakeups cross from
/// the supply layer into shard streams.
TEST(KmsSharded, EpochModeRunsOnEngineBackedMeshWithSharedPool) {
  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  auto pool = std::make_shared<common::WorkerPool>(2);
  sim::ShardedScheduler sharded(scheduler, 2, pool);

  // A pulse rate the REAL pipeline can simulate in test time: one hub,
  // one endpoint pair, half-megaslot frames, 10 MHz clocking.
  Topology topo;
  const NodeId hub = topo.add_node("hub", NodeKind::kTrustedRelay);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e7;
  topo.add_link(hub, topo.add_node("a", NodeKind::kEndpoint), optics);
  topo.add_link(hub, topo.add_node("b", NodeKind::kEndpoint), optics);

  network::LinkKeyService::Config engine;
  engine.proto.frame_slots = 1 << 19;
  engine.proto.auth_replenish_bits = 64;
  engine.pool = pool;  // one pool serves distillation AND shard execution
  MeshSimulation mesh(topo, 7, engine);
  mesh.step(0.5);  // ten frames of head start on both links

  KeyManagementService kms(mesh, sharded);

  // Distill on the global stream (the coordinator phase), as a scenario
  // would: the mesh is shared state and must never move during a shard
  // phase.
  scheduler.every(50 * kMillisecond, 50 * kMillisecond,
                  [&mesh](qkd::SimTime) { mesh.step(0.05); });

  const ClientId alice =
      kms.register_client({"alice", 1, 2, QosClass::kRealtime});
  std::mutex mu;
  std::vector<Grant> grants;
  kms.stream_for_pair(1, 2).every(
      200 * kMillisecond, 200 * kMillisecond, [&](qkd::SimTime) {
        kms.get_key(alice, 128, [&](const Grant& grant) {
          std::scoped_lock lock(mu);
          grants.push_back(grant);
        });
      });
  sharded.run_until(2 * kSecond);

  ASSERT_GE(grants.size(), 8u);
  for (const Grant& grant : grants)
    EXPECT_EQ(grant.status, GrantStatus::kGranted);
  EXPECT_GT(kms.stats().transports, 0u);
}

}  // namespace
}  // namespace qkd::kms
