// The PR's acceptance path: one traced get_key through the KmsWireClient
// is ONE trace — the client span, the version-2 frame across the channel,
// the server span, admission, the service round with its DRR pick, the
// mesh plan and per-link hops, and the grant — all sharing a trace_id and
// parent-linked into a single tree, exported as loadable Chrome JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/kms/wire_service.hpp"
#include "src/net/channel_transport.hpp"
#include "src/network/key_service.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"

namespace qkd::kms {
namespace {

using network::NodeId;
using network::NodeKind;
using network::Topology;

Topology hot_star() {
  Topology topo;
  const NodeId relay = topo.add_node("relay", NodeKind::kTrustedRelay);
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  topo.add_link(relay, a, optics);
  topo.add_link(relay, b, optics);
  return topo;
}

/// Client-side transport that pumps the server whenever the client inbox
/// is drained (same single-threaded stand-in as the wire API tests).
class ServedChannel final : public wire::Transport {
 public:
  ServedChannel(net::PublicChannel& channel, KmsWireServer& server)
      : client_side_(channel, net::ChannelTransport::Side::kA),
        server_side_(channel, net::ChannelTransport::Side::kB),
        server_(server) {}

  bool send_frame(const Bytes& frame) override {
    return client_side_.send_frame(frame);
  }
  std::optional<Bytes> recv_frame() override {
    if (auto ready = client_side_.recv_frame()) return ready;
    server_.serve_one(server_side_);
    return client_side_.recv_frame();
  }

 private:
  net::ChannelTransport client_side_;
  net::ChannelTransport server_side_;
  KmsWireServer& server_;
};

struct Harness {
  Harness() : mesh(hot_star(), 77), scheduler(clock), kms(mesh, scheduler, {}),
              server(kms, scheduler), io(channel, server), client(io) {
    mesh.step(20.0);  // supply never bounds this test
  }

  network::MeshSimulation mesh;
  qkd::SimClock clock;
  sim::EventScheduler scheduler;
  KeyManagementService kms;
  net::PublicChannel channel;
  KmsWireServer server;
  ServedChannel io;
  KmsWireClient client;
};

TEST(KmsTraceIntegration, OneWireGetKeyIsOneConnectedTrace) {
  Harness h;
  // Register before tracing starts: only the grant conversation should be
  // in the trace buffer when we assert on it.
  const auto alice = h.client.register_app("alice-app", 1, 2);
  ASSERT_TRUE(alice.has_value());

  obs::Tracer tracer(h.kms.shard_count());
  tracer.set_sim_time_source([&h] { return h.scheduler.now(); });
  tracer.set_enabled(true);
  h.client.set_tracer(&tracer);
  h.server.set_tracer(&tracer);
  h.kms.set_tracer(&tracer);
  h.mesh.set_tracer(&tracer);

  const auto reply = h.client.get_key(*alice, 512);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->status, GrantStatus::kGranted);

  const std::vector<obs::Span> spans = tracer.spans();
  ASSERT_FALSE(spans.empty());

  // Index the tree.
  std::map<std::uint64_t, const obs::Span*> by_id;
  std::multiset<std::string> names;
  for (const obs::Span& span : spans) {
    by_id[span.span_id] = &span;
    names.insert(span.name);
  }

  // Every stage of the path shows up...
  for (const char* required :
       {"kms.client.get_key", "kms.server.get_key", "kms.admit",
        "kms.service_round", "kms.drr_select", "mesh.plan", "mesh.hop",
        "kms.grant_round"})
    EXPECT_GE(names.count(required), 1u) << "missing span: " << required;
  // ...and a two-link relay route walks two hops.
  EXPECT_GE(names.count("mesh.hop"), 2u);

  // ONE trace: every span carries the client root's trace_id, the client
  // span is the only root, and every parent pointer lands on a recorded
  // span (nothing dangles — the wire crossing included).
  const obs::Span* root = nullptr;
  for (const obs::Span& span : spans)
    if (span.name == "kms.client.get_key") root = &span;
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_span, 0u);
  for (const obs::Span& span : spans) {
    EXPECT_EQ(span.trace_id, root->trace_id) << span.name;
    if (&span == root) continue;
    EXPECT_NE(span.parent_span, 0u) << span.name << " is a stray root";
    EXPECT_TRUE(by_id.count(span.parent_span))
        << span.name << " parent not recorded";
    EXPECT_GE(span.sim_end, span.sim_start) << span.name << " never closed";
  }

  // The grant's ancestry chains back across the wire to the client call.
  const obs::Span* cursor = nullptr;
  for (const obs::Span& span : spans)
    if (span.name == "kms.grant_round") cursor = &span;
  ASSERT_NE(cursor, nullptr);
  std::vector<std::string> ancestry;
  while (cursor->parent_span != 0) {
    cursor = by_id.at(cursor->parent_span);
    ancestry.push_back(cursor->name);
  }
  EXPECT_EQ(ancestry.back(), "kms.client.get_key");
  EXPECT_NE(std::find(ancestry.begin(), ancestry.end(), "kms.server.get_key"),
            ancestry.end())
      << "grant ancestry skips the server span";

  // And the export is a loadable, non-empty Chrome trace document.
  const std::string json = obs::chrome_trace_json(tracer);
  EXPECT_EQ(json.find("{\"traceEvents\":[{"), 0u);
  EXPECT_NE(json.find("\"kms.client.get_key\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":" + std::to_string(root->trace_id)),
            std::string::npos);
}

TEST(KmsTraceIntegration, UntracedClientStillWorksAndRecordsNothing) {
  Harness h;
  obs::Tracer tracer(h.kms.shard_count());
  tracer.set_enabled(true);
  // Server-side layers traced, client not: the v1 frame carries no
  // context, so the server must see untraced requests (and the KMS side
  // roots its own service spans rather than crashing or cross-linking).
  h.server.set_tracer(&tracer);
  h.kms.set_tracer(&tracer);
  h.mesh.set_tracer(&tracer);

  const auto alice = h.client.register_app("alice-app", 1, 2);
  ASSERT_TRUE(alice.has_value());
  const auto reply = h.client.get_key(*alice, 256);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, GrantStatus::kGranted);

  for (const obs::Span& span : tracer.spans()) {
    EXPECT_NE(span.name, "kms.client.get_key");
    if (span.name == "kms.server.get_key")
      EXPECT_EQ(span.parent_span, 0u) << "no context arrived on a v1 frame";
  }
}

}  // namespace
}  // namespace qkd::kms
