// Regression: get_key_with_id claim-TTL expiry. An unclaimed peer copy
// whose TTL has elapsed is not leaked — its bits are redeposited into BOTH
// mirror stores through identical calls (the pair stays in lockstep and
// the material is re-servable) — and a claim arriving exactly at the TTL
// instant is already too late.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/kms/kms.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

Topology hot_star() {
  Topology topo;
  const NodeId relay = topo.add_node("relay", NodeKind::kTrustedRelay);
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  topo.add_link(relay, a, optics);
  topo.add_link(relay, b, optics);
  return topo;
}

struct Harness {
  explicit Harness(KeyManagementService::Config config)
      : mesh(hot_star(), 77), scheduler(clock), kms(mesh, scheduler, config) {
    mesh.step(20.0);
  }

  MeshSimulation mesh;
  qkd::SimClock clock;
  sim::EventScheduler scheduler;
  KeyManagementService kms;
};

KeyManagementService::Config short_ttl() {
  KeyManagementService::Config config;
  config.claim_ttl = 5 * kSecond;
  return config;
}

/// The granted direction's inspection snapshot (bob's reversed pair is a
/// separate, untouched entry).
KeyManagementService::PairInspection forward_pair(
    const KeyManagementService& kms) {
  for (const auto& pair : kms.inspect_pairs())
    if (pair.src == 1 && pair.dst == 2) return pair;
  ADD_FAILURE() << "pair 1->2 missing";
  return {};
}

TEST(KmsClaimTtl, ClaimAtExactlyTheTtlInstantIsExpiredAndReclaimed) {
  Harness h(short_ttl());
  const ClientId alice =
      h.kms.register_client({"alice-app", 1, 2, QosClass::kInteractive});
  const ClientId bob =
      h.kms.register_client({"bob-app", 2, 1, QosClass::kInteractive});

  std::vector<Grant> grants;
  h.kms.get_key(alice, 512, [&](const Grant& g) { grants.push_back(g); });
  h.scheduler.run_for(kSecond);
  ASSERT_EQ(grants.size(), 1u);
  ASSERT_EQ(grants[0].status, GrantStatus::kGranted);

  const auto before = forward_pair(h.kms);
  EXPECT_EQ(before.claims_outstanding, 1u);
  ASSERT_EQ(before.src_available_bits, before.dst_available_bits);

  // Claim exactly at expires_at: too late, by the strict boundary.
  std::optional<keystore::KeyBlock> claimed;
  h.scheduler.at(grants[0].granted_at + h.kms.config().claim_ttl,
                 [&](qkd::SimTime) {
                   claimed = h.kms.get_key_with_id(bob, grants[0].key_id);
                 });
  h.scheduler.run_for(10 * kSecond);
  EXPECT_FALSE(claimed.has_value());
  EXPECT_EQ(h.kms.stats().claims_expired, 1u);
  EXPECT_EQ(h.kms.stats().claims_fulfilled, 0u);
  EXPECT_EQ(h.kms.stats().bits_reclaimed, 512u);

  // The copy was released back into BOTH pools in lockstep, not leaked.
  const auto after = forward_pair(h.kms);
  EXPECT_EQ(after.claims_outstanding, 0u);
  EXPECT_EQ(after.src_available_bits, before.src_available_bits + 512);
  EXPECT_EQ(after.dst_available_bits, before.dst_available_bits + 512);
  EXPECT_EQ(after.src_next_key_id, after.dst_next_key_id);
  EXPECT_EQ(after.src_stats.bits_deposited, after.dst_stats.bits_deposited);
}

TEST(KmsClaimTtl, ClaimJustBeforeTheTtlStillSucceeds) {
  Harness h(short_ttl());
  const ClientId alice =
      h.kms.register_client({"alice-app", 1, 2, QosClass::kInteractive});
  const ClientId bob =
      h.kms.register_client({"bob-app", 2, 1, QosClass::kInteractive});

  std::vector<Grant> grants;
  h.kms.get_key(alice, 256, [&](const Grant& g) { grants.push_back(g); });
  h.scheduler.run_for(kSecond);
  ASSERT_EQ(grants.size(), 1u);

  std::optional<keystore::KeyBlock> claimed;
  h.scheduler.at(
      grants[0].granted_at + h.kms.config().claim_ttl - kMillisecond,
      [&](qkd::SimTime) {
        claimed = h.kms.get_key_with_id(bob, grants[0].key_id);
      });
  h.scheduler.run_for(10 * kSecond);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_TRUE(claimed->bits == grants[0].bits);
  EXPECT_EQ(h.kms.stats().claims_expired, 0u);
  EXPECT_EQ(h.kms.stats().bits_reclaimed, 0u);
}

TEST(KmsClaimTtl, ReclaimedMaterialIsReservableAndStaysInAgreement) {
  Harness h(short_ttl());
  const ClientId alice =
      h.kms.register_client({"alice-app", 1, 2, QosClass::kInteractive});
  const ClientId bob =
      h.kms.register_client({"bob-app", 2, 1, QosClass::kInteractive});

  // Grant #1 goes unclaimed past its TTL...
  std::vector<Grant> grants;
  h.kms.get_key(alice, 128, [&](const Grant& g) { grants.push_back(g); });
  h.scheduler.run_for(10 * kSecond);  // well past the 5 s TTL (lazy purge)
  ASSERT_EQ(grants.size(), 1u);

  // ...then grant #2 is served after the reclaim; the mirrored stores must
  // still agree end to end (the reclaim deposited into both identically).
  h.kms.get_key(alice, 128, [&](const Grant& g) { grants.push_back(g); });
  h.scheduler.run_for(kSecond);
  ASSERT_EQ(grants.size(), 2u);
  ASSERT_EQ(grants[1].status, GrantStatus::kGranted);
  EXPECT_GT(grants[1].key_id, grants[0].key_id);

  const auto peer = h.kms.get_key_with_id(bob, grants[1].key_id);
  ASSERT_TRUE(peer.has_value());
  EXPECT_TRUE(peer->bits == grants[1].bits);
  EXPECT_EQ(h.kms.stats().claims_expired, 1u);
  EXPECT_EQ(h.kms.stats().bits_reclaimed, 128u);
}

}  // namespace
}  // namespace qkd::kms
