// Cross-shard stats aggregation under concurrent grants: a monitoring
// thread polls the KMS introspection surface (stats / class_stats /
// latency quantiles / shedding) and a bound MetricsRegistry while shard
// lanes are actively granting on a ShardedScheduler. The shard counters
// are relaxed atomics snapshotted on read, so this must be TSan-clean —
// the regression test for the observability layer's concurrency contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/kms/kms.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/sharded_scheduler.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

/// Relay hub fanned out to `pairs` disjoint endpoint pairs, hot enough
/// that the workload is scheduling-bound (pair p = endpoints (1+2p, 2+2p)).
Topology hot_fan(std::size_t pairs) {
  Topology topo;
  const NodeId hub = topo.add_node("hub", NodeKind::kTrustedRelay);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  for (std::size_t p = 0; p < 2 * pairs; ++p) {
    const NodeId node =
        topo.add_node("e" + std::to_string(p), NodeKind::kEndpoint);
    topo.add_link(hub, node, optics);
  }
  return topo;
}

TEST(KmsStatsConcurrency, AggregationIsSafeWhileShardLanesGrant) {
  constexpr std::size_t kPairs = 6;
  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  auto pool = std::make_shared<common::WorkerPool>(3);
  sim::ShardedScheduler sharded(scheduler, 3, pool);
  MeshSimulation mesh(hot_fan(kPairs), 7);
  mesh.step(30.0);
  KeyManagementService kms(mesh, sharded);

  obs::MetricsRegistry registry(kms.shard_count());
  kms.bind_metrics(registry, "kms");

  std::atomic<std::uint64_t> granted_cb{0};
  for (std::size_t p = 0; p < kPairs; ++p) {
    const auto src = static_cast<NodeId>(1 + 2 * p);
    const auto dst = static_cast<NodeId>(2 + 2 * p);
    for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
      const ClientId id = kms.register_client(
          {"c" + std::to_string(p) + "-" + std::to_string(qos), src, dst,
           static_cast<QosClass>(qos)});
      // Tickers live on the pair's own stream; grant callbacks run on the
      // owning shard's lane, concurrently across shards.
      kms.stream_for_pair(src, dst).every(
          (p + qos + 1) * kMillisecond, 15 * kMillisecond,
          [&kms, &granted_cb, id](qkd::SimTime) {
            kms.get_key(id, 256, [&granted_cb](const Grant& grant) {
              if (grant.status == GrantStatus::kGranted)
                granted_cb.fetch_add(1, std::memory_order_relaxed);
            });
          });
    }
  }

  // The monitoring thread: the ONE concurrent reader the aggregation
  // surface promises to support. It must never crash, race, or observe a
  // granted count that moves backwards.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread monitor([&] {
    std::uint64_t last_granted = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const KeyManagementService::Stats& stats = kms.stats();
      ASSERT_LE(stats.starved_rounds, stats.service_rounds);
      std::uint64_t granted = 0;
      for (unsigned qos = 0; qos < kQosClassCount; ++qos)
        granted += kms.class_stats(static_cast<QosClass>(qos)).granted;
      ASSERT_GE(granted, last_granted) << "granted count moved backwards";
      last_granted = granted;
      (void)kms.p99_grant_latency_s(QosClass::kInteractive);
      (void)kms.shedding();
      // The registry path reads the same shard atomics through the
      // collector.
      const auto samples = registry.snapshot();
      ASSERT_FALSE(samples.empty());
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  sharded.run_until(2 * kSecond);
  done.store(true);
  monitor.join();

  EXPECT_GT(polls.load(), 0u);
  EXPECT_GT(granted_cb.load(), 50u) << "workload must actually grant";
  // Quiesced now: the aggregate equals what the callbacks observed, and
  // per-shard counters sum to the aggregate.
  std::uint64_t granted = 0;
  std::uint64_t shard_granted = 0;
  for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
    granted += kms.class_stats(static_cast<QosClass>(qos)).granted;
    for (std::size_t s = 0; s < kms.shard_count(); ++s)
      shard_granted +=
          kms.shard_class_stats(s, static_cast<QosClass>(qos)).granted;
  }
  EXPECT_EQ(granted, granted_cb.load());
  EXPECT_EQ(shard_granted, granted);
}

}  // namespace
}  // namespace qkd::kms
