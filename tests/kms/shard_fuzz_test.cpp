// Randomized shard-boundary invariants: generated scenario scripts (the
// same ScenarioFuzzer corpus the scenarios suite replays) run through an
// EPOCH-MODE sharded KMS, checking after every scenario action and at the
// horizon that
//
//   * lockstep      — each pair's mirrored pools agree on every counter no
//                     matter which shard serves them
//   * conservation  — bits granted == bits withdrawn <= bits distilled
//                     into the pair stores, summed ACROSS shards
//   * QoS floor     — realtime is never shed
//   * flagging      — compromise marking matches the owned-relay set
//
// and — the shard-boundary contract itself — that a fixed case replayed
// with 1 shard and with 4 shards (and with 1 and 2 worker lanes) delivers
// IDENTICAL per-client grant sequences.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/sim/fuzz.hpp"
#include "src/sim/sharded_scheduler.hpp"
#include "tests/testing/seeded_rng.hpp"

namespace qkd::kms {
namespace {

struct GrantEvent {
  GrantStatus status = GrantStatus::kGranted;
  std::uint64_t key_id = 0;
  qkd::BitVector bits;
  qkd::SimTime granted_at = 0;

  bool operator==(const GrantEvent& other) const {
    return status == other.status && key_id == other.key_id &&
           bits == other.bits && granted_at == other.granted_at;
  }
};

struct ShardedFuzzResult {
  std::string violation;  // empty: every invariant held to the horizon
  std::uint64_t grants = 0;
  /// client id -> its full grant sequence in delivery order.
  std::map<ClientId, std::vector<GrantEvent>> per_client;
};

/// The sharded twin of testing::run_fuzz_case: same generated script, same
/// fleet, same invariants — but the KMS runs in epoch mode on a
/// ShardedScheduler with the given shard/lane counts.
ShardedFuzzResult run_sharded_case(const sim::FuzzCase& fuzz_case,
                                   std::size_t shards, std::size_t lanes) {
  ShardedFuzzResult result;
  network::MeshSimulation mesh(fuzz_case.topology, fuzz_case.mesh_seed);
  sim::ScenarioRunner runner(fuzz_case.scenario);
  runner.attach_mesh(mesh);
  sim::ShardedScheduler sharded(
      runner.scheduler(), shards,
      std::make_shared<common::WorkerPool>(lanes));

  KeyManagementService::Config kms_config;
  kms_config.shed_after_starved_rounds = 2;  // droughts reach the shedder
  KeyManagementService kms(mesh, sharded, kms_config);
  KmsClientFleet fleet(kms, runner.scheduler());
  runner.attach_client_driver(fleet);

  std::string violation;
  // One mutex serializes the observer across shard lanes; within a client
  // the order of its grants is its own lane's serial order, so the
  // per-client sequences are still deterministic.
  std::mutex mu;
  const auto flag = [&violation](std::string message) {
    if (violation.empty()) violation = std::move(message);
  };

  // Relays currently owned, mirrored from the applied actions (mutated
  // only in the global phase, read only in shard/barrier phases — never
  // concurrently).
  std::set<network::NodeId> owned;

  std::uint64_t grants = 0;
  kms.set_grant_observer([&](const Grant& grant) {
    std::scoped_lock lock(mu);
    result.per_client[grant.client].push_back(
        {grant.status, grant.key_id, grant.bits, grant.granted_at});
    if (grant.status != GrantStatus::kGranted) return;
    ++grants;
    if (grant.granted_at < grant.requested_at)
      flag("grant timestamps ran backwards (granted_at < requested_at)");
    bool exposed_to_owned = false;
    for (network::NodeId node : grant.exposed_to)
      if (owned.count(node) != 0) exposed_to_owned = true;
    if (grant.compromised != exposed_to_owned)
      flag(std::string("compromise flagging broken: grant ") +
           (grant.compromised ? "flagged with no owned relay on its route"
                              : "traversed an owned relay unflagged"));
  });

  qkd::SimTime last_now = -1;
  const auto check_invariants = [&](qkd::SimTime now) {
    if (now < last_now) flag("scenario time ran backwards");
    last_now = now;

    std::uint64_t withdrawn = 0;
    std::uint64_t deposited = 0;
    for (const auto& pair : kms.inspect_pairs()) {
      const std::string tag = "pair " + std::to_string(pair.src) + "->" +
                              std::to_string(pair.dst) + ": mirrored stores ";
      if (pair.src_available_bits != pair.dst_available_bits)
        flag(tag + "diverged in available bits");
      if (pair.src_next_key_id != pair.dst_next_key_id)
        flag(tag + "diverged in next key_id");
      if (pair.src_stats.bits_deposited != pair.dst_stats.bits_deposited ||
          pair.src_stats.bits_withdrawn != pair.dst_stats.bits_withdrawn ||
          pair.src_stats.failed_withdrawals !=
              pair.dst_stats.failed_withdrawals)
        flag(tag + "diverged in flow counters");
      withdrawn += pair.src_stats.bits_withdrawn;
      deposited += pair.src_stats.bits_deposited;
    }

    std::uint64_t granted_bits = 0;
    for (std::size_t qos = 0; qos < kQosClassCount; ++qos)
      granted_bits += kms.class_stats(static_cast<QosClass>(qos)).bits_granted;
    if (granted_bits != withdrawn)
      flag("conservation broken across shards: granted " +
           std::to_string(granted_bits) + " bits but withdrew " +
           std::to_string(withdrawn));
    if (withdrawn > deposited)
      flag("conservation broken: withdrew " + std::to_string(withdrawn) +
           " bits from " + std::to_string(deposited) + " distilled");

    if (kms.class_stats(QosClass::kRealtime).shed != 0)
      flag("the realtime class was shed");
  };

  runner.set_action_observer(
      [&](qkd::SimTime now, const sim::ScenarioAction& action) {
        if (const auto* compromise = std::get_if<sim::CompromiseNode>(&action))
          owned.insert(compromise->node);
        if (const auto* restore = std::get_if<sim::RestoreNode>(&action))
          owned.erase(restore->node);
        check_invariants(now);
      });

  runner.run(sharded, fuzz_case.horizon);
  check_invariants(runner.clock().now());
  result.grants = grants;
  result.violation = std::move(violation);
  return result;
}

sim::ScenarioFuzzer::Config short_cases() {
  sim::ScenarioFuzzer::Config config;
  config.horizon = 20 * kSecond;  // bounded wall-clock per case
  return config;
}

/// Generated scripts against a 3-shard, 2-lane epoch KMS: every
/// shard-boundary invariant holds after every action.
TEST(KmsShardFuzz, GeneratedScenariosHoldInvariantsUnderSharding) {
  QKD_SEEDED_RNG(rng, 9100);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t seed = rng.next_u64();
    const sim::FuzzCase fuzz_case =
        sim::ScenarioFuzzer(seed, short_cases()).generate();
    if (!sim::validate_actions(fuzz_case.topology, fuzz_case.scenario)
             .empty())
      continue;  // the fuzzer generates legal scripts; belt and braces
    const auto result = run_sharded_case(fuzz_case, 3, 2);
    EXPECT_EQ(result.violation, "")
        << "seed " << seed << "\n"
        << fuzz_case.script();
  }
}

/// The shard-boundary determinism contract under a randomized script:
/// 1 shard, 4 shards and 4 shards on 2 lanes all deliver the same grants
/// to the same clients at the same times.
TEST(KmsShardFuzz, ShardCountDoesNotChangePerClientGrantSequences) {
  QKD_SEEDED_RNG(rng, 9200);
  const std::uint64_t seed = rng.next_u64();
  const sim::FuzzCase fuzz_case =
      sim::ScenarioFuzzer(seed, short_cases()).generate();

  const auto one = run_sharded_case(fuzz_case, 1, 1);
  const auto four = run_sharded_case(fuzz_case, 4, 1);
  const auto four_threaded = run_sharded_case(fuzz_case, 4, 2);

  EXPECT_EQ(one.violation, "") << fuzz_case.script();
  EXPECT_EQ(one.grants, four.grants);
  EXPECT_EQ(one.grants, four_threaded.grants);
  ASSERT_EQ(one.per_client.size(), four.per_client.size());
  for (const auto& [client, log] : one.per_client) {
    const auto it = four.per_client.find(client);
    ASSERT_NE(it, four.per_client.end()) << "client " << client;
    EXPECT_EQ(log, it->second) << "client " << client << " diverged, seed "
                               << seed;
    const auto threaded = four_threaded.per_client.find(client);
    ASSERT_NE(threaded, four_threaded.per_client.end());
    EXPECT_EQ(log, threaded->second)
        << "client " << client << " diverged under lanes, seed " << seed;
  }
  EXPECT_GT(one.grants, 0u) << "the case must actually grant; seed " << seed;
}

}  // namespace
}  // namespace qkd::kms
