// The KMS on the scenario engine: ClientArrival/ClientDeparture actions
// ramp a fleet up and down, an eavesdropping-induced drought sheds
// low-priority load first and recovers, and the TimelineRecorder samples
// per-class service state (including the to_csv export).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::Topology;
using namespace qkd::sim;

/// relay_ring(6) with optics hot enough (~tens of kb/s distilled per link)
/// to feed a small fleet; endpoints are nodes 6 (alice, tail link 6) and 7.
MeshSimulation hot_ring(std::uint64_t seed) {
  Topology topo = Topology::relay_ring(6);
  for (const network::Link& link : topo.links())
    topo.link(link.id).optics.pulse_rate_hz = 1e8;
  return MeshSimulation(std::move(topo), seed);
}

TEST(KmsScenario, FleetRampsShedsUnderEavesdropAndRecovers) {
  MeshSimulation mesh = hot_ring(404);

  Scenario day;
  // 08:00-ish: the fleet comes online — realtime and bulk cohorts.
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/0, /*count=*/5,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/2, /*count=*/10,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  // Midday: Eve camps on alice's tail link — QBER alarm, no route, drought.
  day.at(20 * kSecond, StartEavesdrop{6, 1.0});
  // Afternoon: she leaves; the link is trusted and refills.
  day.at(40 * kSecond, StopEavesdrop{6});
  // Evening: the bulk cohort logs off.
  day.at(55 * kSecond, ClientDeparture{6, 7, /*qos=*/2, /*count=*/10});

  ScenarioRunner::Config runner_config;
  runner_config.sample_interval = kSecond;
  ScenarioRunner runner(day, runner_config);
  runner.attach_mesh(mesh);

  KeyManagementService::Config kms_config;
  kms_config.shed_after_starved_rounds = 2;
  kms_config.retry_backoff = 500 * kMillisecond;
  KeyManagementService kms(mesh, runner.scheduler(), kms_config);
  KmsClientFleet fleet(kms, runner.scheduler());
  runner.attach_client_driver(fleet);
  runner.recorder().attach_service(kms);

  runner.run(70 * kSecond);

  // The ramp and the departure both took effect.
  EXPECT_EQ(fleet.active_clients(), 5u);
  EXPECT_EQ(kms.client_count(), 5u);

  // Both classes were served while the mesh was healthy...
  const auto& rt = kms.class_stats(QosClass::kRealtime);
  const auto& bulk = kms.class_stats(QosClass::kBulk);
  EXPECT_GT(rt.granted, 100u);
  EXPECT_GT(bulk.granted, 0u);
  // ...the drought shed bulk load but never realtime...
  EXPECT_GT(bulk.shed, 0u);
  EXPECT_EQ(rt.shed, 0u);
  EXPECT_GT(kms.stats().starved_rounds, 0u);
  // ...and after Eve left, the realtime backlog drained.
  EXPECT_LT(kms.queue_depth(QosClass::kRealtime), 5u);

  // Every grant's peer copy matched the initiator's bits (key-ID
  // agreement, exercised once per grant by the fleet).
  EXPECT_EQ(fleet.stats().claims_matched, fleet.stats().granted);
  EXPECT_EQ(fleet.stats().claims_mismatched, 0u);

  // The recorder charted the service: per-class samples in the points,
  // scenario actions in the notes, and a plottable CSV.
  ASSERT_FALSE(runner.recorder().points().empty());
  ASSERT_EQ(runner.recorder().points().back().service.size(),
            kQosClassCount);
  const std::string rendered = runner.recorder().render();
  EXPECT_NE(rendered.find("ClientArrival"), std::string::npos);
  EXPECT_NE(rendered.find("ClientDeparture"), std::string::npos);

  const std::string csv = runner.recorder().to_csv();
  EXPECT_NE(csv.find("svc_realtime_queue"), std::string::npos);
  EXPECT_NE(csv.find("svc_bulk_granted"), std::string::npos);
  const std::size_t rows =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(rows, runner.recorder().points().size() + 1);  // header + samples
}

TEST(KmsScenario, ClientActionsWithoutADriverThrow) {
  MeshSimulation mesh = hot_ring(7);
  Scenario script;
  script.at(kSecond, ClientArrival{6, 7});
  ScenarioRunner runner(script);
  runner.attach_mesh(mesh);
  EXPECT_THROW(runner.run(2 * kSecond), std::logic_error);
}

}  // namespace
}  // namespace qkd::kms
