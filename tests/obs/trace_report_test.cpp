// tools/trace_report.py round-trip: export a real recorded trace as
// Chrome JSON, run the report script on it, and check it aggregates the
// span names. Skipped when python3 is not on PATH (the script is
// stdlib-only, so a present interpreter is the only requirement).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/export.hpp"
#include "src/obs/trace.hpp"

namespace qkd::obs {
namespace {

/// Repo root derived from this source file's compile-time path, so the
/// test finds tools/trace_report.py regardless of the ctest working
/// directory.
std::string repo_root() {
  const std::string self = __FILE__;
  const std::string suffix = "tests/obs/trace_report_test.cpp";
  if (self.size() > suffix.size() &&
      self.compare(self.size() - suffix.size(), suffix.size(), suffix) == 0)
    return self.substr(0, self.size() - suffix.size());
  return "./";
}

bool python3_available() {
  return std::system("python3 -c 'import json' >/dev/null 2>&1") == 0;
}

class TraceReportScript : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!python3_available()) GTEST_SKIP() << "python3 not on PATH";
    // Name the scratch files per test: ctest runs the suite's tests as
    // concurrent processes sharing one TempDir.
    const std::string stem =
        std::string("trace_report_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    trace_path_ = ::testing::TempDir() + stem + ".json";
    out_path_ = ::testing::TempDir() + stem + ".out";
  }
  void TearDown() override {
    std::remove(trace_path_.c_str());
    std::remove(out_path_.c_str());
  }

  int run_report(const std::string& args) {
    const std::string command = "python3 '" + repo_root() +
                                "tools/trace_report.py' " + args + " > '" +
                                out_path_ + "' 2>&1";
    const int status = std::system(command.c_str());
    return status;
  }

  std::string output() const {
    std::ifstream in(out_path_);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string trace_path_;
  std::string out_path_;
};

TEST_F(TraceReportScript, ReportsPercentilesOverARecordedTrace) {
  // A real trace, not hand-written JSON: record a small span tree with
  // sim timestamps and attributes, export it, report over the file.
  Tracer tracer(2);
  tracer.set_enabled(true);
  SimTime now = 0;
  tracer.set_sim_time_source([&now] { return now; });
  for (int round = 0; round < 10; ++round) {
    ScopedSpan outer(&tracer, "kms.service_round", {}, round % 2);
    outer.attr("requests", "3");
    {
      ScopedSpan inner(&tracer, "kms.grant_round", outer.context(),
                       round % 2);
      now += (round + 1) * kMicrosecond;
      inner.finish();
    }
    now += kMicrosecond;
  }
  {
    std::ofstream out(trace_path_);
    out << chrome_trace_json(tracer);
  }

  ASSERT_EQ(run_report("'" + trace_path_ + "'"), 0) << output();
  const std::string report = output();
  EXPECT_NE(report.find("20 complete events"), std::string::npos) << report;
  EXPECT_NE(report.find("kms.service_round"), std::string::npos) << report;
  EXPECT_NE(report.find("kms.grant_round"), std::string::npos) << report;

  // --json emits machine-readable rows a follow-up tool could consume.
  ASSERT_EQ(run_report("--json '" + trace_path_ + "'"), 0) << output();
  const std::string json_report = output();
  EXPECT_NE(json_report.find("\"spans\""), std::string::npos) << json_report;
  EXPECT_NE(json_report.find("\"p99_us\""), std::string::npos) << json_report;
  EXPECT_NE(json_report.find("\"count\": 10"), std::string::npos)
      << json_report;

  // --by-tid splits the two recording cells into separate rows.
  ASSERT_EQ(run_report("--by-tid --json '" + trace_path_ + "'"), 0)
      << output();
  EXPECT_NE(output().find("\"count\": 5"), std::string::npos) << output();
}

TEST_F(TraceReportScript, RejectsAMissingOrMalformedFile) {
  EXPECT_NE(run_report("'" + trace_path_ + ".does-not-exist'"), 0);
  {
    std::ofstream out(trace_path_);
    out << "this is not json";
  }
  EXPECT_NE(run_report("'" + trace_path_ + "'"), 0);
}

}  // namespace
}  // namespace qkd::obs
