// Tracer: span-tree construction through explicit TraceContext
// propagation, the disabled/null fast path (invalid handles, fallback
// contexts that keep the chain alive), sim-time stamping, reparenting
// (service-round adoption), and cell sharding.
#include "src/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace qkd::obs {
namespace {

const Span* find_span(const std::vector<Span>& spans, const std::string& name) {
  for (const Span& span : spans)
    if (span.name == name) return &span;
  return nullptr;
}

TEST(Tracer, DisabledTracerHandsOutInertHandles) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.make_root().valid());
  SpanHandle handle = tracer.start_span("ignored");
  EXPECT_FALSE(handle.valid());
  tracer.add_attribute(handle, "k", "v");
  tracer.end_span(handle);
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(Tracer, SpansFormATreeThroughPropagatedContexts) {
  Tracer tracer;
  tracer.set_enabled(true);

  TraceContext root_ctx = tracer.make_root();
  ASSERT_TRUE(root_ctx.valid());
  SpanHandle root = tracer.start_span("request", root_ctx);
  SpanHandle child = tracer.start_span("admit", Tracer::child_context(root));
  SpanHandle grandchild =
      tracer.start_span("grant", Tracer::child_context(child));
  tracer.end_span(grandchild);
  tracer.end_span(child);
  tracer.end_span(root);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  const Span* request = find_span(spans, "request");
  const Span* admit = find_span(spans, "admit");
  const Span* grant = find_span(spans, "grant");
  ASSERT_NE(request, nullptr);
  ASSERT_NE(admit, nullptr);
  ASSERT_NE(grant, nullptr);
  EXPECT_EQ(request->trace_id, root_ctx.trace_id);
  EXPECT_EQ(admit->trace_id, root_ctx.trace_id);
  EXPECT_EQ(grant->trace_id, root_ctx.trace_id);
  EXPECT_EQ(admit->parent_span, request->span_id);
  EXPECT_EQ(grant->parent_span, admit->span_id);
}

TEST(Tracer, InvalidParentStartsAFreshTrace) {
  Tracer tracer;
  tracer.set_enabled(true);
  SpanHandle a = tracer.start_span("a");
  SpanHandle b = tracer.start_span("b");
  tracer.end_span(a);
  tracer.end_span(b);
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].trace_id, spans[1].trace_id);
  EXPECT_EQ(spans[0].parent_span, 0u);
  EXPECT_EQ(spans[1].parent_span, 0u);
}

TEST(Tracer, ChildContextFallsBackThroughAnUntracedLayer) {
  // A middle layer whose tracer is off must pass its caller's context
  // through, not sever the chain.
  Tracer tracer;
  tracer.set_enabled(true);
  TraceContext caller = Tracer::child_context(tracer.start_span("caller"));
  ASSERT_TRUE(caller.valid());

  {
    ScopedSpan untraced(nullptr, "middle", caller);
    EXPECT_FALSE(untraced.recording());
    EXPECT_EQ(untraced.context().trace_id, caller.trace_id);
    EXPECT_EQ(untraced.context().parent_span, caller.parent_span);
  }

  Tracer off;  // constructed but never enabled
  ScopedSpan disabled(&off, "middle", caller);
  EXPECT_FALSE(disabled.recording());
  EXPECT_EQ(disabled.context().trace_id, caller.trace_id);
}

TEST(Tracer, SimTimeSourceStampsSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  SimTime now = 5 * kMillisecond;
  tracer.set_sim_time_source([&now] { return now; });

  SpanHandle handle = tracer.start_span("timed");
  now += 2 * kMillisecond;
  tracer.end_span(handle);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].sim_start, 5 * kMillisecond);
  EXPECT_EQ(spans[0].sim_end, 7 * kMillisecond);
  EXPECT_GE(spans[0].wall_end_ns, spans[0].wall_start_ns);
}

TEST(Tracer, ReparentAdoptsTraceAndParent) {
  // The service-round shape: the round span opens parentless, then adopts
  // the first traced request it selected.
  Tracer tracer;
  tracer.set_enabled(true);
  SpanHandle request = tracer.start_span("request");

  ScopedSpan round(&tracer, "round");
  round.reparent(Tracer::child_context(request));
  TraceContext round_ctx = round.context();
  ScopedSpan drr(&tracer, "drr", round_ctx);
  drr.finish();
  round.finish();
  tracer.end_span(request);

  const auto spans = tracer.spans();
  const Span* request_span = find_span(spans, "request");
  const Span* round_span = find_span(spans, "round");
  const Span* drr_span = find_span(spans, "drr");
  ASSERT_NE(round_span, nullptr);
  ASSERT_NE(drr_span, nullptr);
  EXPECT_EQ(round_span->trace_id, request_span->trace_id);
  EXPECT_EQ(round_span->parent_span, request_span->span_id);
  EXPECT_EQ(drr_span->trace_id, request_span->trace_id)
      << "context handed out after reparent carries the adopted trace";
  EXPECT_EQ(drr_span->parent_span, round_span->span_id);
}

TEST(Tracer, AttributesAttachOnlyWhileTheScopedSpanRecords) {
  Tracer tracer;
  tracer.set_enabled(true);
  ScopedSpan span(&tracer, "op");
  span.attr("qos", "realtime");
  span.finish();
  span.attr("late", "dropped");  // after finish: must not land

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "qos");
  EXPECT_EQ(spans[0].attributes[0].second, "realtime");
}

TEST(Tracer, CellsShardRecordingAndClampOutOfRange) {
  Tracer tracer(3);
  tracer.set_enabled(true);
  tracer.end_span(tracer.start_span("s0", {}, 0));
  tracer.end_span(tracer.start_span("s2", {}, 2));
  tracer.end_span(tracer.start_span("clamped", {}, 99));

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(find_span(spans, "s0")->cell, 0u);
  EXPECT_EQ(find_span(spans, "s2")->cell, 2u);
  EXPECT_EQ(find_span(spans, "clamped")->cell, 2u);
}

TEST(Tracer, ClearInvalidatesStaleHandles) {
  Tracer tracer;
  tracer.set_enabled(true);
  SpanHandle stale = tracer.start_span("old");
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);

  // A handle from before the clear must not corrupt the span now living
  // at its position.
  SpanHandle fresh = tracer.start_span("new");
  tracer.add_attribute(stale, "k", "v");
  tracer.end_span(stale);
  tracer.end_span(fresh);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "new");
  EXPECT_TRUE(spans[0].attributes.empty());
  EXPECT_GE(spans[0].sim_end, spans[0].sim_start) << "fresh span did close";
}

}  // namespace
}  // namespace qkd::obs
