// MetricsRegistry: instrument identity and kind collision, sharded-cell
// aggregation, histogram quantile convention, collectors, and the
// Prometheus exposition shape.
#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qkd::obs {
namespace {

TEST(MetricsRegistry, InstrumentsAreFoundOrCreatedByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("kms_grants");
  Counter& b = registry.counter("kms_grants");
  EXPECT_EQ(&a, &b) << "same name resolves to the same instrument";
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(MetricsRegistry, NameCollisionAcrossKindsThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistry, CellsAggregateOnRead) {
  MetricsRegistry registry(4);
  Counter& counter = registry.counter("per_shard");
  counter.add(10, 0);
  counter.add(20, 1);
  counter.add(30, 3);
  EXPECT_EQ(counter.value(), 60u);
  EXPECT_EQ(counter.cell_value(1), 20u);
  // Out-of-range cells clamp to the last cell rather than writing wild.
  counter.add(1, 99);
  EXPECT_EQ(counter.cell_value(3), 31u);

  Gauge& gauge = registry.gauge("depth");
  gauge.set(5, 0);
  gauge.set(-2, 2);
  EXPECT_EQ(gauge.value(), 3);
}

TEST(MetricsRegistry, HistogramQuantilesAreConservativeUpperBounds) {
  MetricsRegistry registry(2);
  Histogram& histogram = registry.histogram("latency_ns");
  for (int i = 0; i < 99; ++i) histogram.record(100, i % 2);
  histogram.record(1'000'000);
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.sum(), 99u * 100u + 1'000'000u);
  // 100 lands in bucket bit_width(100)=7 whose upper bound is 128.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.50), 128.0);
  EXPECT_GE(histogram.quantile(1.0), 1'000'000.0);
}

TEST(MetricsRegistry, CollectorsReportIntoSnapshots) {
  MetricsRegistry registry;
  registry.counter("direct").add(7);
  std::uint64_t granted = 41;
  registry.add_collector([&granted](MetricsRegistry::Collect& out) {
    out.counter("kms_granted", granted);
    out.gauge("kms_queue_depth", 3.5);
  });
  granted = 42;

  const auto samples = registry.snapshot();
  bool saw_direct = false, saw_granted = false, saw_gauge = false;
  for (const MetricSample& sample : samples) {
    if (sample.name == "direct") {
      saw_direct = true;
      EXPECT_EQ(sample.value, 7.0);
    }
    if (sample.name == "kms_granted") {
      saw_granted = true;
      EXPECT_EQ(sample.value, 42.0) << "collectors read at snapshot time";
    }
    if (sample.name == "kms_queue_depth") {
      saw_gauge = true;
      EXPECT_EQ(sample.kind, MetricKind::kGauge);
    }
  }
  EXPECT_TRUE(saw_direct);
  EXPECT_TRUE(saw_granted);
  EXPECT_TRUE(saw_gauge);
}

TEST(MetricsRegistry, PrometheusTextHasTypeLinesAndHistogramSeries) {
  MetricsRegistry registry;
  registry.counter("qkd_batches").add(3);
  registry.gauge("pool_bits").set(1024);
  registry.histogram("grant_ns").record(500);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE qkd_batches counter"), std::string::npos) << text;
  EXPECT_NE(text.find("qkd_batches 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_bits gauge"), std::string::npos);
  EXPECT_NE(text.find("grant_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("grant_ns_sum 500"), std::string::npos);
}

TEST(MetricsRegistry, EmptyHistogramQuantilesAreZero) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("untouched");
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 0.0);
  // The export path carries the same convention instead of dividing by a
  // zero count.
  for (const MetricSample& sample : registry.snapshot()) {
    EXPECT_DOUBLE_EQ(sample.p50, 0.0);
    EXPECT_DOUBLE_EQ(sample.p99, 0.0);
  }
}

TEST(MetricsRegistry, SingleBucketHistogramAnswersEveryQuantile) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("constant");
  for (int i = 0; i < 1000; ++i) histogram.record(100);
  // All mass in bucket bit_width(100)=7 (upper bound 128): every quantile
  // — including q=0, whose rank clamps to 1 — reports that bound.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.0), 128.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 128.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 128.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 128.0);

  // Value 0 has bit_width 0: the zero bucket reports bound 0.
  Histogram& zeros = registry.histogram("zeros");
  zeros.record(0);
  EXPECT_DOUBLE_EQ(zeros.quantile(0.99), 0.0);
  EXPECT_EQ(zeros.count(), 1u);
}

TEST(MetricsRegistry, CollectorReRegistrationUnderTheSameNameAccumulates) {
  // Two layers reporting under one name is a wiring bug the registry
  // surfaces rather than hides: both samples appear in the snapshot (same
  // name, their own values), matching the find-or-create contract of the
  // direct instruments rather than silently dropping one reporter.
  MetricsRegistry registry;
  registry.add_collector([](MetricsRegistry::Collect& out) {
    out.counter("dup_reported", 1);
  });
  registry.add_collector([](MetricsRegistry::Collect& out) {
    out.counter("dup_reported", 2);
  });
  std::size_t seen = 0;
  for (const MetricSample& sample : registry.snapshot())
    if (sample.name == "dup_reported") ++seen;
  EXPECT_EQ(seen, 2u);

  // A collector name colliding with a direct instrument also keeps both:
  // the direct value and the reported value are distinct samples.
  registry.counter("dup_reported").add(10);
  seen = 0;
  for (const MetricSample& sample : registry.snapshot())
    if (sample.name == "dup_reported") ++seen;
  EXPECT_EQ(seen, 3u);
}

TEST(MetricsRegistry, FindHistogramNeverCreatesAndChecksKind) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
  EXPECT_EQ(registry.snapshot().size(), 0u) << "find never creates";
  registry.counter("a_counter");
  EXPECT_EQ(registry.find_histogram("a_counter"), nullptr)
      << "wrong kind is not a histogram";
  Histogram& histogram = registry.histogram("real");
  EXPECT_EQ(registry.find_histogram("real"), &histogram);
}

TEST(MetricsRegistry, ConcurrentCellWritersAndOneReaderAreRaceFree) {
  MetricsRegistry registry(4);
  Counter& counter = registry.counter("hot");
  std::vector<std::thread> writers;
  for (std::size_t lane = 0; lane < 4; ++lane)
    writers.emplace_back([&counter, lane] {
      for (int i = 0; i < 20000; ++i) counter.add(1, lane);
    });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = counter.value();
    ASSERT_GE(now, last);
    last = now;
  }
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(counter.value(), 80000u);
}

}  // namespace
}  // namespace qkd::obs
