// MetricsRegistry: instrument identity and kind collision, sharded-cell
// aggregation, histogram quantile convention, collectors, and the
// Prometheus exposition shape.
#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qkd::obs {
namespace {

TEST(MetricsRegistry, InstrumentsAreFoundOrCreatedByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("kms_grants");
  Counter& b = registry.counter("kms_grants");
  EXPECT_EQ(&a, &b) << "same name resolves to the same instrument";
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(MetricsRegistry, NameCollisionAcrossKindsThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistry, CellsAggregateOnRead) {
  MetricsRegistry registry(4);
  Counter& counter = registry.counter("per_shard");
  counter.add(10, 0);
  counter.add(20, 1);
  counter.add(30, 3);
  EXPECT_EQ(counter.value(), 60u);
  EXPECT_EQ(counter.cell_value(1), 20u);
  // Out-of-range cells clamp to the last cell rather than writing wild.
  counter.add(1, 99);
  EXPECT_EQ(counter.cell_value(3), 31u);

  Gauge& gauge = registry.gauge("depth");
  gauge.set(5, 0);
  gauge.set(-2, 2);
  EXPECT_EQ(gauge.value(), 3);
}

TEST(MetricsRegistry, HistogramQuantilesAreConservativeUpperBounds) {
  MetricsRegistry registry(2);
  Histogram& histogram = registry.histogram("latency_ns");
  for (int i = 0; i < 99; ++i) histogram.record(100, i % 2);
  histogram.record(1'000'000);
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_EQ(histogram.sum(), 99u * 100u + 1'000'000u);
  // 100 lands in bucket bit_width(100)=7 whose upper bound is 128.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.50), 128.0);
  EXPECT_GE(histogram.quantile(1.0), 1'000'000.0);
}

TEST(MetricsRegistry, CollectorsReportIntoSnapshots) {
  MetricsRegistry registry;
  registry.counter("direct").add(7);
  std::uint64_t granted = 41;
  registry.add_collector([&granted](MetricsRegistry::Collect& out) {
    out.counter("kms_granted", granted);
    out.gauge("kms_queue_depth", 3.5);
  });
  granted = 42;

  const auto samples = registry.snapshot();
  bool saw_direct = false, saw_granted = false, saw_gauge = false;
  for (const MetricSample& sample : samples) {
    if (sample.name == "direct") {
      saw_direct = true;
      EXPECT_EQ(sample.value, 7.0);
    }
    if (sample.name == "kms_granted") {
      saw_granted = true;
      EXPECT_EQ(sample.value, 42.0) << "collectors read at snapshot time";
    }
    if (sample.name == "kms_queue_depth") {
      saw_gauge = true;
      EXPECT_EQ(sample.kind, MetricKind::kGauge);
    }
  }
  EXPECT_TRUE(saw_direct);
  EXPECT_TRUE(saw_granted);
  EXPECT_TRUE(saw_gauge);
}

TEST(MetricsRegistry, PrometheusTextHasTypeLinesAndHistogramSeries) {
  MetricsRegistry registry;
  registry.counter("qkd_batches").add(3);
  registry.gauge("pool_bits").set(1024);
  registry.histogram("grant_ns").record(500);

  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE qkd_batches counter"), std::string::npos) << text;
  EXPECT_NE(text.find("qkd_batches 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_bits gauge"), std::string::npos);
  EXPECT_NE(text.find("grant_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("grant_ns_sum 500"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentCellWritersAndOneReaderAreRaceFree) {
  MetricsRegistry registry(4);
  Counter& counter = registry.counter("hot");
  std::vector<std::thread> writers;
  for (std::size_t lane = 0; lane < 4; ++lane)
    writers.emplace_back([&counter, lane] {
      for (int i = 0; i < 20000; ++i) counter.add(1, lane);
    });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = counter.value();
    ASSERT_GE(now, last);
    last = now;
  }
  for (auto& writer : writers) writer.join();
  EXPECT_EQ(counter.value(), 80000u);
}

}  // namespace
}  // namespace qkd::obs
