// Exporters: golden Chrome trace-event JSON shape (the contract Perfetto
// and tools/trace_report.py both load), escaping, open-span handling, and
// the TimelineRecorder::annotate_spans bridge.
#include "src/obs/export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "src/sim/timeline.hpp"

namespace qkd::obs {
namespace {

Span make_span(std::uint64_t trace, std::uint64_t id, std::uint64_t parent,
               std::string name, SimTime start, SimTime end,
               std::size_t cell = 0) {
  Span span;
  span.trace_id = trace;
  span.span_id = id;
  span.parent_span = parent;
  span.name = std::move(name);
  span.sim_start = start;
  span.sim_end = end;
  span.wall_start_ns = 1000;
  span.wall_end_ns = 4500;
  span.cell = cell;
  return span;
}

TEST(ChromeTraceExport, GoldenShapeForOneSpan) {
  Span span = make_span(7, 9, 0, "kms.grant_round", 2 * kMillisecond,
                        3 * kMillisecond, 1);
  span.attributes.emplace_back("qos", "realtime");

  // ts/dur are sim-time microseconds; tid is cell+1; ids and wall time
  // ride in args. This exact shape is what Perfetto loads.
  EXPECT_EQ(chrome_trace_json({span}),
            "{\"traceEvents\":[{\"name\":\"kms.grant_round\",\"cat\":\"qkd\","
            "\"ph\":\"X\",\"ts\":2000,\"dur\":1000,\"pid\":1,\"tid\":2,"
            "\"args\":{\"trace_id\":7,\"span_id\":9,\"parent_span\":0,"
            "\"wall_ns\":3500,\"qos\":\"realtime\"}}]}");
}

TEST(ChromeTraceExport, EmptyAndMultiSpanDocumentsStayWellFormed) {
  EXPECT_EQ(chrome_trace_json(std::vector<Span>{}), "{\"traceEvents\":[]}");

  const std::string two = chrome_trace_json(
      {make_span(1, 2, 0, "a", 0, 1000), make_span(1, 3, 2, "b", 0, 500)});
  EXPECT_EQ(two.find("{\"traceEvents\":[{"), 0u);
  EXPECT_NE(two.find("},{"), std::string::npos) << "events comma-separated";
  EXPECT_EQ(two.rfind("}]}"), two.size() - 3);
}

TEST(ChromeTraceExport, OpenSpansExportWithZeroDuration) {
  // sim_end == -1 marks a span still open at export time; it must not
  // produce a negative duration (Perfetto rejects those).
  const std::string json =
      chrome_trace_json({make_span(1, 2, 0, "open", 5000, -1)});
  EXPECT_NE(json.find("\"ts\":5,\"dur\":0"), std::string::npos) << json;
}

TEST(ChromeTraceExport, EscapesQuotesAndControlCharactersInStrings) {
  Span span = make_span(1, 2, 0, "odd\"name", 0, 0);
  span.attributes.emplace_back("note", "line1\nline2\ttab");
  const std::string json = chrome_trace_json({span});
  EXPECT_NE(json.find("\"odd\\\"name\""), std::string::npos) << json;
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos) << "raw newline corrupts JSON";
}

TEST(ChromeTraceExport, TracerOverloadExportsRecordedSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  ScopedSpan span(&tracer, "kms.admit");
  span.finish();
  const std::string json = chrome_trace_json(tracer);
  EXPECT_NE(json.find("\"name\":\"kms.admit\""), std::string::npos);
}

TEST(TimelineBridge, AnnotateSpansInterleavesSpanNotesInTimeOrder) {
  sim::TimelineRecorder recorder;
  recorder.note(1 * kMillisecond, "link cut");
  recorder.note(5 * kMillisecond, "link healed");

  const auto spans = std::vector<Span>{
      make_span(1, 2, 0, "kms.service_round", 3 * kMillisecond,
                3 * kMillisecond + 500 * kMicrosecond),
      make_span(1, 3, 2, "mesh.hop", 500 * kMicrosecond, 2 * kMillisecond),
      make_span(1, 4, 0, "still.open", 4 * kMillisecond, -1),
  };
  recorder.annotate_spans(spans);

  const auto& notes = recorder.notes();
  ASSERT_EQ(notes.size(), 5u);
  EXPECT_EQ(notes[0].text, "span mesh.hop (1500.0 us)");
  EXPECT_EQ(notes[1].text, "link cut");
  EXPECT_EQ(notes[2].text, "span kms.service_round (500.0 us)");
  EXPECT_EQ(notes[3].text, "span still.open (0.0 us)")
      << "open span clamps to zero duration";
  EXPECT_EQ(notes[4].text, "link healed");

  // And the render path prints them as ** annotations.
  const std::string rendered = recorder.render();
  EXPECT_NE(rendered.find("** span mesh.hop (1500.0 us)"), std::string::npos)
      << rendered;
}

}  // namespace
}  // namespace qkd::obs
