// The health engine: condition grammar over live registry samples, the
// pending -> firing -> resolved lifecycle with for_duration debounce,
// incident assembly, the ALERTS exporter, the AlertExpect assertion API,
// and the JSON incident report.
#include "src/obs/health/alert.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/health/expect.hpp"
#include "src/obs/health/report.hpp"
#include "src/obs/health/rules.hpp"
#include "src/obs/metrics.hpp"

namespace qkd::obs::health {
namespace {

AlertRule threshold_rule(const std::string& name, const std::string& metric,
                         double bound, qkd::SimTime for_duration = 0,
                         Comparison op = Comparison::kGreater) {
  AlertRule rule;
  rule.name = name;
  rule.summary = name + " summary";
  rule.condition = Threshold{metric, op, bound};
  rule.for_duration = for_duration;
  return rule;
}

TEST(AlertEngine, ThresholdFiresImmediatelyWithoutDebounce) {
  MetricsRegistry registry;
  Gauge& depth = registry.gauge("queue_depth");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("deep_queue", "queue_depth", 10.0));

  engine.evaluate(qkd::kSecond);
  EXPECT_EQ(engine.state("deep_queue"), AlertState::kInactive);

  depth.set(11);
  engine.evaluate(2 * qkd::kSecond);
  EXPECT_EQ(engine.state("deep_queue"), AlertState::kFiring)
      << "for_duration 0 fires on the first true evaluation";

  depth.set(3);
  engine.evaluate(3 * qkd::kSecond);
  EXPECT_EQ(engine.state("deep_queue"), AlertState::kResolved);
}

TEST(AlertEngine, ForDurationDebouncesThePendingPhase) {
  MetricsRegistry registry;
  Gauge& qber = registry.gauge("qber");
  AlertEngine engine(registry);
  engine.add_rule(
      threshold_rule("qber_high", "qber", 8.0, /*for_duration=*/5 * qkd::kSecond));

  qber.set(25);
  engine.evaluate(qkd::kSecond);
  EXPECT_EQ(engine.state("qber_high"), AlertState::kPending);
  engine.evaluate(3 * qkd::kSecond);
  EXPECT_EQ(engine.state("qber_high"), AlertState::kPending)
      << "condition held 2s of the required 5s";
  engine.evaluate(6 * qkd::kSecond);
  EXPECT_EQ(engine.state("qber_high"), AlertState::kFiring)
      << "held for the full debounce";

  // The full transition history is recorded in order.
  ASSERT_EQ(engine.transitions().size(), 2u);
  EXPECT_EQ(engine.transitions()[0].to, AlertState::kPending);
  EXPECT_EQ(engine.transitions()[1].to, AlertState::kFiring);
}

TEST(AlertEngine, PendingReleasedBeforeDebounceIsNoIncident) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("blip");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("blippy", "blip", 1.0, 10 * qkd::kSecond));

  value.set(5);
  engine.evaluate(qkd::kSecond);
  EXPECT_EQ(engine.state("blippy"), AlertState::kPending);
  value.set(0);
  engine.evaluate(2 * qkd::kSecond);
  EXPECT_EQ(engine.state("blippy"), AlertState::kInactive)
      << "a blip shorter than the debounce never pages";
  EXPECT_TRUE(engine.incidents().empty());
}

TEST(AlertEngine, ResolvedIsStickyAndRetripsThroughPending) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("v");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("flappy", "v", 1.0, 2 * qkd::kSecond));

  value.set(5);
  engine.evaluate(qkd::kSecond);
  engine.evaluate(3 * qkd::kSecond);  // fires
  value.set(0);
  engine.evaluate(4 * qkd::kSecond);  // resolves
  EXPECT_EQ(engine.state("flappy"), AlertState::kResolved);
  engine.evaluate(5 * qkd::kSecond);
  EXPECT_EQ(engine.state("flappy"), AlertState::kResolved) << "sticky";

  value.set(5);
  engine.evaluate(6 * qkd::kSecond);
  EXPECT_EQ(engine.state("flappy"), AlertState::kPending)
      << "a re-trip starts a new episode from resolved";
  value.set(0);
  engine.evaluate(7 * qkd::kSecond);
  EXPECT_EQ(engine.state("flappy"), AlertState::kResolved)
      << "a released re-trip pending returns to resolved, not inactive";
}

TEST(AlertEngine, RateOfChangeDetectsACounterSurge) {
  MetricsRegistry registry;
  Counter& shed = registry.counter("shed_total");
  AlertEngine engine(registry);
  AlertRule rule;
  rule.name = "shed_surge";
  rule.condition = RateOfChange{"shed_total", 10 * qkd::kSecond,
                                Comparison::kGreater, 2.0};
  engine.add_rule(std::move(rule));

  // Slow drip: 1/s over the window — under the 2/s bound.
  for (int t = 1; t <= 12; ++t) {
    shed.add(1);
    engine.evaluate(t * qkd::kSecond);
  }
  EXPECT_EQ(engine.state("shed_surge"), AlertState::kInactive);

  // Surge: 50 in one second — way past 2/s over the trailing window.
  shed.add(50);
  engine.evaluate(13 * qkd::kSecond);
  EXPECT_EQ(engine.state("shed_surge"), AlertState::kFiring);
}

TEST(AlertEngine, RateOfChangeNeedsAFullWindowOfHistory) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  AlertEngine engine(registry);
  AlertRule rule;
  rule.name = "surge";
  rule.condition =
      RateOfChange{"c", 10 * qkd::kSecond, Comparison::kGreater, 0.5};
  engine.add_rule(std::move(rule));

  c.add(100);
  engine.evaluate(qkd::kSecond);
  c.add(100);
  engine.evaluate(2 * qkd::kSecond);
  EXPECT_EQ(engine.state("surge"), AlertState::kInactive)
      << "a young engine must not report a rate off a partial window";
}

TEST(AlertEngine, AbsenceFiresOnMissingMetricAndOnStaleCounter) {
  MetricsRegistry registry;
  AlertEngine engine(registry);
  AlertRule missing;
  missing.name = "never_seen";
  missing.condition = Absence{"no_such_metric", 5 * qkd::kSecond};
  engine.add_rule(std::move(missing));
  AlertRule stale;
  stale.name = "distill_stalled";
  stale.condition = Absence{"distilled", 5 * qkd::kSecond};
  engine.add_rule(std::move(stale));

  Counter& distilled = registry.counter("distilled");
  distilled.add(1);
  engine.evaluate(qkd::kSecond);
  EXPECT_EQ(engine.state("never_seen"), AlertState::kFiring)
      << "a metric absent from the snapshot is maximally stale";
  EXPECT_EQ(engine.state("distill_stalled"), AlertState::kInactive);

  // The counter keeps advancing: the watchdog stays quiet.
  distilled.add(1);
  engine.evaluate(4 * qkd::kSecond);
  distilled.add(1);
  engine.evaluate(8 * qkd::kSecond);
  EXPECT_EQ(engine.state("distill_stalled"), AlertState::kInactive);

  // It stops: stale after 5 idle seconds.
  engine.evaluate(12 * qkd::kSecond);
  EXPECT_EQ(engine.state("distill_stalled"), AlertState::kInactive)
      << "4s idle: not yet";
  engine.evaluate(14 * qkd::kSecond);
  EXPECT_EQ(engine.state("distill_stalled"), AlertState::kFiring)
      << "6s idle: the heartbeat flatlined";
}

TEST(AlertEngine, QuantileAboveReadsTheLiveHistogram) {
  MetricsRegistry registry;
  Histogram& latency = registry.histogram("grant_latency");
  AlertEngine engine(registry);
  AlertRule rule;
  rule.name = "p95_slow";
  rule.condition = QuantileAbove{"grant_latency", 0.95, 1000.0};
  engine.add_rule(std::move(rule));

  engine.evaluate(qkd::kSecond);
  EXPECT_EQ(engine.state("p95_slow"), AlertState::kInactive)
      << "an empty histogram never alarms";

  for (int i = 0; i < 100; ++i) latency.record(10);
  engine.evaluate(2 * qkd::kSecond);
  EXPECT_EQ(engine.state("p95_slow"), AlertState::kInactive);

  for (int i = 0; i < 50; ++i) latency.record(1 << 14);
  engine.evaluate(3 * qkd::kSecond);
  EXPECT_EQ(engine.state("p95_slow"), AlertState::kFiring)
      << "a third of samples at ~16k drags p95 over the bound";
}

TEST(AlertEngine, SloBurnRateNeedsBothWindowsBurning) {
  MetricsRegistry registry;
  Counter& good = registry.counter("good");
  Counter& total = registry.counter("total");
  AlertEngine engine(registry);
  AlertRule rule;
  rule.name = "slo_burn";
  SloBurnRate slo;
  slo.good_metric = "good";
  slo.total_metric = "total";
  slo.objective = 0.9;  // 10% error budget
  slo.short_window = 5 * qkd::kSecond;
  slo.long_window = 30 * qkd::kSecond;
  slo.burn_threshold = 2.0;
  rule.condition = slo;
  engine.add_rule(std::move(rule));

  // 35 healthy seconds: everything within SLO. Neither window burns.
  for (int t = 1; t <= 35; ++t) {
    good.add(10);
    total.add(10);
    engine.evaluate(t * qkd::kSecond);
  }
  EXPECT_EQ(engine.state("slo_burn"), AlertState::kInactive);

  // A short total outage: the 5s window burns instantly (bad fraction
  // 1.0 / budget 0.1 = burn 10), but the 30s window still averages the
  // healthy stretch in — no page until the damage sustains.
  for (int t = 36; t <= 39; ++t) {
    total.add(10);  // all bad
    engine.evaluate(t * qkd::kSecond);
  }
  EXPECT_EQ(engine.state("slo_burn"), AlertState::kInactive)
      << "short-window burn alone must not fire";

  // Sustained: by t=48 the 30s window is ~40% bad -> burn 4 > 2. Fire.
  for (int t = 40; t <= 48; ++t) {
    total.add(10);
    engine.evaluate(t * qkd::kSecond);
  }
  EXPECT_EQ(engine.state("slo_burn"), AlertState::kFiring);
}

TEST(AlertEngine, ValidationRejectsBadRulesAndBackwardsTime) {
  MetricsRegistry registry;
  AlertEngine engine(registry);
  EXPECT_THROW(engine.add_rule(threshold_rule("", "m", 1.0)),
               std::invalid_argument);
  engine.add_rule(threshold_rule("dup", "m", 1.0));
  EXPECT_THROW(engine.add_rule(threshold_rule("dup", "m", 2.0)),
               std::invalid_argument);

  AlertRule swapped;
  swapped.name = "swapped_windows";
  SloBurnRate slo;
  slo.good_metric = "g";
  slo.total_metric = "t";
  slo.short_window = 30 * qkd::kSecond;
  slo.long_window = 5 * qkd::kSecond;  // long < short
  swapped.condition = slo;
  EXPECT_THROW(engine.add_rule(std::move(swapped)), std::invalid_argument);

  engine.evaluate(5 * qkd::kSecond);
  EXPECT_THROW(engine.evaluate(4 * qkd::kSecond), std::invalid_argument);
  EXPECT_THROW(engine.state("no_such_rule"), std::invalid_argument);
}

TEST(AlertEngine, IncidentsAssembleEpisodesFromTransitions) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("v");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("ep", "v", 1.0, 2 * qkd::kSecond));

  value.set(9);
  engine.evaluate(10 * qkd::kSecond);  // pending
  engine.evaluate(12 * qkd::kSecond);  // firing
  value.set(0);
  engine.evaluate(20 * qkd::kSecond);  // resolved
  value.set(7);
  engine.evaluate(30 * qkd::kSecond);  // pending again
  engine.evaluate(32 * qkd::kSecond);  // firing, never resolves

  const auto incidents = engine.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_EQ(incidents[0].pending_at, 10 * qkd::kSecond);
  EXPECT_EQ(incidents[0].firing_at, 12 * qkd::kSecond);
  EXPECT_EQ(incidents[0].resolved_at, 20 * qkd::kSecond);
  EXPECT_TRUE(incidents[0].resolved());
  EXPECT_DOUBLE_EQ(incidents[0].peak_value, 9.0);
  EXPECT_EQ(incidents[1].firing_at, 32 * qkd::kSecond);
  EXPECT_FALSE(incidents[1].resolved());
  EXPECT_DOUBLE_EQ(incidents[1].peak_value, 7.0);
}

TEST(AlertEngine, TransitionObserverSeesEveryStateChange) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("v");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("obs", "v", 1.0));
  std::vector<std::string> seen;
  engine.set_transition_observer([&seen](const Transition& t) {
    seen.push_back(t.rule + ":" + alert_state_name(t.to));
  });

  value.set(5);
  engine.evaluate(qkd::kSecond);
  value.set(0);
  engine.evaluate(2 * qkd::kSecond);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "obs:firing");
  EXPECT_EQ(seen[1], "obs:resolved");
}

TEST(AlertEngine, BindAlertsExportsPrometheusStyleSamples) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("v");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("exported", "v", 1.0));
  engine.bind_alerts(registry);

  value.set(5);
  engine.evaluate(qkd::kSecond);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("ALERTS{alertname=\"exported\",alertstate=\"firing\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ALERTS_firing_total 1"), std::string::npos) << text;

  value.set(0);
  engine.evaluate(2 * qkd::kSecond);
  const std::string after = registry.to_prometheus();
  EXPECT_EQ(after.find("alertstate=\"firing\""), std::string::npos)
      << "resolved alerts no longer export an active sample";
  EXPECT_NE(after.find("ALERTS_resolved_total 1"), std::string::npos);
}

TEST(AlertEngine, StatsCountEvaluationsConditionsAndTransitions) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("v");
  value.set(5);
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("a", "v", 1.0));
  engine.add_rule(threshold_rule("b", "v", 10.0));
  engine.evaluate(qkd::kSecond);
  engine.evaluate(2 * qkd::kSecond);
  EXPECT_EQ(engine.stats().evaluations, 2u);
  EXPECT_EQ(engine.stats().conditions_evaluated, 4u);
  EXPECT_EQ(engine.stats().transitions, 1u);  // only "a" fired
  EXPECT_EQ(engine.last_evaluated(), 2 * qkd::kSecond);
  EXPECT_EQ(engine.active(), std::vector<std::string>{"a"});
}

// ---- AlertExpect -----------------------------------------------------------

TEST(AlertEngine, ExpectAlertPassesOnTheObservedLifecycle) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("v");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("lifecycle", "v", 1.0, 2 * qkd::kSecond));
  engine.add_rule(threshold_rule("quiet", "v", 100.0));

  value.set(5);
  engine.evaluate(10 * qkd::kSecond);
  engine.evaluate(12 * qkd::kSecond);
  value.set(0);
  engine.evaluate(20 * qkd::kSecond);

  AlertExpect expect(engine);
  expect.expect_alert("lifecycle")
      .pending_by(10 * qkd::kSecond)
      .firing_between(11 * qkd::kSecond, 13 * qkd::kSecond)
      .resolved_by(20 * qkd::kSecond)
      .full_lifecycle()
      .state_now(AlertState::kResolved);
  expect.expect_alert("quiet").never_fires();
  EXPECT_TRUE(expect.ok()) << expect.report();
  EXPECT_EQ(expect.report(), "alerts ok");
}

TEST(AlertEngine, ExpectAlertReportsEveryViolationAtOnce) {
  MetricsRegistry registry;
  registry.gauge("v");
  AlertEngine engine(registry);
  engine.add_rule(threshold_rule("silent", "v", 100.0));
  engine.evaluate(qkd::kSecond);

  AlertExpect expect(engine);
  expect.expect_alert("silent").fired().resolved_by(5 * qkd::kSecond);
  expect.expect_alert("no_such_rule").fired();
  EXPECT_FALSE(expect.ok());
  const std::string report = expect.report();
  EXPECT_NE(report.find("never fired"), std::string::npos) << report;
  EXPECT_NE(report.find("never resolved"), std::string::npos) << report;
  EXPECT_NE(report.find("no such rule"), std::string::npos) << report;
}

// ---- Report and rule pack --------------------------------------------------

TEST(AlertEngine, IncidentReportJsonCarriesEpisodesAndTransitions) {
  MetricsRegistry registry;
  Gauge& value = registry.gauge("v");
  AlertEngine engine(registry);
  AlertRule rule = threshold_rule("json_ep", "v", 1.0);
  rule.labels["severity"] = "critical";
  engine.add_rule(std::move(rule));

  value.set(5);
  engine.evaluate(qkd::kSecond);
  value.set(0);
  engine.evaluate(2 * qkd::kSecond);

  const std::string json = incident_report_json(engine);
  EXPECT_NE(json.find("\"rule\":\"json_ep\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"critical\""), std::string::npos);
  EXPECT_NE(json.find("\"pending_s\":null"), std::string::npos)
      << "no debounce: pending_s is null";
  EXPECT_NE(json.find("\"firing_s\":1"), std::string::npos);
  EXPECT_NE(json.find("\"resolved_s\":2"), std::string::npos);
  EXPECT_NE(json.find("\"from\":\"inactive\",\"to\":\"firing\""),
            std::string::npos);
  EXPECT_NE(json.find("\"evaluations\":2"), std::string::npos);
}

TEST(AlertEngine, RulePackFactoriesNameAndLabelTheirRules) {
  const AlertRule qber = rules::qber_spike("mesh_link6_qber_percent", "6");
  EXPECT_EQ(qber.name, "qber_spike:6");
  EXPECT_STREQ(condition_kind(qber.condition), "threshold");
  EXPECT_EQ(qber.labels.at("severity"), "critical");

  const AlertRule slo =
      rules::grant_slo_burn("good", "total", "interactive");
  EXPECT_EQ(slo.name, "grant_slo_burn:interactive");
  EXPECT_STREQ(condition_kind(slo.condition), "slo_burn_rate");

  EXPECT_STREQ(condition_kind(rules::pool_drought("p", "6->7").condition),
               "threshold");
  EXPECT_STREQ(condition_kind(rules::shed_surge("s", "bulk").condition),
               "rate_of_change");
  EXPECT_STREQ(condition_kind(rules::retransmission_storm("r").condition),
               "rate_of_change");
  EXPECT_STREQ(condition_kind(rules::distillation_stalled("t").condition),
               "absence");
}

}  // namespace
}  // namespace qkd::obs::health
