#include "src/qkd/privacy.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::proto {
namespace {

TEST(PaParams, RoundUpTo32) {
  EXPECT_EQ(round_up_to_32(1), 32u);
  EXPECT_EQ(round_up_to_32(32), 32u);
  EXPECT_EQ(round_up_to_32(33), 64u);
  EXPECT_EQ(round_up_to_32(1000), 1024u);
}

TEST(PaParams, MakeChoosesAnnouncedShape) {
  qkd::crypto::Drbg drbg(1u);
  const PaParams p = make_pa_params(1000, 700, drbg);
  EXPECT_EQ(p.n, 1024u);
  EXPECT_EQ(p.m, 700u);
  EXPECT_EQ(p.modulus.degree(), 1024u);
  EXPECT_EQ(p.multiplier.size(), 1024u);
  EXPECT_EQ(p.addend.size(), 700u);
}

TEST(PaParams, SerializationRoundTrips) {
  qkd::crypto::Drbg drbg(2u);
  const PaParams p = make_pa_params(500, 300, drbg);
  const PaParams back = PaParams::deserialize(p.serialize());
  EXPECT_EQ(back.n, p.n);
  EXPECT_EQ(back.m, p.m);
  EXPECT_EQ(back.modulus, p.modulus);
  EXPECT_EQ(back.multiplier, p.multiplier);
  EXPECT_EQ(back.addend, p.addend);
}

TEST(PaParams, DeserializeRejectsGarbage) {
  EXPECT_THROW(PaParams::deserialize(Bytes{1, 2}), std::invalid_argument);
  qkd::crypto::Drbg drbg(3u);
  Bytes wire = make_pa_params(100, 50, drbg).serialize();
  wire[0] ^= 0xff;  // corrupt n
  EXPECT_THROW(PaParams::deserialize(wire), std::invalid_argument);
}

TEST(PaParams, RejectsExpansion) {
  qkd::crypto::Drbg drbg(4u);
  EXPECT_THROW(make_pa_params(100, 101, drbg), std::invalid_argument);
  EXPECT_THROW(make_pa_params(0, 0, drbg), std::invalid_argument);
}

TEST(PrivacyAmplify, IdenticalInputsYieldIdenticalOutputs) {
  QKD_SEEDED_RNG(rng, 5);
  qkd::crypto::Drbg drbg(5u);
  for (std::size_t n : {33u, 500u, 1000u, 4000u}) {
    const auto input = rng.next_bits(n);
    const PaParams p = make_pa_params(n, n / 2, drbg);
    EXPECT_EQ(privacy_amplify(input, p), privacy_amplify(input, p));
  }
}

TEST(PrivacyAmplify, OutputHasRequestedLength) {
  QKD_SEEDED_RNG(rng, 6);
  qkd::crypto::Drbg drbg(6u);
  const auto input = rng.next_bits(777);
  const PaParams p = make_pa_params(777, 123, drbg);
  EXPECT_EQ(privacy_amplify(input, p).size(), 123u);
}

TEST(PrivacyAmplify, SingleBitInputDifferenceAvalanche) {
  // A one-bit input difference must produce an unpredictable output
  // difference — roughly half the output bits flip on average.
  QKD_SEEDED_RNG(rng, 7);
  qkd::crypto::Drbg drbg(7u);
  const std::size_t n = 2048, m = 1024;
  double total_flips = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const PaParams p = make_pa_params(n, m, drbg);
    const auto a = rng.next_bits(n);
    auto b = a;
    b.flip(rng.next_below(n));
    total_flips += static_cast<double>(
        privacy_amplify(a, p).hamming_distance(privacy_amplify(b, p)));
  }
  const double mean_flips = total_flips / trials;
  EXPECT_GT(mean_flips, 0.4 * m);
  EXPECT_LT(mean_flips, 0.6 * m);
}

TEST(PrivacyAmplify, DifferentMultipliersDecorrelateOutputs) {
  QKD_SEEDED_RNG(rng, 8);
  qkd::crypto::Drbg drbg(8u);
  const auto input = rng.next_bits(512);
  const PaParams p1 = make_pa_params(512, 256, drbg);
  const PaParams p2 = make_pa_params(512, 256, drbg);
  const auto o1 = privacy_amplify(input, p1);
  const auto o2 = privacy_amplify(input, p2);
  const double flips = static_cast<double>(o1.hamming_distance(o2));
  EXPECT_GT(flips, 0.3 * 256);
}

TEST(PrivacyAmplify, IsLinearOverGf2) {
  // h(x ^ y) ^ h(0) == h(x) ^ h(y): the hash is affine (multiply + add).
  QKD_SEEDED_RNG(rng, 9);
  qkd::crypto::Drbg drbg(9u);
  const std::size_t n = 256, m = 100;
  const PaParams p = make_pa_params(n, m, drbg);
  const auto x = rng.next_bits(n);
  const auto y = rng.next_bits(n);
  const auto zero = qkd::BitVector(n);
  const auto lhs =
      privacy_amplify(x ^ y, p) ^ privacy_amplify(zero, p);
  const auto rhs = privacy_amplify(x, p) ^ privacy_amplify(y, p);
  EXPECT_EQ(lhs, rhs);
}

TEST(PrivacyAmplify, ShortInputIsZeroPaddedToFieldWidth) {
  qkd::crypto::Drbg drbg(10u);
  const PaParams p = make_pa_params(40, 20, drbg);  // field width 64
  qkd::BitVector short_input = qkd::BitVector::from_string("101");
  EXPECT_NO_THROW(privacy_amplify(short_input, p));
  qkd::BitVector wide_input(p.n + 1);
  EXPECT_THROW(privacy_amplify(wide_input, p), std::invalid_argument);
}

TEST(PrivacyAmplify, CollisionRateIsUniversal) {
  // For random multipliers, two fixed distinct inputs collide with
  // probability ~ 2^-m. With m = 8 expect ~ trials/256 collisions.
  QKD_SEEDED_RNG(rng, 11);
  qkd::crypto::Drbg drbg(11u);
  const std::size_t n = 64;
  const auto x = rng.next_bits(n);
  auto y = x;
  y.flip(3);
  int collisions = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const PaParams p = make_pa_params(n, 8, drbg);
    collisions += privacy_amplify(x, p) == privacy_amplify(y, p);
  }
  EXPECT_LT(collisions, 30);  // mean ~7.8
}

}  // namespace
}  // namespace qkd::proto
