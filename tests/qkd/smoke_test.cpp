// Sub-second end-to-end sanity check: a tiny Qframe through the full
// Fig. 9 pipeline. The heavier engine tests use 1 << 20 trigger slots (~1 s
// of simulated link time each); this one uses 1 << 14 so CI gets a fast
// signal that the stack is wired together at all, independent of whether
// the statistics-sensitive tests pass.
#include <gtest/gtest.h>

#include "src/qkd/engine.hpp"

namespace qkd::proto {
namespace {

QkdLinkConfig tiny_config() {
  QkdLinkConfig config;
  config.frame_slots = 1 << 14;
  return config;
}

TEST(Smoke, TinyBatchRunsPipelineEndToEnd) {
  QkdLinkSession session(tiny_config(), 7);
  const BatchResult batch = session.run_batch();

  // A 16k-slot frame yields only a handful of sifted bits, so acceptance is
  // not guaranteed — what must hold is consistent accounting either way.
  EXPECT_EQ(batch.pulses, std::size_t{1} << 14);
  EXPECT_GE(batch.detections, batch.sifted_bits);
  EXPECT_EQ(batch.key.size(), batch.distilled_bits);
  if (batch.accepted) {
    EXPECT_EQ(batch.reason, AbortReason::kNone);
  } else {
    EXPECT_NE(batch.reason, AbortReason::kNone);
    EXPECT_NE(abort_reason_name(batch.reason), nullptr);
  }

  const SessionTotals& totals = session.totals();
  EXPECT_EQ(totals.batches, 1u);
  EXPECT_EQ(totals.pulses, batch.pulses);
}

TEST(Smoke, TinyBatchesAccumulateTotals) {
  QkdLinkSession session(tiny_config(), 11);
  for (int i = 0; i < 4; ++i) session.run_batch();
  EXPECT_EQ(session.totals().batches, 4u);
  EXPECT_EQ(session.totals().pulses, (std::size_t{1} << 14) * 4);
}

}  // namespace
}  // namespace qkd::proto
