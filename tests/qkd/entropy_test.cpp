#include "src/qkd/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qkd::proto {
namespace {

TEST(BennettDefense, LinearInErrors) {
  const auto d1 = bennett_defense(100);
  const auto d2 = bennett_defense(200);
  EXPECT_NEAR(d1.t, 2.0 * std::sqrt(2.0) * 100.0, 1e-9);
  EXPECT_NEAR(d2.t, 2.0 * d1.t, 1e-9);
}

TEST(BennettDefense, SigmaGrowsAsSqrt) {
  const auto d1 = bennett_defense(100);
  const auto d4 = bennett_defense(400);
  EXPECT_NEAR(d4.sigma / d1.sigma, 2.0, 1e-9);
  EXPECT_NEAR(d1.sigma, std::sqrt((4.0 + 2.0 * std::sqrt(2.0)) * 100.0), 1e-9);
}

TEST(BennettDefense, ZeroErrorsZeroLeakage) {
  const auto d = bennett_defense(0);
  EXPECT_DOUBLE_EQ(d.t, 0.0);
  EXPECT_DOUBLE_EQ(d.sigma, 0.0);
}

TEST(SlutskyDefense, ZeroAtZeroErrors) {
  const auto d = slutsky_defense(10000, 0);
  EXPECT_NEAR(d.t, 0.0, 1e-9);
}

TEST(SlutskyDefense, SaturatesAtOneThird) {
  // The defense frontier reaches full information at e' = 1/3.
  const auto d = slutsky_defense(9000, 3000);
  EXPECT_NEAR(d.t, 9000.0, 1.0);
  const auto beyond = slutsky_defense(9000, 4000);
  EXPECT_NEAR(beyond.t, 9000.0, 1e-9);
}

TEST(SlutskyDefense, MonotoneInErrorRatio) {
  double prev = -1.0;
  for (std::size_t e : {0u, 100u, 300u, 600u, 1000u, 2000u, 3000u}) {
    const auto d = slutsky_defense(10000, e);
    EXPECT_GE(d.t, prev) << e;
    prev = d.t;
  }
}

TEST(SlutskyDefense, PerBitValueMatchesClosedForm) {
  // t' at e' = 0.05: 1 + log2(1 - 0.5*((1-0.15)/(0.95))^2).
  const std::size_t b = 100000, e = 5000;
  const double ep = 0.05;
  const double frontier = (1.0 - 3.0 * ep) / (1.0 - ep);
  const double expected = 1.0 + std::log2(1.0 - 0.5 * frontier * frontier);
  const auto d = slutsky_defense(b, e);
  EXPECT_NEAR(d.t / static_cast<double>(b), expected, 1e-9);
}

TEST(SlutskyDefense, EmptyBlockIsZero) {
  const auto d = slutsky_defense(0, 0);
  EXPECT_DOUBLE_EQ(d.t, 0.0);
  EXPECT_DOUBLE_EQ(d.sigma, 0.0);
}

TEST(SlutskyVsBennett, SlutskyIsMoreConservativeAtModerateQber) {
  // The paper observes Slutsky "may be asymptotically correct" but "overly
  // conservative for finite-length blocks" — it charges more than Bennett
  // in the operating regime (e.g. 7 % QBER).
  const std::size_t b = 10000, e = 700;
  EXPECT_GT(slutsky_defense(b, e).t, bennett_defense(e).t);
}

TEST(MultiPhoton, MatchesPoissonTail) {
  EXPECT_NEAR(multi_photon_probability(0.1),
              1.0 - std::exp(-0.1) * 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(multi_photon_probability(0.0), 0.0);
  EXPECT_THROW(multi_photon_probability(-0.5), std::invalid_argument);
}

TEST(EntropyEstimate, CleanChannelYieldsMostOfTheBits) {
  EntropyInputs in;
  in.sifted_bits = 10000;
  in.error_bits = 0;
  in.transmitted_pulses = 100000;  // low mu keeps multi-photon cost small
  in.disclosed_bits = 64;
  in.mean_photon_number = 0.01;
  in.defense = DefenseFunction::kSlutsky;
  const auto est = estimate_entropy(in);
  EXPECT_GT(est.distillable_bits, 9000.0);
  EXPECT_LT(est.distillable_bits, 10000.0 - 64.0 + 1.0);
}

TEST(EntropyEstimate, DisclosureSubtractsExactly) {
  EntropyInputs in;
  in.sifted_bits = 5000;
  in.error_bits = 0;
  in.transmitted_pulses = 0;
  in.mean_photon_number = 0.0;
  in.disclosed_bits = 0;
  const double base = estimate_entropy(in).distillable_bits;
  in.disclosed_bits = 500;
  EXPECT_NEAR(base - estimate_entropy(in).distillable_bits, 500.0, 1e-9);
}

TEST(EntropyEstimate, WorstCasePnsBoundKillsTheKeyAtPaperOperatingPoint) {
  // Sec. 6: weak-coherent worst-case leakage ~ transmitted * P[N>=2]. At
  // mu = 0.1 with ~1M transmitted pulses per ~1.5k sifted bits, the charge
  // exceeds the sifted bits entirely: zero distillable key. This is the
  // pre-decoy-state PNS vulnerability that motivates the entangled link.
  EntropyInputs in;
  in.sifted_bits = 1500;
  in.error_bits = 100;
  in.transmitted_pulses = 1000000;
  in.mean_photon_number = 0.1;
  in.defense = DefenseFunction::kBennett;
  in.multi_photon_policy = MultiPhotonPolicy::kTransmittedWorstCase;
  const auto worst = estimate_entropy(in);
  EXPECT_DOUBLE_EQ(worst.distillable_bits, 0.0);

  // The practical beamsplitting accounting leaves usable key.
  in.multi_photon_policy = MultiPhotonPolicy::kReceivedConditional;
  const auto practical = estimate_entropy(in);
  EXPECT_GT(practical.distillable_bits, 500.0);
}

TEST(EntropyEstimate, EntangledLinkChargesReceivedTimesMultiPhoton) {
  // Sec. 6: "With an entangled-photon link, by contrast, the amount of
  // information Eve may obtain is only proportional to the number of
  // received bits times the multi-photon probability."
  EntropyInputs in;
  in.sifted_bits = 5000;
  in.error_bits = 250;
  in.transmitted_pulses = 1000000;
  in.mean_photon_number = 0.1;
  in.defense = DefenseFunction::kBennett;
  in.multi_photon_policy = MultiPhotonPolicy::kTransmittedWorstCase;

  in.link_kind = LinkKind::kWeakCoherent;
  const auto weak = estimate_entropy(in);
  in.link_kind = LinkKind::kEntangled;
  const auto entangled = estimate_entropy(in);

  EXPECT_GT(weak.multi_photon.t, 100.0 * entangled.multi_photon.t);
  EXPECT_GT(entangled.distillable_bits, weak.distillable_bits);
  EXPECT_NEAR(entangled.multi_photon.t,
              5000.0 * multi_photon_probability(0.1), 1e-9);
}

TEST(EntropyEstimate, HighQberExhaustsEntropy) {
  EntropyInputs in;
  in.sifted_bits = 1000;
  in.error_bits = 300;  // ~1/3: Slutsky says Eve may know everything
  in.transmitted_pulses = 100000;
  const auto est = estimate_entropy(in);
  EXPECT_DOUBLE_EQ(est.distillable_bits, 0.0);
}

TEST(EntropyEstimate, ConfidenceParameterWidensMargin) {
  EntropyInputs in;
  in.sifted_bits = 10000;
  in.error_bits = 400;
  in.transmitted_pulses = 2000000;
  in.confidence = 1.0;
  const auto narrow = estimate_entropy(in);
  in.confidence = 5.0;
  const auto wide = estimate_entropy(in);
  EXPECT_NEAR(wide.margin, 5.0 * narrow.margin, 1e-9);
  EXPECT_LT(wide.distillable_bits, narrow.distillable_bits);
}

TEST(EntropyEstimate, NonRandomnessSubtracts) {
  EntropyInputs in;
  in.sifted_bits = 2000;
  in.transmitted_pulses = 0;
  in.mean_photon_number = 0.0;
  const double base = estimate_entropy(in).distillable_bits;
  in.non_randomness = 100.0;
  EXPECT_NEAR(base - estimate_entropy(in).distillable_bits, 100.0, 1e-9);
}

TEST(EntropyEstimate, RejectsMoreErrorsThanBits) {
  EntropyInputs in;
  in.sifted_bits = 10;
  in.error_bits = 11;
  EXPECT_THROW(estimate_entropy(in), std::invalid_argument);
}

TEST(EntropyEstimate, BennettAndSlutskyDivergeAsPaperClaims) {
  // "Neither appears to be completely accurate" — Bennett under-charges at
  // low error rates relative to Slutsky's conservative bound; the two must
  // produce materially different distillable counts at 3 % QBER.
  EntropyInputs in;
  in.sifted_bits = 20000;
  in.error_bits = 1000;
  in.transmitted_pulses = 4000000;
  in.defense = DefenseFunction::kBennett;
  const auto bennett = estimate_entropy(in);
  in.defense = DefenseFunction::kSlutsky;
  const auto slutsky = estimate_entropy(in);
  EXPECT_GT(bennett.distillable_bits, slutsky.distillable_bits * 1.1);
}

}  // namespace
}  // namespace qkd::proto
