// End-to-end pipeline tests: raw Qframes through sifting, error correction,
// entropy estimation, privacy amplification and authentication.
#include "src/qkd/engine.hpp"

#include <gtest/gtest.h>

namespace qkd::proto {
namespace {

QkdLinkConfig fast_config() {
  QkdLinkConfig config;
  config.frame_slots = 1 << 20;  // ~1 s of link time at 1 MHz
  return config;
}

TEST(QkdLinkSession, HappyPathProducesKey) {
  QkdLinkSession session(fast_config(), 1);
  const BatchResult batch = session.run_batch();
  ASSERT_TRUE(batch.accepted) << abort_reason_name(batch.reason);
  EXPECT_GT(batch.sifted_bits, 100u);
  EXPECT_GT(batch.distilled_bits, 0u);
  EXPECT_EQ(batch.key.size(), batch.distilled_bits);
  EXPECT_LT(batch.distilled_bits, batch.sifted_bits);
}

TEST(QkdLinkSession, QberLandsInPaperWindow) {
  QkdLinkSession session(fast_config(), 2);
  const BatchResult batch = session.run_batch();
  ASSERT_TRUE(batch.accepted);
  EXPECT_GT(batch.qber_actual, 0.04);
  EXPECT_LT(batch.qber_actual, 0.10);
  // The sampled estimate should be in the same neighborhood (it is a small
  // sample, so the tolerance is statistical, ~3 sigma).
  EXPECT_NEAR(batch.qber_sampled, batch.qber_actual, 0.08);
}

TEST(QkdLinkSession, ErrorsAreFullyCorrected) {
  // If the verify step passed, the distilled keys are identical by
  // construction; this asserts the pipeline doesn't silently diverge.
  QkdLinkSession session(fast_config(), 3);
  for (int i = 0; i < 3; ++i) {
    const BatchResult batch = session.run_batch();
    if (batch.accepted) {
      EXPECT_GT(batch.errors_corrected, 0u);  // 6-8 % QBER must show up
      EXPECT_GT(batch.disclosed_bits, 0u);
    } else {
      ADD_FAILURE() << "batch rejected: " << abort_reason_name(batch.reason);
    }
  }
}

TEST(QkdLinkSession, DistilledRateNearPaperOperatingPoint) {
  // Sec. 2: "Today's QKD systems achieve on the order of 1,000 bits/second
  // throughput for keying material ... and often run at much lower rates."
  // At the 1 MHz trigger with 6 % QBER and conservative estimates the
  // distilled rate lands at hundreds of bps; the 5 MHz hardware maximum
  // reaches the ~1 kbps headline (bench E3 sweeps this).
  QkdLinkSession session(fast_config(), 4);
  for (int i = 0; i < 6; ++i) session.run_batch();
  const double rate = session.totals().distilled_rate_bps();
  EXPECT_GT(rate, 80.0);
  EXPECT_LT(rate, 5000.0);
}

TEST(QkdLinkSession, InterceptResendTripsQberAlarm) {
  // Full interception pushes QBER to ~25 + 6 % >> the 11 % abort threshold:
  // the batch must be rejected and no key delivered — the headline security
  // property of Sec. 1.
  QkdLinkSession session(fast_config(), 5);
  qkd::optics::InterceptResendAttack eve(1.0);
  const BatchResult batch = session.run_batch(&eve);
  EXPECT_FALSE(batch.accepted);
  EXPECT_EQ(batch.reason, AbortReason::kQberTooHigh);
  EXPECT_EQ(batch.distilled_bits, 0u);
  EXPECT_EQ(session.totals().aborted_qber(), 1u);
}

TEST(QkdLinkSession, MildInterceptionSurvivesButCostsKey) {
  // A 10 % intercept fraction adds ~2.5 % QBER: below the alarm, but the
  // entropy estimate must charge for it, shrinking the distilled output.
  QkdLinkSession clean_session(fast_config(), 6);
  QkdLinkSession attacked_session(fast_config(), 6);
  qkd::optics::InterceptResendAttack eve(0.10);
  std::size_t clean_bits = 0, attacked_bits = 0;
  for (int i = 0; i < 4; ++i) {
    clean_bits += clean_session.run_batch().distilled_bits;
    attacked_bits += attacked_session.run_batch(&eve).distilled_bits;
  }
  EXPECT_GT(clean_bits, 0u);
  EXPECT_LT(attacked_bits, clean_bits);
}

TEST(QkdLinkSession, ChannelCutYieldsNoKeyButNoFalseAlarm) {
  QkdLinkConfig config = fast_config();
  config.link.dark_count_prob = 0.0;  // a dead-quiet cut channel
  QkdLinkSession session(config, 7);
  qkd::optics::ChannelCutAttack cut;
  const BatchResult batch = session.run_batch(&cut);
  EXPECT_FALSE(batch.accepted);
  EXPECT_EQ(batch.reason, AbortReason::kNoSiftedBits);
}

TEST(QkdLinkSession, PnsInvisibleInQberButChargedByWorstCasePolicy) {
  // PNS induces no errors, so the QBER alarm stays silent. Under the
  // worst-case multi-photon policy the entropy estimate refuses to distill
  // anything at this operating point — the historically correct verdict for
  // pre-decoy weak-coherent links.
  QkdLinkConfig config = fast_config();
  config.multi_photon_policy = MultiPhotonPolicy::kTransmittedWorstCase;
  QkdLinkSession session(config, 8);
  qkd::optics::PhotonNumberSplittingAttack pns;
  const BatchResult batch = session.run_batch(&pns);
  EXPECT_FALSE(batch.accepted);
  EXPECT_EQ(batch.reason, AbortReason::kEntropyExhausted);
  EXPECT_LT(batch.qber_actual, 0.10);  // the attack itself stayed invisible
}

TEST(QkdLinkSession, PracticalPolicyUnderchargesIdealPns) {
  // Under the practical 2003-era beamsplitting accounting the pipeline
  // delivers key even while an ideal PNS adversary holds more sifted bits
  // than the multi-photon term charged — the vulnerability the paper cites
  // (Sec. 6) as motivation for the entangled-photon link. Ground truth from
  // the attack record makes the gap measurable.
  QkdLinkSession session(fast_config(), 8);
  qkd::optics::PhotonNumberSplittingAttack pns;
  const BatchResult batch = session.run_batch(&pns);
  ASSERT_TRUE(batch.accepted) << abort_reason_name(batch.reason);
  EXPECT_GT(batch.distilled_bits, 0u);
  EXPECT_GT(batch.eve_known_sifted, 0u);
  const double charged =
      static_cast<double>(batch.sifted_bits) *
      conditional_multi_photon_probability(
          session.config().link.mean_photon_number);
  // Eve's actual take exceeds the per-sifted-bit charge because detection
  // favors multi-photon pulses (they are brighter).
  EXPECT_GT(static_cast<double>(batch.eve_known_sifted), 0.8 * charged);
}

TEST(QkdLinkSession, AllEcStrategiesDeliverKeyOnTunedLink) {
  // On a well-tuned interferometer (~2 % QBER) both Cascades leave positive
  // yield; at the 6-8 % operating point the BBN variant's disclosure
  // consumes the entropy budget (see QkdLinkConfig::ec_strategy docs).
  for (EcStrategy strategy :
       {EcStrategy::kBbnCascade, EcStrategy::kClassicCascade}) {
    QkdLinkConfig config = fast_config();
    config.link.interferometer_visibility = 0.97;
    config.ec_strategy = strategy;
    QkdLinkSession session(config, 9);
    const BatchResult batch = session.run_batch();
    EXPECT_TRUE(batch.accepted)
        << static_cast<int>(strategy) << ": "
        << abort_reason_name(batch.reason);
    EXPECT_GT(batch.distilled_bits, 0u);
  }
}

TEST(QkdLinkSession, BbnVariantExhaustsEntropyAtHighQber) {
  // The reproduction's headline negative result, asserted: the paper's own
  // error-correction variant at the paper's own 6-8 % QBER operating point
  // cannot out-distill its disclosure under either defense function.
  QkdLinkConfig config = fast_config();
  config.ec_strategy = EcStrategy::kBbnCascade;
  QkdLinkSession session(config, 16);
  const BatchResult batch = session.run_batch();
  EXPECT_FALSE(batch.accepted);
  EXPECT_EQ(batch.reason, AbortReason::kEntropyExhausted);
}

TEST(QkdLinkSession, NaiveParityResidualsAreCaughtByVerify) {
  // The naive baseline leaves residual errors at 6-8 % QBER; the hash
  // comparison must catch them and reject the batch rather than hand
  // mismatched keys to IKE (the Sec. 7 failure IKE itself cannot detect).
  QkdLinkConfig config = fast_config();
  config.ec_strategy = EcStrategy::kNaiveParity;
  QkdLinkSession session(config, 10);
  int verify_failures = 0, accepted = 0;
  for (int i = 0; i < 5; ++i) {
    const BatchResult batch = session.run_batch();
    verify_failures += batch.reason == AbortReason::kVerifyFailed;
    accepted += batch.accepted;
  }
  EXPECT_GT(verify_failures, 0);
  // Whatever was accepted must have been truly equal (PA would have thrown).
  (void)accepted;
}

TEST(QkdLinkSession, BennettOutDistillsSlutsky) {
  QkdLinkConfig config = fast_config();
  config.defense = DefenseFunction::kBennett;
  QkdLinkSession bennett(config, 11);
  config.defense = DefenseFunction::kSlutsky;
  QkdLinkSession slutsky(config, 11);
  std::size_t bennett_bits = 0, slutsky_bits = 0;
  for (int i = 0; i < 3; ++i) {
    bennett_bits += bennett.run_batch().distilled_bits;
    slutsky_bits += slutsky.run_batch().distilled_bits;
  }
  EXPECT_GT(bennett_bits, slutsky_bits);
}

TEST(QkdLinkSession, DistillBitsAccumulatesRequestedAmount) {
  QkdLinkSession session(fast_config(), 12);
  const qkd::BitVector key = session.distill_bits(1024, 24);
  EXPECT_EQ(key.size(), 1024u);
  EXPECT_GT(session.totals().accepted_batches, 0u);
}

TEST(QkdLinkSession, ControlTrafficIsAccounted) {
  QkdLinkSession session(fast_config(), 13);
  const BatchResult batch = session.run_batch();
  ASSERT_TRUE(batch.accepted);
  EXPECT_GT(batch.control_messages, 4u);  // sift, response, sample, hash, PA
  EXPECT_GT(batch.control_bytes, 100u);
}

TEST(QkdLinkSession, AuthenticationPadsAreReplenishedFromDistilledKey) {
  QkdLinkConfig config = fast_config();
  config.auth_replenish_bits = 512;
  QkdLinkSession session(config, 14);
  const std::size_t before = session.alice_auth().pad_bits_available();
  const BatchResult batch = session.run_batch();
  ASSERT_TRUE(batch.accepted);
  // Replenished 512 minus whatever this batch's control traffic consumed.
  const std::size_t after = session.alice_auth().pad_bits_available();
  EXPECT_GT(after + 64 * 8 /*max plausible tags*/, before);
}

TEST(QkdLinkSession, RejectsBadSampleFraction) {
  QkdLinkConfig config = fast_config();
  config.sample_fraction = 1.0;
  EXPECT_THROW(QkdLinkSession(config, 1), std::invalid_argument);
}

TEST(QkdLinkSession, TotalsAggregateAcrossBatches) {
  QkdLinkSession session(fast_config(), 15);
  for (int i = 0; i < 3; ++i) session.run_batch();
  const SessionTotals& totals = session.totals();
  EXPECT_EQ(totals.batches, 3u);
  EXPECT_EQ(totals.pulses, 3u * (1u << 20));
  EXPECT_GT(totals.duration_s, 1.0);
  EXPECT_GT(totals.distilled_bits, 0u);
}

}  // namespace
}  // namespace qkd::proto
