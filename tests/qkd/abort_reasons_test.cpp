// One forced scenario per AbortReason, with the totals histogram asserted
// against the per-batch outcomes — the observability contract operators use
// to tell *why* a distillation target was missed (pad exhaustion vs.
// eavesdropping vs. loss vs. entropy).
#include <gtest/gtest.h>

#include <numeric>

#include "src/qkd/engine.hpp"

namespace qkd::proto {
namespace {

QkdLinkConfig base_config(std::size_t frame_slots = 1 << 20) {
  QkdLinkConfig config;
  config.frame_slots = frame_slots;
  return config;
}

std::size_t histogram_sum(const SessionTotals& totals) {
  return std::accumulate(totals.by_reason.begin(), totals.by_reason.end(),
                         std::size_t{0});
}

TEST(AbortReasons, AuthExhaustedWhenPrepositionedPadIsTiny) {
  // No pad runway beyond the structural minimum: the first batch's control
  // traffic drains the one-time pads mid-flight (the Sec. 2 exhaustion DoS).
  QkdLinkConfig config = base_config(1 << 16);
  config.preposition_extra_bits = 0;
  QkdLinkSession session(config, 1);
  const BatchResult batch = session.run_batch();
  EXPECT_FALSE(batch.accepted);
  EXPECT_EQ(batch.reason, AbortReason::kAuthExhausted);
  EXPECT_EQ(session.totals().aborted(AbortReason::kAuthExhausted), 1u);
}

TEST(AbortReasons, QberTooHighUnderInterceptResend) {
  QkdLinkSession session(base_config(), 5);
  qkd::optics::InterceptResendAttack eve(1.0);
  const BatchResult batch = session.run_batch(&eve);
  EXPECT_EQ(batch.reason, AbortReason::kQberTooHigh);
  EXPECT_EQ(session.totals().aborted(AbortReason::kQberTooHigh), 1u);
  // The histogram and the legacy counter agree.
  EXPECT_EQ(session.totals().aborted_qber(), 1u);
}

TEST(AbortReasons, EntropyExhaustedOnHighLossLink) {
  // 50 km of fiber: the handful of surviving sifted bits cannot out-distill
  // the deductions (defense + multi-photon + confidence margin).
  QkdLinkConfig config = base_config();
  config.link.fiber_km = 50.0;
  QkdLinkSession session(config, 3);
  const BatchResult batch = session.run_batch();
  EXPECT_EQ(batch.reason, AbortReason::kEntropyExhausted);
  EXPECT_EQ(session.totals().aborted(AbortReason::kEntropyExhausted), 1u);
  EXPECT_EQ(session.totals().aborted_entropy(), 1u);
}

TEST(AbortReasons, NoSiftedBitsOnDeadQuietCutChannel) {
  QkdLinkConfig config = base_config(1 << 16);
  config.link.dark_count_prob = 0.0;
  QkdLinkSession session(config, 7);
  qkd::optics::ChannelCutAttack cut;
  const BatchResult batch = session.run_batch(&cut);
  EXPECT_EQ(batch.reason, AbortReason::kNoSiftedBits);
  EXPECT_EQ(session.totals().aborted(AbortReason::kNoSiftedBits), 1u);
}

TEST(AbortReasons, VerifyFailedOnNaiveParityResiduals) {
  QkdLinkConfig config = base_config();
  config.ec_strategy = EcStrategy::kNaiveParity;
  QkdLinkSession session(config, 10);
  std::size_t verify_failures = 0;
  for (int i = 0; i < 5; ++i)
    verify_failures +=
        session.run_batch().reason == AbortReason::kVerifyFailed;
  EXPECT_GT(verify_failures, 0u);
  EXPECT_EQ(session.totals().aborted(AbortReason::kVerifyFailed),
            verify_failures);
}

TEST(AbortReasons, EcNotConvergedWhenRoundLimitIsStarved) {
  // One BBN round over a 6 % QBER frame cannot clear ~90 errors.
  QkdLinkConfig config = base_config();
  config.ec_strategy = EcStrategy::kBbnCascade;
  config.bbn_config.max_rounds = 1;
  QkdLinkSession session(config, 16);
  const BatchResult batch = session.run_batch();
  EXPECT_EQ(batch.reason, AbortReason::kEcNotConverged);
  EXPECT_EQ(session.totals().aborted(AbortReason::kEcNotConverged), 1u);
  EXPECT_EQ(session.totals().aborted_verify(), 1u);
}

TEST(AbortReasons, HistogramSumsToBatchesAndCountsAcceptance) {
  QkdLinkSession session(base_config(), 15);
  qkd::optics::InterceptResendAttack eve(1.0);
  session.run_batch();        // accepted at this operating point
  session.run_batch(&eve);    // qber alarm
  session.run_batch();        // accepted again
  const SessionTotals& totals = session.totals();
  EXPECT_EQ(histogram_sum(totals), totals.batches);
  EXPECT_EQ(totals.aborted(AbortReason::kNone), totals.accepted_batches);
  EXPECT_EQ(totals.aborted(AbortReason::kQberTooHigh), 1u);
}

TEST(AbortReasons, DistillReportsWhyTheTargetWasMissed) {
  // distill() used to swallow per-batch outcomes; the outcome histogram now
  // says *why* a request came back short.
  QkdLinkSession session(base_config(), 6);
  qkd::optics::InterceptResendAttack eve(1.0);
  const DistillOutcome outcome = session.distill(4096, 3, &eve);
  EXPECT_FALSE(outcome.reached_target);
  EXPECT_TRUE(outcome.key.empty());
  EXPECT_EQ(outcome.batches_run, 3u);
  EXPECT_EQ(outcome.aborted(AbortReason::kQberTooHigh), 3u);
}

TEST(AbortReasons, DistillOutcomeCountsAcceptedBatches) {
  QkdLinkSession session(base_config(), 12);
  const DistillOutcome outcome = session.distill(512, 24);
  EXPECT_TRUE(outcome.reached_target);
  EXPECT_EQ(outcome.key.size(), 512u);
  EXPECT_GT(outcome.aborted(AbortReason::kNone), 0u);
  std::size_t sum = std::accumulate(outcome.by_reason.begin(),
                                    outcome.by_reason.end(), std::size_t{0});
  EXPECT_EQ(sum, outcome.batches_run);
}

}  // namespace
}  // namespace qkd::proto
